package closnet

import (
	"context"

	"testing"
)

// TestPublicAPIQuickstart exercises the façade end to end on Example 2.3.
func TestPublicAPIQuickstart(t *testing.T) {
	c, err := NewClos(2)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMacroSwitch(2)
	if err != nil {
		t.Fatal(err)
	}

	fs := NewCollection(
		c.Source(1, 2), c.Dest(1, 2),
		c.Source(1, 2), c.Dest(2, 1),
		c.Source(1, 2), c.Dest(2, 2),
		c.Source(2, 1), c.Dest(2, 1),
		c.Source(2, 2), c.Dest(2, 2),
		c.Source(1, 1), c.Dest(1, 1),
	)
	mfs := NewCollection(
		ms.Source(1, 2), ms.Dest(1, 2),
		ms.Source(1, 2), ms.Dest(2, 1),
		ms.Source(1, 2), ms.Dest(2, 2),
		ms.Source(2, 1), ms.Dest(2, 1),
		ms.Source(2, 2), ms.Dest(2, 2),
		ms.Source(1, 1), ms.Dest(1, 1),
	)

	macro, err := MacroMaxMinFair(ms, mfs)
	if err != nil {
		t.Fatal(err)
	}
	if got := Throughput(macro); got.Cmp(R(10, 3)) != 0 {
		t.Errorf("macro throughput = %v, want 10/3", got)
	}

	alloc, err := ClosMaxMinFair(c, fs, MiddleAssignment{2, 1, 2, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if LexCompareSorted(alloc, macro) >= 0 {
		t.Error("Clos allocation should be lex-below the macro allocation")
	}

	opt, err := LexMaxMin(c, fs, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if LexCompareSorted(opt.Allocation, alloc) != 0 {
		t.Error("routing A should be lex-max-min for Example 2.3")
	}
}

func TestPublicAPIAdversarialAndDoom(t *testing.T) {
	in, err := Example53()
	if err != nil {
		t.Fatal(err)
	}
	res, err := DoomSwitch(in.Clos, in.Flows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := Throughput(a); got.Cmp(R(5, 1)) != 0 {
		t.Errorf("doom throughput = %v, want 5", got)
	}
	if len(in.FlowsOfType(Type1)) != 6 {
		t.Error("Example 5.3 should have six type-1 flows")
	}
}

func TestPublicAPIFeasibilityAndSplittable(t *testing.T) {
	in, err := Theorem42(3)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := FeasibleRouting(context.Background(), in.Clos, in.Flows, in.MacroRates, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Theorem 4.2 demands should be unroutable")
	}
	// The splittable relaxation erases the gap.
	paths, err := ClosAllPaths(in.Clos, in.Flows)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := SplittableMaxMin(in.Clos.Network(), in.Flows, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !rates.Equal(in.MacroRates) {
		t.Error("splittable rates should equal macro rates")
	}
}

func TestPublicAPIValidation(t *testing.T) {
	c, err := NewClos(2)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewCollection(c.Source(1, 1), c.Dest(2, 2))
	r, err := ClosMaxMinFair(c, fs, MiddleAssignment{1})
	if err != nil {
		t.Fatal(err)
	}
	routing := make(Routing, 1)
	p, err := c.Path(fs[0].Src, fs[0].Dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	routing[0] = p
	if err := IsFeasible(c.Network(), fs, routing, r); err != nil {
		t.Errorf("IsFeasible: %v", err)
	}
	if err := IsMaxMinFair(c.Network(), fs, routing, r); err != nil {
		t.Errorf("IsMaxMinFair: %v", err)
	}
	ok, err := IsLocalLexOptimal(c, fs, MiddleAssignment{1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("single-flow instance should be locally optimal")
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	if got := len(Experiments()); got != 18 {
		t.Errorf("experiments = %d, want 18", got)
	}
	tab, err := RunExperiment("F2")
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "F2" || len(tab.Rows) != 2 {
		t.Errorf("unexpected table %+v", tab)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	if got := len(BaselineAlgorithms()); got != 4 {
		t.Errorf("baselines = %d, want 4", got)
	}
}
