// Command closbench measures the routing-search hot paths with the
// standard testing.Benchmark harness and persists the numbers as JSON
// (BENCH_search.json at the repository root via `make bench-json`), so
// performance claims in the documentation are regenerable artifacts
// rather than prose.
//
// It covers the two perf-critical layers:
//
//   - per-state evaluation: the Rat64 small-word kernel vs the pinned
//     *big.Rat water filling (core.Evaluator)
//   - routing-space enumeration: the default symmetry-canonical space vs
//     the full n^|F| space (search.LexMaxMin), including an n=5 instance
//     where canonicalization shrinks 5^7 = 78125 states to 855
//   - bound-guided pruning: the branch-and-bound mode (Options.Pruned)
//     vs the exhaustive canonical scan on the same instances, with the
//     pruned-over-exhaustive state ratio published per pair
//   - block evaluation: the SoA batch water filling (core.BlockEvaluator,
//     the default search path) vs the per-state path (BlockSize -1) on
//     the same instances, with the ns/op ratio published as
//     block_speedup_c5
//   - delta evaluation: the incremental evaluator replaying a seeded
//     64-event C_5 arrival/departure trace (core.IncrementalEvaluator)
//     vs per-event full recompute, with the ns/op ratio published as
//     delta_speedup
//
// Usage:
//
//	closbench                 print the JSON to stdout
//	closbench -o BENCH.json   write it to a file
//	closbench -o BENCH.json -force   overwrite even if the report shrinks
//	closbench -only-block -min-block-speedup 1.5   CI smoke: C_5
//	    block-vs-per-state pair only, non-zero exit below the bar
//	closbench -only-delta -min-delta-speedup 2   CI smoke: C_5
//	    incremental-vs-full delta pair only, non-zero exit below the bar
//
// Writing to an existing report file refuses to proceed when the new
// report would carry fewer benchmark entries than the one on disk, or
// would zero out a published speedup/reduction scalar (either usually
// means a partial run); -force overrides.
//
// The shared observability flags of internal/obs (-trace, -metrics,
// -cpuprofile, -memprofile, -debug-addr) are available as on every
// closnet tool; with -metrics the final registry snapshot is embedded
// in the report under "observability".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/engine"
	"closnet/internal/obs"
	"closnet/internal/search"
	"closnet/internal/topology"
)

// Bench is one benchmark row of the emitted JSON.
type Bench struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// States is the number of routing states one operation enumerates
	// (search benchmarks only).
	States int `json:"states,omitempty"`
	// StatesPerSec is States scaled by the measured op time.
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
}

// Report is the schema of BENCH_search.json.
type Report struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Benches   []Bench `json:"benchmarks"`
	// EvaluatorSpeedup is big.Rat ns/op over Rat64 ns/op on the same
	// per-state evaluation workload.
	EvaluatorSpeedup float64 `json:"evaluator_speedup"`
	// StateReductionC5 is the full-space over canonical-space state count
	// for the 7-flow C_5 search instance.
	StateReductionC5 float64 `json:"state_reduction_c5"`
	// PruneReductionC5 is the canonical-space state count over the
	// branch-and-bound evaluation count (bound plus leaf evaluations) on
	// the same 7-flow C_5 instance — the headline gain of the pruned
	// search mode. The acceptance bar is ≥ 5.
	PruneReductionC5 float64 `json:"prune_reduction_c5"`
	// BlockSpeedupC5 is the per-state canonical search ns/op over the
	// SoA block-evaluation search ns/op on the same 7-flow C_5 instance
	// (identical state count, bit-identical result). The acceptance bar
	// is ≥ 2.
	BlockSpeedupC5 float64 `json:"block_speedup_c5"`
	// DeltaSpeedup is the full-recompute ns/op over the incremental
	// ns/op on the same 64-event C_5 arrival/departure trace: per event,
	// the full path rebuilds a core.Evaluator and water-fills from
	// scratch, the incremental path replays the delta through one
	// core.IncrementalEvaluator (both produce bit-identical rates; the
	// core property tests pin that). The acceptance bar is ≥ 5.
	DeltaSpeedup float64 `json:"delta_speedup"`
	// Obs is the final metrics-registry snapshot of the run, present only
	// when closbench is invoked with -metrics.
	Obs *obs.Snapshot `json:"observability,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "closbench:", err)
		os.Exit(1)
	}
}

// benchInstance mirrors the contended collection of the repository
// benchmarks: flows alternate between a cyclic permutation and loopback
// pairs so the water filling has several freeze rounds per assignment.
func benchInstance(n, flows int) (*topology.Clos, core.Collection) {
	c := topology.MustClos(n)
	fs := core.Collection{}
	for f := 0; f < flows; f++ {
		i := f%n + 1
		if f%2 == 0 {
			fs = fs.Add(c.Source(i, 1), c.Dest(i%n+1, 1), 1)
		} else {
			fs = fs.Add(c.Source(i, 1), c.Dest(i, 1), 1)
		}
	}
	return c, fs
}

// benchEvaluator measures one max-min fair evaluation per op on a
// contended C_4 instance, on the Rat64 kernel or pinned to big.Rat.
func benchEvaluator(forceBig bool) (Bench, error) {
	c, fs := benchInstance(4, 8)
	ev, err := core.NewEvaluator(c, fs)
	if err != nil {
		return Bench{}, err
	}
	ev.ForceBig(forceBig)
	rng := rand.New(rand.NewSource(3))
	mas := make([]core.MiddleAssignment, 64)
	for i := range mas {
		mas[i] = make(core.MiddleAssignment, len(fs))
		for fi := range mas[i] {
			mas[i][fi] = 1 + rng.Intn(c.Size())
		}
	}
	name := "Evaluator"
	if forceBig {
		name = "EvaluatorBigRat"
	}
	return measure(name, 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(mas[i%len(mas)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchLexSearch measures one exhaustive lex-max-min search per op and
// records the per-search state count. The warm-up run carries the obs
// instrumentation (so -trace journals one search per benchmark and the
// registry counts its states); the timed loop runs with observability
// stripped so the published numbers stay comparable across runs with
// and without -metrics.
func benchLexSearch(name string, c *topology.Clos, fs core.Collection, opts search.Options) (Bench, error) {
	res, err := search.LexMaxMin(c, fs, opts)
	if err != nil {
		return Bench{}, err
	}
	timed := opts
	timed.Obs = nil
	return measure(name, res.States, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.LexMaxMin(c, fs, timed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// deltaEvent is one step of the dynamic-workload trace: an arrival
// (flow + middle) or the departure of the live flow at index depart
// (indices shift as earlier flows leave, exactly as both replayers
// maintain their live lists).
type deltaEvent struct {
	arrive bool
	flow   core.Flow
	middle int
	depart int
}

// deltaTrace generates the seeded 64-event C_5 arrival/departure trace
// both delta benchmarks replay: arrivals dominate (p = 0.6) so the live
// set grows into the tens of flows and the water filling has several
// freeze rounds per event.
func deltaTrace(c *topology.Clos, events int) []deltaEvent {
	rng := rand.New(rand.NewSource(7))
	evs := make([]deltaEvent, 0, events)
	live := 0
	for len(evs) < events {
		if live == 0 || rng.Float64() < 0.6 {
			evs = append(evs, deltaEvent{
				arrive: true,
				flow: core.Flow{
					Src: c.Source(rng.Intn(c.NumToRs())+1, rng.Intn(c.ServersPerToR())+1),
					Dst: c.Dest(rng.Intn(c.NumToRs())+1, rng.Intn(c.ServersPerToR())+1),
				},
				middle: rng.Intn(c.Size()) + 1,
			})
			live++
		} else {
			evs = append(evs, deltaEvent{depart: rng.Intn(live)})
			live--
		}
	}
	return evs
}

// benchDeltaIncremental measures one full trace replay per op through a
// fresh core.IncrementalEvaluator: every event is one Arrive/Depart
// call whose refill reuses the saturated-set prefix of the previous
// fill.
func benchDeltaIncremental(c *topology.Clos, evs []deltaEvent) (Bench, error) {
	return measure("DeltaEvalIncrementalC5", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ie := core.NewIncrementalEvaluator(c)
			handles := make([]core.FlowID, 0, len(evs))
			for _, ev := range evs {
				if ev.arrive {
					h, err := ie.Arrive(ev.flow, ev.middle)
					if err != nil {
						b.Fatal(err)
					}
					handles = append(handles, h)
				} else {
					h := handles[ev.depart]
					handles = append(handles[:ev.depart], handles[ev.depart+1:]...)
					if err := ie.Depart(h); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// benchDeltaFull measures the same trace with the pre-incremental
// discipline: after every event, build a fresh core.Evaluator over the
// live flow set and water-fill from scratch.
func benchDeltaFull(c *topology.Clos, evs []deltaEvent) (Bench, error) {
	return measure("DeltaEvalFullC5", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			flows := make(core.Collection, 0, len(evs))
			ma := make(core.MiddleAssignment, 0, len(evs))
			for _, ev := range evs {
				if ev.arrive {
					flows = append(flows, ev.flow)
					ma = append(ma, ev.middle)
				} else {
					flows = append(flows[:ev.depart], flows[ev.depart+1:]...)
					ma = append(ma[:ev.depart], ma[ev.depart+1:]...)
				}
				if len(flows) == 0 {
					continue
				}
				ev2, err := core.NewEvaluator(c, flows)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ev2.Eval(ma); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func measure(name string, states int, fn func(b *testing.B)) (Bench, error) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	if r.N == 0 {
		return Bench{}, fmt.Errorf("%s: benchmark failed", name)
	}
	out := Bench{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		States:      states,
	}
	if states > 0 && r.NsPerOp() > 0 {
		out.StatesPerSec = float64(states) * 1e9 / float64(r.NsPerOp())
	}
	return out, nil
}

func run(args []string) error {
	fl := flag.NewFlagSet("closbench", flag.ContinueOnError)
	out := fl.String("o", "", "write the JSON report to this file (default: stdout)")
	force := fl.Bool("force", false, "overwrite -o even when the new report has fewer benchmarks than the existing file")
	onlyBlock := fl.Bool("only-block", false, "run only the C_5 block-vs-per-state pair (the CI smoke subset)")
	minBlockSpeedup := fl.Float64("min-block-speedup", 0, "exit non-zero when block_speedup_c5 falls below this (0 disables)")
	onlyDelta := fl.Bool("only-delta", false, "run only the C_5 incremental-vs-full delta pair (the CI smoke subset)")
	minDeltaSpeedup := fl.Float64("min-delta-speedup", 0, "exit non-zero when delta_speedup falls below this (0 disables)")
	ob := obs.AddFlags(fl)
	if err := fl.Parse(args); err != nil {
		return err
	}
	orun, err := ob.Start("closbench", os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := orun.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closbench:", cerr)
		}
	}()
	o := orun.Obs
	// The engine is the one place search options are assembled; each
	// bench tweaks only its space, worker count and evaluation path.
	// The per-state rows pin BlockSize -1 (the legacy path) so the
	// LexSearchBlock* rows have an explicit baseline to beat; everything
	// is bit-identical either way.
	eng := engine.New(engine.Options{Obs: o})
	searchOpts := func(fullSpace bool, workers int) search.Options {
		opts := eng.SearchOptions(context.Background())
		opts.FullSpace, opts.Workers = fullSpace, workers
		opts.BlockSize = -1
		return opts
	}
	blockOpts := func(workers int) search.Options {
		opts := eng.SearchOptions(context.Background())
		opts.Workers = workers // BlockSize 0 = the default block path
		return opts
	}
	prunedOpts := func() search.Options {
		opts := eng.SearchOptions(context.Background())
		opts.Pruned = true
		return opts
	}

	rep := Report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	if !*onlyBlock && !*onlyDelta {
		fast, err := benchEvaluator(false)
		if err != nil {
			return err
		}
		big, err := benchEvaluator(true)
		if err != nil {
			return err
		}
		rep.Benches = append(rep.Benches, fast, big)
		if fast.NsPerOp > 0 {
			rep.EvaluatorSpeedup = float64(big.NsPerOp) / float64(fast.NsPerOp)
		}

		ex, err := adversary.Example23()
		if err != nil {
			return err
		}
		serialFull, err := benchLexSearch("LexSearchFullExample23",
			ex.Clos, ex.Flows, searchOpts(true, 1))
		if err != nil {
			return err
		}
		serialCanon, err := benchLexSearch("LexSearchCanonicalExample23",
			ex.Clos, ex.Flows, searchOpts(false, 1))
		if err != nil {
			return err
		}
		prunedEx, err := benchLexSearch("LexSearchPrunedExample23",
			ex.Clos, ex.Flows, prunedOpts())
		if err != nil {
			return err
		}
		blockEx, err := benchLexSearch("LexSearchBlockExample23",
			ex.Clos, ex.Flows, blockOpts(1))
		if err != nil {
			return err
		}
		rep.Benches = append(rep.Benches, serialFull, serialCanon, prunedEx, blockEx)
	}

	c5, fs5 := benchInstance(5, 7)
	var fullC5 Bench
	if !*onlyBlock && !*onlyDelta {
		fullC5, err = benchLexSearch("LexSearchFullC5", c5, fs5, searchOpts(true, 0))
		if err != nil {
			return err
		}
		rep.Benches = append(rep.Benches, fullC5)
	}
	if !*onlyDelta {
		canonC5, err := benchLexSearch("LexSearchCanonicalC5", c5, fs5, searchOpts(false, 0))
		if err != nil {
			return err
		}
		blockC5, err := benchLexSearch("LexSearchBlockC5", c5, fs5, blockOpts(0))
		if err != nil {
			return err
		}
		rep.Benches = append(rep.Benches, canonC5, blockC5)
		if !*onlyBlock {
			prunedC5, err := benchLexSearch("LexSearchPrunedC5", c5, fs5, prunedOpts())
			if err != nil {
				return err
			}
			rep.Benches = append(rep.Benches, prunedC5)
			if canonC5.States > 0 {
				rep.StateReductionC5 = float64(fullC5.States) / float64(canonC5.States)
			}
			if prunedC5.States > 0 {
				rep.PruneReductionC5 = float64(canonC5.States) / float64(prunedC5.States)
			}
		}
		if blockC5.NsPerOp > 0 {
			rep.BlockSpeedupC5 = float64(canonC5.NsPerOp) / float64(blockC5.NsPerOp)
		}
		if *minBlockSpeedup > 0 && rep.BlockSpeedupC5 < *minBlockSpeedup {
			return fmt.Errorf("block_speedup_c5 = %.2f is below the -min-block-speedup bar %.2f",
				rep.BlockSpeedupC5, *minBlockSpeedup)
		}
	}
	if !*onlyBlock {
		trace := deltaTrace(c5, 64)
		incC5, err := benchDeltaIncremental(c5, trace)
		if err != nil {
			return err
		}
		fullDeltaC5, err := benchDeltaFull(c5, trace)
		if err != nil {
			return err
		}
		rep.Benches = append(rep.Benches, incC5, fullDeltaC5)
		if incC5.NsPerOp > 0 {
			rep.DeltaSpeedup = float64(fullDeltaC5.NsPerOp) / float64(incC5.NsPerOp)
		}
		if *minDeltaSpeedup > 0 && rep.DeltaSpeedup < *minDeltaSpeedup {
			return fmt.Errorf("delta_speedup = %.2f is below the -min-delta-speedup bar %.2f",
				rep.DeltaSpeedup, *minDeltaSpeedup)
		}
	}

	if reg := o.Registry(); reg != nil {
		snap := reg.Snapshot()
		rep.Obs = &snap
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := guardOverwrite(*out, blob, *force); err != nil {
		return err
	}
	return os.WriteFile(*out, blob, 0o644)
}

// guardOverwrite refuses to replace an existing report with one that
// would lose information — fewer benchmark entries, or a published
// headline scalar (any "*speedup*" or "*reduction*" key, e.g.
// evaluator_speedup, block_speedup_c5, prune_reduction_c5) dropping to
// zero or disappearing. Both are the signature of a partial run
// clobbering a complete artifact; force overrides. A missing or
// unparseable existing file never blocks the write.
func guardOverwrite(path string, newBlob []byte, force bool) error {
	if force {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // no prior report (or unreadable): nothing to protect
	}
	var prev Report
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil // not a report we understand: nothing to protect
	}
	var next Report
	if err := json.Unmarshal(newBlob, &next); err != nil {
		return fmt.Errorf("new report is not valid JSON: %w", err)
	}
	if len(next.Benches) < len(prev.Benches) {
		return fmt.Errorf("refusing to overwrite %s: new report has %d benchmarks, existing has %d (use -force to override)",
			path, len(next.Benches), len(prev.Benches))
	}
	// Scalar guard over the raw top-level keys, not the Report struct,
	// so a scalar added later is protected without touching this code.
	var prevRaw, nextRaw map[string]any
	if err := json.Unmarshal(data, &prevRaw); err != nil {
		return nil
	}
	if err := json.Unmarshal(newBlob, &nextRaw); err != nil {
		return fmt.Errorf("new report is not valid JSON: %w", err)
	}
	for key, v := range prevRaw {
		if !strings.Contains(key, "speedup") && !strings.Contains(key, "reduction") {
			continue
		}
		f, ok := v.(float64)
		if !ok || f == 0 {
			continue
		}
		if nf, ok := nextRaw[key].(float64); !ok || nf == 0 {
			return fmt.Errorf("refusing to overwrite %s: scalar %q (%.4g) would disappear from the report (use -force to override)",
				path, key, f)
		}
	}
	// Quantile guard: a timer or histogram that published latency
	// quantiles in the recorded snapshot must still exist in the new one
	// — a run without -obs (or with an instrumentation regression)
	// silently dropping the percentile series is exactly the partial-run
	// clobber this guard exists for.
	if prev.Obs != nil {
		missing := func(kind, name string) error {
			return fmt.Errorf("refusing to overwrite %s: recorded quantile series %s.%s would disappear from the report (use -force to override)",
				path, kind, name)
		}
		for name, ts := range prev.Obs.Timers {
			if ts.P99Ns == 0 {
				continue
			}
			if next.Obs == nil {
				return missing("timers", name)
			}
			if _, ok := next.Obs.Timers[name]; !ok {
				return missing("timers", name)
			}
		}
		for name, hs := range prev.Obs.Histograms {
			if hs.Count == 0 {
				continue
			}
			if next.Obs == nil {
				return missing("histograms", name)
			}
			if _, ok := next.Obs.Histograms[name]; !ok {
				return missing("histograms", name)
			}
		}
	}
	return nil
}
