// Command closbench measures the routing-search hot paths with the
// standard testing.Benchmark harness and persists the numbers as JSON
// (BENCH_search.json at the repository root via `make bench-json`), so
// performance claims in the documentation are regenerable artifacts
// rather than prose.
//
// It covers the two perf-critical layers:
//
//   - per-state evaluation: the Rat64 small-word kernel vs the pinned
//     *big.Rat water filling (core.Evaluator)
//   - routing-space enumeration: the default symmetry-canonical space vs
//     the full n^|F| space (search.LexMaxMin), including an n=5 instance
//     where canonicalization shrinks 5^7 = 78125 states to 855
//
// Usage:
//
//	closbench                 print the JSON to stdout
//	closbench -o BENCH.json   write it to a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/search"
	"closnet/internal/topology"
)

// Bench is one benchmark row of the emitted JSON.
type Bench struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// States is the number of routing states one operation enumerates
	// (search benchmarks only).
	States int `json:"states,omitempty"`
	// StatesPerSec is States scaled by the measured op time.
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
}

// Report is the schema of BENCH_search.json.
type Report struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Benches   []Bench `json:"benchmarks"`
	// EvaluatorSpeedup is big.Rat ns/op over Rat64 ns/op on the same
	// per-state evaluation workload.
	EvaluatorSpeedup float64 `json:"evaluator_speedup"`
	// StateReductionC5 is the full-space over canonical-space state count
	// for the 7-flow C_5 search instance.
	StateReductionC5 float64 `json:"state_reduction_c5"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "closbench:", err)
		os.Exit(1)
	}
}

// benchInstance mirrors the contended collection of the repository
// benchmarks: flows alternate between a cyclic permutation and loopback
// pairs so the water filling has several freeze rounds per assignment.
func benchInstance(n, flows int) (*topology.Clos, core.Collection) {
	c := topology.MustClos(n)
	fs := core.Collection{}
	for f := 0; f < flows; f++ {
		i := f%n + 1
		if f%2 == 0 {
			fs = fs.Add(c.Source(i, 1), c.Dest(i%n+1, 1), 1)
		} else {
			fs = fs.Add(c.Source(i, 1), c.Dest(i, 1), 1)
		}
	}
	return c, fs
}

// benchEvaluator measures one max-min fair evaluation per op on a
// contended C_4 instance, on the Rat64 kernel or pinned to big.Rat.
func benchEvaluator(forceBig bool) (Bench, error) {
	c, fs := benchInstance(4, 8)
	ev, err := core.NewEvaluator(c, fs)
	if err != nil {
		return Bench{}, err
	}
	ev.ForceBig(forceBig)
	rng := rand.New(rand.NewSource(3))
	mas := make([]core.MiddleAssignment, 64)
	for i := range mas {
		mas[i] = make(core.MiddleAssignment, len(fs))
		for fi := range mas[i] {
			mas[i][fi] = 1 + rng.Intn(c.Size())
		}
	}
	name := "Evaluator"
	if forceBig {
		name = "EvaluatorBigRat"
	}
	return measure(name, 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(mas[i%len(mas)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchLexSearch measures one exhaustive lex-max-min search per op and
// records the per-search state count.
func benchLexSearch(name string, c *topology.Clos, fs core.Collection, opts search.Options) (Bench, error) {
	res, err := search.LexMaxMin(c, fs, opts)
	if err != nil {
		return Bench{}, err
	}
	return measure(name, res.States, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.LexMaxMin(c, fs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func measure(name string, states int, fn func(b *testing.B)) (Bench, error) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	if r.N == 0 {
		return Bench{}, fmt.Errorf("%s: benchmark failed", name)
	}
	out := Bench{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		States:      states,
	}
	if states > 0 && r.NsPerOp() > 0 {
		out.StatesPerSec = float64(states) * 1e9 / float64(r.NsPerOp())
	}
	return out, nil
}

func run(args []string) error {
	fl := flag.NewFlagSet("closbench", flag.ContinueOnError)
	out := fl.String("o", "", "write the JSON report to this file (default: stdout)")
	if err := fl.Parse(args); err != nil {
		return err
	}

	rep := Report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	fast, err := benchEvaluator(false)
	if err != nil {
		return err
	}
	big, err := benchEvaluator(true)
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, fast, big)
	if fast.NsPerOp > 0 {
		rep.EvaluatorSpeedup = float64(big.NsPerOp) / float64(fast.NsPerOp)
	}

	ex, err := adversary.Example23()
	if err != nil {
		return err
	}
	serialFull, err := benchLexSearch("LexSearchFullExample23",
		ex.Clos, ex.Flows, search.Options{FullSpace: true, Workers: 1})
	if err != nil {
		return err
	}
	serialCanon, err := benchLexSearch("LexSearchCanonicalExample23",
		ex.Clos, ex.Flows, search.Options{Workers: 1})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, serialFull, serialCanon)

	c5, fs5 := benchInstance(5, 7)
	fullC5, err := benchLexSearch("LexSearchFullC5", c5, fs5, search.Options{FullSpace: true})
	if err != nil {
		return err
	}
	canonC5, err := benchLexSearch("LexSearchCanonicalC5", c5, fs5, search.Options{})
	if err != nil {
		return err
	}
	rep.Benches = append(rep.Benches, fullC5, canonC5)
	if canonC5.States > 0 {
		rep.StateReductionC5 = float64(fullC5.States) / float64(canonC5.States)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(*out, blob, 0o644)
}
