package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"closnet/internal/obs"
)

func reportBlob(t *testing.T, benches int, mutate func(*Report)) []byte {
	t.Helper()
	rep := Report{Benches: make([]Bench, benches)}
	for i := range rep.Benches {
		rep.Benches[i] = Bench{Name: "b", Iterations: 1}
	}
	if mutate != nil {
		mutate(&rep)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func writeBlob(t *testing.T, path string, blob []byte) {
	t.Helper()
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGuardOverwrite: writing a report with fewer benchmarks than the
// existing file is refused unless forced; missing or unparseable
// existing files never block.
func TestGuardOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_search.json")

	if err := guardOverwrite(path, reportBlob(t, 1, nil), false); err != nil {
		t.Errorf("missing file blocked the write: %v", err)
	}

	writeBlob(t, path, reportBlob(t, 3, nil))
	if err := guardOverwrite(path, reportBlob(t, 2, nil), false); err == nil {
		t.Error("shrinking report overwrote without -force")
	}
	if err := guardOverwrite(path, reportBlob(t, 3, nil), false); err != nil {
		t.Errorf("equal-size report blocked: %v", err)
	}
	if err := guardOverwrite(path, reportBlob(t, 4, nil), false); err != nil {
		t.Errorf("larger report blocked: %v", err)
	}
	if err := guardOverwrite(path, reportBlob(t, 2, nil), true); err != nil {
		t.Errorf("-force did not override: %v", err)
	}

	writeBlob(t, path, []byte("not json"))
	if err := guardOverwrite(path, reportBlob(t, 0, nil), false); err != nil {
		t.Errorf("unparseable existing file blocked the write: %v", err)
	}
}

// TestGuardOverwriteScalars: a report whose headline speedup/reduction
// scalars would silently drop to zero (the signature of a partial run,
// e.g. -only-block writing over the full artifact) is refused even when
// the benchmark count holds steady.
func TestGuardOverwriteScalars(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_search.json")
	full := func(r *Report) {
		r.EvaluatorSpeedup = 10.5
		r.StateReductionC5 = 91.4
		r.PruneReductionC5 = 6.2
		r.BlockSpeedupC5 = 2.4
	}
	writeBlob(t, path, reportBlob(t, 3, full))

	cases := []struct {
		name   string
		mutate func(*Report)
		wantOK bool
	}{
		{"all scalars kept", full, true},
		{"scalars changed but non-zero", func(r *Report) {
			full(r)
			r.BlockSpeedupC5 = 3.1
			r.PruneReductionC5 = 5.0
		}, true},
		{"block speedup zeroed", func(r *Report) { full(r); r.BlockSpeedupC5 = 0 }, false},
		{"prune reduction zeroed", func(r *Report) { full(r); r.PruneReductionC5 = 0 }, false},
		{"evaluator speedup zeroed", func(r *Report) { full(r); r.EvaluatorSpeedup = 0 }, false},
		{"state reduction zeroed", func(r *Report) { full(r); r.StateReductionC5 = 0 }, false},
	}
	for _, tc := range cases {
		err := guardOverwrite(path, reportBlob(t, 3, tc.mutate), false)
		if tc.wantOK && err != nil {
			t.Errorf("%s: blocked: %v", tc.name, err)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("%s: scalar drop overwrote without -force", tc.name)
		}
	}

	// -force overrides the scalar guard too.
	if err := guardOverwrite(path, reportBlob(t, 3, func(r *Report) { full(r); r.BlockSpeedupC5 = 0 }), true); err != nil {
		t.Errorf("-force did not override the scalar guard: %v", err)
	}

	// A prior report without the scalars (all zero) never blocks: there
	// is nothing to lose.
	writeBlob(t, path, reportBlob(t, 3, nil))
	if err := guardOverwrite(path, reportBlob(t, 3, nil), false); err != nil {
		t.Errorf("zero-scalar prior report blocked the write: %v", err)
	}
}

// TestGuardOverwriteQuantiles: a recorded observability snapshot with
// timer or histogram quantile series must survive into the new report
// — a run that lost its instrumentation cannot silently clobber the
// percentiles — while empty series never block, and -force overrides.
func TestGuardOverwriteQuantiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_search.json")
	withObs := func(r *Report) {
		r.Obs = &obs.Snapshot{
			Timers: map[string]obs.TimerStats{
				"search.duration": {Count: 12, P50Ns: 100, P90Ns: 200, P99Ns: 300},
				"never.observed":  {},
			},
			Histograms: map[string]obs.HistogramStats{
				"core.fill": {Count: 7, P99Ns: 50},
			},
		}
	}
	writeBlob(t, path, reportBlob(t, 3, withObs))

	if err := guardOverwrite(path, reportBlob(t, 3, withObs), false); err != nil {
		t.Errorf("quantiles kept but write blocked: %v", err)
	}
	// Dropping the whole snapshot, the recorded timer, or the recorded
	// histogram is refused, and the error names the lost series.
	for name, mutate := range map[string]func(*Report){
		"snapshot dropped": func(r *Report) {},
		"timer dropped": func(r *Report) {
			withObs(r)
			delete(r.Obs.Timers, "search.duration")
		},
		"histogram dropped": func(r *Report) {
			withObs(r)
			delete(r.Obs.Histograms, "core.fill")
		},
	} {
		err := guardOverwrite(path, reportBlob(t, 3, mutate), false)
		if err == nil {
			t.Errorf("%s: overwrote without -force", name)
			continue
		}
		if !strings.Contains(err.Error(), "quantile series") {
			t.Errorf("%s: error does not name the quantile series: %v", name, err)
		}
	}
	// The never-observed timer (P99 == 0) holds no quantiles; dropping
	// only it is fine.
	if err := guardOverwrite(path, reportBlob(t, 3, func(r *Report) {
		withObs(r)
		delete(r.Obs.Timers, "never.observed")
	}), false); err != nil {
		t.Errorf("empty timer blocked the write: %v", err)
	}
	if err := guardOverwrite(path, reportBlob(t, 3, nil), true); err != nil {
		t.Errorf("-force did not override the quantile guard: %v", err)
	}
}
