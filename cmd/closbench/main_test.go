package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, path string, benches int) {
	t.Helper()
	rep := Report{Benches: make([]Bench, benches)}
	for i := range rep.Benches {
		rep.Benches[i] = Bench{Name: "b", Iterations: 1}
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGuardOverwrite: writing a report with fewer benchmarks than the
// existing file is refused unless forced; missing or unparseable
// existing files never block.
func TestGuardOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_search.json")

	if err := guardOverwrite(path, 1, false); err != nil {
		t.Errorf("missing file blocked the write: %v", err)
	}

	writeReport(t, path, 3)
	if err := guardOverwrite(path, 2, false); err == nil {
		t.Error("shrinking report overwrote without -force")
	}
	if err := guardOverwrite(path, 3, false); err != nil {
		t.Errorf("equal-size report blocked: %v", err)
	}
	if err := guardOverwrite(path, 4, false); err != nil {
		t.Errorf("larger report blocked: %v", err)
	}
	if err := guardOverwrite(path, 2, true); err != nil {
		t.Errorf("-force did not override: %v", err)
	}

	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := guardOverwrite(path, 0, false); err != nil {
		t.Errorf("unparseable existing file blocked the write: %v", err)
	}
}
