package main

import (
	"path/filepath"
	"testing"

	"closnet/internal/codec"
)

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-n", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithLinks(t *testing.T) {
	if err := run([]string{"-n", "1", "-links"}); err != nil {
		t.Fatalf("run -links: %v", err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestFabricMaxFlowMatchesServerCapacity(t *testing.T) {
	for n := 1; n <= 5; n++ {
		v, err := fabricMaxFlow(n)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(2 * n * n); v != want {
			t.Errorf("n=%d: fabric flow %d, want %d", n, v, want)
		}
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-demo"}); err != nil {
		t.Fatalf("run -demo: %v", err)
	}
}

func TestRunFamilies(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "fattree", "-k", "4"},
		{"-topo", "fattree", "-k", "4", "-links"},
		{"-topo", "benes", "-k", "4"},
		{"-topo", "oversub", "-n", "2", "-ratio", "2:1"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run %v: %v", args, err)
		}
	}
}

func TestEmitScenarioRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ft.json")
	args := []string{"-topo", "fattree", "-k", "4", "-emit",
		"-traffic", "hotspot", "-flows", "6", "-elephants", "0.5", "-seed", "7", "-o", path}
	if err := run(args); err != nil {
		t.Fatalf("emit: %v", err)
	}
	s, err := codec.LoadFile(path)
	if err != nil {
		t.Fatalf("load emitted scenario: %v", err)
	}
	if s.Topology != "fattree" || len(s.Flows) != 6 {
		t.Errorf("emitted topology %q with %d flows, want fattree with 6", s.Topology, len(s.Flows))
	}
	if _, _, _, _, err := s.Build(); err != nil {
		t.Errorf("emitted scenario does not build: %v", err)
	}
}

func TestRunFamilyErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "bogus"},
		{"-topo", "fattree", "-k", "3"},                  // odd pod count
		{"-topo", "benes", "-k", "6"},                    // not a power of two
		{"-topo", "oversub", "-n", "2", "-ratio", "3:1"}, // middles don't divide
		{"-topo", "oversub", "-n", "2", "-ratio", "x"},
		{"-topo", "fattree", "-k", "4", "-emit", "-traffic", "bogus"},
		{"-topo", "fattree", "-k", "4", "-emit", "-flows", "-1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run %v: error expected", args)
		}
	}
}
