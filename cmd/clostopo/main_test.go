package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-n", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithLinks(t *testing.T) {
	if err := run([]string{"-n", "1", "-links"}); err != nil {
		t.Fatalf("run -links: %v", err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestFabricMaxFlowMatchesServerCapacity(t *testing.T) {
	for n := 1; n <= 5; n++ {
		v, err := fabricMaxFlow(n)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(2 * n * n); v != want {
			t.Errorf("n=%d: fabric flow %d, want %d", n, v, want)
		}
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-demo"}); err != nil {
		t.Fatalf("run -demo: %v", err)
	}
}
