// Command clostopo inspects the library's topologies — node/link
// inventory, sample paths, and the full-bisection-bandwidth property of
// the Clos fabric verified by max-flow — and emits generated scenarios
// for any topology family.
//
// Usage:
//
//	clostopo -n 4                     inspect C_4 and MS_4
//	clostopo -n 4 -links              additionally dump every link
//	clostopo -topo fattree -k 4       inspect the 4-pod fat-tree
//	clostopo -topo benes -k 8         inspect the 8-port Benes network
//	clostopo -topo oversub -n 4 -ratio 2:1   inspect an oversubscribed Clos
//	clostopo -topo fattree -k 4 -emit -traffic uniform -flows 6 -seed 1 -o s.json
//	                                  emit a generated codec scenario
//
// The shared observability flags of internal/obs (-trace, -metrics,
// -cpuprofile, -memprofile, -debug-addr) are available as on every
// closnet tool.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"closnet"
	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/gen"
	"closnet/internal/maxflow"
	"closnet/internal/obs"
	"closnet/internal/render"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clostopo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("clostopo", flag.ContinueOnError)
	var (
		n         = fl.Int("n", 2, "network size (middle switches)")
		links     = fl.Bool("links", false, "dump every link")
		demo      = fl.Bool("demo", false, "render the Example 2.3 allocation over C_2")
		topo      = fl.String("topo", "clos", "topology family: clos, fattree, benes, oversub")
		k         = fl.Int("k", 4, "fat-tree pod count / Benes port count")
		ratio     = fl.String("ratio", "1:1", "oversubscription ratio s:m (with -topo oversub)")
		emit      = fl.Bool("emit", false, "emit a generated codec scenario instead of inspecting")
		traffic   = fl.String("traffic", "uniform", "traffic model for -emit: uniform, gravity, hotspot")
		flows     = fl.Int("flows", 0, "flow count for -emit (0 derives from -sparsity)")
		sparsity  = fl.Float64("sparsity", 0, "fraction of server pairs without traffic for -emit")
		elephants = fl.Float64("elephants", 0.25, "elephant flow fraction for -emit")
		seed      = fl.Int64("seed", 1, "random seed for -emit")
		out       = fl.String("o", "", "output file for -emit (default stdout)")
		ob        = obs.AddFlags(fl)
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	orun, err := ob.Start("clostopo", os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := orun.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "clostopo:", cerr)
		}
	}()

	if *demo {
		return runDemo()
	}
	spec, err := specFromFlags(*topo, *n, *k, *ratio)
	if err != nil {
		return err
	}
	if *emit {
		return emitScenario(spec, gen.TrafficConfig{
			Model:            *traffic,
			Flows:            *flows,
			Sparsity:         *sparsity,
			ElephantFraction: *elephants,
			Seed:             *seed,
		}, *out)
	}
	if *topo != "clos" {
		return inspectFabric(spec, *links)
	}
	c, err := closnet.NewClos(*n)
	if err != nil {
		return err
	}
	fmt.Print(render.ClosDiagram(c))
	ms, err := closnet.NewMacroSwitch(*n)
	if err != nil {
		return err
	}
	for _, net := range []*closnet.Network{c.Network(), ms.Network()} {
		fmt.Println(net)
		if *links {
			for _, l := range net.Links() {
				capacity := "inf"
				if !l.Unbounded {
					capacity = l.Capacity.RatString()
				}
				fmt.Printf("  %-14s cap %s\n", net.LinkName(l.ID), capacity)
			}
		}
	}

	// Sample: all n paths between the first source and the last
	// destination.
	src, dst := c.Source(1, 1), c.Dest(2*(*n), *n)
	fmt.Printf("paths %s -> %s:\n", c.Network().Node(src).Name, c.Network().Node(dst).Name)
	for m := 1; m <= *n; m++ {
		p, err := c.Path(src, dst, m)
		if err != nil {
			return err
		}
		fmt.Printf("  via M%d:", m)
		for _, l := range p {
			fmt.Printf(" %s", c.Network().LinkName(l))
		}
		fmt.Println()
	}

	// Full bisection bandwidth: the fabric's input->output max flow must
	// equal the total server-facing capacity 2n².
	value, err := fabricMaxFlow(*n)
	if err != nil {
		return err
	}
	want := int64(2 * (*n) * (*n))
	fmt.Printf("fabric max flow: %d (server capacity %d) — full bisection bandwidth: %v\n",
		value, want, value >= want)
	return nil
}

// fabricMaxFlow computes the max flow through the C_n fabric from a
// super-source feeding every input ToR at its server capacity n to a
// super-sink draining every output ToR likewise.
func fabricMaxFlow(n int) (int64, error) {
	num := 1 + 2*n + n + 2*n + 1
	s, t := 0, num-1
	input := func(i int) int { return 1 + i }
	middle := func(m int) int { return 1 + 2*n + m }
	output := func(o int) int { return 1 + 2*n + n + o }
	g := maxflow.NewGraph(num)
	for i := 0; i < 2*n; i++ {
		if _, err := g.AddEdge(s, input(i), int64(n)); err != nil {
			return 0, err
		}
		if _, err := g.AddEdge(output(i), t, int64(n)); err != nil {
			return 0, err
		}
		for m := 0; m < n; m++ {
			if _, err := g.AddEdge(input(i), middle(m), 1); err != nil {
				return 0, err
			}
			if _, err := g.AddEdge(middle(m), output(i), 1); err != nil {
				return 0, err
			}
		}
	}
	res, err := g.Max(s, t)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// runDemo renders the Figure 1 instance: topology diagram, per-flow
// allocation table with bottlenecks, and fabric utilization under the
// paper's routing A.
func runDemo() error {
	in, err := closnet.Example23()
	if err != nil {
		return err
	}
	fmt.Print(render.ClosDiagram(in.Clos))
	r, err := core.ClosRouting(in.Clos, in.Flows, in.Witness)
	if err != nil {
		return err
	}
	a, err := core.MaxMinFair(in.Clos.Network(), in.Flows, r)
	if err != nil {
		return err
	}
	table, err := render.AllocationTable(in.Clos.Network(), in.Flows, r, a)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(table)
	fmt.Println()
	fmt.Print(render.FabricUtilization(in.Clos, r, a))
	return nil
}

// specFromFlags maps the family flags onto a gen.Spec.
func specFromFlags(topo string, n, k int, ratio string) (gen.Spec, error) {
	switch topo {
	case "clos":
		return gen.ClosSpec(n)
	case "fattree":
		return gen.FatTreeSpec(k)
	case "benes":
		return gen.BenesSpec(k)
	case "oversub":
		parts := strings.SplitN(ratio, ":", 2)
		if len(parts) != 2 {
			return gen.Spec{}, fmt.Errorf("ratio %q is not of the form s:m", ratio)
		}
		sr, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return gen.Spec{}, fmt.Errorf("ratio %q: %v", ratio, err)
		}
		mr, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return gen.Spec{}, fmt.Errorf("ratio %q: %v", ratio, err)
		}
		return gen.OversubscribedClosSpec(2*n, n, sr, mr)
	default:
		return gen.Spec{}, fmt.Errorf("unknown topology %q (known: clos, fattree, benes, oversub)", topo)
	}
}

// emitScenario generates a scenario for the spec and writes it.
func emitScenario(spec gen.Spec, tc gen.TrafficConfig, out string) error {
	s, err := gen.Scenario(spec, tc)
	if err != nil {
		return err
	}
	data, err := codec.Encode(s)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// inspectFabric prints the non-Clos families: network inventory, links
// on request, and the full choice fan of one corner-to-corner pair.
func inspectFabric(spec gen.Spec, links bool) error {
	f, err := spec.Build()
	if err != nil {
		return err
	}
	net := f.Network()
	fmt.Printf("%s: %d ToRs x %d servers per side, %d path choices\n",
		spec.Family, f.NumToRs(), f.ServersPerToR(), f.Size())
	fmt.Println(net)
	if links {
		for _, l := range net.Links() {
			capacity := "inf"
			if !l.Unbounded {
				capacity = l.Capacity.RatString()
			}
			fmt.Printf("  %-14s cap %s\n", net.LinkName(l.ID), capacity)
		}
	}
	src, dst := f.Source(1, 1), f.Dest(f.NumToRs(), f.ServersPerToR())
	fmt.Printf("paths %s -> %s:\n", net.Node(src).Name, net.Node(dst).Name)
	for m := 1; m <= f.Size(); m++ {
		p, err := f.Path(src, dst, m)
		if err != nil {
			return err
		}
		fmt.Printf("  choice %d:", m)
		for _, l := range p {
			fmt.Printf(" %s", net.LinkName(l))
		}
		fmt.Println()
	}
	return nil
}
