// Command clostopo inspects the library's topologies: node/link
// inventory, sample paths, and the full-bisection-bandwidth property of
// the Clos fabric verified by max-flow.
//
// Usage:
//
//	clostopo -n 4              inspect C_4 and MS_4
//	clostopo -n 4 -links       additionally dump every link
//
// The shared observability flags of internal/obs (-trace, -metrics,
// -cpuprofile, -memprofile, -debug-addr) are available as on every
// closnet tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"closnet"
	"closnet/internal/core"
	"closnet/internal/maxflow"
	"closnet/internal/obs"
	"closnet/internal/render"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clostopo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("clostopo", flag.ContinueOnError)
	var (
		n     = fl.Int("n", 2, "network size (middle switches)")
		links = fl.Bool("links", false, "dump every link")
		demo  = fl.Bool("demo", false, "render the Example 2.3 allocation over C_2")
		ob    = obs.AddFlags(fl)
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	orun, err := ob.Start("clostopo", os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := orun.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "clostopo:", cerr)
		}
	}()

	if *demo {
		return runDemo()
	}
	c, err := closnet.NewClos(*n)
	if err != nil {
		return err
	}
	fmt.Print(render.ClosDiagram(c))
	ms, err := closnet.NewMacroSwitch(*n)
	if err != nil {
		return err
	}
	for _, net := range []*closnet.Network{c.Network(), ms.Network()} {
		fmt.Println(net)
		if *links {
			for _, l := range net.Links() {
				capacity := "inf"
				if !l.Unbounded {
					capacity = l.Capacity.RatString()
				}
				fmt.Printf("  %-14s cap %s\n", net.LinkName(l.ID), capacity)
			}
		}
	}

	// Sample: all n paths between the first source and the last
	// destination.
	src, dst := c.Source(1, 1), c.Dest(2*(*n), *n)
	fmt.Printf("paths %s -> %s:\n", c.Network().Node(src).Name, c.Network().Node(dst).Name)
	for m := 1; m <= *n; m++ {
		p, err := c.Path(src, dst, m)
		if err != nil {
			return err
		}
		fmt.Printf("  via M%d:", m)
		for _, l := range p {
			fmt.Printf(" %s", c.Network().LinkName(l))
		}
		fmt.Println()
	}

	// Full bisection bandwidth: the fabric's input->output max flow must
	// equal the total server-facing capacity 2n².
	value, err := fabricMaxFlow(*n)
	if err != nil {
		return err
	}
	want := int64(2 * (*n) * (*n))
	fmt.Printf("fabric max flow: %d (server capacity %d) — full bisection bandwidth: %v\n",
		value, want, value >= want)
	return nil
}

// fabricMaxFlow computes the max flow through the C_n fabric from a
// super-source feeding every input ToR at its server capacity n to a
// super-sink draining every output ToR likewise.
func fabricMaxFlow(n int) (int64, error) {
	num := 1 + 2*n + n + 2*n + 1
	s, t := 0, num-1
	input := func(i int) int { return 1 + i }
	middle := func(m int) int { return 1 + 2*n + m }
	output := func(o int) int { return 1 + 2*n + n + o }
	g := maxflow.NewGraph(num)
	for i := 0; i < 2*n; i++ {
		if _, err := g.AddEdge(s, input(i), int64(n)); err != nil {
			return 0, err
		}
		if _, err := g.AddEdge(output(i), t, int64(n)); err != nil {
			return 0, err
		}
		for m := 0; m < n; m++ {
			if _, err := g.AddEdge(input(i), middle(m), 1); err != nil {
				return 0, err
			}
			if _, err := g.AddEdge(middle(m), output(i), 1); err != nil {
				return 0, err
			}
		}
	}
	res, err := g.Max(s, t)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// runDemo renders the Figure 1 instance: topology diagram, per-flow
// allocation table with bottlenecks, and fabric utilization under the
// paper's routing A.
func runDemo() error {
	in, err := closnet.Example23()
	if err != nil {
		return err
	}
	fmt.Print(render.ClosDiagram(in.Clos))
	r, err := core.ClosRouting(in.Clos, in.Flows, in.Witness)
	if err != nil {
		return err
	}
	a, err := core.MaxMinFair(in.Clos.Network(), in.Flows, r)
	if err != nil {
		return err
	}
	table, err := render.AllocationTable(in.Clos.Network(), in.Flows, r, a)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(table)
	fmt.Println()
	fmt.Print(render.FabricUtilization(in.Clos, r, a))
	return nil
}
