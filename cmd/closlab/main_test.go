package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "F2"}); err != nil {
		t.Fatalf("-exp F2: %v", err)
	}
	if err := run([]string{"-exp", "F2", "-csv"}); err != nil {
		t.Fatalf("-exp F2 -csv: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNoModeIsError(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing mode accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-exp", "F2", "-json"}); err != nil {
		t.Fatalf("-exp F2 -json: %v", err)
	}
}
