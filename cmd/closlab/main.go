// Command closlab regenerates the paper's figures and bounds as tables.
//
// Usage:
//
//	closlab -list              list available experiments
//	closlab -exp T1            run one experiment
//	closlab -all               run every experiment
//	closlab -exp S1 -csv       emit CSV (or -json) instead of aligned text
//	closlab -exp A1 -workers 1 force the serial routing-space search
//	closlab -all -cpuprofile cpu.pprof -memprofile mem.pprof
//	closlab -exp T2 -metrics -trace trace.jsonl
//
// Experiment IDs follow DESIGN.md's per-experiment index: F1, F2, T1,
// F3, T2, F4, T3, S1, S1b, S2, P1, E1, R1, M1, D1, O1, A1.
//
// The shared engine flags (internal/engine): -workers sets the
// enumeration worker count for every exhaustive routing-space search an
// experiment launches (0 = one worker per core, 1 = serial) and
// -max-states caps each enumeration. The tables are bit-identical for
// every setting; only wall-clock time changes.
//
// The shared observability flags (internal/obs): -metrics prints live
// search progress and a final metrics summary on stderr, -trace writes
// a structured JSONL event journal, -debug-addr serves expvar/pprof,
// and -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"

	"closnet"
	"closnet/internal/engine"
	"closnet/internal/experiments"
	"closnet/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "closlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("closlab", flag.ContinueOnError)
	var (
		list = fl.Bool("list", false, "list available experiments")
		exp  = fl.String("exp", "", "experiment ID to run (e.g. F1, T3)")
		all  = fl.Bool("all", false, "run every experiment")
		csv  = fl.Bool("csv", false, "emit CSV instead of aligned text")
		js   = fl.Bool("json", false, "emit JSON instead of aligned text")
		ef   = engine.AddFlags(fl)
		ob   = obs.AddFlags(fl)
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	orun, err := ob.Start("closlab", os.Stderr)
	if err != nil {
		return err
	}
	experiments.Engine = ef.Engine(orun.Obs)
	defer func() {
		if cerr := orun.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closlab:", cerr)
		}
	}()

	runners := closnet.Experiments()
	switch {
	case *list:
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return nil
	case *all:
		for _, r := range runners {
			if err := emit(r, *csv, *js, orun.Obs); err != nil {
				return err
			}
		}
		return nil
	case *exp != "":
		for _, r := range runners {
			if r.ID == *exp {
				return emit(r, *csv, *js, orun.Obs)
			}
		}
		return fmt.Errorf("unknown experiment %q (try -list)", *exp)
	default:
		fl.Usage()
		return fmt.Errorf("one of -list, -exp or -all is required")
	}
}

func emit(r closnet.ExperimentRunner, csv, js bool, o *obs.Obs) error {
	o.Journal().Emit("experiment.start", obs.F{"id": r.ID, "title": r.Title})
	tab, err := r.Run()
	if err != nil {
		o.Journal().Emit("experiment.error", obs.F{"id": r.ID, "error": err.Error()})
		return fmt.Errorf("%s: %w", r.ID, err)
	}
	o.Journal().Emit("experiment.end", obs.F{"id": r.ID})
	switch {
	case js:
		out, err := tab.JSON()
		if err != nil {
			return err
		}
		fmt.Println(out)
	case csv:
		fmt.Print(tab.CSV())
	default:
		fmt.Println(tab.String())
	}
	return nil
}
