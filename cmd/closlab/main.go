// Command closlab regenerates the paper's figures and bounds as tables.
//
// Usage:
//
//	closlab -list              list available experiments
//	closlab -exp T1            run one experiment
//	closlab -all               run every experiment
//	closlab -exp S1 -csv       emit CSV (or -json) instead of aligned text
//	closlab -exp A1 -workers 1 force the serial routing-space search
//	closlab -all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiment IDs follow DESIGN.md's per-experiment index: F1, F2, T1,
// F3, T2, F4, T3, S1, S1b, S2, P1, E1, R1, M1, D1, O1, A1.
//
// -workers sets the enumeration worker count for every exhaustive
// routing-space search an experiment launches (0 = one worker per core,
// 1 = serial). The tables are bit-identical for every setting; only
// wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"os"

	"closnet"
	"closnet/internal/experiments"
	"closnet/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "closlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("closlab", flag.ContinueOnError)
	var (
		list    = fl.Bool("list", false, "list available experiments")
		exp     = fl.String("exp", "", "experiment ID to run (e.g. F1, T3)")
		all     = fl.Bool("all", false, "run every experiment")
		csv     = fl.Bool("csv", false, "emit CSV instead of aligned text")
		js      = fl.Bool("json", false, "emit JSON instead of aligned text")
		workers = fl.Int("workers", 0, "routing-space search workers (0 = all cores, 1 = serial)")
		cpuProf = fl.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fl.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	experiments.SearchWorkers = *workers
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "closlab:", perr)
		}
	}()

	runners := closnet.Experiments()
	switch {
	case *list:
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return nil
	case *all:
		for _, r := range runners {
			if err := emit(r, *csv, *js); err != nil {
				return err
			}
		}
		return nil
	case *exp != "":
		for _, r := range runners {
			if r.ID == *exp {
				return emit(r, *csv, *js)
			}
		}
		return fmt.Errorf("unknown experiment %q (try -list)", *exp)
	default:
		fl.Usage()
		return fmt.Errorf("one of -list, -exp or -all is required")
	}
}

func emit(r closnet.ExperimentRunner, csv, js bool) error {
	tab, err := r.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", r.ID, err)
	}
	switch {
	case js:
		out, err := tab.JSON()
		if err != nil {
			return err
		}
		fmt.Println(out)
	case csv:
		fmt.Print(tab.CSV())
	default:
		fmt.Println(tab.String())
	}
	return nil
}
