package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"closnet/internal/corpus"
	"closnet/internal/obs"
	"closnet/internal/server"
)

// runLoadgen is the `closnetd loadgen` mode: it replays a C_n scenario
// corpus against a server — a freshly started in-process one by
// default, or a running daemon via -url — and reports achieved request
// rate and latency percentiles. The default corpus is the paper's §4
// collections over C_n (replication impossibility and starvation), so
// the cold path exercises the real water-filling cost (Theorem 4.3 at
// n=4 is 77 flows); the Theorem 3.4 gadgets are available via -corpus.
func runLoadgen(args []string, stdout, stderr io.Writer) error {
	fl := flag.NewFlagSet("closnetd loadgen", flag.ContinueOnError)
	fl.SetOutput(stderr)
	var (
		url      = fl.String("url", "", "base URL of a running daemon (default: start an in-process server)")
		endpoint = fl.String("endpoint", "evaluate", "endpoint to exercise: evaluate, doom (search needs small instances)")
		n        = fl.Int("n", 4, "corpus network size (adversarial families over C_n)")
		conns    = fl.Int("conns", 8, "concurrent client connections")
		rps      = fl.Int("rps", 0, "target request rate (0 = closed loop, as fast as the server answers)")
		duration = fl.Duration("duration", 5*time.Second, "measurement window (ignored when -requests > 0)")
		requests = fl.Int("requests", 0, "fixed request count instead of a time window")
		cold     = fl.Bool("cold", false, "disable the in-process server's result cache (measure the compute path)")
		workers  = fl.Int("workers", 0, "in-process server worker pool (0 = one per core)")
		families = fl.String("corpus", "theorem42,theorem43",
			"comma-separated corpus families ("+strings.Join(corpus.Families(), ", ")+")")
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	// Value validation: a zero or negative setting silently turning into
	// "no measurement at all" (or a divide-by-zero pacing ticker) is the
	// kind of benchmark bug that publishes wrong numbers. Reject, don't
	// default.
	switch {
	case *conns < 1:
		return fmt.Errorf("loadgen: -conns must be at least 1 (got %d)", *conns)
	case *rps < 0:
		return fmt.Errorf("loadgen: -rps must not be negative (got %d)", *rps)
	case *requests < 0:
		return fmt.Errorf("loadgen: -requests must not be negative (got %d)", *requests)
	case *requests == 0 && *duration <= 0:
		return fmt.Errorf("loadgen: -duration must be positive when -requests is unset (got %s)", *duration)
	}

	bodies, names, err := corpus.Build(*n, strings.Split(*families, ","))
	if err != nil {
		return err
	}

	base := *url
	var reg *obs.Registry
	if base == "" {
		cacheSize := 0 // Options default
		if *cold {
			cacheSize = -1
		}
		reg = obs.NewRegistry()
		srv, err := server.New(server.Options{
			Workers:   *workers,
			CacheSize: cacheSize,
			Obs:       &obs.Obs{Reg: reg},
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		mode := "warm (cached)"
		if *cold {
			mode = "cold (cache disabled)"
		}
		fmt.Fprintf(stderr, "closnetd loadgen: in-process server on %s, %s\n", base, mode)
	}
	target := base + "/v1/" + *endpoint

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conns * 2,
		MaxIdleConnsPerHost: *conns * 2,
	}}

	// One sequential pass over the corpus outside the measurement
	// window: fills the cache on the warm path and establishes
	// connections on both.
	for _, body := range bodies {
		if _, _, err := fire(client, target, body); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	res := drive(client, target, bodies, *conns, *rps, *requests, *duration)

	pacing := "closed loop"
	if *rps > 0 {
		pacing = fmt.Sprintf("%d req/s target", *rps)
	}
	fmt.Fprintf(stdout, "closnetd loadgen: endpoint /v1/%s, corpus C_%d (%v), %d conns, %s\n",
		*endpoint, *n, names, *conns, pacing)
	fmt.Fprintf(stdout, "requests %d  ok %d  errors %d  elapsed %s  rate %.1f req/s\n",
		res.total, res.ok, res.total-res.ok, res.elapsed.Round(time.Millisecond),
		float64(res.total)/res.elapsed.Seconds())
	if st := res.lat.Stats(); st.Count > 0 {
		fmt.Fprintf(stdout, "latency  p50 %s  p95 %s  p99 %s  max %s\n",
			time.Duration(res.lat.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(res.lat.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(res.lat.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(st.MaxNs).Round(time.Microsecond))
	}
	if reg != nil {
		snap := reg.Snapshot()
		fmt.Fprintf(stdout, "server   cache hits %d  misses %d  coalesced %d  rejects %d\n",
			snap.Counters["server.cache.hits"], snap.Counters["server.cache.misses"],
			snap.Counters["server.coalesced"], snap.Counters["server.rejects"])
	}
	if res.total > res.ok {
		return fmt.Errorf("%d requests failed", res.total-res.ok)
	}
	return nil
}

type loadResult struct {
	total   int64
	ok      int64
	elapsed time.Duration
	// lat is the shared latency histogram every connection observes
	// into: Observe is lock-free and allocation-free, so one histogram
	// replaces the per-worker sample slices (and their unbounded growth)
	// without serializing the workers. Quantiles come out within the
	// obs.Histogram error bound (< 50% per bucket octave split) instead
	// of exact rank order — the right trade for a load generator whose
	// sample arrays used to dominate client-side memory traffic.
	lat *obs.Histogram
}

// drive replays the corpus round-robin from conns concurrent clients
// until the request budget or the time window runs out.
func drive(client *http.Client, target string, corpus [][]byte, conns, rps, requests int, window time.Duration) *loadResult {
	var (
		next   atomic.Int64
		total  atomic.Int64
		ok     atomic.Int64
		ticker <-chan time.Time
	)
	if rps > 0 {
		t := time.NewTicker(time.Second / time.Duration(rps))
		defer t.Stop()
		ticker = t.C
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if requests <= 0 {
		timer := time.AfterFunc(window, cancel)
		defer timer.Stop()
	}

	lat := &obs.Histogram{}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := next.Add(1) - 1
				if requests > 0 && i >= int64(requests) {
					return
				}
				if ticker != nil {
					select {
					case <-ticker:
					case <-ctx.Done():
						return
					}
				}
				t0 := time.Now()
				status, err := fireDiscard(client, target, corpus[i%int64(len(corpus))])
				total.Add(1)
				if err == nil && status == http.StatusOK {
					ok.Add(1)
				}
				lat.Observe(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	return &loadResult{total: total.Load(), ok: ok.Load(), elapsed: time.Since(start), lat: lat}
}

func fire(client *http.Client, target string, body []byte) (int, []byte, error) {
	resp, err := client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// fireDiscard is fire without materializing the response body — the
// measurement loop only needs the status, and on a small machine the
// client's allocations compete with the server for the same cores.
func fireDiscard(client *http.Client, target string, body []byte) (int, error) {
	resp, err := client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, err
}
