package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's stderr while serve is
// writing to it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

// TestServeAndShutdown boots the daemon on an ephemeral port, round-trips
// a health check and an evaluation, then cancels the context and expects
// a clean drain.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stderr := &syncBuffer{}
	served := make(chan error, 1)
	go func() {
		served <- serve(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, stderr)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(stderr.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-served:
			t.Fatalf("serve exited early: %v\nstderr: %s", err, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address\nstderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	scenario := `{"tors": 2, "servers": 1, "middles": 2,
		"flows": [{"srcSwitch": 1, "srcServer": 1, "dstSwitch": 2, "dstServer": 1}]}`
	post, err := http.Post(base+"/v1/evaluate", "application/json", strings.NewReader(scenario))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	body, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: status %d, body %s", post.StatusCode, body)
	}
	if !strings.Contains(string(body), `"throughput"`) {
		t.Errorf("evaluate response lacks a throughput: %s", body)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never shut down\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "shutdown complete") {
		t.Errorf("no clean shutdown marker in stderr: %s", stderr.String())
	}
}

// TestLoadgenSmoke replays a small fixed budget against an in-process
// server and checks the report shape.
func TestLoadgenSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"loadgen", "-requests", "40", "-conns", "4", "-n", "3"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("loadgen: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"requests 40", "errors 0", "rate", "latency", "cache hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("loadgen report lacks %q:\n%s", want, out)
		}
	}
}

// TestLoadgenColdDisablesCache checks the cold configuration actually
// bypasses the result cache.
func TestLoadgenColdDisablesCache(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"loadgen", "-cold", "-requests", "20", "-conns", "2", "-n", "3"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("loadgen -cold: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "cache hits 0") {
		t.Errorf("cold run reported cache hits:\n%s", stdout.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestLoadgenRejectsBadValues: semantically invalid load settings exit
// non-zero with a diagnostic instead of silently measuring nothing.
func TestLoadgenRejectsBadValues(t *testing.T) {
	for name, args := range map[string][]string{
		"zero conns":     {"loadgen", "-conns", "0", "-requests", "1"},
		"negative conns": {"loadgen", "-conns", "-3", "-requests", "1"},
		"negative rps":   {"loadgen", "-rps", "-1", "-requests", "1"},
		"negative reqs":  {"loadgen", "-requests", "-5"},
		"zero window":    {"loadgen", "-duration", "0s"},
		"bad duration":   {"loadgen", "-duration", "fast"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("%s (%v): accepted", name, args)
		}
	}
}
