// Command closnetd serves scenario evaluation over HTTP: the
// internal/server stack (content-addressed result cache, singleflight
// coalescing, admission control) behind a plain JSON API.
//
// Usage:
//
//	closnetd                                  serve on localhost:8427
//	closnetd -addr localhost:0 -workers 4     ephemeral port, bounded pool
//	closnetd -cache 0 -timeout 2s             no cache, tight deadlines
//	closnetd loadgen -duration 5s             benchmark an in-process server
//	closnetd loadgen -url http://host:8427    benchmark a running daemon
//
// Endpoints: POST /v1/evaluate, POST /v1/search?objective=lex|
// throughput|relative, POST /v1/doom (all take a codec.Scenario JSON
// body), POST /v1/batch (a {"op": ..., "items": [{"scenario": ...},
// ...]} envelope answered with the concatenated single-call bodies in
// request order), POST /v1/session (+ /v1/session/{id}/delta and
// /v1/session/{id}/close — stateful incremental evaluation), GET
// /healthz, GET /readyz, GET /v1/stats.
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight requests
// finish, new ones get fast 503s, then the listener closes.
//
// The shared observability flags of internal/obs (-trace, -metrics,
// -cpuprofile, -memprofile, -debug-addr) are available as on every
// closnet tool; -trace records one journal event per request.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"closnet/internal/obs"
	"closnet/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "closnetd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "loadgen" {
		return runLoadgen(args[1:], stdout, stderr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, args, stderr)
}

// serve runs the daemon until ctx is cancelled (by signal in main, by
// the test harness in tests), then drains and shuts down.
func serve(ctx context.Context, args []string, stderr io.Writer) error {
	fl := flag.NewFlagSet("closnetd", flag.ContinueOnError)
	fl.SetOutput(stderr)
	var (
		addr          = fl.String("addr", "localhost:8427", "listen address (port 0 picks an ephemeral port)")
		workers       = fl.Int("workers", 0, "max concurrent computations (0 = one per core)")
		queue         = fl.Int("queue", server.DefaultQueueDepth, "max requests waiting for a worker slot (0 = reject when the pool is full)")
		cache         = fl.Int("cache", server.DefaultCacheSize, "result cache size in entries (0 = caching disabled)")
		timeout       = fl.Duration("timeout", server.DefaultTimeout, "per-request compute deadline (0 = none)")
		searchWorkers = fl.Int("search-workers", 1, "enumeration workers per /v1/search request")
		maxStates     = fl.Int("max-states", 0, "per-search state cap (0 = engine default)")
		maxSessions   = fl.Int("max-sessions", 0, "max concurrently open /v1/session sessions (0 = engine default)")
		sessionTTL    = fl.Duration("session-ttl", 0, "idle session lifetime before eviction (0 = engine default)")
		drainTimeout  = fl.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		ob            = obs.AddFlags(fl)
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	orun, err := ob.Start("closnetd", stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := orun.Close(); cerr != nil {
			fmt.Fprintln(stderr, "closnetd:", cerr)
		}
	}()

	srv, err := server.New(server.Options{
		Workers:       *workers,
		QueueDepth:    noneIfZero(*queue),
		CacheSize:     noneIfZero(*cache),
		Timeout:       noneIfZeroDuration(*timeout),
		SearchWorkers: *searchWorkers,
		MaxStates:     *maxStates,
		MaxSessions:   *maxSessions,
		SessionTTL:    *sessionTTL,
		Obs:           orun.Obs,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "closnetd: listening on http://%s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stderr, "closnetd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "closnetd: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-serveErr // http.ErrServerClosed after a clean Shutdown
	fmt.Fprintln(stderr, "closnetd: shutdown complete")
	return nil
}

// noneIfZero maps the CLI convention (0 disables) onto the Options
// convention (0 means default, negative disables).
func noneIfZero(v int) int {
	if v == 0 {
		return -1
	}
	return v
}

func noneIfZeroDuration(v time.Duration) time.Duration {
	if v == 0 {
		return -1
	}
	return v
}
