package main

import (
	"os"
	"path/filepath"
	"testing"

	"closnet/internal/corpus"
)

func TestGenerateAndEvaluateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := run([]string{"-family", "theorem43", "-n", "3", "-o", path}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("output file missing: %v", err)
	}
	if err := run([]string{"-eval", path}); err != nil {
		t.Fatalf("evaluate: %v", err)
	}
}

func TestGenerateAllFamilies(t *testing.T) {
	for _, family := range []string{"example23", "example53", "theorem34", "theorem42", "theorem43", "theorem54"} {
		if err := run([]string{"-family", family, "-n", "3", "-k", "2", "-o", filepath.Join(t.TempDir(), "s.json")}); err != nil {
			t.Errorf("family %s: %v", family, err)
		}
	}
}

func TestGenerateToStdout(t *testing.T) {
	if err := run([]string{"-family", "example23"}); err != nil {
		t.Fatalf("stdout generate: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing mode accepted")
	}
	if err := run([]string{"-family", "bogus"}); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run([]string{"-eval", "/nonexistent/file.json"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
	// Theorem 5.4 needs odd n: surfaced as an error, not a panic.
	if err := run([]string{"-family", "theorem54", "-n", "4"}); err == nil {
		t.Error("even n accepted for theorem54")
	}
}

func TestEvaluateScenarioWithoutAssignment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bare.json")
	bare := `{"tors":2,"servers":1,"middles":2,"flows":[{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1}]}`
	if err := os.WriteFile(path, []byte(bare), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-eval", path}); err != nil {
		t.Fatalf("evaluate bare scenario: %v", err)
	}
}

func TestGenerateCorpusFamilies(t *testing.T) {
	for _, name := range corpus.Families() {
		path := filepath.Join(t.TempDir(), "s.json")
		if err := run([]string{"-corpus", name, "-n", "3", "-o", path}); err != nil {
			t.Errorf("corpus %s: %v", name, err)
			continue
		}
		if err := run([]string{"-eval", path}); err != nil {
			t.Errorf("evaluate corpus %s: %v", name, err)
		}
	}
	if err := run([]string{"-corpus", "bogus"}); err == nil {
		t.Error("unknown corpus family accepted")
	}
}
