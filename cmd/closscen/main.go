// Command closscen generates and evaluates problem scenarios as JSON,
// the interchange format of package codec.
//
// Usage:
//
//	closscen -family example23                     emit the Figure 1 instance
//	closscen -family theorem43 -n 5                emit the starvation instance
//	closscen -family theorem54 -n 7 -k 2 -o f.json write to a file
//	closscen -corpus genfattree                    emit a corpus family
//	closscen -eval f.json                          water-fill a saved scenario
//
// -family names the paper's adversarial constructions; -corpus names
// any family of the shared scenario corpus (internal/corpus), which
// includes the generated fat-tree, Benes and oversubscribed-Clos
// instances (genfattree, genbenes, genoversub).
//
// Evaluation uses the scenario's embedded assignment; if the scenario
// carries none, every flow is routed via middle switch 1.
//
// The shared observability flags of internal/obs (-trace, -metrics,
// -cpuprofile, -memprofile, -debug-addr) are available as on every
// closnet tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"closnet"
	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/corpus"
	"closnet/internal/obs"
	"closnet/internal/render"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "closscen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("closscen", flag.ContinueOnError)
	var (
		family = fl.String("family", "", "instance family: example23, example53, theorem34, theorem42, theorem43, theorem54")
		corp   = fl.String("corpus", "", "corpus family to emit (see internal/corpus.Families)")
		n      = fl.Int("n", 3, "network size for parameterized families")
		k      = fl.Int("k", 1, "multiplicity for parameterized families")
		out    = fl.String("o", "", "output file (default stdout)")
		eval   = fl.String("eval", "", "scenario file to water-fill and render")
		ob     = obs.AddFlags(fl)
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	orun, err := ob.Start("closscen", os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := orun.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closscen:", cerr)
		}
	}()

	switch {
	case *eval != "":
		return evaluate(*eval)
	case *family != "":
		return generate(*family, *n, *k, *out)
	case *corp != "":
		return generateCorpus(*corp, *n, *out)
	default:
		fl.Usage()
		return fmt.Errorf("one of -family, -corpus or -eval is required")
	}
}

func generate(family string, n, k int, out string) error {
	in, err := buildFamily(family, n, k)
	if err != nil {
		return err
	}
	s, err := codec.FromInstance(in)
	if err != nil {
		return err
	}
	data, err := codec.Encode(s)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func generateCorpus(name string, n int, out string) error {
	bodies, _, err := corpus.Build(n, []string{name})
	if err != nil {
		return err
	}
	data := append(bodies[0], '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func buildFamily(family string, n, k int) (*closnet.AdversarialInstance, error) {
	switch family {
	case "example23":
		return closnet.Example23()
	case "example53":
		return closnet.Example53()
	case "theorem34":
		return closnet.Theorem34(n, k)
	case "theorem42":
		return closnet.Theorem42(n)
	case "theorem43":
		return closnet.Theorem43(n)
	case "theorem54":
		return closnet.Theorem54(n, k)
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func evaluate(path string) error {
	s, err := codec.LoadFile(path)
	if err != nil {
		return err
	}
	c, fs, demands, ma, err := s.Build()
	if err != nil {
		return err
	}
	if ma == nil {
		ma = core.UniformAssignment(len(fs), 1)
	}
	r, err := core.ClosRouting(c, fs, ma)
	if err != nil {
		return err
	}
	a, err := core.MaxMinFair(c.Network(), fs, r)
	if err != nil {
		return err
	}
	if s.Name != "" {
		fmt.Printf("scenario: %s\n", s.Name)
	}
	table, err := render.AllocationTable(c.Network(), fs, r, a)
	if err != nil {
		return err
	}
	fmt.Print(table)
	if demands != nil {
		fmt.Printf("offered (macro) rates: %s\n", demands.SortedCopy())
		fmt.Printf("achieved rates:        %s\n", a.SortedCopy())
	}
	return nil
}
