// Command closverify checks the paper's three theorem bounds against the
// allocation engine over configurable parameter ranges, exiting non-zero
// on any violation. It is the repository's self-check: every inequality
// the paper proves is re-measured, not assumed.
//
// Usage:
//
//	closverify               verify with default ranges
//	closverify -max-n 9 -max-k 32 -v
//	closverify -workers 1    force the serial feasibility search
//	closverify -cpuprofile cpu.pprof -memprofile mem.pprof
//	closverify -metrics -trace verify.jsonl
//	closverify -batch scenarios/ -op search:lex
//
// -batch switches the tool into corpus-sweep mode: instead of the
// theorem checks it runs the given engine op over every scenario file
// in a directory (or one file), through engine.RunBatch — the same
// entry point the closnetd /v1/batch endpoint uses — and prints the
// response bodies in deterministic file order, one JSON document per
// line. The output is byte-identical to what the HTTP endpoints would
// return for the same scenarios.
//
// The shared observability flags (internal/obs) journal every check as
// a verify.check event and count checks/violations in the metrics
// registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"closnet"
	"closnet/internal/codec"
	"closnet/internal/engine"
	"closnet/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "closverify:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fl := flag.NewFlagSet("closverify", flag.ContinueOnError)
	var (
		maxN    = fl.Int("max-n", 7, "largest network size to verify")
		maxK    = fl.Int("max-k", 16, "largest multiplicity to verify")
		verbose = fl.Bool("v", false, "print each check")
		batch   = fl.String("batch", "", "sweep mode: scenario JSON file or directory of them to run -op over")
		batchOp = fl.String("op", engine.OpEvaluate, "engine op for -batch (evaluate, doom, search:lex, search:throughput, search:relative, or the pruned branch-and-bound variants search:lex:pruned, search:throughput:pruned)")
		ef      = engine.AddFlags(fl)
		ob      = obs.AddFlags(fl)
	)
	if err := fl.Parse(args); err != nil {
		return err
	}
	orun, err := ob.Start("closverify", os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := orun.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closverify:", cerr)
		}
	}()
	eng := ef.Engine(orun.Obs)
	if *batch != "" {
		return runBatch(eng, *batch, *batchOp, out)
	}
	workers := eng.SearchOptions(context.Background()).Workers
	reg := orun.Obs.Registry()
	jour := orun.Obs.Journal()
	cChecks := reg.Counter("verify.checks")
	cViolations := reg.Counter("verify.violations")
	checks := 0
	report := func(name string, ok bool, detail string) error {
		checks++
		cChecks.Inc()
		jour.Emit("verify.check", obs.F{"name": name, "ok": ok, "detail": detail})
		if *verbose || !ok {
			status := "ok"
			if !ok {
				status = "VIOLATED"
			}
			fmt.Fprintf(out, "%-60s %s %s\n", name, status, detail)
		}
		if !ok {
			cViolations.Inc()
			return fmt.Errorf("bound violated: %s (%s)", name, detail)
		}
		return nil
	}

	if err := verifyTheorem34(*maxN, *maxK, report); err != nil {
		return err
	}
	if err := verifyTheorem42(min(*maxN, 5), workers, report); err != nil {
		return err
	}
	if err := verifyTheorem43(*maxN, report); err != nil {
		return err
	}
	if err := verifyTheorem54(*maxN, *maxK, report); err != nil {
		return err
	}
	if err := verifySplittable(report); err != nil {
		return err
	}
	if err := verifyScheduling(*maxK, report); err != nil {
		return err
	}
	if err := verifyRearrangeability(workers, report); err != nil {
		return err
	}
	if err := verifyClaim45(2**maxN, report); err != nil {
		return err
	}
	fmt.Fprintf(out, "all %d checks passed\n", checks)
	return nil
}

// runBatch is the -batch corpus-sweep mode: load every scenario under
// path (a single JSON file, or a directory whose *.json files are taken
// in sorted order), run op over all of them through engine.RunBatch
// with bounded fan-out, and print the deterministic response bodies in
// file order — the same bytes N calls to the closnetd endpoints would
// return. Any failing scenario is reported on stderr with its file
// name; the sweep still finishes the rest and exits non-zero.
func runBatch(eng *engine.Engine, path, op string, out io.Writer) error {
	paths, err := batchPaths(path)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("batch: no scenario files under %s", path)
	}
	reqs := make([]engine.Request, len(paths))
	for i, p := range paths {
		scen, err := codec.LoadFile(p)
		if err != nil {
			return fmt.Errorf("batch: %w", err)
		}
		reqs[i] = engine.Request{Op: op, Scenario: scen}
	}
	results := eng.RunBatch(context.Background(), reqs, runtime.GOMAXPROCS(0), nil)
	failed := 0
	for i, res := range results {
		if res.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "closverify: batch: %s: %v\n", paths[i], res.Err)
			continue
		}
		if _, err := out.Write(res.Resp.Body); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("batch: %d of %d scenarios failed", failed, len(paths))
	}
	return nil
}

// batchPaths resolves the -batch argument to the scenario files it
// names: the file itself, or a directory's *.json entries sorted by
// name so sweeps are deterministic.
func batchPaths(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		paths = append(paths, filepath.Join(path, e.Name()))
	}
	sort.Strings(paths)
	return paths, nil
}

// verifyTheorem34: T^MmF ≥ T^MT/2 and the adversarial ratio formula.
func verifyTheorem34(maxN, maxK int, report func(string, bool, string) error) error {
	for n := 1; n <= maxN; n++ {
		for k := 1; k <= maxK; k *= 2 {
			in, err := closnet.Theorem34(n, k)
			if err != nil {
				return err
			}
			mmf, err := closnet.MacroMaxMinFair(in.Macro, in.MacroFlows)
			if err != nil {
				return err
			}
			tm := closnet.Throughput(mmf)
			// T^MT = 2 on this family; bound: 2*T^MmF ≥ T^MT.
			lhs := new(big.Rat).Mul(closnet.R(2, 1), tm)
			ok := lhs.Cmp(closnet.R(2, 1)) >= 0
			want := closnet.R(int64(k+2), int64(k+1))
			okExact := tm.Cmp(want) == 0
			name := fmt.Sprintf("theorem 3.4 n=%d k=%d", n, k)
			if err := report(name, ok && okExact, fmt.Sprintf("T^MmF=%v", tm)); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyTheorem42: the macro rates are unroutable.
func verifyTheorem42(maxN, workers int, report func(string, bool, string) error) error {
	for n := 3; n <= maxN; n++ {
		in, err := closnet.Theorem42(n)
		if err != nil {
			return err
		}
		_, ok, err := closnet.FeasibleRouting(context.Background(), in.Clos, in.Flows, in.MacroRates, 0, workers)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("theorem 4.2 n=%d unroutable", n)
		if err := report(name, !ok, fmt.Sprintf("%d flows", len(in.Flows))); err != nil {
			return err
		}
	}
	return nil
}

// verifyTheorem43: the witness routing yields exactly the posited rates
// and the type-3 flow sits at 1/n.
func verifyTheorem43(maxN int, report func(string, bool, string) error) error {
	for n := 3; n <= maxN; n++ {
		in, err := closnet.Theorem43(n)
		if err != nil {
			return err
		}
		a, err := closnet.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
		if err != nil {
			return err
		}
		ok := a.Equal(in.WitnessRates)
		t3 := in.FlowsOfType(closnet.Type3)[0]
		ok = ok && a[t3].Cmp(closnet.R(1, int64(n))) == 0
		name := fmt.Sprintf("theorem 4.3 n=%d starvation 1/%d", n, n)
		if err := report(name, ok, fmt.Sprintf("type-3 rate %v", a[t3])); err != nil {
			return err
		}
	}
	return nil
}

// verifyTheorem54: T(doom) ≤ 2·T^MmF and equals n-2 where the closed
// form applies.
func verifyTheorem54(maxN, maxK int, report func(string, bool, string) error) error {
	for n := 3; n <= maxN; n += 2 {
		for k := 1; k <= maxK; k *= 4 {
			in, err := closnet.Theorem54(n, k)
			if err != nil {
				return err
			}
			macro, err := closnet.MacroMaxMinFair(in.Macro, in.MacroFlows)
			if err != nil {
				return err
			}
			res, err := closnet.DoomSwitch(in.Clos, in.Flows)
			if err != nil {
				return err
			}
			a, err := closnet.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
			if err != nil {
				return err
			}
			td, tm := closnet.Throughput(a), closnet.Throughput(macro)
			bound := new(big.Rat).Mul(closnet.R(2, 1), tm)
			ok := td.Cmp(bound) <= 0
			if in.ExactWitness {
				ok = ok && td.Cmp(closnet.R(int64(n-2), 1)) == 0
			}
			name := fmt.Sprintf("theorem 5.4 n=%d k=%d", n, k)
			if err := report(name, ok, fmt.Sprintf("T=%v vs 2x%v", td, tm)); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifySplittable: with splittable flows, the LP max-min rates in the
// Clos network equal the macro-switch rates exactly (demand
// satisfaction, §1) — even on the Theorem 4.2 family whose unsplittable
// rates are unroutable.
func verifySplittable(report func(string, bool, string) error) error {
	for _, build := range []func() (*closnet.AdversarialInstance, error){
		closnet.Example23,
		func() (*closnet.AdversarialInstance, error) { return closnet.Theorem42(3) },
	} {
		in, err := build()
		if err != nil {
			return err
		}
		paths, err := closnet.ClosAllPaths(in.Clos, in.Flows)
		if err != nil {
			return err
		}
		rates, err := closnet.SplittableMaxMin(in.Clos.Network(), in.Flows, paths)
		if err != nil {
			return err
		}
		ok := rates.Equal(in.MacroRates)
		if err := report("splittable demand satisfaction: "+in.Name, ok, ""); err != nil {
			return err
		}
	}
	return nil
}

// verifyScheduling: on the Theorem 3.4 family with unit flows, fair
// sharing finishes every flow at t = k+1 while the matching scheduler
// beats it on average (§7 R1).
func verifyScheduling(maxK int, report func(string, bool, string) error) error {
	for k := 1; k <= maxK; k *= 4 {
		in, err := closnet.Theorem34(1, k)
		if err != nil {
			return err
		}
		r := make(closnet.Routing, len(in.MacroFlows))
		for fi, f := range in.MacroFlows {
			p, err := in.Macro.Path(f.Src, f.Dst)
			if err != nil {
				return err
			}
			r[fi] = p
		}
		sizes := make(closnet.Vec, len(in.MacroFlows))
		for i := range sizes {
			sizes[i] = closnet.R(1, 1)
		}
		fair, err := closnet.FairSharingFCT(in.Macro.Network(), in.MacroFlows, r, sizes)
		if err != nil {
			return err
		}
		sched, err := closnet.MatchingScheduleFCT(in.MacroFlows, sizes)
		if err != nil {
			return err
		}
		fAvg, sAvg := closnet.AverageFCT(fair), closnet.AverageFCT(sched)
		ok := fAvg.Cmp(closnet.R(int64(k+1), 1)) == 0 && sAvg.Cmp(fAvg) < 0
		name := fmt.Sprintf("scheduling beats fair sharing k=%d", k)
		if err := report(name, ok, fmt.Sprintf("fair=%v sched=%v", fAvg, sAvg)); err != nil {
			return err
		}
	}
	return nil
}

// verifyRearrangeability: the Theorem 4.2 (n=3) demands are unroutable
// at 3 middles but routable at 4, inside the 2n-1 conjecture bound.
func verifyRearrangeability(workers int, report func(string, bool, string) error) error {
	in, err := closnet.Theorem42(3)
	if err != nil {
		return err
	}
	m, ok, err := closnet.MinMiddlesToRoute(context.Background(), in.Clos, in.Flows, in.MacroRates, 5, 0, workers)
	if err != nil {
		return err
	}
	good := ok && m == 4
	return report("rearrangeability theorem 4.2 n=3 needs 4 middles", good, fmt.Sprintf("m=%d", m))
}

// verifyClaim45 machine-checks the counting argument of Claim 4.5 for
// every size up to the given bound, extending the Theorem 4.3
// certification beyond exhaustively checkable instances.
func verifyClaim45(maxN int, report func(string, bool, string) error) error {
	for n := 3; n <= maxN; n++ {
		err := closnet.VerifyClaim45Arithmetic(n)
		name := fmt.Sprintf("claim 4.5 arithmetic n=%d", n)
		detail := ""
		if err != nil {
			detail = err.Error()
		}
		if rerr := report(name, err == nil, detail); rerr != nil {
			return rerr
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
