package main

import (
	"strings"
	"testing"
)

func TestRunVerifiesSmallRanges(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-max-n", "4", "-max-k", "4"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "checks passed") {
		t.Errorf("missing summary in output:\n%s", out.String())
	}
}

func TestRunVerbosePrintsEveryCheck(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-max-n", "3", "-max-k", "2", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"theorem 3.4", "theorem 4.2", "theorem 4.3", "theorem 5.4"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestMin(t *testing.T) {
	if min(2, 3) != 2 || min(5, 1) != 1 {
		t.Error("min broken")
	}
}
