package closnet_test

import (
	"context"

	"fmt"

	"closnet"
)

// ExampleClosMaxMinFair reproduces the core of Example 2.3: the max-min
// fair allocation in C_2 under the paper's first routing.
func ExampleClosMaxMinFair() {
	c, _ := closnet.NewClos(2)
	flows := closnet.NewCollection(
		c.Source(1, 2), c.Dest(1, 2),
		c.Source(1, 2), c.Dest(2, 1),
		c.Source(1, 2), c.Dest(2, 2),
		c.Source(2, 1), c.Dest(2, 1),
		c.Source(2, 2), c.Dest(2, 2),
		c.Source(1, 1), c.Dest(1, 1),
	)
	rates, _ := closnet.ClosMaxMinFair(c, flows, closnet.MiddleAssignment{2, 1, 2, 1, 2, 1})
	fmt.Println(rates.SortedCopy())
	// Output: [1/3, 1/3, 1/3, 2/3, 2/3, 2/3]
}

// ExampleMacroMaxMinFair shows the macro-switch abstraction promising
// more than the Clos network can deliver for the same flows.
func ExampleMacroMaxMinFair() {
	ms, _ := closnet.NewMacroSwitch(2)
	flows := closnet.NewCollection(
		ms.Source(1, 2), ms.Dest(1, 2),
		ms.Source(1, 2), ms.Dest(2, 1),
		ms.Source(1, 2), ms.Dest(2, 2),
		ms.Source(2, 1), ms.Dest(2, 1),
		ms.Source(2, 2), ms.Dest(2, 2),
		ms.Source(1, 1), ms.Dest(1, 1),
	)
	rates, _ := closnet.MacroMaxMinFair(ms, flows)
	fmt.Println(rates.SortedCopy(), closnet.Throughput(rates))
	// Output: [1/3, 1/3, 1/3, 2/3, 2/3, 1] 10/3
}

// ExampleDoomSwitch runs Algorithm 1 on the Figure 4 instance and shows
// the throughput doubling at the doomed flows' expense.
func ExampleDoomSwitch() {
	in, _ := closnet.Example53()
	res, _ := closnet.DoomSwitch(in.Clos, in.Flows)
	rates, _ := closnet.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
	fmt.Println(closnet.Throughput(rates), "vs macro", closnet.Throughput(in.MacroRates))
	// Output: 5/1 vs macro 9/2
}

// ExampleLexMaxMin finds the fairest routing of Example 2.3 by
// exhaustive search.
func ExampleLexMaxMin() {
	in, _ := closnet.Example23()
	opt, _ := closnet.LexMaxMin(in.Clos, in.Flows, closnet.SearchOptions{})
	fmt.Println(opt.Allocation.SortedCopy())
	// Output: [1/3, 1/3, 1/3, 2/3, 2/3, 2/3]
}

// ExampleFeasibleRouting certifies Theorem 4.2's impossibility: the
// macro-switch rates of the adversarial collection admit no routing.
func ExampleFeasibleRouting() {
	in, _ := closnet.Theorem42(3)
	_, ok, _ := closnet.FeasibleRouting(context.Background(), in.Clos, in.Flows, in.MacroRates, 0, 0)
	fmt.Println("replicable:", ok)
	// Output: replicable: false
}
