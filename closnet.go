// Package closnet is a from-scratch reproduction of "Impossibility
// Results for Data-Center Routing with Congestion Control and
// Unsplittable Flows" (Ferreira, Atre, Sherry, Sobrinho — PODC 2024).
//
// It models Clos networks C_n and their macro-switch abstractions MS_n,
// computes exact max-min fair allocations (the congestion-control model
// of the paper) for arbitrary routings of unsplittable flows, optimizes
// the routing objectives of §2.3 (lex-max-min fairness and
// throughput-max-min fairness), implements the Doom-Switch algorithm
// (Algorithm 1), builds every adversarial construction of the paper, and
// regenerates each figure and bound as a paper-vs-measured table.
//
// All rate arithmetic is exact (math/big.Rat). Start with:
//
//	c, _ := closnet.NewClos(2)
//	ms, _ := closnet.NewMacroSwitch(2)
//	fs := closnet.NewCollection(c.Source(1, 1), c.Dest(2, 1))
//	rates, _ := closnet.ClosMaxMinFair(c, fs, closnet.MiddleAssignment{1})
//
// or run the paper's experiments via Experiments / RunExperiment, the
// cmd/closlab CLI, or the examples/ programs.
package closnet

import (
	"context"
	"math/big"

	"closnet/internal/adversary"
	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/doom"
	"closnet/internal/engine"
	"closnet/internal/experiments"
	"closnet/internal/lp"
	"closnet/internal/rational"
	"closnet/internal/routing"
	"closnet/internal/schedule"
	"closnet/internal/search"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// Topology types (§2.1).
type (
	// Network is a directed capacitated graph.
	Network = topology.Network
	// NodeID identifies a node within one Network.
	NodeID = topology.NodeID
	// LinkID identifies a directed link within one Network.
	LinkID = topology.LinkID
	// Path is a contiguous sequence of links.
	Path = topology.Path
	// Clos is the three-stage Clos network C_n with n middle switches.
	Clos = topology.Clos
	// MacroSwitch is the macro-switch abstraction MS_n.
	MacroSwitch = topology.MacroSwitch
	// Fabric is the interface every routable topology family satisfies
	// (Clos, fat-tree, Benes): the contract behind the evaluator, the
	// search strategies and the LP models.
	Fabric = topology.Fabric
	// FatTree is the k-pod fat-tree expressed as a Fabric.
	FatTree = topology.FatTree
	// Benes is the recursive 2x2 Benes network expressed as a Fabric.
	Benes = topology.Benes
)

// Flow and allocation types (§2.2).
type (
	// Flow is an unsplittable flow between a source and a destination
	// server.
	Flow = core.Flow
	// Collection is an ordered flow collection.
	Collection = core.Collection
	// Routing assigns one path per flow.
	Routing = core.Routing
	// MiddleAssignment is the compact Clos routing: one middle switch
	// index (1-based) per flow.
	MiddleAssignment = core.MiddleAssignment
	// Allocation assigns an exact non-negative rate to each flow.
	Allocation = core.Allocation
	// Vec is a vector of exact rationals.
	Vec = rational.Vec
)

// Algorithm and experiment types.
type (
	// DoomResult is the routing produced by the Doom-Switch algorithm.
	DoomResult = doom.Result
	// SearchOptions tunes the exhaustive routing-objective optimizers.
	SearchOptions = search.Options
	// SearchResult is an optimizer outcome.
	SearchResult = search.Result
	// RoutingAlgorithm is one of the §6 baseline routing algorithms.
	RoutingAlgorithm = routing.Algorithm
	// AdversarialInstance is a paper construction with posited
	// allocations.
	AdversarialInstance = adversary.Instance
	// FlowType labels flows with the paper's type taxonomy.
	FlowType = adversary.FlowType
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
	// ExperimentRunner is a named experiment with default parameters.
	ExperimentRunner = experiments.Runner
	// WorkloadPair is a stochastic flow collection over a Clos network
	// and, with identical indexing, over its macro-switch.
	WorkloadPair = workload.Pair
	// PathSets lists candidate paths per flow for the splittable LPs.
	PathSets = lp.PathSets
)

// Flow type labels.
const (
	Type1  = adversary.Type1
	Type2a = adversary.Type2a
	Type2b = adversary.Type2b
	Type3  = adversary.Type3
)

// Engine layer: the typed op registry every transport (HTTP handlers,
// CLI tools, batch sweeps) dispatches through. The facade re-exports it
// so library users share the exact entry point — and response bytes —
// of the closnetd service instead of a fourth compute spelling.
type (
	// Engine dispatches compute requests through the op registry.
	Engine = engine.Engine
	// EngineOptions configures an Engine.
	EngineOptions = engine.Options
	// EngineRequest names one operation over one scenario.
	EngineRequest = engine.Request
	// EngineResponse is one computed result with its content address.
	EngineResponse = engine.Response
	// EngineBatchResult is one slot of an Engine.RunBatch outcome.
	EngineBatchResult = engine.BatchResult
	// Scenario is the transport-independent instance encoding every
	// engine op computes over.
	Scenario = codec.Scenario
)

// Engine op names.
const (
	OpEvaluate         = engine.OpEvaluate
	OpSearchLex        = engine.OpSearchLex
	OpSearchThroughput = engine.OpSearchThroughput
	OpSearchRelative   = engine.OpSearchRelative
	OpDoom             = engine.OpDoom
)

// NewEngine builds the compute engine with the standard op registry
// (evaluate, search:lex, search:throughput, search:relative, doom).
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// ScenarioFromInstance encodes an adversarial instance as the scenario
// form the engine ops take.
func ScenarioFromInstance(in *AdversarialInstance) (*Scenario, error) {
	return codec.FromInstance(in)
}

// NewClos builds the Clos network C_n (§2.1): n middle switches, 2n
// input/output ToR switches, n servers per ToR, unit capacities.
func NewClos(n int) (*Clos, error) { return topology.NewClos(n) }

// NewGeneralClos builds a Clos network with independent ToR, server and
// middle-switch counts (the multirate-rearrangeability setting of §6).
func NewGeneralClos(tors, servers, middles int) (*Clos, error) {
	return topology.NewGeneralClos(tors, servers, middles)
}

// NewMacroSwitch builds the macro-switch abstraction MS_n.
func NewMacroSwitch(n int) (*MacroSwitch, error) { return topology.NewMacroSwitch(n) }

// NewFatTree builds the k-pod fat-tree (even k ≥ 2) as a Fabric: every
// (source, destination, core choice) path runs through the evaluator
// and search machinery unchanged.
func NewFatTree(k int) (*FatTree, error) { return topology.NewFatTree(k) }

// NewBenes builds the n-port Benes network (n a power of two) as a
// Fabric; each path choice selects one middle subnetwork per level.
func NewBenes(n int) (*Benes, error) { return topology.NewBenes(n) }

// NewOversubscribedClos builds a general Clos whose middle stage is
// undersized by the ratio sRatio:mRatio (servers to middles per ToR) —
// the oversubscription knob of §6.
func NewOversubscribedClos(tors, servers, sRatio, mRatio int) (*Clos, error) {
	return topology.NewOversubscribedClos(tors, servers, sRatio, mRatio)
}

// BuildFamily reconstructs the fabric of a named topology family from
// its shape row (tors, servers, middles) — the codec's bridge from a
// scenario's topology field to a Fabric. The empty family means Clos.
func BuildFamily(family string, tors, servers, middles int) (Fabric, error) {
	return topology.BuildFamily(family, tors, servers, middles)
}

// NewCollection builds a flow collection from (source, destination) node
// pairs. It panics on an odd argument count (intended for literals).
func NewCollection(pairs ...NodeID) Collection { return core.NewCollection(pairs...) }

// R returns the exact rational p/q.
func R(p, q int64) *big.Rat { return rational.R(p, q) }

// MaxMinFair computes the exact max-min fair allocation of the flows for
// a fixed routing by progressive filling (§2.2).
func MaxMinFair(net *Network, fs Collection, r Routing) (Allocation, error) {
	return core.MaxMinFair(net, fs, r)
}

// MacroMaxMinFair computes the unique max-min fair allocation in a
// macro-switch, where routing is forced.
func MacroMaxMinFair(ms *MacroSwitch, fs Collection) (Allocation, error) {
	return core.MacroMaxMinFair(ms, fs)
}

// ClosMaxMinFair computes the max-min fair allocation in a Clos network
// under the routing given by a middle assignment.
func ClosMaxMinFair(c *Clos, fs Collection, ma MiddleAssignment) (Allocation, error) {
	return core.ClosMaxMinFair(c, fs, ma)
}

// IsFeasible returns nil if the allocation satisfies every link capacity
// under the routing.
func IsFeasible(net *Network, fs Collection, r Routing, a Allocation) error {
	return core.IsFeasible(net, fs, r, a)
}

// IsMaxMinFair returns nil if the allocation is max-min fair for the
// routing, using the bottleneck property of Lemma 2.2.
func IsMaxMinFair(net *Network, fs Collection, r Routing, a Allocation) error {
	return core.IsMaxMinFair(net, fs, r, a)
}

// Throughput returns t(a), the total rate over all flows.
func Throughput(a Allocation) *big.Rat { return core.Throughput(a) }

// LexCompareSorted compares two allocations by their sorted vectors in
// lexicographic order (the order of Definitions 2.1 and 2.4), returning
// -1, 0 or +1.
func LexCompareSorted(a, b Allocation) int { return rational.LexCompareSorted(a, b) }

// LexMaxMin finds a lex-max-min fair allocation (Definition 2.4) by
// exhaustive enumeration of the routing space.
func LexMaxMin(c *Clos, fs Collection, opts SearchOptions) (*SearchResult, error) {
	return search.LexMaxMin(c, fs, opts)
}

// ThroughputMaxMin finds a throughput-max-min fair allocation
// (Definition 2.5) by exhaustive enumeration of the routing space.
func ThroughputMaxMin(c *Clos, fs Collection, opts SearchOptions) (*SearchResult, error) {
	return search.ThroughputMaxMin(c, fs, opts)
}

// IsLocalLexOptimal reports whether no single-flow reroute improves the
// max-min fair allocation lexicographically.
func IsLocalLexOptimal(c *Clos, fs Collection, ma MiddleAssignment) (bool, error) {
	return search.IsLocalLexOptimal(c, fs, ma)
}

// RelativeResult is the outcome of a relative-max-min-fairness
// optimization.
type RelativeResult = search.RelativeResult

// RelativeMaxMin maximizes, over all routings, the minimum per-flow
// ratio between the Clos max-min fair rate and a target rate (typically
// the macro-switch rate) — the relative-max-min fairness objective of
// the paper's conclusions (§7 R2). Exhaustive.
func RelativeMaxMin(c *Clos, fs Collection, target Vec, opts SearchOptions) (*RelativeResult, error) {
	return search.RelativeMaxMin(c, fs, target, opts)
}

// MinMiddlesToRoute probes the multirate-rearrangeability question of §6:
// the smallest middle-switch count for which the demands become routable
// on the same ToR/server shape. It returns (m, true) on success within
// maxMiddles, (0, false) otherwise. workers follows the
// SearchOptions.Workers policy (0 = one worker per core, 1 = serial).
// ctx cancellation propagates into every feasibility search; a cancelled
// probe returns ctx.Err().
func MinMiddlesToRoute(ctx context.Context, c *Clos, fs Collection, demands Vec, maxMiddles, maxNodes, workers int) (int, bool, error) {
	return search.MinMiddlesToRoute(ctx, c, fs, demands, maxMiddles, maxNodes, workers)
}

// FairSharingFCT simulates max-min fair sharing among all flows at once
// and returns the exact completion time of each flow (§7 R1 discussion).
func FairSharingFCT(net *Network, fs Collection, r Routing, sizes Vec) (Vec, error) {
	return schedule.FairSharing(net, fs, r, sizes)
}

// MatchingScheduleFCT schedules the flows by repeated maximum matchings
// transmitting at link capacity (the admission-control regime applied
// over time) and returns the exact completion time of each flow.
func MatchingScheduleFCT(fs Collection, sizes Vec) (Vec, error) {
	return schedule.MatchingRounds(fs, sizes)
}

// AverageFCT returns the mean of a completion-time vector.
func AverageFCT(times Vec) *big.Rat { return schedule.AverageFCT(times) }

// FeasibleRouting decides (exactly) whether flows offered with fixed
// demands admit a routing satisfying all link capacities (§4.1), and
// returns a witness when one exists. maxNodes caps the search
// (0 = default); workers follows the SearchOptions.Workers policy
// (0 = one worker per core, 1 = serial) and the answer is identical for
// every worker count. The backtracker polls ctx periodically; a
// cancelled search returns ctx.Err() and discards any partial witness.
func FeasibleRouting(ctx context.Context, c *Clos, fs Collection, demands Vec, maxNodes, workers int) (MiddleAssignment, bool, error) {
	return search.FeasibleRouting(ctx, c, fs, demands, maxNodes, workers)
}

// DoomSwitch runs the Doom-Switch algorithm (Algorithm 1): a maximum
// matching routed link-disjointly via edge coloring, with all remaining
// flows doomed onto one middle switch.
func DoomSwitch(c *Clos, fs Collection) (*DoomResult, error) {
	return doom.Route(c, fs)
}

// BaselineAlgorithms returns the §6 routing algorithms: ECMP, greedy,
// local search and first-fit.
func BaselineAlgorithms() []RoutingAlgorithm { return routing.All() }

// SplittableMaxMin computes the splittable max-min fair allocation over
// the given candidate paths by exact progressive-filling LPs — the
// "demand satisfaction" baseline of §1.
func SplittableMaxMin(net *Network, fs Collection, paths PathSets) (Vec, error) {
	return lp.SplittableMaxMin(net, fs, paths)
}

// ClosAllPaths returns all n candidate paths per flow for the splittable
// relaxation over a Clos network.
func ClosAllPaths(c *Clos, fs Collection) (PathSets, error) {
	return lp.ClosAllPaths(c, fs)
}

// Adversarial constructions (see package adversary).
var (
	// Example23 is Figure 1 / Example 2.3 over C_2.
	Example23 = adversary.Example23
	// Example53 is Figure 4 / Example 5.3 over C_7.
	Example53 = adversary.Example53
	// Theorem34 is the price-of-fairness family of Theorem 3.4.
	Theorem34 = adversary.Theorem34
	// Theorem42 is the replication-impossibility family of Theorem 4.2.
	Theorem42 = adversary.Theorem42
	// Theorem43 is the starvation family of Theorem 4.3.
	Theorem43 = adversary.Theorem43
	// Theorem54 is the Doom-Switch family of Theorem 5.4.
	Theorem54 = adversary.Theorem54
)

// VerifyClaim45Arithmetic machine-checks the counting core of Claim 4.5
// for the given size (see package adversary).
func VerifyClaim45Arithmetic(n int) error { return adversary.VerifyClaim45Arithmetic(n) }

// FullBisection reports whether a Clos fabric has full bisection
// bandwidth (§1): middle switches ≥ servers per ToR.
func FullBisection(c *Clos) bool { return topology.FullBisection(c) }

// Experiments returns every paper experiment with default parameters.
func Experiments() []ExperimentRunner { return experiments.All() }

// RunExperiment runs the experiment with the given ID (e.g. "F1", "T3").
func RunExperiment(id string) (*ExperimentTable, error) {
	r, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return r.Run()
}
