// Scheduling contrasts congestion control with a matching scheduler, the
// alternative raised in the paper's conclusions (§7, R1): by delaying the
// parasitic flows of the Theorem 3.4 family, the high-value flows
// transmit at link capacity and the average flow completion time drops —
// approaching a 2x improvement, the same factor fairness forfeits in
// throughput.
package main

import (
	"fmt"
	"log"
	"math/big"

	"closnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("average FCT on the Theorem 3.4 family (unit-size flows in MS_1):")
	fmt.Printf("%6s  %-22s  %-22s  %s\n", "k", "fair sharing (max-min)", "matching scheduler", "speedup")
	for k := 1; k <= 256; k *= 4 {
		in, err := closnet.Theorem34(1, k)
		if err != nil {
			return err
		}
		ms := in.Macro
		r := make(closnet.Routing, len(in.MacroFlows))
		for fi, f := range in.MacroFlows {
			p, err := ms.Path(f.Src, f.Dst)
			if err != nil {
				return err
			}
			r[fi] = p
		}
		sizes := make(closnet.Vec, len(in.MacroFlows))
		for i := range sizes {
			sizes[i] = closnet.R(1, 1)
		}

		fair, err := closnet.FairSharingFCT(ms.Network(), in.MacroFlows, r, sizes)
		if err != nil {
			return err
		}
		sched, err := closnet.MatchingScheduleFCT(in.MacroFlows, sizes)
		if err != nil {
			return err
		}
		fAvg, sAvg := closnet.AverageFCT(fair), closnet.AverageFCT(sched)
		speedup, _ := new(big.Rat).Quo(fAvg, sAvg).Float64()
		fmt.Printf("%6d  %-22s  %-22s  %.4fx\n", k, fAvg.RatString(), sAvg.RatString(), speedup)
	}
	fmt.Println("\nunder fair sharing, every flow crawls at rate 1/(k+1) and finishes at t = k+1;")
	fmt.Println("the scheduler finishes both high-value flows at t = 1 and serializes the rest.")
	return nil
}
