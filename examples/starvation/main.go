// Starvation reproduces Theorem 4.3: on the adversarial family, the
// fairest possible routing of the Clos network (lex-max-min) starves the
// type-3 flow to a 1/n fraction of the rate the macro-switch abstraction
// promises it — and the splittable-flow LP shows the gap is entirely due
// to unsplittability.
package main

import (
	"fmt"
	"log"

	"closnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Theorem 4.3: starvation of the type-3 flow under lex-max-min fair routing")
	fmt.Printf("%3s  %6s  %-12s  %-12s  %-8s\n", "n", "flows", "macro rate", "lex-mm rate", "ratio")
	for n := 3; n <= 8; n++ {
		in, err := closnet.Theorem43(n)
		if err != nil {
			return err
		}
		// The paper's witness routing (Lemma 4.6): water-fill it and read
		// off the type-3 flow's rate.
		a, err := closnet.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
		if err != nil {
			return err
		}
		t3 := in.FlowsOfType(closnet.Type3)[0]
		ratio, _ := a[t3].Float64()
		fmt.Printf("%3d  %6d  %-12s  %-12s  %.4f\n",
			n, len(in.Flows), in.MacroRates[t3].RatString(), a[t3].RatString(), ratio)
	}

	// Control: with splittable flows the LP restores the macro rates
	// exactly, pinning the blame on unsplittability.
	in, err := closnet.Theorem43(3)
	if err != nil {
		return err
	}
	paths, err := closnet.ClosAllPaths(in.Clos, in.Flows)
	if err != nil {
		return err
	}
	rates, err := closnet.SplittableMaxMin(in.Clos.Network(), in.Flows, paths)
	if err != nil {
		return err
	}
	t3 := in.FlowsOfType(closnet.Type3)[0]
	fmt.Printf("\ncontrol (n=3, splittable LP): type-3 rate %s — equals its macro rate: %v\n",
		rates[t3].RatString(), rates[t3].Cmp(in.MacroRates[t3]) == 0)
	return nil
}
