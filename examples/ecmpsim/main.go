// Ecmpsim runs the §6-style stochastic routing evaluation: flows are
// offered with their macro-switch rates, routed by the four baseline
// algorithms, and re-allocated by max-min fair congestion control. On
// stochastic inputs the congestion-aware algorithms track the macro
// rates well; on the adversarial starvation family, no algorithm can.
package main

import (
	"fmt"
	"log"

	"closnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tab, err := closnet.RunExperiment("S1")
	if err != nil {
		return err
	}
	fmt.Println(tab)

	adv, err := closnet.RunExperiment("S1b")
	if err != nil {
		return err
	}
	fmt.Println(adv)
	return nil
}
