// Doomswitch runs Algorithm 1 on the Figure 4 instance and on its
// generalizations: routing for throughput nearly doubles the max-min
// throughput of the macro-switch, but only by crushing the rates of the
// doomed flows — Theorem 5.4's incongruence between maximizing
// throughput and satisfying demands.
package main

import (
	"fmt"
	"log"
	"math/big"

	"closnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Figure 4 walkthrough.
	in, err := closnet.Example53()
	if err != nil {
		return err
	}
	res, err := closnet.DoomSwitch(in.Clos, in.Flows)
	if err != nil {
		return err
	}
	a, err := closnet.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
	if err != nil {
		return err
	}
	macro, err := closnet.MacroMaxMinFair(in.Macro, in.MacroFlows)
	if err != nil {
		return err
	}
	fmt.Println("Example 5.3 (Figure 4), C_7 with 6 type-1 and 3 type-2 flows:")
	fmt.Printf("  macro-switch: every rate 1/2, throughput %s\n", closnet.Throughput(macro).RatString())
	fmt.Printf("  Doom-Switch:  matched %d flows link-disjointly, doomed the rest onto M%d\n",
		res.MatchedCount(), res.DoomMiddle)
	for fi, rate := range a {
		role := "doomed "
		if res.Matched[fi] {
			role = "matched"
		}
		fmt.Printf("    flow %d (%s): rate %s\n", fi, role, rate.RatString())
	}
	fmt.Printf("  throughput %s (gain %s over the macro-switch)\n\n",
		closnet.Throughput(a).RatString(), gain(closnet.Throughput(a), closnet.Throughput(macro)))

	// The sweep: the gain approaches 2 as n and k grow.
	fmt.Println("Theorem 5.4 sweep (gain -> 2(1 - 1/(n-1)) as k grows):")
	fmt.Printf("%4s %5s  %-10s %-10s %s\n", "n", "k", "T^MmF", "T(doom)", "gain")
	for _, n := range []int{5, 7, 11, 15} {
		for _, k := range []int{1, 8, 64} {
			in, err := closnet.Theorem54(n, k)
			if err != nil {
				return err
			}
			res, err := closnet.DoomSwitch(in.Clos, in.Flows)
			if err != nil {
				return err
			}
			a, err := closnet.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
			if err != nil {
				return err
			}
			macro, err := closnet.MacroMaxMinFair(in.Macro, in.MacroFlows)
			if err != nil {
				return err
			}
			td, tm := closnet.Throughput(a), closnet.Throughput(macro)
			fmt.Printf("%4d %5d  %-10s %-10s %s\n", n, k, tm.RatString(), td.RatString(), gain(td, tm))
		}
	}
	return nil
}

func gain(num, den *big.Rat) string {
	f, _ := new(big.Rat).Quo(num, den).Float64()
	return fmt.Sprintf("%.4fx", f)
}
