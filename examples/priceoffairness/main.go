// Priceoffairness reproduces Theorem 3.4's message on the adversarial
// family: imposing max-min fair rates on a macro-switch forfeits up to
// half of the maximum throughput, and the loss is driven by "parasitic"
// parallel flows that an admission controller would simply reject.
package main

import (
	"fmt"
	"log"
	"math/big"

	"closnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Theorem 3.4: price of fairness T^MmF / T^MT on MS_1 with k parasitic flows")
	fmt.Printf("%6s  %-10s  %-6s  %-10s\n", "k", "T^MmF", "T^MT", "ratio")
	for k := 1; k <= 1024; k *= 4 {
		in, err := closnet.Theorem34(1, k)
		if err != nil {
			return err
		}
		mmf, err := closnet.MacroMaxMinFair(in.Macro, in.MacroFlows)
		if err != nil {
			return err
		}
		tm := closnet.Throughput(mmf)
		// On this family the maximum throughput is 2: both type-1 flows
		// at rate 1, every parasitic type-2 flow at rate 0 (Lemma 3.2).
		tmt := closnet.R(2, 1)
		ratio, _ := new(big.Rat).Quo(tm, tmt).Float64()
		fmt.Printf("%6d  %-10s  %-6s  %.6f\n", k, tm.RatString(), tmt.RatString(), ratio)
	}
	fmt.Println("\nthe ratio approaches the tight bound 1/2 as k grows:")
	fmt.Println("congestion control serves k flows the admission controller would reject,")
	fmt.Println("and those flows throttle both high-value flows to 1/(k+1).")
	return nil
}
