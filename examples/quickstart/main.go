// Quickstart walks through Example 2.3 of the paper with the public API:
// it builds C_2 and MS_2, computes the max-min fair allocation of the
// six-flow collection in the macro-switch and under the paper's two
// routings, and lets exhaustive search confirm which routing is
// lex-max-min fair.
package main

import (
	"fmt"
	"log"

	"closnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := closnet.NewClos(2)
	if err != nil {
		return err
	}
	ms, err := closnet.NewMacroSwitch(2)
	if err != nil {
		return err
	}

	// The Example 2.3 collection: three type-1 flows from s1.2, two
	// type-2 flows inside switch pair 2, one type-3 flow from s1.1.
	flows := closnet.NewCollection(
		c.Source(1, 2), c.Dest(1, 2),
		c.Source(1, 2), c.Dest(2, 1),
		c.Source(1, 2), c.Dest(2, 2),
		c.Source(2, 1), c.Dest(2, 1),
		c.Source(2, 2), c.Dest(2, 2),
		c.Source(1, 1), c.Dest(1, 1),
	)
	macroFlows := closnet.NewCollection(
		ms.Source(1, 2), ms.Dest(1, 2),
		ms.Source(1, 2), ms.Dest(2, 1),
		ms.Source(1, 2), ms.Dest(2, 2),
		ms.Source(2, 1), ms.Dest(2, 1),
		ms.Source(2, 2), ms.Dest(2, 2),
		ms.Source(1, 1), ms.Dest(1, 1),
	)

	// In the macro-switch the routing is forced and the max-min fair
	// allocation is unique.
	macro, err := closnet.MacroMaxMinFair(ms, macroFlows)
	if err != nil {
		return err
	}
	fmt.Printf("macro-switch rates:      %v  (throughput %v)\n",
		macro.SortedCopy(), closnet.Throughput(macro))

	// In the Clos network, rates depend on the routing: a middle-switch
	// index per flow.
	for _, routing := range []struct {
		name string
		ma   closnet.MiddleAssignment
	}{
		{"routing A ((s1.2,t2.1) via M1)", closnet.MiddleAssignment{2, 1, 2, 1, 2, 1}},
		{"routing B ((s1.2,t2.1) via M2)", closnet.MiddleAssignment{2, 2, 2, 1, 2, 1}},
	} {
		a, err := closnet.ClosMaxMinFair(c, flows, routing.ma)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %v  (throughput %v)\n", routing.name, a.SortedCopy(), closnet.Throughput(a))
	}

	// Exhaustive search finds the lex-max-min fair allocation
	// (Definition 2.4): the 2^6 routings collapse to 32 canonical
	// representatives under middle-switch relabeling.
	opt, err := closnet.LexMaxMin(c, flows, closnet.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("lex-max-min fair rates:  %v  via middles %v (%d canonical routings searched)\n",
		opt.Allocation.SortedCopy(), opt.Assignment, opt.States)
	fmt.Println("note: even the best routing is lex-below the macro-switch —",
		"the macro abstraction over-promises under unsplittable flows")
	return nil
}
