// Package stats provides the small set of descriptive statistics used by
// the simulation experiments: summaries (mean, min, percentiles) and
// empirical CDF evaluation over fixed thresholds. Percentiles use the
// nearest-rank-above convention, matching the reporting style of the
// networking evaluations the paper cites.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count int
	Mean  float64
	Min   float64
	Max   float64
	P10   float64
	P50   float64
	P90   float64
	P99   float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P10:   Percentile(sorted, 0.10),
		P50:   Percentile(sorted, 0.50),
		P90:   Percentile(sorted, 0.90),
		P99:   Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (p ∈ [0, 1]) of a sorted sample by
// the nearest-rank-above rule. It panics on an empty sample or an
// unsorted-looking input only through incorrect results; callers sort
// first (Summarize does).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p * float64(len(sorted)-1)))
	return sorted[idx]
}

// FractionAtMost returns, for each threshold, the fraction of the sample
// that is ≤ the threshold: the empirical CDF evaluated at the
// thresholds.
func FractionAtMost(xs []float64, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, th := range thresholds {
		// First index with value > th.
		hi := sort.SearchFloat64s(sorted, math.Nextafter(th, math.Inf(1)))
		out[i] = float64(hi) / float64(len(sorted))
	}
	return out
}

// FormatFraction renders a CDF fraction as a fixed-width percentage.
func FormatFraction(f float64) string {
	return fmt.Sprintf("%5.1f%%", 100*f)
}

// MeanCI95 returns the sample mean and the half-width of its normal
// 95% confidence interval, 1.96·s/√n with s the sample standard
// deviation (Bessel-corrected). Samples of size < 2 have no spread
// estimate and yield a zero half-width.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	varSum := 0.0
	for _, x := range xs {
		d := x - mean
		varSum += d * d
	}
	s := math.Sqrt(varSum / float64(len(xs)-1))
	return mean, 1.96 * s / math.Sqrt(float64(len(xs)))
}
