package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Count != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 2 {
		t.Errorf("P50 = %v, want 2", s.P50)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(xs, 0.99) != 5 {
		t.Errorf("P99 = %v, want 5", Percentile(xs, 0.99))
	}
	if Percentile(xs, 0.5) != 3 {
		t.Errorf("P50 = %v, want 3", Percentile(xs, 0.5))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestFractionAtMost(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.5, 0.9}
	fr := FractionAtMost(xs, []float64{0, 0.1, 0.5, 1})
	want := []float64{0, 0.25, 0.75, 1}
	for i := range want {
		if fr[i] != want[i] {
			t.Errorf("FractionAtMost[%d] = %v, want %v", i, fr[i], want[i])
		}
	}
	if got := FractionAtMost(nil, []float64{1}); got[0] != 0 {
		t.Error("empty sample should give zero fractions")
	}
}

func TestFormatFraction(t *testing.T) {
	if got := FormatFraction(0.257); got != " 25.7%" {
		t.Errorf("FormatFraction = %q", got)
	}
}

// TestQuickCDFMonotone: the empirical CDF is monotone in the threshold
// and bounded in [0, 1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []uint8, thresholds []uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 16
		}
		ths := make([]float64, len(thresholds))
		for i, r := range thresholds {
			ths[i] = float64(r) / 16
		}
		sort.Float64s(ths)
		fr := FractionAtMost(xs, ths)
		prev := 0.0
		for _, v := range fr {
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPercentileWithinRange: percentiles are always sample members
// between min and max.
func TestQuickPercentileWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		s := Summarize(xs)
		for _, p := range []float64{s.P10, s.P50, s.P90, s.P99} {
			if p < s.Min || p > s.Max {
				t.Fatalf("percentile %v outside [%v, %v]", p, s.Min, s.Max)
			}
			found := false
			for _, x := range xs {
				if x == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("percentile %v is not a sample member", p)
			}
		}
	}
}
