package corpus

import (
	"bytes"
	"testing"
)

func TestFamiliesSortedAndBuildable(t *testing.T) {
	fams := Families()
	for i := 1; i < len(fams); i++ {
		if fams[i-1] >= fams[i] {
			t.Errorf("Families() not sorted: %q before %q", fams[i-1], fams[i])
		}
	}
	scens, names, err := Scenarios(3, fams)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != len(fams) || len(names) != len(fams) {
		t.Fatalf("Scenarios built %d/%d entries for %d families", len(scens), len(names), len(fams))
	}
	for i, name := range names {
		if name != fams[i] {
			t.Errorf("names[%d] = %q, want %q (request order must be preserved)", i, name, fams[i])
		}
		if len(scens[i].Flows) == 0 {
			t.Errorf("%s: scenario has no flows", name)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	first, _, err := Build(4, []string{"theorem42", "theorem43"})
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := Build(4, []string{"theorem42", "theorem43"})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || len(again) != 2 {
		t.Fatalf("Build returned %d and %d bodies, want 2", len(first), len(again))
	}
	for i := range first {
		if !bytes.Equal(first[i], again[i]) {
			t.Errorf("body %d differs between identical Build calls", i)
		}
	}
}

func TestScenariosFlagStyleInput(t *testing.T) {
	// A comma-split flag value arrives with spaces and empty segments.
	scens, names, err := Scenarios(3, []string{" theorem42 ", "", "example23"})
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2 || names[0] != "theorem42" || names[1] != "example23" {
		t.Fatalf("Scenarios = %v (%d scens), want [theorem42 example23]", names, len(scens))
	}
	if _, _, err := Scenarios(3, []string{"theorem99"}); err == nil {
		t.Error("unknown family accepted")
	}
}
