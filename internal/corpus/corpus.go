// Package corpus builds the paper's adversarial instance families as
// encoded codec.Scenario payloads — the one corpus definition shared by
// the closnetd loadgen, the closverify batch mode and the golden
// byte-identity tests of the serving layer. A "corpus" here is a list
// of scenario bodies in a deterministic order, so replaying one against
// any transport (HTTP, engine.RunBatch, a CLI) exercises identical
// instances.
package corpus

import (
	"fmt"
	"strings"

	"closnet/internal/adversary"
	"closnet/internal/codec"
)

// builders maps each corpus family name to its instance constructor at
// network size n. The families are the §3–§5 adversarial constructions:
// the Theorem 3.4 price-of-fairness gadget at two multiplicities, the
// Theorem 4.2 replication-impossibility collection, and the Theorem 4.3
// starvation collection (the heavyweight: n(n-1)(n+1) + 2n + n(n-1) + 1
// flows).
var builders = map[string]func(n int) (*adversary.Instance, error){
	"example23":   func(int) (*adversary.Instance, error) { return adversary.Example23() },
	"theorem34k2": func(n int) (*adversary.Instance, error) { return adversary.Theorem34(n, 2) },
	"theorem34k8": func(n int) (*adversary.Instance, error) { return adversary.Theorem34(n, 8) },
	"theorem42":   adversary.Theorem42,
	"theorem43":   adversary.Theorem43,
}

// Families returns the known corpus family names in deterministic
// (sorted) order. example23 is the fixed Figure 1 instance over C_2
// (3 flows, searchable exhaustively); the rest scale with n.
func Families() []string {
	return []string{"example23", "theorem34k2", "theorem34k8", "theorem42", "theorem43"}
}

// Scenarios builds the requested families over C_n as decoded
// scenarios, in the order given. Family names are trimmed and empty
// entries skipped, so a comma-split flag value can be passed through
// unchanged.
func Scenarios(n int, want []string) ([]*codec.Scenario, []string, error) {
	var scens []*codec.Scenario
	var names []string
	for _, raw := range want {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		build, ok := builders[name]
		if !ok {
			return nil, nil, fmt.Errorf("corpus: unknown family %q (known: %s)", name, strings.Join(Families(), ", "))
		}
		in, err := build(n)
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		s, err := codec.FromInstance(in)
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		scens = append(scens, s)
		names = append(names, name)
	}
	return scens, names, nil
}

// Build builds the requested families over C_n as encoded scenario
// payloads (indented JSON, the codec.Encode form), in the order given.
func Build(n int, want []string) ([][]byte, []string, error) {
	scens, names, err := Scenarios(n, want)
	if err != nil {
		return nil, nil, err
	}
	bodies := make([][]byte, len(scens))
	for i, s := range scens {
		data, err := codec.Encode(s)
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s: %w", names[i], err)
		}
		bodies[i] = data
	}
	return bodies, names, nil
}
