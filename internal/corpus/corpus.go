// Package corpus builds the paper's adversarial instance families as
// encoded codec.Scenario payloads — the one corpus definition shared by
// the closnetd loadgen, the closverify batch mode and the golden
// byte-identity tests of the serving layer. A "corpus" here is a list
// of scenario bodies in a deterministic order, so replaying one against
// any transport (HTTP, engine.RunBatch, a CLI) exercises identical
// instances.
package corpus

import (
	"fmt"
	"strings"

	"closnet/internal/adversary"
	"closnet/internal/codec"
	"closnet/internal/gen"
)

// fromAdversary adapts an adversarial instance constructor to the
// scenario-builder shape shared by every family.
func fromAdversary(build func(n int) (*adversary.Instance, error)) func(n int) (*codec.Scenario, error) {
	return func(n int) (*codec.Scenario, error) {
		in, err := build(n)
		if err != nil {
			return nil, err
		}
		return codec.FromInstance(in)
	}
}

// generated adapts a gen.Spec constructor plus traffic config to the
// scenario-builder shape. Generated families are fixed instances — like
// example23 they ignore the corpus size n, so replays stay
// byte-identical across corpus configurations.
func generated(spec func() (gen.Spec, error), tc gen.TrafficConfig) func(n int) (*codec.Scenario, error) {
	return func(int) (*codec.Scenario, error) {
		sp, err := spec()
		if err != nil {
			return nil, err
		}
		return gen.Scenario(sp, tc)
	}
}

// builders maps each corpus family name to its scenario constructor at
// corpus size n. The adversarial families are the §3–§5 constructions:
// the Theorem 3.4 price-of-fairness gadget at two multiplicities, the
// Theorem 4.2 replication-impossibility collection, and the Theorem 4.3
// starvation collection (the heavyweight: n(n-1)(n+1) + 2n + n(n-1) + 1
// flows). The gen* families are fixed-seed stochastic instances from
// the scenario generator, one per non-Clos topology family plus an
// oversubscribed Clos, sized so full-space search stays exhaustible.
var builders = map[string]func(n int) (*codec.Scenario, error){
	"example23":   fromAdversary(func(int) (*adversary.Instance, error) { return adversary.Example23() }),
	"theorem34k2": fromAdversary(func(n int) (*adversary.Instance, error) { return adversary.Theorem34(n, 2) }),
	"theorem34k8": fromAdversary(func(n int) (*adversary.Instance, error) { return adversary.Theorem34(n, 8) }),
	"theorem42":   fromAdversary(adversary.Theorem42),
	"theorem43":   fromAdversary(adversary.Theorem43),
	"genfattree": generated(
		func() (gen.Spec, error) { return gen.FatTreeSpec(4) },
		gen.TrafficConfig{Model: gen.ModelUniform, Flows: 6, ElephantFraction: 0.25, Seed: 1},
	),
	"genbenes": generated(
		func() (gen.Spec, error) { return gen.BenesSpec(8) },
		gen.TrafficConfig{Model: gen.ModelGravity, Flows: 5, Seed: 2},
	),
	"genoversub": generated(
		func() (gen.Spec, error) { return gen.OversubscribedClosSpec(4, 4, 2, 1) },
		gen.TrafficConfig{Model: gen.ModelHotspot, Flows: 6, ElephantFraction: 0.5, Seed: 3},
	),
}

// Families returns the known corpus family names in deterministic
// (sorted) order. example23 is the fixed Figure 1 instance over C_2
// (3 flows, searchable exhaustively) and the gen* generated families
// are fixed-seed instances; the theorem families scale with n.
func Families() []string {
	return []string{
		"example23", "genbenes", "genfattree", "genoversub",
		"theorem34k2", "theorem34k8", "theorem42", "theorem43",
	}
}

// Scenarios builds the requested families over C_n as decoded
// scenarios, in the order given. Family names are trimmed and empty
// entries skipped, so a comma-split flag value can be passed through
// unchanged.
func Scenarios(n int, want []string) ([]*codec.Scenario, []string, error) {
	var scens []*codec.Scenario
	var names []string
	for _, raw := range want {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		build, ok := builders[name]
		if !ok {
			return nil, nil, fmt.Errorf("corpus: unknown family %q (known: %s)", name, strings.Join(Families(), ", "))
		}
		s, err := build(n)
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		scens = append(scens, s)
		names = append(names, name)
	}
	return scens, names, nil
}

// Build builds the requested families over C_n as encoded scenario
// payloads (indented JSON, the codec.Encode form), in the order given.
func Build(n int, want []string) ([][]byte, []string, error) {
	scens, names, err := Scenarios(n, want)
	if err != nil {
		return nil, nil, err
	}
	bodies := make([][]byte, len(scens))
	for i, s := range scens {
		data, err := codec.Encode(s)
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s: %w", names[i], err)
		}
		bodies[i] = data
	}
	return bodies, names, nil
}
