package codec

import (
	"encoding/json"

	"closnet/internal/core"
	"closnet/internal/rational"
)

// RateStrings renders an allocation as exact rational strings, the wire
// form every closnet response uses for rates. One renderer keeps CLI
// output and server bodies from drifting apart.
func RateStrings(a core.Allocation) []string {
	out := make([]string, len(a))
	for i, r := range a {
		out[i] = rational.String(r)
	}
	return out
}

// MarshalBody encodes a response value as compact JSON with a trailing
// newline — the deterministic single-line body shape of every engine
// result, cacheable and concatenable (a batch response is exactly the
// concatenation of its items' bodies).
func MarshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// apiError is the JSON error body of every non-200 response.
type apiError struct {
	Error string `json:"error"`
}

// ErrorBody renders an error message in the shared single-line JSON
// error shape: {"error": msg} plus a trailing newline.
func ErrorBody(msg string) []byte {
	b, _ := json.Marshal(apiError{Error: msg})
	return append(b, '\n')
}
