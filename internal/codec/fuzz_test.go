package codec

import (
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the scenario decoder: it must
// never panic, and anything it accepts must Build and re-Encode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tors":2,"servers":1,"middles":1,"flows":[{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1}]}`))
	f.Add([]byte(`{"tors":2,"servers":1,"middles":2,"flows":[{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1}],"demands":["1/2"],"assignment":[2]}`))
	// Rate-string normalization seed: "2/4" must canonicalize (and hash)
	// exactly like "1/2".
	f.Add([]byte(`{"tors":2,"servers":1,"middles":2,"flows":[{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1}],"demands":["2/4"],"assignment":[2]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if _, _, _, _, err := s.Build(); err != nil {
			// Decode validates structure but demand strings are parsed
			// at Build time; errors are acceptable, panics are not.
			return
		}
		if _, err := Encode(s); err != nil {
			t.Fatalf("accepted scenario failed to re-encode: %v", err)
		}
		// Anything that builds must canonicalize, and the content address
		// must be a fixed point: hashing the canonical form reproduces
		// the original hash (normalization is idempotent).
		h1, err := s.Hash()
		if err != nil {
			t.Fatalf("buildable scenario failed to hash: %v", err)
		}
		c, err := Canonical(s)
		if err != nil {
			t.Fatalf("buildable scenario failed to canonicalize: %v", err)
		}
		h2, err := c.Hash()
		if err != nil {
			t.Fatalf("canonical form failed to hash: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("hash is not a fixed point of canonicalization: %x vs %x", h1, h2)
		}
	})
}
