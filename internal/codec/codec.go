// Package codec serializes problem instances — topology shape, flow
// collection, offered demands and routing — as JSON, so that scenarios
// can be saved, replayed and exchanged with external tools. Rates are
// encoded as exact rational strings ("2/3"), never floats.
package codec

import (
	"encoding/json"
	"fmt"
	"math/big"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// FlowJSON is one flow, identified by the paper's (i, j) server indices.
type FlowJSON struct {
	SrcSwitch int `json:"srcSwitch"`
	SrcServer int `json:"srcServer"`
	DstSwitch int `json:"dstSwitch"`
	DstServer int `json:"dstServer"`
}

// Scenario is a self-contained problem instance.
type Scenario struct {
	Name string `json:"name,omitempty"`
	// Topology names the fabric family the shape describes (see
	// topology.FamilyNames). Empty means "clos", kept empty in encoded
	// form so pre-family scenario files and their content addresses are
	// unchanged.
	Topology string `json:"topology,omitempty"`
	Tors     int    `json:"tors"`
	Servers  int    `json:"servers"`
	Middles  int    `json:"middles"`

	Flows []FlowJSON `json:"flows"`
	// Demands are exact rational strings, parallel to Flows; optional.
	Demands []string `json:"demands,omitempty"`
	// Assignment is a middle-switch index per flow (1-based); optional.
	Assignment []int `json:"assignment,omitempty"`
}

// FromInstance converts an adversarial instance into a scenario,
// carrying its macro-switch rates as demands and its witness routing (if
// any) as the assignment.
func FromInstance(in *adversary.Instance) (*Scenario, error) {
	s := &Scenario{
		Name:    in.Name,
		Tors:    in.Clos.NumToRs(),
		Servers: in.Clos.ServersPerToR(),
		Middles: in.Clos.Size(),
	}
	for fi, f := range in.Flows {
		si, sj, ok := in.Clos.SourceIndexOf(f.Src)
		if !ok {
			return nil, fmt.Errorf("codec: flow %d source is not a server", fi)
		}
		di, dj, ok := in.Clos.DestIndexOf(f.Dst)
		if !ok {
			return nil, fmt.Errorf("codec: flow %d destination is not a server", fi)
		}
		s.Flows = append(s.Flows, FlowJSON{si, sj, di, dj})
	}
	for _, rate := range in.MacroRates {
		s.Demands = append(s.Demands, rational.String(rate))
	}
	if in.Witness != nil {
		s.Assignment = append([]int(nil), in.Witness...)
	}
	return s, nil
}

// Encode marshals the scenario as indented JSON.
func Encode(s *Scenario) ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return out, nil
}

// Decode unmarshals and structurally validates a scenario.
func Decode(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Scenario) validate() error {
	if s.Tors < 1 || s.Servers < 1 || s.Middles < 1 {
		return fmt.Errorf("codec: invalid shape (%d, %d, %d)", s.Tors, s.Servers, s.Middles)
	}
	if s.Topology != "" {
		known := false
		for _, f := range topology.FamilyNames() {
			if s.Topology == f {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("codec: unknown topology family %q", s.Topology)
		}
	}
	for fi, f := range s.Flows {
		if f.SrcSwitch < 1 || f.SrcSwitch > s.Tors || f.DstSwitch < 1 || f.DstSwitch > s.Tors {
			return fmt.Errorf("codec: flow %d switch index out of range", fi)
		}
		if f.SrcServer < 1 || f.SrcServer > s.Servers || f.DstServer < 1 || f.DstServer > s.Servers {
			return fmt.Errorf("codec: flow %d server index out of range", fi)
		}
	}
	if s.Demands != nil && len(s.Demands) != len(s.Flows) {
		return fmt.Errorf("codec: %d demands for %d flows", len(s.Demands), len(s.Flows))
	}
	if s.Assignment != nil {
		if len(s.Assignment) != len(s.Flows) {
			return fmt.Errorf("codec: %d assignments for %d flows", len(s.Assignment), len(s.Flows))
		}
		for fi, m := range s.Assignment {
			if m < 1 || m > s.Middles {
				return fmt.Errorf("codec: flow %d middle %d out of range [1,%d]", fi, m, s.Middles)
			}
		}
	}
	return nil
}

// Build materializes the scenario: the fabric of its topology family
// (a Clos when the family is empty), the flow collection, the demands
// (nil if absent) and the assignment (nil if absent).
func (s *Scenario) Build() (topology.Fabric, core.Collection, rational.Vec, core.MiddleAssignment, error) {
	if err := s.validate(); err != nil {
		return nil, nil, nil, nil, err
	}
	c, err := topology.BuildFamily(s.Topology, s.Tors, s.Servers, s.Middles)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fs := make(core.Collection, len(s.Flows))
	for fi, f := range s.Flows {
		fs[fi] = core.Flow{
			Src: c.Source(f.SrcSwitch, f.SrcServer),
			Dst: c.Dest(f.DstSwitch, f.DstServer),
		}
	}
	var demands rational.Vec
	if s.Demands != nil {
		demands = make(rational.Vec, len(s.Demands))
		for fi, str := range s.Demands {
			r, ok := new(big.Rat).SetString(str)
			if !ok {
				return nil, nil, nil, nil, fmt.Errorf("codec: flow %d demand %q is not a rational", fi, str)
			}
			if r.Sign() < 0 {
				return nil, nil, nil, nil, fmt.Errorf("codec: flow %d demand %q is negative", fi, str)
			}
			demands[fi] = r
		}
	}
	var ma core.MiddleAssignment
	if s.Assignment != nil {
		ma = append(core.MiddleAssignment(nil), s.Assignment...)
	}
	return c, fs, demands, ma, nil
}
