package codec

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"sort"
)

// Canonical returns the canonical form of a scenario: the unique
// representative of every scenario that denotes the same problem
// instance. Two scenarios that differ only in flow order, in the
// textual representation of their demand strings ("2/4" vs "1/2") or
// in their display name canonicalize to the same value, so the
// canonical form is a content-address for the instance — the cache key
// of the serving layer (internal/server) and the preimage of Hash.
//
// Canonicalization (the input is not mutated):
//
//   - the Name is dropped (a label, not part of the instance),
//   - every demand string is normalized to big.Rat.RatString form
//     (lowest terms, no denominator when it is 1),
//   - flows are sorted by (srcSwitch, srcServer, dstSwitch, dstServer,
//     demand, assignment), with demands and assignment permuted in
//     parallel so each flow keeps its own demand and middle switch.
//
// The routing symmetry of the search layer (relabeling middle
// switches) is deliberately NOT quotiented out: an assignment is part
// of the instance as stated, and evaluation results are reported in
// canonical flow order.
func Canonical(s *Scenario) (*Scenario, error) {
	perm, demands, err := canonicalPerm(s)
	if err != nil {
		return nil, err
	}
	c := &Scenario{
		Topology: s.Topology,
		Tors:     s.Tors,
		Servers:  s.Servers,
		Middles:  s.Middles,
	}
	// "clos" and "" denote the same family; the canonical form uses the
	// empty spelling so pre-family content addresses are preserved.
	if c.Topology == "clos" {
		c.Topology = ""
	}
	c.Flows = make([]FlowJSON, len(s.Flows))
	for i, fi := range perm {
		c.Flows[i] = s.Flows[fi]
	}
	if s.Demands != nil {
		c.Demands = make([]string, len(demands))
		for i, fi := range perm {
			c.Demands[i] = demands[fi]
		}
	}
	if s.Assignment != nil {
		c.Assignment = make([]int, len(s.Assignment))
		for i, fi := range perm {
			c.Assignment[i] = s.Assignment[fi]
		}
	}
	return c, nil
}

// CanonicalPerm returns the permutation Canonical applies to the flow
// list: perm[i] is the index in s.Flows of the i-th canonical flow.
// Callers that track per-flow state keyed by original position (the
// session layer of internal/engine) use it to report rates in the same
// canonical order the scenario's content address commits to.
func CanonicalPerm(s *Scenario) ([]int, error) {
	perm, _, err := canonicalPerm(s)
	return perm, err
}

// canonicalPerm validates s and computes the canonical flow permutation
// together with the normalized demand strings (RatString form), which
// both Canonical and CanonicalPerm need.
func canonicalPerm(s *Scenario) (perm []int, demands []string, err error) {
	if err := s.validate(); err != nil {
		return nil, nil, err
	}
	demands = make([]string, len(s.Demands))
	for fi, str := range s.Demands {
		r, ok := new(big.Rat).SetString(str)
		if !ok {
			return nil, nil, fmt.Errorf("codec: flow %d demand %q is not a rational", fi, str)
		}
		if r.Sign() < 0 {
			return nil, nil, fmt.Errorf("codec: flow %d demand %q is negative", fi, str)
		}
		demands[fi] = r.RatString()
	}

	perm = make([]int, len(s.Flows))
	for i := range perm {
		perm[i] = i
	}
	flowLess := func(a, b int) bool {
		fa, fb := s.Flows[a], s.Flows[b]
		switch {
		case fa.SrcSwitch != fb.SrcSwitch:
			return fa.SrcSwitch < fb.SrcSwitch
		case fa.SrcServer != fb.SrcServer:
			return fa.SrcServer < fb.SrcServer
		case fa.DstSwitch != fb.DstSwitch:
			return fa.DstSwitch < fb.DstSwitch
		case fa.DstServer != fb.DstServer:
			return fa.DstServer < fb.DstServer
		}
		if len(demands) > 0 && demands[a] != demands[b] {
			// Compare numerically, not textually: the strings are already
			// normalized, but "2" vs "11" must order as rationals.
			ra, _ := new(big.Rat).SetString(demands[a])
			rb, _ := new(big.Rat).SetString(demands[b])
			return ra.Cmp(rb) < 0
		}
		if len(s.Assignment) > 0 && s.Assignment[a] != s.Assignment[b] {
			return s.Assignment[a] < s.Assignment[b]
		}
		return false
	}
	sort.SliceStable(perm, func(i, j int) bool { return flowLess(perm[i], perm[j]) })
	return perm, demands, nil
}

// Hash returns the SHA-256 content address of the scenario: the hash
// of the compact JSON encoding of its canonical form. Semantically
// equal scenarios — same instance up to flow order, demand-string
// representation and name — hash equal; any change to the shape, the
// flows, a demand value or the assignment changes the hash.
func (s *Scenario) Hash() ([32]byte, error) {
	_, sum, err := CanonicalHash(s)
	return sum, err
}

// CanonicalHash canonicalizes s once and returns both the canonical
// form and its content address — the serving layer needs the pair and
// must not pay for two canonicalization passes on its hot path.
func CanonicalHash(s *Scenario) (*Scenario, [32]byte, error) {
	c, err := Canonical(s)
	if err != nil {
		return nil, [32]byte{}, err
	}
	data, err := json.Marshal(c)
	if err != nil {
		return nil, [32]byte{}, fmt.Errorf("codec: %w", err)
	}
	return c, sha256.Sum256(data), nil
}

// TopologyHash returns the SHA-256 address of the scenario's topology:
// the shape (tors, servers, middles) plus the canonically ordered flow
// list, with the name, demands and assignment stripped. Scenarios that
// share a topology hash build the identical (Fabric, Collection) pair
// from Canonical(s).Build(), so evaluator state prepared for one can
// evaluate any assignment of the other — the key of the serving
// layer's shared-evaluator pool (internal/engine).
//
// Ties in the canonical flow sort that are broken by demand or
// assignment only occur between flows identical in all four endpoint
// indices, so the projected (src, dst) sequence — all the evaluator
// sees — is uniquely determined by the hashed value: equal hashes can
// never alias two different flow collections.
func TopologyHash(s *Scenario) ([32]byte, error) {
	c, err := Canonical(s)
	if err != nil {
		return [32]byte{}, err
	}
	stripped := &Scenario{
		Topology: c.Topology,
		Tors:     c.Tors,
		Servers:  c.Servers,
		Middles:  c.Middles,
		Flows:    c.Flows,
	}
	data, err := json.Marshal(stripped)
	if err != nil {
		return [32]byte{}, fmt.Errorf("codec: %w", err)
	}
	return sha256.Sum256(data), nil
}

// LoadFile reads and decodes a scenario file — the one JSON-reading
// path shared by the CLIs and the closnetd daemon.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return Decode(data)
}
