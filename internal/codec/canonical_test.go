package codec

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleScenario() *Scenario {
	return &Scenario{
		Name:    "sample",
		Tors:    4,
		Servers: 2,
		Middles: 2,
		Flows: []FlowJSON{
			{SrcSwitch: 2, SrcServer: 1, DstSwitch: 3, DstServer: 2},
			{SrcSwitch: 1, SrcServer: 2, DstSwitch: 4, DstServer: 1},
			{SrcSwitch: 1, SrcServer: 1, DstSwitch: 3, DstServer: 1},
		},
		Demands:    []string{"2/4", "1", "3/9"},
		Assignment: []int{2, 1, 2},
	}
}

func TestCanonicalSortsFlowsAndPermutesInParallel(t *testing.T) {
	s := sampleScenario()
	c, err := Canonical(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "" {
		t.Errorf("canonical form kept name %q", c.Name)
	}
	wantFlows := []FlowJSON{
		{SrcSwitch: 1, SrcServer: 1, DstSwitch: 3, DstServer: 1},
		{SrcSwitch: 1, SrcServer: 2, DstSwitch: 4, DstServer: 1},
		{SrcSwitch: 2, SrcServer: 1, DstSwitch: 3, DstServer: 2},
	}
	for i, want := range wantFlows {
		if c.Flows[i] != want {
			t.Errorf("flow %d = %+v, want %+v", i, c.Flows[i], want)
		}
	}
	// Demands and assignment must ride along with their flows.
	wantDemands := []string{"1/3", "1", "1/2"}
	wantAssignment := []int{2, 1, 2}
	for i := range wantDemands {
		if c.Demands[i] != wantDemands[i] {
			t.Errorf("demand %d = %q, want %q", i, c.Demands[i], wantDemands[i])
		}
		if c.Assignment[i] != wantAssignment[i] {
			t.Errorf("assignment %d = %d, want %d", i, c.Assignment[i], wantAssignment[i])
		}
	}
	// The input is not mutated.
	if s.Flows[0].SrcSwitch != 2 || s.Demands[0] != "2/4" {
		t.Error("Canonical mutated its input")
	}
}

func TestHashEqualForSemanticallyEqualScenarios(t *testing.T) {
	a := sampleScenario()
	h1, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Same instance: permuted flows, unnormalized rate strings, other name.
	b := &Scenario{
		Name:    "other-label",
		Tors:    4,
		Servers: 2,
		Middles: 2,
		Flows: []FlowJSON{
			{SrcSwitch: 1, SrcServer: 1, DstSwitch: 3, DstServer: 1},
			{SrcSwitch: 2, SrcServer: 1, DstSwitch: 3, DstServer: 2},
			{SrcSwitch: 1, SrcServer: 2, DstSwitch: 4, DstServer: 1},
		},
		Demands:    []string{"6/18", "4/8", "7/7"},
		Assignment: []int{2, 2, 1},
	}
	h2, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("semantically equal scenarios hash differently:\n%x\n%x", h1, h2)
	}
}

func TestHashDistinguishesInstances(t *testing.T) {
	base := sampleScenario()
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Scenario){
		"shape":      func(s *Scenario) { s.Middles = 3 },
		"flow":       func(s *Scenario) { s.Flows[0].DstServer = 1 },
		"demand":     func(s *Scenario) { s.Demands[1] = "1/7" },
		"assignment": func(s *Scenario) { s.Assignment[2] = 1 },
		"no-demands": func(s *Scenario) { s.Demands = nil },
		"no-assign":  func(s *Scenario) { s.Assignment = nil },
	}
	for name, mutate := range mutations {
		m := sampleScenario()
		mutate(m)
		h, err := m.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("mutation %q did not change the hash", name)
		}
	}
}

func TestHashStableUnderEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleScenario()
	h1, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("hash changed across an encode/decode round trip")
	}
}

func TestCanonicalIsIdempotentAndBuildEquivalent(t *testing.T) {
	s := sampleScenario()
	c1, err := Canonical(s)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Canonical(c1)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(c1)
	j2, _ := json.Marshal(c2)
	if !bytes.Equal(j1, j2) {
		t.Errorf("Canonical is not idempotent:\n%s\n%s", j1, j2)
	}
	// The canonical scenario still builds.
	if _, _, _, _, err := c1.Build(); err != nil {
		t.Fatalf("canonical scenario does not build: %v", err)
	}
}

func TestCanonicalRejectsInvalid(t *testing.T) {
	bad := sampleScenario()
	bad.Demands[0] = "not-a-rational"
	if _, err := Canonical(bad); err == nil {
		t.Error("bad demand string accepted")
	}
	if _, err := bad.Hash(); err == nil {
		t.Error("Hash accepted a bad demand string")
	}
	shape := sampleScenario()
	shape.Tors = 0
	if _, err := Canonical(shape); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestLoadFile(t *testing.T) {
	s := sampleScenario()
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Flows) != len(s.Flows) {
		t.Errorf("LoadFile round trip mismatch: %+v", got)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(badPath); err == nil {
		t.Error("malformed file accepted")
	}
}
