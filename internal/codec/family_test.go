package codec

import (
	"strings"
	"testing"

	"closnet/internal/topology"
)

func familyScenario(family string) *Scenario {
	return &Scenario{
		Name:     "family-test",
		Topology: family,
		Tors:     4,
		Servers:  2,
		Middles:  4,
		Flows: []FlowJSON{
			{1, 1, 4, 2},
			{2, 2, 1, 1},
		},
	}
}

// TestTopologyRoundTrip: the topology field survives encode/decode and
// selects the right fabric family on Build.
func TestTopologyRoundTrip(t *testing.T) {
	wantName := map[string]string{
		"":        "C(4x2x4)",
		"clos":    "C(4x2x4)",
		"fattree": "FT_4",
		"benes":   "B_8",
	}
	for family, want := range wantName {
		s := familyScenario(family)
		// The fat-tree with 4 ToRs per shape row doesn't exist; fix the
		// shape per family.
		if family == "fattree" {
			s.Tors, s.Servers, s.Middles = 8, 2, 4
		}
		data, err := Encode(s)
		if err != nil {
			t.Fatalf("%q encode: %v", family, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%q decode: %v", family, err)
		}
		if back.Topology != family {
			t.Errorf("%q: topology decoded as %q", family, back.Topology)
		}
		c, fs, _, _, err := back.Build()
		if err != nil {
			t.Fatalf("%q build: %v", family, err)
		}
		if got := c.Network().Name(); got != want {
			t.Errorf("%q: built network %q, want %q", family, got, want)
		}
		if len(fs) != len(s.Flows) {
			t.Errorf("%q: %d flows built, want %d", family, len(fs), len(s.Flows))
		}
	}
}

// TestCanonicalNormalizesClosSpelling: "clos" and "" canonicalize to
// the same form (the empty spelling), so pre-family scenario files keep
// their content addresses.
func TestCanonicalNormalizesClosSpelling(t *testing.T) {
	spelled := familyScenario("clos")
	empty := familyScenario("")
	c, err := Canonical(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if c.Topology != "" {
		t.Errorf("canonical topology %q, want empty", c.Topology)
	}
	h1, err := spelled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := empty.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("\"clos\" and \"\" hash to different content addresses")
	}
	th1, err := TopologyHash(spelled)
	if err != nil {
		t.Fatal(err)
	}
	th2, err := TopologyHash(empty)
	if err != nil {
		t.Fatal(err)
	}
	if th1 != th2 {
		t.Error("\"clos\" and \"\" differ in topology hash")
	}
}

// TestFamilyChangesHashes: two scenarios identical except for the
// family must differ in both the content address and the topology hash
// — the evaluator-pool key may never alias a Benes onto a Clos of the
// same shape.
func TestFamilyChangesHashes(t *testing.T) {
	clos := familyScenario("")
	benes := familyScenario(topology.FamilyBenes)
	h1, err := clos.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := benes.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("clos and benes scenarios of equal shape share a content address")
	}
	th1, err := TopologyHash(clos)
	if err != nil {
		t.Fatal(err)
	}
	th2, err := TopologyHash(benes)
	if err != nil {
		t.Fatal(err)
	}
	if th1 == th2 {
		t.Error("clos and benes scenarios of equal shape share a topology hash")
	}
}

// TestUnknownTopologyRejected: validation names the offending family.
func TestUnknownTopologyRejected(t *testing.T) {
	s := familyScenario("torus")
	if _, err := Encode(s); err != nil {
		t.Fatalf("encode should not validate: %v", err)
	}
	data, _ := Encode(s)
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("decode of unknown family: err = %v, want mention of torus", err)
	}
	if _, err := Canonical(s); err == nil {
		t.Error("canonicalization of unknown family accepted")
	}
	if _, _, _, _, err := s.Build(); err == nil {
		t.Error("build of unknown family accepted")
	}
}

// TestFamilyShapeMismatchRejected: a topology whose shape row can't
// reconstruct the named family fails at Build, not deep in evaluation.
func TestFamilyShapeMismatchRejected(t *testing.T) {
	s := familyScenario(topology.FamilyFatTree) // 4 ToRs is no fat-tree
	if _, _, _, _, err := s.Build(); err == nil {
		t.Error("fat-tree build with non-fat-tree shape accepted")
	}
}
