package codec

import "testing"

func topoScenario() *Scenario {
	return &Scenario{
		Name: "a", Tors: 2, Servers: 2, Middles: 3,
		Flows: []FlowJSON{
			{SrcSwitch: 2, SrcServer: 1, DstSwitch: 1, DstServer: 1},
			{SrcSwitch: 1, SrcServer: 1, DstSwitch: 2, DstServer: 1},
		},
		Demands:    []string{"1/2", "2/4"},
		Assignment: []int{3, 1},
	}
}

// TestTopologyHashInvariants: the topology hash ignores exactly the
// parts of a scenario that do not change the (Clos, Collection) pair —
// name, demands, assignment, flow order — and changes with everything
// that does.
func TestTopologyHashInvariants(t *testing.T) {
	base, err := TopologyHash(topoScenario())
	if err != nil {
		t.Fatal(err)
	}

	same := []func(*Scenario){
		func(s *Scenario) { s.Name = "renamed" },
		func(s *Scenario) { s.Demands = []string{"7", "0"} },
		func(s *Scenario) { s.Demands = nil },
		func(s *Scenario) { s.Assignment = []int{1, 2} },
		func(s *Scenario) { s.Assignment = nil },
		func(s *Scenario) { // flow order (with parallel demand/assignment swap)
			s.Flows[0], s.Flows[1] = s.Flows[1], s.Flows[0]
			s.Demands[0], s.Demands[1] = s.Demands[1], s.Demands[0]
			s.Assignment[0], s.Assignment[1] = s.Assignment[1], s.Assignment[0]
		},
	}
	for i, mutate := range same {
		s := topoScenario()
		mutate(s)
		h, err := TopologyHash(s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if h != base {
			t.Errorf("case %d: topology-preserving mutation changed the hash", i)
		}
	}

	diff := []func(*Scenario){
		func(s *Scenario) { s.Middles = 4 },
		func(s *Scenario) { s.Servers = 3 },
		func(s *Scenario) { s.Tors = 3 },
		func(s *Scenario) { s.Flows[0].DstServer = 2 },
		func(s *Scenario) { s.Flows = s.Flows[:1]; s.Demands = s.Demands[:1]; s.Assignment = s.Assignment[:1] },
	}
	for i, mutate := range diff {
		s := topoScenario()
		mutate(s)
		h, err := TopologyHash(s)
		if err != nil {
			t.Fatalf("diff case %d: %v", i, err)
		}
		if h == base {
			t.Errorf("diff case %d: topology-changing mutation kept the hash", i)
		}
	}

	if _, err := TopologyHash(&Scenario{Tors: 0}); err == nil {
		t.Error("invalid scenario hashed without error")
	}
}
