package codec

import (
	"bytes"
	"math/big"
	"testing"

	"closnet/internal/core"
)

func TestRateStrings(t *testing.T) {
	alloc := core.Allocation{
		big.NewRat(1, 3),
		big.NewRat(1, 1),
		big.NewRat(0, 1),
		big.NewRat(5, 2),
	}
	got := RateStrings(alloc)
	want := []string{"1/3", "1", "0", "5/2"}
	if len(got) != len(want) {
		t.Fatalf("RateStrings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RateStrings[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if empty := RateStrings(nil); len(empty) != 0 {
		t.Errorf("RateStrings(nil) = %v, want empty", empty)
	}
}

// TestMarshalBody pins the wire framing every transport depends on:
// compact single-line JSON terminated by exactly one newline, keys in
// struct order, so response bodies are byte-stable across runs.
func TestMarshalBody(t *testing.T) {
	type doc struct {
		B string   `json:"b"`
		A int      `json:"a"`
		L []string `json:"l,omitempty"`
	}
	body, err := MarshalBody(doc{B: "x", A: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"b":"x","a":7}` + "\n")
	if !bytes.Equal(body, want) {
		t.Errorf("MarshalBody = %q, want %q", body, want)
	}
	again, err := MarshalBody(doc{B: "x", A: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, again) {
		t.Errorf("MarshalBody is not deterministic: %q vs %q", body, again)
	}
	if _, err := MarshalBody(func() {}); err == nil {
		t.Error("MarshalBody accepted an unmarshalable value")
	}
}

func TestErrorBody(t *testing.T) {
	got := ErrorBody(`broken "scenario"`)
	want := []byte(`{"error":"broken \"scenario\""}` + "\n")
	if !bytes.Equal(got, want) {
		t.Errorf("ErrorBody = %q, want %q", got, want)
	}
}
