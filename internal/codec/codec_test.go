package codec

import (
	"strings"
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
)

func TestRoundTripExample23(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v\n%s", err, data)
	}
	c, fs, demands, ma, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 || len(fs) != 6 {
		t.Fatalf("rebuilt shape: n=%d flows=%d", c.Size(), len(fs))
	}
	if !demands.Equal(in.MacroRates) {
		t.Errorf("demands = %v, want %v", demands, in.MacroRates)
	}
	// The witness assignment must reproduce the witness allocation.
	a, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(in.WitnessRates) {
		t.Errorf("rebuilt allocation = %v, want %v", a, in.WitnessRates)
	}
}

func TestRoundTripTheorem43(t *testing.T) {
	in, err := adversary.Theorem43(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	c, fs, _, ma, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(in.WitnessRates) {
		t.Error("Theorem 4.3 witness did not survive the round trip")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"syntax", `{`},
		{"bad shape", `{"tors":0,"servers":1,"middles":1,"flows":[]}`},
		{"switch out of range", `{"tors":2,"servers":1,"middles":1,"flows":[{"srcSwitch":3,"srcServer":1,"dstSwitch":1,"dstServer":1}]}`},
		{"server out of range", `{"tors":2,"servers":1,"middles":1,"flows":[{"srcSwitch":1,"srcServer":2,"dstSwitch":1,"dstServer":1}]}`},
		{"demand count", `{"tors":2,"servers":1,"middles":1,"flows":[{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1}],"demands":["1","1"]}`},
		{"assignment count", `{"tors":2,"servers":1,"middles":1,"flows":[{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1}],"assignment":[1,2]}`},
		{"assignment range", `{"tors":2,"servers":1,"middles":1,"flows":[{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1}],"assignment":[2]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode([]byte(tc.json)); err == nil {
				t.Error("malformed scenario accepted")
			}
		})
	}
}

func TestBuildRejectsBadDemandStrings(t *testing.T) {
	s := &Scenario{
		Tors: 2, Servers: 1, Middles: 1,
		Flows:   []FlowJSON{{1, 1, 2, 1}},
		Demands: []string{"not-a-rational"},
	}
	if _, _, _, _, err := s.Build(); err == nil {
		t.Error("bad demand string accepted")
	}
	s.Demands = []string{"-1/2"}
	if _, _, _, _, err := s.Build(); err == nil {
		t.Error("negative demand accepted")
	}
	s.Demands = []string{"2/3"}
	if _, _, _, _, err := s.Build(); err != nil {
		t.Errorf("valid demand rejected: %v", err)
	}
}

func TestEncodeIsExact(t *testing.T) {
	in, err := adversary.Theorem34(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"1/3"`) {
		t.Errorf("rates not serialized exactly:\n%s", data)
	}
}

func TestScenarioWithoutOptionalFields(t *testing.T) {
	s := &Scenario{
		Tors: 2, Servers: 2, Middles: 3,
		Flows: []FlowJSON{{1, 1, 2, 2}},
	}
	c, fs, demands, ma, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if demands != nil || ma != nil {
		t.Error("optional fields should be nil")
	}
	if c.Size() != 3 || len(fs) != 1 {
		t.Error("wrong shape")
	}
}
