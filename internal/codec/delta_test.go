package codec

import (
	"testing"
)

func TestDecodeDelta(t *testing.T) {
	d, err := DecodeDelta([]byte(`{"op":"arrive","flow":{"srcSwitch":1,"srcServer":2,"dstSwitch":3,"dstServer":1},"middle":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Op != DeltaArrive || d.Flow == nil || d.Flow.SrcServer != 2 || d.Middle != 2 {
		t.Fatalf("decoded %+v", d)
	}
	if _, err := DecodeDelta([]byte(`{"op":"explode"}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := DecodeDelta([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	d, err = DecodeDelta([]byte(`{"op":"depart","id":3}`))
	if err != nil || d.ID != 3 {
		t.Fatalf("depart decode: %+v, %v", d, err)
	}
}

func TestDeltaValidate(t *testing.T) {
	flow := &FlowJSON{SrcSwitch: 1, SrcServer: 1, DstSwitch: 2, DstServer: 2}
	cases := []struct {
		name string
		d    Delta
		ok   bool
	}{
		{"arrive ok", Delta{Op: DeltaArrive, Flow: flow, Middle: 1}, true},
		{"arrive no flow", Delta{Op: DeltaArrive, Middle: 1}, false},
		{"arrive middle 0", Delta{Op: DeltaArrive, Flow: flow}, false},
		{"arrive middle high", Delta{Op: DeltaArrive, Flow: flow, Middle: 3}, false},
		{"arrive bad switch", Delta{Op: DeltaArrive, Flow: &FlowJSON{SrcSwitch: 9, SrcServer: 1, DstSwitch: 1, DstServer: 1}, Middle: 1}, false},
		{"arrive bad server", Delta{Op: DeltaArrive, Flow: &FlowJSON{SrcSwitch: 1, SrcServer: 9, DstSwitch: 1, DstServer: 1}, Middle: 1}, false},
		{"depart ok", Delta{Op: DeltaDepart, ID: 0}, true},
		{"depart negative", Delta{Op: DeltaDepart, ID: -1}, false},
		{"reroute ok", Delta{Op: DeltaReroute, ID: 1, Middle: 2}, true},
		{"reroute middle 0", Delta{Op: DeltaReroute, ID: 1}, false},
		{"reroute negative id", Delta{Op: DeltaReroute, ID: -2, Middle: 1}, false},
		{"unknown op", Delta{Op: "warp"}, false},
	}
	for _, tc := range cases {
		err := tc.d.Validate(4, 2, 2)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid delta accepted", tc.name)
		}
	}
}

// TestCanonicalPermMatchesCanonical: applying the permutation to the
// original flow list must reproduce Canonical's flow order.
func TestCanonicalPermMatchesCanonical(t *testing.T) {
	s := &Scenario{
		Tors: 3, Servers: 2, Middles: 3,
		Flows: []FlowJSON{
			{3, 1, 1, 2},
			{1, 2, 2, 1},
			{1, 1, 3, 1},
			{1, 1, 3, 1}, // duplicate: assignment breaks the tie
			{2, 2, 1, 1},
		},
		Assignment: []int{1, 2, 3, 1, 2},
	}
	perm, err := CanonicalPerm(s)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Canonical(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != len(s.Flows) {
		t.Fatalf("perm length %d", len(perm))
	}
	for i, fi := range perm {
		if s.Flows[fi] != c.Flows[i] {
			t.Fatalf("perm[%d]=%d: %+v != canonical %+v", i, fi, s.Flows[fi], c.Flows[i])
		}
		if s.Assignment[fi] != c.Assignment[i] {
			t.Fatalf("perm[%d]=%d: assignment %d != canonical %d", i, fi, s.Assignment[fi], c.Assignment[i])
		}
	}
	if _, err := CanonicalPerm(&Scenario{Tors: 0}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
