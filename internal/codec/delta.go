package codec

import (
	"encoding/json"
	"fmt"
)

// Delta ops.
const (
	// DeltaArrive admits Flow on middle Middle; the response assigns it
	// the next session flow ID.
	DeltaArrive = "arrive"
	// DeltaDepart removes the session flow ID.
	DeltaDepart = "depart"
	// DeltaReroute moves the session flow ID onto middle Middle.
	DeltaReroute = "reroute"
)

// Delta is one mutation of a session's live scenario — the wire format
// of POST /v1/session/{id}/delta. The response after every delta
// reports the session's state in canonical scenario order with its
// CanonicalHash, so a replayed delta sequence is directly comparable
// (hash-equal) to a one-shot /v1/evaluate of the end state.
type Delta struct {
	Op string `json:"op"`
	// Flow is the arriving flow (arrive only).
	Flow *FlowJSON `json:"flow,omitempty"`
	// Middle is the 1-based middle switch (arrive, reroute).
	Middle int `json:"middle,omitempty"`
	// ID is the session flow ID to depart or reroute.
	ID int `json:"id,omitempty"`
}

// DecodeDelta unmarshals one delta. Structural validation against a
// session's shape is Validate's job.
func DecodeDelta(data []byte) (*Delta, error) {
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	switch d.Op {
	case DeltaArrive, DeltaDepart, DeltaReroute:
	default:
		return nil, fmt.Errorf("codec: unknown delta op %q (known: %s, %s, %s)",
			d.Op, DeltaArrive, DeltaDepart, DeltaReroute)
	}
	return &d, nil
}

// Validate checks the delta against a topology shape. Liveness of ID is
// the session's business; Validate only checks what the wire form can.
func (d *Delta) Validate(tors, servers, middles int) error {
	switch d.Op {
	case DeltaArrive:
		if d.Flow == nil {
			return fmt.Errorf("codec: arrive delta without a flow")
		}
		f := d.Flow
		if f.SrcSwitch < 1 || f.SrcSwitch > tors || f.DstSwitch < 1 || f.DstSwitch > tors {
			return fmt.Errorf("codec: arrive flow switch index out of range [1,%d]", tors)
		}
		if f.SrcServer < 1 || f.SrcServer > servers || f.DstServer < 1 || f.DstServer > servers {
			return fmt.Errorf("codec: arrive flow server index out of range [1,%d]", servers)
		}
		if d.Middle < 1 || d.Middle > middles {
			return fmt.Errorf("codec: arrive middle %d out of range [1,%d]", d.Middle, middles)
		}
	case DeltaDepart:
		if d.ID < 0 {
			return fmt.Errorf("codec: depart id %d is negative", d.ID)
		}
	case DeltaReroute:
		if d.ID < 0 {
			return fmt.Errorf("codec: reroute id %d is negative", d.ID)
		}
		if d.Middle < 1 || d.Middle > middles {
			return fmt.Errorf("codec: reroute middle %d out of range [1,%d]", d.Middle, middles)
		}
	default:
		return fmt.Errorf("codec: unknown delta op %q", d.Op)
	}
	return nil
}
