// Package routing implements the data-center routing algorithms surveyed
// in §6, used as baselines for the paper's simulation-based evaluation:
// flows are offered to the network with their macro-switch rates as
// demands, and each algorithm assigns every flow to a middle switch
// trying to keep link congestion low. The resulting max-min fair rates
// (computed by congestion control, i.e. package core's water-filler) are
// then compared against the macro-switch rates.
//
//   - ECMP: each flow picks a middle switch uniformly at random [2].
//   - Greedy: flows in descending demand order pick the path minimizing
//     the resulting maximum link congestion (Hedera-style [3, 4, 18]).
//   - FirstFit: flows pick the first middle switch whose links still have
//     spare capacity for the full demand, falling back to greedy.
//   - LocalSearch: starts from greedy and repeatedly reroutes single
//     flows while doing so reduces (maxCongestion, sumSquares) [3, 9].
//
// Demands are float64: the stochastic evaluation runs thousands of
// instances and the routing decisions themselves need no exactness (the
// subsequent rate computation may still use the exact water-filler).
package routing

import (
	"fmt"
	"math/rand"

	"closnet/internal/core"
	"closnet/internal/topology"
)

// Algorithm is a named routing strategy.
type Algorithm struct {
	// Name identifies the algorithm in experiment tables.
	Name string
	// Route assigns every flow a middle switch. demands are the offered
	// rates (typically macro-switch rates) and may be ignored (ECMP).
	// rng is used by randomized algorithms and must not be nil for them.
	Route func(c topology.Fabric, fs core.Collection, demands []float64, rng *rand.Rand) (core.MiddleAssignment, error)
}

// fabric tracks per-link loads of the two fabric stages.
type fabric struct {
	c      topology.Fabric
	inLoad [][]float64 // [input-1][middle-1]
	outLd  [][]float64 // [output-1][middle-1]
	inIdx  []int       // per flow
	outIdx []int       // per flow
}

func newFabric(c topology.Fabric, fs core.Collection) (*fabric, error) {
	n := c.Size()
	f := &fabric{
		c:      c,
		inLoad: zeroGrid(c.NumToRs(), n),
		outLd:  zeroGrid(c.NumToRs(), n),
		inIdx:  make([]int, len(fs)),
		outIdx: make([]int, len(fs)),
	}
	for fi, fl := range fs {
		i, ok := c.InputOf(fl.Src)
		if !ok {
			return nil, fmt.Errorf("routing: flow %d source is not a server", fi)
		}
		o, ok := c.OutputOf(fl.Dst)
		if !ok {
			return nil, fmt.Errorf("routing: flow %d destination is not a server", fi)
		}
		f.inIdx[fi], f.outIdx[fi] = i, o
	}
	return f, nil
}

func zeroGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

// place adds flow fi with demand d to middle m (1-based).
func (f *fabric) place(fi, m int, d float64) {
	f.inLoad[f.inIdx[fi]-1][m-1] += d
	f.outLd[f.outIdx[fi]-1][m-1] += d
}

// remove undoes place.
func (f *fabric) remove(fi, m int, d float64) {
	f.inLoad[f.inIdx[fi]-1][m-1] -= d
	f.outLd[f.outIdx[fi]-1][m-1] -= d
}

// congestionAfter returns the larger of the two fabric-link loads flow fi
// would see if placed on middle m with demand d.
func (f *fabric) congestionAfter(fi, m int, d float64) float64 {
	in := f.inLoad[f.inIdx[fi]-1][m-1] + d
	out := f.outLd[f.outIdx[fi]-1][m-1] + d
	if in > out {
		return in
	}
	return out
}

// maxAndSumSq returns the maximum fabric-link load and the sum of squared
// loads, the two-level objective of the local search.
func (f *fabric) maxAndSumSq() (float64, float64) {
	max, sum := 0.0, 0.0
	for _, grid := range [][][]float64{f.inLoad, f.outLd} {
		for _, row := range grid {
			for _, v := range row {
				if v > max {
					max = v
				}
				sum += v * v
			}
		}
	}
	return max, sum
}

// NewECMP returns the ECMP algorithm: uniform random middle per flow.
func NewECMP() Algorithm {
	return Algorithm{
		Name: "ecmp",
		Route: func(c topology.Fabric, fs core.Collection, _ []float64, rng *rand.Rand) (core.MiddleAssignment, error) {
			if rng == nil {
				return nil, fmt.Errorf("routing: ecmp needs a random source")
			}
			if err := fs.Validate(c.Network()); err != nil {
				return nil, err
			}
			ma := make(core.MiddleAssignment, len(fs))
			for fi := range fs {
				ma[fi] = rng.Intn(c.Size()) + 1
			}
			return ma, nil
		},
	}
}

// NewGreedy returns the greedy least-congested-path algorithm: flows in
// descending demand order pick the middle minimizing the congestion of
// their two fabric links.
func NewGreedy() Algorithm {
	return Algorithm{
		Name: "greedy",
		Route: func(c topology.Fabric, fs core.Collection, demands []float64, _ *rand.Rand) (core.MiddleAssignment, error) {
			return greedyRoute(c, fs, demands)
		},
	}
}

func greedyRoute(c topology.Fabric, fs core.Collection, demands []float64) (core.MiddleAssignment, error) {
	if len(demands) != len(fs) {
		return nil, fmt.Errorf("routing: %d demands for %d flows", len(demands), len(fs))
	}
	f, err := newFabric(c, fs)
	if err != nil {
		return nil, err
	}
	order := byDescendingDemand(demands)
	ma := make(core.MiddleAssignment, len(fs))
	for _, fi := range order {
		best, bestCong := 1, 0.0
		for m := 1; m <= c.Size(); m++ {
			cong := f.congestionAfter(fi, m, demands[fi])
			if m == 1 || cong < bestCong {
				best, bestCong = m, cong
			}
		}
		ma[fi] = best
		f.place(fi, best, demands[fi])
	}
	return ma, nil
}

// NewFirstFit returns the first-fit algorithm: each flow (in input order)
// takes the first middle switch on which its demand still fits within
// unit capacity; if none fits it takes the least congested middle.
func NewFirstFit() Algorithm {
	return Algorithm{
		Name: "first-fit",
		Route: func(c topology.Fabric, fs core.Collection, demands []float64, _ *rand.Rand) (core.MiddleAssignment, error) {
			if len(demands) != len(fs) {
				return nil, fmt.Errorf("routing: %d demands for %d flows", len(demands), len(fs))
			}
			f, err := newFabric(c, fs)
			if err != nil {
				return nil, err
			}
			const slack = 1e-9 // tolerate float rounding at exactly-full links
			ma := make(core.MiddleAssignment, len(fs))
			for fi := range fs {
				choice := 0
				for m := 1; m <= c.Size(); m++ {
					if f.congestionAfter(fi, m, demands[fi]) <= 1+slack {
						choice = m
						break
					}
				}
				if choice == 0 {
					best, bestCong := 1, 0.0
					for m := 1; m <= c.Size(); m++ {
						cong := f.congestionAfter(fi, m, demands[fi])
						if m == 1 || cong < bestCong {
							best, bestCong = m, cong
						}
					}
					choice = best
				}
				ma[fi] = choice
				f.place(fi, choice, demands[fi])
			}
			return ma, nil
		},
	}
}

// NewLocalSearch returns the local-search algorithm: greedy start, then
// up to maxMoves single-flow reroutes, each strictly reducing the
// objective (max link congestion, then sum of squared loads).
func NewLocalSearch(maxMoves int) Algorithm {
	if maxMoves <= 0 {
		maxMoves = 1000
	}
	return Algorithm{
		Name: "local-search",
		Route: func(c topology.Fabric, fs core.Collection, demands []float64, _ *rand.Rand) (core.MiddleAssignment, error) {
			ma, err := greedyRoute(c, fs, demands)
			if err != nil {
				return nil, err
			}
			f, err := newFabric(c, fs)
			if err != nil {
				return nil, err
			}
			for fi, m := range ma {
				f.place(fi, m, demands[fi])
			}
			curMax, curSq := f.maxAndSumSq()
			for move := 0; move < maxMoves; move++ {
				improved := false
				for fi := range fs {
					orig := ma[fi]
					for m := 1; m <= c.Size(); m++ {
						if m == orig {
							continue
						}
						f.remove(fi, orig, demands[fi])
						f.place(fi, m, demands[fi])
						newMax, newSq := f.maxAndSumSq()
						if newMax < curMax || (newMax == curMax && newSq < curSq) {
							ma[fi] = m
							curMax, curSq = newMax, newSq
							improved = true
							break
						}
						f.remove(fi, m, demands[fi])
						f.place(fi, orig, demands[fi])
					}
					if improved {
						break
					}
				}
				if !improved {
					break
				}
			}
			return ma, nil
		},
	}
}

// All returns the four baseline algorithms in presentation order.
func All() []Algorithm {
	return []Algorithm{NewECMP(), NewGreedy(), NewLocalSearch(0), NewFirstFit()}
}

func byDescendingDemand(demands []float64) []int {
	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	// Insertion sort keeps the dependency surface small and is plenty for
	// the instance sizes used in the evaluation.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && demands[order[j]] > demands[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
