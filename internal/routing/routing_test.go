package routing

import (
	"math/rand"
	"testing"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

func uniformDemands(n int, d float64) []float64 {
	ds := make([]float64, n)
	for i := range ds {
		ds[i] = d
	}
	return ds
}

func randomCollection(rng *rand.Rand, c *topology.Clos, numFlows int) core.Collection {
	n := c.Size()
	fs := core.Collection{}
	for f := 0; f < numFlows; f++ {
		fs = fs.Add(
			c.Source(rng.Intn(2*n)+1, rng.Intn(n)+1),
			c.Dest(rng.Intn(2*n)+1, rng.Intn(n)+1), 1)
	}
	return fs
}

func TestAllAlgorithmsProduceValidAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := topology.MustClos(3)
	fs := randomCollection(rng, c, 20)
	demands := uniformDemands(len(fs), 0.3)
	for _, alg := range All() {
		t.Run(alg.Name, func(t *testing.T) {
			ma, err := alg.Route(c, fs, demands, rng)
			if err != nil {
				t.Fatalf("Route: %v", err)
			}
			if len(ma) != len(fs) {
				t.Fatalf("assignment length %d, want %d", len(ma), len(fs))
			}
			if _, err := core.ClosRouting(c, fs, ma); err != nil {
				t.Fatalf("invalid assignment: %v", err)
			}
		})
	}
}

func TestAlgorithmNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, alg := range All() {
		if alg.Name == "" {
			t.Error("unnamed algorithm")
		}
		if seen[alg.Name] {
			t.Errorf("duplicate algorithm name %q", alg.Name)
		}
		seen[alg.Name] = true
	}
}

func TestECMPNeedsRNGAndIsUniformIsh(t *testing.T) {
	c := topology.MustClos(4)
	fs := randomCollection(rand.New(rand.NewSource(1)), c, 400)
	if _, err := NewECMP().Route(c, fs, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
	ma, err := NewECMP().Route(c, fs, nil, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, c.Size()+1)
	for _, m := range ma {
		counts[m]++
	}
	for m := 1; m <= c.Size(); m++ {
		if counts[m] < 50 || counts[m] > 150 {
			t.Errorf("middle %d got %d of 400 flows; not uniform-ish", m, counts[m])
		}
	}
}

// TestGreedySpreadsParallelFlows: n parallel unit-demand flows between
// the same pair must land on n distinct middles under greedy.
func TestGreedySpreadsParallelFlows(t *testing.T) {
	c := topology.MustClos(3)
	fs := core.Collection{}.Add(c.Source(1, 1), c.Dest(2, 1), 3)
	ma, err := NewGreedy().Route(c, fs, uniformDemands(3, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, m := range ma {
		if seen[m] {
			t.Fatalf("greedy stacked parallel unit flows on middle %d (assignment %v)", m, ma)
		}
		seen[m] = true
	}
}

func TestGreedyDemandMismatch(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}.Add(c.Source(1, 1), c.Dest(1, 1), 2)
	if _, err := NewGreedy().Route(c, fs, uniformDemands(1, 1), nil); err == nil {
		t.Error("demand length mismatch accepted")
	}
	bad := core.Collection{{Src: c.Input(1), Dst: c.Dest(1, 1)}}
	if _, err := NewGreedy().Route(c, bad, uniformDemands(1, 1), nil); err == nil {
		t.Error("invalid flow accepted")
	}
}

// TestFirstFitPacksThenSpreads: first-fit packs small flows onto middle 1
// until full, then moves on.
func TestFirstFitPacksThenSpreads(t *testing.T) {
	c := topology.MustClos(2)
	// Four flows of demand 1/2 between the same switch pair: two fit on
	// M1, the rest must go to M2.
	fs := core.Collection{}.Add(c.Source(1, 1), c.Dest(2, 1), 2)
	fs = fs.Add(c.Source(1, 2), c.Dest(2, 2), 2)
	ma, err := NewFirstFit().Route(c, fs, uniformDemands(4, 0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, m := range ma {
		counts[m]++
	}
	if counts[1] != 2 || counts[2] != 2 {
		t.Errorf("first-fit distribution %v, want 2 per middle", counts)
	}
}

func TestFirstFitFallbackWhenNothingFits(t *testing.T) {
	c := topology.MustClos(2)
	// Three unit flows through the same input switch: only two middles,
	// so the third cannot fit and must fall back to least congested.
	fs := core.Collection{}.Add(c.Source(1, 1), c.Dest(2, 1), 1)
	fs = fs.Add(c.Source(1, 2), c.Dest(3, 1), 1)
	fs = fs.Add(c.Source(1, 2), c.Dest(4, 1), 1)
	ma, err := NewFirstFit().Route(c, fs, uniformDemands(3, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) != 3 {
		t.Fatalf("assignment %v", ma)
	}
}

// TestLocalSearchNeverWorseThanGreedy compares the max fabric congestion
// of local search against greedy on random instances.
func TestLocalSearchNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		c := topology.MustClos(rng.Intn(3) + 2)
		fs := randomCollection(rng, c, rng.Intn(25)+5)
		demands := make([]float64, len(fs))
		for i := range demands {
			demands[i] = rng.Float64()
		}
		gMax := maxCongestion(t, c, fs, demands, NewGreedy(), nil)
		lMax := maxCongestion(t, c, fs, demands, NewLocalSearch(0), nil)
		if lMax > gMax+1e-9 {
			t.Fatalf("trial %d: local search congestion %v > greedy %v", trial, lMax, gMax)
		}
	}
}

func maxCongestion(t *testing.T, c *topology.Clos, fs core.Collection, demands []float64, alg Algorithm, rng *rand.Rand) float64 {
	t.Helper()
	ma, err := alg.Route(c, fs, demands, rng)
	if err != nil {
		t.Fatal(err)
	}
	f, err := newFabric(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	for fi, m := range ma {
		f.place(fi, m, demands[fi])
	}
	max, _ := f.maxAndSumSq()
	return max
}

// TestLocalSearchFixesGreedyMistake: an instance where a later large flow
// invalidates an earlier greedy placement; local search must reach max
// congestion 1.
func TestLocalSearchFixesBadStart(t *testing.T) {
	c := topology.MustClos(2)
	// Two flows from I1 (demands 1, 1) and one from I2 colliding at O3.
	fs := core.NewCollection(
		c.Source(1, 1), c.Dest(3, 1),
		c.Source(1, 2), c.Dest(3, 2),
		c.Source(2, 1), c.Dest(4, 1),
	)
	demands := []float64{1, 1, 1}
	lMax := maxCongestion(t, c, fs, demands, NewLocalSearch(0), nil)
	if lMax > 1+1e-9 {
		t.Errorf("local search max congestion %v, want 1", lMax)
	}
}

// TestGreedyApproximatesMacroRatesOnLightLoad: with a light permutation
// workload the greedy routing should let every flow keep its macro rate
// (here: all rates 1).
func TestGreedyApproximatesMacroRatesOnLightLoad(t *testing.T) {
	c := topology.MustClos(3)
	fs := core.Collection{}
	for i := 1; i <= 6; i++ {
		for j := 1; j <= 3; j++ {
			fs = fs.Add(c.Source(i, j), c.Dest(i, j), 1)
		}
	}
	ma, err := NewGreedy().Route(c, fs, uniformDemands(len(fs), 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		t.Fatal(err)
	}
	for fi, rate := range a {
		if rate.Cmp(rational.One()) != 0 {
			t.Errorf("flow %d rate %s, want 1", fi, rational.String(rate))
		}
	}
}
