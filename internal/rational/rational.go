// Package rational provides exact rational arithmetic helpers used across
// the library. All allocation results in the paper are exact fractions
// (e.g. 1/3, 2/3, 1/(n+1)); computing with floats would make lexicographic
// comparisons between sorted rate vectors unreliable, so the entire
// allocation engine works on *big.Rat values.
//
// Values returned by this package are freshly allocated; functions never
// mutate their arguments. Callers must follow the same discipline: treat a
// *big.Rat stored in a shared structure as immutable.
package rational

import (
	"math/big"
	"strings"
)

// R returns the rational p/q. It panics if q is zero, matching the behavior
// of big.NewRat; constructions in this library only use literal non-zero
// denominators.
func R(p, q int64) *big.Rat {
	return big.NewRat(p, q)
}

// Int returns the rational v/1.
func Int(v int64) *big.Rat {
	return big.NewRat(v, 1)
}

// Zero returns a fresh rational equal to 0.
func Zero() *big.Rat {
	return new(big.Rat)
}

// One returns a fresh rational equal to 1.
func One() *big.Rat {
	return big.NewRat(1, 1)
}

// Add returns a+b without mutating either operand.
func Add(a, b *big.Rat) *big.Rat {
	return new(big.Rat).Add(a, b)
}

// Sub returns a-b without mutating either operand.
func Sub(a, b *big.Rat) *big.Rat {
	return new(big.Rat).Sub(a, b)
}

// Mul returns a*b without mutating either operand.
func Mul(a, b *big.Rat) *big.Rat {
	return new(big.Rat).Mul(a, b)
}

// Div returns a/b without mutating either operand. It panics if b is zero.
func Div(a, b *big.Rat) *big.Rat {
	return new(big.Rat).Quo(a, b)
}

// Min returns a fresh copy of the smaller of a and b.
func Min(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) <= 0 {
		return new(big.Rat).Set(a)
	}
	return new(big.Rat).Set(b)
}

// Max returns a fresh copy of the larger of a and b.
func Max(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) >= 0 {
		return new(big.Rat).Set(a)
	}
	return new(big.Rat).Set(b)
}

// Copy returns a fresh copy of a.
func Copy(a *big.Rat) *big.Rat {
	return new(big.Rat).Set(a)
}

// IsZero reports whether a equals 0.
func IsZero(a *big.Rat) bool {
	return a.Sign() == 0
}

// Float returns the closest float64 to a. The second return value of
// Rat.Float64 (exactness) is intentionally dropped: callers use Float only
// for reporting and for the float fast path of the simulator.
func Float(a *big.Rat) float64 {
	f, _ := a.Float64()
	return f
}

// String formats a in lowest terms, using plain integers where possible
// ("1" instead of "1/1").
func String(a *big.Rat) string {
	if a.IsInt() {
		return a.Num().String()
	}
	return a.RatString()
}

// Join formats a slice of rationals as "[a, b, c]".
func Join(vs []*big.Rat) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(String(v))
	}
	b.WriteByte(']')
	return b.String()
}
