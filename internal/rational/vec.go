package rational

import (
	"math/big"
	"sort"
)

// Vec is a vector of exact rationals, e.g. the rates of an allocation.
// The elements are treated as immutable.
type Vec []*big.Rat

// NewVec returns a vector of n fresh zeros.
func NewVec(n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = new(big.Rat)
	}
	return v
}

// VecOf builds a vector from (p, q) integer pairs, one pair per element.
// It panics if the argument count is odd; it is intended for test and
// example literals such as VecOf(1,3, 1,3, 2,3).
func VecOf(pq ...int64) Vec {
	if len(pq)%2 != 0 {
		panic("rational.VecOf: odd number of arguments")
	}
	v := make(Vec, 0, len(pq)/2)
	for i := 0; i < len(pq); i += 2 {
		v = append(v, big.NewRat(pq[i], pq[i+1]))
	}
	return v
}

// Copy returns a deep copy of v.
func (v Vec) Copy() Vec {
	w := make(Vec, len(v))
	for i, x := range v {
		w[i] = new(big.Rat).Set(x)
	}
	return w
}

// Sum returns the total of all elements.
func (v Vec) Sum() *big.Rat {
	s := new(big.Rat)
	for _, x := range v {
		s.Add(s, x)
	}
	return s
}

// MinElem returns a copy of the smallest element. An empty vector has no
// minimum, so MinElem panics with an explicit message; callers that may
// hold an empty vector (e.g. an allocation of an empty flow collection)
// must check len(v) first.
func (v Vec) MinElem() *big.Rat {
	if len(v) == 0 {
		panic("rational: MinElem of empty Vec")
	}
	m := v[0]
	for _, x := range v[1:] {
		if Cmp(x, m) < 0 {
			m = x
		}
	}
	return new(big.Rat).Set(m)
}

// SortedCopy returns the sorted vector v↑ of the paper: the elements of v
// in non-decreasing order. v itself is not modified.
func (v Vec) SortedCopy() Vec {
	w := v.Copy()
	sort.Slice(w, func(i, j int) bool { return Cmp(w[i], w[j]) < 0 })
	return w
}

// Equal reports whether v and w have the same length and equal elements
// position by position.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if Cmp(v[i], w[i]) != 0 {
			return false
		}
	}
	return true
}

// String formats v as "[a, b, c]" with elements in lowest terms.
func (v Vec) String() string {
	return Join(v)
}

// Floats returns the float64 image of v, for reporting.
func (v Vec) Floats() []float64 {
	fs := make([]float64, len(v))
	for i, x := range v {
		fs[i] = Float(x)
	}
	return fs
}

// LexCompare compares two vectors in lexicographic order, element by
// element, returning -1, 0 or +1. Vectors of different lengths are compared
// on their common prefix first; if the prefixes are equal the shorter
// vector is considered smaller (this case does not arise when comparing
// allocations of the same flow collection, which always have equal length).
func LexCompare(a, b Vec) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Cmp(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// LexCompareSorted sorts copies of a and b and compares them
// lexicographically: this is exactly the order "a↑ ≥ b↑" used by
// Definition 2.1 (max-min fairness) and Definition 2.4 (lex-max-min
// fairness) in the paper.
func LexCompareSorted(a, b Vec) int {
	return LexCompare(a.SortedCopy(), b.SortedCopy())
}
