package rational

import (
	"encoding/binary"
	"math"
	"math/big"
	"testing"
)

// fuzzOp encodes one arithmetic step: an opcode byte followed by two
// little-endian int64 operands forming a rational p/q.
func fuzzOp(op byte, p, q int64) []byte {
	buf := make([]byte, 17)
	buf[0] = op
	binary.LittleEndian.PutUint64(buf[1:9], uint64(p))
	binary.LittleEndian.PutUint64(buf[9:17], uint64(q))
	return buf
}

// FuzzRat64 drives random operation sequences through a Rat64
// accumulator and a *big.Rat reference side by side. Every successful
// Rat64 step must match the big.Rat value exactly and keep the
// normalized-form invariant (den ≥ 1, gcd(num, den) = 1); every
// overflow must promote losslessly — re-entering the small-word domain
// through FromRat whenever the exact value fits — mirroring how
// core.Evaluator falls back to its big.Rat path and later resumes the
// fast one.
func FuzzRat64(f *testing.F) {
	// Plain arithmetic on small values.
	f.Add(append(fuzzOp(0, 1, 3), append(fuzzOp(1, 1, 6), fuzzOp(2, 7, 2)...)...))
	// Division chains, the evaluator's min-delta shape.
	f.Add(append(fuzzOp(3, 3, 7), append(fuzzOp(5, 5, 1), fuzzOp(4, 9, 1)...)...))
	// Forced overflow: repeated multiplication by MaxInt64.
	f.Add(append(fuzzOp(0, math.MaxInt64, 1), append(fuzzOp(2, math.MaxInt64, 1), fuzzOp(2, math.MaxInt64, 1)...)...))
	// Conservative Add overflow: huge coprime denominators.
	f.Add(append(fuzzOp(0, 1, math.MaxInt64), fuzzOp(0, 1, math.MaxInt64-1)...))
	// Promotion boundary probing around ±2^62 denominators.
	f.Add(append(fuzzOp(0, 1, 1<<62), append(fuzzOp(1, 1, (1<<62)-1), fuzzOp(2, -(1<<61), 3)...)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		cur := Zero64()
		ref := new(big.Rat)
		check := func(got Rat64, want *big.Rat) {
			if got.Rat().Cmp(want) != 0 {
				t.Fatalf("Rat64 %s != big.Rat %s", got, want.RatString())
			}
			if got.Den() <= 0 {
				t.Fatalf("denormalized denominator in %s", got)
			}
			g := new(big.Int).GCD(nil, nil,
				new(big.Int).Abs(big.NewInt(got.Num())), big.NewInt(got.Den()))
			if g.Cmp(big.NewInt(1)) > 0 && got.Num() != 0 {
				t.Fatalf("unreduced value %d/%d", got.Num(), got.Den())
			}
		}
		for len(data) >= 17 {
			op := data[0] % 6
			p := int64(binary.LittleEndian.Uint64(data[1:9]))
			q := int64(binary.LittleEndian.Uint64(data[9:17]))
			data = data[17:]
			operand, ok := Make64(p, q)
			if !ok {
				continue // q = 0 or a MinInt64 magnitude survived reduction
			}
			operandBig := operand.Rat()
			check(operand, operandBig)
			if cur.Cmp(operand) != ref.Cmp(operandBig) {
				t.Fatalf("Cmp(%s, %s) = %d, big says %d",
					cur, operand, cur.Cmp(operand), ref.Cmp(operandBig))
			}
			var (
				next   Rat64
				stepOK bool
			)
			refNext := new(big.Rat)
			switch op {
			case 0:
				next, stepOK = cur.Add(operand)
				refNext.Add(ref, operandBig)
			case 1:
				next, stepOK = cur.Sub(operand)
				refNext.Sub(ref, operandBig)
			case 2:
				next, stepOK = cur.Mul(operand)
				refNext.Mul(ref, operandBig)
			case 3:
				if operand.IsZero() {
					continue
				}
				next, stepOK = cur.Quo(operand)
				refNext.Quo(ref, operandBig)
			case 4:
				next, stepOK = cur.MulInt(p)
				refNext.Mul(ref, new(big.Rat).SetInt64(p))
			case 5:
				if p == 0 {
					continue
				}
				next, stepOK = cur.DivInt(p)
				refNext.Quo(ref, new(big.Rat).SetInt64(p))
			}
			if stepOK {
				check(next, refNext)
				cur = next
				ref = refNext
				continue
			}
			// Overflow: the promotion path. The exact value lives on in the
			// reference; whenever it fits back into 64-bit words, FromRat
			// must round-trip it losslessly and the fast path resumes.
			if c64, fits := FromRat(refNext); fits {
				check(c64, refNext)
				cur = c64
				ref = refNext
				continue
			}
			// Genuinely out of range: restart the accumulator. (The
			// evaluator equivalent is a whole-state big.Rat re-evaluation.)
			cur = Zero64()
			ref = new(big.Rat)
		}
	})
}
