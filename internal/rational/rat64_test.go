package rational

import (
	"math"
	"math/big"
	"testing"
)

func mustMake64(t *testing.T, p, q int64) Rat64 {
	t.Helper()
	r, ok := Make64(p, q)
	if !ok {
		t.Fatalf("Make64(%d, %d) overflowed", p, q)
	}
	return r
}

func TestMake64Normalizes(t *testing.T) {
	cases := []struct {
		p, q             int64
		wantNum, wantDen int64
	}{
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{6, 3, 2, 1},
		{math.MaxInt64, math.MaxInt64, 1, 1},
	}
	for _, tc := range cases {
		r := mustMake64(t, tc.p, tc.q)
		if r.Num() != tc.wantNum || r.Den() != tc.wantDen {
			t.Errorf("Make64(%d, %d) = %v, want %d/%d", tc.p, tc.q, r, tc.wantNum, tc.wantDen)
		}
	}
	if _, ok := Make64(1, 0); ok {
		t.Error("Make64(1, 0) accepted a zero denominator")
	}
	if _, ok := Make64(math.MinInt64, 1); ok {
		t.Error("Make64(MinInt64, 1) did not report overflow")
	}
	if r, ok := Make64(math.MinInt64, 2); !ok || r.Num() != -(1<<62) || r.Den() != 1 {
		t.Errorf("Make64(MinInt64, 2) = %v, %v; want -2^62", r, ok)
	}
}

func TestRat64Arithmetic(t *testing.T) {
	a := mustMake64(t, 1, 3)
	b := mustMake64(t, 1, 6)
	check := func(got Rat64, ok bool, p, q int64, op string) {
		t.Helper()
		if !ok {
			t.Fatalf("%s overflowed", op)
		}
		if got.Num() != p || got.Den() != q {
			t.Errorf("%s = %v, want %d/%d", op, got, p, q)
		}
	}
	sum, ok := a.Add(b)
	check(sum, ok, 1, 2, "1/3 + 1/6")
	diff, ok := a.Sub(b)
	check(diff, ok, 1, 6, "1/3 - 1/6")
	prod, ok := a.Mul(b)
	check(prod, ok, 1, 18, "1/3 * 1/6")
	quo, ok := a.Quo(b)
	check(quo, ok, 2, 1, "1/3 / 1/6")
	mi, ok := a.MulInt(6)
	check(mi, ok, 2, 1, "1/3 * 6")
	di, ok := a.DivInt(2)
	check(di, ok, 1, 6, "1/3 / 2")
	neg, ok := Zero64().Sub(a)
	check(neg, ok, -1, 3, "0 - 1/3")
}

func TestRat64Cmp(t *testing.T) {
	vals := []Rat64{
		mustMake64(t, -2, 1), mustMake64(t, -1, 3), Zero64(),
		mustMake64(t, 1, 4), mustMake64(t, 1, 3), Int64(1),
		mustMake64(t, math.MaxInt64, math.MaxInt64-1),
		Int64(math.MaxInt64),
	}
	for i, a := range vals {
		for j, b := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := a.Cmp(b); got != want {
				t.Errorf("Cmp(%v, %v) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestRat64CmpMatchesBig exercises the 128-bit cross multiplication near
// the int64 boundary, where a naive 64-bit product would wrap.
func TestRat64CmpMatchesBig(t *testing.T) {
	huge := []int64{math.MaxInt64, math.MaxInt64 - 1, (1 << 62) + 3, 3, 1}
	for _, p1 := range huge {
		for _, q1 := range huge {
			for _, p2 := range huge {
				for _, q2 := range huge {
					a := mustMake64(t, p1, q1)
					b := mustMake64(t, p2, q2)
					if got, want := a.Cmp(b), a.Rat().Cmp(b.Rat()); got != want {
						t.Errorf("Cmp(%v, %v) = %d, big says %d", a, b, got, want)
					}
				}
			}
		}
	}
}

func TestRat64Overflow(t *testing.T) {
	big1 := Int64(math.MaxInt64)
	if _, ok := big1.Add(Int64(1)); ok {
		t.Error("MaxInt64 + 1 did not report overflow")
	}
	if _, ok := big1.Mul(Int64(2)); ok {
		t.Error("MaxInt64 * 2 did not report overflow")
	}
	p1 := mustMake64(t, 1, math.MaxInt64)
	if _, ok := p1.DivInt(2); ok {
		t.Error("denominator overflow not reported by DivInt")
	}
	if _, ok := p1.Mul(p1); ok {
		t.Error("denominator overflow not reported by Mul")
	}
	// Overflow must not corrupt the operands (value semantics).
	if big1.Num() != math.MaxInt64 || big1.Den() != 1 {
		t.Errorf("operand mutated: %v", big1)
	}
}

func TestRat64QuoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quo by zero did not panic")
		}
	}()
	Int64(1).Quo(Zero64())
}

func TestRat64RatRoundTrip(t *testing.T) {
	for _, r := range []Rat64{Zero64(), Int64(-7), mustMake64(t, 22, 7), mustMake64(t, -3, 8)} {
		back, ok := FromRat(r.Rat())
		if !ok || back != r {
			t.Errorf("round trip of %v: %v, %v", r, back, ok)
		}
	}
	wide := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(3))
	if _, ok := FromRat(wide); ok {
		t.Error("FromRat accepted a 80-bit numerator")
	}
}

func TestBigCmpFastPath(t *testing.T) {
	wide := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(3))
	cases := [][2]*big.Rat{
		{R(1, 3), R(1, 2)},
		{R(-1, 3), R(1, 2)},
		{R(5, 7), R(5, 7)},
		{wide, R(1, 2)},
		{R(1, 2), wide},
		{wide, wide},
	}
	for _, c := range cases {
		if got, want := Cmp(c[0], c[1]), c[0].Cmp(c[1]); got != want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c[0], c[1], got, want)
		}
	}
}
