package rational

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"slices"
)

// Rat64 is an exact rational with a single machine word per component:
// num/den with den ≥ 1 and gcd(|num|, den) = 1. It is the small-word
// kernel of the allocation engine: every quantity the paper's
// constructions produce (unit capacities, rates like 1/(k+1), 1/n,
// (n-1)/2·(1+1/(k+1))) fits comfortably, so the water-filling hot path
// runs on Rat64 values and falls back to *big.Rat only when an
// operation reports overflow.
//
// Arithmetic methods return (result, ok). ok = false means the exact
// result may not fit in an int64 fraction; the receiver and arguments
// are unchanged and the caller must redo the computation on *big.Rat
// (every Rat64 converts losslessly via Rat). Overflow detection is
// conservative: an operation may report false even when the reduced
// result would fit, which costs a promotion but never an inexact value.
//
// The zero value is NOT a valid Rat64 (its denominator is 0); use
// Zero64, Int64, Make64 or FromRat.
type Rat64 struct {
	num, den int64
}

// Zero64 returns the Rat64 zero, 0/1.
func Zero64() Rat64 { return Rat64{0, 1} }

// Int64 returns the Rat64 v/1.
func Int64(v int64) Rat64 { return Rat64{v, 1} }

// Make64 returns the normalized rational p/q. ok is false when q is
// zero or the reduced fraction does not fit (only possible for
// magnitudes involving math.MinInt64).
func Make64(p, q int64) (Rat64, bool) {
	if q == 0 {
		return Rat64{}, false
	}
	neg := (p < 0) != (q < 0)
	return norm64(neg, absU64(p), absU64(q))
}

// FromRat returns the Rat64 image of x, with ok = false when either
// component of x exceeds an int64. The conversion is exact when ok.
func FromRat(x *big.Rat) (Rat64, bool) {
	if !x.Num().IsInt64() || !x.Denom().IsInt64() {
		return Rat64{}, false
	}
	// big.Rat is always normalized with positive denominator, so the
	// components can be adopted directly.
	return Rat64{x.Num().Int64(), x.Denom().Int64()}, true
}

// Rat returns the *big.Rat image of a. The conversion is always exact.
func (a Rat64) Rat() *big.Rat { return big.NewRat(a.num, a.den) }

// Num returns the numerator of a (negative iff a is negative).
func (a Rat64) Num() int64 { return a.num }

// Den returns the denominator of a (always ≥ 1 for valid values).
func (a Rat64) Den() int64 { return a.den }

// Sign returns -1, 0 or +1 according to the sign of a.
func (a Rat64) Sign() int {
	switch {
	case a.num < 0:
		return -1
	case a.num > 0:
		return 1
	default:
		return 0
	}
}

// IsZero reports whether a equals 0.
func (a Rat64) IsZero() bool { return a.num == 0 }

// String formats a in lowest terms, using plain integers where possible.
func (a Rat64) String() string {
	if a.den == 1 {
		return fmt.Sprintf("%d", a.num)
	}
	return fmt.Sprintf("%d/%d", a.num, a.den)
}

// Cmp compares a and b, returning -1, 0 or +1. Unlike the arithmetic
// methods it can never overflow: the cross products are compared in
// 128 bits.
func (a Rat64) Cmp(b Rat64) int {
	sa, sb := a.Sign(), b.Sign()
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	case sa == 0:
		return 0
	}
	// Same non-zero sign: compare |a.num|·b.den against |b.num|·a.den.
	h1, l1 := bits.Mul64(absU64(a.num), uint64(b.den))
	h2, l2 := bits.Mul64(absU64(b.num), uint64(a.den))
	c := cmpU128(h1, l1, h2, l2)
	if sa < 0 {
		c = -c
	}
	return c
}

// CmpRat compares a against the *big.Rat b exactly, allocating nothing
// when both components of b fit in int64 — the overwhelmingly common
// case for the rates this library produces. The block search path uses
// it to screen Rat64 candidate lanes against a *big.Rat incumbent
// without materializing the candidate.
func (a Rat64) CmpRat(b *big.Rat) int {
	bn, bd := b.Num(), b.Denom()
	if bn.IsInt64() && bd.IsInt64() {
		// big.Rat is always normalized with positive denominator, so the
		// components form a valid Rat64 directly.
		return a.Cmp(Rat64{bn.Int64(), bd.Int64()})
	}
	return a.Rat().Cmp(b)
}

// Sort64 sorts v ascending in place, allocating nothing. Equal values
// are interchangeable (Rat64 is normalized, so equality is structural),
// so the instability of the underlying sort is unobservable.
func Sort64(v []Rat64) {
	slices.SortFunc(v, Rat64.Cmp)
}

// Add returns a+b with ok = false on overflow.
func (a Rat64) Add(b Rat64) (Rat64, bool) { return a.addSub(b, false) }

// Sub returns a-b with ok = false on overflow.
func (a Rat64) Sub(b Rat64) (Rat64, bool) { return a.addSub(b, true) }

func (a Rat64) addSub(b Rat64, sub bool) (Rat64, bool) {
	bn := b.num
	if sub {
		if bn == math.MinInt64 {
			return Rat64{}, false
		}
		bn = -bn
	}
	// a.num/a.den + bn/b.den with the shared factor of the denominators
	// divided out first (Knuth 4.5.1): with g = gcd(a.den, b.den), the
	// sum is (a.num·(b.den/g) + bn·(a.den/g)) / (a.den·(b.den/g)).
	g := int64(gcd64(uint64(a.den), uint64(b.den)))
	db := b.den / g
	x, ok := mulI64(a.num, db)
	if !ok {
		return Rat64{}, false
	}
	y, ok := mulI64(bn, a.den/g)
	if !ok {
		return Rat64{}, false
	}
	p, ok := addI64(x, y)
	if !ok {
		return Rat64{}, false
	}
	q, ok := mulI64(a.den, db)
	if !ok {
		return Rat64{}, false
	}
	return norm64(p < 0, absU64(p), absU64(q))
}

// Mul returns a·b with ok = false on overflow.
func (a Rat64) Mul(b Rat64) (Rat64, bool) {
	// Cross-reduce before multiplying: since a and b are themselves in
	// lowest terms, the result of the reduced products is too.
	g1 := int64(gcd64(absU64(a.num), uint64(b.den)))
	g2 := int64(gcd64(absU64(b.num), uint64(a.den)))
	p, ok := mulI64(a.num/g1, b.num/g2)
	if !ok {
		return Rat64{}, false
	}
	q, ok := mulI64(a.den/g2, b.den/g1)
	if !ok {
		return Rat64{}, false
	}
	if p == math.MinInt64 {
		return Rat64{}, false
	}
	return Rat64{p, q}, true
}

// Quo returns a/b with ok = false on overflow. It panics if b is zero,
// matching big.Rat.Quo.
func (a Rat64) Quo(b Rat64) (Rat64, bool) {
	if b.num == 0 {
		panic("rational: division by zero Rat64")
	}
	if b.num == math.MinInt64 {
		return Rat64{}, false
	}
	inv := Rat64{b.den, b.num}
	if inv.den < 0 {
		inv.num, inv.den = -inv.num, -inv.den
	}
	return a.Mul(inv)
}

// MulInt returns a·k with ok = false on overflow.
func (a Rat64) MulInt(k int64) (Rat64, bool) {
	g := int64(gcd64(absU64(k), uint64(a.den)))
	p, ok := mulI64(a.num, k/g)
	if !ok || p == math.MinInt64 {
		return Rat64{}, false
	}
	return Rat64{p, a.den / g}, true
}

// DivInt returns a/k with ok = false on overflow. It panics if k is
// zero. It is the water-filling step remaining/active, so it avoids the
// general Quo path: the denominator product is the only thing that can
// grow.
func (a Rat64) DivInt(k int64) (Rat64, bool) {
	if k == 0 {
		panic("rational: division of Rat64 by zero integer")
	}
	if k == math.MinInt64 || a.num == math.MinInt64 {
		return Rat64{}, false
	}
	num := a.num
	if k < 0 {
		num, k = -num, -k
	}
	g := int64(gcd64(absU64(num), uint64(k)))
	q, ok := mulI64(a.den, k/g)
	if !ok {
		return Rat64{}, false
	}
	return Rat64{num / g, q}, true
}

// norm64 builds the normalized Rat64 with the given sign and component
// magnitudes. uq must be non-zero.
func norm64(neg bool, up, uq uint64) (Rat64, bool) {
	if up == 0 {
		return Rat64{0, 1}, true
	}
	g := gcd64(up, uq)
	up, uq = up/g, uq/g
	if up > math.MaxInt64 || uq > math.MaxInt64 {
		return Rat64{}, false
	}
	n := int64(up)
	if neg {
		n = -n
	}
	return Rat64{n, int64(uq)}, true
}

// gcd64 returns the greatest common divisor of a and b, with
// gcd64(0, b) = b and gcd64(a, 0) = a.
func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// absU64 returns |v| as a uint64 (exact even for math.MinInt64).
func absU64(v int64) uint64 {
	if v < 0 {
		return -uint64(v)
	}
	return uint64(v)
}

// addI64 returns a+b with ok = false on int64 overflow.
func addI64(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, false
	}
	return c, true
}

// mulI64 returns a·b with ok = false on int64 overflow.
func mulI64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(absU64(a), absU64(b))
	if hi != 0 {
		return 0, false
	}
	limit := uint64(math.MaxInt64)
	if neg {
		limit++
	}
	if lo > limit {
		return 0, false
	}
	if neg {
		return -int64(lo), true
	}
	return int64(lo), true
}

// cmpU128 compares the 128-bit values (h1,l1) and (h2,l2).
func cmpU128(h1, l1, h2, l2 uint64) int {
	switch {
	case h1 < h2:
		return -1
	case h1 > h2:
		return 1
	case l1 < l2:
		return -1
	case l1 > l2:
		return 1
	default:
		return 0
	}
}

// Cmp compares two *big.Rat values exactly, taking a single-word fast
// path when all four components fit in int64 (the overwhelmingly common
// case for the rates this library produces: the cross products are
// compared in 128 bits with no allocation). It is a drop-in for
// a.Cmp(b).
func Cmp(a, b *big.Rat) int {
	an, ad := a.Num(), a.Denom()
	bn, bd := b.Num(), b.Denom()
	if an.IsInt64() && ad.IsInt64() && bn.IsInt64() && bd.IsInt64() {
		return Rat64{an.Int64(), ad.Int64()}.Cmp(Rat64{bn.Int64(), bd.Int64()})
	}
	return a.Cmp(b)
}
