package rational

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestRConstructors(t *testing.T) {
	tests := []struct {
		name string
		got  *big.Rat
		want *big.Rat
	}{
		{"R reduces", R(2, 6), big.NewRat(1, 3)},
		{"Int", Int(7), big.NewRat(7, 1)},
		{"Zero", Zero(), big.NewRat(0, 1)},
		{"One", One(), big.NewRat(1, 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got.Cmp(tt.want) != 0 {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestArithmeticDoesNotMutate(t *testing.T) {
	a, b := R(1, 3), R(1, 6)
	sum := Add(a, b)
	if got, want := sum, R(1, 2); got.Cmp(want) != 0 {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if a.Cmp(R(1, 3)) != 0 || b.Cmp(R(1, 6)) != 0 {
		t.Errorf("operands mutated: a=%v b=%v", a, b)
	}
	if got, want := Sub(a, b), R(1, 6); got.Cmp(want) != 0 {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := Mul(a, b), R(1, 18); got.Cmp(want) != 0 {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if got, want := Div(a, b), Int(2); got.Cmp(want) != 0 {
		t.Errorf("Div = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	a, b := R(1, 3), R(1, 2)
	if got := Min(a, b); got.Cmp(a) != 0 {
		t.Errorf("Min = %v, want %v", got, a)
	}
	if got := Max(a, b); got.Cmp(b) != 0 {
		t.Errorf("Max = %v, want %v", got, b)
	}
	// Min/Max must return copies, not aliases.
	m := Min(a, b)
	m.Add(m, One())
	if a.Cmp(R(1, 3)) != 0 {
		t.Error("Min returned an alias of its argument")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		in   *big.Rat
		want string
	}{
		{Int(1), "1"},
		{R(2, 3), "2/3"},
		{R(4, 2), "2"},
		{Zero(), "0"},
		{R(-1, 3), "-1/3"},
	}
	for _, tt := range tests {
		if got := String(tt.in); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestJoin(t *testing.T) {
	v := Vec{R(1, 3), Int(1), R(2, 3)}
	if got, want := Join(v), "[1/3, 1, 2/3]"; got != want {
		t.Errorf("Join = %q, want %q", got, want)
	}
	if got, want := Join(nil), "[]"; got != want {
		t.Errorf("Join(nil) = %q, want %q", got, want)
	}
}

func TestIsZeroAndFloat(t *testing.T) {
	if !IsZero(Zero()) {
		t.Error("IsZero(0) = false")
	}
	if IsZero(R(1, 10)) {
		t.Error("IsZero(1/10) = true")
	}
	if got := Float(R(1, 2)); got != 0.5 {
		t.Errorf("Float(1/2) = %v", got)
	}
}

func TestVecOf(t *testing.T) {
	v := VecOf(1, 3, 2, 3, 1, 1)
	want := Vec{R(1, 3), R(2, 3), Int(1)}
	if !v.Equal(want) {
		t.Errorf("VecOf = %v, want %v", v, want)
	}
}

func TestVecOfPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	VecOf(1, 2, 3)
}

func TestVecSumMin(t *testing.T) {
	v := VecOf(1, 3, 1, 3, 2, 3, 2, 3, 1, 1)
	if got, want := v.Sum(), Int(3); got.Cmp(want) != 0 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if got, want := v.MinElem(), R(1, 3); got.Cmp(want) != 0 {
		t.Errorf("MinElem = %v, want %v", got, want)
	}
}

func TestVecSortedCopy(t *testing.T) {
	v := VecOf(1, 1, 1, 3, 2, 3)
	sorted := v.SortedCopy()
	want := VecOf(1, 3, 2, 3, 1, 1)
	if !sorted.Equal(want) {
		t.Errorf("SortedCopy = %v, want %v", sorted, want)
	}
	// Original must be untouched.
	if !v.Equal(VecOf(1, 1, 1, 3, 2, 3)) {
		t.Errorf("SortedCopy mutated its receiver: %v", v)
	}
}

func TestVecCopyIsDeep(t *testing.T) {
	v := VecOf(1, 2)
	w := v.Copy()
	w[0].Add(w[0], One())
	if v[0].Cmp(R(1, 2)) != 0 {
		t.Error("Copy is shallow")
	}
}

func TestLexCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Vec
		want int
	}{
		{"equal", VecOf(1, 3, 2, 3), VecOf(1, 3, 2, 3), 0},
		{"first element wins", VecOf(1, 2, 0, 1), VecOf(1, 3, 9, 1), 1},
		{"tie broken later", VecOf(1, 3, 1, 3), VecOf(1, 3, 1, 2), -1},
		{"prefix shorter is smaller", VecOf(1, 3), VecOf(1, 3, 1, 3), -1},
		{"prefix longer is larger", VecOf(1, 3, 1, 3), VecOf(1, 3), 1},
		{"empty vs empty", Vec{}, Vec{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LexCompare(tt.a, tt.b); got != tt.want {
				t.Errorf("LexCompare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// TestLexCompareSortedPaperVectors checks the ordering asserted at the end
// of Example 2.3: macro ≻ routing A ≻ routing B, where the comparison is on
// sorted vectors.
func TestLexCompareSortedPaperVectors(t *testing.T) {
	macro := VecOf(1, 3, 1, 3, 1, 3, 2, 3, 2, 3, 1, 1)
	routingA := VecOf(1, 3, 1, 3, 1, 3, 2, 3, 2, 3, 2, 3)
	routingB := VecOf(1, 3, 1, 3, 1, 3, 1, 3, 2, 3, 1, 1)
	if LexCompareSorted(macro, routingA) <= 0 {
		t.Error("macro should dominate routing A")
	}
	if LexCompareSorted(routingA, routingB) <= 0 {
		t.Error("routing A should dominate routing B")
	}
	if LexCompareSorted(macro, routingB) <= 0 {
		t.Error("macro should dominate routing B")
	}
}

// vecFromInts builds a small random vector from quick-generated uint8
// numerators over a fixed denominator, keeping values small and exact.
func vecFromInts(ns []uint8) Vec {
	v := make(Vec, len(ns))
	for i, n := range ns {
		v[i] = R(int64(n), 12)
	}
	return v
}

func TestLexCompareIsAntisymmetricAndReflexive(t *testing.T) {
	f := func(as, bs []uint8) bool {
		a, b := vecFromInts(as), vecFromInts(bs)
		if LexCompare(a, a) != 0 || LexCompare(b, b) != 0 {
			return false
		}
		return LexCompare(a, b) == -LexCompare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLexCompareIsTransitive(t *testing.T) {
	f := func(as, bs, cs []uint8) bool {
		a, b, c := vecFromInts(as), vecFromInts(bs), vecFromInts(cs)
		// Order the three vectors pairwise and check transitivity of ≤.
		le := func(x, y Vec) bool { return LexCompare(x, y) <= 0 }
		if le(a, b) && le(b, c) && !le(a, c) {
			return false
		}
		if le(c, b) && le(b, a) && !le(c, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortedCopyIsSortedAndPermutation(t *testing.T) {
	f := func(as []uint8) bool {
		v := vecFromInts(as)
		s := v.SortedCopy()
		if len(s) != len(v) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i-1].Cmp(s[i]) > 0 {
				return false
			}
		}
		// Same multiset: sums and min match (cheap permutation check
		// for the small value domain used here), plus sorting twice is
		// idempotent.
		if s.Sum().Cmp(v.Sum()) != 0 {
			return false
		}
		return s.SortedCopy().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	a := R(1, 3)
	b := Copy(a)
	b.Add(b, One())
	if a.Cmp(R(1, 3)) != 0 {
		t.Error("Copy aliased its argument")
	}
}

func TestMinMaxBothOrders(t *testing.T) {
	a, b := R(2, 3), R(1, 3)
	if Min(a, b).Cmp(b) != 0 || Min(b, a).Cmp(b) != 0 {
		t.Error("Min wrong for reversed arguments")
	}
	if Max(a, b).Cmp(a) != 0 || Max(b, a).Cmp(a) != 0 {
		t.Error("Max wrong for reversed arguments")
	}
	if Min(a, a).Cmp(a) != 0 || Max(a, a).Cmp(a) != 0 {
		t.Error("Min/Max wrong for equal arguments")
	}
}

func TestNewVec(t *testing.T) {
	v := NewVec(3)
	if len(v) != 3 {
		t.Fatalf("len = %d", len(v))
	}
	for i, x := range v {
		if x.Sign() != 0 {
			t.Errorf("element %d = %v, want 0", i, x)
		}
	}
	// Elements must be distinct values, not shared pointers.
	v[0].Add(v[0], One())
	if v[1].Sign() != 0 {
		t.Error("NewVec elements share storage")
	}
}

func TestVecStringAndFloats(t *testing.T) {
	v := VecOf(1, 2, 1, 1)
	if got := v.String(); got != "[1/2, 1]" {
		t.Errorf("String = %q", got)
	}
	fs := v.Floats()
	if len(fs) != 2 || fs[0] != 0.5 || fs[1] != 1 {
		t.Errorf("Floats = %v", fs)
	}
}

func TestVecEqualMismatches(t *testing.T) {
	if VecOf(1, 2).Equal(VecOf(1, 2, 1, 2)) {
		t.Error("length mismatch reported equal")
	}
	if VecOf(1, 2).Equal(VecOf(1, 3)) {
		t.Error("value mismatch reported equal")
	}
}

func TestVecMinElemEmptyPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MinElem of empty Vec did not panic")
		}
		if msg, ok := r.(string); !ok || msg != "rational: MinElem of empty Vec" {
			t.Errorf("panic = %v, want explicit MinElem message", r)
		}
	}()
	Vec{}.MinElem()
}

func TestVecMinElemLaterMinimum(t *testing.T) {
	v := VecOf(1, 1, 1, 3, 1, 2)
	if got := v.MinElem(); got.Cmp(R(1, 3)) != 0 {
		t.Errorf("MinElem = %v, want 1/3", got)
	}
	// Returned value is a copy.
	m := v.MinElem()
	m.Add(m, One())
	if v[1].Cmp(R(1, 3)) != 0 {
		t.Error("MinElem aliased an element")
	}
}
