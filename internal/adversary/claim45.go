package adversary

import (
	"fmt"

	"closnet/internal/rational"
)

// VerifyClaim45Arithmetic machine-checks the counting core of Claim 4.5
// for a given n: the equation x/(n+1) + y/n = 1 with x ∈ [0, n+1],
// y ∈ [0, n] admits exactly the integer solutions (0, n) and (n+1, 0),
// and two type-2 bundles sharing a middle switch would overload a link
// entering O_{n+1} (2·(1 − 1/n) > 1 for n ≥ 3).
//
// Together with the feasible-routing enumeration of package search
// (which checks the claim's conditions on concrete feasible routings for
// small n), this extends the Theorem 4.3 certification to arbitrary n:
// the claim's proof is a finite arithmetic statement per n, checked
// exactly.
func VerifyClaim45Arithmetic(n int) error {
	if n < 3 {
		return fmt.Errorf("adversary: Claim 4.5 needs n ≥ 3 (got %d)", n)
	}
	one := rational.One()
	for y := 0; y <= n; y++ {
		// x = (n - y)(n + 1) / n must be integral and in [0, n+1]
		// exactly when (y, x) ∈ {(n, 0), (n+1 case y=0)}.
		num := rational.Mul(rational.Int(int64(n-y)), rational.Int(int64(n+1)))
		x := rational.Div(num, rational.Int(int64(n)))
		integral := x.IsInt()
		inRange := x.Sign() >= 0 && x.Cmp(rational.Int(int64(n+1))) <= 0
		isSolution := integral && inRange
		wantSolution := y == 0 || y == n
		if isSolution != wantSolution {
			return fmt.Errorf("adversary: Claim 4.5 equation: y=%d gives x=%s (solution=%v, want %v)",
				y, rational.String(x), isSolution, wantSolution)
		}
		if isSolution {
			// Check the full equation x/(n+1) + y/n = 1.
			lhs := rational.Add(
				rational.Div(x, rational.Int(int64(n+1))),
				rational.Div(rational.Int(int64(y)), rational.Int(int64(n))),
			)
			if lhs.Cmp(one) != 0 {
				return fmt.Errorf("adversary: Claim 4.5 equation does not balance at y=%d", y)
			}
		}
	}
	// Condition 2's capacity argument: two inputs' type-2.b bundles on
	// one middle load a link entering O_{n+1} with 2·(n-1)/n > 1.
	load := rational.Mul(rational.Int(2), rational.R(int64(n-1), int64(n)))
	if load.Cmp(one) <= 0 {
		return fmt.Errorf("adversary: Claim 4.5 capacity argument fails at n=%d (load %s ≤ 1)",
			n, rational.String(load))
	}
	return nil
}
