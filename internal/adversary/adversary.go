// Package adversary builds the adversarial flow collections used by the
// paper's examples and theorems, parameterized by network size n and
// multiplicity k, together with their posited allocations:
//
//   - Example23        — Figure 1 / Example 2.3 (C_2)
//   - Theorem34(n, k)  — Figure 2 / Example 3.3 generalized (MS_n): the
//     price-of-fairness family with T^MmF/T^MT → 1/2
//   - Theorem42(n)     — Figure 3 / Example 4.1 (C_n, n ≥ 3): macro-switch
//     max-min rates that no routing can replicate
//   - Theorem43(n)     — §4.2 (C_n, n ≥ 3): the starvation family where the
//     lex-max-min rate of the type-3 flow is 1/n of its macro rate
//   - Theorem54(n, k)  — Figure 4 / Example 5.3 generalized (C_n, odd n):
//     the Doom-Switch family where throughput-max-min fairness doubles
//     throughput while crushing type-2 rates
//
// Every instance carries the flow collection over both the Clos network
// and its macro-switch (parallel indexing), the paper's posited
// macro-switch max-min rates, and, where the paper exhibits one, a
// witness routing with its posited Clos max-min rates. Tests verify all
// posited values against the allocation engine.
package adversary

import (
	"fmt"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// FlowType labels flows with the paper's type taxonomy.
type FlowType int

// Flow types as named in the paper's constructions.
const (
	Type1 FlowType = iota + 1
	Type2a
	Type2b
	Type3
)

// String returns the paper's name for the type.
func (t FlowType) String() string {
	switch t {
	case Type1:
		return "type-1"
	case Type2a:
		return "type-2.a"
	case Type2b:
		return "type-2.b"
	case Type3:
		return "type-3"
	default:
		return fmt.Sprintf("FlowType(%d)", int(t))
	}
}

// Instance is an adversarial flow collection with its posited data.
type Instance struct {
	Name string
	N    int // network size (middle switches)
	K    int // multiplicity parameter, 0 if unused

	Clos  *topology.Clos
	Macro *topology.MacroSwitch

	// Flows over the Clos network and, with identical indexing, over the
	// macro-switch.
	Flows      core.Collection
	MacroFlows core.Collection
	Types      []FlowType

	// MacroRates is the posited max-min fair allocation in the
	// macro-switch.
	MacroRates rational.Vec

	// Witness is the paper's witness routing in the Clos network, if the
	// construction exhibits one, with its posited max-min fair rates.
	// ExactWitness reports whether WitnessRates is claimed exactly (for
	// Theorem54 the closed form holds only when 2(k+1) ≤ (n-1)k).
	Witness      core.MiddleAssignment
	WitnessRates rational.Vec
	ExactWitness bool
}

// FlowsOfType returns the indices of flows with the given type.
func (in *Instance) FlowsOfType(t FlowType) []int {
	var idx []int
	for i, ft := range in.Types {
		if ft == t {
			idx = append(idx, i)
		}
	}
	return idx
}

// builder accumulates parallel Clos/macro collections.
type builder struct {
	c     *topology.Clos
	ms    *topology.MacroSwitch
	inst  *Instance
	rates rational.Vec
}

func newBuilder(name string, n, k int) (*builder, error) {
	c, err := topology.NewClos(n)
	if err != nil {
		return nil, err
	}
	ms, err := topology.NewMacroSwitch(n)
	if err != nil {
		return nil, err
	}
	return &builder{
		c:  c,
		ms: ms,
		inst: &Instance{
			Name:  name,
			N:     n,
			K:     k,
			Clos:  c,
			Macro: ms,
		},
	}, nil
}

// add appends `count` flows s_si^sj -> t_di^dj with the given type and
// posited macro rate p/q.
func (b *builder) add(si, sj, di, dj int, t FlowType, count int, p, q int64) {
	in := b.inst
	for c := 0; c < count; c++ {
		in.Flows = append(in.Flows, core.Flow{Src: b.c.Source(si, sj), Dst: b.c.Dest(di, dj)})
		in.MacroFlows = append(in.MacroFlows, core.Flow{Src: b.ms.Source(si, sj), Dst: b.ms.Dest(di, dj)})
		in.Types = append(in.Types, t)
		b.rates = append(b.rates, rational.R(p, q))
	}
}

func (b *builder) finish() *Instance {
	b.inst.MacroRates = b.rates
	return b.inst
}

// Example23 builds the Figure 1 / Example 2.3 collection over C_2, with
// the paper's first routing (type-1 flow (s1.2, t2.1) via M1) as witness.
func Example23() (*Instance, error) {
	b, err := newBuilder("example-2.3", 2, 0)
	if err != nil {
		return nil, err
	}
	b.add(1, 2, 1, 2, Type1, 1, 1, 3)
	b.add(1, 2, 2, 1, Type1, 1, 1, 3)
	b.add(1, 2, 2, 2, Type1, 1, 1, 3)
	b.add(2, 1, 2, 1, Type2a, 1, 2, 3)
	b.add(2, 2, 2, 2, Type2a, 1, 2, 3)
	b.add(1, 1, 1, 1, Type3, 1, 1, 1)
	in := b.finish()
	in.Witness = core.MiddleAssignment{2, 1, 2, 1, 2, 1}
	in.WitnessRates = rational.VecOf(1, 3, 1, 3, 1, 3, 2, 3, 2, 3, 2, 3)
	in.ExactWitness = true
	return in, nil
}

// Theorem34 builds the price-of-fairness family of Theorem 3.4 in MS_n:
// two type-1 flows that a maximum-throughput allocation serves at rate 1,
// plus k parallel type-2 flows (s2.1 -> t1.1) that drag every max-min
// fair rate down to 1/(k+1). T^MT = 2 while T^MmF = 1 + 1/(k+1).
func Theorem34(n, k int) (*Instance, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("adversary: Theorem34 needs n ≥ 1, k ≥ 1 (got n=%d, k=%d)", n, k)
	}
	b, err := newBuilder(fmt.Sprintf("theorem-3.4(n=%d,k=%d)", n, k), n, k)
	if err != nil {
		return nil, err
	}
	d := int64(k + 1)
	b.add(1, 1, 1, 1, Type1, 1, 1, d)
	b.add(2, 1, 2, 1, Type1, 1, 1, d)
	b.add(2, 1, 1, 1, Type2a, k, 1, d)
	return b.finish(), nil
}

// Theorem42 builds the replication-impossibility family of Theorem 4.2 /
// Example 4.1 over C_n (n ≥ 3). The macro-switch max-min rates (type-1
// and type-3 at 1, type-2 at 1/n) admit no feasible routing in C_n.
func Theorem42(n int) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("adversary: Theorem42 needs n ≥ 3 (got %d)", n)
	}
	return theorem4x(n, 1)
}

// Theorem43 builds the starvation family of Theorem 4.3 over C_n
// (n ≥ 3): Theorem42's collection with each type-1 flow replaced by n+1
// parallel copies. In the macro-switch the type-3 flow has rate 1; in any
// lex-max-min fair allocation of C_n it has rate 1/n (Lemma 4.6). The
// instance carries the witness routing of Lemma 4.6 Step 1.
func Theorem43(n int) (*Instance, error) {
	if n < 3 {
		return nil, fmt.Errorf("adversary: Theorem43 needs n ≥ 3 (got %d)", n)
	}
	return theorem4x(n, n+1)
}

// theorem4x builds the §4 constructions with `copies` parallel type-1
// flows per pair (1 for Theorem 4.2, n+1 for Theorem 4.3).
func theorem4x(n, copies int) (*Instance, error) {
	name := fmt.Sprintf("theorem-4.2(n=%d)", n)
	if copies > 1 {
		name = fmt.Sprintf("theorem-4.3(n=%d)", n)
	}
	b, err := newBuilder(name, n, 0)
	if err != nil {
		return nil, err
	}
	var witness core.MiddleAssignment
	// Type-1 flows: copies × (s_i^j, t_i^j), i ∈ [n], j ∈ [2, n], macro
	// rate 1/copies; Lemma 4.6 witness: middle (i+j-2 mod n) + 1.
	for i := 1; i <= n; i++ {
		for j := 2; j <= n; j++ {
			b.add(i, j, i, j, Type1, copies, 1, int64(copies))
			m := (i+j-2)%n + 1
			for c := 0; c < copies; c++ {
				witness = append(witness, m)
			}
		}
	}
	// Type-2.a flows: (s_i^1, t_i^1), i ∈ [n], macro rate 1/n; witness
	// middle M_i.
	for i := 1; i <= n; i++ {
		b.add(i, 1, i, 1, Type2a, 1, 1, int64(n))
		witness = append(witness, i)
	}
	// Type-2.b flows: (s_i^1, t_{n+1}^j), i ∈ [n], j ∈ [n-1], macro rate
	// 1/n; witness middle M_i.
	for i := 1; i <= n; i++ {
		for j := 1; j <= n-1; j++ {
			b.add(i, 1, n+1, j, Type2b, 1, 1, int64(n))
			witness = append(witness, i)
		}
	}
	// Type-3 flow: (s_{n+1}^n, t_{n+1}^n), macro rate 1; witness M_n.
	b.add(n+1, n, n+1, n, Type3, 1, 1, 1)
	witness = append(witness, n)

	in := b.finish()
	if copies > 1 {
		in.Witness = witness
		in.WitnessRates = make(rational.Vec, len(in.Flows))
		for fi, t := range in.Types {
			switch t {
			case Type1:
				in.WitnessRates[fi] = rational.R(1, int64(copies))
			default: // Type2a, Type2b, Type3 all sit at 1/n
				in.WitnessRates[fi] = rational.R(1, int64(n))
			}
		}
		in.ExactWitness = true
	}
	return in, nil
}

// Theorem54 builds the Doom-Switch family of Theorem 5.4 / Figure 4 over
// C_n (odd n ≥ 3): (n-1)/2 stacked copies of the Theorem 3.4 gadget, all
// re-indexed onto input switch I_1 and output switch O_1, with k type-2
// flows per gadget. The witness routing is the Doom-Switch output: type-1
// flow j on M_j, every type-2 flow on M_n.
//
// The closed-form witness rates — type-1 at (n-3)/(n-1), type-2 at
// 2/((n-1)k) — hold exactly iff 2(k+1) ≤ (n-1)k (ExactWitness); for
// smaller n the type-2 flows hit their server links first.
func Theorem54(n, k int) (*Instance, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("adversary: Theorem54 needs odd n ≥ 3 (got %d)", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("adversary: Theorem54 needs k ≥ 1 (got %d)", k)
	}
	b, err := newBuilder(fmt.Sprintf("theorem-5.4(n=%d,k=%d)", n, k), n, k)
	if err != nil {
		return nil, err
	}
	var witness core.MiddleAssignment
	d := int64(k + 1)
	// Type-1 flows: (s_1^j, t_1^j), j ∈ [n-1], macro rate 1/(k+1).
	for j := 1; j <= n-1; j++ {
		b.add(1, j, 1, j, Type1, 1, 1, d)
		witness = append(witness, j)
	}
	// Type-2 flows: k × (s_1^j, t_1^{j-1}) for even j, macro rate 1/(k+1).
	for j := 2; j <= n-1; j += 2 {
		b.add(1, j, 1, j-1, Type2a, k, 1, d)
		for c := 0; c < k; c++ {
			witness = append(witness, n)
		}
	}
	in := b.finish()
	in.Witness = witness
	in.ExactWitness = 2*(k+1) <= (n-1)*k
	if in.ExactWitness {
		in.WitnessRates = make(rational.Vec, len(in.Flows))
		for fi, t := range in.Types {
			if t == Type1 {
				in.WitnessRates[fi] = rational.R(int64(n-3), int64(n-1))
			} else {
				in.WitnessRates[fi] = rational.R(2, int64((n-1)*k))
			}
		}
	}
	return in, nil
}

// Example53 is the Figure 4 instance: Theorem54 with n = 7, k = 1.
func Example53() (*Instance, error) {
	in, err := Theorem54(7, 1)
	if err != nil {
		return nil, err
	}
	in.Name = "example-5.3"
	return in, nil
}
