package adversary

import (
	"testing"

	"closnet/internal/core"
	"closnet/internal/matching"
	"closnet/internal/rational"
)

// checkMacro verifies the instance's posited macro-switch max-min rates
// against the allocation engine and the bottleneck property.
func checkMacro(t *testing.T, in *Instance) {
	t.Helper()
	a, err := core.MacroMaxMinFair(in.Macro, in.MacroFlows)
	if err != nil {
		t.Fatalf("%s: macro waterfill: %v", in.Name, err)
	}
	if !a.Equal(in.MacroRates) {
		t.Fatalf("%s: macro rates = %v, want %v", in.Name, a, in.MacroRates)
	}
}

// checkWitness verifies the posited witness routing rates.
func checkWitness(t *testing.T, in *Instance) {
	t.Helper()
	if in.Witness == nil || !in.ExactWitness {
		return
	}
	a, err := core.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatalf("%s: witness waterfill: %v", in.Name, err)
	}
	if !a.Equal(in.WitnessRates) {
		t.Fatalf("%s: witness rates = %v, want %v", in.Name, a, in.WitnessRates)
	}
}

func TestExample23(t *testing.T) {
	in, err := Example23()
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Flows) != 6 || len(in.MacroFlows) != 6 {
		t.Fatalf("flow count = %d", len(in.Flows))
	}
	checkMacro(t, in)
	checkWitness(t, in)
	if got := in.FlowsOfType(Type1); len(got) != 3 {
		t.Errorf("type-1 flows = %v", got)
	}
	if got := in.FlowsOfType(Type3); len(got) != 1 {
		t.Errorf("type-3 flows = %v", got)
	}
}

func TestTheorem34(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1, 1}, {1, 5}, {2, 3}, {4, 8}} {
		in, err := Theorem34(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Flows) != tc.k+2 {
			t.Fatalf("n=%d k=%d: flow count %d, want %d", tc.n, tc.k, len(in.Flows), tc.k+2)
		}
		checkMacro(t, in)
		// T^MmF = 1 + 1/(k+1).
		wantT := rational.Add(rational.One(), rational.R(1, int64(tc.k+1)))
		if got := core.Throughput(in.MacroRates); got.Cmp(wantT) != 0 {
			t.Errorf("n=%d k=%d: T^MmF = %s, want %s", tc.n, tc.k, rational.String(got), rational.String(wantT))
		}
		// T^MT = 2 via maximum matching of G^MS (Lemma 3.2).
		g := matching.Graph{NumLeft: len(in.Flows), NumRight: len(in.Flows)}
		srcIdx := map[int]int{}
		dstIdx := map[int]int{}
		for _, f := range in.MacroFlows {
			if _, ok := srcIdx[int(f.Src)]; !ok {
				srcIdx[int(f.Src)] = len(srcIdx)
			}
			if _, ok := dstIdx[int(f.Dst)]; !ok {
				dstIdx[int(f.Dst)] = len(dstIdx)
			}
			g.Edges = append(g.Edges, matching.Edge{Left: srcIdx[int(f.Src)], Right: dstIdx[int(f.Dst)]})
		}
		m, err := matching.MaxMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 2 {
			t.Errorf("n=%d k=%d: T^MT = %d, want 2", tc.n, tc.k, len(m))
		}
	}
}

func TestTheorem34Errors(t *testing.T) {
	if _, err := Theorem34(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Theorem34(1, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestTheorem42(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		in, err := Theorem42(n)
		if err != nil {
			t.Fatal(err)
		}
		want := n*(n-1) + n + n*(n-1) + 1
		if len(in.Flows) != want {
			t.Fatalf("n=%d: flow count %d, want %d", n, len(in.Flows), want)
		}
		checkMacro(t, in)
		if in.Witness != nil {
			t.Error("Theorem42 should have no witness routing")
		}
	}
	if _, err := Theorem42(2); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestTheorem43(t *testing.T) {
	for _, n := range []int{3, 4, 6} {
		in, err := Theorem43(n)
		if err != nil {
			t.Fatal(err)
		}
		want := n*(n-1)*(n+1) + n + n*(n-1) + 1
		if len(in.Flows) != want {
			t.Fatalf("n=%d: flow count %d, want %d", n, len(in.Flows), want)
		}
		// Lemma 4.4: macro rates.
		checkMacro(t, in)
		// Lemma 4.6 step 1: the witness routing's max-min fair rates.
		checkWitness(t, in)
		// The starvation ratio: type-3 macro rate 1 vs witness rate 1/n.
		t3 := in.FlowsOfType(Type3)[0]
		if in.MacroRates[t3].Cmp(rational.One()) != 0 {
			t.Errorf("n=%d: type-3 macro rate %s", n, rational.String(in.MacroRates[t3]))
		}
		if in.WitnessRates[t3].Cmp(rational.R(1, int64(n))) != 0 {
			t.Errorf("n=%d: type-3 witness rate %s, want 1/%d", n, rational.String(in.WitnessRates[t3]), n)
		}
	}
	if _, err := Theorem43(2); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestTheorem54(t *testing.T) {
	for _, tc := range []struct {
		n, k  int
		exact bool
	}{
		{7, 1, true},  // Example 5.3: 2(k+1)=4 ≤ (n-1)k=6
		{5, 2, true},  // 6 ≤ 8
		{5, 1, true},  // 4 ≤ 4 (boundary)
		{3, 4, false}, // 10 > 8
		{15, 8, true}, // 18 ≤ 112
	} {
		in, err := Theorem54(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if in.ExactWitness != tc.exact {
			t.Fatalf("n=%d k=%d: ExactWitness = %v, want %v", tc.n, tc.k, in.ExactWitness, tc.exact)
		}
		wantFlows := (tc.n - 1) + (tc.n-1)/2*tc.k
		if len(in.Flows) != wantFlows {
			t.Fatalf("n=%d k=%d: flow count %d, want %d", tc.n, tc.k, len(in.Flows), wantFlows)
		}
		checkMacro(t, in)
		// T^MmF = (n-1)/2 · (1 + 1/(k+1)).
		wantT := rational.Mul(rational.R(int64(tc.n-1), 2),
			rational.Add(rational.One(), rational.R(1, int64(tc.k+1))))
		if got := core.Throughput(in.MacroRates); got.Cmp(wantT) != 0 {
			t.Errorf("n=%d k=%d: T^MmF = %s, want %s", tc.n, tc.k, rational.String(got), rational.String(wantT))
		}
		checkWitness(t, in)
		if in.ExactWitness {
			// Doom-Switch throughput: exactly n-2.
			if got := core.Throughput(in.WitnessRates); got.Cmp(rational.Int(int64(tc.n-2))) != 0 {
				t.Errorf("n=%d k=%d: witness throughput = %s, want %d", tc.n, tc.k, rational.String(got), tc.n-2)
			}
		}
	}
	if _, err := Theorem54(4, 1); err == nil {
		t.Error("even n accepted")
	}
	if _, err := Theorem54(3, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestTheorem54WitnessDominatesBoundEvenWhenInexact: for parameter
// choices where the closed form does not hold, the witness routing is
// still valid and its throughput still respects T ≤ 2·T^MmF.
func TestTheorem54WitnessInexactParameters(t *testing.T) {
	in, err := Theorem54(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if in.ExactWitness {
		t.Fatal("n=3,k=4 should not claim exact witness rates")
	}
	a, err := core.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatal(err)
	}
	bound := rational.Mul(rational.Int(2), core.Throughput(in.MacroRates))
	if core.Throughput(a).Cmp(bound) > 0 {
		t.Errorf("witness throughput %s exceeds 2·T^MmF %s",
			rational.String(core.Throughput(a)), rational.String(bound))
	}
}

func TestExample53(t *testing.T) {
	in, err := Example53()
	if err != nil {
		t.Fatal(err)
	}
	if in.N != 7 || in.K != 1 {
		t.Fatalf("n=%d k=%d", in.N, in.K)
	}
	if len(in.Flows) != 9 {
		t.Fatalf("flow count %d, want 9", len(in.Flows))
	}
	checkMacro(t, in)
	checkWitness(t, in)
	// Figure 4's numbers: macro throughput 9/2, doom throughput 5;
	// type-1 rates 1/2 → 2/3, type-2 rates 1/2 → 1/3.
	if got := core.Throughput(in.MacroRates); got.Cmp(rational.R(9, 2)) != 0 {
		t.Errorf("macro throughput = %s, want 9/2", rational.String(got))
	}
	if got := core.Throughput(in.WitnessRates); got.Cmp(rational.Int(5)) != 0 {
		t.Errorf("doom throughput = %s, want 5", rational.String(got))
	}
	for _, fi := range in.FlowsOfType(Type1) {
		if in.WitnessRates[fi].Cmp(rational.R(2, 3)) != 0 {
			t.Errorf("type-1 witness rate = %s, want 2/3", rational.String(in.WitnessRates[fi]))
		}
	}
	for _, fi := range in.FlowsOfType(Type2a) {
		if in.WitnessRates[fi].Cmp(rational.R(1, 3)) != 0 {
			t.Errorf("type-2 witness rate = %s, want 1/3", rational.String(in.WitnessRates[fi]))
		}
	}
}

func TestFlowTypeString(t *testing.T) {
	for _, ft := range []FlowType{Type1, Type2a, Type2b, Type3} {
		if ft.String() == "" {
			t.Errorf("type %d unnamed", ft)
		}
	}
	if FlowType(9).String() == "" {
		t.Error("unknown type unformatted")
	}
}

// TestTypesAlignWithRates sanity-checks internal consistency: flows of
// the same type within one instance have identical posited macro rates.
func TestTypesAlignWithRates(t *testing.T) {
	in, err := Theorem43(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ft := range []FlowType{Type1, Type2a, Type2b, Type3} {
		idx := in.FlowsOfType(ft)
		for _, fi := range idx[1:] {
			if in.MacroRates[fi].Cmp(in.MacroRates[idx[0]]) != 0 {
				t.Errorf("%v flows have differing macro rates", ft)
			}
		}
	}
}

// TestVerifyClaim45Arithmetic machine-checks the Claim 4.5 counting
// argument for a wide range of sizes — the step that extends the
// Theorem 4.3 certification beyond exhaustively checkable instances.
func TestVerifyClaim45Arithmetic(t *testing.T) {
	for n := 3; n <= 64; n++ {
		if err := VerifyClaim45Arithmetic(n); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	if err := VerifyClaim45Arithmetic(2); err == nil {
		t.Error("n=2 accepted")
	}
}
