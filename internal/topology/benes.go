package topology

import (
	"fmt"

	"closnet/internal/rational"
)

// Benes is the N-port Benes network B(N) for N a power of two, built
// recursively from 2×2 crossbar stages: an input stage and an output
// stage of N/2 switches around two interleaved B(N/2) subnetworks
// (2·log₂N − 1 stages in total), all links of unit capacity.
//
// A ToR is an input-stage (equivalently output-stage) 2×2 switch:
// NumToRs() = N/2 and ServersPerToR() = 2, with source s_i^j on port
// 2(i−1)+(j−1). Every (source, destination) pair has exactly N/2
// edge-disjoint-in-structure path choices, one per subnetwork pick at
// each of the log₂N − 1 recursion levels: choice m ∈ [N/2] selects
// upper/lower by bit (m−1)·2⁻ˡᵉᵛᵉˡ at each level, outermost level
// first. Choices are NOT interchangeable as a whole — only flipping
// the upper/lower pick at one level is an automorphism — so
// SymmetricChoices reports false and searches scan the full space.
//
// The base case B(2) is a single switch shared by the input and output
// roles; all larger sizes have distinct input and output stages.
type Benes struct {
	net    *Network
	ports  int // N
	root   *benesBlock
	source NodeID // sourceBase
	dest   NodeID // destBase
}

// benesBlock is one recursive subnetwork: either a single 2×2 switch
// (size 2) or input/output stages around an upper and a lower half.
// in[x/2] (out[x/2]) is the entry (exit) switch of block port x.
type benesBlock struct {
	size         int
	in, out      []NodeID
	upper, lower *benesBlock
}

// NewBenes builds the N-port Benes network. N must be a power of two
// and at least 2.
func NewBenes(n int) (*Benes, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("benes: N=%d, want a power of two >= 2", n)
	}
	b := &Benes{net: New(fmt.Sprintf("B_%d", n)), ports: n}
	root, err := b.build(n, "", 0)
	if err != nil {
		return nil, err
	}
	b.root = root
	one := rational.One()

	tors := n / 2
	b.source = NodeID(b.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= 2; j++ {
			b.net.AddNode(KindSource, fmt.Sprintf("s%d.%d", i, j))
		}
	}
	b.dest = NodeID(b.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= 2; j++ {
			b.net.AddNode(KindDestination, fmt.Sprintf("t%d.%d", i, j))
		}
	}
	for i := 1; i <= tors; i++ {
		for j := 1; j <= 2; j++ {
			if _, err := b.net.AddLink(b.Source(i, j), root.in[i-1], one); err != nil {
				return nil, err
			}
			if _, err := b.net.AddLink(root.out[i-1], b.Dest(i, j), one); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// build creates the switches and internal links of a size-`size` block.
// label encodes the recursion path ("u"/"l" per level) for unique node
// names; depth 0 is the outermost block, whose stages take the
// input/output switch kinds.
func (b *Benes) build(size int, label string, depth int) (*benesBlock, error) {
	if size == 2 {
		kind := KindMiddleSwitch
		if depth == 0 {
			kind = KindInputSwitch
		}
		sw := b.net.AddNode(kind, "X"+label)
		return &benesBlock{size: 2, in: []NodeID{sw}, out: []NodeID{sw}}, nil
	}
	inKind, outKind := KindOther, KindOther
	if depth == 0 {
		inKind, outKind = KindInputSwitch, KindOutputSwitch
	}
	blk := &benesBlock{size: size}
	for j := 0; j < size/2; j++ {
		blk.in = append(blk.in, b.net.AddNode(inKind, fmt.Sprintf("i%s.%d", label, j+1)))
	}
	for j := 0; j < size/2; j++ {
		blk.out = append(blk.out, b.net.AddNode(outKind, fmt.Sprintf("o%s.%d", label, j+1)))
	}
	upper, err := b.build(size/2, label+"u", depth+1)
	if err != nil {
		return nil, err
	}
	lower, err := b.build(size/2, label+"l", depth+1)
	if err != nil {
		return nil, err
	}
	blk.upper, blk.lower = upper, lower
	one := rational.One()
	// Input switch j feeds subnetwork port j of both halves; output
	// switch j drains subnetwork port j of both halves.
	for j := 0; j < size/2; j++ {
		for _, sub := range []*benesBlock{upper, lower} {
			if _, err := b.net.AddLink(blk.in[j], sub.in[j/2], one); err != nil {
				return nil, err
			}
			if _, err := b.net.AddLink(sub.out[j/2], blk.out[j], one); err != nil {
				return nil, err
			}
		}
	}
	return blk, nil
}

// path appends the internal links of the walk from block port a to
// block port z, with bit i of bits picking upper (0) or lower (1) at
// recursion level i.
func (blk *benesBlock) path(net *Network, a, z, bits int, p Path) (Path, error) {
	if blk.size == 2 {
		return p, nil
	}
	sub := blk.upper
	if bits&1 == 1 {
		sub = blk.lower
	}
	entry, exit := blk.in[a/2], blk.out[z/2]
	down, ok := net.LinkBetween(entry, sub.in[(a/2)/2])
	if !ok {
		return nil, fmt.Errorf("benes path: missing link %d->%d", entry, sub.in[(a/2)/2])
	}
	p = append(p, down)
	p, err := sub.path(net, a/2, z/2, bits>>1, p)
	if err != nil {
		return nil, err
	}
	up, ok := net.LinkBetween(sub.out[(z/2)/2], exit)
	if !ok {
		return nil, fmt.Errorf("benes path: missing link %d->%d", sub.out[(z/2)/2], exit)
	}
	return append(p, up), nil
}

// Network returns the underlying network.
func (b *Benes) Network() *Network { return b.net }

// Ports returns the port count N per side.
func (b *Benes) Ports() int { return b.ports }

// Size returns the number of path choices per server pair, N/2.
func (b *Benes) Size() int { return b.ports / 2 }

// NumToRs returns the number of input-stage switches, N/2.
func (b *Benes) NumToRs() int { return b.ports / 2 }

// ServersPerToR returns 2: each 2×2 stage switch homes two ports.
func (b *Benes) ServersPerToR() int { return 2 }

// SymmetricChoices reports false: permuting subnetwork picks across
// recursion levels is not an automorphism.
func (b *Benes) SymmetricChoices() bool { return false }

// Source returns server s_i^j on input switch i.
func (b *Benes) Source(i, j int) NodeID {
	b.check(i, b.NumToRs(), "source switch index")
	b.check(j, 2, "source server index")
	return b.source + NodeID((i-1)*2+(j-1))
}

// Dest returns server t_i^j on output switch i.
func (b *Benes) Dest(i, j int) NodeID {
	b.check(i, b.NumToRs(), "destination switch index")
	b.check(j, 2, "destination server index")
	return b.dest + NodeID((i-1)*2+(j-1))
}

func (b *Benes) check(i, max int, what string) {
	if i < 1 || i > max {
		panic(fmt.Sprintf("benes: %s index %d out of range [1,%d]", what, i, max))
	}
}

// InputOf returns the input-switch index homing source s.
func (b *Benes) InputOf(s NodeID) (int, bool) {
	if s < b.source || s >= b.source+NodeID(b.ports) {
		return 0, false
	}
	return int(s-b.source)/2 + 1, true
}

// OutputOf returns the output-switch index homing destination t.
func (b *Benes) OutputOf(t NodeID) (int, bool) {
	if t < b.dest || t >= b.dest+NodeID(b.ports) {
		return 0, false
	}
	return int(t-b.dest)/2 + 1, true
}

// SourceIndexOf returns the (i, j) indices such that s == Source(i, j).
func (b *Benes) SourceIndexOf(s NodeID) (int, int, bool) {
	if s < b.source || s >= b.source+NodeID(b.ports) {
		return 0, 0, false
	}
	off := int(s - b.source)
	return off/2 + 1, off%2 + 1, true
}

// DestIndexOf returns the (i, j) indices such that t == Dest(i, j).
func (b *Benes) DestIndexOf(t NodeID) (int, int, bool) {
	if t < b.dest || t >= b.dest+NodeID(b.ports) {
		return 0, 0, false
	}
	off := int(t - b.dest)
	return off/2 + 1, off%2 + 1, true
}

// Path returns the src→dst path selected by choice m ∈ [N/2].
func (b *Benes) Path(src, dst NodeID, m int) (Path, error) {
	si, sj, ok := b.SourceIndexOf(src)
	if !ok {
		return nil, fmt.Errorf("benes path: node %d is not a source", src)
	}
	di, dj, ok := b.DestIndexOf(dst)
	if !ok {
		return nil, fmt.Errorf("benes path: node %d is not a destination", dst)
	}
	if m < 1 || m > b.Size() {
		return nil, fmt.Errorf("benes path: choice %d out of range [1,%d]", m, b.Size())
	}
	a := (si-1)*2 + (sj - 1)
	z := (di-1)*2 + (dj - 1)
	first, ok := b.net.LinkBetween(src, b.root.in[a/2])
	if !ok {
		return nil, fmt.Errorf("benes path: missing source link for %d", src)
	}
	p := Path{first}
	p, err := b.root.path(b.net, a, z, m-1, p)
	if err != nil {
		return nil, err
	}
	last, ok := b.net.LinkBetween(b.root.out[z/2], dst)
	if !ok {
		return nil, fmt.Errorf("benes path: missing destination link for %d", dst)
	}
	return append(p, last), nil
}
