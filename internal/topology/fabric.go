package topology

import (
	"fmt"
	"strings"
)

// Fabric is the shape every multi-path data-center topology in this
// library presents to the allocation and search layers: ToR-homed
// source/destination servers on a general capacitated Network, with a
// fixed number of candidate paths ("choices") between every
// (source, destination) pair. *Clos, *FatTree and *Benes implement it.
//
// The contract mirrors the Clos conventions: ToRs, servers and choices
// are 1-based; Path(src, dst, m) is defined for every m ∈ [Size()] and
// every source/destination pair (families whose pairs have fewer
// distinct paths map surplus choice indices onto duplicates, so
// enumeration stays a plain base-Size() counter).
type Fabric interface {
	// Network returns the underlying capacitated network.
	Network() *Network
	// Size returns the number of path choices per (source, destination)
	// pair — the routing alphabet of search and codec assignments.
	Size() int
	// NumToRs returns the number of input (equivalently output) ToRs.
	NumToRs() int
	// ServersPerToR returns the servers homed on each ToR per side.
	ServersPerToR() int
	// Source returns server s_i^j, i ∈ [NumToRs()], j ∈ [ServersPerToR()].
	Source(i, j int) NodeID
	// Dest returns server t_i^j, i ∈ [NumToRs()], j ∈ [ServersPerToR()].
	Dest(i, j int) NodeID
	// InputOf returns the ToR index homing source s.
	InputOf(s NodeID) (int, bool)
	// OutputOf returns the ToR index homing destination t.
	OutputOf(t NodeID) (int, bool)
	// SourceIndexOf returns (i, j) with s == Source(i, j).
	SourceIndexOf(s NodeID) (int, int, bool)
	// DestIndexOf returns (i, j) with t == Dest(i, j).
	DestIndexOf(t NodeID) (int, int, bool)
	// Path returns the src→dst path selected by choice m ∈ [Size()].
	Path(src, dst NodeID, m int) (Path, error)
	// SymmetricChoices reports whether relabeling the Size() choices by
	// any permutation is an automorphism of the fabric (true for Clos,
	// whose choices are interchangeable middle switches). Only then may
	// search enumerate canonical orbit representatives; otherwise it
	// must scan the full choice space.
	SymmetricChoices() bool
}

// Compile-time interface checks for every family.
var (
	_ Fabric = (*Clos)(nil)
	_ Fabric = (*FatTree)(nil)
	_ Fabric = (*Benes)(nil)
)

// SymmetricChoices reports true: the choices of a Clos network are its
// middle switches, and permuting identical middles is an automorphism.
func (c *Clos) SymmetricChoices() bool { return true }

// Topology family names, as carried by codec.Scenario's "topology"
// field (empty means Clos for backward compatibility).
const (
	FamilyClos    = "clos"
	FamilyFatTree = "fattree"
	FamilyBenes   = "benes"
)

// FamilyNames returns the known topology family names.
func FamilyNames() []string {
	return []string{FamilyClos, FamilyFatTree, FamilyBenes}
}

// BuildFamily constructs the named topology family from a scenario
// shape (tors, servers, middles = path choices) and verifies the shape
// is consistent with the family's structure, so a decoded scenario
// can never disagree with the fabric it evaluates on. The empty family
// name means Clos.
func BuildFamily(family string, tors, servers, middles int) (Fabric, error) {
	switch family {
	case "", FamilyClos:
		return NewGeneralClos(tors, servers, middles)
	case FamilyFatTree:
		// ServersPerToR = k/2 determines k; the other two shape fields
		// must agree with the derived structure.
		ft, err := NewFatTree(2 * servers)
		if err != nil {
			return nil, err
		}
		if ft.NumToRs() != tors || ft.Size() != middles {
			return nil, fmt.Errorf("topology: fat-tree shape mismatch: k=%d has tors=%d choices=%d, scenario says tors=%d middles=%d",
				ft.K(), ft.NumToRs(), ft.Size(), tors, middles)
		}
		return ft, nil
	case FamilyBenes:
		// NumToRs = N/2 determines N; servers per ToR is always 2.
		b, err := NewBenes(2 * tors)
		if err != nil {
			return nil, err
		}
		if b.ServersPerToR() != servers || b.Size() != middles {
			return nil, fmt.Errorf("topology: Benes shape mismatch: N=%d has servers=%d choices=%d, scenario says servers=%d middles=%d",
				b.Ports(), b.ServersPerToR(), b.Size(), servers, middles)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("topology: unknown family %q (known: %s)",
			family, strings.Join(FamilyNames(), ", "))
	}
}

// NewOversubscribedClos builds a general Clos whose middle stage is
// thinned below full bisection by the oversubscription ratio
// sRatio:mRatio (server-facing : fabric-facing capacity per ToR):
// middles = servers × mRatio / sRatio. A 1:1 ratio reproduces
// NewGeneralClos(tors, servers, servers); 2:1 halves the middle stage.
// The ratio must divide evenly so the fabric stays integral.
func NewOversubscribedClos(tors, servers, sRatio, mRatio int) (*Clos, error) {
	if sRatio < 1 || mRatio < 1 {
		return nil, fmt.Errorf("clos: invalid oversubscription ratio %d:%d", sRatio, mRatio)
	}
	if servers*mRatio%sRatio != 0 {
		return nil, fmt.Errorf("clos: oversubscription ratio %d:%d does not divide %d servers into whole middles",
			sRatio, mRatio, servers)
	}
	middles := servers * mRatio / sRatio
	if middles < 1 {
		return nil, fmt.Errorf("clos: oversubscription ratio %d:%d leaves no middle switches for %d servers",
			sRatio, mRatio, servers)
	}
	return NewGeneralClos(tors, servers, middles)
}
