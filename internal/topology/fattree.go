package topology

import (
	"fmt"

	"closnet/internal/rational"
)

// FatTree is the k-pod fat-tree of Al-Fares et al.: k pods of k/2 edge
// and k/2 aggregation switches each, (k/2)² core switches, k/2 servers
// per edge switch, all links of unit capacity. Core c connects to the
// aggregation switch of group (c-1) div (k/2) in every pod.
//
// Like Clos, the fabric is directionally unfolded: each physical edge
// switch appears once as an input-role node (reached by sources) and
// once as an output-role node (reaching destinations), and every flow —
// including a flow between servers of the same edge switch — transits
// the aggregation layer. Aggregation and core switches are single nodes
// carrying both directions on separate directed links, so each physical
// full-duplex cable is one uplink plus one downlink of unit capacity.
//
// A ToR is an edge switch: NumToRs() = k·(k/2) per side and
// ServersPerToR() = k/2. A path choice m ∈ [(k/2)²] names core switch
// m; an inter-pod flow rides core m, while an intra-pod flow only uses
// m's aggregation group (c-1) div (k/2), so its (k/2)² choice indices
// collapse onto k/2 distinct paths. Choices are NOT interchangeable —
// relabeling cores across aggregation groups is no automorphism — so
// SymmetricChoices reports false and searches scan the full space.
type FatTree struct {
	net  *Network
	k    int // pods
	half int // k/2

	inEdgeBase  NodeID // k·half input-role edge switches
	outEdgeBase NodeID // k·half output-role edge switches
	aggBase     NodeID // k·half aggregation switches
	coreBase    NodeID // half² core switches
	sourceBase  NodeID
	destBase    NodeID
}

// NewFatTree builds the k-pod fat-tree. k must be even and at least 2.
func NewFatTree(k int) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fattree: k=%d, want even k >= 2", k)
	}
	half := k / 2
	ft := &FatTree{net: New(fmt.Sprintf("FT_%d", k)), k: k, half: half}
	one := rational.One()

	tors := k * half
	ft.inEdgeBase = NodeID(ft.net.NumNodes())
	for p := 1; p <= k; p++ {
		for e := 1; e <= half; e++ {
			ft.net.AddNode(KindInputSwitch, fmt.Sprintf("IE%d.%d", p, e))
		}
	}
	ft.outEdgeBase = NodeID(ft.net.NumNodes())
	for p := 1; p <= k; p++ {
		for e := 1; e <= half; e++ {
			ft.net.AddNode(KindOutputSwitch, fmt.Sprintf("OE%d.%d", p, e))
		}
	}
	ft.aggBase = NodeID(ft.net.NumNodes())
	for p := 1; p <= k; p++ {
		for a := 1; a <= half; a++ {
			ft.net.AddNode(KindOther, fmt.Sprintf("A%d.%d", p, a))
		}
	}
	ft.coreBase = NodeID(ft.net.NumNodes())
	for c := 1; c <= half*half; c++ {
		ft.net.AddNode(KindMiddleSwitch, fmt.Sprintf("C%d", c))
	}
	ft.sourceBase = NodeID(ft.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= half; j++ {
			ft.net.AddNode(KindSource, fmt.Sprintf("s%d.%d", i, j))
		}
	}
	ft.destBase = NodeID(ft.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= half; j++ {
			ft.net.AddNode(KindDestination, fmt.Sprintf("t%d.%d", i, j))
		}
	}

	// Server links: s_i^j -> IE_i and OE_i -> t_i^j.
	for i := 1; i <= tors; i++ {
		for j := 1; j <= half; j++ {
			if _, err := ft.net.AddLink(ft.Source(i, j), ft.inEdge(i), one); err != nil {
				return nil, err
			}
			if _, err := ft.net.AddLink(ft.outEdge(i), ft.Dest(i, j), one); err != nil {
				return nil, err
			}
		}
	}
	// Pod fabric: every edge switch to every aggregation switch of its
	// pod, in both roles.
	for p := 1; p <= k; p++ {
		for e := 1; e <= half; e++ {
			i := (p-1)*half + e
			for a := 1; a <= half; a++ {
				if _, err := ft.net.AddLink(ft.inEdge(i), ft.agg(p, a), one); err != nil {
					return nil, err
				}
				if _, err := ft.net.AddLink(ft.agg(p, a), ft.outEdge(i), one); err != nil {
					return nil, err
				}
			}
		}
	}
	// Core fabric: aggregation switch (p, a) to the half cores of group
	// a, in both directions.
	for p := 1; p <= k; p++ {
		for a := 1; a <= half; a++ {
			for x := 1; x <= half; x++ {
				c := (a-1)*half + x
				if _, err := ft.net.AddLink(ft.agg(p, a), ft.core(c), one); err != nil {
					return nil, err
				}
				if _, err := ft.net.AddLink(ft.core(c), ft.agg(p, a), one); err != nil {
					return nil, err
				}
			}
		}
	}
	return ft, nil
}

// Network returns the underlying network.
func (ft *FatTree) Network() *Network { return ft.net }

// K returns the pod count k.
func (ft *FatTree) K() int { return ft.k }

// Size returns the number of path choices per server pair, (k/2)².
func (ft *FatTree) Size() int { return ft.half * ft.half }

// NumToRs returns the number of edge switches per side, k·(k/2).
func (ft *FatTree) NumToRs() int { return ft.k * ft.half }

// ServersPerToR returns the servers per edge switch, k/2.
func (ft *FatTree) ServersPerToR() int { return ft.half }

// SymmetricChoices reports false: cores are interchangeable only
// within an aggregation group, not across the whole choice alphabet.
func (ft *FatTree) SymmetricChoices() bool { return false }

func (ft *FatTree) inEdge(i int) NodeID {
	ft.check(i, ft.NumToRs(), "edge switch")
	return ft.inEdgeBase + NodeID(i-1)
}

func (ft *FatTree) outEdge(i int) NodeID {
	ft.check(i, ft.NumToRs(), "edge switch")
	return ft.outEdgeBase + NodeID(i-1)
}

func (ft *FatTree) agg(p, a int) NodeID {
	ft.check(p, ft.k, "pod")
	ft.check(a, ft.half, "aggregation switch")
	return ft.aggBase + NodeID((p-1)*ft.half+(a-1))
}

func (ft *FatTree) core(c int) NodeID {
	ft.check(c, ft.half*ft.half, "core switch")
	return ft.coreBase + NodeID(c-1)
}

// podOf returns the pod of edge switch i.
func (ft *FatTree) podOf(i int) int { return (i-1)/ft.half + 1 }

// Source returns server s_i^j on edge switch i.
func (ft *FatTree) Source(i, j int) NodeID {
	ft.check(i, ft.NumToRs(), "source switch index")
	ft.check(j, ft.half, "source server index")
	return ft.sourceBase + NodeID((i-1)*ft.half+(j-1))
}

// Dest returns server t_i^j on edge switch i.
func (ft *FatTree) Dest(i, j int) NodeID {
	ft.check(i, ft.NumToRs(), "destination switch index")
	ft.check(j, ft.half, "destination server index")
	return ft.destBase + NodeID((i-1)*ft.half+(j-1))
}

func (ft *FatTree) check(i, max int, what string) {
	if i < 1 || i > max {
		panic(fmt.Sprintf("fattree: %s index %d out of range [1,%d]", what, i, max))
	}
}

func (ft *FatTree) numServers() int { return ft.NumToRs() * ft.half }

// InputOf returns the edge-switch index homing source s.
func (ft *FatTree) InputOf(s NodeID) (int, bool) {
	if s < ft.sourceBase || s >= ft.sourceBase+NodeID(ft.numServers()) {
		return 0, false
	}
	return int(s-ft.sourceBase)/ft.half + 1, true
}

// OutputOf returns the edge-switch index homing destination t.
func (ft *FatTree) OutputOf(t NodeID) (int, bool) {
	if t < ft.destBase || t >= ft.destBase+NodeID(ft.numServers()) {
		return 0, false
	}
	return int(t-ft.destBase)/ft.half + 1, true
}

// SourceIndexOf returns the (i, j) indices such that s == Source(i, j).
func (ft *FatTree) SourceIndexOf(s NodeID) (int, int, bool) {
	if s < ft.sourceBase || s >= ft.sourceBase+NodeID(ft.numServers()) {
		return 0, 0, false
	}
	off := int(s - ft.sourceBase)
	return off/ft.half + 1, off%ft.half + 1, true
}

// DestIndexOf returns the (i, j) indices such that t == Dest(i, j).
func (ft *FatTree) DestIndexOf(t NodeID) (int, int, bool) {
	if t < ft.destBase || t >= ft.destBase+NodeID(ft.numServers()) {
		return 0, 0, false
	}
	off := int(t - ft.destBase)
	return off/ft.half + 1, off%ft.half + 1, true
}

// Path returns the src→dst path selected by choice m ∈ [(k/2)²]. An
// inter-pod flow rides core m through the aggregation group of m on
// both sides; an intra-pod flow turns around at that aggregation group
// without touching a core.
func (ft *FatTree) Path(src, dst NodeID, m int) (Path, error) {
	i, ok := ft.InputOf(src)
	if !ok {
		return nil, fmt.Errorf("fattree path: node %d is not a source", src)
	}
	o, ok := ft.OutputOf(dst)
	if !ok {
		return nil, fmt.Errorf("fattree path: node %d is not a destination", dst)
	}
	if m < 1 || m > ft.Size() {
		return nil, fmt.Errorf("fattree path: choice %d out of range [1,%d]", m, ft.Size())
	}
	g := (m-1)/ft.half + 1
	pi, po := ft.podOf(i), ft.podOf(o)
	var hops [][2]NodeID
	if pi == po {
		hops = [][2]NodeID{
			{src, ft.inEdge(i)},
			{ft.inEdge(i), ft.agg(pi, g)},
			{ft.agg(pi, g), ft.outEdge(o)},
			{ft.outEdge(o), dst},
		}
	} else {
		hops = [][2]NodeID{
			{src, ft.inEdge(i)},
			{ft.inEdge(i), ft.agg(pi, g)},
			{ft.agg(pi, g), ft.core(m)},
			{ft.core(m), ft.agg(po, g)},
			{ft.agg(po, g), ft.outEdge(o)},
			{ft.outEdge(o), dst},
		}
	}
	p := make(Path, 0, len(hops))
	for _, h := range hops {
		id, ok := ft.net.LinkBetween(h[0], h[1])
		if !ok {
			return nil, fmt.Errorf("fattree path: missing link %d->%d", h[0], h[1])
		}
		p = append(p, id)
	}
	return p, nil
}
