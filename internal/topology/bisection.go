package topology

import "fmt"

// FullBisection reports whether the Clos fabric has full bisection
// bandwidth (§1): for every ToR switch, the fabric-facing capacity
// (number of middle switches, at unit capacity) is at least the
// server-facing capacity (servers per ToR). For a square C_n this always
// holds with equality; oversubscribed rectangular fabrics fail it.
func FullBisection(c *Clos) bool {
	return c.Size() >= c.ServersPerToR()
}

// BisectionGap returns serverCapacity − fabricCapacity per ToR (servers
// minus middles). Zero means exactly full bisection (the paper's
// setting); positive values measure oversubscription, negative values
// spare fabric capacity.
func BisectionGap(c *Clos) int {
	return c.ServersPerToR() - c.Size()
}

// OversubscriptionRatio renders the conventional s:m form.
func OversubscriptionRatio(c *Clos) string {
	return fmt.Sprintf("%d:%d", c.ServersPerToR(), c.Size())
}
