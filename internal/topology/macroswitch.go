package topology

import (
	"fmt"

	"closnet/internal/rational"
)

// MacroSwitch is the macro-switch abstraction of §2.1: the Clos middle
// stage is replaced by a complete bipartite graph of infinite-capacity
// links between input and output ToR switches, so the only capacity
// constraints are the unit server links. There is a single path between
// every (source, destination) pair.
//
// The paper's square abstraction MS_n of C_n is the case
// (tors, servers) = (2n, n), built by NewMacroSwitch; NewGeneralMacroSwitch
// supports arbitrary shapes, matching NewGeneralClos (the abstraction
// does not depend on the middle-switch count at all — which is exactly
// why it over-promises on oversubscribed fabrics).
type MacroSwitch struct {
	net     *Network
	n       int // square size parameter; ServersPerToR() in general
	tors    int
	servers int

	inputBase  NodeID
	outputBase NodeID
	sourceBase NodeID
	destBase   NodeID
}

// NewMacroSwitch builds the square abstraction MS_n. It returns an error
// if n < 1.
func NewMacroSwitch(n int) (*MacroSwitch, error) {
	if n < 1 {
		return nil, fmt.Errorf("macroswitch: size n=%d, want n >= 1", n)
	}
	return NewGeneralMacroSwitch(2*n, n)
}

// NewGeneralMacroSwitch builds the macro-switch abstraction for a Clos
// fabric with the given ToR and per-ToR server counts.
func NewGeneralMacroSwitch(tors, servers int) (*MacroSwitch, error) {
	if tors < 1 || servers < 1 {
		return nil, fmt.Errorf("macroswitch: invalid shape (tors=%d, servers=%d)", tors, servers)
	}
	name := fmt.Sprintf("MS(%dx%d)", tors, servers)
	if tors == 2*servers {
		name = fmt.Sprintf("MS_%d", servers)
	}
	ms := &MacroSwitch{net: New(name), n: servers, tors: tors, servers: servers}
	one := rational.One()

	ms.inputBase = NodeID(ms.net.NumNodes())
	for i := 1; i <= tors; i++ {
		ms.net.AddNode(KindInputSwitch, fmt.Sprintf("I%d", i))
	}
	ms.outputBase = NodeID(ms.net.NumNodes())
	for i := 1; i <= tors; i++ {
		ms.net.AddNode(KindOutputSwitch, fmt.Sprintf("O%d", i))
	}
	ms.sourceBase = NodeID(ms.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= servers; j++ {
			ms.net.AddNode(KindSource, fmt.Sprintf("s%d.%d", i, j))
		}
	}
	ms.destBase = NodeID(ms.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= servers; j++ {
			ms.net.AddNode(KindDestination, fmt.Sprintf("t%d.%d", i, j))
		}
	}

	for i := 1; i <= tors; i++ {
		for j := 1; j <= servers; j++ {
			if _, err := ms.net.AddLink(ms.Source(i, j), ms.Input(i), one); err != nil {
				return nil, err
			}
			if _, err := ms.net.AddLink(ms.Output(i), ms.Dest(i, j), one); err != nil {
				return nil, err
			}
		}
	}
	// Infinite-capacity core: complete bipartite input -> output.
	for i := 1; i <= tors; i++ {
		for o := 1; o <= tors; o++ {
			if _, err := ms.net.AddUnboundedLink(ms.Input(i), ms.Output(o)); err != nil {
				return nil, err
			}
		}
	}
	return ms, nil
}

// MustMacroSwitch is NewMacroSwitch for known-good sizes; it panics on
// error. Intended for tests and examples.
func MustMacroSwitch(n int) *MacroSwitch {
	ms, err := NewMacroSwitch(n)
	if err != nil {
		panic(err)
	}
	return ms
}

// Network returns the underlying network.
func (ms *MacroSwitch) Network() *Network { return ms.net }

// Size returns the square size parameter n (equal to ServersPerToR; for
// the square MS_n this is the n shared with the corresponding C_n).
func (ms *MacroSwitch) Size() int { return ms.n }

// NumToRs returns the number of input (equivalently output) switches.
func (ms *MacroSwitch) NumToRs() int { return ms.tors }

// ServersPerToR returns the number of servers per switch on each side.
func (ms *MacroSwitch) ServersPerToR() int { return ms.servers }

// Input returns input switch I_i, i ∈ [NumToRs()]. It panics on an
// out-of-range index, mirroring slice indexing.
func (ms *MacroSwitch) Input(i int) NodeID {
	ms.check(i, ms.tors, "input switch")
	return ms.inputBase + NodeID(i-1)
}

// Output returns output switch O_i, i ∈ [NumToRs()].
func (ms *MacroSwitch) Output(i int) NodeID {
	ms.check(i, ms.tors, "output switch")
	return ms.outputBase + NodeID(i-1)
}

// Source returns server s_i^j, i ∈ [NumToRs()], j ∈ [ServersPerToR()].
func (ms *MacroSwitch) Source(i, j int) NodeID {
	ms.check(i, ms.tors, "source switch index")
	ms.check(j, ms.servers, "source server index")
	return ms.sourceBase + NodeID((i-1)*ms.servers+(j-1))
}

// Dest returns server t_i^j, i ∈ [NumToRs()], j ∈ [ServersPerToR()].
func (ms *MacroSwitch) Dest(i, j int) NodeID {
	ms.check(i, ms.tors, "destination switch index")
	ms.check(j, ms.servers, "destination server index")
	return ms.destBase + NodeID((i-1)*ms.servers+(j-1))
}

func (ms *MacroSwitch) check(i, max int, what string) {
	if i < 1 || i > max {
		panic(fmt.Sprintf("macroswitch: %s index %d out of range [1,%d]", what, i, max))
	}
}

func (ms *MacroSwitch) numServers() int { return ms.tors * ms.servers }

// InputOf returns the index i of the input switch serving source node s.
func (ms *MacroSwitch) InputOf(s NodeID) (int, bool) {
	if s < ms.sourceBase || s >= ms.sourceBase+NodeID(ms.numServers()) {
		return 0, false
	}
	return int(s-ms.sourceBase)/ms.servers + 1, true
}

// OutputOf returns the index i of the output switch serving destination
// node t.
func (ms *MacroSwitch) OutputOf(t NodeID) (int, bool) {
	if t < ms.destBase || t >= ms.destBase+NodeID(ms.numServers()) {
		return 0, false
	}
	return int(t-ms.destBase)/ms.servers + 1, true
}

// Path returns the unique src→dst path: src -> I -> O -> dst.
func (ms *MacroSwitch) Path(src, dst NodeID) (Path, error) {
	i, ok := ms.InputOf(src)
	if !ok {
		return nil, fmt.Errorf("macroswitch path: node %d is not a source", src)
	}
	o, ok := ms.OutputOf(dst)
	if !ok {
		return nil, fmt.Errorf("macroswitch path: node %d is not a destination", dst)
	}
	hops := [][2]NodeID{
		{src, ms.Input(i)},
		{ms.Input(i), ms.Output(o)},
		{ms.Output(o), dst},
	}
	p := make(Path, 0, len(hops))
	for _, h := range hops {
		id, ok := ms.net.LinkBetween(h[0], h[1])
		if !ok {
			return nil, fmt.Errorf("macroswitch path: missing link %d->%d", h[0], h[1])
		}
		p = append(p, id)
	}
	return p, nil
}
