package topology

import (
	"fmt"

	"closnet/internal/rational"
)

// Clos is a three-stage Clos network: `tors` input and `tors` output ToR
// switches, `servers` source (destination) servers per input (output)
// switch, and `middles` middle switches, all links of unit capacity.
// There are exactly `middles` source-destination paths between every
// (source, destination) pair, one per middle switch.
//
// The paper's square network C_n of §2.1 is the case
// (tors, servers, middles) = (2n, n, n), built by NewClos. The general
// form additionally supports the multirate-rearrangeability setting of
// §6, where the number of middle switches varies independently.
type Clos struct {
	net     *Network
	tors    int // input (and output) ToR switches
	servers int // servers per ToR switch
	middles int // middle switches

	inputBase  NodeID
	outputBase NodeID
	middleBase NodeID
	sourceBase NodeID
	destBase   NodeID
}

// NewClos builds the paper's square Clos network C_n: n middle switches,
// 2n ToR switches per side, n servers per ToR. It returns an error if
// n < 1.
func NewClos(n int) (*Clos, error) {
	if n < 1 {
		return nil, fmt.Errorf("clos: size n=%d, want n >= 1", n)
	}
	return NewGeneralClos(2*n, n, n)
}

// NewGeneralClos builds a Clos network with the given number of ToR
// switches per side, servers per ToR switch, and middle switches.
func NewGeneralClos(tors, servers, middles int) (*Clos, error) {
	if tors < 1 || servers < 1 || middles < 1 {
		return nil, fmt.Errorf("clos: invalid shape (tors=%d, servers=%d, middles=%d)", tors, servers, middles)
	}
	name := fmt.Sprintf("C(%dx%dx%d)", tors, servers, middles)
	if tors == 2*middles && servers == middles {
		name = fmt.Sprintf("C_%d", middles)
	}
	c := &Clos{net: New(name), tors: tors, servers: servers, middles: middles}
	one := rational.One()

	c.inputBase = c.addRange(tors, KindInputSwitch, "I%d")
	c.outputBase = c.addRange(tors, KindOutputSwitch, "O%d")
	c.middleBase = c.addRange(middles, KindMiddleSwitch, "M%d")

	c.sourceBase = NodeID(c.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= servers; j++ {
			c.net.AddNode(KindSource, fmt.Sprintf("s%d.%d", i, j))
		}
	}
	c.destBase = NodeID(c.net.NumNodes())
	for i := 1; i <= tors; i++ {
		for j := 1; j <= servers; j++ {
			c.net.AddNode(KindDestination, fmt.Sprintf("t%d.%d", i, j))
		}
	}

	// Server links: s_i^j -> I_i and O_i -> t_i^j.
	for i := 1; i <= tors; i++ {
		for j := 1; j <= servers; j++ {
			if _, err := c.net.AddLink(c.Source(i, j), c.Input(i), one); err != nil {
				return nil, err
			}
			if _, err := c.net.AddLink(c.Output(i), c.Dest(i, j), one); err != nil {
				return nil, err
			}
		}
	}
	// Fabric links: I_i -> M_m and M_m -> O_i.
	for i := 1; i <= tors; i++ {
		for m := 1; m <= middles; m++ {
			if _, err := c.net.AddLink(c.Input(i), c.Middle(m), one); err != nil {
				return nil, err
			}
			if _, err := c.net.AddLink(c.Middle(m), c.Output(i), one); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// MustClos is NewClos for known-good sizes; it panics on error. Intended
// for tests and examples.
func MustClos(n int) *Clos {
	c, err := NewClos(n)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Clos) addRange(count int, kind NodeKind, format string) NodeID {
	base := NodeID(c.net.NumNodes())
	for i := 1; i <= count; i++ {
		c.net.AddNode(kind, fmt.Sprintf(format, i))
	}
	return base
}

// Network returns the underlying network.
func (c *Clos) Network() *Network { return c.net }

// Size returns the number of middle switches (the paper's n for square
// networks).
func (c *Clos) Size() int { return c.middles }

// NumToRs returns the number of input (equivalently output) ToR
// switches.
func (c *Clos) NumToRs() int { return c.tors }

// ServersPerToR returns the number of servers attached to each ToR
// switch on each side.
func (c *Clos) ServersPerToR() int { return c.servers }

// Input returns input switch I_i, i ∈ [NumToRs()]. It panics on an
// out-of-range index, mirroring slice indexing.
func (c *Clos) Input(i int) NodeID {
	c.check(i, c.tors, "input switch")
	return c.inputBase + NodeID(i-1)
}

// Output returns output switch O_i, i ∈ [NumToRs()].
func (c *Clos) Output(i int) NodeID {
	c.check(i, c.tors, "output switch")
	return c.outputBase + NodeID(i-1)
}

// Middle returns middle switch M_m, m ∈ [Size()].
func (c *Clos) Middle(m int) NodeID {
	c.check(m, c.middles, "middle switch")
	return c.middleBase + NodeID(m-1)
}

// Source returns server s_i^j, i ∈ [NumToRs()], j ∈ [ServersPerToR()].
func (c *Clos) Source(i, j int) NodeID {
	c.check(i, c.tors, "source switch index")
	c.check(j, c.servers, "source server index")
	return c.sourceBase + NodeID((i-1)*c.servers+(j-1))
}

// Dest returns server t_i^j, i ∈ [NumToRs()], j ∈ [ServersPerToR()].
func (c *Clos) Dest(i, j int) NodeID {
	c.check(i, c.tors, "destination switch index")
	c.check(j, c.servers, "destination server index")
	return c.destBase + NodeID((i-1)*c.servers+(j-1))
}

func (c *Clos) check(i, max int, what string) {
	if i < 1 || i > max {
		panic(fmt.Sprintf("clos: %s index %d out of range [1,%d]", what, i, max))
	}
}

// numServers returns the total server count per side.
func (c *Clos) numServers() int { return c.tors * c.servers }

// InputOf returns the index i of the input switch serving source node s.
// The second result is false if s is not a source of this network.
func (c *Clos) InputOf(s NodeID) (int, bool) {
	if s < c.sourceBase || s >= c.sourceBase+NodeID(c.numServers()) {
		return 0, false
	}
	return int(s-c.sourceBase)/c.servers + 1, true
}

// SourceIndexOf returns the (i, j) indices such that s == Source(i, j).
// The third result is false if s is not a source server.
func (c *Clos) SourceIndexOf(s NodeID) (int, int, bool) {
	if s < c.sourceBase || s >= c.sourceBase+NodeID(c.numServers()) {
		return 0, 0, false
	}
	off := int(s - c.sourceBase)
	return off/c.servers + 1, off%c.servers + 1, true
}

// DestIndexOf returns the (i, j) indices such that t == Dest(i, j).
// The third result is false if t is not a destination server.
func (c *Clos) DestIndexOf(t NodeID) (int, int, bool) {
	if t < c.destBase || t >= c.destBase+NodeID(c.numServers()) {
		return 0, 0, false
	}
	off := int(t - c.destBase)
	return off/c.servers + 1, off%c.servers + 1, true
}

// OutputOf returns the index i of the output switch serving destination
// node t. The second result is false if t is not a destination.
func (c *Clos) OutputOf(t NodeID) (int, bool) {
	if t < c.destBase || t >= c.destBase+NodeID(c.numServers()) {
		return 0, false
	}
	return int(t-c.destBase)/c.servers + 1, true
}

// Path returns the unique src→dst path through middle switch m
// (m ∈ [Size()]): src -> I -> M_m -> O -> dst.
func (c *Clos) Path(src, dst NodeID, m int) (Path, error) {
	i, ok := c.InputOf(src)
	if !ok {
		return nil, fmt.Errorf("clos path: node %d is not a source", src)
	}
	o, ok := c.OutputOf(dst)
	if !ok {
		return nil, fmt.Errorf("clos path: node %d is not a destination", dst)
	}
	if m < 1 || m > c.middles {
		return nil, fmt.Errorf("clos path: middle index %d out of range [1,%d]", m, c.middles)
	}
	hops := [][2]NodeID{
		{src, c.Input(i)},
		{c.Input(i), c.Middle(m)},
		{c.Middle(m), c.Output(o)},
		{c.Output(o), dst},
	}
	p := make(Path, 0, len(hops))
	for _, h := range hops {
		id, ok := c.net.LinkBetween(h[0], h[1])
		if !ok {
			return nil, fmt.Errorf("clos path: missing link %d->%d", h[0], h[1])
		}
		p = append(p, id)
	}
	return p, nil
}

// FabricLinks returns the IDs of all links inside the network (between
// ToR and middle switches).
func (c *Clos) FabricLinks() []LinkID {
	var ids []LinkID
	for _, l := range c.net.Links() {
		fromKind := c.net.Node(l.From).Kind
		toKind := c.net.Node(l.To).Kind
		if fromKind == KindMiddleSwitch || toKind == KindMiddleSwitch {
			ids = append(ids, l.ID)
		}
	}
	return ids
}

// ServerLinks returns the IDs of all links outside the network (between
// servers and ToR switches).
func (c *Clos) ServerLinks() []LinkID {
	var ids []LinkID
	for _, l := range c.net.Links() {
		fromKind := c.net.Node(l.From).Kind
		toKind := c.net.Node(l.To).Kind
		if fromKind == KindSource || toKind == KindDestination {
			ids = append(ids, l.ID)
		}
	}
	return ids
}
