// Package topology models capacitated directed networks and provides
// builders for the two topology families studied in the paper: the Clos
// network C_n (§2.1) and its macro-switch abstraction MS_n.
//
// Indexing follows the paper's 1-based convention: input/output switches
// are indexed by i ∈ [2n], servers per switch by j ∈ [n], and middle
// switches by m ∈ [n].
package topology

import (
	"fmt"
	"math/big"
	"strings"

	"closnet/internal/rational"
)

// NodeKind classifies a node by its role in a data-center topology.
type NodeKind int

// Node kinds. General-purpose networks may use KindOther.
const (
	KindSource NodeKind = iota + 1
	KindInputSwitch
	KindMiddleSwitch
	KindOutputSwitch
	KindDestination
	KindOther
)

// String returns a short human-readable name for the kind.
func (k NodeKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindInputSwitch:
		return "input-switch"
	case KindMiddleSwitch:
		return "middle-switch"
	case KindOutputSwitch:
		return "output-switch"
	case KindDestination:
		return "destination"
	case KindOther:
		return "other"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// NodeID identifies a node within one Network.
type NodeID int

// LinkID identifies a directed link within one Network.
type LinkID int

// Node is a vertex of a Network.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
}

// Link is a directed capacitated edge of a Network. If Unbounded is true
// the capacity is infinite (used by the macro-switch core) and Capacity is
// ignored by allocators.
type Link struct {
	ID        LinkID
	From, To  NodeID
	Capacity  *big.Rat
	Unbounded bool

	// cap64 is the small-word image of Capacity, precomputed at AddLink
	// so allocator hot paths never re-inspect the big.Rat. cap64ok is
	// false for unbounded links and for (pathological) capacities whose
	// components exceed an int64.
	cap64   rational.Rat64
	cap64ok bool
}

// Capacity64 returns the capacity as an exact Rat64. ok is false when
// the link is unbounded or the capacity does not fit in an int64
// fraction; callers must then fall back to Capacity.
func (l Link) Capacity64() (rational.Rat64, bool) {
	return l.cap64, l.cap64ok
}

// Network is a directed graph with named nodes and capacitated links.
// Networks are built once and then treated as immutable by the rest of the
// library; the type is not safe for concurrent mutation.
type Network struct {
	name       string
	nodes      []Node
	links      []Link
	out        [][]LinkID
	linkByEnds map[[2]NodeID]LinkID
}

// New returns an empty network with the given display name.
func New(name string) *Network {
	return &Network{
		name:       name,
		linkByEnds: make(map[[2]NodeID]LinkID),
	}
}

// Name returns the display name of the network.
func (n *Network) Name() string { return n.name }

// AddNode appends a node and returns its ID.
func (n *Network) AddNode(kind NodeKind, name string) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, Node{ID: id, Kind: kind, Name: name})
	n.out = append(n.out, nil)
	return id
}

// AddLink appends a directed link with finite capacity cap and returns its
// ID. The capacity is copied. AddLink returns an error if an endpoint is
// out of range or a parallel link already exists (the topologies in this
// library are simple graphs; flows provide multiplicity instead).
func (n *Network) AddLink(from, to NodeID, capacity *big.Rat) (LinkID, error) {
	return n.addLink(from, to, rational.Copy(capacity), false)
}

// AddUnboundedLink appends a directed link with infinite capacity.
func (n *Network) AddUnboundedLink(from, to NodeID) (LinkID, error) {
	return n.addLink(from, to, nil, true)
}

func (n *Network) addLink(from, to NodeID, capacity *big.Rat, unbounded bool) (LinkID, error) {
	if !n.validNode(from) || !n.validNode(to) {
		return 0, fmt.Errorf("link %d->%d: endpoint out of range", from, to)
	}
	key := [2]NodeID{from, to}
	if _, ok := n.linkByEnds[key]; ok {
		return 0, fmt.Errorf("link %s->%s already exists", n.nodes[from].Name, n.nodes[to].Name)
	}
	id := LinkID(len(n.links))
	l := Link{ID: id, From: from, To: to, Capacity: capacity, Unbounded: unbounded}
	if !unbounded {
		l.cap64, l.cap64ok = rational.FromRat(capacity)
	}
	n.links = append(n.links, l)
	n.out[from] = append(n.out[from], id)
	n.linkByEnds[key] = id
	return id, nil
}

func (n *Network) validNode(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes)
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumLinks returns the number of links.
func (n *Network) NumLinks() int { return len(n.links) }

// Node returns the node with the given ID. It panics if id is out of
// range, mirroring slice indexing: IDs only come from this network.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Link returns the link with the given ID. It panics if id is out of
// range, mirroring slice indexing: IDs only come from this network.
func (n *Network) Link(id LinkID) Link { return n.links[id] }

// LinkBetween returns the link from u to v, if one exists.
func (n *Network) LinkBetween(u, v NodeID) (LinkID, bool) {
	id, ok := n.linkByEnds[[2]NodeID{u, v}]
	return id, ok
}

// OutLinks returns the IDs of links leaving u. The returned slice is a
// copy and may be retained by the caller.
func (n *Network) OutLinks(u NodeID) []LinkID {
	out := make([]LinkID, len(n.out[u]))
	copy(out, n.out[u])
	return out
}

// Links returns a copy of all links.
func (n *Network) Links() []Link {
	ls := make([]Link, len(n.links))
	copy(ls, n.links)
	return ls
}

// NodesOfKind returns the IDs of all nodes with the given kind, in ID
// order.
func (n *Network) NodesOfKind(kind NodeKind) []NodeID {
	var ids []NodeID
	for _, nd := range n.nodes {
		if nd.Kind == kind {
			ids = append(ids, nd.ID)
		}
	}
	return ids
}

// LinkName formats a link as "From->To" using node names.
func (n *Network) LinkName(id LinkID) string {
	l := n.links[id]
	return n.nodes[l.From].Name + "->" + n.nodes[l.To].Name
}

// String summarizes the network.
func (n *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d nodes, %d links", n.name, len(n.nodes), len(n.links))
	return b.String()
}

// Path is a sequence of link IDs forming a contiguous directed walk.
type Path []LinkID

// Validate reports an error unless p is a contiguous path from src to dst
// in network n.
func (p Path) Validate(n *Network, src, dst NodeID) error {
	if len(p) == 0 {
		if src == dst {
			return nil
		}
		return fmt.Errorf("empty path from %d to %d", src, dst)
	}
	at := src
	for i, id := range p {
		if int(id) < 0 || int(id) >= n.NumLinks() {
			return fmt.Errorf("path hop %d: link %d out of range", i, id)
		}
		l := n.Link(id)
		if l.From != at {
			return fmt.Errorf("path hop %d: link %s does not start at %s",
				i, n.LinkName(id), n.Node(at).Name)
		}
		at = l.To
	}
	if at != dst {
		return fmt.Errorf("path ends at %s, want %s", n.Node(at).Name, n.Node(dst).Name)
	}
	return nil
}

// Contains reports whether p traverses link id.
func (p Path) Contains(id LinkID) bool {
	for _, l := range p {
		if l == id {
			return true
		}
	}
	return false
}
