package topology

import (
	"testing"

	"closnet/internal/rational"
)

func TestNewGeneralClosShape(t *testing.T) {
	tests := []struct {
		tors, servers, middles int
	}{
		{1, 1, 1},
		{3, 2, 5},
		{4, 1, 7},
		{2, 5, 2},
	}
	for _, tt := range tests {
		c, err := NewGeneralClos(tt.tors, tt.servers, tt.middles)
		if err != nil {
			t.Fatalf("(%d,%d,%d): %v", tt.tors, tt.servers, tt.middles, err)
		}
		if c.NumToRs() != tt.tors || c.ServersPerToR() != tt.servers || c.Size() != tt.middles {
			t.Fatalf("shape accessors disagree: %d %d %d", c.NumToRs(), c.ServersPerToR(), c.Size())
		}
		net := c.Network()
		wantNodes := 2*tt.tors + tt.middles + 2*tt.tors*tt.servers
		if got := net.NumNodes(); got != wantNodes {
			t.Errorf("nodes = %d, want %d", got, wantNodes)
		}
		wantLinks := 2*tt.tors*tt.servers + 2*tt.tors*tt.middles
		if got := net.NumLinks(); got != wantLinks {
			t.Errorf("links = %d, want %d", got, wantLinks)
		}
	}
}

func TestNewGeneralClosRejectsBadShapes(t *testing.T) {
	for _, tt := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if _, err := NewGeneralClos(tt[0], tt[1], tt[2]); err == nil {
			t.Errorf("shape %v accepted", tt)
		}
	}
}

func TestSquareClosIsSpecialCase(t *testing.T) {
	square := MustClos(3)
	general, err := NewGeneralClos(6, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if square.Network().NumNodes() != general.Network().NumNodes() ||
		square.Network().NumLinks() != general.Network().NumLinks() {
		t.Error("NewClos(3) and NewGeneralClos(6,3,3) differ structurally")
	}
	if square.Network().Name() != "C_3" {
		t.Errorf("square name = %q", square.Network().Name())
	}
	if general.Network().Name() != "C_3" {
		t.Errorf("general square name = %q", general.Network().Name())
	}
	rect, err := NewGeneralClos(3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rect.Network().Name() != "C(3x2x5)" {
		t.Errorf("rect name = %q", rect.Network().Name())
	}
}

func TestGeneralClosPathsPerMiddle(t *testing.T) {
	c, err := NewGeneralClos(3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := c.Source(1, 2), c.Dest(3, 1)
	for m := 1; m <= 5; m++ {
		p, err := c.Path(src, dst, m)
		if err != nil {
			t.Fatalf("middle %d: %v", m, err)
		}
		if err := p.Validate(c.Network(), src, dst); err != nil {
			t.Fatalf("middle %d: %v", m, err)
		}
	}
	if _, err := c.Path(src, dst, 6); err == nil {
		t.Error("out-of-range middle accepted")
	}
}

func TestGeneralClosIndexRoundTrip(t *testing.T) {
	c, err := NewGeneralClos(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 3; j++ {
			si, sj, ok := c.SourceIndexOf(c.Source(i, j))
			if !ok || si != i || sj != j {
				t.Errorf("SourceIndexOf(Source(%d,%d)) = (%d,%d,%v)", i, j, si, sj, ok)
			}
			di, dj, ok := c.DestIndexOf(c.Dest(i, j))
			if !ok || di != i || dj != j {
				t.Errorf("DestIndexOf(Dest(%d,%d)) = (%d,%d,%v)", i, j, di, dj, ok)
			}
		}
	}
	if _, _, ok := c.SourceIndexOf(c.Dest(1, 1)); ok {
		t.Error("SourceIndexOf accepted a destination")
	}
	if _, _, ok := c.DestIndexOf(c.Middle(1)); ok {
		t.Error("DestIndexOf accepted a switch")
	}
}

// TestExtraMiddlesAddCapacity: with more middle switches than servers
// per ToR, an all-to-one-ToR unit workload becomes link-disjointly
// routable.
func TestExtraMiddlesAddCapacity(t *testing.T) {
	// 2 ToRs, 3 servers each, 3 middles: three unit flows I1 -> O2 fit
	// on distinct middles.
	c, err := NewGeneralClos(2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := c.Network()
	for m := 1; m <= 3; m++ {
		p, err := c.Path(c.Source(1, m), c.Dest(2, m), m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(net, c.Source(1, m), c.Dest(2, m)); err != nil {
			t.Fatal(err)
		}
	}
	// All fabric links unit capacity.
	for _, l := range net.Links() {
		if l.Capacity.Cmp(rational.One()) != 0 {
			t.Fatalf("link %s not unit", net.LinkName(l.ID))
		}
	}
}

func TestBisectionHelpers(t *testing.T) {
	square := MustClos(3)
	if !FullBisection(square) || BisectionGap(square) != 0 {
		t.Error("square Clos should be exactly full bisection")
	}
	over, err := NewGeneralClos(4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if FullBisection(over) || BisectionGap(over) != 2 {
		t.Errorf("oversubscribed fabric misclassified: gap=%d", BisectionGap(over))
	}
	if got := OversubscriptionRatio(over); got != "5:3" {
		t.Errorf("ratio = %q, want 5:3", got)
	}
	under, err := NewGeneralClos(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !FullBisection(under) || BisectionGap(under) != -1 {
		t.Errorf("under-subscribed fabric misclassified: gap=%d", BisectionGap(under))
	}
}
