package topology

import (
	"fmt"
	"testing"
)

// validateAllPaths checks every (source, dest, choice) path of a
// fabric: it must validate against the network, and the choice fan must
// hold distinct(si, di) distinct paths — Size() when distinct is nil.
// Families may collapse choices for some pairs (a fat-tree's intra-pod
// paths never cross a core, so the k^2/4 choices fold onto the k/2
// aggregation switches of the pod).
func validateAllPaths(t *testing.T, f Fabric, distinct func(si, di int) int) {
	t.Helper()
	net := f.Network()
	for si := 1; si <= f.NumToRs(); si++ {
		for sj := 1; sj <= f.ServersPerToR(); sj++ {
			for di := 1; di <= f.NumToRs(); di++ {
				for dj := 1; dj <= f.ServersPerToR(); dj++ {
					src, dst := f.Source(si, sj), f.Dest(di, dj)
					seen := make(map[string]bool)
					for m := 1; m <= f.Size(); m++ {
						p, err := f.Path(src, dst, m)
						if err != nil {
							t.Fatalf("path s%d.%d->t%d.%d via %d: %v", si, sj, di, dj, m, err)
						}
						if err := p.Validate(net, src, dst); err != nil {
							t.Fatalf("path s%d.%d->t%d.%d via %d invalid: %v", si, sj, di, dj, m, err)
						}
						seen[fmt.Sprint(p)] = true
					}
					want := f.Size()
					if distinct != nil {
						want = distinct(si, di)
					}
					if len(seen) != want {
						t.Errorf("s%d.%d->t%d.%d: %d distinct paths, want %d",
							si, sj, di, dj, len(seen), want)
					}
				}
			}
		}
	}
}

func TestFatTreeShapeAndPaths(t *testing.T) {
	for _, k := range []int{2, 4} {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Standard k-pod fat-tree: k pods of k/2 edge switches with k/2
		// servers each, (k/2)^2 cores. As a fabric: k*k/2 ToRs, k/2
		// servers per ToR, k^2/4 path choices.
		if got, want := ft.NumToRs(), k*k/2; got != want {
			t.Errorf("k=%d: %d ToRs, want %d", k, got, want)
		}
		if got, want := ft.ServersPerToR(), k/2; got != want {
			t.Errorf("k=%d: %d servers/ToR, want %d", k, got, want)
		}
		if got, want := ft.Size(), k*k/4; got != want {
			t.Errorf("k=%d: %d choices, want %d", k, got, want)
		}
		if ft.SymmetricChoices() {
			t.Errorf("k=%d: fat-tree claims symmetric choices", k)
		}
		half := k / 2
		validateAllPaths(t, ft, func(si, di int) int {
			if (si-1)/half == (di-1)/half {
				return half // intra-pod: one path per aggregation switch
			}
			return k * k / 4 // inter-pod: one path per core
		})
	}
	for _, k := range []int{0, 3, -2} {
		if _, err := NewFatTree(k); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestBenesShapeAndPaths(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		b, err := NewBenes(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// An n-port Benes as a fabric: n/2 ToRs of 2 servers, n/2 path
		// choices (one per middle subnetwork bit pattern).
		if got, want := b.NumToRs(), n/2; got != want {
			t.Errorf("n=%d: %d ToRs, want %d", n, got, want)
		}
		if got, want := b.ServersPerToR(), 2; got != want {
			t.Errorf("n=%d: %d servers/ToR, want %d", n, got, want)
		}
		if got, want := b.Size(), n/2; got != want {
			t.Errorf("n=%d: %d choices, want %d", n, got, want)
		}
		if b.SymmetricChoices() {
			t.Errorf("n=%d: Benes claims symmetric choices", n)
		}
		validateAllPaths(t, b, nil)
	}
	for _, n := range []int{0, 3, 6, -4} {
		if _, err := NewBenes(n); err == nil {
			t.Errorf("n=%d accepted", n)
		}
	}
}

func TestNewOversubscribedClos(t *testing.T) {
	// 4 ToRs with 4 servers each at 2:1 gives 2 middle switches.
	c, err := NewOversubscribedClos(4, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumToRs() != 4 || c.ServersPerToR() != 4 || c.Size() != 2 {
		t.Errorf("shape (%d, %d, %d), want (4, 4, 2)", c.NumToRs(), c.ServersPerToR(), c.Size())
	}
	// OversubscriptionRatio renders the raw servers:middles form.
	if got := OversubscriptionRatio(c); got != "4:2" {
		t.Errorf("ratio %q, want 4:2", got)
	}
	validateAllPaths(t, c, nil)

	for _, bad := range [][4]int{
		{4, 3, 2, 1},  // 3 servers at 2:1 does not divide
		{4, 4, 0, 1},  // zero ratio term
		{4, 4, 1, -1}, // negative ratio term
		{0, 4, 1, 1},  // no ToRs
		{4, 1, 4, 1},  // rounds middles to zero
	} {
		if _, err := NewOversubscribedClos(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("NewOversubscribedClos%v accepted", bad)
		}
	}
}

func TestBuildFamily(t *testing.T) {
	cases := []struct {
		family                 string
		tors, servers, middles int
	}{
		{"", 3, 2, 3},
		{"clos", 3, 2, 3},
		{FamilyFatTree, 8, 2, 4},
		{FamilyBenes, 4, 2, 4},
		{"", 4, 4, 2}, // oversubscribed Clos shape, family-free
	}
	for _, tc := range cases {
		f, err := BuildFamily(tc.family, tc.tors, tc.servers, tc.middles)
		if err != nil {
			t.Errorf("BuildFamily(%q, %d, %d, %d): %v", tc.family, tc.tors, tc.servers, tc.middles, err)
			continue
		}
		if f.NumToRs() != tc.tors || f.ServersPerToR() != tc.servers || f.Size() != tc.middles {
			t.Errorf("BuildFamily(%q): shape (%d, %d, %d), want (%d, %d, %d)", tc.family,
				f.NumToRs(), f.ServersPerToR(), f.Size(), tc.tors, tc.servers, tc.middles)
		}
	}

	for _, bad := range []struct {
		family                 string
		tors, servers, middles int
	}{
		{"ring", 3, 2, 3},        // unknown family
		{FamilyFatTree, 8, 2, 5}, // core count mismatch
		{FamilyFatTree, 7, 2, 4}, // ToR count mismatch
		{FamilyBenes, 4, 3, 4},   // Benes always has 2 servers/ToR
		{FamilyBenes, 3, 2, 3},   // not a power of two
	} {
		if _, err := BuildFamily(bad.family, bad.tors, bad.servers, bad.middles); err == nil {
			t.Errorf("BuildFamily(%q, %d, %d, %d) accepted", bad.family, bad.tors, bad.servers, bad.middles)
		}
	}
}

func TestFamilyNamesMatchBuilders(t *testing.T) {
	names := FamilyNames()
	if len(names) == 0 {
		t.Fatal("no family names")
	}
	shapes := map[string][3]int{
		FamilyClos:    {3, 2, 3},
		FamilyFatTree: {8, 2, 4},
		FamilyBenes:   {4, 2, 4},
	}
	for _, name := range names {
		shape, ok := shapes[name]
		if !ok {
			t.Errorf("family %q has no shape in this test — extend it", name)
			continue
		}
		if _, err := BuildFamily(name, shape[0], shape[1], shape[2]); err != nil {
			t.Errorf("family %q does not build: %v", name, err)
		}
	}
}
