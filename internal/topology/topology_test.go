package topology

import (
	"strings"
	"testing"

	"closnet/internal/rational"
)

func TestNetworkBasics(t *testing.T) {
	n := New("test")
	a := n.AddNode(KindOther, "a")
	b := n.AddNode(KindOther, "b")
	id, err := n.AddLink(a, b, rational.One())
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if n.NumNodes() != 2 || n.NumLinks() != 1 {
		t.Fatalf("counts: %d nodes %d links", n.NumNodes(), n.NumLinks())
	}
	l := n.Link(id)
	if l.From != a || l.To != b || l.Unbounded {
		t.Errorf("unexpected link %+v", l)
	}
	got, ok := n.LinkBetween(a, b)
	if !ok || got != id {
		t.Errorf("LinkBetween = %v, %v", got, ok)
	}
	if _, ok := n.LinkBetween(b, a); ok {
		t.Error("LinkBetween found a reverse link")
	}
	if name := n.LinkName(id); name != "a->b" {
		t.Errorf("LinkName = %q", name)
	}
}

func TestAddLinkErrors(t *testing.T) {
	n := New("test")
	a := n.AddNode(KindOther, "a")
	b := n.AddNode(KindOther, "b")
	if _, err := n.AddLink(a, NodeID(99), rational.One()); err == nil {
		t.Error("expected error for out-of-range endpoint")
	}
	if _, err := n.AddLink(a, b, rational.One()); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if _, err := n.AddLink(a, b, rational.One()); err == nil {
		t.Error("expected error for duplicate link")
	}
}

func TestAddLinkCopiesCapacity(t *testing.T) {
	n := New("test")
	a := n.AddNode(KindOther, "a")
	b := n.AddNode(KindOther, "b")
	c := rational.One()
	id, err := n.AddLink(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(c, rational.One())
	if n.Link(id).Capacity.Cmp(rational.One()) != 0 {
		t.Error("capacity aliased the caller's value")
	}
}

func TestClosStructure(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		c := MustClos(n)
		net := c.Network()
		wantNodes := n + 4*n + 4*n*n // middles + ToRs + servers
		if got := net.NumNodes(); got != wantNodes {
			t.Errorf("C_%d: %d nodes, want %d", n, got, wantNodes)
		}
		// Links: 2*2n*n server links + 2*2n*n fabric links.
		wantLinks := 8 * n * n
		if got := net.NumLinks(); got != wantLinks {
			t.Errorf("C_%d: %d links, want %d", n, got, wantLinks)
		}
		if got := len(c.FabricLinks()); got != 4*n*n {
			t.Errorf("C_%d: %d fabric links, want %d", n, got, 4*n*n)
		}
		if got := len(c.ServerLinks()); got != 4*n*n {
			t.Errorf("C_%d: %d server links, want %d", n, got, 4*n*n)
		}
		// All links have unit capacity.
		for _, l := range net.Links() {
			if l.Unbounded || l.Capacity.Cmp(rational.One()) != 0 {
				t.Fatalf("C_%d: link %s is not unit capacity", n, net.LinkName(l.ID))
			}
		}
	}
}

func TestClosNames(t *testing.T) {
	c := MustClos(2)
	net := c.Network()
	tests := []struct {
		id   NodeID
		want string
	}{
		{c.Input(1), "I1"},
		{c.Output(4), "O4"},
		{c.Middle(2), "M2"},
		{c.Source(1, 2), "s1.2"},
		{c.Dest(3, 1), "t3.1"},
	}
	for _, tt := range tests {
		if got := net.Node(tt.id).Name; got != tt.want {
			t.Errorf("node %d name = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestClosInputOfOutputOf(t *testing.T) {
	c := MustClos(3)
	for i := 1; i <= 6; i++ {
		for j := 1; j <= 3; j++ {
			if got, ok := c.InputOf(c.Source(i, j)); !ok || got != i {
				t.Errorf("InputOf(s%d.%d) = %d, %v", i, j, got, ok)
			}
			if got, ok := c.OutputOf(c.Dest(i, j)); !ok || got != i {
				t.Errorf("OutputOf(t%d.%d) = %d, %v", i, j, got, ok)
			}
		}
	}
	if _, ok := c.InputOf(c.Middle(1)); ok {
		t.Error("InputOf accepted a middle switch")
	}
	if _, ok := c.OutputOf(c.Source(1, 1)); ok {
		t.Error("OutputOf accepted a source")
	}
}

func TestClosPath(t *testing.T) {
	c := MustClos(2)
	net := c.Network()
	src, dst := c.Source(1, 2), c.Dest(4, 1)
	for m := 1; m <= 2; m++ {
		p, err := c.Path(src, dst, m)
		if err != nil {
			t.Fatalf("Path via M%d: %v", m, err)
		}
		if len(p) != 4 {
			t.Fatalf("Path via M%d has %d hops, want 4", m, len(p))
		}
		if err := p.Validate(net, src, dst); err != nil {
			t.Errorf("Path via M%d invalid: %v", m, err)
		}
		// The path must traverse M_m.
		if net.Link(p[1]).To != c.Middle(m) {
			t.Errorf("Path via M%d does not traverse M%d", m, m)
		}
	}
	// Distinct middles give link-disjoint fabric segments.
	p1, _ := c.Path(src, dst, 1)
	p2, _ := c.Path(src, dst, 2)
	if p1[1] == p2[1] || p1[2] == p2[2] {
		t.Error("paths via distinct middles share fabric links")
	}
}

func TestClosPathErrors(t *testing.T) {
	c := MustClos(2)
	if _, err := c.Path(c.Middle(1), c.Dest(1, 1), 1); err == nil {
		t.Error("expected error for non-source origin")
	}
	if _, err := c.Path(c.Source(1, 1), c.Input(1), 1); err == nil {
		t.Error("expected error for non-destination target")
	}
	if _, err := c.Path(c.Source(1, 1), c.Dest(1, 1), 3); err == nil {
		t.Error("expected error for out-of-range middle")
	}
}

func TestNewClosRejectsBadSize(t *testing.T) {
	if _, err := NewClos(0); err == nil {
		t.Error("NewClos(0) should fail")
	}
	if _, err := NewMacroSwitch(-1); err == nil {
		t.Error("NewMacroSwitch(-1) should fail")
	}
}

func TestMacroSwitchStructure(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		ms := MustMacroSwitch(n)
		net := ms.Network()
		wantNodes := 4*n + 4*n*n
		if got := net.NumNodes(); got != wantNodes {
			t.Errorf("MS_%d: %d nodes, want %d", n, got, wantNodes)
		}
		// 2*2n*n server links + (2n)^2 core links.
		wantLinks := 4*n*n + 4*n*n
		if got := net.NumLinks(); got != wantLinks {
			t.Errorf("MS_%d: %d links, want %d", n, got, wantLinks)
		}
		unbounded := 0
		for _, l := range net.Links() {
			if l.Unbounded {
				unbounded++
			} else if l.Capacity.Cmp(rational.One()) != 0 {
				t.Fatalf("MS_%d: finite link %s not unit capacity", n, net.LinkName(l.ID))
			}
		}
		if unbounded != 4*n*n {
			t.Errorf("MS_%d: %d unbounded links, want %d", n, unbounded, 4*n*n)
		}
	}
}

func TestMacroSwitchPath(t *testing.T) {
	ms := MustMacroSwitch(2)
	net := ms.Network()
	src, dst := ms.Source(2, 1), ms.Dest(3, 2)
	p, err := ms.Path(src, dst)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if len(p) != 3 {
		t.Fatalf("Path has %d hops, want 3", len(p))
	}
	if err := p.Validate(net, src, dst); err != nil {
		t.Errorf("Path invalid: %v", err)
	}
	// Middle hop must be unbounded; server hops must be unit.
	if !net.Link(p[1]).Unbounded {
		t.Error("core hop should be unbounded")
	}
	if net.Link(p[0]).Unbounded || net.Link(p[2]).Unbounded {
		t.Error("server hops should be bounded")
	}
	if _, err := ms.Path(ms.Input(1), dst); err == nil {
		t.Error("expected error for non-source origin")
	}
}

func TestPathValidate(t *testing.T) {
	c := MustClos(1)
	net := c.Network()
	src, dst := c.Source(1, 1), c.Dest(2, 1)
	p, _ := c.Path(src, dst, 1)

	if err := p.Validate(net, src, dst); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := p.Validate(net, c.Source(2, 1), dst); err == nil {
		t.Error("wrong source accepted")
	}
	if err := p.Validate(net, src, c.Dest(1, 1)); err == nil {
		t.Error("wrong destination accepted")
	}
	if err := (Path{}).Validate(net, src, dst); err == nil {
		t.Error("empty path between distinct nodes accepted")
	}
	if err := (Path{}).Validate(net, src, src); err != nil {
		t.Errorf("empty self path rejected: %v", err)
	}
	if err := (Path{LinkID(9999)}).Validate(net, src, dst); err == nil {
		t.Error("out-of-range link accepted")
	}
	// Non-contiguous path.
	bad := Path{p[0], p[0]}
	if err := bad.Validate(net, src, dst); err == nil {
		t.Error("non-contiguous path accepted")
	}
}

func TestPathContains(t *testing.T) {
	p := Path{1, 5, 9}
	if !p.Contains(5) || p.Contains(2) {
		t.Error("Contains misbehaves")
	}
}

func TestNodesOfKind(t *testing.T) {
	c := MustClos(2)
	if got := len(c.Network().NodesOfKind(KindMiddleSwitch)); got != 2 {
		t.Errorf("middles = %d, want 2", got)
	}
	if got := len(c.Network().NodesOfKind(KindSource)); got != 8 {
		t.Errorf("sources = %d, want 8", got)
	}
}

func TestKindString(t *testing.T) {
	kinds := []NodeKind{KindSource, KindInputSwitch, KindMiddleSwitch, KindOutputSwitch, KindDestination, KindOther}
	for _, k := range kinds {
		if s := k.String(); s == "" || strings.HasPrefix(s, "NodeKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := NodeKind(42).String(); !strings.HasPrefix(s, "NodeKind(") {
		t.Errorf("unknown kind formatted as %q", s)
	}
}

func TestNetworkString(t *testing.T) {
	c := MustClos(1)
	if got := c.Network().String(); !strings.Contains(got, "C_1") {
		t.Errorf("String = %q", got)
	}
}

func TestOutLinksIsCopy(t *testing.T) {
	n := New("test")
	a := n.AddNode(KindOther, "a")
	b := n.AddNode(KindOther, "b")
	if _, err := n.AddLink(a, b, rational.One()); err != nil {
		t.Fatal(err)
	}
	out := n.OutLinks(a)
	if len(out) != 1 {
		t.Fatalf("OutLinks = %v", out)
	}
	out[0] = LinkID(999)
	if n.OutLinks(a)[0] == LinkID(999) {
		t.Error("OutLinks exposed internal state")
	}
}
