// Package schedule implements the scheduling alternative discussed in
// the paper's conclusions (§7, R1): instead of letting congestion
// control share capacity max-min fairly among all flows at once, a
// scheduler can delay some flows so the others transmit at link
// capacity — emulating admission control over time — which can reduce
// average flow completion time (FCT).
//
// Two exact, event-driven disciplines are provided:
//
//   - FairSharing: all flows start immediately; rates are the max-min
//     fair allocation, recomputed whenever a flow completes (processor
//     sharing under congestion control).
//   - MatchingRounds: at every instant, a maximum matching of the active
//     flows transmits at rate 1 and everyone else waits (the
//     admission-control regime of Lemma 3.2, applied repeatedly).
//
// All times are exact rationals, so FCT comparisons are decidable.
package schedule

import (
	"fmt"
	"math/big"
	"sort"

	"closnet/internal/core"
	"closnet/internal/matching"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// FairSharing simulates max-min fair sharing of the network among all
// flows simultaneously: every flow starts at time 0 with the given size
// (amount of data, in capacity·time units) and transmits at its max-min
// fair rate, recomputed each time a flow completes. It returns the exact
// completion time of each flow.
func FairSharing(net *topology.Network, fs core.Collection, r core.Routing, sizes rational.Vec) (rational.Vec, error) {
	if len(sizes) != len(fs) {
		return nil, fmt.Errorf("schedule: %d sizes for %d flows", len(sizes), len(fs))
	}
	if err := r.Validate(net, fs); err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	nf := len(fs)
	times := make(rational.Vec, nf)
	remaining := sizes.Copy()
	active := make([]int, 0, nf)
	for fi, size := range sizes {
		if size.Sign() <= 0 {
			return nil, fmt.Errorf("schedule: flow %d has non-positive size %s", fi, rational.String(size))
		}
		active = append(active, fi)
	}
	now := rational.Zero()

	for len(active) > 0 {
		subFlows := make(core.Collection, len(active))
		subRouting := make(core.Routing, len(active))
		for k, fi := range active {
			subFlows[k] = fs[fi]
			subRouting[k] = r[fi]
		}
		rates, err := core.MaxMinFair(net, subFlows, subRouting)
		if err != nil {
			return nil, err
		}
		// Earliest completion among active flows.
		var dt *big.Rat
		for k, fi := range active {
			if rates[k].Sign() <= 0 {
				return nil, fmt.Errorf("schedule: flow %d has zero max-min rate", fi)
			}
			d := rational.Div(remaining[fi], rates[k])
			if dt == nil || d.Cmp(dt) < 0 {
				dt = d
			}
		}
		now = rational.Add(now, dt)
		next := active[:0]
		for k, fi := range active {
			transferred := rational.Mul(rates[k], dt)
			remaining[fi] = rational.Sub(remaining[fi], transferred)
			if remaining[fi].Sign() <= 0 {
				times[fi] = rational.Copy(now)
			} else {
				next = append(next, fi)
			}
		}
		active = next
	}
	return times, nil
}

// MatchingRounds schedules the flows of a macro-switch in the
// admission-control regime: at every instant a maximum matching of the
// still-active flows transmits at rate 1 (link capacity) while all other
// flows are delayed, and the matching is recomputed whenever a flow
// completes. It returns the exact completion time of each flow.
//
// The schedule is feasible in the macro-switch by Lemma 3.2, and
// feasible in the corresponding Clos network by Lemma 5.2 (a matching is
// link-disjointly routable), so its FCTs are achievable in both.
func MatchingRounds(fs core.Collection, sizes rational.Vec) (rational.Vec, error) {
	if len(sizes) != len(fs) {
		return nil, fmt.Errorf("schedule: %d sizes for %d flows", len(sizes), len(fs))
	}
	nf := len(fs)
	times := make(rational.Vec, nf)
	remaining := sizes.Copy()
	active := make(map[int]bool, nf)
	for fi, size := range sizes {
		if size.Sign() <= 0 {
			return nil, fmt.Errorf("schedule: flow %d has non-positive size %s", fi, rational.String(size))
		}
		active[fi] = true
	}
	now := rational.Zero()

	for len(active) > 0 {
		// Maximum matching among active flows.
		idx := make([]int, 0, len(active))
		for fi := range active {
			idx = append(idx, fi)
		}
		// Deterministic order for reproducibility.
		sort.Ints(idx)
		g, err := activeGraph(fs, idx)
		if err != nil {
			return nil, err
		}
		m, err := matching.MaxMatching(g)
		if err != nil {
			return nil, err
		}
		if len(m) == 0 {
			return nil, fmt.Errorf("schedule: no matching among %d active flows", len(active))
		}
		// Matched flows transmit at rate 1 until the first completes.
		var dt *big.Rat
		for _, ei := range m {
			fi := idx[ei]
			if dt == nil || remaining[fi].Cmp(dt) < 0 {
				dt = remaining[fi]
			}
		}
		dt = rational.Copy(dt)
		now = rational.Add(now, dt)
		for _, ei := range m {
			fi := idx[ei]
			remaining[fi] = rational.Sub(remaining[fi], dt)
			if remaining[fi].Sign() <= 0 {
				times[fi] = rational.Copy(now)
				delete(active, fi)
			}
		}
	}
	return times, nil
}

// activeGraph builds the G^MS multigraph restricted to the flows with
// the given indices; edge i corresponds to idx[i].
func activeGraph(fs core.Collection, idx []int) (matching.Graph, error) {
	srcIdx := make(map[topology.NodeID]int)
	dstIdx := make(map[topology.NodeID]int)
	g := matching.Graph{}
	for _, fi := range idx {
		f := fs[fi]
		if _, ok := srcIdx[f.Src]; !ok {
			srcIdx[f.Src] = len(srcIdx)
		}
		if _, ok := dstIdx[f.Dst]; !ok {
			dstIdx[f.Dst] = len(dstIdx)
		}
		g.Edges = append(g.Edges, matching.Edge{Left: srcIdx[f.Src], Right: dstIdx[f.Dst]})
	}
	g.NumLeft, g.NumRight = len(srcIdx), len(dstIdx)
	return g, nil
}

// AverageFCT returns the mean of the completion times.
func AverageFCT(times rational.Vec) *big.Rat {
	if len(times) == 0 {
		return rational.Zero()
	}
	return rational.Div(times.Sum(), rational.Int(int64(len(times))))
}

// UnitSizes returns a size vector of n ones.
func UnitSizes(n int) rational.Vec {
	sizes := make(rational.Vec, n)
	for i := range sizes {
		sizes[i] = rational.One()
	}
	return sizes
}
