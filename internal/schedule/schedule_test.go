package schedule

import (
	"math/rand"
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// theorem34Flows builds the Theorem 3.4 macro collection with k type-2
// flows and its forced routing.
func theorem34Flows(t *testing.T, k int) (*topology.MacroSwitch, core.Collection, core.Routing) {
	t.Helper()
	in, err := adversary.Theorem34(1, k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.MacroRouting(in.Macro, in.MacroFlows)
	if err != nil {
		t.Fatal(err)
	}
	return in.Macro, in.MacroFlows, r
}

func TestFairSharingTheorem34(t *testing.T) {
	// All k+2 unit flows share at rate 1/(k+1), so all complete at k+1.
	for _, k := range []int{1, 3, 8} {
		ms, fs, r := theorem34Flows(t, k)
		times, err := FairSharing(ms.Network(), fs, r, UnitSizes(len(fs)))
		if err != nil {
			t.Fatal(err)
		}
		want := rational.Int(int64(k + 1))
		for fi, tm := range times {
			if tm.Cmp(want) != 0 {
				t.Errorf("k=%d: flow %d completes at %s, want %s", k, fi, rational.String(tm), rational.String(want))
			}
		}
	}
}

func TestMatchingRoundsTheorem34(t *testing.T) {
	// The two type-1 flows transmit immediately at rate 1 (complete at
	// t=1); the k parasitic type-2 flows share a server pair, so they
	// serialize: completions at 1, 2, ..., k (the first type-2 unit can
	// run concurrently with the type-1 flow (s1.1, t1.1)? No: it blocks
	// on t1.1) — they finish at 2, 3, ..., k+1.
	k := 4
	_, fs, _ := theorem34Flows(t, k)
	times, err := MatchingRounds(fs, UnitSizes(len(fs)))
	if err != nil {
		t.Fatal(err)
	}
	// Flows 0,1 are type-1; flows 2..k+1 are type-2.
	if times[0].Cmp(rational.One()) != 0 || times[1].Cmp(rational.One()) != 0 {
		t.Errorf("type-1 completions = %s, %s; want 1, 1",
			rational.String(times[0]), rational.String(times[1]))
	}
	// Type-2 completions are 2, 3, ..., k+1 in some order.
	got := make(rational.Vec, 0, k)
	for fi := 2; fi < len(times); fi++ {
		got = append(got, times[fi])
	}
	sorted := got.SortedCopy()
	for i := 0; i < k; i++ {
		want := rational.Int(int64(i + 2))
		if sorted[i].Cmp(want) != 0 {
			t.Errorf("type-2 completion %d = %s, want %s", i, rational.String(sorted[i]), rational.String(want))
		}
	}
}

// TestSchedulingBeatsFairSharingOnAverage is the §7 R1 claim: on the
// price-of-fairness family, the matching scheduler's average FCT is
// strictly below fair sharing's.
func TestSchedulingBeatsFairSharingOnAverage(t *testing.T) {
	for _, k := range []int{2, 8, 32} {
		ms, fs, r := theorem34Flows(t, k)
		sizes := UnitSizes(len(fs))
		fair, err := FairSharing(ms.Network(), fs, r, sizes)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := MatchingRounds(fs, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if AverageFCT(sched).Cmp(AverageFCT(fair)) >= 0 {
			t.Errorf("k=%d: scheduled avg FCT %s not below fair sharing %s",
				k, rational.String(AverageFCT(sched)), rational.String(AverageFCT(fair)))
		}
	}
}

func TestFairSharingSingleFlow(t *testing.T) {
	ms := topology.MustMacroSwitch(1)
	fs := core.NewCollection(ms.Source(1, 1), ms.Dest(1, 1))
	r, err := core.MacroRouting(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	times, err := FairSharing(ms.Network(), fs, r, rational.VecOf(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if times[0].Cmp(rational.R(3, 2)) != 0 {
		t.Errorf("completion = %s, want 3/2", rational.String(times[0]))
	}
}

func TestFairSharingHeterogeneousSizes(t *testing.T) {
	// Two flows sharing one link, sizes 1 and 2: both at rate 1/2 until
	// t=2 (flow 0 done), then flow 1 at rate 1, finishing at 2 + 1 = 3.
	ms := topology.MustMacroSwitch(1)
	fs := core.NewCollection(
		ms.Source(1, 1), ms.Dest(1, 1),
		ms.Source(1, 1), ms.Dest(2, 1),
	)
	r, err := core.MacroRouting(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	times, err := FairSharing(ms.Network(), fs, r, rational.VecOf(1, 1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if times[0].Cmp(rational.Int(2)) != 0 {
		t.Errorf("flow 0 completes at %s, want 2", rational.String(times[0]))
	}
	if times[1].Cmp(rational.Int(3)) != 0 {
		t.Errorf("flow 1 completes at %s, want 3", rational.String(times[1]))
	}
}

func TestScheduleErrors(t *testing.T) {
	ms := topology.MustMacroSwitch(1)
	fs := core.NewCollection(ms.Source(1, 1), ms.Dest(1, 1))
	r, err := core.MacroRouting(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FairSharing(ms.Network(), fs, r, rational.Vec{}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := FairSharing(ms.Network(), fs, r, rational.VecOf(0, 1)); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := MatchingRounds(fs, rational.Vec{}); err == nil {
		t.Error("size mismatch accepted by MatchingRounds")
	}
	if _, err := MatchingRounds(fs, rational.VecOf(-1, 1)); err == nil {
		t.Error("negative size accepted by MatchingRounds")
	}
}

// TestMatchingRoundsMakespanOptimalForPermutations: a permutation
// workload is one perfect matching, so everything completes at t=1 and
// both disciplines agree.
func TestMatchingRoundsPermutation(t *testing.T) {
	ms := topology.MustMacroSwitch(2)
	fs := core.Collection{}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 2; j++ {
			fs = fs.Add(ms.Source(i, j), ms.Dest(i, j), 1)
		}
	}
	sched, err := MatchingRounds(fs, UnitSizes(len(fs)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.MacroRouting(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := FairSharing(ms.Network(), fs, r, UnitSizes(len(fs)))
	if err != nil {
		t.Fatal(err)
	}
	for fi := range fs {
		if sched[fi].Cmp(rational.One()) != 0 || fair[fi].Cmp(rational.One()) != 0 {
			t.Errorf("flow %d: sched %s fair %s, want 1 and 1",
				fi, rational.String(sched[fi]), rational.String(fair[fi]))
		}
	}
}

// TestDisciplinesConserveWork checks on random instances that both
// disciplines transfer exactly the offered bytes: the sum of sizes
// equals the integral of per-flow rates (implied by exact completion
// times being consistent with sizes; here we check completion times are
// positive and at least size/1, i.e. no flow beats link capacity).
func TestDisciplinesConserveWork(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ms := topology.MustMacroSwitch(2)
	for trial := 0; trial < 10; trial++ {
		fs := core.Collection{}
		nf := rng.Intn(6) + 2
		sizes := make(rational.Vec, 0, nf)
		for f := 0; f < nf; f++ {
			fs = fs.Add(
				ms.Source(rng.Intn(4)+1, rng.Intn(2)+1),
				ms.Dest(rng.Intn(4)+1, rng.Intn(2)+1), 1)
			sizes = append(sizes, rational.R(int64(rng.Intn(3)+1), 2))
		}
		r, err := core.MacroRouting(ms, fs)
		if err != nil {
			t.Fatal(err)
		}
		fair, err := FairSharing(ms.Network(), fs, r, sizes)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := MatchingRounds(fs, sizes)
		if err != nil {
			t.Fatal(err)
		}
		for fi := range fs {
			// No discipline can beat transmitting alone at capacity 1.
			if fair[fi].Cmp(sizes[fi]) < 0 {
				t.Fatalf("trial %d: fair FCT %s below size %s", trial,
					rational.String(fair[fi]), rational.String(sizes[fi]))
			}
			if sched[fi].Cmp(sizes[fi]) < 0 {
				t.Fatalf("trial %d: sched FCT %s below size %s", trial,
					rational.String(sched[fi]), rational.String(sizes[fi]))
			}
		}
	}
}
