package search

import (
	"math/big"
	"strings"
	"testing"

	"closnet/internal/core"
	"closnet/internal/corpus"
	"closnet/internal/lp"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// prunedCase is one instance of the pruned-equals-exhaustive
// equivalence corpus: every exhaustively searchable paper instance plus
// the contended bench shapes.
type prunedCase struct {
	name string
	c    topology.Fabric
	fs   core.Collection
}

// searchBenchInstance mirrors closbench's benchInstance: flows
// alternating between cross-ToR and same-ToR destinations, the
// contended shape of the BENCH_search.json rows.
func searchBenchInstance(n, flows int) (*topology.Clos, core.Collection) {
	c := topology.MustClos(n)
	fs := core.Collection{}
	for f := 0; f < flows; f++ {
		i := f%n + 1
		if f%2 == 0 {
			fs = fs.Add(c.Source(i, 1), c.Dest(i%n+1, 1), 1)
		} else {
			fs = fs.Add(c.Source(i, 1), c.Dest(i, 1), 1)
		}
	}
	return c, fs
}

func prunedCases(t *testing.T) []prunedCase {
	t.Helper()
	var cases []prunedCase
	add := func(name string, n int) {
		scens, _, err := corpus.Scenarios(n, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range scens {
			c, fs, _, _, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, prunedCase{name: s.Name, c: c, fs: fs})
		}
	}
	add("example23", 0)
	add("theorem34k2", 3)
	add("theorem34k2", 4)
	add("theorem34k8", 3)
	jc, jfs := journalInstance()
	cases = append(cases, prunedCase{name: "journal_c3", c: jc, fs: jfs})
	bc, bfs := searchBenchInstance(4, 6)
	cases = append(cases, prunedCase{name: "bench_c4_f6", c: bc, fs: bfs})
	return cases
}

// TestPrunedLexMatchesExhaustive is the tentpole equivalence suite: on
// every searchable instance of the §4/§5 corpus the branch-and-bound
// must return the bit-identical incumbent — same assignment, same
// rationals — as the exhaustive canonical scan at every worker count
// and as the legacy full-space serial oracle.
func TestPrunedLexMatchesExhaustive(t *testing.T) {
	for _, tc := range prunedCases(t) {
		pruned, err := LexMaxMin(tc.c, tc.fs, Options{Pruned: true})
		if err != nil {
			t.Fatalf("%s: pruned: %v", tc.name, err)
		}
		oracle, err := LexMaxMin(tc.c, tc.fs, Options{FullSpace: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s: full-space oracle: %v", tc.name, err)
		}
		if !sameAssignment(pruned.Assignment, oracle.Assignment) || !pruned.Allocation.Equal(oracle.Allocation) {
			t.Errorf("%s: pruned diverged from the full-space oracle:\n%v %v\n%v %v",
				tc.name, pruned.Assignment, pruned.Allocation, oracle.Assignment, oracle.Allocation)
		}
		for _, workers := range []int{1, 2, 4} {
			ex, err := LexMaxMin(tc.c, tc.fs, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if !sameAssignment(pruned.Assignment, ex.Assignment) || !pruned.Allocation.Equal(ex.Allocation) {
				t.Errorf("%s workers=%d: pruned incumbent differs:\npruned:     %v %v\nexhaustive: %v %v",
					tc.name, workers, pruned.Assignment, pruned.Allocation, ex.Assignment, ex.Allocation)
			}
		}
	}
}

// TestPrunedThroughputMatchesExhaustive: same contract for the
// throughput objective, whose exhaustive scan early-exits on the
// matching bound — the branch-and-bound must land on the same
// earliest-rank state.
func TestPrunedThroughputMatchesExhaustive(t *testing.T) {
	for _, tc := range prunedCases(t) {
		if testing.Short() && tc.name == "theorem34k8" {
			continue // LP bound per node; skip the 10-flow case under -short
		}
		pruned, err := ThroughputMaxMin(tc.c, tc.fs, Options{Pruned: true})
		if err != nil {
			t.Fatalf("%s: pruned: %v", tc.name, err)
		}
		for _, workers := range []int{1, 2, 4} {
			ex, err := ThroughputMaxMin(tc.c, tc.fs, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if !sameAssignment(pruned.Assignment, ex.Assignment) || !pruned.Allocation.Equal(ex.Allocation) {
				t.Errorf("%s workers=%d: pruned incumbent differs:\npruned:     %v %v\nexhaustive: %v %v",
					tc.name, workers, pruned.Assignment, pruned.Allocation, ex.Assignment, ex.Allocation)
			}
		}
	}
}

// TestPrunedC5Reduction pins the acceptance bar of the pruned mode: on
// the 7-flow C_5 lex benchmark the branch-and-bound must visit at least
// 5x fewer states (bound plus leaf evaluations) than the canonical
// exhaustive scan, with a bit-identical incumbent. The measured ratio
// is ~65x; 5x leaves headroom for bound tweaks without masking a
// pruning regression.
func TestPrunedC5Reduction(t *testing.T) {
	c, fs := searchBenchInstance(5, 7)
	ex, err := LexMaxMin(c, fs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := LexMaxMin(c, fs, Options{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAssignment(pruned.Assignment, ex.Assignment) || !pruned.Allocation.Equal(ex.Allocation) {
		t.Fatalf("pruned incumbent differs:\npruned:     %v %v\nexhaustive: %v %v",
			pruned.Assignment, pruned.Allocation, ex.Assignment, ex.Allocation)
	}
	if pruned.States <= 0 || ex.States < 5*pruned.States {
		t.Errorf("pruning below the 5x bar: exhaustive %d states, pruned %d (%.1fx)",
			ex.States, pruned.States, float64(ex.States)/float64(pruned.States))
	}
}

// TestThroughputBoundAdmissiblePrefixes cross-checks the LP bound the
// throughput branch-and-bound prunes on: at every depth, for every
// fixed suffix, the certified splittable bound (capped by the matching
// bound, exactly as throughputBranchBound computes it) must dominate
// the throughput of every completion.
func TestThroughputBoundAdmissiblePrefixes(t *testing.T) {
	c, fs := journalInstance()
	n := c.Size()
	nf := len(fs)
	ub, err := maxMatchingSize(fs)
	if err != nil {
		t.Fatal(err)
	}
	ubRat := rational.Int(int64(ub))
	net := c.Network()
	ev, err := core.NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	ma := make(core.MiddleAssignment, nf)
	walk := func() {
		for fixedFrom := 0; fixedFrom <= nf; fixedFrom++ {
			paths, err := lp.PrefixPaths(c, fs, ma, fixedFrom)
			if err != nil {
				t.Fatal(err)
			}
			bound, err := lp.SplittableThroughputBound(net, fs, paths)
			if err != nil {
				t.Fatal(err)
			}
			if bound.Cmp(ubRat) > 0 {
				bound = new(big.Rat).Set(ubRat)
			}
			// Every completion of the fixed suffix stays below the bound.
			comp := make(core.MiddleAssignment, nf)
			copy(comp, ma)
			var complete func(p int)
			complete = func(p int) {
				if p == fixedFrom {
					a, err := ev.Eval(comp)
					if err != nil {
						t.Fatal(err)
					}
					if thr := core.Throughput(a); thr.Cmp(bound) > 0 {
						t.Fatalf("fixedFrom=%d ma=%v: completion throughput %s above bound %s",
							fixedFrom, comp, rational.String(thr), rational.String(bound))
					}
					return
				}
				for v := 1; v <= n; v++ {
					comp[p] = v
					complete(p + 1)
				}
			}
			complete(0)
		}
	}
	// Sample the suffix space: all assignments of the two highest flows,
	// lowest flows pinned to 1 — 9 suffixes x 5 depths x up to 81
	// completions keeps the LP count bounded.
	for v2 := 1; v2 <= n; v2++ {
		for v3 := 1; v3 <= n; v3++ {
			ma[0], ma[1], ma[2], ma[3] = 1, 1, v2, v3
			walk()
		}
	}
}

func TestPrunedOptionErrors(t *testing.T) {
	c, fs := journalInstance()
	if _, err := LexMaxMin(c, fs, Options{Pruned: true, FullSpace: true}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("lex Pruned+FullSpace: err = %v, want mutual-exclusion error", err)
	}
	if _, err := ThroughputMaxMin(c, fs, Options{Pruned: true, FullSpace: true}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("throughput Pruned+FullSpace: err = %v, want mutual-exclusion error", err)
	}
	demands := make(rational.Vec, len(fs))
	for i := range demands {
		demands[i] = rational.Int(1)
	}
	if _, err := RelativeMaxMin(c, fs, demands, Options{Pruned: true}); err == nil ||
		!strings.Contains(err.Error(), "no pruned mode") {
		t.Errorf("relative Pruned: err = %v, want no-pruned-mode error", err)
	}
}

func TestPrunedEmptyCollection(t *testing.T) {
	c := topology.MustClos(2)
	res, err := LexMaxMin(c, nil, Options{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 0 || len(res.Allocation) != 0 {
		t.Errorf("unexpected result %+v", res)
	}
}

// TestPrunedStateCap: the pruned mode enforces the same state budget as
// the exhaustive scan — the canonical space size is checked up front.
func TestPrunedStateCap(t *testing.T) {
	c := topology.MustClos(3)
	fs := core.Collection{}
	for i := 0; i < 20; i++ {
		fs = fs.Add(c.Source(1, 1), c.Dest(1, 1), 1)
	}
	if _, err := LexMaxMin(c, fs, Options{Pruned: true, MaxStates: 1000}); err == nil {
		t.Error("pruned search accepted a space beyond MaxStates")
	}
}
