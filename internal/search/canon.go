// Symmetry-canonical enumeration of the routing space.
//
// Both routing objectives — and indeed the entire max-min fair
// allocation, flow by flow — are invariant under permuting the middle
// switches: relabeling middles is an automorphism of C_n (every middle
// connects identically to every ToR with unit capacity), so an
// assignment and its relabeled images induce isomorphic link-sharing
// structures and therefore the same unique max-min fair allocation.
// It suffices to evaluate one representative per relabeling orbit.
//
// The representative chosen is the orbit element of minimum enumeration
// rank. Rank order reads an assignment as a base-n numeral with
// position 0 least significant, i.e. it compares the digit string
// s[j] = ma[|F|-1-j] lexicographically. Minimizing s over all
// relabelings is the classic canonical set-partition encoding: s is a
// restricted-growth string (RGS) — s[0] = 1 and each later digit is at
// most one more than the running maximum — capped at n distinct labels.
// Enumerating exactly the RGS strings in lexicographic order therefore
// visits orbit representatives in ascending full-space rank, and the
// first canonical state attaining the optimum is the min-rank optimal
// assignment of the whole space: the engine's incumbent is bit-identical
// to the one the legacy full-space serial scan reports.
//
// The state count drops from n^|F| to the partial Bell sum
// Σ_{k≤n} S(|F|, k) (Stirling numbers of the second kind) — a
// factorial-scale reduction that makes n = 7–8 exhaustively enumerable.
package search

import (
	"fmt"

	"closnet/internal/core"
)

// canonSpace ranks the restricted-growth strings of length numFlows
// over at most n labels. counts[r][m-1] is the number of canonical
// suffixes of length r following a prefix whose maximum label is m —
// the block sizes of the rank decomposition.
type canonSpace struct {
	n, numFlows int
	tot         int
	counts      [][]int
}

// newCanonSpace precomputes the suffix-count table. It fails when the
// canonical space itself exceeds maxStates (the cap applies to the
// states actually enumerated, so instances whose full space overflows
// the cap remain searchable as long as their canonical space fits).
func newCanonSpace(n, numFlows, maxStates int) (*canonSpace, error) {
	s := &canonSpace{n: n, numFlows: numFlows}
	// Entries are saturated at maxStates+1: every entry the rank
	// decomposition can read counts a subset of a space that is checked
	// to be ≤ maxStates, so saturation only ever affects unreachable
	// table slots (prefix maxima larger than the prefix length allows).
	sat := int64(maxStates) + 1
	s.counts = make([][]int, numFlows)
	prev := make([]int64, n)
	for m := range prev {
		prev[m] = 1
	}
	row := make([]int, n)
	for m := range row {
		row[m] = 1
	}
	if numFlows > 0 {
		s.counts[0] = row
	}
	for r := 1; r < numFlows; r++ {
		cur := make([]int64, n)
		row := make([]int, n)
		for m := n; m >= 1; m-- {
			// A suffix digit d ≤ m keeps the running maximum (m choices);
			// d = m+1 (only when a label is left) raises it.
			v := int64(m) * prev[m-1]
			if v/int64(m) != prev[m-1] || v > sat {
				v = sat
			}
			if m < n {
				v += prev[m]
				if v > sat {
					v = sat
				}
			}
			cur[m-1] = v
			row[m-1] = int(v)
		}
		prev = cur
		s.counts[r] = row
	}
	if numFlows == 0 {
		s.tot = 1
	} else {
		s.tot = s.counts[numFlows-1][0]
	}
	if int64(s.tot) >= sat {
		return nil, fmt.Errorf("%w: canonical space of %d flows in C_%d > %d",
			ErrTooManyStates, numFlows, n, maxStates)
	}
	return s, nil
}

func (s *canonSpace) total() int { return s.tot }

// canonCursor walks the canonical space in rank order. digits holds the
// RGS string s (digits[j] = ma[numFlows-1-j]), maxes[j] the running
// maximum of digits[0..j]; ma is the caller's assignment buffer, kept
// in sync by writeMA.
type canonCursor struct {
	s      *canonSpace
	digits []int
	maxes  []int
	ma     core.MiddleAssignment
}

// cursor positions a new cursor at rank, writing the rank's assignment
// into ma. rank must be in [0, total()).
func (s *canonSpace) cursor(rank int, ma core.MiddleAssignment) spaceCursor {
	c := &canonCursor{
		s:      s,
		digits: make([]int, s.numFlows),
		maxes:  make([]int, s.numFlows),
		ma:     ma,
	}
	c.digits[0] = 1
	c.maxes[0] = 1
	for j := 1; j < s.numFlows; j++ {
		m := c.maxes[j-1]
		limit := m + 1
		if limit > s.n {
			limit = s.n
		}
		for d := 1; d <= limit; d++ {
			nm := m
			if d > m {
				nm = d
			}
			block := s.counts[s.numFlows-1-j][nm-1]
			if rank < block {
				c.digits[j] = d
				c.maxes[j] = nm
				break
			}
			rank -= block
		}
	}
	c.writeMA()
	return c
}

// advance steps to the lexicographic successor RGS (the next canonical
// rank). Advancing the last state wraps to rank 0; callers bound their
// loops by rank, so the wrap is never observed.
func (c *canonCursor) advance() {
	nf := c.s.numFlows
	j := nf - 1
	for ; j >= 1; j-- {
		limit := c.maxes[j-1] + 1
		if limit > c.s.n {
			limit = c.s.n
		}
		if c.digits[j] < limit {
			c.digits[j]++
			c.maxes[j] = c.maxes[j-1]
			if c.digits[j] > c.maxes[j] {
				c.maxes[j] = c.digits[j]
			}
			break
		}
	}
	if j == 0 { // wrap to the all-ones state
		for k := 1; k < nf; k++ {
			c.digits[k] = 1
			c.maxes[k] = 1
		}
		c.writeMA()
		return
	}
	for k := j + 1; k < nf; k++ {
		c.digits[k] = 1
		c.maxes[k] = c.maxes[k-1]
	}
	c.writeMA()
}

func (c *canonCursor) writeMA() {
	nf := c.s.numFlows
	for pos := 0; pos < nf; pos++ {
		c.ma[pos] = c.digits[nf-1-pos]
	}
}
