package search

import (
	"context"

	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

func TestRelativeMaxMinExample23(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RelativeMaxMin(in.Clos, in.Flows, in.MacroRates, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The lex-max-min routing (routing A) achieves min ratio 2/3 — the
	// type-3 flow drops from 1 to 2/3 — but relative-max-min fairness
	// does strictly better: exhaustive search finds a routing whose
	// worst-off flow keeps 3/4 of its macro rate, supporting the §7 R2
	// proposal that relative fairness is the better objective for
	// preserving the macro-switch abstraction. (No routing reaches ratio
	// 1: the macro rates are not replicable.)
	if res.MinRatio.Cmp(rational.R(3, 4)) != 0 {
		t.Errorf("optimal min ratio = %s, want 3/4", rational.String(res.MinRatio))
	}
	// 32 canonical representatives of the 2^6 = 64 routings.
	if res.States != 32 {
		t.Errorf("states = %d, want 32", res.States)
	}
	// Cross-check: the lex-max-min routing itself sits at 2/3.
	wa, err := core.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if got := minRatio(wa, in.MacroRates); got.Cmp(rational.R(2, 3)) != 0 {
		t.Errorf("lex witness min ratio = %s, want 2/3", rational.String(got))
	}
}

func TestRelativeMaxMinPerfectReplication(t *testing.T) {
	// A single flow replicates its macro rate exactly: min ratio 1.
	c := topology.MustClos(2)
	fs := core.NewCollection(c.Source(1, 1), c.Dest(2, 1))
	res, err := RelativeMaxMin(c, fs, rational.VecOf(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinRatio.Cmp(rational.One()) != 0 {
		t.Errorf("min ratio = %s, want 1", rational.String(res.MinRatio))
	}
}

func TestRelativeMaxMinEmptyAndErrors(t *testing.T) {
	c := topology.MustClos(2)
	res, err := RelativeMaxMin(c, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinRatio.Cmp(rational.One()) != 0 {
		t.Errorf("empty min ratio = %s", rational.String(res.MinRatio))
	}
	fs := core.NewCollection(c.Source(1, 1), c.Dest(1, 1))
	if _, err := RelativeMaxMin(c, fs, rational.Vec{}, Options{}); err == nil {
		t.Error("target length mismatch accepted")
	}
	if _, err := HillClimbRelative(c, fs, rational.Vec{}, core.MiddleAssignment{1}, 0); err == nil {
		t.Error("target length mismatch accepted by hill climb")
	}
}

func TestRelativeMaxMinZeroTargetSkipped(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.NewCollection(
		c.Source(1, 1), c.Dest(2, 1),
		c.Source(1, 2), c.Dest(2, 2),
	)
	// Second flow has target 0: it must not poison the ratio.
	res, err := RelativeMaxMin(c, fs, rational.VecOf(1, 1, 0, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinRatio.Cmp(rational.One()) != 0 {
		t.Errorf("min ratio = %s, want 1", rational.String(res.MinRatio))
	}
}

func TestHillClimbRelativeReachesExhaustiveOptimum(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := RelativeMaxMin(in.Clos, in.Flows, in.MacroRates, Options{})
	if err != nil {
		t.Fatal(err)
	}
	climbed, err := HillClimbRelative(in.Clos, in.Flows, in.MacroRates,
		core.UniformAssignment(len(in.Flows), 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hill climbing is a heuristic; on this small instance it should
	// reach the global optimum 2/3, and must never exceed it.
	if climbed.MinRatio.Cmp(exhaustive.MinRatio) > 0 {
		t.Fatal("hill climb exceeded the exhaustive optimum")
	}
	if climbed.MinRatio.Cmp(exhaustive.MinRatio) != 0 {
		t.Errorf("hill climb reached %s, exhaustive %s",
			rational.String(climbed.MinRatio), rational.String(exhaustive.MinRatio))
	}
}

// TestRelativeVsLexOnStarvationFamily quantifies the §7 R2 discussion on
// the n=3 starvation instance: the lex-max-min witness leaves the type-3
// flow at ratio 1/3, while a relative-max-min oriented routing can trade
// other flows' surplus to raise the worst-off flow's ratio.
func TestRelativeVsLexOnStarvationFamily(t *testing.T) {
	in, err := adversary.Theorem43(3)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio profile of the lex-max-min witness routing.
	wa, err := core.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatal(err)
	}
	lexRatio := minRatio(wa, in.MacroRates)
	if lexRatio.Cmp(rational.R(1, 3)) != 0 {
		t.Fatalf("lex witness min ratio = %s, want 1/3", rational.String(lexRatio))
	}
	// Hill climbing on the relative objective from the witness must not
	// do worse, and whatever it achieves stays a valid allocation.
	res, err := HillClimbRelative(in.Clos, in.Flows, in.MacroRates, in.Witness, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinRatio.Cmp(lexRatio) < 0 {
		t.Errorf("relative climb ended below the lex witness: %s", rational.String(res.MinRatio))
	}
	r, err := core.ClosRouting(in.Clos, in.Flows, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.IsMaxMinFair(in.Clos.Network(), in.Flows, r, res.Allocation); err != nil {
		t.Errorf("climbed allocation invalid: %v", err)
	}
}

func TestMinMiddlesToRouteTheorem42(t *testing.T) {
	in, err := adversary.Theorem42(3)
	if err != nil {
		t.Fatal(err)
	}
	// With n = 3 middles the macro rates are unroutable (Theorem 4.2);
	// the probe must find some m > 3 within the conjectured bound
	// 2·serversPerToR − 1 = 5.
	m, ok, err := MinMiddlesToRoute(context.Background(), in.Clos, in.Flows, in.MacroRates, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no middle count up to 5 suffices; conjecture bound violated")
	}
	if m <= 3 {
		t.Errorf("min middles = %d, but m=3 is infeasible by Theorem 4.2", m)
	}
	t.Logf("Theorem 4.2 (n=3) demands become routable at m = %d middles", m)
}

func TestMinMiddlesToRouteTrivial(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.NewCollection(c.Source(1, 1), c.Dest(2, 1))
	m, ok, err := MinMiddlesToRoute(context.Background(), c, fs, rational.VecOf(1, 1), 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || m != 1 {
		t.Errorf("single unit flow needs m=%d (ok=%v), want 1", m, ok)
	}
}

func TestMinMiddlesToRouteInsufficient(t *testing.T) {
	c := topology.MustClos(2)
	// Two unit flows from the same input switch need two middles; cap the
	// probe at 1.
	fs := core.NewCollection(
		c.Source(1, 1), c.Dest(2, 1),
		c.Source(1, 2), c.Dest(3, 1),
	)
	m, ok, err := MinMiddlesToRoute(context.Background(), c, fs, rational.VecOf(1, 1, 1, 1), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok || m != 0 {
		t.Errorf("got m=%d ok=%v, want not routable within 1 middle", m, ok)
	}
}

func TestMinMiddlesToRouteErrors(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.NewCollection(c.Source(1, 1), c.Dest(2, 1))
	if _, _, err := MinMiddlesToRoute(context.Background(), c, fs, rational.Vec{}, 2, 0, 0); err == nil {
		t.Error("demand mismatch accepted")
	}
	if _, _, err := MinMiddlesToRoute(context.Background(), c, fs, rational.VecOf(1, 1), 0, 0, 0); err == nil {
		t.Error("maxMiddles=0 accepted")
	}
}
