package search

import (
	"context"
	"fmt"
	"math/big"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// RelativeResult is the outcome of a relative-max-min-fairness
// optimization: the best routing found and the minimum per-flow
// network/target rate ratio it achieves.
type RelativeResult struct {
	Assignment core.MiddleAssignment
	Allocation core.Allocation
	MinRatio   *big.Rat
	States     int
}

// minRatio returns min over flows of a[f]/target[f]. Flows with zero
// target are skipped (their ratio is taken as satisfied).
func minRatio(a core.Allocation, target rational.Vec) *big.Rat {
	var worst *big.Rat
	for fi := range a {
		if target[fi].Sign() == 0 {
			continue
		}
		r := rational.Div(a[fi], target[fi])
		if worst == nil || r.Cmp(worst) < 0 {
			worst = r
		}
	}
	if worst == nil {
		worst = rational.One()
	}
	return worst
}

// ratioObjective orders allocations by their minimum network/target
// ratio, caching the incumbent's ratio so it is recomputed only on
// improvement.
type ratioObjective struct {
	target rational.Vec
	best   *big.Rat
	cand   *big.Rat
}

func (o *ratioObjective) improves(a core.Allocation) bool {
	r := minRatio(a, o.target)
	if o.best != nil && r.Cmp(o.best) <= 0 {
		return false
	}
	o.cand = r
	return true
}

func (o *ratioObjective) install(core.Allocation) { o.best = o.cand }

func (o *ratioObjective) optimal() bool { return false }

// RelativeMaxMin maximizes, over all routings, the minimum per-flow
// ratio between the max-min fair rate in the Clos network and a target
// rate (typically the flow's macro-switch rate) — the relative-max-min
// fairness objective proposed in the paper's conclusions (§7, R2) as an
// alternative to lex-max-min fairness. Exhaustive; subject to the same
// state cap and worker sharding as the other optimizers.
func RelativeMaxMin(c topology.Fabric, fs core.Collection, target rational.Vec, opts Options) (*RelativeResult, error) {
	if len(target) != len(fs) {
		return nil, fmt.Errorf("search: %d targets for %d flows", len(target), len(fs))
	}
	if opts.Pruned {
		// The minimum target ratio is not monotone under the sorted-vector
		// domination the relaxation bounds certify, so no admissible bound
		// is available for this objective.
		return nil, fmt.Errorf("search: the relative objective has no pruned mode (no admissible relaxation bound)")
	}
	if len(fs) == 0 {
		return &RelativeResult{
			Assignment: core.MiddleAssignment{},
			Allocation: core.Allocation{},
			MinRatio:   rational.One(),
			States:     1,
		}, nil
	}
	res, err := runEngine(c, fs, opts, func() objective { return &ratioObjective{target: target} })
	if err != nil {
		return nil, err
	}
	return &RelativeResult{
		Assignment: res.Assignment,
		Allocation: res.Allocation,
		MinRatio:   minRatio(res.Allocation, target),
		States:     res.States,
	}, nil
}

// HillClimbRelative improves a starting routing by single-flow reroutes
// that strictly increase the minimum network/target ratio, stopping at a
// local optimum or after maxMoves moves (0 means 1000).
func HillClimbRelative(c topology.Fabric, fs core.Collection, target rational.Vec, start core.MiddleAssignment, maxMoves int) (*RelativeResult, error) {
	if len(target) != len(fs) {
		return nil, fmt.Errorf("search: %d targets for %d flows", len(target), len(fs))
	}
	if maxMoves <= 0 {
		maxMoves = 1000
	}
	ma := start.Copy()
	a, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		return nil, err
	}
	best := minRatio(a, target)
	moves := 0
	for ; moves < maxMoves; moves++ {
		improved := false
		for fi := range fs {
			orig := ma[fi]
			for m := 1; m <= c.Size(); m++ {
				if m == orig {
					continue
				}
				ma[fi] = m
				cand, err := core.ClosMaxMinFair(c, fs, ma)
				if err != nil {
					return nil, err
				}
				if r := minRatio(cand, target); r.Cmp(best) > 0 {
					best, a = r, cand
					improved = true
					break
				}
				ma[fi] = orig
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	return &RelativeResult{Assignment: ma, Allocation: a, MinRatio: best, States: moves}, nil
}

// MinMiddlesToRoute probes the multirate-rearrangeability question of §6
// for a concrete instance: the smallest number m of middle switches such
// that the flows, offered with the given fixed demands, admit a feasible
// routing of the Clos network with the same ToR/server shape as c but m
// middle switches. It returns (m, true) on success within maxMiddles, or
// (0, false) if even maxMiddles middle switches do not suffice. workers
// follows the Options.Workers policy (0 = all cores, 1 = serial). ctx
// bounds the whole probe: cancellation propagates into every
// feasibility search and a cancelled probe returns ctx.Err().
//
// The classic conjecture (Chung–Ross [11]) places the worst case for
// arbitrary feasible macro-switch allocations at m = 2·serversPerToR − 1.
func MinMiddlesToRoute(ctx context.Context, c *topology.Clos, fs core.Collection, demands rational.Vec, maxMiddles, maxNodes, workers int) (int, bool, error) {
	if len(demands) != len(fs) {
		return 0, false, fmt.Errorf("search: %d demands for %d flows", len(demands), len(fs))
	}
	if maxMiddles < 1 {
		return 0, false, fmt.Errorf("search: maxMiddles %d < 1", maxMiddles)
	}
	for m := 1; m <= maxMiddles; m++ {
		cm, err := topology.NewGeneralClos(c.NumToRs(), c.ServersPerToR(), m)
		if err != nil {
			return 0, false, err
		}
		mapped, err := remapFlows(c, cm, fs)
		if err != nil {
			return 0, false, err
		}
		_, ok, err := FeasibleRouting(ctx, cm, mapped, demands, maxNodes, workers)
		if err != nil {
			if ctx.Err() != nil {
				return 0, false, ctx.Err()
			}
			return 0, false, fmt.Errorf("search: m=%d: %w", m, err)
		}
		if ok {
			return m, true, nil
		}
	}
	return 0, false, nil
}

// remapFlows translates a flow collection from one Clos network to
// another with the same ToR/server shape.
func remapFlows(from, to *topology.Clos, fs core.Collection) (core.Collection, error) {
	out := make(core.Collection, len(fs))
	for fi, f := range fs {
		si, sj, ok := from.SourceIndexOf(f.Src)
		if !ok {
			return nil, fmt.Errorf("search: flow %d source is not a server", fi)
		}
		di, dj, ok := from.DestIndexOf(f.Dst)
		if !ok {
			return nil, fmt.Errorf("search: flow %d destination is not a server", fi)
		}
		out[fi] = core.Flow{Src: to.Source(si, sj), Dst: to.Dest(di, dj)}
	}
	return out, nil
}
