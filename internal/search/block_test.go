package search

import (
	"testing"

	"closnet/internal/core"
	"closnet/internal/topology"
)

// blockObjectives are the search entry points whose objectives take the
// block fast path (both implement blockCapable).
func blockObjectives() map[string]func(topology.Fabric, core.Collection, Options) (*Result, error) {
	return map[string]func(topology.Fabric, core.Collection, Options) (*Result, error){
		"lex":        LexMaxMin,
		"throughput": ThroughputMaxMin,
	}
}

// TestBlockSearchEquivalence is the tentpole bit-identity proof of the
// block evaluation path: over the adversarial corpus instances, the
// block engine — default and deliberately ragged block sizes, serial
// and sharded worker counts {1, 2, 4} — returns exactly the
// assignment, allocation and state count of the per-state path
// (BlockSize < 0), for both blockCapable objectives.
func TestBlockSearchEquivalence(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		for objName, run := range blockObjectives() {
			baseline, err := run(in.c, in.fs, Options{Workers: 1, BlockSize: -1})
			if err != nil {
				t.Fatalf("%s/%s per-state baseline: %v", name, objName, err)
			}
			for _, workers := range []int{1, 2, 4} {
				for _, bs := range []int{0, 3} {
					res, err := run(in.c, in.fs, Options{Workers: workers, BlockSize: bs})
					if err != nil {
						t.Fatalf("%s/%s workers=%d block=%d: %v", name, objName, workers, bs, err)
					}
					checkSameResult(t, name+"/"+objName+" block", workers, baseline, res)
				}
			}
		}
	}
}

// TestBlockPrunedEquivalence: pruned mode evaluates its leaves through
// the block evaluator; the incumbent must still be bit-identical to the
// exhaustive per-state scan. States is not compared — pruned counts
// bound plus leaf evaluations by design.
func TestBlockPrunedEquivalence(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		for objName, run := range blockObjectives() {
			baseline, err := run(in.c, in.fs, Options{Workers: 1, BlockSize: -1})
			if err != nil {
				t.Fatalf("%s/%s per-state baseline: %v", name, objName, err)
			}
			pruned, err := run(in.c, in.fs, Options{Pruned: true})
			if err != nil {
				t.Fatalf("%s/%s pruned: %v", name, objName, err)
			}
			if !sameAssignment(baseline.Assignment, pruned.Assignment) {
				t.Errorf("%s/%s pruned: assignment %v != per-state %v",
					name, objName, pruned.Assignment, baseline.Assignment)
			}
			if !baseline.Allocation.Equal(pruned.Allocation) {
				t.Errorf("%s/%s pruned: allocation %v != per-state %v",
					name, objName, pruned.Allocation, baseline.Allocation)
			}
		}
	}
}

// TestBlockFullSpaceEquivalence: the block path is not canonical-space
// specific — full-space enumeration under ragged block evaluation
// matches the per-state full-space oracle exactly.
func TestBlockFullSpaceEquivalence(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		serial, err := LexMaxMin(in.c, in.fs, Options{FullSpace: true, Workers: 1, BlockSize: -1})
		if err != nil {
			t.Fatalf("%s serial full-space: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4} {
			res, err := LexMaxMin(in.c, in.fs, Options{FullSpace: true, Workers: workers, BlockSize: 7})
			if err != nil {
				t.Fatalf("%s full-space block workers=%d: %v", name, workers, err)
			}
			checkSameResult(t, name+"/full-space block", workers, serial, res)
		}
	}
}
