package search

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"closnet/internal/core"
	"closnet/internal/obs"
	"closnet/internal/topology"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the journal golden files")

// journalInstance is the small deterministic C_3 collection the journal
// tests search: four flows on distinct servers whose ToR pairs contend
// pairwise at the fabric, so the all-ones start allocates 1/2 per flow
// and only middle spreading reaches the all-ones optimum — the search
// improves its incumbent several times along the way.
func journalInstance() (*topology.Clos, core.Collection) {
	c := topology.MustClos(3)
	fs := core.Collection{}.
		Add(c.Source(1, 1), c.Dest(1, 1), 1).
		Add(c.Source(1, 2), c.Dest(2, 1), 1).
		Add(c.Source(2, 1), c.Dest(1, 2), 1).
		Add(c.Source(2, 2), c.Dest(2, 2), 1)
	return c, fs
}

// searchJournal runs a LexMaxMin search over the journal instance with a
// pinned run ID and a deterministic millisecond-step clock, returning
// the journal bytes and the search result.
func searchJournal(t *testing.T, workers int) ([]byte, *Result) {
	t.Helper()
	c, fs := journalInstance()
	var buf bytes.Buffer
	var tick int64
	j := obs.NewJournal(&buf,
		obs.WithRunID("golden"),
		obs.WithClock(func() int64 { tick += 1_000_000; return tick }))
	res, err := LexMaxMin(c, fs, Options{Workers: workers, Obs: &obs.Obs{J: j}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestJournalGoldenC3 pins the complete JSONL journal of a serial
// (Workers=1) canonical C_3 search byte-for-byte: the event ordering is
// the deterministic enumeration-and-merge order of the engine, the
// timestamps come from the injected clock, and every field set
// serializes with sorted keys. Regenerate with
//
//	go test ./internal/search -run TestJournalGoldenC3 -update-golden
func TestJournalGoldenC3(t *testing.T) {
	got, res := searchJournal(t, 1)

	golden := filepath.Join("testdata", "journal_c3.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("journal differs from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
	}

	// The final search.end event must report the same state count the
	// search returned.
	events := parseJournal(t, got)
	last := events[len(events)-1]
	if last.Ev != "search.end" {
		t.Fatalf("last event = %s, want search.end", last.Ev)
	}
	if states := int(last.Fields["states"].(float64)); states != res.States {
		t.Errorf("search.end states = %d, Result.States = %d", states, res.States)
	}
}

type journalEvent struct {
	TNs    int64          `json:"t_ns"`
	Run    string         `json:"run"`
	Ev     string         `json:"ev"`
	Fields map[string]any `json:"fields"`
}

func parseJournal(t *testing.T, data []byte) []journalEvent {
	t.Helper()
	var events []journalEvent
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var e journalEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("journal line %q: %v", sc.Text(), err)
		}
		if e.Run != "golden" {
			t.Fatalf("event carries run ID %q, want golden", e.Run)
		}
		events = append(events, e)
	}
	return events
}

// TestStopRankGaugeUniform pins the search.stop_rank gauge across every
// schedule on an instance whose throughput optimum is first attained at
// the LAST canonical rank: two flows between the same ToR pair of C_2
// collide on middle 1 (throughput 1) and reach the matching bound 2
// only once spread (canonical rank 1 of 2). The early exit then
// publishes stop rank == space total, the case the sharded path's old
// `stop < total` comparison dropped — identical runs journaled a zero
// gauge under some worker counts and the true rank under others. Every
// schedule must now report the same gauge, equal to the journaled
// search.stop_rank event and to Result.States.
func TestStopRankGaugeUniform(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}.
		Add(c.Source(1, 1), c.Dest(1, 1), 1).
		Add(c.Source(1, 2), c.Dest(1, 2), 1)

	type schedule struct {
		full    bool
		workers int
	}
	schedules := []schedule{{true, 1}, {true, 2}, {false, 1}, {false, 2}}
	for _, sc := range schedules {
		reg := obs.NewRegistry()
		var buf bytes.Buffer
		j := obs.NewJournal(&buf, obs.WithRunID("golden"))
		res, err := ThroughputMaxMin(c, fs, Options{
			FullSpace: sc.full, Workers: sc.workers, Obs: &obs.Obs{Reg: reg, J: j},
		})
		if err != nil {
			t.Fatalf("full=%v workers=%d: %v", sc.full, sc.workers, err)
		}
		// The optimum sits at rank 1 in both spaces, so every schedule
		// stops after exactly 2 states.
		if res.States != 2 {
			t.Errorf("full=%v workers=%d: states = %d, want 2", sc.full, sc.workers, res.States)
		}
		if got := reg.Gauge("search.stop_rank").Value(); got != 2 {
			t.Errorf("full=%v workers=%d: stop_rank gauge = %d, want 2", sc.full, sc.workers, got)
		}
		var eventRank int64 = -1
		for _, e := range parseJournal(t, buf.Bytes()) {
			if e.Ev == "search.stop_rank" {
				eventRank = int64(e.Fields["rank"].(float64))
			}
		}
		if eventRank != 2 {
			t.Errorf("full=%v workers=%d: search.stop_rank event rank = %d, want 2", sc.full, sc.workers, eventRank)
		}
	}
}

// TestJournalShardedOrdering: with several workers the per-state events
// interleave nondeterministically, but the structural order is fixed —
// search.start first, then every shard_start in ascending shard order
// (emitted before any worker runs), then the reduction's shard_merge
// events in ascending shard order, and search.end last. The merged
// result is bit-identical to the serial one.
func TestJournalShardedOrdering(t *testing.T) {
	data, res := searchJournal(t, 3)
	_, serial := searchJournal(t, 1)
	if !res.Allocation.Equal(serial.Allocation) || res.States != serial.States {
		t.Errorf("sharded result diverged from serial: %v/%d vs %v/%d",
			res.Allocation, res.States, serial.Allocation, serial.States)
	}

	events := parseJournal(t, data)
	if events[0].Ev != "search.start" {
		t.Errorf("first event = %s, want search.start", events[0].Ev)
	}
	if last := events[len(events)-1]; last.Ev != "search.end" {
		t.Errorf("last event = %s, want search.end", last.Ev)
	}
	var starts, merges []int
	lastStart := -1
	for i, e := range events {
		switch e.Ev {
		case "search.shard_start":
			starts = append(starts, int(e.Fields["shard"].(float64)))
			lastStart = i
		case "search.shard_merge":
			merges = append(merges, int(e.Fields["shard"].(float64)))
			if i < lastStart {
				t.Errorf("shard_merge at %d precedes shard_start at %d", i, lastStart)
			}
		}
	}
	for _, seq := range [][]int{starts, merges} {
		if len(seq) != 3 {
			t.Fatalf("want 3 shard events, got %v (starts=%v merges=%v)", seq, starts, merges)
		}
		for i, s := range seq {
			if s != i {
				t.Errorf("shard events out of order: %v", seq)
			}
		}
	}
}
