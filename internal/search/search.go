// Package search explores the routing space R of a Clos network: the set
// of all middle-switch assignments of a flow collection. It provides
// exact optimizers for the two routing objectives of §2.3 — lex-max-min
// fairness (Definition 2.4) and throughput-max-min fairness
// (Definition 2.5) — by exhaustive enumeration on small instances, plus
// hill-climbing and local-optimality certificates for instances whose
// routing space is too large to enumerate.
//
// The exhaustive optimizers enumerate in parallel by default, sharding
// the ranked assignment space over worker goroutines (see engine.go);
// the reduction is deterministic, so the result is bit-identical to the
// serial path for every worker count.
//
// Finding a lex-max-min fair allocation is NP-complete in general
// (Kleinberg–Tardos–Rabani [22]), so the exact optimizers guard against
// state-space explosion with a configurable cap.
package search

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"closnet/internal/core"
	"closnet/internal/matching"
	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// ErrTooManyStates is returned when an exhaustive search would exceed the
// configured state cap.
var ErrTooManyStates = errors.New("search: routing space exceeds state cap")

// DefaultMaxStates bounds exhaustive enumeration: n^|F| assignments.
const DefaultMaxStates = 1 << 21

// DefaultBlockSize is the number of states the enumeration hands the
// block evaluator per call when Options.BlockSize is 0. It matches the
// cancellation polling cadence (ctxCheckMask + 1), so block mode polls
// Options.Ctx exactly as often as the per-state path.
const DefaultBlockSize = ctxCheckMask + 1

// Options tunes the exhaustive optimizers.
type Options struct {
	// MaxStates caps the number of enumerated assignments
	// (0 = DefaultMaxStates). The cap applies to the space actually
	// enumerated — the canonical space by default — so instances whose
	// full space n^|F| overflows the cap remain searchable as long as
	// their canonical orbit count fits.
	MaxStates int
	// FullSpace disables the symmetry-canonical enumeration (canon.go)
	// and scans all n^|F| assignments. Both spaces produce bit-identical
	// results; the full space exists as the independent oracle the
	// equivalence tests cross-check canonicalization against.
	FullSpace bool
	// Pruned enables the bound-guided branch-and-bound over the
	// canonical space (branchbound.go): partial assignments are bounded
	// by a splittable relaxation and branches that cannot beat the
	// incumbent are never enumerated. The incumbent is bit-identical to
	// the exhaustive scan's for every instance; Result.States counts
	// bound plus leaf evaluations instead of enumerated states. The
	// mode is serial (Workers is ignored), supports the lex and
	// throughput objectives, and is mutually exclusive with FullSpace
	// (the canonical rank blocks are what the bound prunes).
	Pruned bool
	// Workers is the number of enumeration worker goroutines: 0 runs one
	// worker per available core, 1 forces the exact legacy serial path,
	// and k ≥ 2 uses exactly k workers. Every setting returns
	// bit-identical results (see engine.go).
	Workers int
	// BlockSize is the number of states each enumeration worker hands
	// the block evaluator per core.BlockEvaluator.EvalBlock call: 0 uses
	// DefaultBlockSize, k ≥ 2 exactly k, and a negative value (or 1)
	// disables block evaluation, restoring the per-state evaluation
	// path — kept as the baseline the block benchmarks compare against.
	// Every setting returns bit-identical results (see engine.go);
	// objectives without a Rat64 candidate screen (relative-max-min)
	// always evaluate per state.
	BlockSize int
	// Obs attaches the runtime observability layer to the search: state
	// and incumbent counters in the metrics registry, shard/merge/stop
	// events in the journal (see internal/obs). nil disables all
	// instrumentation; the hot path then pays a single nil check per
	// state and allocates nothing.
	Obs *obs.Obs
	// Ctx, when non-nil, bounds the search: the enumeration loop polls
	// it periodically (every ctxCheckMask+1 states per worker) and a
	// cancelled run returns ctx.Err() with the partial incumbent
	// discarded — no Result escapes a cancelled search, for any worker
	// count. nil means context.Background() (never cancelled).
	Ctx context.Context
}

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

// blockSize resolves the Options.BlockSize policy to the per-EvalBlock
// state count; 1 means the per-state path.
func (o Options) blockSize() int {
	switch {
	case o.BlockSize < 0:
		return 1
	case o.BlockSize == 0:
		return DefaultBlockSize
	default:
		return o.BlockSize
	}
}

func (o Options) context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Result is an optimizer outcome: the best assignment found, its max-min
// fair allocation, and the number of assignments examined. Under an
// early exit, States counts the deterministic enumeration prefix up to
// and including the stopping state — the same value for every worker
// count.
type Result struct {
	Assignment core.MiddleAssignment
	Allocation core.Allocation
	States     int
}

// stateCount returns n^flows, or -1 on overflow past cap.
func stateCount(n, flows, cap int) int {
	count := 1
	for i := 0; i < flows; i++ {
		count *= n
		if count > cap || count <= 0 {
			return -1
		}
	}
	return count
}

func tooManyStatesError(n, free, cap int) error {
	return fmt.Errorf("%w: %d^%d > %d", ErrTooManyStates, n, free, cap)
}

// enumerate calls visit for every middle assignment of numFlows flows in
// C_n, in rank order. The assignment passed to visit is reused across
// calls; visit must copy it to retain it. Returning false from visit
// aborts the walk immediately — no further states are generated or
// visited.
func enumerate(n, numFlows int, opts Options, visit func(core.MiddleAssignment) bool) error {
	if stateCount(n, numFlows, opts.maxStates()) < 0 {
		return tooManyStatesError(n, numFlows, opts.maxStates())
	}
	ma := core.UniformAssignment(numFlows, 1)
	if !visit(ma) {
		return nil
	}
	for {
		// Increment the base-n counter over positions [0, numFlows).
		pos := 0
		for pos < numFlows {
			if ma[pos] < n {
				ma[pos]++
				break
			}
			ma[pos] = 1
			pos++
		}
		if pos == numFlows {
			return nil
		}
		if !visit(ma) {
			return nil
		}
	}
}

// lexObjective orders allocations by their sorted vectors (Definition
// 2.4). The incumbent's sorted vector is cached, so each improvement
// sorts once instead of the incumbent being re-sorted against every
// candidate. Sorting works on a reused pointer buffer aliasing the
// candidate's elements — candidates are freshly allocated per state and
// never mutated afterwards, so no rationals are copied per comparison.
type lexObjective struct {
	bestSorted rational.Vec
	candSorted rational.Vec
	scratch64  []rational.Rat64
}

// fastImproves is the lex objective's Rat64 screen (blockCapable): the
// candidate lane is sorted into a reused scratch and lex-compared
// against the incumbent's sorted vector with allocation-free
// Rat64-vs-big.Rat comparisons. The verdict is exact (ok is always
// true: Rat64 comparison cannot overflow), so a rejection here is
// final and the allocation is never materialized.
func (o *lexObjective) fastImproves(rates []rational.Rat64) (bool, bool) {
	s := append(o.scratch64[:0], rates...)
	rational.Sort64(s)
	o.scratch64 = s
	if o.bestSorted == nil {
		return true, true
	}
	for i, r := range s {
		if i >= len(o.bestSorted) {
			return true, true
		}
		if c := r.CmpRat(o.bestSorted[i]); c != 0 {
			return c > 0, true
		}
	}
	return false, true
}

func (o *lexObjective) improves(cand core.Allocation) bool {
	s := append(o.candSorted[:0], cand...)
	sort.Slice(s, func(i, j int) bool { return rational.Cmp(s[i], s[j]) < 0 })
	o.candSorted = s
	if o.bestSorted != nil && rational.LexCompare(s, o.bestSorted) <= 0 {
		return false
	}
	return true
}

func (o *lexObjective) install(core.Allocation) {
	// Swap buffers: the candidate's sorted view becomes the incumbent's,
	// and the old incumbent backing is recycled as the next scratch.
	o.bestSorted, o.candSorted = o.candSorted, o.bestSorted[:0]
}

func (o *lexObjective) optimal() bool { return false }

// LexMaxMin finds a lex-max-min fair allocation (Definition 2.4): the
// max-min fair allocation whose sorted vector is lexicographically
// maximum over all routings. By default it enumerates exhaustively;
// with Options.Pruned it runs the bound-guided branch-and-bound, which
// returns the bit-identical incumbent while visiting fewer states.
func LexMaxMin(c topology.Fabric, fs core.Collection, opts Options) (*Result, error) {
	if opts.Pruned {
		if opts.FullSpace {
			return nil, errors.New("search: Pruned and FullSpace are mutually exclusive")
		}
		return lexBranchBound(c, fs, opts)
	}
	return runEngine(c, fs, opts, func() objective { return &lexObjective{} })
}

// throughputObjective orders allocations by total throughput, caching
// the incumbent's throughput, and stops the search once the incumbent
// reaches the Lemma 3.2 matching upper bound.
type throughputObjective struct {
	ub   *big.Rat
	best *big.Rat
	cand *big.Rat
}

// fastImproves is the throughput objective's Rat64 screen
// (blockCapable): the candidate's total throughput is summed on Rat64.
// An overflowing sum reports ok = false, deferring to the exact
// improves on the materialized allocation.
func (o *throughputObjective) fastImproves(rates []rational.Rat64) (bool, bool) {
	sum := rational.Zero64()
	for _, r := range rates {
		var ok bool
		if sum, ok = sum.Add(r); !ok {
			return false, false
		}
	}
	if o.best == nil {
		return true, true
	}
	return sum.CmpRat(o.best) > 0, true
}

func (o *throughputObjective) improves(a core.Allocation) bool {
	t := core.Throughput(a)
	if o.best != nil && t.Cmp(o.best) <= 0 {
		return false
	}
	o.cand = t
	return true
}

func (o *throughputObjective) install(core.Allocation) { o.best = o.cand }

func (o *throughputObjective) optimal() bool {
	return o.ub != nil && o.best != nil && o.best.Cmp(o.ub) >= 0
}

// ThroughputMaxMin finds a throughput-max-min fair allocation
// (Definition 2.5) by exhaustive enumeration: the max-min fair allocation
// whose throughput is maximum over all routings. The enumeration stops
// early once the throughput reaches the maximum matching size of G^MS,
// which upper-bounds T^T-MmF via T^T-MmF ≤ T^T-MT = T^MT (Lemma 5.2 and
// Lemma 3.2); the abort propagates to every enumeration worker, so the
// states after the stopping one are never evaluated.
func ThroughputMaxMin(c topology.Fabric, fs core.Collection, opts Options) (*Result, error) {
	if opts.Pruned {
		if opts.FullSpace {
			return nil, errors.New("search: Pruned and FullSpace are mutually exclusive")
		}
		return throughputBranchBound(c, fs, opts)
	}
	ubRat, err := matchingBound(c, fs)
	if err != nil {
		return nil, err
	}
	return runEngine(c, fs, opts, func() objective { return &throughputObjective{ub: ubRat} })
}

// matchingBound returns the Lemma 3.2 throughput ceiling |F'| when it
// applies, or nil when it does not. The ceiling's proof charges every
// flow against its endpoint server links, so it requires each flow
// endpoint to attach through a single finite link of capacity at most
// one — true for every fabric this library builds, but re-verified here
// so a future fabric with fatter server links cannot inherit an unsound
// early exit or branch-and-bound cap.
func matchingBound(c topology.Fabric, fs core.Collection) (*big.Rat, error) {
	net := c.Network()
	one := rational.One()
	inLinks := make(map[topology.NodeID]int)
	inOK := make(map[topology.NodeID]bool)
	needed := make(map[topology.NodeID]bool)
	for _, f := range fs {
		needed[f.Dst] = true
	}
	links := net.Links()
	for i := range links {
		l := &links[i]
		if needed[l.To] {
			inLinks[l.To]++
			inOK[l.To] = !l.Unbounded && l.Capacity.Cmp(one) <= 0
		}
	}
	for _, f := range fs {
		out := net.OutLinks(f.Src)
		if len(out) != 1 {
			return nil, nil
		}
		l := net.Link(out[0])
		if l.Unbounded || l.Capacity.Cmp(one) > 0 {
			return nil, nil
		}
		if inLinks[f.Dst] != 1 || !inOK[f.Dst] {
			return nil, nil
		}
	}
	ub, err := maxMatchingSize(fs)
	if err != nil {
		return nil, err
	}
	return rational.Int(int64(ub)), nil
}

// maxMatchingSize computes |F'| of G^MS for the collection, the
// throughput ceiling of Lemma 3.2.
func maxMatchingSize(fs core.Collection) (int, error) {
	srcIdx := make(map[topology.NodeID]int)
	dstIdx := make(map[topology.NodeID]int)
	g := matching.Graph{}
	for _, f := range fs {
		if _, ok := srcIdx[f.Src]; !ok {
			srcIdx[f.Src] = len(srcIdx)
		}
		if _, ok := dstIdx[f.Dst]; !ok {
			dstIdx[f.Dst] = len(dstIdx)
		}
		g.Edges = append(g.Edges, matching.Edge{Left: srcIdx[f.Src], Right: dstIdx[f.Dst]})
	}
	g.NumLeft, g.NumRight = len(srcIdx), len(dstIdx)
	m, err := matching.MaxMatching(g)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}

// Neighbor is a single-flow deviation that improves the current routing.
type Neighbor struct {
	Flow       int
	Middle     int
	Allocation core.Allocation
}

// ImprovingNeighbor scans all single-flow reroutes of ma and returns a
// lexicographically improving one, or nil if ma is locally lex-optimal.
// This mirrors the deviation analysis of the paper's Step 2 arguments
// (Lemma 4.6): a posited lex-max-min witness must at minimum admit no
// improving single-flow deviation.
func ImprovingNeighbor(c topology.Fabric, fs core.Collection, ma core.MiddleAssignment) (*Neighbor, error) {
	base, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		return nil, err
	}
	baseSorted := base.SortedCopy()
	cand := ma.Copy()
	for fi := range fs {
		orig := cand[fi]
		for m := 1; m <= c.Size(); m++ {
			if m == orig {
				continue
			}
			cand[fi] = m
			a, err := core.ClosMaxMinFair(c, fs, cand)
			if err != nil {
				return nil, err
			}
			if rational.LexCompare(a.SortedCopy(), baseSorted) > 0 {
				return &Neighbor{Flow: fi, Middle: m, Allocation: a}, nil
			}
		}
		cand[fi] = orig
	}
	return nil, nil
}

// IsLocalLexOptimal reports whether no single-flow reroute of ma improves
// the sorted max-min fair vector lexicographically.
func IsLocalLexOptimal(c topology.Fabric, fs core.Collection, ma core.MiddleAssignment) (bool, error) {
	nb, err := ImprovingNeighbor(c, fs, ma)
	if err != nil {
		return false, err
	}
	return nb == nil, nil
}

// HillClimbLex repeatedly applies improving single-flow deviations until
// none exists, returning the locally lex-optimal routing reached and the
// number of moves taken. maxMoves guards against long walks (0 means
// 1000).
func HillClimbLex(c topology.Fabric, fs core.Collection, start core.MiddleAssignment, maxMoves int) (*Result, int, error) {
	if maxMoves <= 0 {
		maxMoves = 1000
	}
	ma := start.Copy()
	moves := 0
	for ; moves < maxMoves; moves++ {
		nb, err := ImprovingNeighbor(c, fs, ma)
		if err != nil {
			return nil, moves, err
		}
		if nb == nil {
			a, err := core.ClosMaxMinFair(c, fs, ma)
			if err != nil {
				return nil, moves, err
			}
			return &Result{Assignment: ma, Allocation: a, States: moves}, moves, nil
		}
		ma[nb.Flow] = nb.Middle
	}
	return nil, moves, fmt.Errorf("search: hill climb exceeded %d moves", maxMoves)
}
