// Package search explores the routing space R of a Clos network: the set
// of all middle-switch assignments of a flow collection. It provides
// exact optimizers for the two routing objectives of §2.3 — lex-max-min
// fairness (Definition 2.4) and throughput-max-min fairness
// (Definition 2.5) — by exhaustive enumeration on small instances, plus
// hill-climbing and local-optimality certificates for instances whose
// routing space is too large to enumerate.
//
// Finding a lex-max-min fair allocation is NP-complete in general
// (Kleinberg–Tardos–Rabani [22]), so the exact optimizers guard against
// state-space explosion with a configurable cap.
package search

import (
	"errors"
	"fmt"

	"closnet/internal/core"
	"closnet/internal/matching"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// ErrTooManyStates is returned when an exhaustive search would exceed the
// configured state cap.
var ErrTooManyStates = errors.New("search: routing space exceeds state cap")

// DefaultMaxStates bounds exhaustive enumeration: n^|F| assignments.
const DefaultMaxStates = 1 << 21

// Options tunes the exhaustive optimizers.
type Options struct {
	// MaxStates caps the number of enumerated assignments
	// (0 = DefaultMaxStates).
	MaxStates int
	// FixFirst pins flow 0 to middle switch 1, an n-fold symmetry
	// reduction that is sound for both objectives because the topology
	// and both objectives are invariant under permuting middle switches.
	FixFirst bool
}

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

// Result is an optimizer outcome: the best assignment found, its max-min
// fair allocation, and the number of assignments examined.
type Result struct {
	Assignment core.MiddleAssignment
	Allocation core.Allocation
	States     int
}

// stateCount returns n^flows, or -1 on overflow past cap.
func stateCount(n, flows, cap int) int {
	count := 1
	for i := 0; i < flows; i++ {
		count *= n
		if count > cap || count <= 0 {
			return -1
		}
	}
	return count
}

// enumerate calls visit for every middle assignment of numFlows flows in
// C_n (optionally with flow 0 pinned to middle 1). The assignment passed
// to visit is reused across calls; visit must copy it to retain it.
func enumerate(n, numFlows int, opts Options, visit func(core.MiddleAssignment)) error {
	free := numFlows
	if opts.FixFirst && numFlows > 0 {
		free--
	}
	if stateCount(n, free, opts.maxStates()) < 0 {
		return fmt.Errorf("%w: %d^%d > %d", ErrTooManyStates, n, free, opts.maxStates())
	}
	ma := core.UniformAssignment(numFlows, 1)
	visit(ma)
	start := 0
	if opts.FixFirst {
		start = 1
	}
	for {
		// Increment the base-n counter over positions [start, numFlows).
		pos := start
		for pos < numFlows {
			if ma[pos] < n {
				ma[pos]++
				break
			}
			ma[pos] = 1
			pos++
		}
		if pos == numFlows {
			return nil
		}
		visit(ma)
	}
}

// LexMaxMin finds a lex-max-min fair allocation (Definition 2.4) by
// exhaustive enumeration: the max-min fair allocation whose sorted vector
// is lexicographically maximum over all routings.
func LexMaxMin(c *topology.Clos, fs core.Collection, opts Options) (*Result, error) {
	return optimize(c, fs, opts, func(best, cand core.Allocation) bool {
		return rational.LexCompareSorted(cand, best) > 0
	}, nil)
}

// ThroughputMaxMin finds a throughput-max-min fair allocation
// (Definition 2.5) by exhaustive enumeration: the max-min fair allocation
// whose throughput is maximum over all routings. The enumeration stops
// early once the throughput reaches the maximum matching size of G^MS,
// which upper-bounds T^T-MmF via T^T-MmF ≤ T^T-MT = T^MT (Lemma 5.2 and
// Lemma 3.2).
func ThroughputMaxMin(c *topology.Clos, fs core.Collection, opts Options) (*Result, error) {
	ub, err := maxMatchingSize(fs)
	if err != nil {
		return nil, err
	}
	ubRat := rational.Int(int64(ub))
	return optimize(c, fs, opts, func(best, cand core.Allocation) bool {
		return core.Throughput(cand).Cmp(core.Throughput(best)) > 0
	}, func(best core.Allocation) bool {
		return core.Throughput(best).Cmp(ubRat) >= 0
	})
}

// maxMatchingSize computes |F'| of G^MS for the collection, the
// throughput ceiling of Lemma 3.2.
func maxMatchingSize(fs core.Collection) (int, error) {
	srcIdx := make(map[topology.NodeID]int)
	dstIdx := make(map[topology.NodeID]int)
	g := matching.Graph{}
	for _, f := range fs {
		if _, ok := srcIdx[f.Src]; !ok {
			srcIdx[f.Src] = len(srcIdx)
		}
		if _, ok := dstIdx[f.Dst]; !ok {
			dstIdx[f.Dst] = len(dstIdx)
		}
		g.Edges = append(g.Edges, matching.Edge{Left: srcIdx[f.Src], Right: dstIdx[f.Dst]})
	}
	g.NumLeft, g.NumRight = len(srcIdx), len(dstIdx)
	m, err := matching.MaxMatching(g)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}

func optimize(c *topology.Clos, fs core.Collection, opts Options, better func(best, cand core.Allocation) bool, stopWhen func(best core.Allocation) bool) (*Result, error) {
	if len(fs) == 0 {
		return &Result{Assignment: core.MiddleAssignment{}, Allocation: core.Allocation{}, States: 1}, nil
	}
	var (
		res     Result
		innerEr error
		stopped bool
	)
	err := enumerate(c.Size(), len(fs), opts, func(ma core.MiddleAssignment) {
		if innerEr != nil || stopped {
			return
		}
		a, err := core.ClosMaxMinFair(c, fs, ma)
		if err != nil {
			innerEr = err
			return
		}
		res.States++
		if res.Allocation == nil || better(res.Allocation, a) {
			res.Allocation = a
			res.Assignment = ma.Copy()
			if stopWhen != nil && stopWhen(res.Allocation) {
				stopped = true
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if innerEr != nil {
		return nil, innerEr
	}
	return &res, nil
}

// Neighbor is a single-flow deviation that improves the current routing.
type Neighbor struct {
	Flow       int
	Middle     int
	Allocation core.Allocation
}

// ImprovingNeighbor scans all single-flow reroutes of ma and returns a
// lexicographically improving one, or nil if ma is locally lex-optimal.
// This mirrors the deviation analysis of the paper's Step 2 arguments
// (Lemma 4.6): a posited lex-max-min witness must at minimum admit no
// improving single-flow deviation.
func ImprovingNeighbor(c *topology.Clos, fs core.Collection, ma core.MiddleAssignment) (*Neighbor, error) {
	base, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		return nil, err
	}
	cand := ma.Copy()
	for fi := range fs {
		orig := cand[fi]
		for m := 1; m <= c.Size(); m++ {
			if m == orig {
				continue
			}
			cand[fi] = m
			a, err := core.ClosMaxMinFair(c, fs, cand)
			if err != nil {
				return nil, err
			}
			if rational.LexCompareSorted(a, base) > 0 {
				return &Neighbor{Flow: fi, Middle: m, Allocation: a}, nil
			}
		}
		cand[fi] = orig
	}
	return nil, nil
}

// IsLocalLexOptimal reports whether no single-flow reroute of ma improves
// the sorted max-min fair vector lexicographically.
func IsLocalLexOptimal(c *topology.Clos, fs core.Collection, ma core.MiddleAssignment) (bool, error) {
	nb, err := ImprovingNeighbor(c, fs, ma)
	if err != nil {
		return false, err
	}
	return nb == nil, nil
}

// HillClimbLex repeatedly applies improving single-flow deviations until
// none exists, returning the locally lex-optimal routing reached and the
// number of moves taken. maxMoves guards against long walks (0 means
// 1000).
func HillClimbLex(c *topology.Clos, fs core.Collection, start core.MiddleAssignment, maxMoves int) (*Result, int, error) {
	if maxMoves <= 0 {
		maxMoves = 1000
	}
	ma := start.Copy()
	moves := 0
	for ; moves < maxMoves; moves++ {
		nb, err := ImprovingNeighbor(c, fs, ma)
		if err != nil {
			return nil, moves, err
		}
		if nb == nil {
			a, err := core.ClosMaxMinFair(c, fs, ma)
			if err != nil {
				return nil, moves, err
			}
			return &Result{Assignment: ma, Allocation: a, States: moves}, moves, nil
		}
		ma[nb.Flow] = nb.Middle
	}
	return nil, moves, fmt.Errorf("search: hill climb exceeded %d moves", maxMoves)
}
