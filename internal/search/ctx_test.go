package search

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/topology"
)

// cancellingObjective cancels its context after a fixed number of
// candidate evaluations — a deterministic stand-in for an abandoned
// request cancelling mid-enumeration. The counter is shared across the
// per-worker objective clones, so it is atomic.
type cancellingObjective struct {
	inner  objective
	cancel context.CancelFunc
	after  int64
	seen   *atomic.Int64
}

func (o *cancellingObjective) improves(a core.Allocation) bool {
	if o.seen.Add(1) == o.after {
		o.cancel()
	}
	return o.inner.improves(a)
}

func (o *cancellingObjective) install(a core.Allocation) { o.inner.install(a) }
func (o *cancellingObjective) optimal() bool             { return o.inner.optimal() }

// ctxTestInstance is a C_3 instance with 6 flows: 3^6 = 729 full states
// (canonical 122), enough for the periodic ctx poll (every 64 states) to
// fire mid-enumeration while staying fast.
func ctxTestInstance(t *testing.T) (*topology.Clos, core.Collection) {
	t.Helper()
	c, err := topology.NewClos(3)
	if err != nil {
		t.Fatal(err)
	}
	fs := core.Collection{
		{Src: c.Source(1, 1), Dst: c.Dest(1, 1)},
		{Src: c.Source(1, 2), Dst: c.Dest(1, 1)},
		{Src: c.Source(2, 1), Dst: c.Dest(1, 2)},
		{Src: c.Source(2, 2), Dst: c.Dest(2, 1)},
		{Src: c.Source(3, 1), Dst: c.Dest(2, 2)},
		{Src: c.Source(3, 2), Dst: c.Dest(3, 1)},
	}
	return c, fs
}

func TestLexMaxMinPreCancelled(t *testing.T) {
	c, fs := ctxTestInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		for _, full := range []bool{false, true} {
			res, err := LexMaxMin(c, fs, Options{Ctx: ctx, Workers: workers, FullSpace: full})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d full=%v: err = %v, want context.Canceled", workers, full, err)
			}
			if res != nil {
				t.Errorf("workers=%d full=%v: partial result %v escaped a cancelled search", workers, full, res)
			}
		}
	}
}

func TestEngineCancelledMidRun(t *testing.T) {
	c, fs := ctxTestInstance(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		res, err := runEngine(c, fs, Options{Ctx: ctx, Workers: workers}, func() objective {
			return &cancellingObjective{inner: &lexObjective{}, cancel: cancel, after: 3, seen: &seen}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Errorf("workers=%d: partial incumbent %v escaped", workers, res)
		}
	}
}

func TestEngineSerialLegacyCancelledMidRun(t *testing.T) {
	c, fs := ctxTestInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	res, err := runEngine(c, fs, Options{Ctx: ctx, Workers: 1, FullSpace: true}, func() objective {
		return &cancellingObjective{inner: &lexObjective{}, cancel: cancel, after: 3, seen: &seen}
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("partial incumbent %v escaped the serial legacy path", res)
	}
}

func TestNilCtxMeansBackground(t *testing.T) {
	c, fs := ctxTestInstance(t)
	res, err := LexMaxMin(c, fs, Options{})
	if err != nil {
		t.Fatalf("nil-Ctx search failed: %v", err)
	}
	if res == nil || res.Assignment == nil {
		t.Fatal("nil-Ctx search returned no result")
	}
	// An explicit Background context is bit-identical to the nil default.
	res2, err := LexMaxMin(c, fs, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Allocation.Equal(res.Allocation) || res2.States != res.States {
		t.Error("explicit Background context changed the result")
	}
}

func TestFeasibleRoutingPreCancelled(t *testing.T) {
	in, err := adversary.Theorem42(3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 3} {
		ma, ok, err := FeasibleRouting(ctx, in.Clos, in.Flows, in.MacroRates, 0, workers)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ma != nil || ok {
			t.Errorf("workers=%d: cancelled query reported an answer (%v, %v)", workers, ma, ok)
		}
	}
}

func TestMinMiddlesToRoutePreCancelled(t *testing.T) {
	in, err := adversary.Theorem42(3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, ok, err := MinMiddlesToRoute(ctx, in.Clos, in.Flows, in.MacroRates, 5, 0, 1)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ok {
		t.Error("cancelled probe reported success")
	}
}

func TestFeasibleRoutingDeadlinePropagates(t *testing.T) {
	in, err := adversary.Theorem42(3)
	if err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline must surface as DeadlineExceeded, not
	// as a feasibility verdict.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, ok, err := FeasibleRouting(ctx, in.Clos, in.Flows, in.MacroRates, 0, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if ok {
		t.Error("expired query reported an answer")
	}
}
