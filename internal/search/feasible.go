package search

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// ErrSearchBudget is returned when the feasibility backtracker exceeds
// its node budget before reaching a certified answer.
var ErrSearchBudget = errors.New("search: feasibility search exceeded node budget")

// DefaultMaxNodes bounds the feasibility backtracker's search tree.
const DefaultMaxNodes = 5_000_000

// FeasibleRouting decides whether the flows, offered with the given fixed
// demands (typically their macro-switch rates, as in §4.1), admit a
// routing of C_n in which every link capacity is satisfied. It returns a
// witness assignment if one exists. The answer is exact: when it reports
// infeasibility the whole (pruned) space was refuted.
//
// The search assigns flows in descending demand order with exact
// remaining-capacity pruning on fabric links, mirroring the available-
// capacity argument of Example 4.1. Server links are checked up front:
// their loads do not depend on the routing.
func FeasibleRouting(c *topology.Clos, fs core.Collection, demands rational.Vec, maxNodes int) (core.MiddleAssignment, bool, error) {
	var witness core.MiddleAssignment
	found := false
	err := forEachFeasible(c, fs, demands, maxNodes, func(ma core.MiddleAssignment) bool {
		witness = ma.Copy()
		found = true
		return false // stop at first witness
	})
	if err != nil {
		return nil, false, err
	}
	return witness, found, nil
}

// ForEachFeasibleRouting enumerates the feasible routings for the given
// demands, invoking visit for each; visit returns false to stop early.
// The assignment passed to visit is only valid during the call. It is
// used to check structural claims quantified over all feasible routings,
// such as Claim 4.5.
//
// Enumeration is up to interchangeability: flows with the same input
// switch, output switch and demand are indistinguishable to every fabric
// constraint, so only one canonical representative per equivalence class
// of routings is visited (within a class, middles are assigned in
// non-decreasing order). Any structural property invariant under
// permuting identical flows — such as the counting conditions of
// Claim 4.5 — is therefore checked over all feasible routings.
func ForEachFeasibleRouting(c *topology.Clos, fs core.Collection, demands rational.Vec, maxNodes int, visit func(core.MiddleAssignment) bool) error {
	return forEachFeasible(c, fs, demands, maxNodes, visit)
}

func forEachFeasible(c *topology.Clos, fs core.Collection, demands rational.Vec, maxNodes int, visit func(core.MiddleAssignment) bool) error {
	if len(demands) != len(fs) {
		return fmt.Errorf("search: %d demands for %d flows", len(demands), len(fs))
	}
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	n := c.Size()
	tors := c.NumToRs()
	nf := len(fs)

	// Locate each flow's input and output switch.
	inIdx := make([]int, nf)
	outIdx := make([]int, nf)
	for fi, f := range fs {
		i, ok := c.InputOf(f.Src)
		if !ok {
			return fmt.Errorf("search: flow %d source is not a server", fi)
		}
		o, ok := c.OutputOf(f.Dst)
		if !ok {
			return fmt.Errorf("search: flow %d destination is not a server", fi)
		}
		inIdx[fi], outIdx[fi] = i, o
		if demands[fi].Sign() < 0 {
			return fmt.Errorf("search: flow %d has negative demand", fi)
		}
	}

	// Server links are independent of routing: check them first.
	one := rational.One()
	bySource := make(map[topology.NodeID]*big.Rat)
	byDest := make(map[topology.NodeID]*big.Rat)
	for fi, f := range fs {
		addTo(bySource, f.Src, demands[fi])
		addTo(byDest, f.Dst, demands[fi])
	}
	for _, total := range bySource {
		if total.Cmp(one) > 0 {
			return nil // infeasible outside the network: no routing helps
		}
	}
	for _, total := range byDest {
		if total.Cmp(one) > 0 {
			return nil
		}
	}

	// Order flows by descending demand so large flows are placed first —
	// they prune hardest — and group fabric-interchangeable flows (same
	// input switch, output switch and demand) consecutively so the
	// canonical non-decreasing-middle constraint applies within runs.
	order := make([]int, nf)
	for i := range order {
		order[i] = i
	}
	groupLess := func(a, b int) bool {
		if c := demands[a].Cmp(demands[b]); c != 0 {
			return c > 0
		}
		if inIdx[a] != inIdx[b] {
			return inIdx[a] < inIdx[b]
		}
		return outIdx[a] < outIdx[b]
	}
	sort.SliceStable(order, func(a, b int) bool { return groupLess(order[a], order[b]) })

	// sameGroup[k] reports that order[k] is fabric-interchangeable with
	// order[k-1]; its middle must then be ≥ the predecessor's.
	sameGroup := make([]bool, nf)
	for k := 1; k < nf; k++ {
		a, b := order[k-1], order[k]
		sameGroup[k] = inIdx[a] == inIdx[b] && outIdx[a] == outIdx[b] &&
			demands[a].Cmp(demands[b]) == 0
	}

	// remIn[i-1][m-1] is the remaining capacity of I_i -> M_m; remOut
	// likewise for M_m -> O_i.
	remIn := capacityGrid(tors, n)
	remOut := capacityGrid(tors, n)

	ma := make(core.MiddleAssignment, nf)
	nodes := 0
	stopped := false

	var place func(k int) error
	place = func(k int) error {
		if stopped {
			return nil
		}
		if k == nf {
			if !visit(ma) {
				stopped = true
			}
			return nil
		}
		fi := order[k]
		d := demands[fi]
		in := remIn[inIdx[fi]-1]
		out := remOut[outIdx[fi]-1]
		mLo := 0
		if sameGroup[k] {
			mLo = ma[order[k-1]] - 1
		}
		for m := mLo; m < n; m++ {
			if in[m].Cmp(d) < 0 || out[m].Cmp(d) < 0 {
				continue
			}
			nodes++
			if nodes > maxNodes {
				return ErrSearchBudget
			}
			in[m].Sub(in[m], d)
			out[m].Sub(out[m], d)
			ma[fi] = m + 1
			err := place(k + 1)
			in[m].Add(in[m], d)
			out[m].Add(out[m], d)
			if err != nil {
				return err
			}
			if stopped {
				return nil
			}
		}
		return nil
	}
	return place(0)
}

func addTo(m map[topology.NodeID]*big.Rat, key topology.NodeID, v *big.Rat) {
	if cur, ok := m[key]; ok {
		cur.Add(cur, v)
		return
	}
	m[key] = rational.Copy(v)
}

func capacityGrid(rows, cols int) [][]*big.Rat {
	g := make([][]*big.Rat, rows)
	for i := range g {
		g[i] = make([]*big.Rat, cols)
		for j := range g[i] {
			g[i][j] = rational.One()
		}
	}
	return g
}
