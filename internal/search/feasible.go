package search

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"sync/atomic"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// ErrSearchBudget is returned when the feasibility backtracker exceeds
// its node budget before reaching a certified answer.
var ErrSearchBudget = errors.New("search: feasibility search exceeded node budget")

// DefaultMaxNodes bounds the feasibility backtracker's search tree.
const DefaultMaxNodes = 5_000_000

// FeasibleRouting decides whether the flows, offered with the given fixed
// demands (typically their macro-switch rates, as in §4.1), admit a
// routing of C_n in which every link capacity is satisfied. It returns a
// witness assignment if one exists. The answer is exact: when it reports
// infeasibility the whole (pruned) space was refuted.
//
// The search assigns flows in descending demand order with exact
// remaining-capacity pruning on fabric links, mirroring the available-
// capacity argument of Example 4.1. Server links are checked up front:
// their loads do not depend on the routing.
//
// workers follows the Options.Workers policy: 0 shards the first placed
// flow's middle-switch branches over one worker per core, 1 forces the
// serial backtracker. When the search completes within the node budget
// the answer — including the witness — is identical for every worker
// count: the witness returned is always the depth-first-earliest one of
// the lowest feasible branch, and a branch's witness is only reported
// once every lower branch has been fully refuted. The node budget is
// shared across workers; because workers explore speculatively, a
// parallel run may in rare cases exhaust a budget a serial run would
// not, but never the converse.
//
// ctx bounds the search: the backtracker polls it periodically (every
// ctxNodeCheckMask+1 nodes) and a cancelled run returns ctx.Err() with
// any partial witness discarded.
func FeasibleRouting(ctx context.Context, c *topology.Clos, fs core.Collection, demands rational.Vec, maxNodes, workers int) (core.MiddleAssignment, bool, error) {
	p, err := newFeasibleProblem(ctx, c, fs, demands, maxNodes)
	if err != nil {
		return nil, false, err
	}
	if p == nil {
		return nil, false, nil // server links overloaded: no routing helps
	}
	w := Options{Workers: workers}.workerCount()
	if w > p.n {
		w = p.n
	}
	if w <= 1 || p.nf == 0 {
		var witness core.MiddleAssignment
		found := false
		err := p.search(func(ma core.MiddleAssignment) bool {
			witness = ma.Copy()
			found = true
			return false // stop at first witness
		})
		if err != nil {
			return nil, false, err
		}
		if err := ctx.Err(); err != nil {
			// Mirror the parallel path: a cancelled query never reports
			// an answer, even when the walk finished first.
			return nil, false, err
		}
		return witness, found, nil
	}
	return p.parallelWitness(w)
}

// ForEachFeasibleRouting enumerates the feasible routings for the given
// demands, invoking visit for each; visit returns false to stop early.
// The assignment passed to visit is only valid during the call. It is
// used to check structural claims quantified over all feasible routings,
// such as Claim 4.5. Enumeration is always serial and in depth-first
// order, so visitors observe a deterministic sequence.
//
// Enumeration is up to interchangeability: flows with the same input
// switch, output switch and demand are indistinguishable to every fabric
// constraint, so only one canonical representative per equivalence class
// of routings is visited (within a class, middles are assigned in
// non-decreasing order). Any structural property invariant under
// permuting identical flows — such as the counting conditions of
// Claim 4.5 — is therefore checked over all feasible routings.
func ForEachFeasibleRouting(c *topology.Clos, fs core.Collection, demands rational.Vec, maxNodes int, visit func(core.MiddleAssignment) bool) error {
	p, err := newFeasibleProblem(context.Background(), c, fs, demands, maxNodes)
	if err != nil {
		return err
	}
	if p == nil {
		return nil
	}
	return p.search(visit)
}

// feasibleProblem is the routing-independent part of a feasibility
// query, shared by the serial backtracker and every parallel branch
// worker: flow endpoints resolved to switch indices, the placement
// order, the interchangeability runs, and the shared node budget.
type feasibleProblem struct {
	n, tors, nf int
	demands     rational.Vec
	inIdx       []int
	outIdx      []int
	order       []int
	sameGroup   []bool

	ctx    context.Context
	done   <-chan struct{}
	budget int64
	nodes  atomic.Int64
}

// ctxNodeCheckMask sets the backtracker's cancellation polling cadence:
// the shared node counter triggers a poll every ctxNodeCheckMask+1
// nodes across all workers.
const ctxNodeCheckMask = 255

// checkCtx polls the query's context at the given node count and
// returns ctx.Err() when the deadline passed or the caller cancelled.
func (p *feasibleProblem) checkCtx(nodes int64) error {
	if p.done == nil || nodes&ctxNodeCheckMask != 0 {
		return nil
	}
	select {
	case <-p.done:
		return p.ctx.Err()
	default:
		return nil
	}
}

// newFeasibleProblem validates the query and precomputes the placement
// order. It returns (nil, nil) when a server link is overloaded — the
// demands are infeasible regardless of routing.
func newFeasibleProblem(ctx context.Context, c *topology.Clos, fs core.Collection, demands rational.Vec, maxNodes int) (*feasibleProblem, error) {
	if len(demands) != len(fs) {
		return nil, fmt.Errorf("search: %d demands for %d flows", len(demands), len(fs))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	p := &feasibleProblem{
		n:       c.Size(),
		tors:    c.NumToRs(),
		nf:      len(fs),
		demands: demands,
		ctx:     ctx,
		done:    ctx.Done(),
		budget:  int64(maxNodes),
	}

	// Locate each flow's input and output switch.
	p.inIdx = make([]int, p.nf)
	p.outIdx = make([]int, p.nf)
	for fi, f := range fs {
		i, ok := c.InputOf(f.Src)
		if !ok {
			return nil, fmt.Errorf("search: flow %d source is not a server", fi)
		}
		o, ok := c.OutputOf(f.Dst)
		if !ok {
			return nil, fmt.Errorf("search: flow %d destination is not a server", fi)
		}
		p.inIdx[fi], p.outIdx[fi] = i, o
		if demands[fi].Sign() < 0 {
			return nil, fmt.Errorf("search: flow %d has negative demand", fi)
		}
	}

	// Server links are independent of routing: check them first.
	one := rational.One()
	bySource := make(map[topology.NodeID]*big.Rat)
	byDest := make(map[topology.NodeID]*big.Rat)
	for fi, f := range fs {
		addTo(bySource, f.Src, demands[fi])
		addTo(byDest, f.Dst, demands[fi])
	}
	for _, total := range bySource {
		if total.Cmp(one) > 0 {
			return nil, nil
		}
	}
	for _, total := range byDest {
		if total.Cmp(one) > 0 {
			return nil, nil
		}
	}

	// Order flows by descending demand so large flows are placed first —
	// they prune hardest — and group fabric-interchangeable flows (same
	// input switch, output switch and demand) consecutively so the
	// canonical non-decreasing-middle constraint applies within runs.
	p.order = make([]int, p.nf)
	for i := range p.order {
		p.order[i] = i
	}
	groupLess := func(a, b int) bool {
		if c := demands[a].Cmp(demands[b]); c != 0 {
			return c > 0
		}
		if p.inIdx[a] != p.inIdx[b] {
			return p.inIdx[a] < p.inIdx[b]
		}
		return p.outIdx[a] < p.outIdx[b]
	}
	sort.SliceStable(p.order, func(a, b int) bool { return groupLess(p.order[a], p.order[b]) })

	// sameGroup[k] reports that order[k] is fabric-interchangeable with
	// order[k-1]; its middle must then be ≥ the predecessor's.
	p.sameGroup = make([]bool, p.nf)
	for k := 1; k < p.nf; k++ {
		a, b := p.order[k-1], p.order[k]
		p.sameGroup[k] = p.inIdx[a] == p.inIdx[b] && p.outIdx[a] == p.outIdx[b] &&
			demands[a].Cmp(demands[b]) == 0
	}
	return p, nil
}

// search runs the serial backtracker over every first-flow branch.
func (p *feasibleProblem) search(visit func(core.MiddleAssignment) bool) error {
	w := &feasibleWalker{p: p, firstLo: 0, firstHi: p.n, visit: visit}
	return w.run()
}

// feasibleWalker is one depth-first exploration of the placement tree,
// restricted at depth 0 to middles [firstLo, firstHi). Each walker owns
// its capacity grids and assignment buffer; the node budget lives on the
// shared problem.
type feasibleWalker struct {
	p                *feasibleProblem
	firstLo, firstHi int
	visit            func(core.MiddleAssignment) bool
	// cancel, when non-nil, is polled at every node; returning true
	// abandons the walk without error (used when a lower parallel branch
	// has already produced a witness).
	cancel func() bool

	remIn, remOut [][]*big.Rat
	ma            core.MiddleAssignment
	stopped       bool
	cancelled     bool
}

func (w *feasibleWalker) run() error {
	p := w.p
	// remIn[i-1][m-1] is the remaining capacity of I_i -> M_m; remOut
	// likewise for M_m -> O_i.
	w.remIn = capacityGrid(p.tors, p.n)
	w.remOut = capacityGrid(p.tors, p.n)
	w.ma = make(core.MiddleAssignment, p.nf)
	return w.place(0)
}

func (w *feasibleWalker) place(k int) error {
	if w.stopped || w.cancelled {
		return nil
	}
	if w.cancel != nil && w.cancel() {
		w.cancelled = true
		return nil
	}
	p := w.p
	if k == p.nf {
		if !w.visit(w.ma) {
			w.stopped = true
		}
		return nil
	}
	fi := p.order[k]
	d := p.demands[fi]
	in := w.remIn[p.inIdx[fi]-1]
	out := w.remOut[p.outIdx[fi]-1]
	mLo, mHi := 0, p.n
	if k == 0 {
		mLo, mHi = w.firstLo, w.firstHi
	} else if p.sameGroup[k] {
		mLo = w.ma[p.order[k-1]] - 1
	}
	for m := mLo; m < mHi; m++ {
		if in[m].Cmp(d) < 0 || out[m].Cmp(d) < 0 {
			continue
		}
		nodes := p.nodes.Add(1)
		if nodes > p.budget {
			return ErrSearchBudget
		}
		if err := p.checkCtx(nodes); err != nil {
			return err
		}
		in[m].Sub(in[m], d)
		out[m].Sub(out[m], d)
		w.ma[fi] = m + 1
		err := w.place(k + 1)
		in[m].Add(in[m], d)
		out[m].Add(out[m], d)
		if err != nil {
			return err
		}
		if w.stopped || w.cancelled {
			return nil
		}
	}
	return nil
}

// parallelWitness shards the first placed flow's middle branches over
// workers and returns the deterministic first witness: the depth-first
// witness of the lowest feasible branch. A worker abandons a branch as
// soon as a strictly lower branch has published a witness; abandoning
// never hides the answer because a published witness at branch b makes
// every branch > b irrelevant, and branches < b keep running to
// completion.
func (p *feasibleProblem) parallelWitness(workers int) (core.MiddleAssignment, bool, error) {
	var bestBranch atomic.Int64
	bestBranch.Store(int64(p.n))
	witnesses := make([]core.MiddleAssignment, p.n)
	refuted := make([]bool, p.n) // branch fully explored without a witness

	var wg sync.WaitGroup
	chunk, rem := p.n/workers, p.n%workers
	lo := 0
	for i := 0; i < workers; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for b := lo; b < hi; b++ {
				if int64(b) > bestBranch.Load() {
					return // a lower branch already holds a witness
				}
				w := &feasibleWalker{
					p:       p,
					firstLo: b,
					firstHi: b + 1,
					cancel:  func() bool { return int64(b) > bestBranch.Load() },
					visit: func(ma core.MiddleAssignment) bool {
						witnesses[b] = ma.Copy()
						return false
					},
				}
				if err := w.run(); err != nil {
					// Budget exhaustion is reported at merge (a lower
					// branch's witness may make it irrelevant); context
					// cancellation is sticky and checked there too.
					return
				}
				if witnesses[b] != nil {
					// Publish and stop: higher branches cannot win.
					for {
						cur := bestBranch.Load()
						if int64(b) >= cur || bestBranch.CompareAndSwap(cur, int64(b)) {
							break
						}
					}
					return
				}
				if !w.cancelled {
					refuted[b] = true
				}
			}
		}(lo, hi)
		lo = hi
	}
	wg.Wait()

	// A cancelled run discards every partial answer: cancellation is
	// sticky, so checking once after the join covers every worker.
	if err := p.ctx.Err(); err != nil {
		return nil, false, err
	}
	for b := 0; b < p.n; b++ {
		if witnesses[b] != nil {
			return witnesses[b], true, nil
		}
		if !refuted[b] {
			// The branch was neither refuted nor did any lower branch
			// produce a witness: only budget exhaustion remains.
			return nil, false, ErrSearchBudget
		}
	}
	return nil, false, nil
}

func addTo(m map[topology.NodeID]*big.Rat, key topology.NodeID, v *big.Rat) {
	if cur, ok := m[key]; ok {
		cur.Add(cur, v)
		return
	}
	m[key] = rational.Copy(v)
}

func capacityGrid(rows, cols int) [][]*big.Rat {
	g := make([][]*big.Rat, rows)
	for i := range g {
		g[i] = make([]*big.Rat, cols)
		for j := range g[i] {
			g[i][j] = rational.One()
		}
	}
	return g
}
