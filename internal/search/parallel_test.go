package search

import (
	"context"

	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// parallelWorkerCounts are the explicit worker counts the equivalence
// tests compare against the serial path. They exercise the sharded
// engine even on a single-core machine: goroutine interleaving (and the
// race detector's happens-before checking) does not require parallelism.
var parallelWorkerCounts = []int{2, 4, 8}

// equivalenceInstances are adversarial families small enough for
// exhaustive search: Example 2.3 (64 states), the Theorem 3.4 gadget
// (16 states), the Theorem 5.4 doom gadget (81 states) and a 6-flow
// prefix of the Theorem 4.3 starvation instance (729 states).
func equivalenceInstances(t *testing.T) map[string]struct {
	c  *topology.Clos
	fs core.Collection
} {
	t.Helper()
	out := make(map[string]struct {
		c  *topology.Clos
		fs core.Collection
	})
	add := func(name string, c *topology.Clos, fs core.Collection) {
		out[name] = struct {
			c  *topology.Clos
			fs core.Collection
		}{c, fs}
	}
	ex, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	add("example-2.3", ex.Clos, ex.Flows)
	t34, err := adversary.Theorem34(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	add("theorem-3.4(2,2)", t34.Clos, t34.Flows)
	t54, err := adversary.Theorem54(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	add("theorem-5.4(3,2)", t54.Clos, t54.Flows)
	t43, err := adversary.Theorem43(3)
	if err != nil {
		t.Fatal(err)
	}
	add("theorem-4.3(3)-prefix", t43.Clos, t43.Flows[:6])
	return out
}

func sameAssignment(a, b core.MiddleAssignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkSameResult(t *testing.T, name string, workers int, serial, par *Result) {
	t.Helper()
	if !sameAssignment(serial.Assignment, par.Assignment) {
		t.Errorf("%s workers=%d: assignment %v != serial %v",
			name, workers, par.Assignment, serial.Assignment)
	}
	if !serial.Allocation.Equal(par.Allocation) {
		t.Errorf("%s workers=%d: allocation %v != serial %v",
			name, workers, par.Allocation, serial.Allocation)
	}
	if serial.States != par.States {
		t.Errorf("%s workers=%d: states %d != serial %d",
			name, workers, par.States, serial.States)
	}
}

// TestLexMaxMinParallelEquivalence: the parallel engine returns the
// bit-identical assignment, allocation and state count as the serial
// path, for every worker count, on both enumeration spaces — and the
// canonical optimizer expands back to exactly the incumbent the legacy
// full-space serial scan reports.
func TestLexMaxMinParallelEquivalence(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		for _, fullSpace := range []bool{false, true} {
			serial, err := LexMaxMin(in.c, in.fs, Options{Workers: 1, FullSpace: fullSpace})
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			for _, w := range parallelWorkerCounts {
				par, err := LexMaxMin(in.c, in.fs, Options{Workers: w, FullSpace: fullSpace})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, w, err)
				}
				checkSameResult(t, name, w, serial, par)
			}
		}
		// Cross-space bit-identity: the canonical incumbent IS the one the
		// legacy full-space serial scan reports (min-rank optimum), not
		// merely an isomorphic relabeling of it.
		oracle, err := LexMaxMin(in.c, in.fs, Options{Workers: 1, FullSpace: true})
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		canon, err := LexMaxMin(in.c, in.fs, Options{})
		if err != nil {
			t.Fatalf("%s canonical: %v", name, err)
		}
		if !sameAssignment(oracle.Assignment, canon.Assignment) {
			t.Errorf("%s: canonical assignment %v != full-space oracle %v",
				name, canon.Assignment, oracle.Assignment)
		}
		if !oracle.Allocation.Equal(canon.Allocation) {
			t.Errorf("%s: canonical allocation %v != full-space oracle %v",
				name, canon.Allocation, oracle.Allocation)
		}
		if canon.States >= oracle.States {
			t.Errorf("%s: canonicalization did not reduce states: %d vs %d",
				name, canon.States, oracle.States)
		}
	}
}

// TestThroughputMaxMinCanonicalOracle: same cross-space bit-identity for
// the early-exit objective — the canonical optimizer's incumbent matches
// the full-space serial scan on assignment and allocation (States counts
// the spaces' own deterministic prefixes, so it legitimately differs).
func TestThroughputMaxMinCanonicalOracle(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		oracle, err := ThroughputMaxMin(in.c, in.fs, Options{Workers: 1, FullSpace: true})
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		canon, err := ThroughputMaxMin(in.c, in.fs, Options{})
		if err != nil {
			t.Fatalf("%s canonical: %v", name, err)
		}
		if !sameAssignment(oracle.Assignment, canon.Assignment) {
			t.Errorf("%s: canonical assignment %v != full-space oracle %v",
				name, canon.Assignment, oracle.Assignment)
		}
		if !oracle.Allocation.Equal(canon.Allocation) {
			t.Errorf("%s: canonical allocation %v != full-space oracle %v",
				name, canon.Allocation, oracle.Allocation)
		}
	}
}

// TestThroughputMaxMinParallelEquivalence covers the objective with an
// early-exit condition (the Lemma 3.2 matching bound): the deterministic
// stop-rank protocol must keep the result and States identical to serial
// even when workers abandon their shards.
func TestThroughputMaxMinParallelEquivalence(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		serial, err := ThroughputMaxMin(in.c, in.fs, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range parallelWorkerCounts {
			par, err := ThroughputMaxMin(in.c, in.fs, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			checkSameResult(t, name, w, serial, par)
		}
	}
}

func TestRelativeMaxMinParallelEquivalence(t *testing.T) {
	ex, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RelativeMaxMin(ex.Clos, ex.Flows, ex.MacroRates, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parallelWorkerCounts {
		par, err := RelativeMaxMin(ex.Clos, ex.Flows, ex.MacroRates, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !sameAssignment(serial.Assignment, par.Assignment) {
			t.Errorf("workers=%d: assignment %v != serial %v", w, par.Assignment, serial.Assignment)
		}
		if !serial.Allocation.Equal(par.Allocation) {
			t.Errorf("workers=%d: allocation differs from serial", w)
		}
		if serial.MinRatio.Cmp(par.MinRatio) != 0 {
			t.Errorf("workers=%d: min ratio %v != serial %v", w, par.MinRatio, serial.MinRatio)
		}
		if serial.States != par.States {
			t.Errorf("workers=%d: states %d != serial %d", w, par.States, serial.States)
		}
	}
}

// TestThroughputEarlyExitStates: on the permutation workload the
// matching bound is reached before the space is exhausted, so States
// must be strictly below the full state count — and identical across
// worker counts, since States counts the deterministic prefix up to the
// stop rank rather than the raw number of evaluations performed.
func TestThroughputEarlyExitStates(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			fs = fs.Add(c.Source(i, j), c.Dest(i+2, j), 1)
		}
	}
	total := 8 // canonical count: Σ_{k≤2} S(4,k), down from 2^4 = 16
	serial, err := ThroughputMaxMin(c, fs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.States >= total {
		t.Fatalf("serial early exit did not trigger: %d states of %d", serial.States, total)
	}
	for _, w := range parallelWorkerCounts {
		par, err := ThroughputMaxMin(c, fs, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par.States >= total {
			t.Errorf("workers=%d: early exit did not trigger: %d states of %d", w, par.States, total)
		}
		checkSameResult(t, "permutation", w, serial, par)
	}
}

// TestFeasibleRoutingParallelEquivalence: the parallel branch split
// returns the same verdict — and, for feasible instances, the identical
// depth-first-earliest witness — as the serial backtracker.
func TestFeasibleRoutingParallelEquivalence(t *testing.T) {
	type query struct {
		name    string
		c       *topology.Clos
		fs      core.Collection
		demands rational.Vec
	}
	var queries []query
	ex, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	queries = append(queries, query{"example-2.3 witness rates", ex.Clos, ex.Flows, ex.WitnessRates})
	for _, n := range []int{3, 4} {
		in, err := adversary.Theorem42(n)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, query{in.Name + " macro rates", in.Clos, in.Flows, in.MacroRates})
		t3 := in.FlowsOfType(adversary.Type3)[0]
		queries = append(queries, query{in.Name + " sans type-3", in.Clos, in.Flows[:t3], in.MacroRates[:t3]})
	}
	for _, q := range queries {
		sw, sok, err := FeasibleRouting(context.Background(), q.c, q.fs, q.demands, 0, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", q.name, err)
		}
		for _, w := range parallelWorkerCounts {
			pw, pok, err := FeasibleRouting(context.Background(), q.c, q.fs, q.demands, 0, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", q.name, w, err)
			}
			if sok != pok {
				t.Errorf("%s workers=%d: feasible=%v, serial says %v", q.name, w, pok, sok)
				continue
			}
			if sok && !sameAssignment(sw, pw) {
				t.Errorf("%s workers=%d: witness %v != serial %v", q.name, w, pw, sw)
			}
		}
	}
}

// TestEnumerateAborts: a visitor returning false must stop the walk
// immediately (the serial early-exit bugfix) — no further states are
// visited.
func TestEnumerateAborts(t *testing.T) {
	for _, stopAfter := range []int{1, 3, 7} {
		visited := 0
		err := enumerate(3, 4, Options{}, func(core.MiddleAssignment) bool {
			visited++
			return visited < stopAfter
		})
		if err != nil {
			t.Fatal(err)
		}
		if visited != stopAfter {
			t.Errorf("stopAfter=%d: visited %d states", stopAfter, visited)
		}
	}
}

// spaceOrder collects the whole space by walking a single cursor from
// rank 0.
func spaceOrder(s enumSpace, numFlows int) []core.MiddleAssignment {
	ma := make(core.MiddleAssignment, numFlows)
	cur := s.cursor(0, ma)
	order := make([]core.MiddleAssignment, 0, s.total())
	for rank := 0; rank < s.total(); rank++ {
		order = append(order, ma.Copy())
		cur.advance()
	}
	return order
}

// isCanonical reports whether ma is its orbit's minimum-rank element:
// the reversed digit string s[j] = ma[numFlows-1-j] is a restricted-
// growth string.
func isCanonical(ma core.MiddleAssignment) bool {
	max := 0
	for j := len(ma) - 1; j >= 0; j-- {
		if ma[j] > max+1 {
			return false
		}
		if ma[j] > max {
			max = ma[j]
		}
	}
	return true
}

// TestSpaceDecodeMatchesEnumerate: for both spaces, cursor(rank) yields
// exactly the rank-th assignment of the reference enumeration order, and
// advance agrees with cursor(rank+1) — the invariants the shard split
// depends on. The canonical reference order is the serial full-space
// order filtered to orbit-minimum representatives, which also proves the
// canonical space visits representatives in ascending full-space rank.
func TestSpaceDecodeMatchesEnumerate(t *testing.T) {
	const n, numFlows = 3, 4
	var fullOrder []core.MiddleAssignment
	if err := enumerate(n, numFlows, Options{}, func(ma core.MiddleAssignment) bool {
		fullOrder = append(fullOrder, ma.Copy())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var canonOrder []core.MiddleAssignment
	for _, ma := range fullOrder {
		if isCanonical(ma) {
			canonOrder = append(canonOrder, ma)
		}
	}
	// Σ_{k≤3} S(4,k) = 1 + 7 + 6 = 14 orbit representatives.
	if len(canonOrder) != 14 {
		t.Fatalf("%d canonical states of %d, want 14", len(canonOrder), len(fullOrder))
	}

	fullS, err := newFullSpace(n, numFlows, DefaultMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	canonS, err := newCanonSpace(n, numFlows, DefaultMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		s     enumSpace
		order []core.MiddleAssignment
	}{
		{"full", fullS, fullOrder},
		{"canonical", canonS, canonOrder},
	} {
		if tc.s.total() != len(tc.order) {
			t.Fatalf("%s: space says %d states, reference has %d", tc.name, tc.s.total(), len(tc.order))
		}
		// cursor(rank) must land on the rank-th reference state.
		decoded := make(core.MiddleAssignment, numFlows)
		for rank := range tc.order {
			tc.s.cursor(rank, decoded)
			if !sameAssignment(decoded, tc.order[rank]) {
				t.Fatalf("%s rank %d: cursor %v, reference %v", tc.name, rank, decoded, tc.order[rank])
			}
		}
		// A single cursor advanced through the space must trace the same
		// order.
		for rank, ma := range spaceOrder(tc.s, numFlows) {
			if !sameAssignment(ma, tc.order[rank]) {
				t.Fatalf("%s rank %d: advance %v, reference %v", tc.name, rank, ma, tc.order[rank])
			}
		}
	}
}

// TestWorkersExceedingStates: more workers than states must degrade
// gracefully (shards of size ≤ 1) and still match serial.
func TestWorkersExceedingStates(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}.
		Add(c.Source(1, 1), c.Dest(2, 1), 1).
		Add(c.Source(2, 1), c.Dest(1, 1), 1)
	serial, err := LexMaxMin(c, fs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := LexMaxMin(c, fs, Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	checkSameResult(t, "tiny", 64, serial, par)
}
