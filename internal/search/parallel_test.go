package search

import (
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// parallelWorkerCounts are the explicit worker counts the equivalence
// tests compare against the serial path. They exercise the sharded
// engine even on a single-core machine: goroutine interleaving (and the
// race detector's happens-before checking) does not require parallelism.
var parallelWorkerCounts = []int{2, 4, 8}

// equivalenceInstances are adversarial families small enough for
// exhaustive search: Example 2.3 (64 states), the Theorem 3.4 gadget
// (16 states), the Theorem 5.4 doom gadget (81 states) and a 6-flow
// prefix of the Theorem 4.3 starvation instance (729 states).
func equivalenceInstances(t *testing.T) map[string]struct {
	c  *topology.Clos
	fs core.Collection
} {
	t.Helper()
	out := make(map[string]struct {
		c  *topology.Clos
		fs core.Collection
	})
	add := func(name string, c *topology.Clos, fs core.Collection) {
		out[name] = struct {
			c  *topology.Clos
			fs core.Collection
		}{c, fs}
	}
	ex, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	add("example-2.3", ex.Clos, ex.Flows)
	t34, err := adversary.Theorem34(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	add("theorem-3.4(2,2)", t34.Clos, t34.Flows)
	t54, err := adversary.Theorem54(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	add("theorem-5.4(3,2)", t54.Clos, t54.Flows)
	t43, err := adversary.Theorem43(3)
	if err != nil {
		t.Fatal(err)
	}
	add("theorem-4.3(3)-prefix", t43.Clos, t43.Flows[:6])
	return out
}

func sameAssignment(a, b core.MiddleAssignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkSameResult(t *testing.T, name string, workers int, serial, par *Result) {
	t.Helper()
	if !sameAssignment(serial.Assignment, par.Assignment) {
		t.Errorf("%s workers=%d: assignment %v != serial %v",
			name, workers, par.Assignment, serial.Assignment)
	}
	if !serial.Allocation.Equal(par.Allocation) {
		t.Errorf("%s workers=%d: allocation %v != serial %v",
			name, workers, par.Allocation, serial.Allocation)
	}
	if serial.States != par.States {
		t.Errorf("%s workers=%d: states %d != serial %d",
			name, workers, par.States, serial.States)
	}
}

// TestLexMaxMinParallelEquivalence: the parallel engine returns the
// bit-identical assignment, allocation and state count as the serial
// path, for every worker count and with and without FixFirst.
func TestLexMaxMinParallelEquivalence(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		for _, fixFirst := range []bool{false, true} {
			serial, err := LexMaxMin(in.c, in.fs, Options{Workers: 1, FixFirst: fixFirst})
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			for _, w := range parallelWorkerCounts {
				par, err := LexMaxMin(in.c, in.fs, Options{Workers: w, FixFirst: fixFirst})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, w, err)
				}
				checkSameResult(t, name, w, serial, par)
			}
		}
	}
}

// TestThroughputMaxMinParallelEquivalence covers the objective with an
// early-exit condition (the Lemma 3.2 matching bound): the deterministic
// stop-rank protocol must keep the result and States identical to serial
// even when workers abandon their shards.
func TestThroughputMaxMinParallelEquivalence(t *testing.T) {
	for name, in := range equivalenceInstances(t) {
		serial, err := ThroughputMaxMin(in.c, in.fs, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range parallelWorkerCounts {
			par, err := ThroughputMaxMin(in.c, in.fs, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			checkSameResult(t, name, w, serial, par)
		}
	}
}

func TestRelativeMaxMinParallelEquivalence(t *testing.T) {
	ex, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RelativeMaxMin(ex.Clos, ex.Flows, ex.MacroRates, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parallelWorkerCounts {
		par, err := RelativeMaxMin(ex.Clos, ex.Flows, ex.MacroRates, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !sameAssignment(serial.Assignment, par.Assignment) {
			t.Errorf("workers=%d: assignment %v != serial %v", w, par.Assignment, serial.Assignment)
		}
		if !serial.Allocation.Equal(par.Allocation) {
			t.Errorf("workers=%d: allocation differs from serial", w)
		}
		if serial.MinRatio.Cmp(par.MinRatio) != 0 {
			t.Errorf("workers=%d: min ratio %v != serial %v", w, par.MinRatio, serial.MinRatio)
		}
		if serial.States != par.States {
			t.Errorf("workers=%d: states %d != serial %d", w, par.States, serial.States)
		}
	}
}

// TestThroughputEarlyExitStates: on the permutation workload the
// matching bound is reached before the space is exhausted, so States
// must be strictly below the full state count — and identical across
// worker counts, since States counts the deterministic prefix up to the
// stop rank rather than the raw number of evaluations performed.
func TestThroughputEarlyExitStates(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			fs = fs.Add(c.Source(i, j), c.Dest(i+2, j), 1)
		}
	}
	total := 16 // 2^4
	serial, err := ThroughputMaxMin(c, fs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.States >= total {
		t.Fatalf("serial early exit did not trigger: %d states of %d", serial.States, total)
	}
	for _, w := range parallelWorkerCounts {
		par, err := ThroughputMaxMin(c, fs, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par.States >= total {
			t.Errorf("workers=%d: early exit did not trigger: %d states of %d", w, par.States, total)
		}
		checkSameResult(t, "permutation", w, serial, par)
	}
}

// TestFeasibleRoutingParallelEquivalence: the parallel branch split
// returns the same verdict — and, for feasible instances, the identical
// depth-first-earliest witness — as the serial backtracker.
func TestFeasibleRoutingParallelEquivalence(t *testing.T) {
	type query struct {
		name    string
		c       *topology.Clos
		fs      core.Collection
		demands rational.Vec
	}
	var queries []query
	ex, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	queries = append(queries, query{"example-2.3 witness rates", ex.Clos, ex.Flows, ex.WitnessRates})
	for _, n := range []int{3, 4} {
		in, err := adversary.Theorem42(n)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, query{in.Name + " macro rates", in.Clos, in.Flows, in.MacroRates})
		t3 := in.FlowsOfType(adversary.Type3)[0]
		queries = append(queries, query{in.Name + " sans type-3", in.Clos, in.Flows[:t3], in.MacroRates[:t3]})
	}
	for _, q := range queries {
		sw, sok, err := FeasibleRouting(q.c, q.fs, q.demands, 0, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", q.name, err)
		}
		for _, w := range parallelWorkerCounts {
			pw, pok, err := FeasibleRouting(q.c, q.fs, q.demands, 0, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", q.name, w, err)
			}
			if sok != pok {
				t.Errorf("%s workers=%d: feasible=%v, serial says %v", q.name, w, pok, sok)
				continue
			}
			if sok && !sameAssignment(sw, pw) {
				t.Errorf("%s workers=%d: witness %v != serial %v", q.name, w, pw, sw)
			}
		}
	}
}

// TestEnumerateAborts: a visitor returning false must stop the walk
// immediately (the serial early-exit bugfix) — no further states are
// visited.
func TestEnumerateAborts(t *testing.T) {
	for _, stopAfter := range []int{1, 3, 7} {
		visited := 0
		err := enumerate(3, 4, Options{}, func(core.MiddleAssignment) bool {
			visited++
			return visited < stopAfter
		})
		if err != nil {
			t.Fatal(err)
		}
		if visited != stopAfter {
			t.Errorf("stopAfter=%d: visited %d states", stopAfter, visited)
		}
	}
}

// TestSpaceDecodeMatchesEnumerate: decoding rank r yields exactly the
// r-th assignment of the serial enumeration order, the invariant the
// shard split depends on.
func TestSpaceDecodeMatchesEnumerate(t *testing.T) {
	for _, fixFirst := range []bool{false, true} {
		opts := Options{FixFirst: fixFirst}
		s, err := newSpace(3, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		var order []core.MiddleAssignment
		if err := enumerate(3, 4, opts, func(ma core.MiddleAssignment) bool {
			order = append(order, ma.Copy())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(order) != s.total {
			t.Fatalf("fixFirst=%v: %d states enumerated, space says %d", fixFirst, len(order), s.total)
		}
		decoded := make(core.MiddleAssignment, 4)
		for rank := range order {
			s.decode(rank, decoded)
			if !sameAssignment(decoded, order[rank]) {
				t.Fatalf("fixFirst=%v rank %d: decode %v, enumerate %v", fixFirst, rank, decoded, order[rank])
			}
		}
		// next must agree with decode(rank+1).
		s.decode(0, decoded)
		for rank := 1; rank < s.total; rank++ {
			s.next(decoded)
			if !sameAssignment(decoded, order[rank]) {
				t.Fatalf("fixFirst=%v rank %d: next %v, enumerate %v", fixFirst, rank, decoded, order[rank])
			}
		}
	}
}

// TestWorkersExceedingStates: more workers than states must degrade
// gracefully (shards of size ≤ 1) and still match serial.
func TestWorkersExceedingStates(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}.
		Add(c.Source(1, 1), c.Dest(2, 1), 1).
		Add(c.Source(2, 1), c.Dest(1, 1), 1)
	serial, err := LexMaxMin(c, fs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := LexMaxMin(c, fs, Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	checkSameResult(t, "tiny", 64, serial, par)
}
