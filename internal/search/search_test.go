package search

import (
	"context"

	"errors"
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

func TestLexMaxMinExample23(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	res, err := LexMaxMin(in.Clos, in.Flows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The lex-max-min sorted vector of Example 2.3 is the witness
	// routing's: [1/3, 1/3, 1/3, 2/3, 2/3, 2/3].
	want := rational.VecOf(1, 3, 1, 3, 1, 3, 2, 3, 2, 3, 2, 3)
	if got := res.Allocation.SortedCopy(); !got.Equal(want) {
		t.Errorf("lex-max-min sorted = %v, want %v", got, want)
	}
	// The default canonical enumeration visits the 32 middle-relabeling
	// orbit representatives of the 2^6 = 64 routings.
	if res.States != 32 {
		t.Errorf("states = %d, want 32", res.States)
	}
	// The witness routing must itself be lex-optimal.
	wa, err := core.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if rational.LexCompareSorted(wa, res.Allocation) != 0 {
		t.Errorf("witness sorted %v differs from optimum %v", wa.SortedCopy(), res.Allocation.SortedCopy())
	}
}

// TestLexMaxMinCanonicalAgrees: the default symmetry-canonical
// enumeration returns the bit-identical assignment and allocation as the
// full-space scan — not merely an equivalent optimum — while visiting
// strictly fewer states.
func TestLexMaxMinCanonicalAgrees(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	full, err := LexMaxMin(in.Clos, in.Flows, Options{FullSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := LexMaxMin(in.Clos, in.Flows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAssignment(full.Assignment, canon.Assignment) {
		t.Errorf("canonicalization changed the incumbent assignment: %v vs %v",
			canon.Assignment, full.Assignment)
	}
	if !full.Allocation.Equal(canon.Allocation) {
		t.Errorf("canonicalization changed the optimum: %v vs %v",
			canon.Allocation, full.Allocation)
	}
	if canon.States >= full.States {
		t.Errorf("canonicalization did not reduce states: %d vs %d", canon.States, full.States)
	}
}

func TestThroughputMaxMinExample23(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ThroughputMaxMin(in.Clos, in.Flows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	macroT := core.Throughput(in.MacroRates)
	gotT := core.Throughput(res.Allocation)
	// Theorem 5.4 upper bound: T^T-MmF ≤ 2 · T^MmF(macro).
	if gotT.Cmp(rational.Mul(rational.Int(2), macroT)) > 0 {
		t.Errorf("throughput %s exceeds 2x macro %s", rational.String(gotT), rational.String(macroT))
	}
	// It must be at least the witness routing's throughput (3).
	if gotT.Cmp(rational.Int(3)) < 0 {
		t.Errorf("throughput %s below witness throughput 3", rational.String(gotT))
	}
}

func TestSearchEmptyCollection(t *testing.T) {
	c := topology.MustClos(2)
	res, err := LexMaxMin(c, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 0 || len(res.Allocation) != 0 {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestSearchStateCap(t *testing.T) {
	c := topology.MustClos(3)
	fs := core.Collection{}
	for i := 0; i < 20; i++ {
		fs = fs.Add(c.Source(1, 1), c.Dest(1, 1), 1)
	}
	_, err := LexMaxMin(c, fs, Options{MaxStates: 1000})
	if !errors.Is(err, ErrTooManyStates) {
		t.Errorf("err = %v, want ErrTooManyStates", err)
	}
}

func TestImprovingNeighborAndHillClimb(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	// The witness routing is globally optimal, hence locally optimal.
	ok, err := IsLocalLexOptimal(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("witness routing should be locally lex-optimal")
	}
	// Routing B of Example 2.3 is dominated; a neighbor must exist.
	routingB := core.MiddleAssignment{2, 2, 2, 1, 2, 1}
	nb, err := ImprovingNeighbor(in.Clos, in.Flows, routingB)
	if err != nil {
		t.Fatal(err)
	}
	if nb == nil {
		t.Fatal("routing B should have an improving neighbor")
	}
	// Hill climbing from the all-ones routing must terminate at a local
	// optimum at least as good as where it started.
	start := core.UniformAssignment(len(in.Flows), 1)
	startAlloc, err := core.ClosMaxMinFair(in.Clos, in.Flows, start)
	if err != nil {
		t.Fatal(err)
	}
	res, moves, err := HillClimbLex(in.Clos, in.Flows, start, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rational.LexCompareSorted(res.Allocation, startAlloc) < 0 {
		t.Error("hill climb ended below its start")
	}
	ok, err = IsLocalLexOptimal(in.Clos, in.Flows, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("hill climb result after %d moves is not locally optimal", moves)
	}
}

func TestHillClimbMoveCap(t *testing.T) {
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	start := core.MiddleAssignment{2, 2, 2, 1, 2, 1} // known improvable
	if _, _, err := HillClimbLex(in.Clos, in.Flows, start, -1); err != nil {
		t.Errorf("default cap failed: %v", err)
	}
}

func TestFeasibleRoutingWitness(t *testing.T) {
	// Example 2.3 rates for routing A are replicable by construction.
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	ma, ok, err := FeasibleRouting(context.Background(), in.Clos, in.Flows, in.WitnessRates, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("witness rates should be routable")
	}
	r, err := core.ClosRouting(in.Clos, in.Flows, ma)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.IsFeasible(in.Clos.Network(), in.Flows, r, in.WitnessRates); err != nil {
		t.Errorf("returned witness infeasible: %v", err)
	}
}

// TestFeasibleRoutingTheorem42 is the computational heart of Theorem 4.2:
// the macro-switch max-min rates of the adversarial collection admit no
// feasible routing in C_n.
func TestFeasibleRoutingTheorem42(t *testing.T) {
	for _, n := range []int{3, 4} {
		in, err := adversary.Theorem42(n)
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := FeasibleRouting(context.Background(), in.Clos, in.Flows, in.MacroRates, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ok {
			t.Errorf("n=%d: macro rates reported routable, contradicting Theorem 4.2", n)
		}
	}
}

// TestFeasibleRoutingDropType3 sanity-checks the refuter: removing the
// type-3 flow makes the Theorem 4.2 demands routable (the witness
// structure of Claim 4.5 exists).
func TestFeasibleRoutingDropType3(t *testing.T) {
	in, err := adversary.Theorem42(3)
	if err != nil {
		t.Fatal(err)
	}
	t3 := in.FlowsOfType(adversary.Type3)
	if len(t3) != 1 {
		t.Fatalf("expected 1 type-3 flow, got %d", len(t3))
	}
	fs := append(core.Collection{}, in.Flows[:t3[0]]...)
	demands := append(rational.Vec{}, in.MacroRates[:t3[0]]...)
	ma, ok, err := FeasibleRouting(context.Background(), in.Clos, fs, demands, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("type-1/2 rates should be routable without the type-3 flow")
	}
	r, err := core.ClosRouting(in.Clos, fs, ma)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.IsFeasible(in.Clos.Network(), fs, r, demands); err != nil {
		t.Errorf("witness infeasible: %v", err)
	}
}

// TestForEachFeasibleRoutingClaim45 verifies Claim 4.5's conditions on
// actual feasible routings of the type-1/type-2 sub-collection of the
// Theorem 4.3 instance: (1) per input switch, each middle receives all
// n+1-copy type-1 groups or the whole type-2 bundle; (2) type-2.b flows
// spread evenly, n-1 per middle.
func TestForEachFeasibleRoutingClaim45(t *testing.T) {
	n := 3
	in, err := adversary.Theorem43(n)
	if err != nil {
		t.Fatal(err)
	}
	t3 := in.FlowsOfType(adversary.Type3)[0]
	fs := append(core.Collection{}, in.Flows[:t3]...)
	demands := append(rational.Vec{}, in.MacroRates[:t3]...)

	visited := 0
	err = ForEachFeasibleRouting(in.Clos, fs, demands, 2_000_000, func(ma core.MiddleAssignment) bool {
		visited++
		// Condition 2: type-2.b flows per middle == n-1.
		countB := make([]int, n+1)
		for _, fi := range in.FlowsOfType(adversary.Type2b) {
			countB[ma[fi]]++
		}
		for m := 1; m <= n; m++ {
			if countB[m] != n-1 {
				t.Errorf("feasible routing with %d type-2.b flows on M%d, want %d", countB[m], m, n-1)
				return false
			}
		}
		// Condition 1: per (input, middle), the type-1/type-2 counts are
		// (0, n) or (n+1, 0).
		type key struct{ i, m int }
		c1 := make(map[key]int)
		c2 := make(map[key]int)
		for fi := range fs {
			i, _ := in.Clos.InputOf(fs[fi].Src)
			k := key{i, ma[fi]}
			if in.Types[fi] == adversary.Type1 {
				c1[k]++
			} else {
				c2[k]++
			}
		}
		for i := 1; i <= n; i++ {
			for m := 1; m <= n; m++ {
				k := key{i, m}
				x, y := c1[k], c2[k]
				if !(x == 0 && y == n) && !(x == n+1 && y == 0) {
					t.Errorf("feasible routing with (x,y)=(%d,%d) at input %d middle %d", x, y, i, m)
					return false
				}
			}
		}
		return visited < 500 // sample a bounded number of routings
	})
	if err != nil && !errors.Is(err, ErrSearchBudget) {
		t.Fatal(err)
	}
	if visited == 0 {
		t.Fatal("no feasible routing visited; Claim 4.5 premise missing")
	}
}

func TestFeasibleRoutingServerOverload(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}.
		Add(c.Source(1, 1), c.Dest(1, 1), 1).
		Add(c.Source(1, 1), c.Dest(2, 1), 1)
	// Total demand 3/2 on the shared source link: infeasible regardless
	// of routing.
	_, ok, err := FeasibleRouting(context.Background(), c, fs, rational.VecOf(1, 1, 1, 2), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("server-overloaded demands reported routable")
	}
}

func TestFeasibleRoutingErrors(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.NewCollection(c.Source(1, 1), c.Dest(1, 1))
	if _, _, err := FeasibleRouting(context.Background(), c, fs, rational.Vec{}, 0, 0); err == nil {
		t.Error("demand length mismatch accepted")
	}
	if _, _, err := FeasibleRouting(context.Background(), c, fs, rational.VecOf(-1, 2), 0, 0); err == nil {
		t.Error("negative demand accepted")
	}
	bad := core.Collection{{Src: c.Input(1), Dst: c.Dest(1, 1)}}
	if _, _, err := FeasibleRouting(context.Background(), c, bad, rational.VecOf(1, 2), 0, 0); err == nil {
		t.Error("non-server source accepted")
	}
}

func TestFeasibleRoutingBudget(t *testing.T) {
	in, err := adversary.Theorem43(3)
	if err != nil {
		t.Fatal(err)
	}
	t3 := in.FlowsOfType(adversary.Type3)[0]
	fs := append(core.Collection{}, in.Flows[:t3]...)
	demands := append(rational.Vec{}, in.MacroRates[:t3]...)
	err = ForEachFeasibleRouting(in.Clos, fs, demands, 10, func(core.MiddleAssignment) bool { return true })
	if !errors.Is(err, ErrSearchBudget) {
		t.Errorf("err = %v, want ErrSearchBudget", err)
	}
}

// TestThroughputMaxMinEarlyStop: on a permutation workload every flow
// can reach rate 1 simultaneously, so the matching upper bound is hit
// early and the search stops before exhausting the routing space.
func TestThroughputMaxMinEarlyStop(t *testing.T) {
	c := topology.MustClos(2)
	fs := core.Collection{}
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			fs = fs.Add(c.Source(i, j), c.Dest(i+2, j), 1)
		}
	}
	res, err := ThroughputMaxMin(c, fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Throughput(res.Allocation); got.Cmp(rational.Int(4)) != 0 {
		t.Fatalf("throughput = %s, want 4", rational.String(got))
	}
	// The canonical space has Σ_{k≤2} S(4,k) = 8 states; the matching
	// bound must stop the walk before exhausting even that.
	if res.States >= 8 {
		t.Errorf("early stop did not trigger: %d states of 8", res.States)
	}
}
