// Parallel enumeration engine for the routing space R.
//
// The base-n counter over middle assignments is identified with an
// integer rank (position `start` is the least-significant digit, so rank
// order is exactly the serial enumeration order of `enumerate`). Each
// worker owns one contiguous sub-range of ranks, decoded from the rank
// itself — no shared counter exists — and evaluates max-min fair
// allocations with a private core.Evaluator whose scratch buffers are
// reused across states. Shard-local incumbents are merged with a
// deterministic reduction: shards are visited in ascending rank order and
// an incumbent is replaced only on strict improvement, so the merged
// winner is the earliest-rank optimum — bit-identical to the serial
// result regardless of worker count.
//
// Early exit (the Lemma 3.2/5.2 throughput upper bound) and inner errors
// propagate through a cancellation signal: a worker whose incumbent
// provably attains the global optimum at rank r publishes stop rank r+1,
// and every worker aborts as soon as its next rank is at or beyond the
// lowest published stop rank. Ranks below the stop rank are always fully
// evaluated, which keeps the early-exit result (and Result.States, which
// counts exactly the deterministic prefix [0, stop)) identical to the
// serial schedule; the few speculative evaluations a worker may perform
// beyond the stop rank before the signal reaches it are discarded and
// uncounted.
package search

import (
	"runtime"
	"sync"
	"sync/atomic"

	"closnet/internal/core"
	"closnet/internal/topology"
)

// space is the ranked routing space of numFlows flows in C_n, with
// positions [0, start) pinned to middle 1 by the FixFirst symmetry
// reduction.
type space struct {
	n, numFlows, start int
	total              int
}

func newSpace(n, numFlows int, opts Options) (space, error) {
	free := numFlows
	start := 0
	if opts.FixFirst && numFlows > 0 {
		free--
		start = 1
	}
	total := stateCount(n, free, opts.maxStates())
	if total < 0 {
		return space{}, tooManyStatesError(n, free, opts.maxStates())
	}
	return space{n: n, numFlows: numFlows, start: start, total: total}, nil
}

// decode writes the assignment with the given rank into ma: digit d of
// the rank (base n, least significant first) becomes ma[start+d] - 1.
// Rank 0 is the all-ones assignment.
func (s space) decode(rank int, ma core.MiddleAssignment) {
	for pos := 0; pos < s.start; pos++ {
		ma[pos] = 1
	}
	for pos := s.start; pos < s.numFlows; pos++ {
		ma[pos] = 1 + rank%s.n
		rank /= s.n
	}
}

// next advances ma to the successor rank in place (the base-n counter
// step). Advancing the last rank wraps back to rank 0; callers bound
// their loops by rank, so the wrap is never observed.
func (s space) next(ma core.MiddleAssignment) {
	for pos := s.start; pos < s.numFlows; pos++ {
		if ma[pos] < s.n {
			ma[pos]++
			return
		}
		ma[pos] = 1
	}
}

// objective is the strict-improvement order driving an exhaustive
// optimizer. Implementations are stateful so they can cache values
// derived from the current incumbent — the sorted allocation vector for
// lex-max-min, the total throughput for throughput-max-min, the minimum
// target ratio for relative-max-min — computing them once per
// improvement instead of once per candidate. Each worker owns a private
// instance produced by the factory handed to the engine.
type objective interface {
	// improves reports whether cand strictly improves on the incumbent.
	// When no incumbent has been installed yet it must report true.
	improves(cand core.Allocation) bool
	// install makes cand the incumbent. The engine calls it immediately
	// after improves(cand) reported true, with the same cand, so
	// implementations may stash candidate-derived state in improves and
	// promote it here.
	install(cand core.Allocation)
	// optimal reports whether the incumbent provably attains the global
	// optimum (e.g. the Lemma 3.2 matching bound), allowing the
	// enumeration to stop early.
	optimal() bool
}

// workerCount resolves the Options.Workers policy: 0 means one worker
// per available core, 1 the serial path, k ≥ 2 exactly k workers.
func (o Options) workerCount() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// runEngine exhaustively optimizes the objective over the routing space
// of fs in c. The result is bit-identical for every worker count.
func runEngine(c *topology.Clos, fs core.Collection, opts Options, newObjective func() objective) (*Result, error) {
	if len(fs) == 0 {
		return &Result{Assignment: core.MiddleAssignment{}, Allocation: core.Allocation{}, States: 1}, nil
	}
	s, err := newSpace(c.Size(), len(fs), opts)
	if err != nil {
		return nil, err
	}
	workers := opts.workerCount()
	if workers > s.total {
		workers = s.total
	}
	if workers <= 1 {
		return runSerial(c, fs, opts, newObjective)
	}
	return runParallel(c, fs, s, workers, newObjective)
}

// runSerial is the exact legacy serial path: the in-place base-n counter
// walk of enumerate evaluating core.ClosMaxMinFair per state. The
// parallel equivalence tests cross-check the Evaluator-based workers
// against this independent implementation.
func runSerial(c *topology.Clos, fs core.Collection, opts Options, newObjective func() objective) (*Result, error) {
	obj := newObjective()
	var (
		res      Result
		innerErr error
	)
	err := enumerate(c.Size(), len(fs), opts, func(ma core.MiddleAssignment) bool {
		a, err := core.ClosMaxMinFair(c, fs, ma)
		if err != nil {
			innerErr = err
			return false
		}
		res.States++
		if obj.improves(a) {
			obj.install(a)
			res.Allocation = a
			res.Assignment = ma.Copy()
			if obj.optimal() {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	return &res, nil
}

// shardIncumbent is one worker's best state: the earliest rank in its
// shard attaining the shard-local optimum. rank < 0 means the shard was
// abandoned before producing an incumbent.
type shardIncumbent struct {
	rank  int
	ma    core.MiddleAssignment
	alloc core.Allocation
}

func runParallel(c *topology.Clos, fs core.Collection, s space, workers int, newObjective func() objective) (*Result, error) {
	var (
		stopRank atomic.Int64 // exclusive bound: ranks ≥ stopRank are unneeded
		aborted  atomic.Bool  // an inner error cancels every worker
		errMu    sync.Mutex
		firstErr error
	)
	stopRank.Store(int64(s.total))
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	lowerStop := func(v int64) {
		for {
			cur := stopRank.Load()
			if v >= cur || stopRank.CompareAndSwap(cur, v) {
				return
			}
		}
	}

	incumbents := make([]shardIncumbent, workers)
	var wg sync.WaitGroup
	chunk, rem := s.total/workers, s.total%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ev, err := core.NewEvaluator(c, fs)
			if err != nil {
				fail(err)
				return
			}
			obj := newObjective()
			local := &incumbents[w]
			local.rank = -1
			ma := make(core.MiddleAssignment, s.numFlows)
			s.decode(lo, ma)
			for rank := lo; rank < hi; rank++ {
				if aborted.Load() || int64(rank) >= stopRank.Load() {
					return
				}
				a, err := ev.Eval(ma)
				if err != nil {
					fail(err)
					return
				}
				if obj.improves(a) {
					obj.install(a)
					local.rank = rank
					local.ma = ma.Copy()
					local.alloc = a
					if obj.optimal() {
						// Every later rank is unneeded; earlier shards keep
						// running so the lowest optimal rank wins.
						lowerStop(int64(rank) + 1)
						return
					}
				}
				s.next(ma)
			}
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic reduction: shards in ascending rank order, replace
	// only on strict improvement. Equal-valued later incumbents (possible
	// speculative finds beyond the stop rank) lose to the earliest one.
	merged := newObjective()
	res := &Result{States: int(stopRank.Load())}
	for w := range incumbents {
		inc := &incumbents[w]
		if inc.rank < 0 {
			continue
		}
		if merged.improves(inc.alloc) {
			merged.install(inc.alloc)
			res.Assignment = inc.ma
			res.Allocation = inc.alloc
		}
	}
	return res, nil
}
