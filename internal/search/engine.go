// Parallel enumeration engine for the routing space R.
//
// The engine ranks an enumeration space — by default the
// symmetry-canonical space of canon.go (one representative per
// middle-relabeling orbit), or the full base-n counter space under
// Options.FullSpace — and shards contiguous rank ranges over worker
// goroutines. Each worker decodes its first state from the rank itself
// (no shared counter exists) and evaluates max-min fair allocations
// with a private core.Evaluator whose Rat64 scratch is reused across
// states. Shard-local incumbents are merged with a deterministic
// reduction: shards are visited in ascending rank order and an
// incumbent is replaced only on strict improvement, so the merged
// winner is the earliest-rank optimum — bit-identical to the serial
// result regardless of worker count, and (because canonical
// representatives are the min-rank elements of their orbits, visited in
// ascending full-space rank) bit-identical to the legacy full-space
// serial scan as well.
//
// Early exit (the Lemma 3.2/5.2 throughput upper bound) and inner errors
// propagate through a cancellation signal: a worker whose incumbent
// provably attains the global optimum at rank r publishes stop rank r+1,
// and every worker aborts as soon as its next rank is at or beyond the
// lowest published stop rank. Ranks below the stop rank are always fully
// evaluated, which keeps the early-exit result (and Result.States, which
// counts exactly the deterministic prefix [0, stop)) identical to the
// serial schedule; the few speculative evaluations a worker may perform
// beyond the stop rank before the signal reaches it are discarded and
// uncounted.
package search

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"closnet/internal/core"
	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// ctxCheckMask sets the cancellation polling cadence: each enumeration
// loop polls Options.Ctx once every ctxCheckMask+1 states. Per-state
// evaluation is microseconds, so 64 states bound the cancellation
// latency well under a millisecond while keeping the poll off the
// per-state fast path.
const ctxCheckMask = 63

// engineObs carries the preregistered observability handles of one
// search run. All handles are nil-safe, so a zero/nil-field value (the
// Options.Obs == nil case) disables instrumentation at the cost of one
// predictable nil check per touch point and zero allocations.
type engineObs struct {
	obs          *obs.Obs
	j            *obs.Journal
	states       *obs.Counter // assignments actually evaluated (includes speculative ones beyond the stop rank)
	improvements *obs.Counter // incumbent improvements across all shards
	earlyExits   *obs.Counter // stop-rank publications (Lemma 3.2/5.2 bound attained)
	boundEvals   *obs.Counter // relaxation bound evaluations (pruned mode only)
	prunes       *obs.Counter // subtrees cut by the bound (pruned mode only)
	spaceTotal   *obs.Gauge   // cumulative size of the enumerated spaces
	stopRank     *obs.Gauge   // last early-exit stop rank (0 when no search exited early)
	duration     *obs.Timer   // wall time per search run
}

func newEngineObs(o *obs.Obs) engineObs {
	reg := o.Registry()
	return engineObs{
		obs:          o,
		j:            o.Journal(),
		states:       reg.Counter("search.states"),
		improvements: reg.Counter("search.improvements"),
		earlyExits:   reg.Counter("search.early_exits"),
		boundEvals:   reg.Counter("search.bound_evals"),
		prunes:       reg.Counter("search.pruned_subtrees"),
		spaceTotal:   reg.Gauge("search.space_total"),
		stopRank:     reg.Gauge("search.stop_rank"),
		duration:     reg.Timer("search.duration"),
	}
}

// enumSpace is a ranked enumeration order over middle assignments:
// either the full n^|F| counter space or the symmetry-canonical space.
type enumSpace interface {
	total() int
	// cursor binds ma to a fresh cursor positioned at rank, writing the
	// rank's assignment into ma. Advancing the cursor mutates ma to the
	// successor state.
	cursor(rank int, ma core.MiddleAssignment) spaceCursor
}

// spaceCursor steps its bound assignment through the space in rank
// order.
type spaceCursor interface {
	advance()
}

// fullSpace is the unreduced routing space: the base-n counter over all
// numFlows positions, with position 0 the least-significant digit, so
// rank order is exactly the serial enumeration order of `enumerate`.
type fullSpace struct {
	n, numFlows int
	tot         int
}

func newFullSpace(n, numFlows, maxStates int) (*fullSpace, error) {
	total := stateCount(n, numFlows, maxStates)
	if total < 0 {
		return nil, tooManyStatesError(n, numFlows, maxStates)
	}
	return &fullSpace{n: n, numFlows: numFlows, tot: total}, nil
}

func (s *fullSpace) total() int { return s.tot }

// decode writes the assignment with the given rank into ma: digit d of
// the rank (base n, least significant first) becomes ma[d] - 1.
// Rank 0 is the all-ones assignment.
func (s *fullSpace) decode(rank int, ma core.MiddleAssignment) {
	for pos := 0; pos < s.numFlows; pos++ {
		ma[pos] = 1 + rank%s.n
		rank /= s.n
	}
}

func (s *fullSpace) cursor(rank int, ma core.MiddleAssignment) spaceCursor {
	s.decode(rank, ma)
	return &fullCursor{s: s, ma: ma}
}

type fullCursor struct {
	s  *fullSpace
	ma core.MiddleAssignment
}

// advance steps ma to the successor rank in place (the base-n counter
// step). Advancing the last rank wraps back to rank 0; callers bound
// their loops by rank, so the wrap is never observed.
func (c *fullCursor) advance() {
	for pos := 0; pos < c.s.numFlows; pos++ {
		if c.ma[pos] < c.s.n {
			c.ma[pos]++
			return
		}
		c.ma[pos] = 1
	}
}

// objective is the strict-improvement order driving an exhaustive
// optimizer. Implementations are stateful so they can cache values
// derived from the current incumbent — the sorted allocation vector for
// lex-max-min, the total throughput for throughput-max-min, the minimum
// target ratio for relative-max-min — computing them once per
// improvement instead of once per candidate. Each worker owns a private
// instance produced by the factory handed to the engine.
type objective interface {
	// improves reports whether cand strictly improves on the incumbent.
	// When no incumbent has been installed yet it must report true.
	improves(cand core.Allocation) bool
	// install makes cand the incumbent. The engine calls it immediately
	// after improves(cand) reported true, with the same cand, so
	// implementations may stash candidate-derived state in improves and
	// promote it here.
	install(cand core.Allocation)
	// optimal reports whether the incumbent provably attains the global
	// optimum (e.g. the Lemma 3.2 matching bound), allowing the
	// enumeration to stop early.
	optimal() bool
}

// workerCount resolves the Options.Workers policy: 0 means one worker
// per available core, 1 the serial path, k ≥ 2 exactly k workers.
func (o Options) workerCount() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// runEngine exhaustively optimizes the objective over the routing space
// of fs in c. The incumbent (assignment and allocation) is bit-identical
// for every worker count and for both enumeration spaces; Result.States
// counts the states of the space actually enumerated.
func runEngine(c topology.Fabric, fs core.Collection, opts Options, newObjective func() objective) (*Result, error) {
	if len(fs) == 0 {
		return &Result{Assignment: core.MiddleAssignment{}, Allocation: core.Allocation{}, States: 1}, nil
	}
	var (
		s   enumSpace
		err error
	)
	// Canonical (orbit-representative) enumeration is only sound when
	// relabeling the choice alphabet is an automorphism; fabrics without
	// that symmetry (fat-tree, Benes) always scan the full space.
	canon := !opts.FullSpace && c.SymmetricChoices()
	if canon {
		s, err = newCanonSpace(c.Size(), len(fs), opts.maxStates())
	} else {
		s, err = newFullSpace(c.Size(), len(fs), opts.maxStates())
	}
	if err != nil {
		return nil, err
	}
	ctx := opts.context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.workerCount()
	if workers > s.total() {
		workers = s.total()
	}
	eo := newEngineObs(opts.Obs)
	space := "canonical"
	if !canon {
		space = "full"
	}
	eo.spaceTotal.Add(int64(s.total()))
	eo.j.Emit("search.start", obs.F{
		"space": space, "total": s.total(), "workers": workers, "flows": len(fs), "n": c.Size(),
	})
	sp, ctx := obs.StartSpan(ctx, "search.run")
	sp.Attr("space", space).Attr("total", s.total()).Attr("workers", workers)
	start := time.Now()
	var res *Result
	if opts.FullSpace && workers <= 1 {
		// The exact legacy path: in-place counter walk evaluating
		// core.ClosMaxMinFair per state, kept as the independent oracle
		// the equivalence tests cross-check the engine against.
		res, err = runSerial(ctx, c, fs, opts, newObjective, eo)
	} else {
		res, err = runSharded(ctx, c, fs, s, workers, opts.blockSize(), newObjective, eo)
	}
	if err == nil && ctx.Err() != nil {
		// A run that is cancelled is cancelled, even when the enumeration
		// won the race to completion: no Result escapes, for any worker
		// count or cancellation timing.
		err = ctx.Err()
	}
	eo.duration.Observe(time.Since(start))
	sp.Attr("ok", err == nil).End()
	if err != nil {
		eo.j.Emit("search.error", obs.F{"error": err.Error()})
		return nil, err
	}
	eo.j.Emit("search.end", obs.F{"states": res.States})
	return res, nil
}

// runSerial is the exact legacy serial path: the in-place base-n counter
// walk of enumerate evaluating core.ClosMaxMinFair per state. The
// equivalence tests cross-check the Evaluator-based sharded engine (and
// the canonical enumeration) against this independent implementation.
func runSerial(ctx context.Context, c topology.Fabric, fs core.Collection, opts Options, newObjective func() objective, eo engineObs) (*Result, error) {
	sp, ctx := obs.StartSpan(ctx, "search.shard")
	sp.Attr("shard", 0)
	defer sp.End()
	obj := newObjective()
	done := ctx.Done()
	var (
		res      Result
		innerErr error
	)
	err := enumerate(c.Size(), len(fs), opts, func(ma core.MiddleAssignment) bool {
		if done != nil && res.States&ctxCheckMask == 0 {
			select {
			case <-done:
				innerErr = ctx.Err()
				return false
			default:
			}
		}
		a, err := core.ClosMaxMinFair(c, fs, ma)
		if err != nil {
			innerErr = err
			return false
		}
		res.States++
		eo.states.Inc()
		if obj.improves(a) {
			obj.install(a)
			res.Allocation = a
			res.Assignment = ma.Copy()
			eo.improvements.Inc()
			eo.j.Emit("search.incumbent", obs.F{"shard": 0, "rank": res.States - 1})
			if obj.optimal() {
				eo.earlyExits.Inc()
				eo.stopRank.Set(int64(res.States))
				eo.j.Emit("search.stop_rank", obs.F{"shard": 0, "rank": res.States})
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	return &res, nil
}

// shardIncumbent is one worker's best state: the earliest rank in its
// shard attaining the shard-local optimum. rank < 0 means the shard was
// abandoned before producing an incumbent.
type shardIncumbent struct {
	rank  int
	ma    core.MiddleAssignment
	alloc core.Allocation
}

// blockCapable is the optional objective extension of the block
// evaluation path: fastImproves screens one candidate's Rat64 rate lane
// against the incumbent without materializing the allocation. ok =
// false means the screen could not decide (a Rat64 sum overflowed) and
// the engine falls back to the exact improves on the materialized
// allocation. A (false, true) verdict MUST be exact — the state is
// skipped for good — while a (true, true) verdict is always re-checked
// through improves, so the screen only needs soundness on rejections.
// Objectives without the extension (relative-max-min) evaluate per
// state.
type blockCapable interface {
	fastImproves(rates []rational.Rat64) (improves, ok bool)
}

func runSharded(ctx context.Context, c topology.Fabric, fs core.Collection, s enumSpace, workers, blockSize int, newObjective func() objective, eo engineObs) (*Result, error) {
	var (
		stopRank atomic.Int64 // exclusive bound: ranks ≥ stopRank are unneeded
		stopped  atomic.Bool  // some worker published a stop rank
		aborted  atomic.Bool  // an inner error cancels every worker
		errMu    sync.Mutex
		firstErr error
	)
	total := s.total()
	stopRank.Store(int64(total))
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	lowerStop := func(v int64) {
		for {
			cur := stopRank.Load()
			if v >= cur || stopRank.CompareAndSwap(cur, v) {
				return
			}
		}
	}

	incumbents := make([]shardIncumbent, workers)
	evaluated := make([]int, workers) // per-shard evaluation counts for the merge journal
	var wg sync.WaitGroup
	chunk, rem := total/workers, total%workers

	// Shard boundaries are journaled from this goroutine, before any
	// worker starts, so the shard_start sequence is deterministic.
	bounds := make([]int, workers+1)
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		bounds[w], bounds[w+1] = lo, hi
		eo.j.Emit("search.shard_start", obs.F{"shard": w, "lo": lo, "hi": hi})
		lo = hi
	}

	// runBlock is the block-evaluation worker loop: rank-contiguous
	// blocks of assignments through one core.BlockEvaluator, with each
	// state screened by the objective's Rat64 fastImproves before any
	// allocation is materialized. Incumbent selection is bit-identical
	// to the per-state loop below: states are processed in ascending
	// rank, a screen rejection is exact, and a screen acceptance is
	// re-checked through the same obj.improves the per-state loop runs.
	// The stop rank is polled per block instead of per state, so a
	// worker may evaluate up to blockSize-1 speculative states beyond a
	// freshly published stop; like the per-state loop's speculative
	// tail, those can never strictly improve (the stop rank certifies a
	// global optimum) and the ascending-rank merge discards them.
	runBlock := func(ctx context.Context, w, lo, hi int, obj objective, bc blockCapable) {
		bev, err := core.NewBlockEvaluator(c, fs)
		if err != nil {
			fail(err)
			return
		}
		bev.Instrument(eo.obs)
		// The shard span is resolved once per worker, outside the block
		// loop: with tracing off it is nil, every Child below is a nil
		// no-op, and the hot loop stays allocation-free.
		ssp := obs.SpanFrom(ctx)
		local := &incumbents[w]
		local.rank = -1
		nf := len(fs)
		ma := make(core.MiddleAssignment, nf)
		cur := s.cursor(lo, ma)
		buf := make([]int, 0, blockSize*nf)
		done := ctx.Done()
		for rank := lo; rank < hi; {
			if aborted.Load() || int64(rank) >= stopRank.Load() {
				return
			}
			if done != nil {
				select {
				case <-done:
					fail(ctx.Err())
					return
				default:
				}
			}
			k := blockSize
			if rank+k > hi {
				k = hi - rank
			}
			buf = buf[:0]
			for i := 0; i < k; i++ {
				buf = append(buf, ma...)
				cur.advance()
			}
			bsp := ssp.Child("core.block_fill")
			res, err := bev.EvalBlock(buf, k)
			bsp.Attr("block", k).End()
			if err != nil {
				fail(err)
				return
			}
			evaluated[w] += k
			eo.states.Add(int64(k))
			for i := 0; i < k; i++ {
				if !res.Promoted(i) {
					if imp, ok := bc.fastImproves(res.Rates64(i)); ok && !imp {
						continue
					}
				}
				a := res.Alloc(i)
				if !obj.improves(a) {
					continue
				}
				obj.install(a)
				local.rank = rank + i
				local.ma = core.MiddleAssignment(buf[i*nf : (i+1)*nf]).Copy()
				local.alloc = a
				eo.improvements.Inc()
				eo.j.Emit("search.incumbent", obs.F{"shard": w, "rank": rank + i})
				if obj.optimal() {
					lowerStop(int64(rank+i) + 1)
					stopped.Store(true)
					eo.earlyExits.Inc()
					eo.j.Emit("search.stop_rank", obs.F{"shard": w, "rank": rank + i + 1})
					return
				}
			}
			rank += k
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wsp, ctx := obs.StartSpan(ctx, "search.shard")
			wsp.Attr("shard", w)
			defer wsp.End()
			obj := newObjective()
			if bc, ok := obj.(blockCapable); ok && blockSize > 1 {
				runBlock(ctx, w, lo, hi, obj, bc)
				return
			}
			ev, err := core.NewEvaluator(c, fs)
			if err != nil {
				fail(err)
				return
			}
			ev.Instrument(eo.obs)
			local := &incumbents[w]
			local.rank = -1
			ma := make(core.MiddleAssignment, len(fs))
			cur := s.cursor(lo, ma)
			done := ctx.Done()
			for rank := lo; rank < hi; rank++ {
				if aborted.Load() || int64(rank) >= stopRank.Load() {
					return
				}
				if done != nil && rank&ctxCheckMask == 0 {
					select {
					case <-done:
						fail(ctx.Err())
						return
					default:
					}
				}
				a, err := ev.Eval(ma)
				if err != nil {
					fail(err)
					return
				}
				evaluated[w]++
				eo.states.Inc()
				if obj.improves(a) {
					obj.install(a)
					local.rank = rank
					local.ma = ma.Copy()
					local.alloc = a
					eo.improvements.Inc()
					eo.j.Emit("search.incumbent", obs.F{"shard": w, "rank": rank})
					if obj.optimal() {
						// Every later rank is unneeded; earlier shards keep
						// running so the lowest optimal rank wins.
						lowerStop(int64(rank) + 1)
						stopped.Store(true)
						eo.earlyExits.Inc()
						eo.j.Emit("search.stop_rank", obs.F{"shard": w, "rank": rank + 1})
						return
					}
				}
				cur.advance()
			}
		}(w, bounds[w], bounds[w+1])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic reduction: shards in ascending rank order, replace
	// only on strict improvement. Equal-valued later incumbents (possible
	// speculative finds beyond the stop rank) lose to the earliest one.
	// The shard_merge journal events follow the same ascending order, so
	// trace consumers observe the reduction exactly as it ran.
	merged := newObjective()
	res := &Result{States: int(stopRank.Load())}
	for w := range incumbents {
		inc := &incumbents[w]
		improved := false
		if inc.rank >= 0 && merged.improves(inc.alloc) {
			merged.install(inc.alloc)
			res.Assignment = inc.ma
			res.Allocation = inc.alloc
			improved = true
		}
		eo.j.Emit("search.shard_merge", obs.F{
			"shard": w, "evaluated": evaluated[w], "rank": inc.rank, "improved": improved,
		})
	}
	// The gauge tracks every early exit, like runSerial's — including a
	// stop rank equal to the space total (optimum first attained at the
	// last rank), which the `stop < total` comparison previously missed,
	// so identical runs journaled different metrics per worker count.
	if stopped.Load() {
		eo.stopRank.Set(stopRank.Load())
	}
	return res, nil
}
