// Bound-guided branch-and-bound over the canonical routing space.
//
// The pruned search mode (Options.Pruned) explores partial middle
// assignments instead of scanning every canonical state. A node fixes
// a prefix of the canonical RGS digit string (canon.go) — equivalently
// a *suffix* of the flows in index order, since digit j is ma[|F|-1-j]
// — and covers the contiguous canonical rank block of all completions.
// Each node carries an admissible bound from a splittable relaxation
// of the fixed prefix:
//
//   - lex-max-min: the trunk relaxation of core.PartialEvaluator —
//     free flows charged on aggregate per-ToR trunk capacity instead of
//     per-middle links — water-filled on the Rat64 scratch, so a child
//     bound costs one incremental fill, not a fresh solve;
//   - throughput-max-min: the splittable maximum-throughput LP of
//     lp.SplittableThroughputBound restricted to the prefix's paths,
//     with its dual certificate re-verified (weak duality), capped by
//     the Lemma 3.2 matching bound.
//
// Nodes expand best-bound-first so the incumbent tightens early; a
// branch is pruned when its bound cannot beat the incumbent. Pruning
// preserves the exhaustive scan's exact result — the *earliest-rank*
// canonical optimum — because the tie rule keeps any node whose bound
// equals the incumbent value while its block starts before the
// incumbent's rank, and a leaf replaces an equal-valued incumbent only
// from a smaller rank. A branch is cut only when its bound is strictly
// worse, or equal with every completion ranked after the incumbent;
// neither can contain the earliest-rank optimum, so the B&B incumbent
// is bit-identical to the exhaustive one.
//
// The mode runs serially (Options.Workers is ignored): the frontier is
// a single priority queue and the bound evaluator's scratch is shared.
// Result.States counts every evaluation performed — exact leaf
// evaluations plus relaxation bound evaluations — which is the number
// the ≥5x-fewer-states claims in BENCH_search.json compare against the
// exhaustive canonical state count.
package search

import (
	"container/heap"
	"context"
	"math/big"
	"time"

	"closnet/internal/core"
	"closnet/internal/lp"
	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// bbObjective adapts one routing objective to the branch-and-bound:
// values are rational vectors compared by rational.LexCompare (the
// throughput objective uses length-1 vectors), leafValue maps an exact
// allocation to its value, and bound maps a partial assignment (flows
// [fixedFrom, |F|) fixed per ma) to an admissible value: ≥ the value of
// every completion.
type bbObjective struct {
	leafValue func(a core.Allocation) rational.Vec
	bound     func(ma core.MiddleAssignment, fixedFrom int) (rational.Vec, error)
}

// bbNode is one frontier node: a canonical digit prefix, its running
// maximum label, the first canonical rank of its block, and its bound.
// The root (depth 0) carries a nil bound, ordered ahead of everything.
type bbNode struct {
	depth  int
	digits []int
	max    int
	lo     int
	bound  rational.Vec
}

// bbHeap pops the best bound first, ties broken by the earliest block
// rank. Live nodes cover disjoint rank blocks (a parent is removed
// when its children are pushed), so lo is a total tiebreak and the pop
// order is deterministic.
type bbHeap []*bbNode

func (h bbHeap) Len() int { return len(h) }
func (h bbHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.bound == nil || b.bound == nil {
		return a.bound == nil
	}
	if c := rational.LexCompare(a.bound, b.bound); c != 0 {
		return c > 0
	}
	return a.lo < b.lo
}
func (h bbHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *bbHeap) Push(x any)   { *h = append(*h, x.(*bbNode)) }
func (h *bbHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// bbSpace is the digit-prefix view the branch-and-bound needs from an
// enumeration space: the contiguous rank-block decomposition by fixed
// digit prefixes. The canonical RGS space provides it for fabrics with
// interchangeable choices; every other fabric gets the full counter
// space, whose prefixes are plain base-n blocks.
type bbSpace interface {
	total() int
	// childLimit returns the largest digit value a child of a node with
	// running maximum max may take (RGS growth rule, or n in the full
	// space).
	childLimit(max int) int
	// suffixCount returns the number of completions of a child of a
	// depth-d node whose running maximum is nm — the child's rank-block
	// size (suffix length numFlows-1-d).
	suffixCount(d, nm int) int
}

func (s *canonSpace) childLimit(max int) int {
	limit := max + 1
	if limit > s.n {
		limit = s.n
	}
	return limit
}

func (s *canonSpace) suffixCount(d, nm int) int {
	return s.counts[s.numFlows-1-d][nm-1]
}

// bbFullSpace adapts the full counter space to the prefix view. Digit
// j is ma[numFlows-1-j] (most significant first), so a digit prefix is
// a contiguous rank block of size n^(suffix length), children in
// ascending digit order are in ascending rank order, and bbRun's
// materialization and fixedFrom bookkeeping apply unchanged.
type bbFullSpace struct {
	*fullSpace
	pows []int // pows[r] = n^r; safe: n^numFlows passed the maxStates check
}

func newBBFullSpace(n, numFlows, maxStates int) (*bbFullSpace, error) {
	fs, err := newFullSpace(n, numFlows, maxStates)
	if err != nil {
		return nil, err
	}
	pows := make([]int, numFlows+1)
	pows[0] = 1
	for r := 1; r <= numFlows; r++ {
		pows[r] = pows[r-1] * n
	}
	return &bbFullSpace{fullSpace: fs, pows: pows}, nil
}

func (s *bbFullSpace) childLimit(int) int { return s.n }

func (s *bbFullSpace) suffixCount(d, _ int) int {
	return s.pows[s.numFlows-1-d]
}

// runBranchBound is the pruned counterpart of runEngine: same journal
// envelope (search.start/incumbent/end), same Result semantics except
// that States counts bound plus leaf evaluations.
func runBranchBound(c topology.Fabric, fs core.Collection, opts Options, obj bbObjective) (*Result, error) {
	if len(fs) == 0 {
		return &Result{Assignment: core.MiddleAssignment{}, Allocation: core.Allocation{}, States: 1}, nil
	}
	var (
		space bbSpace
		err   error
	)
	if c.SymmetricChoices() {
		space, err = newCanonSpace(c.Size(), len(fs), opts.maxStates())
	} else {
		space, err = newBBFullSpace(c.Size(), len(fs), opts.maxStates())
	}
	if err != nil {
		return nil, err
	}
	ctx := opts.context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eo := newEngineObs(opts.Obs)
	eo.spaceTotal.Add(int64(space.total()))
	eo.j.Emit("search.start", obs.F{
		"space": "pruned", "total": space.total(), "workers": 1, "flows": len(fs), "n": c.Size(),
	})
	sp, ctx := obs.StartSpan(ctx, "search.run")
	sp.Attr("space", "pruned").Attr("total", space.total()).Attr("workers", 1)
	start := time.Now()
	res, err := bbRun(ctx, c, fs, space, opts, obj, eo)
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	eo.duration.Observe(time.Since(start))
	sp.Attr("ok", err == nil).End()
	if err != nil {
		eo.j.Emit("search.error", obs.F{"error": err.Error()})
		return nil, err
	}
	eo.j.Emit("search.end", obs.F{"states": res.States})
	return res, nil
}

func bbRun(ctx context.Context, c topology.Fabric, fs core.Collection, space bbSpace, opts Options, obj bbObjective, eo engineObs) (*Result, error) {
	nf := len(fs)
	bev, err := core.NewBlockEvaluator(c, fs)
	if err != nil {
		return nil, err
	}
	bev.Instrument(eo.obs)

	var (
		incVal   rational.Vec
		incRank  = -1
		incMA    core.MiddleAssignment
		incAlloc core.Allocation
		states   int
	)
	// mayImprove is the keep rule: a block can still matter when its
	// bound beats the incumbent, or equals it while starting at an
	// earlier rank (an equal-valued completion there would be the
	// earliest-rank optimum the exhaustive scan reports).
	mayImprove := func(v rational.Vec, lo int) bool {
		if incRank < 0 {
			return true
		}
		cmp := rational.LexCompare(v, incVal)
		return cmp > 0 || (cmp == 0 && lo < incRank)
	}

	ma := make(core.MiddleAssignment, nf)
	h := &bbHeap{&bbNode{}}
	done := ctx.Done()
	pops := 0
	// Leaf evaluations are batched through the block evaluator: a node
	// at depth |F|-1 has only leaf children (fixedFrom == 0 holds for
	// every v, never for some), so one expansion yields up to n
	// rank-contiguous fully fixed assignments — the natural block unit.
	var (
		leafBuf []int
		leafLo  []int
	)
	for h.Len() > 0 {
		if done != nil && pops&ctxCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		pops++
		node := heap.Pop(h).(*bbNode)
		// The incumbent may have tightened since the node was pushed.
		if node.bound != nil && !mayImprove(node.bound, node.lo) {
			eo.prunes.Inc()
			continue
		}
		d := node.depth
		limit := space.childLimit(node.max)
		childLo := node.lo
		leafBuf, leafLo = leafBuf[:0], leafLo[:0]
		for v := 1; v <= limit; v++ {
			nm := node.max
			if v > nm {
				nm = v
			}
			size := space.suffixCount(d, nm)
			lo := childLo
			childLo += size
			// Materialize the child's fixed suffix: digit j is
			// ma[nf-1-j]; positions below fixedFrom stay free (bounds
			// never read them).
			fixedFrom := nf - (d + 1)
			for j := 0; j < d; j++ {
				ma[nf-1-j] = node.digits[j]
			}
			ma[fixedFrom] = v
			if fixedFrom == 0 {
				// Leaf: one fully fixed assignment, deferred into the
				// node's block for one exact EvalBlock below.
				leafBuf = append(leafBuf, ma...)
				leafLo = append(leafLo, lo)
				continue
			}
			bv, err := obj.bound(ma, fixedFrom)
			if err != nil {
				return nil, err
			}
			states++
			eo.states.Inc()
			eo.boundEvals.Inc()
			if !mayImprove(bv, lo) {
				eo.prunes.Inc()
				continue
			}
			digits := make([]int, d+1)
			copy(digits, node.digits)
			digits[d] = v
			heap.Push(h, &bbNode{depth: d + 1, digits: digits, max: nm, lo: lo, bound: bv})
		}
		if len(leafLo) > 0 {
			res, err := bev.EvalBlock(leafBuf, len(leafLo))
			if err != nil {
				return nil, err
			}
			// Leaves are processed in the same ascending-rank order the
			// per-state loop evaluated them in, under identical
			// comparison and tie rules, so the incumbent sequence is
			// unchanged.
			for i, lo := range leafLo {
				a := res.Alloc(i)
				states++
				eo.states.Inc()
				val := obj.leafValue(a)
				cmp := 1
				if incRank >= 0 {
					cmp = rational.LexCompare(val, incVal)
				}
				if cmp > 0 || (cmp == 0 && lo < incRank) {
					incVal, incRank = val, lo
					incMA = core.MiddleAssignment(leafBuf[i*nf : (i+1)*nf]).Copy()
					incAlloc = a
					eo.improvements.Inc()
					eo.j.Emit("search.incumbent", obs.F{"shard": 0, "rank": lo})
				}
			}
		}
	}
	return &Result{Assignment: incMA, Allocation: incAlloc, States: states}, nil
}

// lexBranchBound runs the pruned lex-max-min search: trunk-relaxation
// bounds compared as sorted vectors.
func lexBranchBound(c topology.Fabric, fs core.Collection, opts Options) (*Result, error) {
	pe, err := core.NewPartialEvaluator(c, fs)
	if err != nil {
		return nil, err
	}
	obj := bbObjective{
		leafValue: func(a core.Allocation) rational.Vec { return a.SortedCopy() },
		bound: func(ma core.MiddleAssignment, fixedFrom int) (rational.Vec, error) {
			b, err := pe.Bound(ma, fixedFrom)
			if err != nil {
				return nil, err
			}
			return b.SortedCopy(), nil
		},
	}
	return runBranchBound(c, fs, opts, obj)
}

// throughputBranchBound runs the pruned throughput-max-min search:
// certified splittable-LP bounds on the prefix paths, capped by the
// Lemma 3.2 matching bound, compared as length-1 vectors.
func throughputBranchBound(c topology.Fabric, fs core.Collection, opts Options) (*Result, error) {
	// ubRat is nil when the matching ceiling's unit-endpoint premise
	// fails; the LP bound alone is always admissible.
	ubRat, err := matchingBound(c, fs)
	if err != nil {
		return nil, err
	}
	net := c.Network()
	obj := bbObjective{
		leafValue: func(a core.Allocation) rational.Vec {
			return rational.Vec{core.Throughput(a)}
		},
		bound: func(ma core.MiddleAssignment, fixedFrom int) (rational.Vec, error) {
			paths, err := lp.PrefixPaths(c, fs, ma, fixedFrom)
			if err != nil {
				return nil, err
			}
			bound, err := lp.SplittableThroughputBound(net, fs, paths)
			if err != nil {
				return nil, err
			}
			if ubRat != nil && bound.Cmp(ubRat) > 0 {
				bound = new(big.Rat).Set(ubRat)
			}
			return rational.Vec{bound}, nil
		},
	}
	return runBranchBound(c, fs, opts, obj)
}
