package matching

import (
	"math/rand"
	"testing"
)

// bruteForceMax returns the size of a maximum matching by exhaustive
// search over edge subsets. Only usable for tiny graphs.
func bruteForceMax(g Graph) int {
	best := 0
	var rec func(i int, usedL, usedR uint64, size int)
	rec = func(i int, usedL, usedR uint64, size int) {
		if size > best {
			best = size
		}
		if i == len(g.Edges) {
			return
		}
		// Prune: even taking every remaining edge cannot beat best.
		if size+len(g.Edges)-i <= best {
			return
		}
		rec(i+1, usedL, usedR, size)
		e := g.Edges[i]
		lBit, rBit := uint64(1)<<e.Left, uint64(1)<<e.Right
		if usedL&lBit == 0 && usedR&rBit == 0 {
			rec(i+1, usedL|lBit, usedR|rBit, size+1)
		}
	}
	rec(0, 0, 0, 0)
	return best
}

func TestMaxMatchingSimpleCases(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
		want int
	}{
		{"empty", Graph{NumLeft: 3, NumRight: 3}, 0},
		{"single edge", Graph{1, 1, []Edge{{0, 0}}}, 1},
		{"parallel edges", Graph{1, 1, []Edge{{0, 0}, {0, 0}, {0, 0}}}, 1},
		{"perfect matching", Graph{2, 2, []Edge{{0, 0}, {1, 1}}}, 2},
		{"star", Graph{1, 4, []Edge{{0, 0}, {0, 1}, {0, 2}, {0, 3}}}, 1},
		{
			// Greedy on edge order {0,0},{1,0} picks {0,0} and stalls;
			// maximum is 2 via {0,1},{1,0}.
			"needs augmenting path",
			Graph{2, 2, []Edge{{0, 0}, {1, 0}, {0, 1}}},
			2,
		},
		{
			// Example 3.3's G^MS for k=1: sources {s11, s21},
			// destinations {t11, t21}; edges (s11,t11), (s21,t21),
			// (s21,t11).
			"example 3.3",
			Graph{2, 2, []Edge{{0, 0}, {1, 1}, {1, 0}}},
			2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := MaxMatching(tt.g)
			if err != nil {
				t.Fatalf("MaxMatching: %v", err)
			}
			if err := Verify(tt.g, m); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if len(m) != tt.want {
				t.Errorf("matching size = %d, want %d", len(m), tt.want)
			}
		})
	}
}

func TestMaxMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nl, nr := rng.Intn(5)+1, rng.Intn(5)+1
		ne := rng.Intn(10)
		g := Graph{NumLeft: nl, NumRight: nr}
		for e := 0; e < ne; e++ {
			g.Edges = append(g.Edges, Edge{rng.Intn(nl), rng.Intn(nr)})
		}
		m, err := MaxMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := bruteForceMax(g); len(m) != want {
			t.Fatalf("trial %d: size %d, want %d (graph %+v)", trial, len(m), want, g)
		}
	}
}

func TestGreedyMatchingIsValidAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		nl, nr := rng.Intn(6)+1, rng.Intn(6)+1
		g := Graph{NumLeft: nl, NumRight: nr}
		for e := 0; e < rng.Intn(12); e++ {
			g.Edges = append(g.Edges, Edge{rng.Intn(nl), rng.Intn(nr)})
		}
		m, err := GreedyMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		// Maximal: no remaining edge has both endpoints free.
		usedL := make([]bool, nl)
		usedR := make([]bool, nr)
		for _, ei := range m {
			usedL[g.Edges[ei].Left] = true
			usedR[g.Edges[ei].Right] = true
		}
		for _, e := range g.Edges {
			if !usedL[e.Left] && !usedR[e.Right] {
				t.Fatalf("trial %d: greedy matching not maximal", trial)
			}
		}
		// A maximal matching is at least half a maximum one.
		max, _ := MaxMatching(g)
		if 2*len(m) < len(max) {
			t.Fatalf("trial %d: greedy %d < half of max %d", trial, len(m), len(max))
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Graph{
		{NumLeft: -1, NumRight: 1},
		{1, 1, []Edge{{1, 0}}},
		{1, 1, []Edge{{0, 1}}},
		{1, 1, []Edge{{-1, 0}}},
	}
	for i, g := range bad {
		if _, err := MaxMatching(g); err == nil {
			t.Errorf("graph %d: expected error", i)
		}
		if _, err := GreedyMatching(g); err == nil {
			t.Errorf("graph %d: greedy expected error", i)
		}
	}
}

func TestVerifyRejectsBadMatchings(t *testing.T) {
	g := Graph{2, 2, []Edge{{0, 0}, {0, 1}, {1, 1}}}
	if err := Verify(g, Matching{0, 1}); err == nil {
		t.Error("shared left endpoint accepted")
	}
	if err := Verify(g, Matching{1, 2}); err == nil {
		t.Error("shared right endpoint accepted")
	}
	if err := Verify(g, Matching{5}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := Verify(g, Matching{0, 2}); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
}

func TestMaxDegree(t *testing.T) {
	g := Graph{2, 3, []Edge{{0, 0}, {0, 1}, {0, 2}, {1, 2}}}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	if got := (Graph{NumLeft: 2, NumRight: 2}).MaxDegree(); got != 0 {
		t.Errorf("MaxDegree of empty graph = %d", got)
	}
	// Parallel edges count toward degree.
	p := Graph{1, 1, []Edge{{0, 0}, {0, 0}}}
	if got := p.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree with parallel edges = %d, want 2", got)
	}
}

func TestMaxMatchingLargeBipartite(t *testing.T) {
	// Complete bipartite K_{40,40}: perfect matching of size 40.
	g := Graph{NumLeft: 40, NumRight: 40}
	for l := 0; l < 40; l++ {
		for r := 0; r < 40; r++ {
			g.Edges = append(g.Edges, Edge{l, r})
		}
	}
	m, err := MaxMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 40 {
		t.Errorf("matching size = %d, want 40", len(m))
	}
	if err := Verify(g, m); err != nil {
		t.Error(err)
	}
}
