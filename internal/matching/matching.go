// Package matching implements maximum bipartite matching on multigraphs.
//
// The paper uses maximum matchings twice: Lemma 3.2 identifies the maximum
// throughput across a macro-switch with the size of a maximum matching in
// the bipartite multigraph G^MS whose left/right nodes are sources and
// destinations and whose edges are the flows; and the Doom-Switch
// algorithm (Algorithm 1) starts from such a matching.
//
// The implementation is Hopcroft–Karp, O(E·sqrt(V)), plus a simple greedy
// augmenting-path matcher kept as an ablation baseline.
package matching

import (
	"fmt"
)

// Edge is an edge of a bipartite multigraph: Left indexes the left node
// set, Right the right node set. Parallel edges are allowed (they model
// multiple flows between the same server pair).
type Edge struct {
	Left, Right int
}

// Graph is a bipartite multigraph with dense 0-based node indexing.
type Graph struct {
	NumLeft, NumRight int
	Edges             []Edge
}

// Validate reports an error if any edge endpoint is out of range.
func (g Graph) Validate() error {
	if g.NumLeft < 0 || g.NumRight < 0 {
		return fmt.Errorf("matching: negative node count (%d, %d)", g.NumLeft, g.NumRight)
	}
	for i, e := range g.Edges {
		if e.Left < 0 || e.Left >= g.NumLeft {
			return fmt.Errorf("matching: edge %d: left endpoint %d out of range [0,%d)", i, e.Left, g.NumLeft)
		}
		if e.Right < 0 || e.Right >= g.NumRight {
			return fmt.Errorf("matching: edge %d: right endpoint %d out of range [0,%d)", i, e.Right, g.NumRight)
		}
	}
	return nil
}

// MaxDegree returns the maximum degree over all nodes of the multigraph.
func (g Graph) MaxDegree() int {
	degL := make([]int, g.NumLeft)
	degR := make([]int, g.NumRight)
	max := 0
	for _, e := range g.Edges {
		degL[e.Left]++
		degR[e.Right]++
		if degL[e.Left] > max {
			max = degL[e.Left]
		}
		if degR[e.Right] > max {
			max = degR[e.Right]
		}
	}
	return max
}

// Matching is a set of pairwise node-disjoint edges, given as indices
// into Graph.Edges.
type Matching []int

// MaxMatching returns a maximum matching of g computed with
// Hopcroft–Karp. Parallel edges are collapsed internally (at most one
// parallel edge can ever be matched); the returned indices identify one
// representative edge per matched pair.
func MaxMatching(g Graph) (Matching, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	const unmatched = -1

	// adj[l] lists edge indices leaving left node l; parallel edges are
	// deduplicated per (l, r) pair to keep layers small.
	adj := make([][]int, g.NumLeft)
	seen := make(map[[2]int]bool, len(g.Edges))
	for i, e := range g.Edges {
		key := [2]int{e.Left, e.Right}
		if seen[key] {
			continue
		}
		seen[key] = true
		adj[e.Left] = append(adj[e.Left], i)
	}

	matchL := make([]int, g.NumLeft) // edge index matched at left node, or -1
	matchR := make([]int, g.NumRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}

	dist := make([]int, g.NumLeft)
	queue := make([]int, 0, g.NumLeft)

	// bfs layers free left nodes; returns true if an augmenting path
	// exists.
	bfs := func() bool {
		const inf = int(^uint(0) >> 1)
		queue = queue[:0]
		for l := 0; l < g.NumLeft; l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, ei := range adj[l] {
				r := g.Edges[ei].Right
				me := matchR[r]
				if me == unmatched {
					found = true
					continue
				}
				nl := g.Edges[me].Left
				if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, ei := range adj[l] {
			r := g.Edges[ei].Right
			me := matchR[r]
			if me == unmatched || (dist[g.Edges[me].Left] == dist[l]+1 && dfs(g.Edges[me].Left)) {
				matchL[l] = ei
				matchR[r] = ei
				return true
			}
		}
		const inf = int(^uint(0) >> 1)
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < g.NumLeft; l++ {
			if matchL[l] == unmatched {
				dfs(l)
			}
		}
	}

	var m Matching
	for l := 0; l < g.NumLeft; l++ {
		if matchL[l] != unmatched {
			m = append(m, matchL[l])
		}
	}
	return m, nil
}

// GreedyMatching returns a (maximal, not necessarily maximum) matching
// built by a single greedy pass. It is kept as an ablation baseline for
// the benchmarks; library code uses MaxMatching.
func GreedyMatching(g Graph) (Matching, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	usedL := make([]bool, g.NumLeft)
	usedR := make([]bool, g.NumRight)
	var m Matching
	for i, e := range g.Edges {
		if usedL[e.Left] || usedR[e.Right] {
			continue
		}
		usedL[e.Left] = true
		usedR[e.Right] = true
		m = append(m, i)
	}
	return m, nil
}

// Verify reports an error unless m is a valid matching of g: edge indices
// in range and no two edges sharing an endpoint.
func Verify(g Graph, m Matching) error {
	usedL := make([]bool, g.NumLeft)
	usedR := make([]bool, g.NumRight)
	for _, ei := range m {
		if ei < 0 || ei >= len(g.Edges) {
			return fmt.Errorf("matching: edge index %d out of range", ei)
		}
		e := g.Edges[ei]
		if usedL[e.Left] {
			return fmt.Errorf("matching: left node %d matched twice", e.Left)
		}
		if usedR[e.Right] {
			return fmt.Errorf("matching: right node %d matched twice", e.Right)
		}
		usedL[e.Left] = true
		usedR[e.Right] = true
	}
	return nil
}
