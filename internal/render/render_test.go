package render

import (
	"strings"
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

func example23(t *testing.T) (*adversary.Instance, core.Routing, core.Allocation) {
	t.Helper()
	in, err := adversary.Example23()
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.ClosRouting(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.MaxMinFair(in.Clos.Network(), in.Flows, r)
	if err != nil {
		t.Fatal(err)
	}
	return in, r, a
}

func TestClosDiagram(t *testing.T) {
	c := topology.MustClos(2)
	out := ClosDiagram(c)
	for _, want := range []string{"C_2", "M1 M2", "I1", "O4", "s1.1", "t4.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	// One line per ToR pair plus two headers.
	if got := strings.Count(out, "\n"); got != 2+4 {
		t.Errorf("diagram has %d lines, want 6:\n%s", got, out)
	}
}

func TestAllocationTable(t *testing.T) {
	in, r, a := example23(t)
	out, err := AllocationTable(in.Clos.Network(), in.Flows, r, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"via M1", "via M2", "1/3", "2/3", "throughput: 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(none") {
		t.Errorf("max-min fair allocation reported missing bottlenecks:\n%s", out)
	}
}

func TestAllocationTableSuboptimal(t *testing.T) {
	in, r, a := example23(t)
	// Scale all rates down: still feasible, no longer max-min fair.
	half := a.Copy()
	for i := range half {
		half[i] = rational.Mul(half[i], rational.R(1, 2))
	}
	out, err := AllocationTable(in.Clos.Network(), in.Flows, r, half)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(none") {
		t.Errorf("suboptimal allocation not flagged:\n%s", out)
	}
	// Infeasible allocations are rejected.
	big := a.Copy()
	for i := range big {
		big[i] = rational.Int(5)
	}
	if _, err := AllocationTable(in.Clos.Network(), in.Flows, r, big); err == nil {
		t.Error("infeasible allocation accepted")
	}
}

func TestFabricUtilization(t *testing.T) {
	in, r, a := example23(t)
	out := FabricUtilization(in.Clos, r, a)
	for _, want := range []string{"input -> middle", "middle -> output", "M1", "M2", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("utilization missing %q:\n%s", want, out)
		}
	}
	// I1->M1 is saturated in routing A (type-1 flow 1/3 + type-3 2/3).
	if !strings.Contains(out, "1*") {
		t.Errorf("expected a saturated unit link marked '1*':\n%s", out)
	}
}

func TestSortedVector(t *testing.T) {
	_, _, a := example23(t)
	out := SortedVector(a)
	if !strings.Contains(out, "[1/3, 1/3, 1/3, 2/3, 2/3, 2/3]") || !strings.Contains(out, "throughput 3") {
		t.Errorf("sorted vector rendering wrong: %s", out)
	}
}

func TestGeneralClosDiagram(t *testing.T) {
	c, err := topology.NewGeneralClos(3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := ClosDiagram(c)
	if !strings.Contains(out, "3 ToR pairs x 2 servers, 5 middle switches") {
		t.Errorf("general shape not rendered:\n%s", out)
	}
	if !strings.Contains(out, "M5") {
		t.Errorf("middle stage truncated:\n%s", out)
	}
}
