// Package render produces human-readable text views of topologies,
// routings and allocations: a stage diagram of a Clos network, a per-flow
// allocation table with bottleneck annotations (the analysis view used by
// the examples and the clostopo tool), and a fabric-utilization heat
// table. Everything is plain ASCII/Unicode text; no terminal control
// codes.
package render

import (
	"fmt"
	"strings"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// ClosDiagram renders the stage structure of a Clos network: one line per
// input switch with its servers, the middle stage, and one line per
// output switch.
func ClosDiagram(c *topology.Clos) string {
	var b strings.Builder
	net := c.Network()
	fmt.Fprintf(&b, "%s: %d ToR pairs x %d servers, %d middle switches\n",
		net.Name(), c.NumToRs(), c.ServersPerToR(), c.Size())

	middles := make([]string, c.Size())
	for m := 1; m <= c.Size(); m++ {
		middles[m-1] = net.Node(c.Middle(m)).Name
	}
	fmt.Fprintf(&b, "  middle stage: %s\n", strings.Join(middles, " "))

	for i := 1; i <= c.NumToRs(); i++ {
		srcs := make([]string, c.ServersPerToR())
		dsts := make([]string, c.ServersPerToR())
		for j := 1; j <= c.ServersPerToR(); j++ {
			srcs[j-1] = net.Node(c.Source(i, j)).Name
			dsts[j-1] = net.Node(c.Dest(i, j)).Name
		}
		fmt.Fprintf(&b, "  %s <- {%s}   {%s} <- %s\n",
			net.Node(c.Input(i)).Name, strings.Join(srcs, ", "),
			strings.Join(dsts, ", "), net.Node(c.Output(i)).Name)
	}
	return b.String()
}

// AllocationTable renders one line per flow: endpoints, path (for Clos
// routings: the middle switch), exact rate, and the flow's bottleneck
// links under the allocation. It returns an error if the allocation is
// infeasible.
func AllocationTable(net *topology.Network, fs core.Collection, r core.Routing, a core.Allocation) (string, error) {
	reports, err := core.Bottlenecks(net, fs, r, a)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-22s %-8s %s\n", "flow", "route", "rate", "bottlenecks")
	for fi, f := range fs {
		route := fmt.Sprintf("%s->%s", net.Node(f.Src).Name, net.Node(f.Dst).Name)
		if mid := middleOf(net, r[fi]); mid != "" {
			route += " via " + mid
		}
		var bns []string
		for _, l := range reports[fi].Links {
			bns = append(bns, net.LinkName(l))
		}
		marker := strings.Join(bns, ", ")
		if marker == "" {
			marker = "(none — not max-min fair)"
		}
		fmt.Fprintf(&b, "f%-3d %-22s %-8s %s\n", fi, route, rational.String(a[fi]), marker)
	}
	fmt.Fprintf(&b, "throughput: %s\n", rational.String(core.Throughput(a)))
	return b.String(), nil
}

// middleOf returns the middle-switch name a Clos path traverses, or "".
func middleOf(net *topology.Network, p topology.Path) string {
	for _, l := range p {
		to := net.Node(net.Link(l).To)
		if to.Kind == topology.KindMiddleSwitch {
			return to.Name
		}
	}
	return ""
}

// FabricUtilization renders the load of every fabric link of a Clos
// network as two grids (input->middle and middle->output), with loads in
// lowest terms and saturated links marked with '*'.
func FabricUtilization(c *topology.Clos, r core.Routing, a core.Allocation) string {
	net := c.Network()
	loads := core.LinkLoads(net, r, a)
	var b strings.Builder

	grid := func(title string, from func(i int) topology.NodeID, to func(m int) topology.NodeID, rows, cols int, flip bool) {
		fmt.Fprintf(&b, "%s\n", title)
		fmt.Fprintf(&b, "%8s", "")
		for m := 1; m <= cols; m++ {
			fmt.Fprintf(&b, " %8s", fmt.Sprintf("M%d", m))
		}
		b.WriteByte('\n')
		for i := 1; i <= rows; i++ {
			label := net.Node(from(i)).Name
			if flip {
				label = net.Node(to(i)).Name
			}
			fmt.Fprintf(&b, "%8s", label)
			for m := 1; m <= cols; m++ {
				var id topology.LinkID
				var ok bool
				if flip {
					id, ok = net.LinkBetween(c.Middle(m), c.Output(i))
				} else {
					id, ok = net.LinkBetween(c.Input(i), c.Middle(m))
				}
				cell := "-"
				if ok {
					cell = rational.String(loads[id])
					if loads[id].Cmp(net.Link(id).Capacity) == 0 {
						cell += "*"
					}
				}
				fmt.Fprintf(&b, " %8s", cell)
			}
			b.WriteByte('\n')
		}
	}
	grid("input -> middle loads ('*' = saturated):",
		func(i int) topology.NodeID { return c.Input(i) },
		func(m int) topology.NodeID { return c.Middle(m) },
		c.NumToRs(), c.Size(), false)
	grid("middle -> output loads ('*' = saturated):",
		func(i int) topology.NodeID { return c.Output(i) },
		func(m int) topology.NodeID { return c.Output(m) },
		c.NumToRs(), c.Size(), true)
	return b.String()
}

// SortedVector renders a↑ together with its throughput, the way the
// paper quotes allocations.
func SortedVector(a core.Allocation) string {
	return fmt.Sprintf("%s (throughput %s)", a.SortedCopy(), rational.String(core.Throughput(a)))
}
