package core

import (
	"fmt"

	"closnet/internal/topology"
)

// Routing assigns each flow of a collection to one source-destination
// path (the flows are unsplittable). Routing r and collection fs are
// parallel slices: r[i] is the path of fs[i].
type Routing []topology.Path

// Validate checks that the routing has one path per flow and that each
// path is a contiguous src→dst walk in net.
func (r Routing) Validate(net *topology.Network, fs Collection) error {
	if len(r) != len(fs) {
		return fmt.Errorf("routing has %d paths for %d flows", len(r), len(fs))
	}
	for i, p := range r {
		if err := p.Validate(net, fs[i].Src, fs[i].Dst); err != nil {
			return fmt.Errorf("flow %d: %w", i, err)
		}
	}
	return nil
}

// MiddleAssignment is the compact routing representation for a Clos
// network: the (1-based) middle-switch index assigned to each flow. Since
// a Clos path is fully determined by its middle switch, a middle
// assignment and a Routing are interchangeable.
type MiddleAssignment []int

// Copy returns a copy of the assignment.
func (ma MiddleAssignment) Copy() MiddleAssignment {
	out := make(MiddleAssignment, len(ma))
	copy(out, ma)
	return out
}

// ClosRouting materializes a middle assignment into a Routing over c.
func ClosRouting(c topology.Fabric, fs Collection, ma MiddleAssignment) (Routing, error) {
	if len(ma) != len(fs) {
		return nil, fmt.Errorf("assignment has %d middles for %d flows", len(ma), len(fs))
	}
	r := make(Routing, len(fs))
	for i, f := range fs {
		p, err := c.Path(f.Src, f.Dst, ma[i])
		if err != nil {
			return nil, fmt.Errorf("flow %d: %w", i, err)
		}
		r[i] = p
	}
	return r, nil
}

// UniformAssignment assigns every flow to middle switch m.
func UniformAssignment(numFlows, m int) MiddleAssignment {
	ma := make(MiddleAssignment, numFlows)
	for i := range ma {
		ma[i] = m
	}
	return ma
}

// MacroRouting returns the unique routing of fs in the macro-switch ms.
func MacroRouting(ms *topology.MacroSwitch, fs Collection) (Routing, error) {
	r := make(Routing, len(fs))
	for i, f := range fs {
		p, err := ms.Path(f.Src, f.Dst)
		if err != nil {
			return nil, fmt.Errorf("flow %d: %w", i, err)
		}
		r[i] = p
	}
	return r, nil
}

// FlowsOnLinks returns, for every link of net, the indices of the flows
// whose path traverses that link. The result is indexed by LinkID.
func FlowsOnLinks(net *topology.Network, r Routing) [][]int {
	on := make([][]int, net.NumLinks())
	for fi, p := range r {
		for _, l := range p {
			on[l] = append(on[l], fi)
		}
	}
	return on
}
