package core

import (
	"math/big"
	"math/rand"
	"testing"

	"closnet/internal/obs"
	"closnet/internal/topology"
)

// checkOracle asserts that ie's current allocation is bit-identical to a
// fresh full recompute of the same (Collection, MiddleAssignment).
func checkOracle(t *testing.T, fab topology.Fabric, ie *IncrementalEvaluator) {
	t.Helper()
	fs, ma, ids := ie.Flows()
	if len(fs) != ie.Len() || len(ma) != ie.Len() || len(ids) != ie.Len() {
		t.Fatalf("Flows() lengths %d/%d/%d, Len %d", len(fs), len(ma), len(ids), ie.Len())
	}
	if ie.Len() == 0 {
		if got := ie.Rates(); len(got) != 0 {
			t.Fatalf("empty evaluator reports %d rates", len(got))
		}
		return
	}
	ev, err := NewEvaluator(fab, fs)
	if err != nil {
		t.Fatalf("oracle NewEvaluator: %v", err)
	}
	want, err := ev.Eval(ma)
	if err != nil {
		t.Fatalf("oracle Eval: %v", err)
	}
	got := ie.Rates()
	if len(got) != len(want) {
		t.Fatalf("rates length %d, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Fatalf("flow %d (handle %d): incremental %s, oracle %s",
				i, ids[i], got[i].RatString(), want[i].RatString())
		}
		r, err := ie.Rate(ids[i])
		if err != nil {
			t.Fatalf("Rate(%d): %v", ids[i], err)
		}
		if r.Cmp(want[i]) != 0 {
			t.Fatalf("Rate(%d) = %s, oracle %s", ids[i], r.RatString(), want[i].RatString())
		}
	}
}

func randIncFlow(fab topology.Fabric, rng *rand.Rand) Flow {
	tors, servers := fab.NumToRs(), fab.ServersPerToR()
	return Flow{
		Src: fab.Source(rng.Intn(tors)+1, rng.Intn(servers)+1),
		Dst: fab.Dest(rng.Intn(tors)+1, rng.Intn(servers)+1),
	}
}

// driveRandomDeltas applies steps random arrive/depart/reroute deltas,
// checking the allocation against the full-recompute oracle after every
// one.
func driveRandomDeltas(t *testing.T, fab topology.Fabric, ie *IncrementalEvaluator, rng *rand.Rand, steps int) {
	t.Helper()
	var live []FlowID
	for s := 0; s < steps; s++ {
		op := rng.Intn(10)
		switch {
		case len(live) == 0 || op < 5: // arrive
			m := rng.Intn(fab.Size()) + 1
			id, err := ie.Arrive(randIncFlow(fab, rng), m)
			if err != nil {
				t.Fatalf("step %d: Arrive: %v", s, err)
			}
			live = append(live, id)
		case op < 8: // depart
			i := rng.Intn(len(live))
			if err := ie.Depart(live[i]); err != nil {
				t.Fatalf("step %d: Depart(%d): %v", s, live[i], err)
			}
			live = append(live[:i], live[i+1:]...)
		default: // reroute
			id := live[rng.Intn(len(live))]
			if err := ie.Reroute(id, rng.Intn(fab.Size())+1); err != nil {
				t.Fatalf("step %d: Reroute(%d): %v", s, id, err)
			}
		}
		checkOracle(t, fab, ie)
	}
}

// TestIncrementalScriptedC3 walks a handcrafted arrive/depart/reroute
// script on C_3, checking every intermediate allocation against the
// oracle (and a couple of states against known closed-form rates).
func TestIncrementalScriptedC3(t *testing.T) {
	fab := topology.MustClos(3)
	ie := NewIncrementalEvaluator(fab)
	checkOracle(t, fab, ie)

	// Three cyclic flows s_i -> d_{i+1}, all through middle 1: they
	// collide on every middle link and each gets 1/3... actually each
	// gets min over its links; the oracle is the ground truth, the
	// script just exercises each delta kind.
	var ids []FlowID
	for i := 0; i < 3; i++ {
		f := Flow{Src: fab.Source(i+1, 1), Dst: fab.Dest((i+1)%3+1, 1)}
		id, err := ie.Arrive(f, 1)
		if err != nil {
			t.Fatalf("Arrive %d: %v", i, err)
		}
		ids = append(ids, id)
		checkOracle(t, fab, ie)
	}
	if ie.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ie.Len())
	}
	// Spread them over distinct middles: each flow should end at rate 1.
	for i, id := range ids {
		if err := ie.Reroute(id, i+1); err != nil {
			t.Fatalf("Reroute %d: %v", id, err)
		}
		checkOracle(t, fab, ie)
	}
	for _, id := range ids {
		r, err := ie.Rate(id)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cmp(big.NewRat(1, 1)) != 0 {
			t.Fatalf("disjoint-middles rate = %s, want 1", r.RatString())
		}
	}
	// Depart the middle one, then the rest.
	if err := ie.Depart(ids[1]); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, fab, ie)
	if err := ie.Depart(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := ie.Depart(ids[2]); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, fab, ie)
	if ie.Len() != 0 {
		t.Fatalf("Len = %d after full drain, want 0", ie.Len())
	}
}

// TestIncrementalOracleAcrossFamilies fuzzes seeded random delta
// sequences on every fabric family and checks bit-identical equivalence
// with the full recompute after each delta.
func TestIncrementalOracleAcrossFamilies(t *testing.T) {
	fabs := map[string]topology.Fabric{
		"clos3": topology.MustClos(3),
		"clos4": topology.MustClos(4),
	}
	if ft, err := topology.NewFatTree(4); err == nil {
		fabs["fattree4"] = ft
	} else {
		t.Fatalf("NewFatTree(4): %v", err)
	}
	if bn, err := topology.NewBenes(4); err == nil {
		fabs["benes4"] = bn
	} else {
		t.Fatalf("NewBenes(4): %v", err)
	}
	if ov, err := topology.NewOversubscribedClos(3, 4, 2, 1); err == nil {
		fabs["oversub"] = ov
	} else {
		t.Fatalf("NewOversubscribedClos: %v", err)
	}
	for name, fab := range fabs {
		fab := fab
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				ie := NewIncrementalEvaluator(fab)
				driveRandomDeltas(t, fab, ie, rand.New(rand.NewSource(seed)), 60)
			}
		})
	}
}

// TestIncrementalForceBig pins the big.Rat path and checks it against
// the fast incremental path and the oracle on the same delta sequence.
func TestIncrementalForceBig(t *testing.T) {
	fab := topology.MustClos(3)
	fast := NewIncrementalEvaluator(fab)
	big_ := NewIncrementalEvaluator(fab)
	big_.ForceBig(true)
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	var liveA, liveB []FlowID
	for s := 0; s < 40; s++ {
		opA, opB := rngA.Intn(10), rngB.Intn(10)
		if opA != opB {
			t.Fatal("seeded rngs diverged")
		}
		apply := func(ie *IncrementalEvaluator, live []FlowID, rng *rand.Rand) []FlowID {
			switch {
			case len(live) == 0 || opA < 5:
				id, err := ie.Arrive(randIncFlow(fab, rng), rng.Intn(fab.Size())+1)
				if err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				return append(live, id)
			case opA < 8:
				i := rng.Intn(len(live))
				if err := ie.Depart(live[i]); err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				return append(live[:i], live[i+1:]...)
			default:
				if err := ie.Reroute(live[rng.Intn(len(live))], rng.Intn(fab.Size())+1); err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				return live
			}
		}
		liveA = apply(fast, liveA, rngA)
		liveB = apply(big_, liveB, rngB)
		ra, rb := fast.Rates(), big_.Rates()
		if len(ra) != len(rb) {
			t.Fatalf("step %d: %d vs %d rates", s, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i].Cmp(rb[i]) != 0 {
				t.Fatalf("step %d flow %d: fast %s, big %s", s, i, ra[i].RatString(), rb[i].RatString())
			}
		}
		checkOracle(t, fab, big_)
	}
	if fast.Promotions() != 0 {
		t.Fatalf("fast path promoted %d times on C_3", fast.Promotions())
	}
}

// TestIncrementalMidSequencePromotion forces an Rat64 "overflow" partway
// through a delta sequence via the test hook — once during a replay,
// once during a resume fill — and checks that the promotion to big.Rat
// keeps the allocation exact and that the poisoned trace is rebuilt on
// the next delta.
func TestIncrementalMidSequencePromotion(t *testing.T) {
	fab := topology.MustClos(4)
	ie := NewIncrementalEvaluator(fab)
	rng := rand.New(rand.NewSource(11))
	var live []FlowID
	for i := 0; i < 8; i++ {
		id, err := ie.Arrive(randIncFlow(fab, rng), rng.Intn(4)+1)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	checkOracle(t, fab, ie)

	// Force the very first round to "overflow" on the next delta: the
	// replay path hits the hook and must promote.
	ie.testOverflow = func(round int) bool { return round == 0 }
	if err := ie.Depart(live[3]); err != nil {
		t.Fatal(err)
	}
	ie.testOverflow = nil
	if ie.Promotions() != 1 {
		t.Fatalf("Promotions = %d, want 1", ie.Promotions())
	}
	checkOracle(t, fab, ie)
	if ie.traceValid {
		t.Fatal("trace still valid after promotion (poisoning rule violated)")
	}

	// Next delta runs a full fast fill to rebuild the trace.
	id, err := ie.Arrive(randIncFlow(fab, rng), 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	checkOracle(t, fab, ie)
	if !ie.traceValid {
		t.Fatal("trace not rebuilt by the delta after a promotion")
	}
	if ie.Promotions() != 1 {
		t.Fatalf("Promotions = %d after rebuild, want still 1", ie.Promotions())
	}

	// Force an overflow in a later round only: the replay of round 0 may
	// succeed, the resume fill then hits the hook and promotes.
	ie.testOverflow = func(round int) bool { return round >= 1 }
	if err := ie.Reroute(live[0], 3); err != nil {
		t.Fatal(err)
	}
	ie.testOverflow = nil
	if ie.Promotions() != 2 {
		t.Fatalf("Promotions = %d, want 2", ie.Promotions())
	}
	checkOracle(t, fab, ie)
}

// TestIncrementalErrors covers the error paths: bad middles, dead
// handles, and state preservation across a failed Arrive.
func TestIncrementalErrors(t *testing.T) {
	fab := topology.MustClos(3)
	ie := NewIncrementalEvaluator(fab)
	f := Flow{Src: fab.Source(1, 1), Dst: fab.Dest(2, 1)}
	if _, err := ie.Arrive(f, 0); err == nil {
		t.Fatal("Arrive with middle 0 succeeded")
	}
	if _, err := ie.Arrive(f, 4); err == nil {
		t.Fatal("Arrive with middle 4 on C_3 succeeded")
	}
	if ie.Len() != 0 {
		t.Fatalf("failed Arrive left %d flows", ie.Len())
	}
	id, err := ie.Arrive(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ie.Reroute(id, 9); err == nil {
		t.Fatal("Reroute to middle 9 succeeded")
	}
	checkOracle(t, fab, ie)
	if err := ie.Depart(id); err != nil {
		t.Fatal(err)
	}
	if err := ie.Depart(id); err == nil {
		t.Fatal("double Depart succeeded")
	}
	if err := ie.Reroute(id, 1); err == nil {
		t.Fatal("Reroute of departed flow succeeded")
	}
	if _, err := ie.Rate(id); err == nil {
		t.Fatal("Rate of departed flow succeeded")
	}
	if _, err := ie.Rate(FlowID(-1)); err == nil {
		t.Fatal("Rate(-1) succeeded")
	}
	if _, err := ie.Rate(FlowID(99)); err == nil {
		t.Fatal("Rate(99) succeeded")
	}
}

// TestIncrementalCounters wires an Obs and asserts the delta counters:
// every mutation is one delta fill, and on a growing flow set the
// replay reuses (skips) a nonzero number of recorded rounds.
func TestIncrementalCounters(t *testing.T) {
	o := &obs.Obs{Reg: obs.NewRegistry()}
	fab := topology.MustClos(4)
	ie := NewIncrementalEvaluator(fab)
	ie.Instrument(o)
	rng := rand.New(rand.NewSource(3))
	var live []FlowID
	for i := 0; i < 12; i++ {
		id, err := ie.Arrive(randIncFlow(fab, rng), rng.Intn(4)+1)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	for i := 0; i < 4; i++ {
		if err := ie.Depart(live[i*2]); err != nil {
			t.Fatal(err)
		}
	}
	snap := o.Registry().Snapshot()
	if got := snap.Counters["core.delta_fills"]; got != 16 {
		t.Fatalf("core.delta_fills = %d, want 16", got)
	}
	if got := snap.Counters["core.delta_levels_skipped"]; got <= 0 {
		t.Fatalf("core.delta_levels_skipped = %d, want > 0", got)
	}
	if got := snap.Counters["core.delta_promotions"]; got != 0 {
		t.Fatalf("core.delta_promotions = %d, want 0", got)
	}
	checkOracle(t, fab, ie)
}

// FuzzIncrementalDeltas drives byte-scripted delta sequences on C_3 and
// checks full-recompute equivalence after every step. Odd bytes fold in
// a forced-promotion round so the fuzzer also explores the poisoned-
// trace transitions.
func FuzzIncrementalDeltas(f *testing.F) {
	f.Add([]byte{0x00, 0x15, 0x2a, 0x3f, 0x81, 0x52, 0x07})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{0x13, 0x13, 0x13, 0x93, 0x13, 0x13, 0x13, 0x13})
	f.Add([]byte{0x2c, 0x61, 0x0e, 0xb7, 0x44, 0x59, 0x9d, 0x02, 0x70})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 48 {
			script = script[:48]
		}
		fab := topology.MustClos(3)
		ie := NewIncrementalEvaluator(fab)
		var live []FlowID
		for s, b := range script {
			// Bit 7: force a promotion this step. Bits 5-6: op class.
			// Bits 0-4: endpoint/middle/victim selector.
			if b&0x80 != 0 {
				forced := int(b>>5) & 0x3
				ie.testOverflow = func(round int) bool { return round >= forced }
			}
			sel := int(b & 0x1f)
			switch op := (b >> 5) & 0x3; {
			case len(live) == 0 || op <= 1:
				fl := Flow{
					Src: fab.Source(sel%6+1, (sel/3)%3+1),
					Dst: fab.Dest((sel/9)%6+1, sel%3+1),
				}
				id, err := ie.Arrive(fl, sel%3+1)
				if err != nil {
					t.Fatalf("step %d: Arrive: %v", s, err)
				}
				live = append(live, id)
			case op == 2:
				i := sel % len(live)
				if err := ie.Depart(live[i]); err != nil {
					t.Fatalf("step %d: Depart: %v", s, err)
				}
				live = append(live[:i], live[i+1:]...)
			default:
				if err := ie.Reroute(live[sel%len(live)], sel%3+1); err != nil {
					t.Fatalf("step %d: Reroute: %v", s, err)
				}
			}
			ie.testOverflow = nil
			checkOracle(t, fab, ie)
		}
	})
}
