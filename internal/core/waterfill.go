package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// ErrUnboundedFlow is returned by MaxMinFair when some flow traverses no
// finite-capacity link, so its max-min fair rate would be infinite. This
// cannot happen in the paper's topologies, where every flow crosses two
// unit-capacity server links.
var ErrUnboundedFlow = errors.New("waterfill: flow bounded by no finite-capacity link")

// MaxMinFair computes the max-min fair allocation for the given routing by
// exact progressive filling (the water-filling algorithm of [6, 28] cited
// in §2.2): the rates of all unfrozen flows rise uniformly; whenever a
// link saturates, the flows crossing it freeze at the current water level.
//
// The result is exact. The allocator runs in O(|F|) rounds, each scanning
// all links, and the returned allocation always satisfies the bottleneck
// property (enforced separately by IsMaxMinFair in tests).
func MaxMinFair(net *topology.Network, fs Collection, r Routing) (Allocation, error) {
	return MaxMinFairCtx(context.Background(), net, fs, r)
}

// MaxMinFairCtx is MaxMinFair bounded by a context: the filler polls
// ctx once per freeze round (each round is one O(links) scan, so
// cancellation latency is a single round) and a cancelled run returns
// ctx.Err() with no partial allocation. It is the deadline propagation
// path of the serving layer's /v1/evaluate and /v1/doom operations,
// which previously ran to completion after their request had been
// abandoned.
func MaxMinFairCtx(ctx context.Context, net *topology.Network, fs Collection, r Routing) (Allocation, error) {
	if err := r.Validate(net, fs); err != nil {
		return nil, fmt.Errorf("waterfill: %w", err)
	}
	nf := len(fs)
	rates := rational.NewVec(nf)
	if nf == 0 {
		return rates, nil
	}

	links := net.Links()
	on := FlowsOnLinks(net, r)

	remaining := make([]*big.Rat, len(links))
	active := make([]int, len(links)) // unfrozen flows per link
	finite := make([]bool, len(links))
	for _, l := range links {
		if l.Unbounded {
			continue
		}
		finite[l.ID] = true
		remaining[l.ID] = rational.Copy(l.Capacity)
		active[l.ID] = len(on[l.ID])
	}

	frozen := make([]bool, nf)
	level := rational.Zero() // common rate of all unfrozen flows
	remainingFlows := nf

	for remainingFlows > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Smallest uniform increase that saturates some link:
		// min over finite links with active flows of remaining/active.
		var delta *big.Rat
		for id := range links {
			if !finite[id] || active[id] == 0 {
				continue
			}
			d := new(big.Rat).Quo(remaining[id], rational.Int(int64(active[id])))
			if delta == nil || d.Cmp(delta) < 0 {
				delta = d
			}
		}
		if delta == nil {
			return nil, ErrUnboundedFlow
		}

		level = rational.Add(level, delta)
		for id := range links {
			if !finite[id] || active[id] == 0 {
				continue
			}
			used := rational.Mul(delta, rational.Int(int64(active[id])))
			remaining[id] = rational.Sub(remaining[id], used)
		}

		// Freeze every unfrozen flow crossing a saturated link. Freezing
		// only decreases active counts and never changes remaining, so a
		// single pass over the links suffices per round.
		progressed := false
		for id := range links {
			if !finite[id] || active[id] == 0 || remaining[id].Sign() != 0 {
				continue
			}
			for _, fi := range on[id] {
				if frozen[fi] {
					continue
				}
				frozen[fi] = true
				rates[fi] = rational.Copy(level)
				remainingFlows--
				progressed = true
				for _, l := range r[fi] {
					if finite[l] {
						active[l]--
					}
				}
			}
		}
		if !progressed {
			// Defensive: delta was chosen so at least one link saturates
			// with at least one active flow; reaching here is a bug.
			return nil, errors.New("waterfill: no progress (internal invariant violated)")
		}
	}
	return rates, nil
}

// MacroMaxMinFair computes the (unique) max-min fair allocation of fs in
// the macro-switch ms, where the routing is forced.
func MacroMaxMinFair(ms *topology.MacroSwitch, fs Collection) (Allocation, error) {
	r, err := MacroRouting(ms, fs)
	if err != nil {
		return nil, err
	}
	return MaxMinFair(ms.Network(), fs, r)
}

// ClosMaxMinFair computes the max-min fair allocation of fs in the Clos
// network c under the routing given by middle assignment ma.
func ClosMaxMinFair(c topology.Fabric, fs Collection, ma MiddleAssignment) (Allocation, error) {
	return ClosMaxMinFairCtx(context.Background(), c, fs, ma)
}

// ClosMaxMinFairCtx is ClosMaxMinFair bounded by a context (see
// MaxMinFairCtx for the cancellation contract).
func ClosMaxMinFairCtx(ctx context.Context, c topology.Fabric, fs Collection, ma MiddleAssignment) (Allocation, error) {
	r, err := ClosRouting(c, fs, ma)
	if err != nil {
		return nil, err
	}
	return MaxMinFairCtx(ctx, c.Network(), fs, r)
}
