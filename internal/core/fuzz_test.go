package core

import (
	"math"
	"testing"

	"closnet/internal/rational"
)

// FuzzWaterfill drives the allocator with arbitrary byte-encoded
// instances and checks the full invariant set: feasibility, the
// bottleneck property (Lemma 2.2) and exact/float agreement.
func FuzzWaterfill(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 2, 1, 3, 4, 0, 5, 6, 1})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, fs, ma := quickInstance(data)
		if len(fs) == 0 {
			return
		}
		r, err := ClosRouting(c, fs, ma)
		if err != nil {
			t.Fatalf("routing: %v", err)
		}
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			t.Fatalf("waterfill: %v", err)
		}
		if err := IsFeasible(c.Network(), fs, r, a); err != nil {
			t.Fatalf("infeasible output: %v", err)
		}
		if err := IsMaxMinFair(c.Network(), fs, r, a); err != nil {
			t.Fatalf("bottleneck property: %v", err)
		}
		approx, err := MaxMinFairFloat(c.Network(), fs, r)
		if err != nil {
			t.Fatalf("float waterfill: %v", err)
		}
		for i := range a {
			if diff := math.Abs(rational.Float(a[i]) - approx[i]); diff > 1e-9 {
				t.Fatalf("flow %d: exact %s vs float %v", i, rational.String(a[i]), approx[i])
			}
		}
	})
}
