package core

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// FlowID is a stable handle on a flow held by an IncrementalEvaluator.
// Handles survive arrivals and departures of other flows; a departed
// flow's handle may be reused by a later arrival.
type FlowID int

// IncrementalEvaluator maintains the max-min fair allocation of a
// mutating flow set over one fixed fabric: flows arrive, depart and
// reroute one at a time, and after every mutation the allocation equals
// what a fresh Evaluator.Eval of the current (Collection,
// MiddleAssignment) would return — exactly, as rationals.
//
// Where the Evaluator recomputes every water-filling round from
// scratch, the IncrementalEvaluator keeps the full trace of the last
// fill: one snapshot of the Rat64 scratch (residual capacities and
// active counts per finite link) at the start of every round, plus each
// round's outcome (bottleneck link, min delta, saturated link set,
// frozen flows). A single-flow delta perturbs only the finite links of
// the changed path(s) — the affected set A — so a prefix of the old
// rounds replays unchanged. Round r is reusable iff
//
//   - the old bottleneck is not in A,
//   - no old saturated link is in A (a departure of a flow frozen via
//     an A-link lands here), and
//   - every A-link's fresh delta remaining/active is STRICTLY above the
//     old round's min delta (ties must diverge: an A-link would enter
//     the saturated set).
//
// Replaying a clean round costs O(|A|): drain the A-links, reapply the
// recorded freezes (their shared *big.Rat level is cached on the
// round), and patch the snapshot's A-entries. At the first dirty round
// the filling resumes the ordinary Rat64 loop from that round's
// snapshot, recording a fresh trace suffix. The reused rounds are
// counted on core.delta_levels_skipped; every mutation-triggered fill
// counts on core.delta_fills.
//
// Promotion poisoning: any Rat64 overflow — during replay or resume —
// abandons the fast trace, re-runs the whole fill losslessly on
// *big.Rat (counted on core.delta_promotions), and invalidates the
// trace; the next mutation then runs one full fast fill to rebuild it.
// ForceBig pins the big.Rat path, which doubles as the differential-
// test oracle. An IncrementalEvaluator is NOT safe for concurrent use.
type IncrementalEvaluator struct {
	fab topology.Fabric
	n   int // path choices

	// Finite-link index: the water filling only ever touches finite
	// links, so all per-link scratch is dense over finiteIdx
	// 0..nFin-1, ordered by ascending LinkID (the scan order every
	// evaluator in this package shares).
	nFin     int
	finLinks []topology.LinkID // finiteIdx -> LinkID
	fidx     []int             // LinkID -> finiteIdx, -1 when unbounded
	caps64   []rational.Rat64
	capsBig  []*big.Rat
	fast     bool
	forceBig bool

	// Flow table: slot-allocated, so FlowID handles stay stable across
	// departures. order lists the live handles in insertion order — the
	// order Flows() and Rates() report.
	flows []iflow
	free  []FlowID
	order []FlowID
	nLive int

	// on[l] lists the live flows crossing finite link l, the freeze-scan
	// source. active counts are derived as len(on[l]) at fill start.
	on [][]FlowID

	// Trace of the last successful fast fill: snaps[r] is the scratch
	// state at the start of round r (len(snaps) == len(rounds)+1; the
	// last snapshot is the terminal state), rounds[r] its outcome.
	snaps      []incSnap
	rounds     []incRound
	traceValid bool

	// Scratch reused across fills.
	rem    []rational.Rat64
	act    []int
	frozen []bool // by FlowID
	affIdx []int  // finiteIdx -> position in the current affected set, -1
	affRem []rational.Rat64
	affAct []int

	// big.Rat scratch for the promotion path.
	remB                   []*big.Rat
	actRat, delta, tmp     *big.Rat
	xInt, yInt, aInt, bInt *big.Int

	promotions int

	// testOverflow, when non-nil, forces the fast path to report an
	// Rat64 overflow at the given round index — the hook the promotion
	// tests use to trigger mid-sequence big.Rat fallbacks on instances
	// that cannot overflow naturally.
	testOverflow func(round int) bool

	cFills      *obs.Counter
	cSkipped    *obs.Counter
	cPromotions *obs.Counter
	jour        *obs.Journal
}

// iflow is one flow slot.
type iflow struct {
	flow   Flow
	middle int
	finite []int // finiteIdx list of the current path's finite links
	live   bool
	rate   *big.Rat
}

// incSnap is the scratch state at the start of one water-filling round.
type incSnap struct {
	level rational.Rat64
	rem   []rational.Rat64
	act   []int
}

// incRound is the recorded outcome of one round: the bottleneck, its
// delta, the freeze level (shared by every flow frozen this round), the
// saturated links the freeze scan processed, and the flows it froze.
type incRound struct {
	minIdx   int
	minDelta rational.Rat64
	levelRat *big.Rat
	sat      []int
	frozen   []FlowID
}

// NewIncrementalEvaluator prepares incremental max-min fair evaluation
// over fab, starting from the empty flow set.
func NewIncrementalEvaluator(fab topology.Fabric) *IncrementalEvaluator {
	ie := &IncrementalEvaluator{fab: fab, n: fab.Size(), fast: true}
	links := fab.Network().Links()
	ie.fidx = make([]int, len(links))
	for i := range ie.fidx {
		ie.fidx[i] = -1
	}
	var ids []topology.LinkID
	for _, l := range links {
		if !l.Unbounded {
			ids = append(ids, l.ID)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	ie.nFin = len(ids)
	ie.finLinks = ids
	ie.caps64 = make([]rational.Rat64, ie.nFin)
	ie.capsBig = make([]*big.Rat, ie.nFin)
	for j, id := range ids {
		ie.fidx[id] = j
		l := links[id]
		ie.capsBig[j] = l.Capacity
		if c64, ok := l.Capacity64(); ok {
			ie.caps64[j] = c64
		} else {
			ie.fast = false
		}
	}
	ie.on = make([][]FlowID, ie.nFin)
	ie.rem = make([]rational.Rat64, ie.nFin)
	ie.act = make([]int, ie.nFin)
	ie.affIdx = make([]int, ie.nFin)
	for j := range ie.affIdx {
		ie.affIdx[j] = -1
	}
	ie.remB = make([]*big.Rat, ie.nFin)
	for j := range ie.remB {
		ie.remB[j] = new(big.Rat)
	}
	ie.actRat, ie.delta, ie.tmp = new(big.Rat), new(big.Rat), new(big.Rat)
	ie.xInt, ie.yInt = new(big.Int), new(big.Int)
	ie.aInt, ie.bInt = new(big.Int), new(big.Int)
	return ie
}

// Instrument attaches the observability layer: delta-triggered fills,
// reused (skipped) rounds and big.Rat promotions land in o's registry,
// and each promotion journals a core.delta_promotion event. A nil o
// leaves the evaluator uninstrumented.
func (ie *IncrementalEvaluator) Instrument(o *obs.Obs) {
	reg := o.Registry()
	ie.cFills = reg.Counter("core.delta_fills")
	ie.cSkipped = reg.Counter("core.delta_levels_skipped")
	ie.cPromotions = reg.Counter("core.delta_promotions")
	ie.jour = o.Journal()
}

// ForceBig pins every fill to the *big.Rat path when on is true. The
// allocations are identical; it exists for differential tests and for
// benchmarking the incremental fast path against its fallback.
func (ie *IncrementalEvaluator) ForceBig(on bool) { ie.forceBig = on }

// Promotions returns the number of fills so far that overflowed the
// Rat64 kernel and were re-run losslessly on *big.Rat.
func (ie *IncrementalEvaluator) Promotions() int { return ie.promotions }

// Len returns the number of live flows.
func (ie *IncrementalEvaluator) Len() int { return ie.nLive }

// Arrive admits a flow on the path selected by middle and refills. On
// success the returned handle addresses the flow in Depart/Reroute/
// Rate; on error the evaluator state is unchanged.
func (ie *IncrementalEvaluator) Arrive(f Flow, middle int) (FlowID, error) {
	if middle < 1 || middle > ie.n {
		return -1, fmt.Errorf("incremental: middle %d out of range [1, %d]", middle, ie.n)
	}
	path, err := ie.fab.Path(f.Src, f.Dst, middle)
	if err != nil {
		return -1, fmt.Errorf("incremental: %w", err)
	}
	finite := make([]int, 0, len(path))
	for _, l := range path {
		if j := ie.fidx[l]; j >= 0 {
			finite = append(finite, j)
		}
	}

	var h FlowID
	if n := len(ie.free); n > 0 {
		h = ie.free[n-1]
		ie.free = ie.free[:n-1]
	} else {
		h = FlowID(len(ie.flows))
		ie.flows = append(ie.flows, iflow{})
		ie.frozen = append(ie.frozen, false)
	}
	ie.flows[h] = iflow{flow: f, middle: middle, finite: finite, live: true}
	ie.order = append(ie.order, h)
	ie.nLive++
	for _, j := range finite {
		ie.on[j] = append(ie.on[j], h)
	}

	if err := ie.refill(finite); err != nil {
		// Roll the admission back (the handle was never returned, so no
		// caller holds it) and restore the previous allocation with a
		// full fill — the prior state filled successfully, so this
		// cannot fail the same way.
		for _, j := range finite {
			ie.on[j] = removeHandle(ie.on[j], h)
		}
		ie.order = ie.order[:len(ie.order)-1]
		ie.flows[h].live = false
		ie.free = append(ie.free, h)
		ie.nLive--
		ie.refill(finite)
		return -1, err
	}
	return h, nil
}

// Depart removes a live flow and refills.
func (ie *IncrementalEvaluator) Depart(id FlowID) error {
	if err := ie.checkLive(id); err != nil {
		return err
	}
	fl := &ie.flows[id]
	for _, j := range fl.finite {
		ie.on[j] = removeHandle(ie.on[j], id)
	}
	for i, h := range ie.order {
		if h == id {
			ie.order = append(ie.order[:i], ie.order[i+1:]...)
			break
		}
	}
	fl.live = false
	ie.free = append(ie.free, id)
	ie.nLive--
	return ie.refill(fl.finite)
}

// Reroute moves a live flow onto the path selected by middle and
// refills. The affected set is the union of the old and new paths'
// finite links.
func (ie *IncrementalEvaluator) Reroute(id FlowID, middle int) error {
	if err := ie.checkLive(id); err != nil {
		return err
	}
	if middle < 1 || middle > ie.n {
		return fmt.Errorf("incremental: middle %d out of range [1, %d]", middle, ie.n)
	}
	fl := &ie.flows[id]
	path, err := ie.fab.Path(fl.flow.Src, fl.flow.Dst, middle)
	if err != nil {
		return fmt.Errorf("incremental: %w", err)
	}
	newFinite := make([]int, 0, len(path))
	for _, l := range path {
		if j := ie.fidx[l]; j >= 0 {
			newFinite = append(newFinite, j)
		}
	}
	aff := make([]int, 0, len(fl.finite)+len(newFinite))
	for _, j := range fl.finite {
		ie.on[j] = removeHandle(ie.on[j], id)
		aff = append(aff, j)
	}
	for _, j := range newFinite {
		ie.on[j] = append(ie.on[j], id)
		if ie.affIdx[j] < 0 {
			ie.affIdx[j] = 0 // mark for dedup; refill re-marks with real positions
			aff = append(aff, j)
		}
	}
	// A link on both paths was marked only once above; links only on the
	// old path were never marked. Normalize: clear every mark so refill
	// starts from a clean affIdx, then dedup the old-path entries that
	// also appear in newFinite.
	for _, j := range newFinite {
		ie.affIdx[j] = -1
	}
	aff = dedupAff(aff, ie.affIdx)
	fl.middle, fl.finite = middle, newFinite
	return ie.refill(aff)
}

// dedupAff removes duplicate finite-link indices from aff using mark as
// scratch (entries must be -1 on entry; they are -1 again on return).
func dedupAff(aff []int, mark []int) []int {
	out := aff[:0]
	for _, j := range aff {
		if mark[j] < 0 {
			mark[j] = 0
			out = append(out, j)
		}
	}
	for _, j := range out {
		mark[j] = -1
	}
	return out
}

func (ie *IncrementalEvaluator) checkLive(id FlowID) error {
	if id < 0 || int(id) >= len(ie.flows) || !ie.flows[id].live {
		return fmt.Errorf("incremental: no live flow with handle %d", id)
	}
	return nil
}

// Rate returns the current rate of a live flow. The returned value is
// shared and must not be mutated.
func (ie *IncrementalEvaluator) Rate(id FlowID) (*big.Rat, error) {
	if err := ie.checkLive(id); err != nil {
		return nil, err
	}
	return ie.flows[id].rate, nil
}

// Rates returns the current allocation in insertion order (the order
// Flows reports). The vector is freshly allocated; its elements are
// shared and must not be mutated.
func (ie *IncrementalEvaluator) Rates() rational.Vec {
	v := make(rational.Vec, 0, ie.nLive)
	for _, h := range ie.order {
		v = append(v, ie.flows[h].rate)
	}
	return v
}

// Flows returns the live flow set in insertion order: the collection,
// the middle assignment, and the handle of each entry. A fresh
// Evaluator over exactly this (Collection, MiddleAssignment) is the
// full-recompute oracle of the incremental path.
func (ie *IncrementalEvaluator) Flows() (Collection, MiddleAssignment, []FlowID) {
	fs := make(Collection, 0, ie.nLive)
	ma := make(MiddleAssignment, 0, ie.nLive)
	ids := make([]FlowID, 0, ie.nLive)
	for _, h := range ie.order {
		fs = append(fs, ie.flows[h].flow)
		ma = append(ma, ie.flows[h].middle)
		ids = append(ids, h)
	}
	return fs, ma, ids
}

// refill recomputes the allocation after a mutation whose affected
// finite-link set is aff. On any error the trace is invalid and the
// next refill runs a full fill.
func (ie *IncrementalEvaluator) refill(aff []int) error {
	ie.cFills.Inc()
	if !ie.fast || ie.forceBig {
		return ie.fillBig()
	}
	if !ie.traceValid || len(aff) == 0 {
		return ie.fullFill64()
	}
	ie.traceValid = false

	for _, h := range ie.order {
		ie.frozen[h] = false
	}
	if n := len(aff); cap(ie.affRem) < n {
		ie.affRem = make([]rational.Rat64, n)
		ie.affAct = make([]int, n)
	}
	ie.affRem, ie.affAct = ie.affRem[:len(aff)], ie.affAct[:len(aff)]
	for j, l := range aff {
		ie.affIdx[l] = j
		ie.affRem[j] = ie.caps64[l]
		ie.affAct[j] = len(ie.on[l])
	}

	r, frozenCount, overflow := 0, 0, false
	for r < len(ie.rounds) {
		ie.patchSnap(r, aff)
		clean, over := ie.replayRound(r, aff)
		if over {
			overflow = true
			break
		}
		if !clean {
			break
		}
		frozenCount += len(ie.rounds[r].frozen)
		r++
	}
	if !overflow && r == len(ie.rounds) {
		ie.patchSnap(r, aff) // terminal snapshot
	}
	for _, l := range aff {
		ie.affIdx[l] = -1
	}
	ie.cSkipped.Add(int64(r))
	if overflow {
		return ie.promote()
	}

	ie.rounds = ie.rounds[:r]
	ie.snaps = ie.snaps[:r+1]
	ok, err := ie.fillFrom(ie.snaps[r].level, ie.nLive-frozenCount)
	if err != nil {
		return err
	}
	if !ok {
		return ie.promote()
	}
	ie.traceValid = true
	return nil
}

// patchSnap overwrites the affected entries of snapshot r with the
// incrementally maintained post-mutation values. Unaffected entries are
// untouched — they are identical in the old and new runs for every
// round the replay reaches.
func (ie *IncrementalEvaluator) patchSnap(r int, aff []int) {
	snap := &ie.snaps[r]
	for j, l := range aff {
		snap.rem[l] = ie.affRem[j]
		snap.act[l] = ie.affAct[j]
	}
}

// replayRound checks whether recorded round r is unaffected by the
// mutation and, if so, replays it: drains the affected links and
// reapplies the recorded freezes. overflow reports an Rat64 overflow
// (the caller promotes); a false clean with no overflow means the
// filling must resume from this round's snapshot.
func (ie *IncrementalEvaluator) replayRound(r int, aff []int) (clean, overflow bool) {
	rd := &ie.rounds[r]
	if ie.affIdx[rd.minIdx] >= 0 {
		return false, false
	}
	for _, l := range rd.sat {
		if ie.affIdx[l] >= 0 {
			return false, false
		}
	}
	for _, h := range rd.frozen {
		if !ie.flows[h].live {
			return false, false
		}
	}
	for j := range aff {
		if ie.affAct[j] == 0 {
			continue
		}
		d, ok := ie.affRem[j].DivInt(int64(ie.affAct[j]))
		if !ok {
			return false, true
		}
		// Equality must diverge: an affected link reaching the old min
		// delta joins the saturated set and changes the freeze order.
		if d.Cmp(rd.minDelta) <= 0 {
			return false, false
		}
	}
	if ie.testOverflow != nil && ie.testOverflow(r) {
		return false, true
	}
	for j := range aff {
		if ie.affAct[j] == 0 {
			continue
		}
		used, ok := rd.minDelta.MulInt(int64(ie.affAct[j]))
		if !ok {
			return false, true
		}
		if ie.affRem[j], ok = ie.affRem[j].Sub(used); !ok {
			return false, true
		}
	}
	for _, h := range rd.frozen {
		ie.frozen[h] = true
		ie.flows[h].rate = rd.levelRat
		for _, l := range ie.flows[h].finite {
			if j := ie.affIdx[l]; j >= 0 {
				ie.affAct[j]--
			}
		}
	}
	return true, false
}

// fullFill64 runs the fast filling from scratch and records a fresh
// trace.
func (ie *IncrementalEvaluator) fullFill64() error {
	ie.traceValid = false
	ie.rounds = ie.rounds[:0]
	ie.snaps = ie.snaps[:0]
	for l := 0; l < ie.nFin; l++ {
		ie.rem[l] = ie.caps64[l]
		ie.act[l] = len(ie.on[l])
	}
	for _, h := range ie.order {
		ie.frozen[h] = false
	}
	ie.pushSnap(rational.Zero64())
	ok, err := ie.fillFrom(rational.Zero64(), ie.nLive)
	if err != nil {
		return err
	}
	if !ok {
		return ie.promote()
	}
	ie.traceValid = true
	return nil
}

// fillFrom continues the fast progressive filling from the last
// snapshot (which must hold the current scratch state), appending one
// round record and one snapshot per round until every live flow is
// frozen. It mirrors Evaluator.eval64 exactly: same link scan order,
// same strict-< tie rule, same freeze order, so the resulting rates are
// identical rationals. ok is false when an Rat64 operation overflowed.
func (ie *IncrementalEvaluator) fillFrom(level rational.Rat64, remaining int) (ok bool, err error) {
	last := &ie.snaps[len(ie.snaps)-1]
	copy(ie.rem, last.rem)
	copy(ie.act, last.act)
	for remaining > 0 {
		if ie.testOverflow != nil && ie.testOverflow(len(ie.rounds)) {
			return false, nil
		}
		minIdx := -1
		var minDelta rational.Rat64
		for l := 0; l < ie.nFin; l++ {
			if ie.act[l] == 0 {
				continue
			}
			d, ok := ie.rem[l].DivInt(int64(ie.act[l]))
			if !ok {
				return false, nil
			}
			if minIdx < 0 || d.Cmp(minDelta) < 0 {
				minIdx, minDelta = l, d
			}
		}
		if minIdx < 0 {
			return true, ErrUnboundedFlow
		}
		var okOp bool
		if level, okOp = level.Add(minDelta); !okOp {
			return false, nil
		}
		for l := 0; l < ie.nFin; l++ {
			if ie.act[l] == 0 {
				continue
			}
			used, ok2 := minDelta.MulInt(int64(ie.act[l]))
			if !ok2 {
				return false, nil
			}
			if ie.rem[l], ok2 = ie.rem[l].Sub(used); !ok2 {
				return false, nil
			}
		}
		rd := ie.nextRound()
		rd.minIdx, rd.minDelta = minIdx, minDelta
		progressed := false
		for l := 0; l < ie.nFin; l++ {
			if ie.act[l] == 0 || !ie.rem[l].IsZero() {
				continue
			}
			rd.sat = append(rd.sat, l)
			for _, h := range ie.on[l] {
				if ie.frozen[h] {
					continue
				}
				ie.frozen[h] = true
				if rd.levelRat == nil {
					rd.levelRat = level.Rat()
				}
				ie.flows[h].rate = rd.levelRat
				rd.frozen = append(rd.frozen, h)
				remaining--
				progressed = true
				for _, fl := range ie.flows[h].finite {
					ie.act[fl]--
				}
			}
		}
		if !progressed {
			return true, errors.New("incremental: no progress (internal invariant violated)")
		}
		ie.pushSnap(level)
	}
	return true, nil
}

// nextRound extends ie.rounds by one entry, recycling the sat/frozen
// backing arrays of a previously truncated record when the slice has
// spare capacity — replays truncate and re-extend the trace on every
// delta, so reallocating per round would dominate the fill cost.
func (ie *IncrementalEvaluator) nextRound() *incRound {
	if len(ie.rounds) < cap(ie.rounds) {
		ie.rounds = ie.rounds[:len(ie.rounds)+1]
		rd := &ie.rounds[len(ie.rounds)-1]
		rd.sat = rd.sat[:0]
		rd.frozen = rd.frozen[:0]
		rd.levelRat = nil
		return rd
	}
	ie.rounds = append(ie.rounds, incRound{})
	return &ie.rounds[len(ie.rounds)-1]
}

// pushSnap appends a snapshot of the current scratch state, recycling a
// truncated entry's rem/act arrays when possible (see nextRound).
func (ie *IncrementalEvaluator) pushSnap(level rational.Rat64) {
	if len(ie.snaps) < cap(ie.snaps) {
		ie.snaps = ie.snaps[:len(ie.snaps)+1]
		s := &ie.snaps[len(ie.snaps)-1]
		if len(s.rem) != ie.nFin {
			s.rem = make([]rational.Rat64, ie.nFin)
			s.act = make([]int, ie.nFin)
		}
		s.level = level
		copy(s.rem, ie.rem)
		copy(s.act, ie.act)
		return
	}
	s := incSnap{level: level, rem: make([]rational.Rat64, ie.nFin), act: make([]int, ie.nFin)}
	copy(s.rem, ie.rem)
	copy(s.act, ie.act)
	ie.snaps = append(ie.snaps, s)
}

// promote re-runs the current fill losslessly on *big.Rat after an
// Rat64 overflow. The trace is poisoned: the next mutation pays one
// full fast fill to rebuild it.
func (ie *IncrementalEvaluator) promote() error {
	ie.promotions++
	ie.cPromotions.Inc()
	ie.jour.Emit("core.delta_promotion", obs.F{"promotions": ie.promotions})
	return ie.fillBig()
}

// fillBig is the exact progressive filling on *big.Rat, mirroring
// Evaluator.evalBig (same scan order, same cross-multiplied min-delta
// comparison, same tie rule) over the live flow set. It records no
// trace — the Rat64 trace cannot represent these values.
func (ie *IncrementalEvaluator) fillBig() error {
	ie.traceValid = false
	ie.rounds = ie.rounds[:0]
	ie.snaps = ie.snaps[:0]
	for l := 0; l < ie.nFin; l++ {
		ie.remB[l].Set(ie.capsBig[l])
		ie.act[l] = len(ie.on[l])
	}
	for _, h := range ie.order {
		ie.frozen[h] = false
	}
	remaining := ie.nLive
	level := new(big.Rat)
	for remaining > 0 {
		minIdx := -1
		for l := 0; l < ie.nFin; l++ {
			if ie.act[l] == 0 {
				continue
			}
			if minIdx < 0 {
				minIdx = l
				continue
			}
			ie.aInt.SetInt64(int64(ie.act[minIdx]))
			ie.bInt.SetInt64(int64(ie.act[l]))
			ie.xInt.Mul(ie.remB[l].Num(), ie.remB[minIdx].Denom())
			ie.xInt.Mul(ie.xInt, ie.aInt)
			ie.yInt.Mul(ie.remB[minIdx].Num(), ie.remB[l].Denom())
			ie.yInt.Mul(ie.yInt, ie.bInt)
			if ie.xInt.Cmp(ie.yInt) < 0 {
				minIdx = l
			}
		}
		if minIdx < 0 {
			return ErrUnboundedFlow
		}
		ie.actRat.SetInt64(int64(ie.act[minIdx]))
		ie.delta.Quo(ie.remB[minIdx], ie.actRat)
		level.Add(level, ie.delta)
		for l := 0; l < ie.nFin; l++ {
			if ie.act[l] == 0 {
				continue
			}
			ie.actRat.SetInt64(int64(ie.act[l]))
			ie.tmp.Mul(ie.delta, ie.actRat)
			ie.remB[l].Sub(ie.remB[l], ie.tmp)
		}
		var levelRat *big.Rat
		progressed := false
		for l := 0; l < ie.nFin; l++ {
			if ie.act[l] == 0 || ie.remB[l].Sign() != 0 {
				continue
			}
			for _, h := range ie.on[l] {
				if ie.frozen[h] {
					continue
				}
				ie.frozen[h] = true
				if levelRat == nil {
					levelRat = rational.Copy(level)
				}
				ie.flows[h].rate = levelRat
				remaining--
				progressed = true
				for _, fl := range ie.flows[h].finite {
					ie.act[fl]--
				}
			}
		}
		if !progressed {
			return errors.New("incremental: no progress (internal invariant violated)")
		}
	}
	return nil
}

func removeHandle(on []FlowID, h FlowID) []FlowID {
	for i, x := range on {
		if x == h {
			return append(on[:i], on[i+1:]...)
		}
	}
	return on
}
