package core

import (
	"testing"
)

// FuzzBlockEvalMatchesSingle is the block evaluator's differential
// fuzz: a random small Clos instance plus a random assignment block,
// with BlockEvaluator output required to be Vec.Equal-identical to the
// per-state Eval on every element. The mode byte additionally drives
// the promotion protocol through its regimes: pinned big.Rat blocks
// (ForceBig) and mixed blocks where the test hook forces a
// pseudo-random subset of states through a mid-fill promotion.
func FuzzBlockEvalMatchesSingle(f *testing.F) {
	f.Add([]byte{0, 0, 0}, uint8(0))
	f.Add([]byte{1, 2, 1, 3, 4, 0, 5, 6, 1}, uint8(1))             // ForceBig
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(0xAA)) // mixed promotions
	f.Add([]byte{9, 1, 4, 2, 8, 5, 7, 3, 6}, uint8(0x55))

	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		c, fs, _ := quickInstance(data)
		if len(fs) == 0 {
			return
		}
		nf, n := len(fs), c.Size()
		k := 1 + int(mode>>5)%7
		mas := make([]int, k*nf)
		for i := range mas {
			// Recycle the instance bytes into block assignments so the
			// fuzzer controls both.
			mas[i] = 1 + int(data[(i*7+k)%len(data)])%n
		}
		ev, err := NewEvaluator(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		be, err := NewBlockEvaluator(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		forceBig := mode&1 == 1
		be.ForceBig(forceBig)
		if !forceBig && mode > 1 {
			mask := mode >> 1
			be.testOverflow = func(s int) bool { return mask&(1<<(s%7)) != 0 }
		}
		res, err := be.EvalBlock(mas, k)
		if err != nil {
			t.Fatalf("EvalBlock: %v", err)
		}
		for s := 0; s < k; s++ {
			want, err := ev.Eval(mas[s*nf : (s+1)*nf])
			if err != nil {
				t.Fatalf("state %d: Eval: %v", s, err)
			}
			if got := res.Alloc(s); !got.Equal(want) {
				t.Fatalf("state %d (promoted=%v, forceBig=%v): block %v, per-state %v",
					s, res.Promoted(s), forceBig, got, want)
			}
		}
	})
}
