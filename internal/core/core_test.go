package core

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// example23 builds the flow collection of Example 2.3 (Figure 1) over C_2.
// Flow order: three type-1 flows (orange), two type-2 flows (blue), one
// type-3 flow (green).
func example23(c *topology.Clos) Collection {
	return NewCollection(
		c.Source(1, 2), c.Dest(1, 2), // type 1
		c.Source(1, 2), c.Dest(2, 1), // type 1
		c.Source(1, 2), c.Dest(2, 2), // type 1
		c.Source(2, 1), c.Dest(2, 1), // type 2
		c.Source(2, 2), c.Dest(2, 2), // type 2
		c.Source(1, 1), c.Dest(1, 1), // type 3
	)
}

func example23Macro(ms *topology.MacroSwitch) Collection {
	return NewCollection(
		ms.Source(1, 2), ms.Dest(1, 2),
		ms.Source(1, 2), ms.Dest(2, 1),
		ms.Source(1, 2), ms.Dest(2, 2),
		ms.Source(2, 1), ms.Dest(2, 1),
		ms.Source(2, 2), ms.Dest(2, 2),
		ms.Source(1, 1), ms.Dest(1, 1),
	)
}

func TestExample23MacroSwitch(t *testing.T) {
	ms := topology.MustMacroSwitch(2)
	fs := example23Macro(ms)
	if err := fs.Validate(ms.Network()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	a, err := MacroMaxMinFair(ms, fs)
	if err != nil {
		t.Fatalf("MacroMaxMinFair: %v", err)
	}
	want := rational.VecOf(1, 3, 1, 3, 1, 3, 2, 3, 2, 3, 1, 1)
	if !a.Equal(want) {
		t.Fatalf("macro allocation = %v, want %v", a, want)
	}
	r, _ := MacroRouting(ms, fs)
	if err := IsMaxMinFair(ms.Network(), fs, r, a); err != nil {
		t.Errorf("bottleneck property: %v", err)
	}
	if got, want := Throughput(a), rational.R(10, 3); got.Cmp(want) != 0 {
		t.Errorf("throughput = %s, want %s", rational.String(got), rational.String(want))
	}
}

func TestExample23ClosRoutings(t *testing.T) {
	c := topology.MustClos(2)
	fs := example23(c)
	if err := fs.Validate(c.Network()); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	tests := []struct {
		name string
		ma   MiddleAssignment
		want rational.Vec
	}{
		{
			// Figure 1a first routing: type-1 flow (s1.2, t2.1) on M1.
			name: "routing A",
			ma:   MiddleAssignment{2, 1, 2, 1, 2, 1},
			want: rational.VecOf(1, 3, 1, 3, 1, 3, 2, 3, 2, 3, 2, 3),
		},
		{
			// Second routing: (s1.2, t2.1) re-assigned to M2.
			name: "routing B",
			ma:   MiddleAssignment{2, 2, 2, 1, 2, 1},
			want: rational.VecOf(1, 3, 1, 3, 1, 3, 2, 3, 1, 3, 1, 1),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := ClosMaxMinFair(c, fs, tt.ma)
			if err != nil {
				t.Fatalf("ClosMaxMinFair: %v", err)
			}
			if !a.Equal(tt.want) {
				t.Fatalf("allocation = %v, want %v", a, tt.want)
			}
			r, _ := ClosRouting(c, fs, tt.ma)
			if err := IsMaxMinFair(c.Network(), fs, r, a); err != nil {
				t.Errorf("bottleneck property: %v", err)
			}
		})
	}
}

// TestExample23Ordering reproduces the lexicographic ordering asserted at
// the end of Example 2.3: macro ≻ routing A ≻ routing B.
func TestExample23Ordering(t *testing.T) {
	c := topology.MustClos(2)
	ms := topology.MustMacroSwitch(2)
	fs := example23(c)

	macro, err := MacroMaxMinFair(ms, example23Macro(ms))
	if err != nil {
		t.Fatal(err)
	}
	aA, err := ClosMaxMinFair(c, fs, MiddleAssignment{2, 1, 2, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	aB, err := ClosMaxMinFair(c, fs, MiddleAssignment{2, 2, 2, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !LexLess(aA, macro) {
		t.Error("routing A should be lex-below macro")
	}
	if !LexLess(aB, aA) {
		t.Error("routing B should be lex-below routing A")
	}
}

// TestExample33 reproduces Example 3.3 / Figure 2 in MS_1: the max-min
// fair allocation assigns 1/2 to all three flows, throughput 3/2, versus
// maximum throughput 2.
func TestExample33(t *testing.T) {
	ms := topology.MustMacroSwitch(1)
	fs := NewCollection(
		ms.Source(1, 1), ms.Dest(1, 1), // type 1
		ms.Source(2, 1), ms.Dest(2, 1), // type 1
		ms.Source(2, 1), ms.Dest(1, 1), // type 2
	)
	a, err := MacroMaxMinFair(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	want := rational.VecOf(1, 2, 1, 2, 1, 2)
	if !a.Equal(want) {
		t.Fatalf("allocation = %v, want %v", a, want)
	}
	if got := Throughput(a); got.Cmp(rational.R(3, 2)) != 0 {
		t.Errorf("throughput = %s, want 3/2", rational.String(got))
	}
}

func TestCollectionHelpers(t *testing.T) {
	c := topology.MustClos(2)
	fs := Collection{}
	fs = fs.Add(c.Source(1, 1), c.Dest(1, 1), 3)
	fs = fs.Add(c.Source(2, 1), c.Dest(1, 1), 1)
	if len(fs) != 4 {
		t.Fatalf("len = %d", len(fs))
	}
	if got := fs.PerSource()[c.Source(1, 1)]; got != 3 {
		t.Errorf("PerSource = %d, want 3", got)
	}
	if got := fs.PerDestination()[c.Dest(1, 1)]; got != 4 {
		t.Errorf("PerDestination = %d, want 4", got)
	}
	if fs.String() == "" || fs.Describe(c.Network()) == "" {
		t.Error("empty description")
	}
}

func TestCollectionValidate(t *testing.T) {
	c := topology.MustClos(1)
	good := NewCollection(c.Source(1, 1), c.Dest(2, 1))
	if err := good.Validate(c.Network()); err != nil {
		t.Errorf("valid collection rejected: %v", err)
	}
	bad := Collection{{Src: c.Input(1), Dst: c.Dest(1, 1)}}
	if err := bad.Validate(c.Network()); err == nil {
		t.Error("switch as source accepted")
	}
	bad2 := Collection{{Src: c.Source(1, 1), Dst: topology.NodeID(10_000)}}
	if err := bad2.Validate(c.Network()); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestNewCollectionPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCollection(topology.NodeID(1))
}

func TestRoutingValidate(t *testing.T) {
	c := topology.MustClos(2)
	fs := example23(c)
	r, err := ClosRouting(c, fs, MiddleAssignment{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(c.Network(), fs); err != nil {
		t.Errorf("valid routing rejected: %v", err)
	}
	if err := r[:3].Validate(c.Network(), fs); err == nil {
		t.Error("short routing accepted")
	}
	// Swap two paths of flows with different endpoints: now invalid.
	bad := make(Routing, len(r))
	copy(bad, r)
	bad[0], bad[5] = bad[5], bad[0]
	if err := bad.Validate(c.Network(), fs); err == nil {
		t.Error("mismatched paths accepted")
	}
}

func TestClosRoutingErrors(t *testing.T) {
	c := topology.MustClos(2)
	fs := example23(c)
	if _, err := ClosRouting(c, fs, MiddleAssignment{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ClosRouting(c, fs, MiddleAssignment{1, 1, 1, 1, 1, 9}); err == nil {
		t.Error("out-of-range middle accepted")
	}
}

func TestUniformAssignment(t *testing.T) {
	ma := UniformAssignment(4, 2)
	if len(ma) != 4 {
		t.Fatalf("len = %d", len(ma))
	}
	for _, m := range ma {
		if m != 2 {
			t.Errorf("middle = %d, want 2", m)
		}
	}
	cp := ma.Copy()
	cp[0] = 7
	if ma[0] != 2 {
		t.Error("Copy aliases")
	}
}

func TestIsFeasible(t *testing.T) {
	c := topology.MustClos(1)
	fs := NewCollection(
		c.Source(1, 1), c.Dest(2, 1),
		c.Source(2, 1), c.Dest(2, 1),
	)
	r, err := ClosRouting(c, fs, MiddleAssignment{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	net := c.Network()
	if err := IsFeasible(net, fs, r, rational.VecOf(1, 2, 1, 2)); err != nil {
		t.Errorf("feasible allocation rejected: %v", err)
	}
	// O2->t2.1 carries both flows: total 3/2 > 1.
	if err := IsFeasible(net, fs, r, rational.VecOf(1, 1, 1, 2)); err == nil {
		t.Error("infeasible allocation accepted")
	}
	if err := IsFeasible(net, fs, r, rational.VecOf(-1, 2, 1, 2)); err == nil {
		t.Error("negative rate accepted")
	}
	if err := IsFeasible(net, fs, r, rational.VecOf(1, 2)); err == nil {
		t.Error("short allocation accepted")
	}
}

func TestIsMaxMinFairRejectsSuboptimal(t *testing.T) {
	c := topology.MustClos(1)
	fs := NewCollection(
		c.Source(1, 1), c.Dest(2, 1),
		c.Source(2, 1), c.Dest(2, 1),
	)
	r, err := ClosRouting(c, fs, MiddleAssignment{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	net := c.Network()
	// Feasible but not max-min fair: both flows could rise to 1/2.
	if err := IsMaxMinFair(net, fs, r, rational.VecOf(1, 4, 1, 4)); err == nil {
		t.Error("underallocated rates accepted as max-min fair")
	}
	// Unequal split saturating the shared link: flow 0 has no bottleneck
	// (its rate 1/4 is not the maximum on the saturated link).
	if err := IsMaxMinFair(net, fs, r, rational.VecOf(1, 4, 3, 4)); err == nil {
		t.Error("unfair saturating rates accepted as max-min fair")
	}
	if err := IsMaxMinFair(net, fs, r, rational.VecOf(1, 2, 1, 2)); err != nil {
		t.Errorf("max-min fair rates rejected: %v", err)
	}
}

func TestMaxMinFairEmptyCollection(t *testing.T) {
	c := topology.MustClos(1)
	a, err := MaxMinFair(c.Network(), nil, nil)
	if err != nil {
		t.Fatalf("MaxMinFair: %v", err)
	}
	if len(a) != 0 {
		t.Errorf("allocation = %v, want empty", a)
	}
}

func TestMaxMinFairUnboundedFlow(t *testing.T) {
	net := topology.New("unbounded")
	s := net.AddNode(topology.KindSource, "s")
	d := net.AddNode(topology.KindDestination, "t")
	id, err := net.AddUnboundedLink(s, d)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewCollection(s, d)
	r := Routing{topology.Path{id}}
	if _, err := MaxMinFair(net, fs, r); !errors.Is(err, ErrUnboundedFlow) {
		t.Errorf("err = %v, want ErrUnboundedFlow", err)
	}
	if _, err := MaxMinFairFloat(net, fs, r); !errors.Is(err, ErrUnboundedFlow) {
		t.Errorf("float err = %v, want ErrUnboundedFlow", err)
	}
}

// randomInstance builds a random flow collection and routing over C_n.
func randomInstance(rng *rand.Rand, n, numFlows int) (*topology.Clos, Collection, Routing) {
	c := topology.MustClos(n)
	fs := make(Collection, 0, numFlows)
	ma := make(MiddleAssignment, 0, numFlows)
	for f := 0; f < numFlows; f++ {
		si, sj := rng.Intn(2*n)+1, rng.Intn(n)+1
		di, dj := rng.Intn(2*n)+1, rng.Intn(n)+1
		fs = fs.Add(c.Source(si, sj), c.Dest(di, dj), 1)
		ma = append(ma, rng.Intn(n)+1)
	}
	r, err := ClosRouting(c, fs, ma)
	if err != nil {
		panic(err)
	}
	return c, fs, r
}

// TestWaterfillSatisfiesBottleneckProperty cross-checks the water-filler
// against the independent Lemma 2.2 characterization on random instances.
func TestWaterfillSatisfiesBottleneckProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(3) + 1
		c, fs, r := randomInstance(rng, n, rng.Intn(12)+1)
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := IsMaxMinFair(c.Network(), fs, r, a); err != nil {
			t.Fatalf("trial %d: bottleneck property violated: %v", trial, err)
		}
	}
}

// TestWaterfillDominatesFeasibleAllocations checks Definition 2.1(2): the
// sorted max-min fair vector lexicographically dominates the sorted vector
// of any feasible allocation (here: random scaled-down copies).
func TestWaterfillDominatesFeasibleAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		c, fs, r := randomInstance(rng, 2, 8)
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			other := a.Copy()
			// Scale each rate by a random factor in {0, 1/4, 1/2, 3/4, 1}.
			for i := range other {
				other[i] = rational.Mul(other[i], rational.R(int64(rng.Intn(5)), 4))
			}
			if err := IsFeasible(c.Network(), fs, r, other); err != nil {
				t.Fatalf("scaled allocation infeasible: %v", err)
			}
			if rational.LexCompareSorted(a, other) < 0 {
				t.Fatalf("max-min fair allocation dominated by %v", other)
			}
		}
	}
}

// TestFloatMatchesExact checks the float fast path against the exact
// allocator on random instances.
func TestFloatMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		c, fs, r := randomInstance(rng, rng.Intn(3)+1, rng.Intn(10)+1)
		exact, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := MaxMinFairFloat(c.Network(), fs, r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			if diff := math.Abs(rational.Float(exact[i]) - approx[i]); diff > 1e-9 {
				t.Fatalf("trial %d flow %d: exact %s vs float %v", trial, i, rational.String(exact[i]), approx[i])
			}
		}
	}
}

func TestLinkLoads(t *testing.T) {
	c := topology.MustClos(1)
	fs := NewCollection(
		c.Source(1, 1), c.Dest(2, 1),
		c.Source(2, 1), c.Dest(2, 1),
	)
	r, err := ClosRouting(c, fs, MiddleAssignment{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	loads := LinkLoads(c.Network(), r, rational.VecOf(1, 2, 1, 3))
	lastHop, ok := c.Network().LinkBetween(c.Output(2), c.Dest(2, 1))
	if !ok {
		t.Fatal("missing link")
	}
	if got := loads[lastHop]; got.Cmp(rational.R(5, 6)) != 0 {
		t.Errorf("load = %s, want 5/6", rational.String(got))
	}
}

func TestThroughputAndLexLess(t *testing.T) {
	a := rational.VecOf(1, 2, 1, 2)
	b := rational.VecOf(1, 3, 1, 1)
	if Throughput(a).Cmp(big.NewRat(1, 1)) != 0 {
		t.Error("throughput of [1/2,1/2] should be 1")
	}
	// sorted a = [1/2,1/2], sorted b = [1/3,1]: b < a lexicographically.
	if !LexLess(b, a) || LexLess(a, b) {
		t.Error("LexLess disagrees with sorted lexicographic order")
	}
}

func TestFlowsOnLinks(t *testing.T) {
	c := topology.MustClos(1)
	fs := NewCollection(
		c.Source(1, 1), c.Dest(2, 1),
		c.Source(2, 1), c.Dest(2, 1),
	)
	r, err := ClosRouting(c, fs, MiddleAssignment{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	on := FlowsOnLinks(c.Network(), r)
	lastHop, _ := c.Network().LinkBetween(c.Output(2), c.Dest(2, 1))
	if got := on[lastHop]; len(got) != 2 {
		t.Errorf("flows on shared last hop = %v, want 2 flows", got)
	}
	firstHop, _ := c.Network().LinkBetween(c.Source(1, 1), c.Input(1))
	if got := on[firstHop]; len(got) != 1 || got[0] != 0 {
		t.Errorf("flows on first hop = %v, want [0]", got)
	}
}
