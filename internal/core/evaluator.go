package core

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// Evaluator amortizes ClosMaxMinFair across many middle assignments of
// one fixed (Clos, Collection) pair: every candidate path (one per flow
// and middle switch) is materialized and validated once at construction,
// and the water-filling scratch state — remaining capacities, active
// counts, flows-on-link lists, frozen flags — is reused between calls
// instead of being reallocated per assignment. The routing-space search
// gives each worker goroutine a private Evaluator.
//
// The hot path runs entirely on the small-word rational.Rat64 kernel: a
// flat scratch of int64 fractions with overflow-checked arithmetic. If
// any operation overflows (impossible for the unit-capacity instances
// the paper constructs, but guarded for arbitrary capacities), the
// state is re-evaluated from scratch on the *big.Rat path — the same
// exact progressive filling, so the promotion is lossless. ForceBig
// pins the big.Rat path, which doubles as the differential-test oracle.
//
// An Evaluator is NOT safe for concurrent use. Eval returns exactly the
// allocation ClosMaxMinFair would return: all paths run the same exact
// progressive-filling algorithm over the same link order, so the
// results are identical rationals.
type Evaluator struct {
	nf    int
	n     int
	links []topology.Link
	// paths[fi][m-1] is flow fi's path via middle switch m.
	paths [][]topology.Path

	// Scratch reused across Eval calls, indexed by LinkID (link IDs are
	// dense: 0..len(links)-1) or by flow index.
	active []int
	finite []bool
	frozen []bool
	on     [][]int

	// finiteIDs lists the finite link IDs in ascending order — the same
	// order the dense id scan visits them — so the filling rounds skip
	// unbounded links without testing each one.
	finiteIDs []topology.LinkID

	// Small-word fast path: capacities and remaining headroom as flat
	// Rat64 values. fast is false when some finite capacity does not fit
	// in an int64 fraction, in which case every Eval takes the big path.
	caps64   []rational.Rat64
	rem64    []rational.Rat64
	fast     bool
	forceBig bool
	// promotions counts Eval calls that overflowed the Rat64 kernel and
	// were re-run on big.Rat.
	promotions int

	// Observability handles (see Instrument). All nil by default; nil
	// handles make every touch point a single predictable nil check, so
	// an uninstrumented evaluator's hot path is unchanged.
	cFills      *obs.Counter
	cFast       *obs.Counter
	cPromotions *obs.Counter
	cReuses     *obs.Counter
	jour        *obs.Journal
	used        bool // true after the first Eval (scratch-reuse tracking)

	// big.Rat scratch for the promotion path: remaining capacities plus
	// reusable receivers for the round arithmetic and the integer
	// cross-multiplied min-delta comparisons.
	remaining              []*big.Rat
	caps                   []*big.Rat
	actRat                 *big.Rat
	delta                  *big.Rat
	tmp                    *big.Rat
	level                  *big.Rat
	xInt, yInt, aInt, bInt *big.Int
}

// NewEvaluator prepares repeated max-min fair evaluations of fs over c.
// It fails if any flow endpoint is not a server of c.
func NewEvaluator(c topology.Fabric, fs Collection) (*Evaluator, error) {
	e := &Evaluator{nf: len(fs), n: c.Size(), links: c.Network().Links()}
	e.paths = make([][]topology.Path, len(fs))
	for fi, f := range fs {
		e.paths[fi] = make([]topology.Path, e.n)
		for m := 1; m <= e.n; m++ {
			p, err := c.Path(f.Src, f.Dst, m)
			if err != nil {
				return nil, fmt.Errorf("evaluator: flow %d: %w", fi, err)
			}
			e.paths[fi][m-1] = p
		}
	}
	nl := len(e.links)
	e.remaining = make([]*big.Rat, nl)
	e.active = make([]int, nl)
	e.finite = make([]bool, nl)
	e.on = make([][]int, nl)
	e.caps = make([]*big.Rat, nl)
	e.caps64 = make([]rational.Rat64, nl)
	e.rem64 = make([]rational.Rat64, nl)
	e.fast = true
	for _, l := range e.links {
		if l.Unbounded {
			continue
		}
		e.finite[l.ID] = true
		e.remaining[l.ID] = new(big.Rat)
		e.caps[l.ID] = l.Capacity
		if c64, ok := l.Capacity64(); ok {
			e.caps64[l.ID] = c64
		} else {
			e.fast = false
		}
		e.finiteIDs = append(e.finiteIDs, l.ID)
	}
	sort.Slice(e.finiteIDs, func(a, b int) bool { return e.finiteIDs[a] < e.finiteIDs[b] })
	e.frozen = make([]bool, len(fs))
	e.actRat = new(big.Rat)
	e.delta = new(big.Rat)
	e.tmp = new(big.Rat)
	e.level = new(big.Rat)
	e.xInt, e.yInt = new(big.Int), new(big.Int)
	e.aInt, e.bInt = new(big.Int), new(big.Int)
	return e, nil
}

// ForceBig pins Eval to the *big.Rat path when on is true, bypassing the
// Rat64 kernel. The results are identical; it exists for differential
// tests and for benchmarking the kernel against its fallback.
func (e *Evaluator) ForceBig(on bool) { e.forceBig = on }

// Promotions returns the number of Eval calls so far that overflowed
// the Rat64 kernel and were transparently re-run on *big.Rat.
func (e *Evaluator) Promotions() int { return e.promotions }

// Instrument attaches the observability layer: fills, Rat64 fast-path
// completions, big.Rat promotions and scratch reuses land in o's
// metrics registry, and each promotion additionally journals a
// core.promotion event. Counters are registered by name, so evaluators
// instrumented from the same registry (one per search worker)
// accumulate into shared metrics. A nil o — or a nil registry/journal
// inside it — leaves the evaluator uninstrumented.
func (e *Evaluator) Instrument(o *obs.Obs) {
	reg := o.Registry()
	e.cFills = reg.Counter("core.eval.fills")
	e.cFast = reg.Counter("core.eval.fast")
	e.cPromotions = reg.Counter("core.eval.promotions")
	e.cReuses = reg.Counter("core.eval.scratch_reuses")
	e.jour = o.Journal()
}

// Eval computes the max-min fair allocation of the collection under the
// middle assignment ma, identical to ClosMaxMinFair(c, fs, ma). The
// returned Allocation is freshly allocated and safe to retain; ma is
// only read.
func (e *Evaluator) Eval(ma MiddleAssignment) (Allocation, error) {
	if len(ma) != e.nf {
		return nil, fmt.Errorf("evaluator: assignment has %d middles for %d flows", len(ma), e.nf)
	}
	for fi, m := range ma {
		if m < 1 || m > e.n {
			return nil, fmt.Errorf("evaluator: flow %d: middle %d out of range [1, %d]", fi, m, e.n)
		}
	}
	e.cFills.Inc()
	if e.used {
		e.cReuses.Inc()
	} else {
		e.used = true
	}
	if e.fast && !e.forceBig {
		rates, ok, err := e.eval64(ma)
		if err != nil {
			return nil, err
		}
		if ok {
			e.cFast.Inc()
			return rates, nil
		}
		// Some Rat64 operation overflowed: promote losslessly by
		// re-running the state on the big.Rat path.
		e.promotions++
		e.cPromotions.Inc()
		e.jour.Emit("core.promotion", obs.F{"promotions": e.promotions})
	}
	return e.evalBig(ma)
}

// register resets the per-link scratch shared by both paths and walks
// every flow's chosen path, rebuilding the flows-on-link lists and
// active counts for the assignment.
func (e *Evaluator) register(ma MiddleAssignment) {
	for id := range e.on {
		e.on[id] = e.on[id][:0]
		e.active[id] = 0
	}
	for fi := range e.frozen {
		e.frozen[fi] = false
	}
	for fi, m := range ma {
		for _, l := range e.paths[fi][m-1] {
			e.on[l] = append(e.on[l], fi)
			if e.finite[l] {
				e.active[l]++
			}
		}
	}
}

// eval64 is the small-word progressive filling: the same algorithm as
// evalBig (same link iteration order, same exact arithmetic), but on a
// flat []Rat64 scratch with no per-round allocation. The second result
// is false when an operation overflowed int64; the caller then redoes
// the state on evalBig.
func (e *Evaluator) eval64(ma MiddleAssignment) (Allocation, bool, error) {
	e.register(ma)
	for _, id := range e.finiteIDs {
		e.rem64[id] = e.caps64[id]
	}

	// Each flow's rate is written exactly once, when the flow freezes.
	// All flows freezing in the same round share one *big.Rat level
	// value: Vec elements are immutable by package contract, so sharing
	// the pointer is safe and saves an allocation per flow.
	rates := make(rational.Vec, e.nf)
	if e.nf == 0 {
		return rates, true, nil
	}
	level := rational.Zero64()
	remainingFlows := e.nf
	for remainingFlows > 0 {
		// Min-delta scan: d = remaining/active per contended link. The
		// division normalizes on int64 gcds and the comparison cross-
		// multiplies in 128 bits, so the scan is exact and cannot
		// itself overflow. Ties keep the earlier link, matching the
		// strict-< scan of MaxMinFair.
		minID := topology.LinkID(-1)
		var minDelta rational.Rat64
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			d, ok := e.rem64[id].DivInt(int64(e.active[id]))
			if !ok {
				return nil, false, nil
			}
			if minID < 0 || d.Cmp(minDelta) < 0 {
				minID = id
				minDelta = d
			}
		}
		if minID < 0 {
			return nil, false, ErrUnboundedFlow
		}

		var ok bool
		if level, ok = level.Add(minDelta); !ok {
			return nil, false, nil
		}
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			used, ok := minDelta.MulInt(int64(e.active[id]))
			if !ok {
				return nil, false, nil
			}
			if e.rem64[id], ok = e.rem64[id].Sub(used); !ok {
				return nil, false, nil
			}
		}

		var levelRat *big.Rat // materialized on first freeze this round
		progressed := false
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 || !e.rem64[id].IsZero() {
				continue
			}
			for _, fi := range e.on[id] {
				if e.frozen[fi] {
					continue
				}
				e.frozen[fi] = true
				if levelRat == nil {
					levelRat = level.Rat()
				}
				rates[fi] = levelRat
				remainingFlows--
				progressed = true
				for _, l := range e.paths[fi][ma[fi]-1] {
					if e.finite[l] {
						e.active[l]--
					}
				}
			}
		}
		if !progressed {
			return nil, false, errors.New("waterfill: no progress (internal invariant violated)")
		}
	}
	return rates, true, nil
}

// evalBig is the exact progressive filling on *big.Rat, mirroring
// MaxMinFair step for step (same link iteration order, same exact
// arithmetic) so the allocations are identical. Every big.Rat operation
// here writes into a reusable receiver: big.Rat arithmetic is exact and
// always normalized, so the values are independent of receiver reuse.
// It serves as the promotion target of eval64 and as the independent
// oracle of the differential tests.
func (e *Evaluator) evalBig(ma MiddleAssignment) (Allocation, error) {
	e.register(ma)
	for _, id := range e.finiteIDs {
		e.remaining[id].Set(e.caps[id])
	}

	// Each flow's rate is written exactly once, when the flow freezes, so
	// the vector starts with nil slots instead of NewVec's discarded rats.
	rates := make(rational.Vec, e.nf)
	if e.nf == 0 {
		return rates, nil
	}
	level := e.level.SetInt64(0)
	remainingFlows := e.nf
	for remainingFlows > 0 {
		// Min-delta scan by cross multiplication: with r = p/q remaining
		// and a active flows, d = p/(q·a), and d1 < d2 iff
		// p1·q2·a2 < p2·q1·a1 (all quantities non-negative, a > 0). This
		// finds the bottleneck with exact integer products, deferring the
		// normalizing division to once per round. Ties keep the earlier
		// link, matching the strict-< scan of MaxMinFair.
		minID := topology.LinkID(-1)
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			if minID < 0 {
				minID = id
				continue
			}
			e.aInt.SetInt64(int64(e.active[minID]))
			e.bInt.SetInt64(int64(e.active[id]))
			e.xInt.Mul(e.remaining[id].Num(), e.remaining[minID].Denom())
			e.xInt.Mul(e.xInt, e.aInt)
			e.yInt.Mul(e.remaining[minID].Num(), e.remaining[id].Denom())
			e.yInt.Mul(e.yInt, e.bInt)
			if e.xInt.Cmp(e.yInt) < 0 {
				minID = id
			}
		}
		if minID < 0 {
			return nil, ErrUnboundedFlow
		}
		e.actRat.SetInt64(int64(e.active[minID]))
		e.delta.Quo(e.remaining[minID], e.actRat)

		level.Add(level, e.delta)
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			e.actRat.SetInt64(int64(e.active[id]))
			e.tmp.Mul(e.delta, e.actRat)
			e.remaining[id].Sub(e.remaining[id], e.tmp)
		}

		progressed := false
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 || e.remaining[id].Sign() != 0 {
				continue
			}
			for _, fi := range e.on[id] {
				if e.frozen[fi] {
					continue
				}
				e.frozen[fi] = true
				rates[fi] = rational.Copy(level)
				remainingFlows--
				progressed = true
				for _, l := range e.paths[fi][ma[fi]-1] {
					if e.finite[l] {
						e.active[l]--
					}
				}
			}
		}
		if !progressed {
			return nil, errors.New("waterfill: no progress (internal invariant violated)")
		}
	}
	return rates, nil
}
