package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// quickInstance decodes a compact byte-encoded instance over C_2: each
// flow is three bytes (source server, destination server, middle). Keeps
// quick.Check generators simple and the shrink space small.
func quickInstance(bytes []byte) (*topology.Clos, Collection, MiddleAssignment) {
	c := topology.MustClos(2)
	fs := Collection{}
	var ma MiddleAssignment
	for i := 0; i+2 < len(bytes) && len(fs) < 10; i += 3 {
		si := int(bytes[i]%4) + 1
		sj := int(bytes[i]%2) + 1
		di := int(bytes[i+1]%4) + 1
		dj := int(bytes[i+1]%2) + 1
		fs = fs.Add(c.Source(si, sj), c.Dest(di, dj), 1)
		ma = append(ma, int(bytes[i+2]%2)+1)
	}
	return c, fs, ma
}

// TestQuickWaterfillBottleneckProperty: every water-filled allocation
// satisfies Lemma 2.2 on arbitrary byte-encoded instances.
func TestQuickWaterfillBottleneckProperty(t *testing.T) {
	f := func(bytes []byte) bool {
		c, fs, ma := quickInstance(bytes)
		if len(fs) == 0 {
			return true
		}
		r, err := ClosRouting(c, fs, ma)
		if err != nil {
			return false
		}
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			return false
		}
		return IsMaxMinFair(c.Network(), fs, r, a) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickWaterfillPermutationEquivariance: permuting the flows (and
// their routing) permutes the rates identically — the allocator must not
// depend on flow order.
func TestQuickWaterfillPermutationEquivariance(t *testing.T) {
	f := func(bytes []byte, seed int64) bool {
		c, fs, ma := quickInstance(bytes)
		if len(fs) < 2 {
			return true
		}
		r, err := ClosRouting(c, fs, ma)
		if err != nil {
			return false
		}
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			return false
		}
		perm := rand.New(rand.NewSource(seed)).Perm(len(fs))
		pfs := make(Collection, len(fs))
		pr := make(Routing, len(fs))
		for i, j := range perm {
			pfs[i] = fs[j]
			pr[i] = r[j]
		}
		pa, err := MaxMinFair(c.Network(), pfs, pr)
		if err != nil {
			return false
		}
		want := make(rational.Vec, len(fs))
		for i, j := range perm {
			want[i] = a[j]
		}
		return pa.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickWaterfillMinRateMonotonicity: adding one more flow never
// increases the minimum max-min fair rate. (Per-flow rates are NOT
// monotone — a new flow can throttle a competitor on a different link
// and thereby raise a third flow's rate — so the invariant holds only
// for the minimum, i.e. the first water-filling freeze level.)
func TestQuickWaterfillMinRateMonotonicity(t *testing.T) {
	f := func(bytes []byte, extra [3]byte) bool {
		c, fs, ma := quickInstance(bytes)
		if len(fs) == 0 {
			return true
		}
		r, err := ClosRouting(c, fs, ma)
		if err != nil {
			return false
		}
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			return false
		}
		fs2 := fs.Add(
			c.Source(int(extra[0]%4)+1, int(extra[0]%2)+1),
			c.Dest(int(extra[1]%4)+1, int(extra[1]%2)+1), 1)
		ma2 := append(ma.Copy(), int(extra[2]%2)+1)
		r2, err := ClosRouting(c, fs2, ma2)
		if err != nil {
			return false
		}
		a2, err := MaxMinFair(c.Network(), fs2, r2)
		if err != nil {
			return false
		}
		return a2.MinElem().Cmp(a.MinElem()) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickThroughputWithinCutBounds: the max-min throughput never
// exceeds the total server-link capacity on either side actually used.
func TestQuickThroughputWithinCutBounds(t *testing.T) {
	f := func(bytes []byte) bool {
		c, fs, ma := quickInstance(bytes)
		if len(fs) == 0 {
			return true
		}
		r, err := ClosRouting(c, fs, ma)
		if err != nil {
			return false
		}
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			return false
		}
		tp := Throughput(a)
		srcCut := rational.Int(int64(len(fs.PerSource())))
		dstCut := rational.Int(int64(len(fs.PerDestination())))
		return tp.Cmp(srcCut) <= 0 && tp.Cmp(dstCut) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBottlenecksExplainMaxMinFairness: the analysis API agrees with the
// verifier — water-filled allocations have a bottleneck for every flow,
// and the reported links are genuinely saturated.
func TestBottlenecksExplainMaxMinFairness(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		c, fs, r := randomInstance(rng, rng.Intn(3)+1, rng.Intn(10)+1)
		a, err := MaxMinFair(c.Network(), fs, r)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := Bottlenecks(c.Network(), fs, r, a)
		if err != nil {
			t.Fatal(err)
		}
		saturated := map[topology.LinkID]bool{}
		for _, l := range SaturatedLinks(c.Network(), r, a) {
			saturated[l] = true
		}
		for fi, rep := range reports {
			if len(rep.Links) == 0 {
				t.Fatalf("trial %d: flow %d has no bottleneck in a max-min fair allocation", trial, fi)
			}
			for _, l := range rep.Links {
				if !saturated[l] {
					t.Fatalf("trial %d: reported bottleneck %v is not saturated", trial, l)
				}
				if !r[fi].Contains(l) {
					t.Fatalf("trial %d: reported bottleneck %v not on flow %d's path", trial, l, fi)
				}
			}
		}
	}
}

// TestBottlenecksOnSuboptimalAllocation: under-allocated rates leave
// flows without bottlenecks (the Lemma 2.2 "only if" direction).
func TestBottlenecksOnSuboptimalAllocation(t *testing.T) {
	c := topology.MustClos(1)
	fs := NewCollection(
		c.Source(1, 1), c.Dest(2, 1),
		c.Source(2, 1), c.Dest(2, 1),
	)
	r, err := ClosRouting(c, fs, MiddleAssignment{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Bottlenecks(c.Network(), fs, r, rational.VecOf(1, 4, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if len(rep.Links) != 0 {
			t.Errorf("flow %d reported bottlenecks %v on an under-allocated instance", rep.Flow, rep.Links)
		}
	}
	if _, err := Bottlenecks(c.Network(), fs, r, rational.VecOf(9, 1, 9, 1)); err == nil {
		t.Error("infeasible allocation accepted")
	}
}

// TestZeroCapacityLinkFailureInjection: a failed (zero-capacity) link
// freezes the flows crossing it at rate zero, and both the allocator and
// the verifier handle the degenerate case.
func TestZeroCapacityLinkFailureInjection(t *testing.T) {
	net := topology.New("degraded")
	s1 := net.AddNode(topology.KindSource, "s1")
	s2 := net.AddNode(topology.KindSource, "s2")
	d := net.AddNode(topology.KindDestination, "t")
	failed, err := net.AddLink(s1, d, rational.Zero())
	if err != nil {
		t.Fatal(err)
	}
	alive, err := net.AddLink(s2, d, rational.One())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewCollection(s1, d, s2, d)
	r := Routing{topology.Path{failed}, topology.Path{alive}}
	a, err := MaxMinFair(net, fs, r)
	if err != nil {
		t.Fatal(err)
	}
	want := rational.VecOf(0, 1, 1, 1)
	if !a.Equal(want) {
		t.Fatalf("degraded allocation = %v, want %v", a, want)
	}
	if err := IsMaxMinFair(net, fs, r, a); err != nil {
		t.Errorf("bottleneck property on degraded network: %v", err)
	}
}

// TestWaterfillCapacityScaling: scaling every capacity by an integer
// factor scales every max-min fair rate by the same factor.
func TestWaterfillCapacityScaling(t *testing.T) {
	build := func(scale int64) (*topology.Network, Collection, Routing) {
		net := topology.New("scaled")
		s1 := net.AddNode(topology.KindSource, "s1")
		s2 := net.AddNode(topology.KindSource, "s2")
		mid := net.AddNode(topology.KindOther, "m")
		d := net.AddNode(topology.KindDestination, "t")
		c := rational.Int(scale)
		l1, _ := net.AddLink(s1, mid, c)
		l2, _ := net.AddLink(s2, mid, rational.Mul(c, rational.R(1, 2)))
		l3, _ := net.AddLink(mid, d, rational.Mul(c, rational.R(5, 4)))
		fs := NewCollection(s1, d, s2, d)
		r := Routing{topology.Path{l1, l3}, topology.Path{l2, l3}}
		return net, fs, r
	}
	net1, fs1, r1 := build(1)
	a1, err := MaxMinFair(net1, fs1, r1)
	if err != nil {
		t.Fatal(err)
	}
	net3, fs3, r3 := build(3)
	a3, err := MaxMinFair(net3, fs3, r3)
	if err != nil {
		t.Fatal(err)
	}
	three := big.NewRat(3, 1)
	for fi := range a1 {
		if got := rational.Mul(a1[fi], three); got.Cmp(a3[fi]) != 0 {
			t.Errorf("flow %d: 3x scaling gives %s, want %s",
				fi, rational.String(a3[fi]), rational.String(got))
		}
	}
}
