package core

import (
	"testing"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// partialCollection is a contended C_3 instance: ToR pairs colliding at
// the fabric, so partial bounds actually depend on which flows are
// fixed where.
func partialCollection(c *topology.Clos) Collection {
	return Collection{}.
		Add(c.Source(1, 1), c.Dest(1, 1), 1).
		Add(c.Source(1, 2), c.Dest(2, 1), 1).
		Add(c.Source(2, 1), c.Dest(1, 2), 1).
		Add(c.Source(2, 2), c.Dest(2, 2), 1)
}

// forEachAssignment enumerates all n^k values of positions [from, from+k)
// of ma (the other positions are left untouched) and calls fn per state.
func forEachAssignment(ma MiddleAssignment, from, k, n int, fn func()) {
	if k == 0 {
		fn()
		return
	}
	for v := 1; v <= n; v++ {
		ma[from] = v
		forEachAssignment(ma, from+1, k-1, n, fn)
	}
}

// TestPartialBoundLeafExact: with every flow fixed the trunk constraints
// are implied by the real per-middle links, so Bound must equal the
// exact evaluation — same rationals — on every full assignment.
func TestPartialBoundLeafExact(t *testing.T) {
	c := topology.MustClos(3)
	fs := partialCollection(c)
	pe, err := NewPartialEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	ma := make(MiddleAssignment, len(fs))
	forEachAssignment(ma, 0, len(fs), c.Size(), func() {
		exact, err := ev.Eval(ma)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := pe.Bound(ma, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bound.Equal(exact) {
			t.Fatalf("ma=%v: leaf bound %v != exact %v", ma, bound, exact)
		}
	})
}

// TestPartialBoundAdmissible is the correctness core of the pruned
// search: for every fixed suffix at every depth, the trunk-relaxation
// bound must lex-dominate (sorted order, Definition 2.4) the exact
// max-min fair vector of EVERY completion. A single violation would let
// the branch-and-bound prune the true optimum.
func TestPartialBoundAdmissible(t *testing.T) {
	for _, tc := range []struct {
		n  int
		fs func(*topology.Clos) Collection
	}{
		{3, partialCollection},
		{4, func(c *topology.Clos) Collection {
			return partialCollection(c).Add(c.Source(3, 1), c.Dest(1, 1), 1)
		}},
	} {
		c := topology.MustClos(tc.n)
		fs := tc.fs(c)
		pe, err := NewPartialEvaluator(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		nf := len(fs)
		ma := make(MiddleAssignment, nf)
		for fixedFrom := 0; fixedFrom <= nf; fixedFrom++ {
			forEachAssignment(ma, fixedFrom, nf-fixedFrom, tc.n, func() {
				bound, err := pe.Bound(ma, fixedFrom)
				if err != nil {
					t.Fatal(err)
				}
				forEachAssignment(ma, 0, fixedFrom, tc.n, func() {
					exact, err := ev.Eval(ma)
					if err != nil {
						t.Fatal(err)
					}
					if rational.LexCompareSorted(rational.Vec(bound), rational.Vec(exact)) < 0 {
						t.Fatalf("n=%d fixedFrom=%d ma=%v: bound %v below completion %v",
							tc.n, fixedFrom, ma, bound.SortedCopy(), exact.SortedCopy())
					}
				})
			})
		}
	}
}

// TestPartialBound64MatchesBig: the Rat64 fast path and the pinned
// big.Rat path must agree exactly at every depth — the differential
// that keeps the overflow-promotion seam honest.
func TestPartialBound64MatchesBig(t *testing.T) {
	c := topology.MustClos(3)
	fs := partialCollection(c)
	fast, err := NewPartialEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewPartialEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	slow.ForceBig(true)
	nf := len(fs)
	ma := make(MiddleAssignment, nf)
	for fixedFrom := 0; fixedFrom <= nf; fixedFrom++ {
		forEachAssignment(ma, fixedFrom, nf-fixedFrom, c.Size(), func() {
			a, err := fast.Bound(ma, fixedFrom)
			if err != nil {
				t.Fatal(err)
			}
			b, err := slow.Bound(ma, fixedFrom)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("fixedFrom=%d ma=%v: fast %v != big %v", fixedFrom, ma, a, b)
			}
		})
	}
}

func TestPartialBoundErrors(t *testing.T) {
	c := topology.MustClos(2)
	fs := partialCollection(topology.MustClos(2))
	if _, err := NewPartialEvaluator(c, Collection{{Src: c.Input(1), Dst: c.Dest(1, 1)}}); err == nil {
		t.Error("non-server source accepted")
	}
	pe, err := NewPartialEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Bound(make(MiddleAssignment, 1), 0); err == nil {
		t.Error("short assignment accepted")
	}
	ma := make(MiddleAssignment, len(fs))
	if _, err := pe.Bound(ma, -1); err == nil {
		t.Error("negative fixedFrom accepted")
	}
	if _, err := pe.Bound(ma, len(fs)+1); err == nil {
		t.Error("fixedFrom beyond the flow count accepted")
	}
	if _, err := pe.Bound(ma, 0); err == nil {
		t.Error("fixed middle 0 accepted")
	}
	ma[len(ma)-1] = c.Size() + 1
	if _, err := pe.Bound(ma, len(ma)-1); err == nil {
		t.Error("fixed middle beyond n accepted")
	}
}

// FuzzPartialBoundAdmissible drives the trunk relaxation with arbitrary
// byte-encoded C_2 instances: at every depth the bound must dominate
// all completions, equal the exact evaluation at the leaves, and agree
// between the Rat64 and big.Rat paths.
func FuzzPartialBoundAdmissible(f *testing.F) {
	f.Add([]byte{0, 0, 0}, uint8(0))
	f.Add([]byte{1, 2, 1, 3, 4, 0, 5, 6, 1}, uint8(1))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, from uint8) {
		c := topology.MustClos(2)
		fs := Collection{}
		var ma MiddleAssignment
		for i := 0; i+2 < len(data) && len(fs) < 6; i += 3 {
			si := int(data[i]%4) + 1
			sj := int(data[i]%2) + 1
			di := int(data[i+1]%4) + 1
			dj := int(data[i+1]%2) + 1
			fs = fs.Add(c.Source(si, sj), c.Dest(di, dj), 1)
			ma = append(ma, int(data[i+2]%2)+1)
		}
		if len(fs) == 0 {
			return
		}
		fixedFrom := int(from) % (len(fs) + 1)
		pe, err := NewPartialEvaluator(c, fs)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		big := func() *PartialEvaluator {
			e, err := NewPartialEvaluator(c, fs)
			if err != nil {
				t.Fatal(err)
			}
			e.ForceBig(true)
			return e
		}()
		ev, err := NewEvaluator(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := pe.Bound(ma, fixedFrom)
		if err != nil {
			t.Fatalf("bound: %v", err)
		}
		bigBound, err := big.Bound(ma, fixedFrom)
		if err != nil {
			t.Fatalf("big bound: %v", err)
		}
		if !bound.Equal(bigBound) {
			t.Fatalf("fast %v != big %v", bound, bigBound)
		}
		forEachAssignment(ma, 0, fixedFrom, c.Size(), func() {
			exact, err := ev.Eval(ma)
			if err != nil {
				t.Fatal(err)
			}
			if rational.LexCompareSorted(rational.Vec(bound), rational.Vec(exact)) < 0 {
				t.Fatalf("fixedFrom=%d ma=%v: bound %v below completion %v",
					fixedFrom, ma, bound.SortedCopy(), exact.SortedCopy())
			}
			if fixedFrom == 0 && !bound.Equal(exact) {
				t.Fatalf("leaf bound %v != exact %v", bound, exact)
			}
		})
	})
}
