package core

import (
	"errors"
	"fmt"

	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// errNoProgress mirrors the internal-invariant error of the per-state
// paths: a filling round that saturates no link and freezes no flow.
var errNoProgress = errors.New("waterfill: no progress (internal invariant violated)")

// BlockEvaluator water-fills a block of k middle assignments per call
// over structure-of-arrays scratch, amortizing the per-state overhead
// the one-at-a-time Evaluator pays on every Eval: AoS link structs,
// flows-on-link list rebuilding, and the per-call promotion regime
// check. The search engine hands it rank-contiguous blocks of canonical
// assignments (see internal/search/engine.go); the serving layer shares
// one prepared instance across /v1/batch items with a common topology
// hash (see internal/engine).
//
// Layout. Finite links are re-indexed densely in ascending LinkID order
// — "lanes" 0..nfin-1 — so the per-link state of the water filling is
// three contiguous arrays: a capacity lane seeded from Link.Capacity64
// at construction, and remaining/active lanes reused across states.
// Each flow's candidate paths are pre-resolved to lane index lists, so
// a state registers by bumping ~|path| counters instead of walking
// links. Only the lanes a state actually touches are seeded, swept and
// cleared (the touched list, kept in ascending lane order), which makes
// the fill cost proportional to the contended sub-network rather than
// the full link count. Rates are written to a k×|F| Rat64 lane, one row
// per state, so a whole block produces no allocations on the fast path.
//
// Promotion protocol. The fast pass attempts every state on the Rat64
// kernel and records the ones that overflow; a single per-block check
// then re-runs exactly those states on the embedded Evaluator's big.Rat
// path. A promoted state computes on the Evaluator's own scratch and
// every fast state re-seeds its lanes from the capacity lane, so a
// mid-block promotion cannot poison the remaining states (asserted by
// the scratch-reuse tests). ForceBig pins the whole block to big.Rat,
// the differential-test oracle.
//
// Bit identity. EvalBlock(mas, k) produces, state by state, exactly the
// allocation Eval (and ClosMaxMinFair) produce: the touched-lane sweep
// visits lanes in ascending LinkID order — the finiteIDs order of the
// per-state evaluator, restricted to the lanes with non-zero active
// count, which are the only ones either scan reads — so the min-delta
// tie-break picks the same bottleneck link, flows freeze in the same
// ascending-index order at the same exact Rat64 levels, and promotions
// are lossless re-runs of the identical algorithm.
//
// A BlockEvaluator is NOT safe for concurrent use.
type BlockEvaluator struct {
	ev   *Evaluator // path validation at construction + the big.Rat promotion path
	nf   int
	n    int
	nfin int
	fast bool

	// finPaths[fi][m-1] lists the finite-link lanes of flow fi's path
	// via middle m (path order; lane values are ascending-LinkID dense
	// indices).
	finPaths [][][]int32
	// caps is the capacity lane: caps[j] is the Capacity64 of lane j.
	caps []rational.Rat64

	// Per-state scratch, reused across the states of a block (states
	// fill sequentially, so one lane set serves them all). Only touched
	// entries are ever read or written. remN[j] is lane j's remaining
	// capacity as an integer numerator over the fill's single shared
	// denominator (see fill64) — the SoA trick that keeps the hot loop
	// in raw int64 arithmetic with no per-op gcd normalization.
	remN    []int64
	act     []int32
	frozen  []bool
	touched []int32

	// Per-block outputs: the k×nf rate lane of the fast path, the
	// promotion mask, and the materialized allocations of promoted
	// states.
	rates     []rational.Rat64
	promoted  []bool
	bigAllocs []Allocation
	res       BlockResult

	forceBig   bool
	promotions int

	// testOverflow, when non-nil, forces the fast fill of the given
	// block state to report overflow mid-fill (after registration, with
	// the active lane populated) — the package-internal hook the
	// promotion-protocol tests use, since unit-capacity instances never
	// overflow naturally.
	testOverflow func(state int) bool

	cFills      *obs.Counter
	cPromotions *obs.Counter
	gSize       *obs.Gauge
	jour        *obs.Journal
}

// NewBlockEvaluator prepares repeated block evaluations of fs over c.
// It fails if any flow endpoint is not a server of c.
func NewBlockEvaluator(c topology.Fabric, fs Collection) (*BlockEvaluator, error) {
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		return nil, err
	}
	b := &BlockEvaluator{ev: ev, nf: ev.nf, n: ev.n, nfin: len(ev.finiteIDs), fast: ev.fast}
	denseOf := make([]int32, len(ev.links))
	for i := range denseOf {
		denseOf[i] = -1
	}
	b.caps = make([]rational.Rat64, b.nfin)
	for j, id := range ev.finiteIDs {
		denseOf[id] = int32(j)
		b.caps[j] = ev.caps64[id]
	}
	b.finPaths = make([][][]int32, b.nf)
	for fi := 0; fi < b.nf; fi++ {
		b.finPaths[fi] = make([][]int32, b.n)
		for m := 0; m < b.n; m++ {
			p := ev.paths[fi][m]
			lanes := make([]int32, 0, len(p))
			for _, l := range p {
				if j := denseOf[l]; j >= 0 {
					lanes = append(lanes, j)
				}
			}
			b.finPaths[fi][m] = lanes
		}
	}
	b.remN = make([]int64, b.nfin)
	b.act = make([]int32, b.nfin)
	b.frozen = make([]bool, b.nf)
	b.touched = make([]int32, 0, b.nfin)
	return b, nil
}

// ForceBig pins EvalBlock to the *big.Rat path when on is true,
// bypassing the Rat64 lanes. The results are identical; it exists for
// differential tests and benchmarks.
func (b *BlockEvaluator) ForceBig(on bool) { b.forceBig = on }

// Promotions returns the number of states so far whose fast fill
// overflowed the Rat64 kernel and was transparently re-run on *big.Rat
// (ForceBig blocks do not count: they never attempt the kernel).
func (b *BlockEvaluator) Promotions() int { return b.promotions }

// Instrument attaches the observability layer: core.block_fills counts
// EvalBlock calls, core.block_promotions counts overflow promotions,
// and the core.block_size gauge tracks the last block's state count.
// Counters are registered by name, so instrumented evaluators sharing a
// registry (one per search worker) accumulate into shared metrics. A
// nil o leaves the evaluator uninstrumented at zero hot-path cost.
func (b *BlockEvaluator) Instrument(o *obs.Obs) {
	reg := o.Registry()
	b.cFills = reg.Counter("core.block_fills")
	b.cPromotions = reg.Counter("core.block_promotions")
	b.gSize = reg.Gauge("core.block_size")
	b.jour = o.Journal()
}

// EvalBlock computes the max-min fair allocations of k middle
// assignments packed state-major into mas (len(mas) = k·|F|; state s is
// mas[s·|F| : (s+1)·|F|]). The returned result aliases the evaluator's
// scratch and is valid until the next EvalBlock call; mas is only read.
// Allocations retained past the block must be materialized with
// BlockResult.Alloc.
func (b *BlockEvaluator) EvalBlock(mas []int, k int) (*BlockResult, error) {
	if k < 0 || len(mas) != k*b.nf {
		return nil, fmt.Errorf("block evaluator: %d assignment entries for %d states of %d flows", len(mas), k, b.nf)
	}
	for i, m := range mas {
		if m < 1 || m > b.n {
			return nil, fmt.Errorf("block evaluator: state %d flow %d: middle %d out of range [1, %d]", i/b.nf, i%b.nf, m, b.n)
		}
	}
	b.ensure(k)
	b.cFills.Inc()
	b.gSize.Set(int64(k))

	overflowed := 0
	if b.fast && !b.forceBig {
		for s := 0; s < k; s++ {
			ok, err := b.fillState(s, mas[s*b.nf:(s+1)*b.nf])
			if err != nil {
				return nil, err
			}
			b.promoted[s] = !ok
			if !ok {
				overflowed++
			}
		}
		if overflowed > 0 {
			b.promotions += overflowed
			b.cPromotions.Add(int64(overflowed))
			b.jour.Emit("core.block_promotion", obs.F{"states": overflowed, "promotions": b.promotions})
		}
	} else {
		for s := 0; s < k; s++ {
			b.promoted[s] = true
		}
		overflowed = k
	}
	// The single per-block promotion check: only the states whose fast
	// fill overflowed (or every state, under ForceBig or a non-Rat64
	// capacity) re-run on the big.Rat path.
	if overflowed > 0 {
		for s := 0; s < k; s++ {
			if !b.promoted[s] {
				continue
			}
			a, err := b.ev.evalBig(MiddleAssignment(mas[s*b.nf : (s+1)*b.nf]))
			if err != nil {
				return nil, err
			}
			b.bigAllocs[s] = a
		}
	}
	b.res = BlockResult{be: b, k: k}
	return &b.res, nil
}

// ensure sizes the per-block output lanes for k states. Scratch only
// grows, so steady-state blocks of one size never reallocate.
func (b *BlockEvaluator) ensure(k int) {
	if n := k * b.nf; cap(b.rates) >= n {
		b.rates = b.rates[:n]
	} else {
		b.rates = make([]rational.Rat64, n)
	}
	if cap(b.promoted) >= k {
		b.promoted = b.promoted[:k]
	} else {
		b.promoted = make([]bool, k)
	}
	if cap(b.bigAllocs) >= k {
		b.bigAllocs = b.bigAllocs[:k]
	} else {
		b.bigAllocs = make([]Allocation, k)
	}
}

// fillState runs the fast fill of one state and unconditionally clears
// the touched active-lane entries afterwards, so the next state's
// registration starts from zero even when the fill bailed out mid-round
// (overflow, unbounded flow, forced test overflow).
func (b *BlockEvaluator) fillState(s int, ma []int) (bool, error) {
	ok, err := b.fill64(s, ma)
	for _, j := range b.touched {
		b.act[j] = 0
	}
	return ok, err
}

// fill64 is the small-word progressive filling of one state over the
// shared lanes, restricted to the touched lanes and computing the exact
// values of Evaluator.eval64 in cheaper arithmetic: every remaining
// capacity is an integer numerator over one shared denominator den, so
// a round is cross-multiplied integer compares (min delta: remN[j]/act
// against the incumbent), one scale pass (den multiplies by the
// bottleneck's active count) and integer subtractions — no division and
// no gcd normalization anywhere in the loop. den grows only by the
// product of the bottleneck counts (bounded by 3^(|F|/3), tiny), and a
// flow's rate canonicalizes the exact level levelN/den once at freeze.
//
// The values agree exactly with eval64's: the scaled comparisons order
// deltas identically (operands are non-negative, the < is strict, the
// scan ascends the same lane order), a lane's numerator hits zero iff
// its exact remainder does, flows freeze in the same ascending index
// order, and rational.Make64(levelN, den) is the canonical form of the
// same exact level — so rates are bit-identical (asserted by the
// equivalence tests and the differential fuzz). The first result is
// false when an operation overflowed int64; the caller then re-runs the
// state on the big.Rat path, losslessly.
func (b *BlockEvaluator) fill64(s int, ma []int) (bool, error) {
	// Register: bump the active count of every lane on every flow's
	// path, collecting each lane the first time it is touched. The
	// insertion sort keeps the touched list in ascending lane order —
	// the finiteIDs order of the per-state evaluator — so every sweep
	// below visits lanes exactly as eval64 visits links.
	b.touched = b.touched[:0]
	for fi, m := range ma {
		for _, j := range b.finPaths[fi][m-1] {
			if b.act[j] == 0 {
				b.touched = append(b.touched, j)
			}
			b.act[j]++
		}
	}
	for i := 1; i < len(b.touched); i++ {
		for t := i; t > 0 && b.touched[t] < b.touched[t-1]; t-- {
			b.touched[t], b.touched[t-1] = b.touched[t-1], b.touched[t]
		}
	}
	// Seed the shared denominator (the lcm of the touched capacities'
	// denominators — 1 on unit-capacity networks) and the numerator
	// lanes. All quantities in the fill are non-negative.
	for fi := range b.frozen {
		b.frozen[fi] = false
	}
	if b.testOverflow != nil && b.testOverflow(s) {
		return false, nil
	}
	den := int64(1)
	for _, j := range b.touched {
		q := b.caps[j].Den()
		g := gcdInt64(den, q)
		var ok bool
		if den, ok = mulNonNeg(den/g, q); !ok {
			return false, nil
		}
	}
	for _, j := range b.touched {
		r, ok := mulNonNeg(b.caps[j].Num(), den/b.caps[j].Den())
		if !ok {
			return false, nil
		}
		b.remN[j] = r
	}

	rates := b.rates[s*b.nf : (s+1)*b.nf]
	levelN := int64(0) // the water level is the exact rational levelN/den
	remaining := b.nf
	for remaining > 0 {
		// Min-delta scan: delta_j = remN[j]/(den·act[j]); the shared den
		// cancels, so remN[j]/act[j] < minR/minA cross-multiplies to
		// remN[j]·minA < minR·act[j]. Same ordering and strict-< ties
		// (earlier lane wins) as eval64's scan over finiteIDs, which
		// skips the same zero-active lanes.
		minJ := int32(-1)
		var minR, minA int64
		for _, j := range b.touched {
			a := int64(b.act[j])
			if a == 0 {
				continue
			}
			if minJ < 0 {
				minJ, minR, minA = j, b.remN[j], a
				continue
			}
			lhs, ok1 := mulNonNeg(b.remN[j], minA)
			rhs, ok2 := mulNonNeg(minR, a)
			if !ok1 || !ok2 {
				return false, nil
			}
			if lhs < rhs {
				minJ, minR, minA = j, b.remN[j], a
			}
		}
		if minJ < 0 {
			return false, ErrUnboundedFlow
		}
		// Advance the level by delta = minR/(den·minA): rescale the fill
		// to the new shared denominator den·minA, under which delta's
		// numerator is minR and lane j consumes act[j]·minR.
		if minA > 1 {
			var ok bool
			if den, ok = mulNonNeg(den, minA); !ok {
				return false, nil
			}
			if levelN, ok = mulNonNeg(levelN, minA); !ok {
				return false, nil
			}
			for _, j := range b.touched {
				if b.act[j] == 0 {
					continue
				}
				r, ok := mulNonNeg(b.remN[j], minA)
				if !ok {
					return false, nil
				}
				b.remN[j] = r
			}
		}
		if levelN > maxInt64-minR {
			return false, nil
		}
		levelN += minR
		for _, j := range b.touched {
			a := int64(b.act[j])
			if a == 0 {
				continue
			}
			used, ok := mulNonNeg(a, minR)
			if !ok {
				return false, nil
			}
			b.remN[j] -= used // ≥ 0: delta is the minimum over active lanes
		}
		progressed := false
		for _, j := range b.touched {
			if b.act[j] == 0 || b.remN[j] != 0 {
				continue
			}
			// Freeze every unfrozen flow crossing the saturated lane, in
			// ascending flow index — the order of eval64's on-lists,
			// which are built by an ascending flow walk.
			for fi := 0; fi < b.nf; fi++ {
				if b.frozen[fi] || !laneOnPath(b.finPaths[fi][ma[fi]-1], j) {
					continue
				}
				b.frozen[fi] = true
				level, ok := rational.Make64(levelN, den)
				if !ok {
					return false, nil
				}
				rates[fi] = level
				remaining--
				progressed = true
				for _, l := range b.finPaths[fi][ma[fi]-1] {
					b.act[l]--
				}
			}
		}
		if !progressed {
			return false, errNoProgress
		}
	}
	return true, nil
}

// maxInt64 avoids importing math for one constant.
const maxInt64 = int64(^uint64(0) >> 1)

// mulNonNeg is the overflow-checked product of two non-negative int64s.
func mulNonNeg(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a > maxInt64/b {
		return 0, false
	}
	return a * b, true
}

// gcdInt64 is Euclid's gcd for a ≥ 0, b > 0.
func gcdInt64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func laneOnPath(path []int32, j int32) bool {
	for _, l := range path {
		if l == j {
			return true
		}
	}
	return false
}

// BlockResult is the outcome of one EvalBlock call. It aliases the
// evaluator's scratch: accessors are valid until the next EvalBlock on
// the same evaluator.
type BlockResult struct {
	be *BlockEvaluator
	k  int
}

// Len returns the number of states in the block.
func (r *BlockResult) Len() int { return r.k }

// Promoted reports whether state s was computed on the big.Rat path.
func (r *BlockResult) Promoted(s int) bool { return r.be.promoted[s] }

// Rates64 returns state s's rate lane in flow order. It is only valid
// when !Promoted(s), must not be mutated, and is overwritten by the
// next EvalBlock. The search objectives screen candidates on this lane
// without materializing allocations.
func (r *BlockResult) Rates64(s int) []rational.Rat64 {
	return r.be.rates[s*r.be.nf : (s+1)*r.be.nf]
}

// Alloc materializes state s's allocation as a fresh, retainable
// vector, identical to what Evaluator.Eval returns for the same state.
func (r *BlockResult) Alloc(s int) Allocation {
	if r.be.promoted[s] {
		return r.be.bigAllocs[s]
	}
	lane := r.Rates64(s)
	a := make(Allocation, len(lane))
	for i, v := range lane {
		a[i] = v.Rat()
	}
	return a
}
