package core

import (
	"fmt"
	"math/big"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// Allocation assigns a non-negative rate to each flow of a collection;
// it is a rate vector parallel to the collection. The paper's sorted
// vector a↑ is Allocation.SortedCopy(), its throughput t(a) is
// Allocation.Sum().
type Allocation = rational.Vec

// LinkLoads returns the total allocated rate on every link of net under
// routing r and allocation a. The result is indexed by LinkID.
func LinkLoads(net *topology.Network, r Routing, a Allocation) []*big.Rat {
	loads := make([]*big.Rat, net.NumLinks())
	for i := range loads {
		loads[i] = new(big.Rat)
	}
	for fi, p := range r {
		for _, l := range p {
			loads[l].Add(loads[l], a[fi])
		}
	}
	return loads
}

// IsFeasible returns nil if allocation a is feasible for routing r in net:
// all rates are non-negative and, for every finite-capacity link, the
// total rate over flows traversing the link is at most the capacity
// (§2.2). A non-nil error identifies the first violation.
func IsFeasible(net *topology.Network, fs Collection, r Routing, a Allocation) error {
	if len(a) != len(fs) {
		return fmt.Errorf("allocation has %d rates for %d flows", len(a), len(fs))
	}
	if err := r.Validate(net, fs); err != nil {
		return err
	}
	for i, rate := range a {
		if rate.Sign() < 0 {
			return fmt.Errorf("flow %d: negative rate %s", i, rational.String(rate))
		}
	}
	loads := LinkLoads(net, r, a)
	for _, l := range net.Links() {
		if l.Unbounded {
			continue
		}
		if loads[l.ID].Cmp(l.Capacity) > 0 {
			return fmt.Errorf("link %s: load %s exceeds capacity %s",
				net.LinkName(l.ID), rational.String(loads[l.ID]), rational.String(l.Capacity))
		}
	}
	return nil
}

// IsMaxMinFair returns nil if allocation a is the max-min fair allocation
// for routing r in net, using the bottleneck property of Lemma 2.2: a is
// feasible and every flow has a bottleneck link — a saturated link on its
// path on which its rate is maximal. This is an independent
// characterization used to cross-check the water-filling allocator.
func IsMaxMinFair(net *topology.Network, fs Collection, r Routing, a Allocation) error {
	if err := IsFeasible(net, fs, r, a); err != nil {
		return err
	}
	loads := LinkLoads(net, r, a)
	on := FlowsOnLinks(net, r)

	// maxOn[l] = maximum rate over flows traversing l.
	maxOn := make([]*big.Rat, net.NumLinks())
	for l := range on {
		for _, fi := range on[l] {
			if maxOn[l] == nil || a[fi].Cmp(maxOn[l]) > 0 {
				maxOn[l] = a[fi]
			}
		}
	}

	for fi, p := range r {
		hasBottleneck := false
		for _, l := range p {
			link := net.Link(l)
			if link.Unbounded {
				continue
			}
			if loads[l].Cmp(link.Capacity) == 0 && a[fi].Cmp(maxOn[l]) == 0 {
				hasBottleneck = true
				break
			}
		}
		if !hasBottleneck {
			return fmt.Errorf("flow %d (%s -> %s, rate %s) has no bottleneck link",
				fi, net.Node(fs[fi].Src).Name, net.Node(fs[fi].Dst).Name, rational.String(a[fi]))
		}
	}
	return nil
}

// LexLess reports whether a↑ < b↑ in lexicographic order, the order of
// Definition 2.1.
func LexLess(a, b Allocation) bool {
	return rational.LexCompareSorted(a, b) < 0
}

// Throughput returns t(a), the total rate over all flows.
func Throughput(a Allocation) *big.Rat {
	return a.Sum()
}
