package core

import (
	"math/rand"
	"testing"

	"closnet/internal/obs"
	"closnet/internal/topology"
)

// evaluatorCollection builds a mixed collection on C_n with contended
// sources and destinations, the shape that stresses the water filling.
func evaluatorCollection(c *topology.Clos) Collection {
	n := c.Size()
	fs := Collection{}
	for i := 1; i <= n; i++ {
		fs = fs.Add(c.Source(i, 1), c.Dest(i%n+1, 1), 1)
		fs = fs.Add(c.Source(i, 1), c.Dest(i, 1), 1)
	}
	return fs
}

// TestEvaluatorMatchesClosMaxMinFair: Eval must return exactly the
// allocation ClosMaxMinFair returns — same rationals, not merely equal
// floats — over every assignment of a small instance, on both the Rat64
// kernel and the pinned big.Rat fallback.
func TestEvaluatorMatchesClosMaxMinFair(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c) // 4 flows: 2^4 = 16 assignments
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	evBig, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	evBig.ForceBig(true)
	ma := UniformAssignment(len(fs), 1)
	for rank := 0; rank < 16; rank++ {
		r := rank
		for fi := range ma {
			ma[fi] = 1 + r%2
			r /= 2
		}
		want, err := ClosMaxMinFair(c, fs, ma)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		got, err := ev.Eval(ma)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if !got.Equal(want) {
			t.Errorf("rank %d (%v): Eval = %v, ClosMaxMinFair = %v", rank, ma, got, want)
		}
		big, err := evBig.Eval(ma)
		if err != nil {
			t.Fatalf("rank %d big: %v", rank, err)
		}
		if !big.Equal(want) {
			t.Errorf("rank %d (%v): ForceBig Eval = %v, ClosMaxMinFair = %v", rank, ma, big, want)
		}
	}
	if !ev.fast {
		t.Error("unit-capacity Clos did not enable the Rat64 fast path")
	}
	if ev.Promotions() != 0 {
		t.Errorf("unit-capacity instance promoted %d times", ev.Promotions())
	}
}

// TestEvaluatorMatchesRandom cross-checks scratch reuse on a larger
// instance with pseudo-random assignments: a stale buffer from a prior
// call would surface as a mismatch. The same evaluator alternates
// between the Rat64 kernel and the big.Rat path to prove the two share
// scratch without interference.
func TestEvaluatorMatchesRandom(t *testing.T) {
	c := topology.MustClos(4)
	fs := evaluatorCollection(c)
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ma := make(MiddleAssignment, len(fs))
	for trial := 0; trial < 200; trial++ {
		for fi := range ma {
			ma[fi] = 1 + rng.Intn(c.Size())
		}
		want, err := ClosMaxMinFair(c, fs, ma)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ev.ForceBig(trial%3 == 2)
		got, err := ev.Eval(ma)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(want) {
			t.Errorf("trial %d (%v): Eval = %v, ClosMaxMinFair = %v", trial, ma, got, want)
		}
	}
	if ev.Promotions() != 0 {
		t.Errorf("unit-capacity instance promoted %d times", ev.Promotions())
	}
}

func TestEvaluatorErrors(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c)
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(MiddleAssignment{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := UniformAssignment(len(fs), 1)
	bad[0] = 3
	if _, err := ev.Eval(bad); err == nil {
		t.Error("out-of-range middle accepted")
	}
	if _, err := NewEvaluator(c, Collection{{Src: c.Input(1), Dst: c.Dest(1, 1)}}); err == nil {
		t.Error("non-server source accepted")
	}
}

// TestEvaluatorDisabledObsAllocParity pins the observability layer's
// zero-overhead contract on the evaluator hot path: an evaluator
// instrumented with a nil Obs (nil handles everywhere) allocates exactly
// as much per Eval as one never instrumented at all.
func TestEvaluatorDisabledObsAllocParity(t *testing.T) {
	c := topology.MustClos(4)
	fs := evaluatorCollection(c)
	plain, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	instr.Instrument(nil)
	ma := UniformAssignment(len(fs), 1)
	evalAllocs := func(ev *Evaluator) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, err := ev.Eval(ma); err != nil {
				t.Fatal(err)
			}
		})
	}
	base, withNil := evalAllocs(plain), evalAllocs(instr)
	if base != withNil {
		t.Errorf("Eval allocs/op: uninstrumented %.1f, nil-instrumented %.1f — disabled observability must be free", base, withNil)
	}
}

// TestEvaluatorInstrumented: with a live registry the evaluator counts
// fills, fast-path completions and scratch reuses.
func TestEvaluatorInstrumented(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c)
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ev.Instrument(&obs.Obs{Reg: reg})
	ma := UniformAssignment(len(fs), 1)
	const evals = 5
	for i := 0; i < evals; i++ {
		if _, err := ev.Eval(ma); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["core.eval.fills"]; got != evals {
		t.Errorf("core.eval.fills = %d, want %d", got, evals)
	}
	if got := snap.Counters["core.eval.fast"]; got != evals {
		t.Errorf("core.eval.fast = %d, want %d (unit capacities never promote)", got, evals)
	}
	if got := snap.Counters["core.eval.scratch_reuses"]; got != evals-1 {
		t.Errorf("core.eval.scratch_reuses = %d, want %d", got, evals-1)
	}
	if got := snap.Counters["core.eval.promotions"]; got != 0 {
		t.Errorf("core.eval.promotions = %d, want 0", got)
	}
}
