package core

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// PartialEvaluator bounds partial middle assignments for the
// branch-and-bound search: given a suffix of flows fixed to concrete
// middle switches and the remaining prefix free, it computes the
// max-min fair allocation of the *trunk relaxation* — an admissible
// upper bound (in the sorted-lexicographic order of Definition 2.4) on
// the max-min fair allocation of every completion of the partial
// assignment.
//
// The relaxation adds one aggregate "trunk" link per ToR switch side:
// uptrunk(i) pools input switch I_i's n uplinks (capacity n) and
// downtrunk(o) pools output switch O_o's n downlinks (capacity n).
// A fixed flow is charged on its real four-link path plus both trunks;
// a free flow is charged only on its server links and the two trunks —
// it pays for fabric capacity in aggregate without committing to a
// middle. Any completion's allocation satisfies every relaxed
// constraint (each trunk constraint is the sum of n unit-capacity
// fabric constraints, and completions agree with the fixed suffix), so
// it is feasible in the relaxed system; the water-filled max-min fair
// allocation of a system lexicographically dominates every feasible
// allocation of that system, which makes the bound admissible. When
// every flow is fixed the trunk constraints are implied by the real
// per-middle links, so the relaxed feasible region equals the real one
// and the bound coincides with the exact evaluation.
//
// Like Evaluator, the hot path runs on the rational.Rat64 small-word
// kernel over scratch reused across calls — only the two fabric links
// of each fixed flow differ between nodes, so bounding a child costs a
// scratch reset plus O(fixed) registration, not a fresh solve — with a
// lossless *big.Rat fallback on overflow. A PartialEvaluator is NOT
// safe for concurrent use.
type PartialEvaluator struct {
	nf     int
	n      int
	tors   int
	nLinks int // real links + 2*tors trunk links

	// staticOf[fi] lists the finite links flow fi occupies regardless of
	// assignment: source link, uptrunk(i), downtrunk(o), destination
	// link. fabricOf[fi][m-1] lists the two real fabric links flow fi
	// additionally occupies when fixed to middle m.
	staticOf [][]int
	fabricOf [][][2]int

	// Scratch reused across Bound calls, indexed by relaxed link ID.
	// on holds the static flows-on-link lists for server and trunk links
	// (membership there never varies); fabric on-lists are rebuilt per
	// call from the fixed suffix.
	active     []int
	baseActive []int
	frozen     []bool
	on         [][]int
	fabricIDs  []int // real fabric link IDs, for the per-call on reset
	isFabric   []bool
	finiteIDs  []int

	caps64 []rational.Rat64
	rem64  []rational.Rat64
	fast   bool

	forceBig bool

	// big.Rat scratch for the promotion path, mirroring Evaluator.
	remaining              []*big.Rat
	caps                   []*big.Rat
	actRat                 *big.Rat
	delta                  *big.Rat
	tmp                    *big.Rat
	level                  *big.Rat
	xInt, yInt, aInt, bInt *big.Int
}

// NewPartialEvaluator prepares repeated trunk-relaxation bounds of fs
// over c. It fails if any flow endpoint is not a server of c or any
// link capacity is unbounded (the relaxation pools concrete capacities).
func NewPartialEvaluator(c *topology.Clos, fs Collection) (*PartialEvaluator, error) {
	links := c.Network().Links()
	e := &PartialEvaluator{nf: len(fs), n: c.Size(), tors: c.NumToRs()}
	nReal := len(links)
	e.nLinks = nReal + 2*e.tors
	upTrunk := func(i int) int { return nReal + (i - 1) }
	downTrunk := func(o int) int { return nReal + e.tors + (o - 1) }

	e.caps = make([]*big.Rat, e.nLinks)
	e.caps64 = make([]rational.Rat64, e.nLinks)
	e.rem64 = make([]rational.Rat64, e.nLinks)
	e.remaining = make([]*big.Rat, e.nLinks)
	e.isFabric = make([]bool, e.nLinks)
	e.fast = true
	for _, l := range links {
		if l.Unbounded {
			return nil, fmt.Errorf("partial: link %d is unbounded; the trunk relaxation needs finite capacities", l.ID)
		}
		id := int(l.ID)
		e.caps[id] = l.Capacity
		if c64, ok := l.Capacity64(); ok {
			e.caps64[id] = c64
		} else {
			e.fast = false
		}
		e.finiteIDs = append(e.finiteIDs, id)
		e.remaining[id] = new(big.Rat)
	}
	sort.Ints(e.finiteIDs)
	trunkCap := rational.Int(int64(e.n))
	for t := nReal; t < e.nLinks; t++ {
		e.caps[t] = trunkCap
		e.caps64[t] = rational.Int64(int64(e.n))
		e.finiteIDs = append(e.finiteIDs, t)
		e.remaining[t] = new(big.Rat)
	}

	e.staticOf = make([][]int, len(fs))
	e.fabricOf = make([][][2]int, len(fs))
	for fi, f := range fs {
		i, ok := c.InputOf(f.Src)
		if !ok {
			return nil, fmt.Errorf("partial: flow %d: node %d is not a source", fi, f.Src)
		}
		o, ok := c.OutputOf(f.Dst)
		if !ok {
			return nil, fmt.Errorf("partial: flow %d: node %d is not a destination", fi, f.Dst)
		}
		p, err := c.Path(f.Src, f.Dst, 1)
		if err != nil {
			return nil, fmt.Errorf("partial: flow %d: %w", fi, err)
		}
		// p = [src->I_i, I_i->M_1, M_1->O_o, O_o->dst].
		e.staticOf[fi] = []int{int(p[0]), upTrunk(i), downTrunk(o), int(p[3])}
		e.fabricOf[fi] = make([][2]int, e.n)
		for m := 1; m <= e.n; m++ {
			pm, err := c.Path(f.Src, f.Dst, m)
			if err != nil {
				return nil, fmt.Errorf("partial: flow %d: %w", fi, err)
			}
			e.fabricOf[fi][m-1] = [2]int{int(pm[1]), int(pm[2])}
		}
	}

	// Static membership: every flow sits on its four static links for
	// every partial assignment; fabric links start empty and are filled
	// per call with the fixed suffix.
	e.on = make([][]int, e.nLinks)
	e.baseActive = make([]int, e.nLinks)
	e.active = make([]int, e.nLinks)
	for fi := range fs {
		for _, id := range e.staticOf[fi] {
			e.on[id] = append(e.on[id], fi)
			e.baseActive[id]++
		}
		for m := 0; m < e.n; m++ {
			for _, id := range e.fabricOf[fi][m] {
				e.isFabric[id] = true
			}
		}
	}
	for id, fab := range e.isFabric {
		if fab {
			e.fabricIDs = append(e.fabricIDs, id)
		}
	}
	e.frozen = make([]bool, len(fs))
	e.actRat = new(big.Rat)
	e.delta = new(big.Rat)
	e.tmp = new(big.Rat)
	e.level = new(big.Rat)
	e.xInt, e.yInt = new(big.Int), new(big.Int)
	e.aInt, e.bInt = new(big.Int), new(big.Int)
	return e, nil
}

// ForceBig pins Bound to the *big.Rat path when on is true, bypassing
// the Rat64 kernel. The results are identical; it exists for
// differential tests.
func (e *PartialEvaluator) ForceBig(on bool) { e.forceBig = on }

// Bound computes the max-min fair allocation of the trunk relaxation in
// which flows [fixedFrom, len(fs)) are routed per ma and flows
// [0, fixedFrom) are free. The result's sorted vector lexicographically
// dominates (≥) the sorted max-min fair vector of every completion of
// the partial assignment; with fixedFrom == 0 it equals the exact
// evaluation. Only ma[fixedFrom:] is read; the returned Allocation is
// freshly allocated.
func (e *PartialEvaluator) Bound(ma MiddleAssignment, fixedFrom int) (Allocation, error) {
	if len(ma) != e.nf {
		return nil, fmt.Errorf("partial: assignment has %d middles for %d flows", len(ma), e.nf)
	}
	if fixedFrom < 0 || fixedFrom > e.nf {
		return nil, fmt.Errorf("partial: fixedFrom %d out of range [0, %d]", fixedFrom, e.nf)
	}
	for fi := fixedFrom; fi < e.nf; fi++ {
		if m := ma[fi]; m < 1 || m > e.n {
			return nil, fmt.Errorf("partial: flow %d: middle %d out of range [1, %d]", fi, m, e.n)
		}
	}
	if e.fast && !e.forceBig {
		rates, ok, err := e.bound64(ma, fixedFrom)
		if err != nil {
			return nil, err
		}
		if ok {
			return rates, nil
		}
	}
	return e.boundBig(ma, fixedFrom)
}

// register resets the varying scratch: fabric on-lists are rebuilt for
// the fixed suffix, active counts start from the static membership, and
// the frozen flags clear. Static on-lists (server and trunk links) are
// shared across calls and never mutated.
func (e *PartialEvaluator) register(ma MiddleAssignment, fixedFrom int) {
	for _, id := range e.fabricIDs {
		e.on[id] = e.on[id][:0]
	}
	copy(e.active, e.baseActive)
	for fi := range e.frozen {
		e.frozen[fi] = false
	}
	for fi := fixedFrom; fi < e.nf; fi++ {
		for _, id := range e.fabricOf[fi][ma[fi]-1] {
			e.on[id] = append(e.on[id], fi)
			e.active[id]++
		}
	}
}

// linksOf calls fn for every relaxed link flow fi occupies under the
// partial assignment.
func (e *PartialEvaluator) linksOf(fi, fixedFrom int, ma MiddleAssignment, fn func(id int)) {
	for _, id := range e.staticOf[fi] {
		fn(id)
	}
	if fi >= fixedFrom {
		for _, id := range e.fabricOf[fi][ma[fi]-1] {
			fn(id)
		}
	}
}

// bound64 is the small-word progressive filling of the relaxed system,
// mirroring Evaluator.eval64: same bottleneck scan, same tie-breaking,
// same exact arithmetic. The second result is false when an operation
// overflowed int64; the caller then redoes the state on boundBig.
func (e *PartialEvaluator) bound64(ma MiddleAssignment, fixedFrom int) (Allocation, bool, error) {
	e.register(ma, fixedFrom)
	for _, id := range e.finiteIDs {
		e.rem64[id] = e.caps64[id]
	}
	rates := make(rational.Vec, e.nf)
	if e.nf == 0 {
		return rates, true, nil
	}
	level := rational.Zero64()
	remainingFlows := e.nf
	for remainingFlows > 0 {
		minID := -1
		var minDelta rational.Rat64
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			d, ok := e.rem64[id].DivInt(int64(e.active[id]))
			if !ok {
				return nil, false, nil
			}
			if minID < 0 || d.Cmp(minDelta) < 0 {
				minID = id
				minDelta = d
			}
		}
		if minID < 0 {
			return nil, false, ErrUnboundedFlow
		}
		var ok bool
		if level, ok = level.Add(minDelta); !ok {
			return nil, false, nil
		}
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			used, ok := minDelta.MulInt(int64(e.active[id]))
			if !ok {
				return nil, false, nil
			}
			if e.rem64[id], ok = e.rem64[id].Sub(used); !ok {
				return nil, false, nil
			}
		}
		var levelRat *big.Rat
		progressed := false
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 || !e.rem64[id].IsZero() {
				continue
			}
			for _, fi := range e.on[id] {
				if e.frozen[fi] {
					continue
				}
				e.frozen[fi] = true
				if levelRat == nil {
					levelRat = level.Rat()
				}
				rates[fi] = levelRat
				remainingFlows--
				progressed = true
				e.linksOf(fi, fixedFrom, ma, func(l int) { e.active[l]-- })
			}
		}
		if !progressed {
			return nil, false, errors.New("partial: no progress (internal invariant violated)")
		}
	}
	return rates, true, nil
}

// boundBig is the exact progressive filling of the relaxed system on
// *big.Rat, the promotion target of bound64 and the oracle of the
// differential tests. It mirrors Evaluator.evalBig.
func (e *PartialEvaluator) boundBig(ma MiddleAssignment, fixedFrom int) (Allocation, error) {
	e.register(ma, fixedFrom)
	for _, id := range e.finiteIDs {
		e.remaining[id].Set(e.caps[id])
	}
	rates := make(rational.Vec, e.nf)
	if e.nf == 0 {
		return rates, nil
	}
	level := e.level.SetInt64(0)
	remainingFlows := e.nf
	for remainingFlows > 0 {
		minID := -1
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			if minID < 0 {
				minID = id
				continue
			}
			e.aInt.SetInt64(int64(e.active[minID]))
			e.bInt.SetInt64(int64(e.active[id]))
			e.xInt.Mul(e.remaining[id].Num(), e.remaining[minID].Denom())
			e.xInt.Mul(e.xInt, e.aInt)
			e.yInt.Mul(e.remaining[minID].Num(), e.remaining[id].Denom())
			e.yInt.Mul(e.yInt, e.bInt)
			if e.xInt.Cmp(e.yInt) < 0 {
				minID = id
			}
		}
		if minID < 0 {
			return nil, ErrUnboundedFlow
		}
		e.actRat.SetInt64(int64(e.active[minID]))
		e.delta.Quo(e.remaining[minID], e.actRat)

		level.Add(level, e.delta)
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			e.actRat.SetInt64(int64(e.active[id]))
			e.tmp.Mul(e.delta, e.actRat)
			e.remaining[id].Sub(e.remaining[id], e.tmp)
		}

		progressed := false
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 || e.remaining[id].Sign() != 0 {
				continue
			}
			for _, fi := range e.on[id] {
				if e.frozen[fi] {
					continue
				}
				e.frozen[fi] = true
				rates[fi] = rational.Copy(level)
				remainingFlows--
				progressed = true
				e.linksOf(fi, fixedFrom, ma, func(l int) { e.active[l]-- })
			}
		}
		if !progressed {
			return nil, errors.New("partial: no progress (internal invariant violated)")
		}
	}
	return rates, nil
}
