package core

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// PartialEvaluator bounds partial middle assignments for the
// branch-and-bound search: given a suffix of flows fixed to concrete
// path choices and the remaining prefix free, it computes the max-min
// fair allocation of the *trunk relaxation* — an admissible upper bound
// (in the sorted-lexicographic order of Definition 2.4) on the max-min
// fair allocation of every completion of the partial assignment.
//
// The relaxation works on any topology.Fabric. For every interior
// switch it forms candidate "trunk" pools — the switch's fabric-facing
// out-links and in-links, pooled with capacity equal to the sum of the
// member capacities — and charges a flow on a trunk exactly when every
// one of the flow's Size() candidate paths crosses the pool exactly
// once. A fixed flow is charged on its full real path plus its trunks;
// a free flow is charged only on its static links (the links shared by
// all of its candidate paths, which always include its server links)
// plus its trunks — it pays for fabric capacity in aggregate without
// committing to a path. On a Clos this reproduces the per-ToR
// uplink/downlink trunks exactly; on a fat-tree the pools are the
// edge-to-aggregation bundles; on a Benes the outermost stage fan-outs.
//
// Any completion's allocation satisfies every relaxed constraint: each
// trunk constraint is weaker than the sum of its member link
// constraints (a charged flow crosses the pool exactly once under any
// completion, and uncharged traffic is dropped from the left-hand
// side), and real links carry subsets of their true flow sets. So the
// completion is feasible in the relaxed system, and the water-filled
// max-min fair allocation of that system lexicographically dominates
// it — the bound is admissible. When every flow is fixed the trunk
// constraints are implied by the real links and the charged sets are
// exact, so the relaxed feasible region equals the real one and the
// bound coincides with the exact evaluation.
//
// Like Evaluator, the hot path runs on the rational.Rat64 small-word
// kernel over scratch reused across calls — only the varying links of
// each fixed flow differ between nodes, so bounding a child costs a
// scratch reset plus O(fixed) registration, not a fresh solve — with a
// lossless *big.Rat fallback on overflow. A PartialEvaluator is NOT
// safe for concurrent use.
type PartialEvaluator struct {
	nf     int
	n      int
	nLinks int // real links + trunk pools

	// staticOf[fi] lists the relaxed links flow fi occupies regardless
	// of assignment: the real links shared by all of its candidate paths
	// plus its charged trunks. varyingOf[fi][m-1] lists the real links
	// flow fi additionally occupies when fixed to choice m.
	staticOf  [][]int
	varyingOf [][][]int

	// Scratch reused across Bound calls, indexed by relaxed link ID.
	// on holds the static flows-on-link lists (membership there never
	// varies); varying on-lists are rebuilt per call from the fixed
	// suffix.
	active     []int
	baseActive []int
	frozen     []bool
	on         [][]int
	varyIDs    []int // real links appearing in some varyingOf, for the per-call on reset
	finiteIDs  []int

	caps64 []rational.Rat64
	rem64  []rational.Rat64
	fast   bool

	forceBig bool

	// big.Rat scratch for the promotion path, mirroring Evaluator.
	remaining              []*big.Rat
	caps                   []*big.Rat
	actRat                 *big.Rat
	delta                  *big.Rat
	tmp                    *big.Rat
	level                  *big.Rat
	xInt, yInt, aInt, bInt *big.Int
}

// NewPartialEvaluator prepares repeated trunk-relaxation bounds of fs
// over c. It fails if any flow endpoint is not a server of c or any
// link capacity is unbounded (the relaxation pools concrete capacities).
func NewPartialEvaluator(c topology.Fabric, fs Collection) (*PartialEvaluator, error) {
	net := c.Network()
	links := net.Links()
	e := &PartialEvaluator{nf: len(fs), n: c.Size()}
	nReal := len(links)
	for _, l := range links {
		if l.Unbounded {
			return nil, fmt.Errorf("partial: link %d is unbounded; the trunk relaxation needs finite capacities", l.ID)
		}
	}

	// Candidate paths, one per flow and choice.
	paths := make([][]topology.Path, len(fs))
	for fi, f := range fs {
		paths[fi] = make([]topology.Path, e.n)
		for m := 1; m <= e.n; m++ {
			p, err := c.Path(f.Src, f.Dst, m)
			if err != nil {
				return nil, fmt.Errorf("partial: flow %d: %w", fi, err)
			}
			paths[fi][m-1] = p
		}
	}

	// Trunk pools: the fabric-interior out-link and in-link bundles of
	// every switch. Links incident to a server stay out of pools (they
	// are exact per-flow constraints already), and singleton bundles
	// duplicate their one real constraint, so only pools of two or more
	// interior links survive. Each real link belongs to at most one
	// out-pool (keyed by its tail) and one in-pool (keyed by its head).
	isServer := func(id topology.NodeID) bool {
		k := net.Node(id).Kind
		return k == topology.KindSource || k == topology.KindDestination
	}
	outMembers := make(map[topology.NodeID][]int)
	inMembers := make(map[topology.NodeID][]int)
	for _, l := range links {
		if isServer(l.From) || isServer(l.To) {
			continue
		}
		outMembers[l.From] = append(outMembers[l.From], int(l.ID))
		inMembers[l.To] = append(inMembers[l.To], int(l.ID))
	}
	outPoolOf := make([]int, nReal)
	inPoolOf := make([]int, nReal)
	for i := range outPoolOf {
		outPoolOf[i] = -1
		inPoolOf[i] = -1
	}
	var poolLinks [][]int
	addPools := func(members map[topology.NodeID][]int, poolOf []int) {
		// Deterministic pool order: ascending key node ID.
		keys := make([]int, 0, len(members))
		for v := range members {
			keys = append(keys, int(v))
		}
		sort.Ints(keys)
		for _, v := range keys {
			ids := members[topology.NodeID(v)]
			if len(ids) < 2 {
				continue
			}
			sort.Ints(ids)
			for _, id := range ids {
				poolOf[id] = len(poolLinks)
			}
			poolLinks = append(poolLinks, ids)
		}
	}
	addPools(outMembers, outPoolOf)
	addPools(inMembers, inPoolOf)
	e.nLinks = nReal + len(poolLinks)

	e.caps = make([]*big.Rat, e.nLinks)
	e.caps64 = make([]rational.Rat64, e.nLinks)
	e.rem64 = make([]rational.Rat64, e.nLinks)
	e.remaining = make([]*big.Rat, e.nLinks)
	e.fast = true
	for _, l := range links {
		id := int(l.ID)
		e.caps[id] = l.Capacity
		if c64, ok := l.Capacity64(); ok {
			e.caps64[id] = c64
		} else {
			e.fast = false
		}
		e.finiteIDs = append(e.finiteIDs, id)
		e.remaining[id] = new(big.Rat)
	}
	sort.Ints(e.finiteIDs)
	for t, members := range poolLinks {
		pooled := new(big.Rat)
		for _, id := range members {
			pooled.Add(pooled, links[id].Capacity)
		}
		tid := nReal + t
		e.caps[tid] = pooled
		if c64, ok := rational.FromRat(pooled); ok {
			e.caps64[tid] = c64
		} else {
			e.fast = false
		}
		e.finiteIDs = append(e.finiteIDs, tid)
		e.remaining[tid] = new(big.Rat)
	}

	// Per-flow static links, varying links and charged trunks. A trunk
	// is charged exactly when every candidate path crosses its pool
	// exactly once (then the flow consumes one unit of pool capacity
	// under any completion).
	e.staticOf = make([][]int, len(fs))
	e.varyingOf = make([][][]int, len(fs))
	isVarying := make([]bool, nReal)
	occ := make([]int, nReal)
	for fi := range fs {
		for _, p := range paths[fi] {
			for _, l := range p {
				occ[l]++
			}
		}
		trunks := make(map[int]bool)
		for pi, p := range paths[fi] {
			cnt := make(map[int]int)
			for _, l := range p {
				if q := outPoolOf[l]; q >= 0 {
					cnt[q]++
				}
				if q := inPoolOf[l]; q >= 0 {
					cnt[q]++
				}
			}
			if pi == 0 {
				for q, crossings := range cnt {
					if crossings == 1 {
						trunks[q] = true
					}
				}
			} else {
				for q := range trunks {
					if cnt[q] != 1 {
						delete(trunks, q)
					}
				}
			}
		}
		e.varyingOf[fi] = make([][]int, e.n)
		for m, p := range paths[fi] {
			for _, l := range p {
				if occ[l] == e.n {
					continue // static: on every candidate path
				}
				e.varyingOf[fi][m] = append(e.varyingOf[fi][m], int(l))
				isVarying[l] = true
			}
		}
		var static []int
		for _, l := range paths[fi][0] {
			if occ[l] == e.n {
				static = append(static, int(l))
			}
		}
		for _, p := range paths[fi] {
			for _, l := range p {
				occ[l] = 0
			}
		}
		trunkIDs := make([]int, 0, len(trunks))
		for q := range trunks {
			trunkIDs = append(trunkIDs, nReal+q)
		}
		sort.Ints(trunkIDs)
		e.staticOf[fi] = append(static, trunkIDs...)
	}

	// Static membership: every flow sits on its static links and trunks
	// for every partial assignment; varying links start empty and are
	// filled per call with the fixed suffix.
	e.on = make([][]int, e.nLinks)
	e.baseActive = make([]int, e.nLinks)
	e.active = make([]int, e.nLinks)
	for fi := range fs {
		for _, id := range e.staticOf[fi] {
			e.on[id] = append(e.on[id], fi)
			e.baseActive[id]++
		}
	}
	for id, v := range isVarying {
		if v {
			e.varyIDs = append(e.varyIDs, id)
		}
	}
	e.frozen = make([]bool, len(fs))
	e.actRat = new(big.Rat)
	e.delta = new(big.Rat)
	e.tmp = new(big.Rat)
	e.level = new(big.Rat)
	e.xInt, e.yInt = new(big.Int), new(big.Int)
	e.aInt, e.bInt = new(big.Int), new(big.Int)
	return e, nil
}

// ForceBig pins Bound to the *big.Rat path when on is true, bypassing
// the Rat64 kernel. The results are identical; it exists for
// differential tests.
func (e *PartialEvaluator) ForceBig(on bool) { e.forceBig = on }

// Bound computes the max-min fair allocation of the trunk relaxation in
// which flows [fixedFrom, len(fs)) are routed per ma and flows
// [0, fixedFrom) are free. The result's sorted vector lexicographically
// dominates (≥) the sorted max-min fair vector of every completion of
// the partial assignment; with fixedFrom == 0 it equals the exact
// evaluation. Only ma[fixedFrom:] is read; the returned Allocation is
// freshly allocated.
func (e *PartialEvaluator) Bound(ma MiddleAssignment, fixedFrom int) (Allocation, error) {
	if len(ma) != e.nf {
		return nil, fmt.Errorf("partial: assignment has %d middles for %d flows", len(ma), e.nf)
	}
	if fixedFrom < 0 || fixedFrom > e.nf {
		return nil, fmt.Errorf("partial: fixedFrom %d out of range [0, %d]", fixedFrom, e.nf)
	}
	for fi := fixedFrom; fi < e.nf; fi++ {
		if m := ma[fi]; m < 1 || m > e.n {
			return nil, fmt.Errorf("partial: flow %d: middle %d out of range [1, %d]", fi, m, e.n)
		}
	}
	if e.fast && !e.forceBig {
		rates, ok, err := e.bound64(ma, fixedFrom)
		if err != nil {
			return nil, err
		}
		if ok {
			return rates, nil
		}
	}
	return e.boundBig(ma, fixedFrom)
}

// register resets the varying scratch: varying on-lists are rebuilt for
// the fixed suffix, active counts start from the static membership, and
// the frozen flags clear. Static on-lists (shared links and trunks) are
// shared across calls and never mutated.
func (e *PartialEvaluator) register(ma MiddleAssignment, fixedFrom int) {
	for _, id := range e.varyIDs {
		e.on[id] = e.on[id][:0]
	}
	copy(e.active, e.baseActive)
	for fi := range e.frozen {
		e.frozen[fi] = false
	}
	for fi := fixedFrom; fi < e.nf; fi++ {
		for _, id := range e.varyingOf[fi][ma[fi]-1] {
			e.on[id] = append(e.on[id], fi)
			e.active[id]++
		}
	}
}

// linksOf calls fn for every relaxed link flow fi occupies under the
// partial assignment.
func (e *PartialEvaluator) linksOf(fi, fixedFrom int, ma MiddleAssignment, fn func(id int)) {
	for _, id := range e.staticOf[fi] {
		fn(id)
	}
	if fi >= fixedFrom {
		for _, id := range e.varyingOf[fi][ma[fi]-1] {
			fn(id)
		}
	}
}

// bound64 is the small-word progressive filling of the relaxed system,
// mirroring Evaluator.eval64: same bottleneck scan, same tie-breaking,
// same exact arithmetic. The second result is false when an operation
// overflowed int64; the caller then redoes the state on boundBig.
func (e *PartialEvaluator) bound64(ma MiddleAssignment, fixedFrom int) (Allocation, bool, error) {
	e.register(ma, fixedFrom)
	for _, id := range e.finiteIDs {
		e.rem64[id] = e.caps64[id]
	}
	rates := make(rational.Vec, e.nf)
	if e.nf == 0 {
		return rates, true, nil
	}
	level := rational.Zero64()
	remainingFlows := e.nf
	for remainingFlows > 0 {
		minID := -1
		var minDelta rational.Rat64
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			d, ok := e.rem64[id].DivInt(int64(e.active[id]))
			if !ok {
				return nil, false, nil
			}
			if minID < 0 || d.Cmp(minDelta) < 0 {
				minID = id
				minDelta = d
			}
		}
		if minID < 0 {
			return nil, false, ErrUnboundedFlow
		}
		var ok bool
		if level, ok = level.Add(minDelta); !ok {
			return nil, false, nil
		}
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			used, ok := minDelta.MulInt(int64(e.active[id]))
			if !ok {
				return nil, false, nil
			}
			if e.rem64[id], ok = e.rem64[id].Sub(used); !ok {
				return nil, false, nil
			}
		}
		var levelRat *big.Rat
		progressed := false
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 || !e.rem64[id].IsZero() {
				continue
			}
			for _, fi := range e.on[id] {
				if e.frozen[fi] {
					continue
				}
				e.frozen[fi] = true
				if levelRat == nil {
					levelRat = level.Rat()
				}
				rates[fi] = levelRat
				remainingFlows--
				progressed = true
				e.linksOf(fi, fixedFrom, ma, func(l int) { e.active[l]-- })
			}
		}
		if !progressed {
			return nil, false, errors.New("partial: no progress (internal invariant violated)")
		}
	}
	return rates, true, nil
}

// boundBig is the exact progressive filling of the relaxed system on
// *big.Rat, the promotion target of bound64 and the oracle of the
// differential tests. It mirrors Evaluator.evalBig.
func (e *PartialEvaluator) boundBig(ma MiddleAssignment, fixedFrom int) (Allocation, error) {
	e.register(ma, fixedFrom)
	for _, id := range e.finiteIDs {
		e.remaining[id].Set(e.caps[id])
	}
	rates := make(rational.Vec, e.nf)
	if e.nf == 0 {
		return rates, nil
	}
	level := e.level.SetInt64(0)
	remainingFlows := e.nf
	for remainingFlows > 0 {
		minID := -1
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			if minID < 0 {
				minID = id
				continue
			}
			e.aInt.SetInt64(int64(e.active[minID]))
			e.bInt.SetInt64(int64(e.active[id]))
			e.xInt.Mul(e.remaining[id].Num(), e.remaining[minID].Denom())
			e.xInt.Mul(e.xInt, e.aInt)
			e.yInt.Mul(e.remaining[minID].Num(), e.remaining[id].Denom())
			e.yInt.Mul(e.yInt, e.bInt)
			if e.xInt.Cmp(e.yInt) < 0 {
				minID = id
			}
		}
		if minID < 0 {
			return nil, ErrUnboundedFlow
		}
		e.actRat.SetInt64(int64(e.active[minID]))
		e.delta.Quo(e.remaining[minID], e.actRat)

		level.Add(level, e.delta)
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 {
				continue
			}
			e.actRat.SetInt64(int64(e.active[id]))
			e.tmp.Mul(e.delta, e.actRat)
			e.remaining[id].Sub(e.remaining[id], e.tmp)
		}

		progressed := false
		for _, id := range e.finiteIDs {
			if e.active[id] == 0 || e.remaining[id].Sign() != 0 {
				continue
			}
			for _, fi := range e.on[id] {
				if e.frozen[fi] {
					continue
				}
				e.frozen[fi] = true
				rates[fi] = rational.Copy(level)
				remainingFlows--
				progressed = true
				e.linksOf(fi, fixedFrom, ma, func(l int) { e.active[l]-- })
			}
		}
		if !progressed {
			return nil, errors.New("partial: no progress (internal invariant violated)")
		}
	}
	return rates, nil
}
