package core

import (
	"math/rand"
	"strings"
	"testing"

	"closnet/internal/obs"
	"closnet/internal/topology"
)

// blockOf packs the assignments of ranks [lo, lo+k) of the full base-n
// space into a state-major block.
func blockOf(n, nf, lo, k int) []int {
	mas := make([]int, 0, k*nf)
	for s := 0; s < k; s++ {
		r := lo + s
		for fi := 0; fi < nf; fi++ {
			mas = append(mas, 1+r%n)
			r /= n
		}
	}
	return mas
}

// TestBlockEvaluatorMatchesEval: EvalBlock must return, state by state,
// exactly what the per-state Eval returns — same rationals — over the
// whole routing space of a small instance, for every block size
// including ragged final blocks and k = 1.
func TestBlockEvaluatorMatchesEval(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c) // 4 flows: 16 assignments
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBlockEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	nf, n, total := len(fs), c.Size(), 16
	for _, k := range []int{1, 3, 5, 16} {
		for lo := 0; lo < total; lo += k {
			kk := k
			if lo+kk > total {
				kk = total - lo
			}
			mas := blockOf(n, nf, lo, kk)
			res, err := be.EvalBlock(mas, kk)
			if err != nil {
				t.Fatalf("k=%d lo=%d: %v", k, lo, err)
			}
			if res.Len() != kk {
				t.Fatalf("k=%d lo=%d: Len = %d", k, lo, res.Len())
			}
			for s := 0; s < kk; s++ {
				want, err := ev.Eval(mas[s*nf : (s+1)*nf])
				if err != nil {
					t.Fatal(err)
				}
				if res.Promoted(s) {
					t.Errorf("k=%d rank=%d: unit-capacity state promoted", k, lo+s)
				}
				if got := res.Alloc(s); !got.Equal(want) {
					t.Errorf("k=%d rank=%d: block %v, per-state %v", k, lo+s, got, want)
				}
			}
		}
	}
	if be.Promotions() != 0 {
		t.Errorf("unit-capacity instance promoted %d times", be.Promotions())
	}
}

// TestBlockEvaluatorForceBig: a pinned-big block matches the per-state
// path on every element and reports every state promoted.
func TestBlockEvaluatorForceBig(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c)
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBlockEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	be.ForceBig(true)
	nf, n := len(fs), c.Size()
	mas := blockOf(n, nf, 0, 16)
	res, err := be.EvalBlock(mas, 16)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if !res.Promoted(s) {
			t.Errorf("state %d: ForceBig block not promoted", s)
		}
		want, err := ev.Eval(mas[s*nf : (s+1)*nf])
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Alloc(s); !got.Equal(want) {
			t.Errorf("state %d: ForceBig block %v, per-state %v", s, got, want)
		}
	}
	if be.Promotions() != 0 {
		t.Errorf("ForceBig counted %d overflow promotions", be.Promotions())
	}
}

// TestBlockEvaluatorMixedPromotion forces a subset of a block through
// the big.Rat path mid-fill (the test hook fires after registration,
// with the active lane populated) and checks that promoted and fast
// states alike match the per-state path — a promotion must not poison
// the shared lanes for the states after it — and that a subsequent
// clean block on the same evaluator is still exact.
func TestBlockEvaluatorMixedPromotion(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c)
	ev, err := NewEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBlockEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	be.testOverflow = func(s int) bool { return s%3 == 1 }
	nf, n := len(fs), c.Size()
	mas := blockOf(n, nf, 0, 16)
	res, err := be.EvalBlock(mas, 16)
	if err != nil {
		t.Fatal(err)
	}
	promoted := 0
	for s := 0; s < 16; s++ {
		if res.Promoted(s) != (s%3 == 1) {
			t.Errorf("state %d: Promoted = %v", s, res.Promoted(s))
		}
		if res.Promoted(s) {
			promoted++
		}
		want, err := ev.Eval(mas[s*nf : (s+1)*nf])
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Alloc(s); !got.Equal(want) {
			t.Errorf("state %d (promoted=%v): block %v, per-state %v", s, res.Promoted(s), got, want)
		}
	}
	if be.Promotions() != promoted {
		t.Errorf("Promotions() = %d, want %d", be.Promotions(), promoted)
	}

	// The hook removed, the same evaluator must run fully fast again.
	be.testOverflow = nil
	res, err = be.EvalBlock(mas, 16)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if res.Promoted(s) {
			t.Errorf("clean follow-up block: state %d promoted", s)
		}
		want, err := ev.Eval(mas[s*nf : (s+1)*nf])
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Alloc(s); !got.Equal(want) {
			t.Errorf("clean follow-up block: state %d: %v != %v", s, got, want)
		}
	}
}

// TestBlockEvaluatorZeroAllocFastPath: after warm-up, the Rat64 block
// fast path allocates nothing — zero per block, hence zero per state —
// whether uninstrumented or carrying a live registry, and a mid-block
// promotion does not degrade the following clean blocks back into an
// allocating regime.
func TestBlockEvaluatorZeroAllocFastPath(t *testing.T) {
	c := topology.MustClos(4)
	fs := evaluatorCollection(c)
	nf, n := len(fs), c.Size()
	rng := rand.New(rand.NewSource(11))
	const k = 32
	mas := make([]int, k*nf)
	for i := range mas {
		mas[i] = 1 + rng.Intn(n)
	}
	build := func(instrument bool) *BlockEvaluator {
		be, err := NewBlockEvaluator(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		if instrument {
			be.Instrument(&obs.Obs{Reg: obs.NewRegistry()})
		}
		// Warm-up sizes the output lanes.
		if _, err := be.EvalBlock(mas, k); err != nil {
			t.Fatal(err)
		}
		return be
	}
	measure := func(be *BlockEvaluator) float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := be.EvalBlock(mas, k); err != nil {
				t.Fatal(err)
			}
		})
	}
	if got := measure(build(false)); got != 0 {
		t.Errorf("fast-path block allocates %.1f/op, want 0", got)
	}
	if got := measure(build(true)); got != 0 {
		t.Errorf("instrumented fast-path block allocates %.1f/op, want 0", got)
	}

	// A promoted block in between must not poison the steady state:
	// once the hook is removed, clean blocks are allocation-free again.
	be := build(false)
	be.testOverflow = func(s int) bool { return s == k/2 }
	if _, err := be.EvalBlock(mas, k); err != nil {
		t.Fatal(err)
	}
	be.testOverflow = nil
	if got := measure(be); got != 0 {
		t.Errorf("post-promotion fast-path block allocates %.1f/op, want 0", got)
	}
}

// TestBlockEvaluatorInstrumented: with a live registry the evaluator
// counts block fills and promotions and gauges the last block size.
func TestBlockEvaluatorInstrumented(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c)
	be, err := NewBlockEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	be.Instrument(&obs.Obs{Reg: reg})
	nf, n := len(fs), c.Size()
	be.testOverflow = func(s int) bool { return s == 0 }
	if _, err := be.EvalBlock(blockOf(n, nf, 0, 5), 5); err != nil {
		t.Fatal(err)
	}
	be.testOverflow = nil
	if _, err := be.EvalBlock(blockOf(n, nf, 5, 3), 3); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["core.block_fills"]; got != 2 {
		t.Errorf("core.block_fills = %d, want 2", got)
	}
	if got := snap.Counters["core.block_promotions"]; got != 1 {
		t.Errorf("core.block_promotions = %d, want 1", got)
	}
	if got := snap.Gauges["core.block_size"]; got != 3 {
		t.Errorf("core.block_size = %d, want 3", got)
	}
}

// TestBlockEvaluatorErrors: malformed blocks are rejected up front.
func TestBlockEvaluatorErrors(t *testing.T) {
	c := topology.MustClos(2)
	fs := evaluatorCollection(c)
	be, err := NewBlockEvaluator(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.EvalBlock([]int{1, 1, 1}, 1); err == nil || !strings.Contains(err.Error(), "assignment entries") {
		t.Errorf("short block: err = %v", err)
	}
	if _, err := be.EvalBlock([]int{1, 1, 1, 3}, 1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range middle: err = %v", err)
	}
	if _, err := be.EvalBlock(nil, -1); err == nil {
		t.Error("negative k accepted")
	}
}
