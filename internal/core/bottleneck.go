package core

import (
	"math/big"

	"closnet/internal/topology"
)

// BottleneckReport describes, for one flow, the links that satisfy the
// bottleneck property of §2.2 under a given allocation: saturated links
// on the flow's path where the flow's rate is maximal.
type BottleneckReport struct {
	Flow  int
	Links []topology.LinkID
}

// Bottlenecks returns, for every flow, its bottleneck links under
// allocation a (possibly none if a is not max-min fair; by Lemma 2.2, a
// is max-min fair exactly when every report is non-empty). It is the
// analysis counterpart of IsMaxMinFair: instead of a yes/no answer it
// exposes *where* each flow is constrained, which the examples and the
// clostopo tool use to explain allocations.
func Bottlenecks(net *topology.Network, fs Collection, r Routing, a Allocation) ([]BottleneckReport, error) {
	if err := IsFeasible(net, fs, r, a); err != nil {
		return nil, err
	}
	loads := LinkLoads(net, r, a)
	on := FlowsOnLinks(net, r)

	maxOn := make([]*big.Rat, net.NumLinks())
	for l := range on {
		for _, fi := range on[l] {
			if maxOn[l] == nil || a[fi].Cmp(maxOn[l]) > 0 {
				maxOn[l] = a[fi]
			}
		}
	}

	reports := make([]BottleneckReport, len(fs))
	for fi, p := range r {
		reports[fi].Flow = fi
		for _, l := range p {
			link := net.Link(l)
			if link.Unbounded {
				continue
			}
			if loads[l].Cmp(link.Capacity) == 0 && a[fi].Cmp(maxOn[l]) == 0 {
				reports[fi].Links = append(reports[fi].Links, l)
			}
		}
	}
	return reports, nil
}

// SaturatedLinks returns the IDs of all finite links whose load equals
// their capacity under allocation a.
func SaturatedLinks(net *topology.Network, r Routing, a Allocation) []topology.LinkID {
	loads := LinkLoads(net, r, a)
	var ids []topology.LinkID
	for _, l := range net.Links() {
		if l.Unbounded {
			continue
		}
		if loads[l.ID].Cmp(l.Capacity) == 0 {
			ids = append(ids, l.ID)
		}
	}
	return ids
}
