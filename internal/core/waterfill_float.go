package core

import (
	"errors"

	"closnet/internal/rational"
	"closnet/internal/topology"
)

// MaxMinFairFloat is the float64 fast path of MaxMinFair, used by the
// stochastic simulation (experiment S1) where thousands of allocations are
// computed and exactness is unnecessary. It implements the same
// progressive-filling algorithm; saturation is detected with an absolute
// tolerance.
//
// Exact code paths (all theorem and figure experiments) must use
// MaxMinFair instead.
func MaxMinFairFloat(net *topology.Network, fs Collection, r Routing) ([]float64, error) {
	const eps = 1e-12

	nf := len(fs)
	rates := make([]float64, nf)
	if nf == 0 {
		return rates, nil
	}
	if len(r) != len(fs) {
		return nil, errors.New("waterfill: routing/flow length mismatch")
	}

	links := net.Links()
	on := FlowsOnLinks(net, r)

	remaining := make([]float64, len(links))
	active := make([]int, len(links))
	finite := make([]bool, len(links))
	for _, l := range links {
		if l.Unbounded {
			continue
		}
		finite[l.ID] = true
		remaining[l.ID] = rational.Float(l.Capacity)
		active[l.ID] = len(on[l.ID])
	}

	frozen := make([]bool, nf)
	level := 0.0
	remainingFlows := nf

	for remainingFlows > 0 {
		delta := -1.0
		for id := range links {
			if !finite[id] || active[id] == 0 {
				continue
			}
			d := remaining[id] / float64(active[id])
			if delta < 0 || d < delta {
				delta = d
			}
		}
		if delta < 0 {
			return nil, ErrUnboundedFlow
		}

		level += delta
		for id := range links {
			if !finite[id] || active[id] == 0 {
				continue
			}
			remaining[id] -= delta * float64(active[id])
		}

		progressed := false
		for id := range links {
			if !finite[id] || active[id] == 0 || remaining[id] > eps {
				continue
			}
			remaining[id] = 0
			for _, fi := range on[id] {
				if frozen[fi] {
					continue
				}
				frozen[fi] = true
				rates[fi] = level
				remainingFlows--
				progressed = true
				for _, l := range r[fi] {
					if finite[l] {
						active[l]--
					}
				}
			}
		}
		if !progressed {
			return nil, errors.New("waterfill: no progress (float tolerance too tight)")
		}
	}
	return rates, nil
}
