// Package core implements the paper's model (§2) and primary contribution:
// unsplittable flows over capacitated networks, routings, feasible
// allocations, the exact max-min fair (water-filling) allocator imposed by
// congestion control, the bottleneck-property characterization (Lemma 2.2),
// and the routing objectives of §2.3 (lex-max-min fairness and
// throughput-max-min fairness).
//
// All rates are exact rationals; see package rational.
package core

import (
	"fmt"

	"closnet/internal/topology"
)

// Flow is an unsplittable flow mapping to a (source, destination) server
// pair. Multiple flows may map to the same pair (the paper's multigraph of
// flows).
type Flow struct {
	Src, Dst topology.NodeID
}

// Collection is an ordered collection of flows. Order matters: routings
// and allocations are indexed by position.
type Collection []Flow

// NewCollection builds a collection from (src, dst) pairs. It panics if
// the argument count is odd; it is intended for test and example literals.
func NewCollection(pairs ...topology.NodeID) Collection {
	if len(pairs)%2 != 0 {
		panic("core.NewCollection: odd number of node IDs")
	}
	fs := make(Collection, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		fs = append(fs, Flow{Src: pairs[i], Dst: pairs[i+1]})
	}
	return fs
}

// Add returns the collection with one more flow appended, repeated count
// times. It follows the append contract: use the return value.
func (fs Collection) Add(src, dst topology.NodeID, count int) Collection {
	for i := 0; i < count; i++ {
		fs = append(fs, Flow{Src: src, Dst: dst})
	}
	return fs
}

// Validate checks that every flow goes from a source node to a destination
// node of net.
func (fs Collection) Validate(net *topology.Network) error {
	for i, f := range fs {
		if int(f.Src) < 0 || int(f.Src) >= net.NumNodes() {
			return fmt.Errorf("flow %d: source %d out of range", i, f.Src)
		}
		if int(f.Dst) < 0 || int(f.Dst) >= net.NumNodes() {
			return fmt.Errorf("flow %d: destination %d out of range", i, f.Dst)
		}
		if k := net.Node(f.Src).Kind; k != topology.KindSource {
			return fmt.Errorf("flow %d: node %s is a %s, not a source", i, net.Node(f.Src).Name, k)
		}
		if k := net.Node(f.Dst).Kind; k != topology.KindDestination {
			return fmt.Errorf("flow %d: node %s is a %s, not a destination", i, net.Node(f.Dst).Name, k)
		}
	}
	return nil
}

// PerSource returns, for each source node that originates at least one
// flow, the number of flows from it.
func (fs Collection) PerSource() map[topology.NodeID]int {
	m := make(map[topology.NodeID]int)
	for _, f := range fs {
		m[f.Src]++
	}
	return m
}

// PerDestination returns, for each destination node that terminates at
// least one flow, the number of flows into it.
func (fs Collection) PerDestination() map[topology.NodeID]int {
	m := make(map[topology.NodeID]int)
	for _, f := range fs {
		m[f.Dst]++
	}
	return m
}

// String formats the collection using node IDs; prefer Describe for named
// output.
func (fs Collection) String() string {
	return fmt.Sprintf("collection of %d flows", len(fs))
}

// Describe formats each flow as "name->name", one per line prefix "  ".
func (fs Collection) Describe(net *topology.Network) string {
	s := ""
	for i, f := range fs {
		s += fmt.Sprintf("  f%d: %s -> %s\n", i, net.Node(f.Src).Name, net.Node(f.Dst).Name)
	}
	return s
}
