package dynsim

import (
	"fmt"

	"closnet/internal/core"
)

// po2Router implements power-of-two-choices placement: sample two middle
// switches uniformly at random and take the less loaded one (for the
// arriving flow's two fabric links). It captures the classic
// load-balancing result that two random choices close most of the gap
// between random and least-loaded placement at a fraction of the state.
type po2Router struct{}

// NewPowerOfTwoRouter returns the power-of-two-choices policy.
func NewPowerOfTwoRouter() Router { return po2Router{} }

// Name implements Router.
func (po2Router) Name() string { return "power-of-two" }

// Place implements Router.
func (po2Router) Place(s *State, f core.Flow) (int, error) {
	c := s.Clos()
	i, ok := c.InputOf(f.Src)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow source is not a server")
	}
	o, ok := c.OutputOf(f.Dst)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow destination is not a server")
	}
	n := c.Size()
	m1 := s.RNG().Intn(n) + 1
	m2 := s.RNG().Intn(n) + 1
	load := func(m int) float64 {
		in, out := s.FabricLoad(i, m, o)
		if out > in {
			return out
		}
		return in
	}
	if load(m2) < load(m1) {
		return m2, nil
	}
	return m1, nil
}
