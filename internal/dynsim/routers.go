package dynsim

import (
	"fmt"

	"closnet/internal/core"
)

// ecmpRouter picks a middle uniformly at random.
type ecmpRouter struct{}

// NewECMPRouter returns the incremental ECMP policy.
func NewECMPRouter() Router { return ecmpRouter{} }

// Name implements Router.
func (ecmpRouter) Name() string { return "ecmp" }

// Place implements Router.
func (ecmpRouter) Place(s *State, _ core.Flow) (int, error) {
	return s.RNG().Intn(s.Clos().Size()) + 1, nil
}

// leastLoadedRouter picks the middle minimizing the flow's two fabric
// link loads at arrival time (the incremental analogue of the greedy
// algorithm of §6).
type leastLoadedRouter struct{}

// NewLeastLoadedRouter returns the incremental least-loaded-path policy.
func NewLeastLoadedRouter() Router { return leastLoadedRouter{} }

// Name implements Router.
func (leastLoadedRouter) Name() string { return "least-loaded" }

// Place implements Router.
func (leastLoadedRouter) Place(s *State, f core.Flow) (int, error) {
	c := s.Clos()
	i, ok := c.InputOf(f.Src)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow source is not a server")
	}
	o, ok := c.OutputOf(f.Dst)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow destination is not a server")
	}
	best, bestLoad := 1, 0.0
	for m := 1; m <= c.Size(); m++ {
		in, out := s.FabricLoad(i, m, o)
		load := in
		if out > load {
			load = out
		}
		if m == 1 || load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best, nil
}

// roundRobinRouter cycles through the middles regardless of load — the
// cheapest oblivious policy and a second baseline for the ablation.
type roundRobinRouter struct {
	next int
}

// NewRoundRobinRouter returns the round-robin policy.
func NewRoundRobinRouter() Router { return &roundRobinRouter{} }

// Name implements Router.
func (*roundRobinRouter) Name() string { return "round-robin" }

// Place implements Router.
func (r *roundRobinRouter) Place(s *State, _ core.Flow) (int, error) {
	m := r.next%s.Clos().Size() + 1
	r.next++
	return m, nil
}
