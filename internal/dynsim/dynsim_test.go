package dynsim

import (
	"math"
	"math/rand"
	"testing"

	"closnet/internal/topology"
)

func baseConfig() Config {
	return Config{
		Clos:        topology.MustClos(2),
		Router:      NewECMPRouter(),
		Discipline:  FairSharing,
		ArrivalRate: 2.0,
		MeanSize:    0.5,
		NumFlows:    200,
		Seed:        1,
	}
}

func TestRunCompletesAllFlows(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FCTs) != cfg.NumFlows || len(res.Slowdowns) != cfg.NumFlows {
		t.Fatalf("lengths: %d FCTs, %d slowdowns", len(res.FCTs), len(res.Slowdowns))
	}
	for i, fct := range res.FCTs {
		if fct <= 0 || math.IsInf(fct, 0) || math.IsNaN(fct) {
			t.Fatalf("flow %d: bad FCT %v", i, fct)
		}
		// A flow cannot beat transmitting alone at link capacity.
		if res.Slowdowns[i] < 1-1e-6 {
			t.Fatalf("flow %d: slowdown %v below 1", i, res.Slowdowns[i])
		}
	}
	if res.Duration <= 0 {
		t.Error("non-positive duration")
	}
	if res.TotalBytes <= 0 {
		t.Error("non-positive total bytes")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FCTs {
		if a.FCTs[i] != b.FCTs[i] {
			t.Fatalf("flow %d: FCT %v vs %v with same seed", i, a.FCTs[i], b.FCTs[i])
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	base := baseConfig()

	bad := base
	bad.Clos = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil Clos accepted")
	}
	bad = base
	bad.Router = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil Router accepted")
	}
	bad = base
	bad.Discipline = 0
	if _, err := Run(bad); err == nil {
		t.Error("unknown discipline accepted")
	}
	bad = base
	bad.ArrivalRate = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero arrival rate accepted")
	}
	bad = base
	bad.NumFlows = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero flows accepted")
	}
	bad = base
	bad.MeanSize = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative size accepted")
	}
}

func TestAllRouters(t *testing.T) {
	for _, router := range []Router{NewECMPRouter(), NewLeastLoadedRouter(), NewRoundRobinRouter()} {
		t.Run(router.Name(), func(t *testing.T) {
			cfg := baseConfig()
			cfg.Router = router
			cfg.NumFlows = 100
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.MeanFCT() <= 0 || res.MeanSlowdown() < 1-1e-6 {
				t.Errorf("suspicious metrics: meanFCT=%v meanSlowdown=%v", res.MeanFCT(), res.MeanSlowdown())
			}
		})
	}
}

func TestMatchingSchedulerDiscipline(t *testing.T) {
	cfg := baseConfig()
	cfg.Discipline = MatchingScheduler
	cfg.NumFlows = 150
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Slowdowns {
		if s < 1-1e-6 {
			t.Fatalf("flow %d: slowdown %v below 1 under the scheduler", i, s)
		}
	}
}

// TestLeastLoadedBeatsECMPUnderLoad: at high utilization, the
// congestion-aware router should deliver a lower mean FCT than random
// placement (the §6 stochastic story, now with dynamics).
func TestLeastLoadedBeatsECMPUnderLoad(t *testing.T) {
	run := func(r Router) float64 {
		cfg := baseConfig()
		cfg.Clos = topology.MustClos(3)
		cfg.Router = r
		cfg.ArrivalRate = 12
		cfg.MeanSize = 1.0
		cfg.NumFlows = 600
		cfg.Seed = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanFCT()
	}
	ecmp := run(NewECMPRouter())
	ll := run(NewLeastLoadedRouter())
	if ll >= ecmp {
		t.Errorf("least-loaded mean FCT %v not below ECMP %v", ll, ecmp)
	}
}

// TestSchedulerBeatsFairSharingUnderOverload mirrors the static E1
// finding dynamically: when many flows contend for few server pairs,
// serving matchings beats fair sharing on mean FCT.
func TestSchedulerBeatsFairSharingUnderOverload(t *testing.T) {
	run := func(d Discipline) float64 {
		cfg := baseConfig()
		cfg.Clos = topology.MustClos(1) // 2 servers per side: heavy contention
		cfg.Discipline = d
		cfg.ArrivalRate = 4
		cfg.MeanSize = 1
		cfg.NumFlows = 300
		cfg.Seed = 9
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanFCT()
	}
	fair := run(FairSharing)
	sched := run(MatchingScheduler)
	if sched >= fair {
		t.Errorf("scheduler mean FCT %v not below fair sharing %v", sched, fair)
	}
}

func TestResultPercentiles(t *testing.T) {
	// Interpolated quantiles: p99 of {1..5} sits between the 4th and 5th
	// order statistics at 4 + 0.96·1.
	r := &Result{Slowdowns: []float64{5, 1, 3, 2, 4}}
	if got := r.P99Slowdown(); math.Abs(got-4.96) > 1e-12 {
		t.Errorf("P99 = %v, want 4.96", got)
	}
	empty := &Result{}
	if empty.MeanFCT() != 0 || empty.P99Slowdown() != 0 || empty.MeanSlowdown() != 0 {
		t.Error("empty result metrics should be zero")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	xs := []float64{7, 3, 5, 1}
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"p=1.0 is the max", xs, 1.0, 7},
		{"p=0 is the min", xs, 0, 1},
		{"p=0.5 interpolates", xs, 0.5, 4}, // (3+5)/2
		{"n=1 any p", []float64{2.5}, 0.99, 2.5},
		{"n=1 p=1.0", []float64{2.5}, 1.0, 2.5},
		{"n=1 p=0", []float64{2.5}, 0, 2.5},
		{"empty", nil, 0.5, 0},
		{"p=2/3 of {1,2,3,4}", []float64{4, 3, 2, 1}, 2.0 / 3.0, 3},
	}
	for _, tc := range cases {
		if got := percentile(tc.xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", tc.name, tc.xs, tc.p, got, tc.want)
		}
	}
	// The input must not be mutated (percentile sorts a copy).
	if xs[0] != 7 || xs[3] != 1 {
		t.Errorf("percentile mutated its input: %v", xs)
	}
}

func TestDisciplineString(t *testing.T) {
	if FairSharing.String() == "" || MatchingScheduler.String() == "" {
		t.Error("unnamed discipline")
	}
	if Discipline(42).String() == "" {
		t.Error("unknown discipline unformatted")
	}
}

func TestParetoSizesRun(t *testing.T) {
	cfg := baseConfig()
	cfg.Sizes = SizeParetoBounded
	cfg.NumFlows = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Slowdowns {
		if s < 1-1e-6 {
			t.Fatalf("flow %d: slowdown %v below 1", i, s)
		}
	}
}

func TestSizeDistSamplers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range []SizeDist{SizeExponential, SizeParetoBounded, 0} {
		draw, err := d.sampler(2.0, rng)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		sum, n := 0.0, 20000
		for i := 0; i < n; i++ {
			s := draw()
			if s <= 0 {
				t.Fatalf("%v: non-positive size %v", d, s)
			}
			sum += s
		}
		mean := sum / float64(n)
		if mean < 1.5 || mean > 2.5 {
			t.Errorf("%v: empirical mean %v far from configured 2.0", d, mean)
		}
	}
	if _, err := SizeDist(9).sampler(1, rng); err == nil {
		t.Error("unknown distribution accepted")
	}
	if SizeExponential.String() == "" || SizeParetoBounded.String() == "" || SizeDist(9).String() == "" {
		t.Error("unnamed size distribution")
	}
}

func TestPowerOfTwoRouter(t *testing.T) {
	cfg := baseConfig()
	cfg.Router = NewPowerOfTwoRouter()
	cfg.NumFlows = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFCT() <= 0 {
		t.Error("no progress under power-of-two router")
	}
}

// TestPowerOfTwoBetweenECMPAndLeastLoaded: under load, two choices
// should not be worse than one (ECMP), up to simulation noise; assert a
// weak ordering with slack.
func TestPowerOfTwoBetweenECMPAndLeastLoaded(t *testing.T) {
	run := func(r Router) float64 {
		cfg := baseConfig()
		cfg.Clos = topology.MustClos(3)
		cfg.Router = r
		cfg.ArrivalRate = 12
		cfg.MeanSize = 1.0
		cfg.NumFlows = 600
		cfg.Seed = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanFCT()
	}
	ecmp := run(NewECMPRouter())
	po2 := run(NewPowerOfTwoRouter())
	if po2 > ecmp*1.05 {
		t.Errorf("power-of-two mean FCT %v clearly worse than ECMP %v", po2, ecmp)
	}
}
