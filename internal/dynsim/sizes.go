package dynsim

import (
	"fmt"
	"math"
	"math/rand"
)

// SizeDist selects the flow-size distribution of a simulation run.
type SizeDist int

// Flow-size distributions.
const (
	// SizeExponential draws sizes from an exponential distribution with
	// the configured mean — the memoryless baseline.
	SizeExponential SizeDist = iota + 1
	// SizeParetoBounded draws sizes from a bounded Pareto distribution
	// (shape 1.2, range [mean/10, mean*100], rescaled to the configured
	// mean) — the heavy-tailed shape reported for data-center flow sizes,
	// where a small fraction of elephant flows carries most bytes.
	SizeParetoBounded
)

// String names the distribution.
func (d SizeDist) String() string {
	switch d {
	case SizeExponential:
		return "exponential"
	case SizeParetoBounded:
		return "bounded-pareto"
	default:
		return fmt.Sprintf("SizeDist(%d)", int(d))
	}
}

// sampler returns a draw function with the requested mean.
func (d SizeDist) sampler(mean float64, rng *rand.Rand) (func() float64, error) {
	switch d {
	case 0, SizeExponential: // zero value keeps older configs working
		return func() float64 {
			s := rng.ExpFloat64() * mean
			if s < 1e-9 {
				s = 1e-9
			}
			return s
		}, nil
	case SizeParetoBounded:
		const alpha = 1.2
		lo, hi := mean/10, mean*100
		// Raw bounded-Pareto mean, used to rescale draws to the target.
		rawMean := boundedParetoMean(alpha, lo, hi)
		scale := mean / rawMean
		return func() float64 {
			// Inverse-CDF sampling of the bounded Pareto.
			u := rng.Float64()
			la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
			x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
			s := x * scale
			if s < 1e-9 {
				s = 1e-9
			}
			return s
		}, nil
	default:
		return nil, fmt.Errorf("dynsim: unknown size distribution %d", d)
	}
}

// boundedParetoMean returns the mean of the bounded Pareto(alpha, lo, hi)
// for alpha != 1.
func boundedParetoMean(alpha, lo, hi float64) float64 {
	la := math.Pow(lo, alpha)
	num := la / (1 - math.Pow(lo/hi, alpha)) * alpha / (alpha - 1)
	return num * (1/math.Pow(lo, alpha-1) - 1/math.Pow(hi, alpha-1))
}
