package dynsim

import (
	"sort"

	"closnet/internal/core"
	"closnet/internal/topology"
)

// scheduleMatching implements the MatchingScheduler discipline: a
// matching of the active flows is served at full rate while every other
// flow waits — admission control applied over time. The matching is
// built shortest-remaining-first (the SRPT flavor used by FCT-oriented
// datacenter transports): flows are scanned in increasing remaining size
// and admitted when their source and destination servers are still free.
// This yields a maximal matching biased toward short flows, which is
// what makes scheduling beat fair sharing on mean FCT.
//
// Admitted flows keep their assigned middle switches; server links are
// private by the matching property, and any fabric-link sharing between
// admitted flows is resolved by max-min fairness on their fixed paths,
// so the schedule is always feasible.
func scheduleMatching(c *topology.Clos, active []*activeFlow) error {
	order := make([]*activeFlow, len(active))
	copy(order, active)
	sort.SliceStable(order, func(a, b int) bool {
		return order[a].remaining < order[b].remaining
	})

	usedSrc := make(map[topology.NodeID]bool)
	usedDst := make(map[topology.NodeID]bool)
	var admitted []*activeFlow
	for _, af := range order {
		if usedSrc[af.flow.Src] || usedDst[af.flow.Dst] {
			af.rate = 0
			continue
		}
		usedSrc[af.flow.Src] = true
		usedDst[af.flow.Dst] = true
		admitted = append(admitted, af)
	}
	if len(admitted) == 0 {
		return nil
	}

	fs := make(core.Collection, len(admitted))
	ma := make(core.MiddleAssignment, len(admitted))
	for k, af := range admitted {
		fs[k] = af.flow
		ma[k] = af.middle
	}
	r, err := core.ClosRouting(c, fs, ma)
	if err != nil {
		return err
	}
	rates, err := core.MaxMinFairFloat(c.Network(), fs, r)
	if err != nil {
		return err
	}
	for k, af := range admitted {
		af.rate = rates[k]
	}
	return nil
}
