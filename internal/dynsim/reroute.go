package dynsim

import (
	"fmt"

	"closnet/internal/core"
)

// fastRerouteRouter is the randomized local fast-rerouting policy: both
// at placement and when a failure displaces a flow, it picks uniformly
// at random among the middles whose full path is still alive. The
// decision is purely local (it consults only the failure state of the
// flow's own two fabric links, never global load), O(n) per flow, and
// randomized so concurrent displacements spread instead of herding onto
// one surviving middle — the scheme of the randomized local fast
// rerouting line of work, adapted to the two-hop Clos path structure.
type fastRerouteRouter struct{}

// NewFastRerouteRouter returns the link-failure-aware randomized local
// fast-rerouting policy.
func NewFastRerouteRouter() Router { return fastRerouteRouter{} }

// Name implements Router.
func (fastRerouteRouter) Name() string { return "fast-reroute" }

// Place implements Router: a uniformly random middle among those with
// both path links alive, falling back to plain ECMP when every path is
// dead (the flow then starves on a failed path until a reroute frees
// it, which is the honest outcome of total partition).
func (fastRerouteRouter) Place(s *State, f core.Flow) (int, error) {
	i, ok := s.Clos().InputOf(f.Src)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow source is not a server")
	}
	o, ok := s.Clos().OutputOf(f.Dst)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow destination is not a server")
	}
	alive := make([]int, 0, s.Clos().Size())
	for m := 1; m <= s.Clos().Size(); m++ {
		if s.PathAlive(i, m, o) {
			alive = append(alive, m)
		}
	}
	if len(alive) == 0 {
		return s.RNG().Intn(s.Clos().Size()) + 1, nil
	}
	return alive[s.RNG().Intn(len(alive))], nil
}

// Reroute implements Rerouter: a uniformly random alive middle other
// than the failed one, keeping the old middle when nothing survives.
func (fastRerouteRouter) Reroute(s *State, f core.Flow, old int) (int, error) {
	return defaultReroute(s, f, old)
}
