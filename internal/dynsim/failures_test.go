package dynsim

import (
	"testing"

	"closnet/internal/obs"
	"closnet/internal/topology"
)

func failureConfig() Config {
	cfg := baseConfig()
	cfg.Clos = topology.MustClos(3)
	cfg.Router = NewFastRerouteRouter()
	cfg.ArrivalRate = 8
	cfg.NumFlows = 300
	cfg.Seed = 21
	// Half the fabric links of middle 1 and one link of middle 2 die
	// early, while plenty of flows are in flight.
	cfg.Failures = []LinkFailure{
		{Time: 2.0, In: true, ToR: 1, Middle: 1},
		{Time: 2.0, In: false, ToR: 2, Middle: 1},
		{Time: 4.0, In: true, ToR: 3, Middle: 2},
	}
	return cfg
}

// TestRouterDeterminism: same seed + config ⇒ identical Result for every
// router, including under link failures and reroute deltas.
func TestRouterDeterminism(t *testing.T) {
	for _, router := range []Router{NewECMPRouter(), NewPowerOfTwoRouter(), NewFastRerouteRouter()} {
		t.Run(router.Name(), func(t *testing.T) {
			run := func() *Result {
				cfg := failureConfig()
				cfg.Router = router
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.Duration != b.Duration {
				t.Fatalf("Duration %v vs %v with same seed", a.Duration, b.Duration)
			}
			if a.Reroutes != b.Reroutes || a.LinkFailures != b.LinkFailures {
				t.Fatalf("Reroutes/LinkFailures %d/%d vs %d/%d with same seed",
					a.Reroutes, a.LinkFailures, b.Reroutes, b.LinkFailures)
			}
			for i := range a.FCTs {
				if a.FCTs[i] != b.FCTs[i] || a.Slowdowns[i] != b.Slowdowns[i] {
					t.Fatalf("flow %d: FCT %v vs %v, slowdown %v vs %v with same seed",
						i, a.FCTs[i], b.FCTs[i], a.Slowdowns[i], b.Slowdowns[i])
				}
			}
		})
	}
}

// TestLinkFailuresDisplaceFlows: failures fire, displace active flows
// onto surviving middles, and the run still completes every flow with
// sane metrics and matching obs counters.
func TestLinkFailuresDisplaceFlows(t *testing.T) {
	cfg := failureConfig()
	o := &obs.Obs{Reg: obs.NewRegistry()}
	cfg.Obs = o
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkFailures != 3 {
		t.Fatalf("LinkFailures = %d, want 3", res.LinkFailures)
	}
	if res.Reroutes == 0 {
		t.Fatal("no flows were displaced by three mid-run link failures")
	}
	for i, s := range res.Slowdowns {
		if s < 1-1e-6 {
			t.Fatalf("flow %d: slowdown %v below 1 after reroutes", i, s)
		}
	}
	snap := o.Reg.Snapshot()
	if got := snap.Counters["dynsim.link_failures"]; got != 3 {
		t.Fatalf("dynsim.link_failures = %d, want 3", got)
	}
	if got := snap.Counters["dynsim.reroutes"]; got != int64(res.Reroutes) {
		t.Fatalf("dynsim.reroutes = %d, Result says %d", got, res.Reroutes)
	}
	// The dynsim deltas flow through the incremental evaluator.
	if got := snap.Counters["core.delta_fills"]; got <= 0 {
		t.Fatal("no incremental delta fills recorded under FairSharing")
	}
	if got := snap.Counters["core.delta_levels_skipped"]; got <= 0 {
		t.Fatal("incremental evaluator never reused a recorded round")
	}
}

// TestFailureValidation rejects out-of-range failure specs.
func TestFailureValidation(t *testing.T) {
	for _, bad := range []LinkFailure{
		{Time: -1, In: true, ToR: 1, Middle: 1},
		{Time: 1, In: true, ToR: 0, Middle: 1},
		{Time: 1, In: true, ToR: 99, Middle: 1},
		{Time: 1, In: false, ToR: 1, Middle: 0},
		{Time: 1, In: false, ToR: 1, Middle: 99},
	} {
		cfg := baseConfig()
		cfg.Failures = []LinkFailure{bad}
		if _, err := Run(cfg); err == nil {
			t.Errorf("failure %+v accepted", bad)
		}
	}
}

// TestFastRerouteAvoidsDeadPaths: when every middle but one is dead for
// a ToR pair, the fast-reroute router must place the pair's flows on the
// survivor.
func TestFastRerouteAvoidsDeadPaths(t *testing.T) {
	cfg := baseConfig()
	cfg.Clos = topology.MustClos(3)
	cfg.Router = NewFastRerouteRouter()
	cfg.NumFlows = 120
	cfg.Seed = 4
	// Kill middles 1 and 2 entirely on the input side before any
	// arrival: every placement must land on middle 3.
	var fails []LinkFailure
	for tor := 1; tor <= cfg.Clos.NumToRs(); tor++ {
		fails = append(fails,
			LinkFailure{Time: 0, In: true, ToR: tor, Middle: 1},
			LinkFailure{Time: 0, In: true, ToR: tor, Middle: 2})
	}
	cfg.Failures = fails
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkFailures != len(fails) {
		t.Fatalf("LinkFailures = %d, want %d", res.LinkFailures, len(fails))
	}
	// With only one middle alive, every flow contends there; the run
	// still finishes and nothing starves forever.
	for i, fct := range res.FCTs {
		if fct <= 0 {
			t.Fatalf("flow %d: FCT %v with a single surviving middle", i, fct)
		}
	}
}
