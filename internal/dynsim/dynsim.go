// Package dynsim is a flow-level discrete-event simulator for Clos
// networks: flows arrive over time (Poisson), are routed at arrival by an
// incremental routing policy, receive service according to a service
// discipline — max-min fair sharing (congestion control, the paper's
// model) or a maximum-matching scheduler (the §7 R1 alternative that
// emulates admission control over time) — and depart when their size has
// been transferred.
//
// The simulator measures flow completion times (FCT) and slowdowns
// (FCT divided by the flow's ideal transfer time at link capacity),
// connecting the paper's static impossibility results to the
// flow-completion-time framing its conclusions discuss.
//
// Rates are reported as float64, but under FairSharing they are read
// off a core.IncrementalEvaluator: every arrival, departure and
// failure-driven reroute is a single-flow delta against the exact
// max-min state instead of a from-scratch water-fill, so event cost
// scales with how much of the bottleneck structure the delta actually
// disturbs.
package dynsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"closnet/internal/core"
	"closnet/internal/obs"
	"closnet/internal/topology"
)

// Router chooses a middle switch for a newly arrived flow given the
// current fabric load (total rate per fabric link).
type Router interface {
	// Name identifies the router in result tables.
	Name() string
	// Place returns the 1-based middle-switch index for the flow.
	Place(s *State, f core.Flow) (int, error)
}

// Rerouter is an optional Router extension: when a link failure
// displaces an active flow, a router implementing Rerouter chooses the
// replacement middle. Routers without it get the default policy — a
// uniformly random middle whose path is still alive for the flow,
// keeping the old one only when no alternative survives.
type Rerouter interface {
	// Reroute returns the 1-based middle to move a displaced flow to.
	// old is the middle whose path just lost a link.
	Reroute(s *State, f core.Flow, old int) (int, error)
}

// LinkFailure schedules the permanent failure of one fabric link at a
// simulated time: I_ToR→M_Middle when In is true, M_Middle→O_ToR
// otherwise. Failures are routing events, not capacity events: the
// allocator's capacities are fixed at build time, so the simulator
// models the local fast-rerouting reaction (flows leave the failed
// link immediately; nothing is ever placed across it again) rather
// than a capacity drop — the model of the randomized local fast
// rerouting line of work.
type LinkFailure struct {
	Time   float64
	In     bool
	ToR    int
	Middle int
}

// Discipline decides the instantaneous service rates of the active
// flows.
type Discipline int

// Service disciplines.
const (
	// FairSharing gives every active flow its max-min fair rate for the
	// current routing — the paper's congestion-control model.
	FairSharing Discipline = iota + 1
	// MatchingScheduler serves a shortest-remaining-first matching of
	// the active flows at rate 1 and delays the rest — admission control
	// applied over time (§7 R1), with the SRPT flavor of the
	// FCT-oriented transports ([5, 8] in the paper's references).
	MatchingScheduler
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FairSharing:
		return "fair-sharing"
	case MatchingScheduler:
		return "matching-scheduler"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	Clos *topology.Clos
	// Router places each arriving flow; required.
	Router Router
	// Discipline sets the service model; required.
	Discipline Discipline
	// ArrivalRate is the Poisson arrival rate (flows per unit time).
	ArrivalRate float64
	// MeanSize is the mean flow size (in capacity·time units).
	MeanSize float64
	// Sizes selects the flow-size distribution; the zero value means
	// SizeExponential.
	Sizes SizeDist
	// NumFlows is the number of arrivals to simulate.
	NumFlows int
	// Seed drives all randomness (arrivals, sizes, endpoints, router
	// tie-breaking).
	Seed int64
	// Failures schedules fabric-link failures; each displaces the active
	// flows routed across the failed link (see LinkFailure). May be
	// unsorted; Run processes them in time order.
	Failures []LinkFailure
	// Obs attaches the runtime observability layer: arrival/departure/
	// recompute counters, per-round allocation counts, and a journal
	// event per flow-starvation transition (an active flow's rate
	// dropping to zero). nil disables instrumentation.
	Obs *obs.Obs
}

// Result aggregates one run.
type Result struct {
	// FCTs are the completion times minus arrival times, one per flow,
	// in arrival order.
	FCTs []float64
	// Slowdowns are FCT / (size / capacity), ≥ 1 up to numerical noise.
	Slowdowns []float64
	// Duration is the simulated time until the last departure.
	Duration float64
	// TotalBytes is the sum of all flow sizes.
	TotalBytes float64
	// LinkFailures is the number of failure events processed before the
	// last departure (late-scheduled failures never fire).
	LinkFailures int
	// Reroutes counts flows displaced by link failures.
	Reroutes int
}

// MeanFCT returns the mean flow completion time.
func (r *Result) MeanFCT() float64 { return mean(r.FCTs) }

// MeanSlowdown returns the mean slowdown.
func (r *Result) MeanSlowdown() float64 { return mean(r.Slowdowns) }

// P99Slowdown returns the 99th-percentile slowdown.
func (r *Result) P99Slowdown() float64 { return percentile(r.Slowdowns, 0.99) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// percentile returns the p-quantile (p in [0, 1]) of xs under linear
// interpolation between closest ranks, so p=1.0 is the maximum, p=0 the
// minimum, and a single sample is every percentile of itself.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	if lo >= n-1 {
		return sorted[n-1]
	}
	return sorted[lo] + (pos-float64(lo))*(sorted[lo+1]-sorted[lo])
}

// State is the live simulator state exposed to routers.
type State struct {
	clos *topology.Clos
	// inLoad[i-1][m-1] and outLoad[o-1][m-1] are the current service
	// rates crossing I_i->M_m and M_m->O_o.
	inLoad  [][]float64
	outLoad [][]float64
	// failedIn[i-1][m-1] and failedOut[o-1][m-1] mark failed fabric
	// links (see LinkFailure).
	failedIn  [][]bool
	failedOut [][]bool
	rng       *rand.Rand
}

// Clos returns the topology under simulation.
func (s *State) Clos() *topology.Clos { return s.clos }

// FabricLoad returns the current load of I_i→M_m and M_m→O_o.
func (s *State) FabricLoad(i, m, o int) (in, out float64) {
	return s.inLoad[i-1][m-1], s.outLoad[o-1][m-1]
}

// LinkAlive reports whether fabric link I_tor→M_middle (in=true) or
// M_middle→O_tor (in=false) has not failed.
func (s *State) LinkAlive(in bool, tor, middle int) bool {
	if in {
		return !s.failedIn[tor-1][middle-1]
	}
	return !s.failedOut[tor-1][middle-1]
}

// PathAlive reports whether the path I_i→M_m→O_o avoids every failed
// link.
func (s *State) PathAlive(i, m, o int) bool {
	return !s.failedIn[i-1][m-1] && !s.failedOut[o-1][m-1]
}

// RNG returns the run's random source (for randomized routers).
func (s *State) RNG() *rand.Rand { return s.rng }

// activeFlow is one in-flight flow.
type activeFlow struct {
	id        int
	flow      core.Flow
	middle    int
	remaining float64
	arrived   float64
	rate      float64
	starved   bool // rate was zero at the last recompute (starvation edge tracking)
	// handle addresses the flow inside the incremental evaluator
	// (FairSharing only).
	handle core.FlowID
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Clos == nil || cfg.Router == nil {
		return nil, fmt.Errorf("dynsim: Clos and Router are required")
	}
	if cfg.Discipline != FairSharing && cfg.Discipline != MatchingScheduler {
		return nil, fmt.Errorf("dynsim: unknown discipline %d", cfg.Discipline)
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanSize <= 0 || cfg.NumFlows <= 0 {
		return nil, fmt.Errorf("dynsim: ArrivalRate, MeanSize and NumFlows must be positive")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	c := cfg.Clos
	st := &State{
		clos:      c,
		inLoad:    zeroGrid(c.NumToRs(), c.Size()),
		outLoad:   zeroGrid(c.NumToRs(), c.Size()),
		failedIn:  boolGrid(c.NumToRs(), c.Size()),
		failedOut: boolGrid(c.NumToRs(), c.Size()),
		rng:       rng,
	}
	fails := append([]LinkFailure(nil), cfg.Failures...)
	for i, lf := range fails {
		if lf.Time < 0 || lf.ToR < 1 || lf.ToR > c.NumToRs() || lf.Middle < 1 || lf.Middle > c.Size() {
			return nil, fmt.Errorf("dynsim: failure %d: invalid (t=%v, tor=%d, middle=%d)", i, lf.Time, lf.ToR, lf.Middle)
		}
	}
	sort.SliceStable(fails, func(a, b int) bool { return fails[a].Time < fails[b].Time })

	// Under FairSharing every event is a single-flow delta against the
	// incremental exact max-min evaluator; the matching scheduler keeps
	// its own combinatorial allocation.
	var ie *core.IncrementalEvaluator
	if cfg.Discipline == FairSharing {
		ie = core.NewIncrementalEvaluator(c)
		ie.Instrument(cfg.Obs)
	}

	res := &Result{
		FCTs:      make([]float64, cfg.NumFlows),
		Slowdowns: make([]float64, cfg.NumFlows),
	}

	// Pre-draw arrivals and sizes for reproducibility independent of the
	// routing policy's RNG consumption.
	drawSize, err := cfg.Sizes.sampler(cfg.MeanSize, rng)
	if err != nil {
		return nil, err
	}
	arrivals := make([]float64, cfg.NumFlows)
	sizes := make([]float64, cfg.NumFlows)
	flows := make([]core.Flow, cfg.NumFlows)
	now := 0.0
	tors, spt := c.NumToRs(), c.ServersPerToR()
	for i := range arrivals {
		now += rng.ExpFloat64() / cfg.ArrivalRate
		arrivals[i] = now
		sizes[i] = drawSize()
		res.TotalBytes += sizes[i]
		flows[i] = core.Flow{
			Src: c.Source(rng.Intn(tors)+1, rng.Intn(spt)+1),
			Dst: c.Dest(rng.Intn(tors)+1, rng.Intn(spt)+1),
		}
	}

	var active []*activeFlow
	clock := 0.0
	nextArrival := 0
	nextFail := 0

	// Observability handles; all nil-safe when cfg.Obs is nil.
	reg := cfg.Obs.Registry()
	jour := cfg.Obs.Journal()
	cArrivals := reg.Counter("dynsim.arrivals")
	cDepartures := reg.Counter("dynsim.departures")
	cRecomputes := reg.Counter("dynsim.rate_recomputes")
	cAllocations := reg.Counter("dynsim.round_allocations")
	cStarvations := reg.Counter("dynsim.starvation_events")
	cFailures := reg.Counter("dynsim.link_failures")
	cReroutes := reg.Counter("dynsim.reroutes")

	for nextArrival < cfg.NumFlows || len(active) > 0 {
		// Next event: link failure, arrival, or earliest completion at
		// current rates.
		tArr := math.Inf(1)
		if nextArrival < cfg.NumFlows {
			tArr = arrivals[nextArrival]
		}
		tFail := math.Inf(1)
		if nextFail < len(fails) {
			tFail = fails[nextFail].Time
		}
		tDone := math.Inf(1)
		var done *activeFlow
		for _, af := range active {
			if af.rate <= 0 {
				continue
			}
			t := clock + af.remaining/af.rate
			if t < tDone {
				tDone = t
				done = af
			}
		}
		if tArr == math.Inf(1) && tDone == math.Inf(1) && tFail == math.Inf(1) {
			return nil, fmt.Errorf("dynsim: deadlock with %d active flows at t=%v", len(active), clock)
		}

		// Advance the clock, draining remaining sizes at current rates.
		tNext := math.Min(tFail, math.Min(tArr, tDone))
		dt := tNext - clock
		for _, af := range active {
			af.remaining -= af.rate * dt
		}
		clock = tNext

		switch {
		case tFail <= tNext:
			// Link failure: mark the link dead and displace the active
			// flows crossing it onto surviving paths (a reroute delta
			// each under FairSharing).
			lf := fails[nextFail]
			nextFail++
			if lf.In {
				st.failedIn[lf.ToR-1][lf.Middle-1] = true
			} else {
				st.failedOut[lf.ToR-1][lf.Middle-1] = true
			}
			res.LinkFailures++
			cFailures.Inc()
			jour.Emit("dynsim.link_failed", obs.F{"t": clock, "in": lf.In, "tor": lf.ToR, "middle": lf.Middle})
			for _, af := range active {
				if af.middle != lf.Middle {
					continue
				}
				var hit bool
				if lf.In {
					i, _ := c.InputOf(af.flow.Src)
					hit = i == lf.ToR
				} else {
					o, _ := c.OutputOf(af.flow.Dst)
					hit = o == lf.ToR
				}
				if !hit {
					continue
				}
				m, err := chooseReroute(cfg.Router, st, af.flow, af.middle)
				if err != nil {
					return nil, fmt.Errorf("dynsim: reroute: %w", err)
				}
				if m == af.middle {
					continue // no surviving alternative: the flow stays put
				}
				af.middle = m
				if ie != nil {
					if err := ie.Reroute(af.handle, m); err != nil {
						return nil, fmt.Errorf("dynsim: reroute delta: %w", err)
					}
				}
				res.Reroutes++
				cReroutes.Inc()
			}
		case tDone <= tArr && done != nil:
			// Departure.
			res.FCTs[done.id] = clock - done.arrived
			res.Slowdowns[done.id] = res.FCTs[done.id] / (sizes[done.id] / 1.0)
			active = removeFlow(active, done)
			if ie != nil {
				if err := ie.Depart(done.handle); err != nil {
					return nil, fmt.Errorf("dynsim: departure delta: %w", err)
				}
			}
			cDepartures.Inc()
		default:
			// Arrival: route it and admit it. A router may be
			// failure-oblivious (ECMP), so a placement onto a dead path is
			// immediately redirected by the reroute policy.
			f := flows[nextArrival]
			m, err := cfg.Router.Place(st, f)
			if err != nil {
				return nil, fmt.Errorf("dynsim: router: %w", err)
			}
			if m < 1 || m > c.Size() {
				return nil, fmt.Errorf("dynsim: router chose middle %d outside [1,%d]", m, c.Size())
			}
			if i, ok := c.InputOf(f.Src); ok {
				if o, ok := c.OutputOf(f.Dst); ok && !st.PathAlive(i, m, o) {
					if m2, err := chooseReroute(cfg.Router, st, f, m); err == nil && m2 != m {
						m = m2
						res.Reroutes++
						cReroutes.Inc()
					}
				}
			}
			af := &activeFlow{
				id:        nextArrival,
				flow:      f,
				middle:    m,
				remaining: sizes[nextArrival],
				arrived:   clock,
			}
			if ie != nil {
				h, err := ie.Arrive(f, m)
				if err != nil {
					return nil, fmt.Errorf("dynsim: arrival delta: %w", err)
				}
				af.handle = h
			}
			active = append(active, af)
			nextArrival++
			cArrivals.Inc()
		}

		if err := recomputeRates(c, st, active, cfg.Discipline, ie); err != nil {
			return nil, err
		}
		cRecomputes.Inc()
		cAllocations.Add(int64(len(active)))
		// Starvation edges: an active flow whose recomputed rate is zero
		// is making no progress — the dynamic analogue of the Theorem 4.3
		// starvation the static searches measure. Journal each transition
		// into starvation once, not every recompute it persists through.
		for _, af := range active {
			if af.rate <= 0 {
				if !af.starved {
					af.starved = true
					cStarvations.Inc()
					jour.Emit("dynsim.flow_starved", obs.F{"flow": af.id, "middle": af.middle, "t": clock})
				}
			} else {
				af.starved = false
			}
		}
	}
	res.Duration = clock
	return res, nil
}

// recomputeRates sets the service rate of every active flow according to
// the discipline and refreshes the fabric load grids. Under FairSharing
// the rates are read off the incremental evaluator, which the event
// loop has already updated with this event's delta.
func recomputeRates(c *topology.Clos, st *State, active []*activeFlow, d Discipline, ie *core.IncrementalEvaluator) error {
	clearGrid(st.inLoad)
	clearGrid(st.outLoad)
	if len(active) == 0 {
		return nil
	}
	switch d {
	case FairSharing:
		for _, af := range active {
			r, err := ie.Rate(af.handle)
			if err != nil {
				return fmt.Errorf("dynsim: %w", err)
			}
			af.rate, _ = r.Float64()
		}
	case MatchingScheduler:
		if err := scheduleMatching(c, active); err != nil {
			return err
		}
	}
	for _, af := range active {
		i, _ := c.InputOf(af.flow.Src)
		o, _ := c.OutputOf(af.flow.Dst)
		st.inLoad[i-1][af.middle-1] += af.rate
		st.outLoad[o-1][af.middle-1] += af.rate
	}
	return nil
}

// chooseReroute picks the replacement middle for a flow displaced from
// old: the router's own Rerouter policy when it has one, otherwise a
// uniformly random middle whose path is still alive (old when none is).
func chooseReroute(r Router, s *State, f core.Flow, old int) (int, error) {
	if rr, ok := r.(Rerouter); ok {
		m, err := rr.Reroute(s, f, old)
		if err != nil {
			return 0, err
		}
		if m < 1 || m > s.clos.Size() {
			return 0, fmt.Errorf("dynsim: rerouter chose middle %d outside [1,%d]", m, s.clos.Size())
		}
		return m, nil
	}
	return defaultReroute(s, f, old)
}

func defaultReroute(s *State, f core.Flow, old int) (int, error) {
	i, ok := s.clos.InputOf(f.Src)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow source is not a server")
	}
	o, ok := s.clos.OutputOf(f.Dst)
	if !ok {
		return 0, fmt.Errorf("dynsim: flow destination is not a server")
	}
	alive := make([]int, 0, s.clos.Size())
	for m := 1; m <= s.clos.Size(); m++ {
		if m != old && s.PathAlive(i, m, o) {
			alive = append(alive, m)
		}
	}
	if len(alive) == 0 {
		return old, nil
	}
	return alive[s.rng.Intn(len(alive))], nil
}

func zeroGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

func boolGrid(rows, cols int) [][]bool {
	g := make([][]bool, rows)
	for i := range g {
		g[i] = make([]bool, cols)
	}
	return g
}

func clearGrid(g [][]float64) {
	for i := range g {
		for j := range g[i] {
			g[i][j] = 0
		}
	}
}

func removeFlow(active []*activeFlow, target *activeFlow) []*activeFlow {
	for i, af := range active {
		if af == target {
			active[i] = active[len(active)-1]
			return active[:len(active)-1]
		}
	}
	return active
}
