// Package dynsim is a flow-level discrete-event simulator for Clos
// networks: flows arrive over time (Poisson), are routed at arrival by an
// incremental routing policy, receive service according to a service
// discipline — max-min fair sharing (congestion control, the paper's
// model) or a maximum-matching scheduler (the §7 R1 alternative that
// emulates admission control over time) — and depart when their size has
// been transferred.
//
// The simulator measures flow completion times (FCT) and slowdowns
// (FCT divided by the flow's ideal transfer time at link capacity),
// connecting the paper's static impossibility results to the
// flow-completion-time framing its conclusions discuss.
//
// Rates are float64: the simulator recomputes the allocation at every
// arrival and departure, and exactness adds nothing to distributional
// metrics.
package dynsim

import (
	"fmt"
	"math"
	"math/rand"

	"closnet/internal/core"
	"closnet/internal/obs"
	"closnet/internal/topology"
)

// Router chooses a middle switch for a newly arrived flow given the
// current fabric load (total rate per fabric link).
type Router interface {
	// Name identifies the router in result tables.
	Name() string
	// Place returns the 1-based middle-switch index for the flow.
	Place(s *State, f core.Flow) (int, error)
}

// Discipline decides the instantaneous service rates of the active
// flows.
type Discipline int

// Service disciplines.
const (
	// FairSharing gives every active flow its max-min fair rate for the
	// current routing — the paper's congestion-control model.
	FairSharing Discipline = iota + 1
	// MatchingScheduler serves a shortest-remaining-first matching of
	// the active flows at rate 1 and delays the rest — admission control
	// applied over time (§7 R1), with the SRPT flavor of the
	// FCT-oriented transports ([5, 8] in the paper's references).
	MatchingScheduler
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FairSharing:
		return "fair-sharing"
	case MatchingScheduler:
		return "matching-scheduler"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	Clos *topology.Clos
	// Router places each arriving flow; required.
	Router Router
	// Discipline sets the service model; required.
	Discipline Discipline
	// ArrivalRate is the Poisson arrival rate (flows per unit time).
	ArrivalRate float64
	// MeanSize is the mean flow size (in capacity·time units).
	MeanSize float64
	// Sizes selects the flow-size distribution; the zero value means
	// SizeExponential.
	Sizes SizeDist
	// NumFlows is the number of arrivals to simulate.
	NumFlows int
	// Seed drives all randomness (arrivals, sizes, endpoints, router
	// tie-breaking).
	Seed int64
	// Obs attaches the runtime observability layer: arrival/departure/
	// recompute counters, per-round allocation counts, and a journal
	// event per flow-starvation transition (an active flow's rate
	// dropping to zero). nil disables instrumentation.
	Obs *obs.Obs
}

// Result aggregates one run.
type Result struct {
	// FCTs are the completion times minus arrival times, one per flow,
	// in arrival order.
	FCTs []float64
	// Slowdowns are FCT / (size / capacity), ≥ 1 up to numerical noise.
	Slowdowns []float64
	// Duration is the simulated time until the last departure.
	Duration float64
	// TotalBytes is the sum of all flow sizes.
	TotalBytes float64
}

// MeanFCT returns the mean flow completion time.
func (r *Result) MeanFCT() float64 { return mean(r.FCTs) }

// MeanSlowdown returns the mean slowdown.
func (r *Result) MeanSlowdown() float64 { return mean(r.Slowdowns) }

// P99Slowdown returns the 99th-percentile slowdown.
func (r *Result) P99Slowdown() float64 { return percentile(r.Slowdowns, 0.99) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	idx := int(math.Ceil(p * float64(len(sorted)-1)))
	return sorted[idx]
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// State is the live simulator state exposed to routers.
type State struct {
	clos *topology.Clos
	// inLoad[i-1][m-1] and outLoad[o-1][m-1] are the current service
	// rates crossing I_i->M_m and M_m->O_o.
	inLoad  [][]float64
	outLoad [][]float64
	rng     *rand.Rand
}

// Clos returns the topology under simulation.
func (s *State) Clos() *topology.Clos { return s.clos }

// FabricLoad returns the current load of I_i→M_m and M_m→O_o.
func (s *State) FabricLoad(i, m, o int) (in, out float64) {
	return s.inLoad[i-1][m-1], s.outLoad[o-1][m-1]
}

// RNG returns the run's random source (for randomized routers).
func (s *State) RNG() *rand.Rand { return s.rng }

// activeFlow is one in-flight flow.
type activeFlow struct {
	id        int
	flow      core.Flow
	middle    int
	remaining float64
	arrived   float64
	rate      float64
	starved   bool // rate was zero at the last recompute (starvation edge tracking)
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Clos == nil || cfg.Router == nil {
		return nil, fmt.Errorf("dynsim: Clos and Router are required")
	}
	if cfg.Discipline != FairSharing && cfg.Discipline != MatchingScheduler {
		return nil, fmt.Errorf("dynsim: unknown discipline %d", cfg.Discipline)
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanSize <= 0 || cfg.NumFlows <= 0 {
		return nil, fmt.Errorf("dynsim: ArrivalRate, MeanSize and NumFlows must be positive")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	c := cfg.Clos
	st := &State{
		clos:    c,
		inLoad:  zeroGrid(c.NumToRs(), c.Size()),
		outLoad: zeroGrid(c.NumToRs(), c.Size()),
		rng:     rng,
	}

	res := &Result{
		FCTs:      make([]float64, cfg.NumFlows),
		Slowdowns: make([]float64, cfg.NumFlows),
	}

	// Pre-draw arrivals and sizes for reproducibility independent of the
	// routing policy's RNG consumption.
	drawSize, err := cfg.Sizes.sampler(cfg.MeanSize, rng)
	if err != nil {
		return nil, err
	}
	arrivals := make([]float64, cfg.NumFlows)
	sizes := make([]float64, cfg.NumFlows)
	flows := make([]core.Flow, cfg.NumFlows)
	now := 0.0
	tors, spt := c.NumToRs(), c.ServersPerToR()
	for i := range arrivals {
		now += rng.ExpFloat64() / cfg.ArrivalRate
		arrivals[i] = now
		sizes[i] = drawSize()
		res.TotalBytes += sizes[i]
		flows[i] = core.Flow{
			Src: c.Source(rng.Intn(tors)+1, rng.Intn(spt)+1),
			Dst: c.Dest(rng.Intn(tors)+1, rng.Intn(spt)+1),
		}
	}

	var active []*activeFlow
	clock := 0.0
	nextArrival := 0

	// Observability handles; all nil-safe when cfg.Obs is nil.
	reg := cfg.Obs.Registry()
	jour := cfg.Obs.Journal()
	cArrivals := reg.Counter("dynsim.arrivals")
	cDepartures := reg.Counter("dynsim.departures")
	cRecomputes := reg.Counter("dynsim.rate_recomputes")
	cAllocations := reg.Counter("dynsim.round_allocations")
	cStarvations := reg.Counter("dynsim.starvation_events")

	for nextArrival < cfg.NumFlows || len(active) > 0 {
		// Next event: arrival or earliest completion at current rates.
		tArr := math.Inf(1)
		if nextArrival < cfg.NumFlows {
			tArr = arrivals[nextArrival]
		}
		tDone := math.Inf(1)
		var done *activeFlow
		for _, af := range active {
			if af.rate <= 0 {
				continue
			}
			t := clock + af.remaining/af.rate
			if t < tDone {
				tDone = t
				done = af
			}
		}
		if tArr == math.Inf(1) && tDone == math.Inf(1) {
			return nil, fmt.Errorf("dynsim: deadlock with %d active flows at t=%v", len(active), clock)
		}

		// Advance the clock, draining remaining sizes at current rates.
		tNext := math.Min(tArr, tDone)
		dt := tNext - clock
		for _, af := range active {
			af.remaining -= af.rate * dt
		}
		clock = tNext

		if tDone <= tArr && done != nil {
			// Departure.
			res.FCTs[done.id] = clock - done.arrived
			res.Slowdowns[done.id] = res.FCTs[done.id] / (sizes[done.id] / 1.0)
			active = removeFlow(active, done)
			cDepartures.Inc()
		} else {
			// Arrival: route it and admit it.
			f := flows[nextArrival]
			m, err := cfg.Router.Place(st, f)
			if err != nil {
				return nil, fmt.Errorf("dynsim: router: %w", err)
			}
			if m < 1 || m > c.Size() {
				return nil, fmt.Errorf("dynsim: router chose middle %d outside [1,%d]", m, c.Size())
			}
			active = append(active, &activeFlow{
				id:        nextArrival,
				flow:      f,
				middle:    m,
				remaining: sizes[nextArrival],
				arrived:   clock,
			})
			nextArrival++
			cArrivals.Inc()
		}

		if err := recomputeRates(c, st, active, cfg.Discipline); err != nil {
			return nil, err
		}
		cRecomputes.Inc()
		cAllocations.Add(int64(len(active)))
		// Starvation edges: an active flow whose recomputed rate is zero
		// is making no progress — the dynamic analogue of the Theorem 4.3
		// starvation the static searches measure. Journal each transition
		// into starvation once, not every recompute it persists through.
		for _, af := range active {
			if af.rate <= 0 {
				if !af.starved {
					af.starved = true
					cStarvations.Inc()
					jour.Emit("dynsim.flow_starved", obs.F{"flow": af.id, "middle": af.middle, "t": clock})
				}
			} else {
				af.starved = false
			}
		}
	}
	res.Duration = clock
	return res, nil
}

// recomputeRates sets the service rate of every active flow according to
// the discipline and refreshes the fabric load grids.
func recomputeRates(c *topology.Clos, st *State, active []*activeFlow, d Discipline) error {
	clearGrid(st.inLoad)
	clearGrid(st.outLoad)
	if len(active) == 0 {
		return nil
	}
	switch d {
	case FairSharing:
		fs := make(core.Collection, len(active))
		ma := make(core.MiddleAssignment, len(active))
		for k, af := range active {
			fs[k] = af.flow
			ma[k] = af.middle
		}
		r, err := core.ClosRouting(c, fs, ma)
		if err != nil {
			return err
		}
		rates, err := core.MaxMinFairFloat(c.Network(), fs, r)
		if err != nil {
			return err
		}
		for k, af := range active {
			af.rate = rates[k]
		}
	case MatchingScheduler:
		if err := scheduleMatching(c, active); err != nil {
			return err
		}
	}
	for _, af := range active {
		i, _ := c.InputOf(af.flow.Src)
		o, _ := c.OutputOf(af.flow.Dst)
		st.inLoad[i-1][af.middle-1] += af.rate
		st.outLoad[o-1][af.middle-1] += af.rate
	}
	return nil
}

func zeroGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

func clearGrid(g [][]float64) {
	for i := range g {
		for j := range g[i] {
			g[i][j] = 0
		}
	}
}

func removeFlow(active []*activeFlow, target *activeFlow) []*activeFlow {
	for i, af := range active {
		if af == target {
			active[i] = active[len(active)-1]
			return active[:len(active)-1]
		}
	}
	return active
}
