package experiments

import (
	"fmt"
	"math/rand"

	"closnet/internal/core"
	"closnet/internal/routing"
	"closnet/internal/stats"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// RunO1 measures how oversubscription breaks the macro-switch
// abstraction. The paper assumes full bisection bandwidth (as many
// middle switches as servers per ToR, §2.1); real deployments often
// oversubscribe the fabric (servers > middles). Sweeping servers per ToR
// against a fixed middle count quantifies the abstraction's fidelity on
// both sides of the full-bisection boundary: at ratio ≤ 1 the gaps are
// exactly the paper's unsplittability/fairness gaps, beyond it a
// structural capacity gap is added on top.
func RunO1(tors, middles int, serverCounts []int, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "O1",
		Title: "Oversubscription sweep: macro-switch fidelity vs servers/middles ratio (greedy routing, uniform workload)",
		Columns: []string{
			"servers/ToR", "oversubscription", "mean ratio", "p10 ratio", "min ratio", "throughput ratio",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, servers := range serverCounts {
		c, err := topology.NewGeneralClos(tors, servers, middles)
		if err != nil {
			return nil, err
		}
		ms, err := topology.NewGeneralMacroSwitch(tors, servers)
		if err != nil {
			return nil, err
		}
		greedy := routing.NewGreedy()
		var pooled simStats
		numFlows := 2 * tors * servers
		for trial := 0; trial < trials; trial++ {
			pair, err := workload.Uniform(rng, c, ms, numFlows)
			if err != nil {
				return nil, err
			}
			macroR, err := core.MacroRouting(ms, pair.Macro)
			if err != nil {
				return nil, err
			}
			macroRates, err := core.MaxMinFairFloat(ms.Network(), pair.Macro, macroR)
			if err != nil {
				return nil, err
			}
			ma, err := greedy.Route(c, pair.Clos, macroRates, nil)
			if err != nil {
				return nil, err
			}
			r, err := core.ClosRouting(c, pair.Clos, ma)
			if err != nil {
				return nil, err
			}
			closRates, err := core.MaxMinFairFloat(c.Network(), pair.Clos, r)
			if err != nil {
				return nil, err
			}
			pooled.observe(closRates, macroRates)
		}
		sum := stats.Summarize(pooled.ratios)
		t.AddRow(
			servers,
			fmt.Sprintf("%d:%d", servers, middles),
			fmt.Sprintf("%.4f", sum.Mean),
			fmt.Sprintf("%.4f", sum.P10),
			fmt.Sprintf("%.4f", sum.Min),
			fmt.Sprintf("%.4f", pooled.throughputRatio()),
		)
	}
	t.AddNote("oversubscription s:m compares per-ToR server capacity (s) against fabric capacity (m); the paper's model is the full-bisection case s:m = 1")
	t.AddNote("beyond full bisection the fabric physically cannot carry the macro rates, so ratios fall structurally, on top of the paper's unsplittability gaps")
	return t, nil
}
