// Package experiments regenerates every figure and bound of the paper's
// evaluation as a table of paper-vs-measured values, plus the
// simulation-based evaluation referenced in §6 and the splittable-flow
// control experiment. See DESIGN.md's per-experiment index for the
// mapping from experiment IDs (F1, F2, T1, F3, T2, F4, T3, S1, P1) to
// paper artifacts.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is an experiment result: a titled grid of formatted values with
// free-form notes (assumption checks, certification status).
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprint(v)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// JSON renders the table as indented JSON for downstream tooling.
func (t *Table) JSON() (string, error) {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: marshal table %s: %w", t.ID, err)
	}
	return string(out), nil
}

// CSV renders the table as comma-separated values (RFC-4180-style
// quoting for cells containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
