package experiments

import "fmt"

// Runner is a named experiment with default parameters.
type Runner struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment with its default parameters, in the
// presentation order of DESIGN.md's per-experiment index.
func All() []Runner {
	return []Runner{
		{"F1", "Example 2.3 allocations (Figure 1)", RunF1},
		{"F2", "Example 3.3 allocations (Figure 2)", RunF2},
		{"T1", "Theorem 3.4 price-of-fairness sweep", func() (*Table, error) {
			return RunT1([]int{1, 2, 4, 8}, []int{1, 2, 4, 8, 16, 32, 64})
		}},
		{"F3", "Theorem 4.2 replication infeasibility (Figure 3)", func() (*Table, error) {
			return RunF3([]int{3, 4, 5})
		}},
		{"T2", "Theorem 4.3 starvation sweep", func() (*Table, error) {
			return RunT2([]int{3, 4, 5, 6, 7, 8}, 4)
		}},
		{"F4", "Example 5.3 Doom-Switch (Figure 4)", RunF4},
		{"T3", "Theorem 5.4 throughput-gain sweep", func() (*Table, error) {
			return RunT3([]int{3, 5, 7, 9, 11, 15}, []int{1, 4, 16, 64})
		}},
		{"S1", "Stochastic routing simulation (§6)", func() (*Table, error) {
			return RunS1(DefaultSimConfig())
		}},
		{"S1b", "Worst-case routing on the starvation family (§6)", func() (*Table, error) {
			return RunS1Adversarial([]int{3, 4, 5, 6}, 1)
		}},
		{"S2", "Per-flow ratio CDFs under baseline routing (§6)", func() (*Table, error) {
			return RunS2(SimConfig{Sizes: []int{4}, FlowsPerServerPair: 2, Trials: 5, Seed: 1})
		}},
		{"S3", "Stochastic vs worst-case routing across topology families (§6)", func() (*Table, error) {
			return RunS3(nil, 5, 5, 1)
		}},
		{"P1", "Splittable demand-satisfaction control (§1)", RunP1},
		{"E1", "Scheduling vs fair sharing, average FCT (§7 R1)", func() (*Table, error) {
			return RunE1([]int{1, 2, 4, 8, 16, 32, 64})
		}},
		{"R1", "Relative-max-min vs lex-max-min fairness (§7 R2)", RunR1},
		{"M1", "Rearrangeability: middles needed for macro rates (§6)", func() (*Table, error) {
			return RunM1([]int{3, 4}, 5, 1)
		}},
		{"D1", "Dynamic FCT simulation: congestion control vs scheduling", func() (*Table, error) {
			return RunD1(DefaultDynConfig())
		}},
		{"O1", "Oversubscription sweep: fidelity vs servers/middles", func() (*Table, error) {
			return RunO1(6, 3, []int{1, 2, 3, 4, 5, 6}, 5, 1)
		}},
		{"A1", "Doom-Switch approximation quality vs exhaustive optimum", func() (*Table, error) {
			return RunA1([]int{2, 3}, 8, 10, 1)
		}},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
