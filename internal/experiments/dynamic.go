package experiments

import (
	"fmt"

	"closnet/internal/dynsim"
	"closnet/internal/topology"
)

// DynConfig parameterizes the dynamic simulation (experiment D1).
type DynConfig struct {
	// Size is the Clos size n.
	Size int
	// Loads lists offered loads ρ ∈ (0, 1): the arrival rate is set to
	// ρ · (total server capacity) / E[size].
	Loads []float64
	// MeanSize is the mean exponential flow size.
	MeanSize float64
	// NumFlows is the number of arrivals per run.
	NumFlows int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultDynConfig returns the configuration used by the registry.
func DefaultDynConfig() DynConfig {
	return DynConfig{
		Size:     3,
		Loads:    []float64{0.3, 0.6, 0.9},
		MeanSize: 1.0,
		NumFlows: 400,
		Seed:     1,
	}
}

// RunD1 runs the dynamic flow-level simulation: Poisson arrivals with
// exponential and heavy-tailed (bounded-Pareto) sizes, three routing
// policies under fair sharing (congestion control) plus the
// SRPT-matching scheduler, reporting mean FCT and tail slowdown per
// offered load. It connects the static impossibility results to the
// flow-completion-time framing of the paper's conclusions.
func RunD1(cfg DynConfig) (*Table, error) {
	t := &Table{
		ID:    "D1",
		Title: "Dynamic simulation: FCT under congestion control vs scheduling (Poisson arrivals)",
		Columns: []string{
			"load", "sizes", "policy", "mean FCT", "mean slowdown", "p99 slowdown",
		},
	}
	c, err := topology.NewClos(cfg.Size)
	if err != nil {
		return nil, err
	}
	capacityPerSide := float64(c.NumToRs() * c.ServersPerToR())

	type policy struct {
		name       string
		router     dynsim.Router
		discipline dynsim.Discipline
	}
	policies := []policy{
		{"fair-sharing + ecmp", dynsim.NewECMPRouter(), dynsim.FairSharing},
		{"fair-sharing + least-loaded", dynsim.NewLeastLoadedRouter(), dynsim.FairSharing},
		{"fair-sharing + round-robin", dynsim.NewRoundRobinRouter(), dynsim.FairSharing},
		{"srpt-matching scheduler", dynsim.NewLeastLoadedRouter(), dynsim.MatchingScheduler},
	}

	dists := []dynsim.SizeDist{dynsim.SizeExponential, dynsim.SizeParetoBounded}
	for _, load := range cfg.Loads {
		if load <= 0 || load >= 1 {
			return nil, fmt.Errorf("experiments: offered load %v outside (0,1)", load)
		}
		rate := load * capacityPerSide / cfg.MeanSize
		for _, dist := range dists {
			for _, p := range policies {
				res, err := dynsim.Run(dynsim.Config{
					Clos:        c,
					Router:      p.router,
					Discipline:  p.discipline,
					ArrivalRate: rate,
					MeanSize:    cfg.MeanSize,
					Sizes:       dist,
					NumFlows:    cfg.NumFlows,
					Seed:        cfg.Seed,
					Obs:         obsSink(),
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(
					fmt.Sprintf("%.1f", load), dist.String(), p.name,
					fmt.Sprintf("%.3f", res.MeanFCT()),
					fmt.Sprintf("%.3f", res.MeanSlowdown()),
					fmt.Sprintf("%.3f", res.P99Slowdown()),
				)
			}
		}
	}
	t.AddNote("fair sharing is the paper's congestion-control model; the SRPT-matching scheduler is the §7 R1 alternative")
	t.AddNote("measured shape: congestion-aware routing beats ECMP/round-robin at every load; the scheduler wins on mean slowdown at every load (§7 R1's 'may decrease') while paying in the p99 tail and, at high load, in mean FCT of long flows; the effect is strongest under heavy-tailed (bounded-Pareto) sizes")
	return t, nil
}
