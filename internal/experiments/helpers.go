package experiments

import (
	"fmt"
	"math/big"

	"closnet/internal/core"
	"closnet/internal/matching"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// serverMultigraph builds G^MS for a flow collection: the bipartite
// multigraph whose left/right nodes are the distinct sources and
// destinations and whose edges are the flows (edge index = flow index).
// Dense indices are assigned on first sight; only identity matters for
// matching.
func serverMultigraph(fs core.Collection) matching.Graph {
	srcIdx := make(map[topology.NodeID]int)
	dstIdx := make(map[topology.NodeID]int)
	g := matching.Graph{}
	for _, f := range fs {
		if _, ok := srcIdx[f.Src]; !ok {
			srcIdx[f.Src] = len(srcIdx)
		}
		if _, ok := dstIdx[f.Dst]; !ok {
			dstIdx[f.Dst] = len(dstIdx)
		}
		g.Edges = append(g.Edges, matching.Edge{Left: srcIdx[f.Src], Right: dstIdx[f.Dst]})
	}
	g.NumLeft, g.NumRight = len(srcIdx), len(dstIdx)
	return g
}

// maxThroughputMacro returns T^MT for a macro-switch flow collection via
// Lemma 3.2 (maximum matching of G^MS), together with the maximum
// matching itself.
func maxThroughputMacro(fs core.Collection) (*big.Rat, matching.Matching, error) {
	m, err := matching.MaxMatching(serverMultigraph(fs))
	if err != nil {
		return nil, nil, err
	}
	return rational.Int(int64(len(m))), m, nil
}

// ratio formats a/b in lowest terms together with a decimal rendering,
// e.g. "3/4 (0.7500)".
func ratio(a, b *big.Rat) string {
	r := rational.Div(a, b)
	return fmt.Sprintf("%s (%.4f)", rational.String(r), rational.Float(r))
}

// yesNo renders a boolean check.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
