package experiments

import (
	"fmt"
	"math/rand"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/routing"
	"closnet/internal/stats"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// SimConfig parameterizes the stochastic simulation (experiment S1).
type SimConfig struct {
	// Sizes lists the Clos sizes n to simulate.
	Sizes []int
	// FlowsPerServerPair scales the uniform/hotspot/skewed workloads:
	// number of flows = FlowsPerServerPair × 2n².
	FlowsPerServerPair int
	// Trials is the number of random instances per (size, workload).
	Trials int
	// Seed makes the simulation reproducible.
	Seed int64
}

// DefaultSimConfig returns the configuration used by the registry and
// the benchmark harness.
func DefaultSimConfig() SimConfig {
	return SimConfig{Sizes: []int{4, 8}, FlowsPerServerPair: 2, Trials: 5, Seed: 1}
}

// RunS1 runs the stochastic routing evaluation of §6's extended-version
// simulation: for every (size, workload, algorithm), flows are offered
// with their macro-switch rates, routed, and re-allocated by max-min
// fair congestion control; the table reports how closely the network
// rates track the macro rates.
func RunS1(cfg SimConfig) (*Table, error) {
	t := &Table{
		ID:    "S1",
		Title: "§6 simulation: per-flow network/macro rate ratios under baseline routing algorithms",
		Columns: []string{
			"n", "workload", "algorithm",
			"mean ratio", "p10 ratio", "min ratio", "throughput ratio",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	algs := routing.All()
	for _, n := range cfg.Sizes {
		c, err := topology.NewClos(n)
		if err != nil {
			return nil, err
		}
		ms, err := topology.NewMacroSwitch(n)
		if err != nil {
			return nil, err
		}
		numFlows := cfg.FlowsPerServerPair * 2 * n * n
		for _, wg := range workload.Generators() {
			stats := make([]simStats, len(algs))
			for trial := 0; trial < cfg.Trials; trial++ {
				pair, err := wg.Draw(rng, c, ms, numFlows)
				if err != nil {
					return nil, err
				}
				macroR, err := core.MacroRouting(ms, pair.Macro)
				if err != nil {
					return nil, err
				}
				macroRates, err := core.MaxMinFairFloat(ms.Network(), pair.Macro, macroR)
				if err != nil {
					return nil, err
				}
				for ai, alg := range algs {
					ma, err := alg.Route(c, pair.Clos, macroRates, rng)
					if err != nil {
						return nil, err
					}
					r, err := core.ClosRouting(c, pair.Clos, ma)
					if err != nil {
						return nil, err
					}
					closRates, err := core.MaxMinFairFloat(c.Network(), pair.Clos, r)
					if err != nil {
						return nil, err
					}
					stats[ai].observe(closRates, macroRates)
				}
			}
			for ai, alg := range algs {
				s := stats[ai]
				sum := s.summary()
				t.AddRow(n, wg.Name, alg.Name,
					fmt.Sprintf("%.4f", sum.Mean),
					fmt.Sprintf("%.4f", sum.P10),
					fmt.Sprintf("%.4f", sum.Min),
					fmt.Sprintf("%.4f", s.throughputRatio()),
				)
			}
		}
	}
	t.AddNote("ratios are per-flow networkRate/macroRate; 1.0 means the macro-switch abstraction holds for that flow")
	t.AddNote("expected shape: congestion-aware algorithms (greedy, local-search, first-fit) stay near 1; ECMP's minimum ratio degrades")
	return t, nil
}

// simStats accumulates per-flow ratios and throughput totals.
type simStats struct {
	ratios            []float64
	closT, macroT     float64
	observed, skipped int
}

func (s *simStats) observe(closRates, macroRates []float64) {
	for i := range closRates {
		s.closT += closRates[i]
		s.macroT += macroRates[i]
		if macroRates[i] <= 0 {
			s.skipped++
			continue
		}
		s.ratios = append(s.ratios, closRates[i]/macroRates[i])
		s.observed++
	}
}

func (s *simStats) summary() stats.Summary {
	return stats.Summarize(s.ratios)
}

func (s *simStats) throughputRatio() float64 {
	if s.macroT == 0 {
		return 0
	}
	return s.closT / s.macroT
}

// RunS1Adversarial runs the worst-case counterpart: the baseline
// algorithms on the Theorem 4.3 starvation family, where §6 notes that
// the Clos rates of some flows can be arbitrarily smaller than their
// macro rates. The table reports the minimum per-flow network/macro
// ratio per algorithm; ECMP's collapses toward 1/n, while the
// congestion-aware heuristics hold up better on this particular family
// (their own tailored worst cases exist per §6 but are not published).
func RunS1Adversarial(ns []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "S1b",
		Title:   "§6 worst case: baseline algorithms on the Theorem 4.3 family",
		Columns: []string{"n", "algorithm", "min flow ratio", "1/n"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		in, err := adversary.Theorem43(n)
		if err != nil {
			return nil, err
		}
		demands := make([]float64, len(in.Flows))
		for fi, r := range in.MacroRates {
			demands[fi] = rational.Float(r)
		}
		for _, alg := range routing.All() {
			ma, err := alg.Route(in.Clos, in.Flows, demands, rng)
			if err != nil {
				return nil, err
			}
			a, err := core.ClosMaxMinFair(in.Clos, in.Flows, ma)
			if err != nil {
				return nil, err
			}
			worst := rational.Div(a[0], in.MacroRates[0])
			for fi := 1; fi < len(a); fi++ {
				r := rational.Div(a[fi], in.MacroRates[fi])
				if r.Cmp(worst) < 0 {
					worst = r
				}
			}
			t.AddRow(n, alg.Name,
				fmt.Sprintf("%.4f", rational.Float(worst)),
				fmt.Sprintf("%.4f", 1/float64(n)),
			)
		}
	}
	t.AddNote("ECMP's minimum ratio collapses toward 1/n on this family; congestion-aware heuristics degrade more slowly here but §6 notes tailored worst cases exist for them too")
	t.AddNote("the lex-max-min routing itself (experiment T2) pins the type-3 flow at exactly 1/n — fairness-optimal routing is the worst case for that flow")
	return t, nil
}

// RunS2 renders the CDF counterpart of S1: for each algorithm, the
// fraction of flows whose network/macro rate ratio falls at or below
// fixed thresholds, aggregated over all workloads — the tabular form of
// the extended version's CDF figures.
func RunS2(cfg SimConfig) (*Table, error) {
	thresholds := []float64{0.25, 0.50, 0.75, 0.90, 0.99, 1.0}
	t := &Table{
		ID:    "S2",
		Title: "§6 simulation: CDF of per-flow network/macro rate ratios (all workloads pooled)",
		Columns: []string{
			"n", "algorithm",
			"≤0.25", "≤0.50", "≤0.75", "≤0.90", "≤0.99", "≤1.00",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	algs := routing.All()
	for _, n := range cfg.Sizes {
		c, err := topology.NewClos(n)
		if err != nil {
			return nil, err
		}
		ms, err := topology.NewMacroSwitch(n)
		if err != nil {
			return nil, err
		}
		numFlows := cfg.FlowsPerServerPair * 2 * n * n
		pooled := make([]simStats, len(algs))
		for _, wg := range workload.Generators() {
			for trial := 0; trial < cfg.Trials; trial++ {
				pair, err := wg.Draw(rng, c, ms, numFlows)
				if err != nil {
					return nil, err
				}
				macroR, err := core.MacroRouting(ms, pair.Macro)
				if err != nil {
					return nil, err
				}
				macroRates, err := core.MaxMinFairFloat(ms.Network(), pair.Macro, macroR)
				if err != nil {
					return nil, err
				}
				for ai, alg := range algs {
					ma, err := alg.Route(c, pair.Clos, macroRates, rng)
					if err != nil {
						return nil, err
					}
					r, err := core.ClosRouting(c, pair.Clos, ma)
					if err != nil {
						return nil, err
					}
					closRates, err := core.MaxMinFairFloat(c.Network(), pair.Clos, r)
					if err != nil {
						return nil, err
					}
					pooled[ai].observe(closRates, macroRates)
				}
			}
		}
		for ai, alg := range algs {
			fractions := stats.FractionAtMost(pooled[ai].ratios, thresholds)
			row := []interface{}{n, alg.Name}
			for _, fr := range fractions {
				row = append(row, stats.FormatFraction(fr))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("a column value is the fraction of flows whose ratio is at most the threshold; small values left of 1.00 mean the macro-switch abstraction mostly holds")
	t.AddNote("ECMP accumulates mass at low ratios; the congestion-aware algorithms concentrate almost all mass at 1.00")
	t.AddNote("mass above 1.00 is genuine: a flow can exceed its macro rate when a competitor is throttled inside the fabric and frees a shared server link")
	return t, nil
}
