package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell finds the value in the named column of row i.
func cell(t *testing.T, tab *Table, i int, column string) string {
	t.Helper()
	for ci, c := range tab.Columns {
		if c == column {
			return tab.Rows[i][ci]
		}
	}
	t.Fatalf("table %s has no column %q", tab.ID, column)
	return ""
}

func TestRunF1(t *testing.T) {
	tab, err := RunF1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if got := cell(t, tab, 0, "sorted rate vector"); got != "[1/3, 1/3, 1/3, 2/3, 2/3, 1]" {
		t.Errorf("macro vector = %s", got)
	}
	if got := cell(t, tab, 1, "sorted rate vector"); got != "[1/3, 1/3, 1/3, 2/3, 2/3, 2/3]" {
		t.Errorf("routing A vector = %s", got)
	}
	if got := cell(t, tab, 2, "sorted rate vector"); got != "[1/3, 1/3, 1/3, 1/3, 2/3, 1]" {
		t.Errorf("routing B vector = %s", got)
	}
	// The exhaustive optimum matches routing A.
	if a, opt := tab.Rows[1][1], tab.Rows[3][1]; a != opt {
		t.Errorf("lex-max-min %s != routing A %s", opt, a)
	}
	for _, i := range []int{1, 2, 3} {
		if got := cell(t, tab, i, "vs macro"); got != "lex-below" {
			t.Errorf("row %d vs macro = %s, want lex-below", i, got)
		}
	}
}

func TestRunF2(t *testing.T) {
	tab, err := RunF2()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, 0, "throughput"); got != "2" {
		t.Errorf("T^MT = %s, want 2", got)
	}
	if got := cell(t, tab, 1, "throughput"); got != "3/2" {
		t.Errorf("T^MmF = %s, want 3/2", got)
	}
}

func TestRunT1(t *testing.T) {
	tab, err := RunT1([]int{1, 2}, []int{1, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for i := range tab.Rows {
		if got := cell(t, tab, i, "≥ 1/2"); got != "yes" {
			t.Errorf("row %d violates the 1/2 lower bound", i)
		}
		if len(tab.Rows[i]) != len(tab.Columns) {
			t.Errorf("row %d flagged a theory mismatch: %v", i, tab.Rows[i])
		}
	}
	// k=64 row: ratio (k+2)/(2k+2) = 66/130 = 33/65.
	if got := cell(t, tab, 2, "theory (k+2)/(2k+2)"); got != "33/65" {
		t.Errorf("theory cell = %s, want 33/65", got)
	}
}

func TestRunF3(t *testing.T) {
	tab, err := RunF3([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if got := cell(t, tab, i, "macro rates replicable"); got != "no" {
			t.Errorf("row %d: replicable = %s, want no", i, got)
		}
		if got := cell(t, tab, i, "replicable without type-3 flow"); got != "yes" {
			t.Errorf("row %d: partial replicable = %s, want yes", i, got)
		}
	}
}

func TestRunT2(t *testing.T) {
	tab, err := RunT2([]int{3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []int{3, 4, 5} {
		if got := cell(t, tab, i, "type-3 macro rate"); got != "1" {
			t.Errorf("n=%d: macro rate = %s", n, got)
		}
		want := "1/" + strconv.Itoa(n)
		if got := cell(t, tab, i, "type-3 lex-max-min rate"); got != want {
			t.Errorf("n=%d: lex rate = %s, want %s", n, got, want)
		}
		if got := cell(t, tab, i, "witness verified"); got != "yes" {
			t.Errorf("n=%d: witness not verified", n)
		}
	}
	if got := cell(t, tab, 0, "local-opt certified"); got != "yes" {
		t.Errorf("n=3 local-opt = %s, want yes", got)
	}
	if got := cell(t, tab, 2, "local-opt certified"); got != "skipped" {
		t.Errorf("n=5 local-opt = %s, want skipped", got)
	}
}

func TestRunF4(t *testing.T) {
	tab, err := RunF4()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, 0, "throughput"); got != "9/2" {
		t.Errorf("macro throughput = %s, want 9/2", got)
	}
	if got := cell(t, tab, 1, "throughput"); got != "5" {
		t.Errorf("doom throughput = %s, want 5", got)
	}
	if got := cell(t, tab, 1, "type-1 rate"); got != "2/3" {
		t.Errorf("type-1 rate = %s, want 2/3", got)
	}
	if got := cell(t, tab, 1, "type-2 rate"); got != "1/3" {
		t.Errorf("type-2 rate = %s, want 1/3", got)
	}
}

func TestRunT3(t *testing.T) {
	tab, err := RunT3([]int{5, 7}, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if got := cell(t, tab, i, "≤ 2"); got != "yes" {
			t.Errorf("row %d violates the 2x upper bound", i)
		}
	}
	// n=7, k=1 is Example 5.3: gain = 5 / (9/2) = 10/9.
	if got := cell(t, tab, 2, "gain"); !strings.HasPrefix(got, "10/9") {
		t.Errorf("example 5.3 gain = %s, want 10/9", got)
	}
}

func TestRunS1Small(t *testing.T) {
	tab, err := RunS1(SimConfig{Sizes: []int{2}, FlowsPerServerPair: 1, Trials: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 1 size × 4 workloads × 4 algorithms.
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	for i := range tab.Rows {
		mean, err := strconv.ParseFloat(cell(t, tab, i, "mean ratio"), 64)
		if err != nil {
			t.Fatalf("row %d mean unparsable: %v", i, err)
		}
		if mean <= 0 || mean > 1.5 {
			t.Errorf("row %d: implausible mean ratio %v", i, mean)
		}
	}
}

func TestRunS1Adversarial(t *testing.T) {
	tab, err := RunS1Adversarial([]int{3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Min ratios must not beat the information-theoretic floor by much:
	// the type-3 flow cannot exceed... actually it can reach 1 for
	// routings that sacrifice type-2 flows; here we just require valid
	// positive ratios ≤ 1.
	for i := range tab.Rows {
		v, err := strconv.ParseFloat(cell(t, tab, i, "min flow ratio"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 || v > 1+1e-9 {
			t.Errorf("row %d: min ratio %v outside (0, 1]", i, v)
		}
	}
}

func TestRunP1(t *testing.T) {
	tab, err := RunP1()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if got := cell(t, tab, i, "rates identical"); got != "yes" {
			t.Errorf("row %d: splittable rates differ from macro rates", i)
		}
		if got := cell(t, tab, i, "max |gap|"); got != "0" {
			t.Errorf("row %d: gap = %s, want 0", i, got)
		}
	}
}

func TestRegistry(t *testing.T) {
	runners := All()
	if len(runners) != 18 {
		t.Fatalf("registry has %d runners", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID] {
			t.Errorf("duplicate runner %s", r.ID)
		}
		seen[r.ID] = true
		if r.Title == "" || r.Run == nil {
			t.Errorf("runner %s incomplete", r.ID)
		}
	}
	if _, err := ByID("F1"); err != nil {
		t.Errorf("ByID(F1): %v", err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tab.AddRow(1, "x,y")
	tab.AddRow("long-value", `has "quotes"`)
	tab.AddNote("note %d", 1)

	s := tab.String()
	if !strings.Contains(s, "== X: demo ==") || !strings.Contains(s, "note: note 1") {
		t.Errorf("String output malformed:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV quoting missing:\n%s", csv)
	}
	if !strings.Contains(csv, `"has ""quotes"""`) {
		t.Errorf("CSV quote escaping missing:\n%s", csv)
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a"}}
	tab.AddRow("v")
	out, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"id": "X"`) || !strings.Contains(out, `"v"`) {
		t.Errorf("JSON output malformed:\n%s", out)
	}
}
