package experiments

import (
	"math/rand"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/lp"
	"closnet/internal/rational"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// RunP1 runs the splittable-flow control experiment ("demand
// satisfaction", §1): with splittable flows the max-min fair rates in
// C_n — computed by the exact progressive-filling LP over all n paths per
// flow — must equal the macro-switch rates exactly, for the very
// instances whose unsplittable rates diverge (Theorems 4.2/4.3).
func RunP1() (*Table, error) {
	t := &Table{
		ID:      "P1",
		Title:   "Splittable baseline: LP max-min rates in C_n vs macro-switch rates",
		Columns: []string{"instance", "n", "flows", "rates identical", "max |gap|"},
	}

	type instanceCase struct {
		name  string
		clos  *topology.Clos
		macro *topology.MacroSwitch
		flows core.Collection
		mfs   core.Collection
	}
	var cases []instanceCase

	ex, err := adversary.Example23()
	if err != nil {
		return nil, err
	}
	cases = append(cases, instanceCase{"example-2.3", ex.Clos, ex.Macro, ex.Flows, ex.MacroFlows})

	t42, err := adversary.Theorem42(3)
	if err != nil {
		return nil, err
	}
	cases = append(cases, instanceCase{"theorem-4.2(n=3)", t42.Clos, t42.Macro, t42.Flows, t42.MacroFlows})

	rng := rand.New(rand.NewSource(9))
	c := topology.MustClos(2)
	ms := topology.MustMacroSwitch(2)
	pair, err := workload.Uniform(rng, c, ms, 10)
	if err != nil {
		return nil, err
	}
	cases = append(cases, instanceCase{"uniform-random(n=2)", c, ms, pair.Clos, pair.Macro})

	for _, tc := range cases {
		paths, err := lp.ClosAllPaths(tc.clos, tc.flows)
		if err != nil {
			return nil, err
		}
		closRates, err := lp.SplittableMaxMin(tc.clos.Network(), tc.flows, paths)
		if err != nil {
			return nil, err
		}
		macroRates, err := core.MacroMaxMinFair(tc.macro, tc.mfs)
		if err != nil {
			return nil, err
		}
		gap := rational.Zero()
		for fi := range closRates {
			d := rational.Sub(closRates[fi], macroRates[fi])
			if d.Sign() < 0 {
				d.Neg(d)
			}
			gap = rational.Max(gap, d)
		}
		t.AddRow(tc.name, tc.clos.Size(), len(tc.flows),
			yesNo(closRates.Equal(macroRates)), rational.String(gap))
	}
	t.AddNote("splittability restores the macro-switch abstraction exactly — the paper's impossibilities are consequences of unsplittable flows")
	return t, nil
}
