package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestRunE1(t *testing.T) {
	tab, err := RunE1([]int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// k=4: fair sharing avg = 5; scheduler: completions 1,1,2,3,4,5 →
	// avg 16/6 = 8/3.
	if got := cell(t, tab, 1, "avg FCT fair sharing"); got != "5" {
		t.Errorf("fair avg = %s, want 5", got)
	}
	if got := cell(t, tab, 1, "avg FCT scheduled"); got != "8/3" {
		t.Errorf("sched avg = %s, want 8/3", got)
	}
	// Speedup must exceed 1 everywhere and grow with k.
	prev := 0.0
	for i := range tab.Rows {
		s := cell(t, tab, i, "speedup")
		// format "p/q (x.xxxx)"
		open := strings.Index(s, "(")
		val, err := strconv.ParseFloat(strings.TrimSuffix(s[open+1:], ")"), 64)
		if err != nil {
			t.Fatalf("unparsable speedup %q", s)
		}
		if val <= 1 {
			t.Errorf("row %d: speedup %v not above 1", i, val)
		}
		if val < prev {
			t.Errorf("row %d: speedup %v decreased from %v", i, val, prev)
		}
		prev = val
	}
}

func TestRunR1(t *testing.T) {
	tab, err := RunR1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Example 2.3: lex 2/3 vs relative 3/4.
	if got := cell(t, tab, 0, "lex-max-min min ratio"); got != "2/3" {
		t.Errorf("lex ratio = %s, want 2/3", got)
	}
	if got := cell(t, tab, 0, "relative-max-min min ratio"); got != "3/4" {
		t.Errorf("relative ratio = %s, want 3/4", got)
	}
	// Starvation family rows: lex ratio = 1/n.
	if got := cell(t, tab, 1, "lex-max-min min ratio"); got != "1/3" {
		t.Errorf("n=3 lex ratio = %s, want 1/3", got)
	}
	if got := cell(t, tab, 2, "lex-max-min min ratio"); got != "1/4" {
		t.Errorf("n=4 lex ratio = %s, want 1/4", got)
	}
}

func TestRunM1(t *testing.T) {
	tab, err := RunM1([]int{3}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Theorem 4.2 (n=3) demands need exactly 4 middles.
	if got := cell(t, tab, 0, "min middles"); got != "4" {
		t.Errorf("min middles = %s, want 4", got)
	}
	if got := cell(t, tab, 0, "conjecture bound 2n-1"); got != "5" {
		t.Errorf("bound = %s, want 5", got)
	}
	// Random workloads stay within the conjecture bound.
	worst, err := strconv.Atoi(cell(t, tab, 1, "min middles"))
	if err != nil {
		t.Fatal(err)
	}
	if worst > 5 {
		t.Errorf("random worst = %d exceeds the conjecture bound 5", worst)
	}
}

func TestRunD1(t *testing.T) {
	cfg := DynConfig{Size: 2, Loads: []float64{0.5}, MeanSize: 1, NumFlows: 120, Seed: 3}
	tab, err := RunD1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 1 load x 2 size dists x 4 policies
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	for i := range tab.Rows {
		v, err := strconv.ParseFloat(cell(t, tab, i, "mean slowdown"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1 {
			t.Errorf("row %d: mean slowdown %v below 1", i, v)
		}
	}
	if _, err := RunD1(DynConfig{Size: 2, Loads: []float64{1.5}, MeanSize: 1, NumFlows: 10, Seed: 1}); err == nil {
		t.Error("overload accepted")
	}
}

func TestRunS2(t *testing.T) {
	tab, err := RunS2(SimConfig{Sizes: []int{2}, FlowsPerServerPair: 1, Trials: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// CDF columns are monotone left to right and end at 100%.
	for i := range tab.Rows {
		prev := -1.0
		for ci := 2; ci < len(tab.Columns); ci++ {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(tab.Rows[i][ci]), "%f%%", &v); err != nil {
				t.Fatalf("row %d col %d unparsable: %q", i, ci, tab.Rows[i][ci])
			}
			if v < prev {
				t.Fatalf("row %d: CDF not monotone", i)
			}
			prev = v
		}
		// The CDF need not reach 100% at ratio 1.00: a flow can exceed
		// its macro rate when a competitor is throttled inside the
		// fabric, freeing a shared server link.
		if prev > 100 {
			t.Fatalf("row %d: CDF above 100%% (got %v)", i, prev)
		}
	}
}

func TestRunO1(t *testing.T) {
	tab, err := RunO1(4, 2, []int{1, 2, 4}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	parse := func(i int, col string) float64 {
		v, err := strconv.ParseFloat(cell(t, tab, i, col), 64)
		if err != nil {
			t.Fatalf("row %d %s unparsable: %v", i, col, err)
		}
		return v
	}
	// At or below full bisection the throughput ratio should be high;
	// well beyond it the fabric physically lacks capacity, so the
	// throughput ratio must drop.
	under := parse(0, "throughput ratio") // 1 server vs 2 middles
	over := parse(2, "throughput ratio")  // 4 servers vs 2 middles
	if under < 0.9 {
		t.Errorf("under-subscribed throughput ratio %v suspiciously low", under)
	}
	if over >= under {
		t.Errorf("oversubscribed throughput ratio %v not below under-subscribed %v", over, under)
	}
}

func TestRunA1(t *testing.T) {
	tab, err := RunA1([]int{2}, 6, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	mean, err := strconv.ParseFloat(cell(t, tab, 0, "mean doom/opt"), 64)
	if err != nil {
		t.Fatal(err)
	}
	minR, err := strconv.ParseFloat(cell(t, tab, 0, "min doom/opt"), 64)
	if err != nil {
		t.Fatal(err)
	}
	// The doom routing can never beat the exhaustive optimum, and it
	// should be a decent approximation on light instances.
	if mean > 1+1e-9 || minR > mean+1e-9 {
		t.Errorf("implausible ratios: mean %v min %v", mean, minR)
	}
	if minR <= 0 {
		t.Errorf("non-positive min ratio %v", minR)
	}
}

// TestRunS3 exercises the cross-family stochastic study at a reduced
// size: every ratio must be finite, in (0, 1], and carry a finite
// confidence half-width.
func TestRunS3(t *testing.T) {
	tab, err := RunS3([]string{"clos", "benes"}, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 2 families x 3 traffic models
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		for _, col := range []int{4, 5, 6, 7, 8} {
			v, err := strconv.ParseFloat(fmt.Sprint(row[col]), 64)
			if err != nil {
				t.Fatalf("row %d col %d: %v", i, col, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1.0001 {
				t.Errorf("row %d col %d: ratio %v out of range", i, col, v)
			}
		}
	}
}

// TestRunS3UnknownFamilyEmpty: asking for no known family yields an
// empty (but well-formed) table rather than an error.
func TestRunS3UnknownFamilyEmpty(t *testing.T) {
	tab, err := RunS3([]string{"torus"}, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 0 {
		t.Errorf("%d rows for unknown family, want 0", len(tab.Rows))
	}
}
