package experiments

import (
	"context"
	"fmt"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/doom"
	"closnet/internal/engine"
	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/search"
)

// Engine is the compute engine behind every routing-space search and
// instrumented subsystem the experiments touch (searches, Doom-Switch,
// the dynamic simulator): one object carries the worker count and the
// observability sink that each experiment used to assemble by hand.
// cmd/closlab sets it from the shared engine flags; nil (the default)
// falls back to a zero-option engine (all-cores search, no
// instrumentation), so tests and example programs need no setup.
var Engine *engine.Engine

// defaultEngine backs the nil-Engine fallback.
var defaultEngine = engine.New(engine.Options{})

func eng() *engine.Engine {
	if Engine != nil {
		return Engine
	}
	return defaultEngine
}

// searchOpts returns the engine's exhaustive-search options — the one
// spelling of workers/observability every experiment shares.
func searchOpts() search.Options {
	return eng().SearchOptions(context.Background())
}

// obsSink returns the engine's observability bundle for the
// instrumented non-search subsystems (Doom-Switch, dynsim).
func obsSink() *obs.Obs {
	return eng().Obs()
}

// RunF1 regenerates Figure 1 / Example 2.3: the max-min fair allocations
// of the six-flow collection in MS_2 and in C_2 under the paper's two
// routings, plus the exhaustively computed lex-max-min fair allocation.
func RunF1() (*Table, error) {
	in, err := adversary.Example23()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F1",
		Title:   "Example 2.3 (Figure 1): max-min fair allocations in MS_2 vs C_2",
		Columns: []string{"allocation", "sorted rate vector", "throughput", "vs macro"},
	}

	macro, err := core.MacroMaxMinFair(in.Macro, in.MacroFlows)
	if err != nil {
		return nil, err
	}
	addAlloc := func(name string, a core.Allocation) {
		cmp := "="
		switch rational.LexCompareSorted(a, macro) {
		case -1:
			cmp = "lex-below"
		case 1:
			cmp = "lex-above"
		}
		t.AddRow(name, a.SortedCopy().String(), rational.String(core.Throughput(a)), cmp)
	}
	addAlloc("macro-switch", macro)

	routingA := in.Witness
	aA, err := core.ClosMaxMinFair(in.Clos, in.Flows, routingA)
	if err != nil {
		return nil, err
	}
	addAlloc("C_2 routing A ((s1.2,t2.1) via M1)", aA)

	routingB := core.MiddleAssignment{2, 2, 2, 1, 2, 1}
	aB, err := core.ClosMaxMinFair(in.Clos, in.Flows, routingB)
	if err != nil {
		return nil, err
	}
	addAlloc("C_2 routing B ((s1.2,t2.1) via M2)", aB)

	opt, err := search.LexMaxMin(in.Clos, in.Flows, searchOpts())
	if err != nil {
		return nil, err
	}
	addAlloc("C_2 lex-max-min (exhaustive)", opt.Allocation)
	t.AddNote("paper: macro sorted vector [1/3,1/3,1/3,2/3,2/3,1]; routing A [1/3,1/3,1/3,2/3,2/3,2/3]; routing B [1/3,1/3,1/3,1/3,2/3,1]; macro ≻ A ≻ B")
	t.AddNote("exhaustive search over %d canonical routings confirms routing A is lex-max-min", opt.States)
	return t, nil
}

// RunF2 regenerates Figure 2 / Example 3.3: in MS_1, the maximum
// throughput allocation reaches 2 while the max-min fair allocation
// reaches only 3/2.
func RunF2() (*Table, error) {
	in, err := adversary.Theorem34(1, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F2",
		Title:   "Example 3.3 (Figure 2): admission control vs congestion control in MS_1",
		Columns: []string{"allocation", "rates (type-1, type-1, type-2)", "throughput"},
	}
	tmt, m, err := maxThroughputMacro(in.MacroFlows)
	if err != nil {
		return nil, err
	}
	// Lemma 3.2 allocation: rate 1 on matched flows, 0 elsewhere.
	mt := rational.NewVec(len(in.Flows))
	for _, fi := range m {
		mt[fi] = rational.One()
	}
	t.AddRow("maximum throughput (Lemma 3.2)", mt.String(), rational.String(tmt))

	mmf, err := core.MacroMaxMinFair(in.Macro, in.MacroFlows)
	if err != nil {
		return nil, err
	}
	t.AddRow("max-min fair", mmf.String(), rational.String(core.Throughput(mmf)))
	t.AddNote("paper: T^MT = 2, T^MmF = 3/2 — a 1/4 of the maximum throughput is lost to fairness")
	return t, nil
}

// RunT1 regenerates the Theorem 3.4 sweep: the price of fairness
// T^MmF / T^MT on the adversarial family, which approaches the tight
// bound 1/2 as k grows, for several macro-switch sizes.
func RunT1(ns, ks []int) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "Theorem 3.4: price of fairness T^MmF/T^MT on the adversarial family",
		Columns: []string{"n", "k", "T^MmF", "T^MT", "ratio", "theory (k+2)/(2k+2)", "≥ 1/2"},
	}
	half := rational.R(1, 2)
	for _, n := range ns {
		for _, k := range ks {
			in, err := adversary.Theorem34(n, k)
			if err != nil {
				return nil, err
			}
			mmf, err := core.MacroMaxMinFair(in.Macro, in.MacroFlows)
			if err != nil {
				return nil, err
			}
			tmmf := core.Throughput(mmf)
			tmt, _, err := maxThroughputMacro(in.MacroFlows)
			if err != nil {
				return nil, err
			}
			r := rational.Div(tmmf, tmt)
			theory := rational.R(int64(k+2), int64(2*k+2))
			row := []interface{}{
				n, k,
				rational.String(tmmf), rational.String(tmt),
				ratio(tmmf, tmt),
				rational.String(theory),
				yesNo(r.Cmp(half) >= 0),
			}
			if r.Cmp(theory) != 0 {
				row = append(row, "MEASURED != THEORY")
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("paper: T^MmF = 1 + 1/(k+1), T^MT = 2; the ratio tends to the tight bound 1/2 as k → ∞")
	return t, nil
}

// RunF3 regenerates Figure 3 / Example 4.1 / Theorem 4.2: the
// macro-switch max-min rates of the adversarial family admit no feasible
// routing in C_n, while dropping the type-3 flow restores routability.
func RunF3(ns []int) (*Table, error) {
	t := &Table{
		ID:      "F3",
		Title:   "Theorem 4.2 (Figure 3): replicating macro-switch max-min rates in C_n",
		Columns: []string{"n", "flows", "macro rates replicable", "replicable without type-3 flow"},
	}
	for _, n := range ns {
		in, err := adversary.Theorem42(n)
		if err != nil {
			return nil, err
		}
		_, full, err := search.FeasibleRouting(context.Background(), in.Clos, in.Flows, in.MacroRates, 0, searchOpts().Workers)
		if err != nil {
			return nil, err
		}
		t3 := in.FlowsOfType(adversary.Type3)[0]
		_, partial, err := search.FeasibleRouting(context.Background(), in.Clos, in.Flows[:t3], in.MacroRates[:t3], 0, searchOpts().Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, len(in.Flows), yesNo(full), yesNo(partial))
	}
	t.AddNote("paper: no feasible routing exists (exhaustive refutation with capacity pruning), so a^MmF↑ ≻ a^L-MmF↑")
	return t, nil
}

// RunT2 regenerates the Theorem 4.3 sweep: the starvation of the type-3
// flow, whose lex-max-min rate in C_n is a 1/n fraction of its
// macro-switch rate. For small n the witness routing is additionally
// certified locally lex-optimal against all single-flow deviations.
func RunT2(ns []int, certifyUpTo int) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "Theorem 4.3: lex-max-min starvation of the type-3 flow",
		Columns: []string{"n", "flows", "type-3 macro rate", "type-3 lex-max-min rate", "ratio", "witness verified", "local-opt certified"},
	}
	for _, n := range ns {
		in, err := adversary.Theorem43(n)
		if err != nil {
			return nil, err
		}
		a, err := core.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
		if err != nil {
			return nil, err
		}
		verified := a.Equal(in.WitnessRates)
		t3 := in.FlowsOfType(adversary.Type3)[0]
		certified := "skipped"
		if n <= certifyUpTo {
			ok, err := search.IsLocalLexOptimal(in.Clos, in.Flows, in.Witness)
			if err != nil {
				return nil, err
			}
			certified = yesNo(ok)
		}
		t.AddRow(
			n, len(in.Flows),
			rational.String(in.MacroRates[t3]),
			rational.String(a[t3]),
			ratio(a[t3], in.MacroRates[t3]),
			yesNo(verified),
			certified,
		)
	}
	t.AddNote("paper: a^L-MmF(type-3) = (1/n)·a^MmF(type-3) — starvation grows with the network size")
	return t, nil
}

// RunF4 regenerates Figure 4 / Example 5.3: the Doom-Switch algorithm on
// the nine-flow C_7 instance, raising throughput from 9/2 to 5 by
// crushing the type-2 flows.
func RunF4() (*Table, error) {
	in, err := adversary.Example53()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F4",
		Title:   "Example 5.3 (Figure 4): Doom-Switch on C_7 (6 type-1 + 3 type-2 flows)",
		Columns: []string{"allocation", "type-1 rate", "type-2 rate", "throughput"},
	}
	typeRate := func(a core.Allocation, ft adversary.FlowType) string {
		idx := in.FlowsOfType(ft)
		first := a[idx[0]]
		for _, fi := range idx[1:] {
			if a[fi].Cmp(first) != 0 {
				return "mixed"
			}
		}
		return rational.String(first)
	}
	macro, err := core.MacroMaxMinFair(in.Macro, in.MacroFlows)
	if err != nil {
		return nil, err
	}
	t.AddRow("macro-switch max-min fair", typeRate(macro, adversary.Type1), typeRate(macro, adversary.Type2a), rational.String(core.Throughput(macro)))

	res, err := doom.RouteWithObs(in.Clos, in.Flows, doom.LeastLoaded(), obsSink())
	if err != nil {
		return nil, err
	}
	a, err := core.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
	if err != nil {
		return nil, err
	}
	t.AddRow("C_7 Doom-Switch max-min fair", typeRate(a, adversary.Type1), typeRate(a, adversary.Type2a), rational.String(core.Throughput(a)))
	t.AddNote("paper: all rates 1/2 and throughput 9/2 in the macro-switch; type-1 → 2/3, type-2 → 1/3, throughput 5 under Doom-Switch")
	t.AddNote("Doom-Switch matched %d flows; doomed middle switch: M%d", res.MatchedCount(), res.DoomMiddle)
	return t, nil
}

// RunT3 regenerates the Theorem 5.4 sweep: the throughput gain of the
// Doom-Switch routing over the macro-switch max-min fair allocation,
// which approaches 2·(1 − 1/(n−1)) and never exceeds 2.
func RunT3(ns, ks []int) (*Table, error) {
	t := &Table{
		ID:      "T3",
		Title:   "Theorem 5.4: Doom-Switch throughput gain T^T-MmF/T^MmF on the adversarial family",
		Columns: []string{"n", "k", "T^MmF", "T(doom)", "gain", "theory 2(1-eps)", "≤ 2"},
	}
	two := rational.Int(2)
	for _, n := range ns {
		for _, k := range ks {
			in, err := adversary.Theorem54(n, k)
			if err != nil {
				return nil, err
			}
			macro, err := core.MacroMaxMinFair(in.Macro, in.MacroFlows)
			if err != nil {
				return nil, err
			}
			tm := core.Throughput(macro)
			res, err := doom.RouteWithObs(in.Clos, in.Flows, doom.LeastLoaded(), obsSink())
			if err != nil {
				return nil, err
			}
			a, err := core.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
			if err != nil {
				return nil, err
			}
			td := core.Throughput(a)
			gain := rational.Div(td, tm)
			// epsilon = (k+n) / ((n-1)(k+2)); theory lower bound 2(1-eps).
			eps := rational.R(int64(k+n), int64((n-1)*(k+2)))
			theory := rational.Mul(two, rational.Sub(rational.One(), eps))
			t.AddRow(
				n, k,
				rational.String(tm), rational.String(td),
				ratio(td, tm),
				fmt.Sprintf("%.4f", rational.Float(theory)),
				yesNo(gain.Cmp(two) <= 0),
			)
		}
	}
	t.AddNote("paper: gain ≥ 2(1-eps) with eps → 1/(n-1) as k → ∞, and gain ≤ 2 always")
	return t, nil
}
