package experiments

import (
	"context"
	"math/big"
	"math/rand"
	"strconv"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/schedule"
	"closnet/internal/search"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// RunE1 quantifies the §7 R1 discussion: scheduling (delaying flows so
// that the rest transmit at link capacity, via repeated maximum
// matchings) versus max-min fair sharing, measured as average flow
// completion time on the Theorem 3.4 family with unit-size flows.
func RunE1(ks []int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "§7 R1: average FCT — max-min fair sharing vs matching scheduler (Theorem 3.4 family, unit flows)",
		Columns: []string{"k", "flows", "avg FCT fair sharing", "avg FCT scheduled", "speedup"},
	}
	for _, k := range ks {
		in, err := adversary.Theorem34(1, k)
		if err != nil {
			return nil, err
		}
		r, err := core.MacroRouting(in.Macro, in.MacroFlows)
		if err != nil {
			return nil, err
		}
		sizes := schedule.UnitSizes(len(in.MacroFlows))
		fair, err := schedule.FairSharing(in.Macro.Network(), in.MacroFlows, r, sizes)
		if err != nil {
			return nil, err
		}
		sched, err := schedule.MatchingRounds(in.MacroFlows, sizes)
		if err != nil {
			return nil, err
		}
		fAvg := schedule.AverageFCT(fair)
		sAvg := schedule.AverageFCT(sched)
		t.AddRow(k, len(in.MacroFlows),
			rational.String(fAvg), rational.String(sAvg), ratio(fAvg, sAvg))
	}
	t.AddNote("under fair sharing every unit flow completes at t = k+1; the scheduler finishes the two high-value flows at t = 1 and serializes the parasitic flows")
	t.AddNote("the speedup approaches 2x as k grows, matching R1's suggestion that scheduling can recover the fairness-forfeited throughput over time")
	return t, nil
}

// RunR1 quantifies the §7 R2 discussion: relative-max-min fairness
// (maximize the minimum network/macro rate ratio) versus lex-max-min
// fairness, on the instances where lex-max-min fairness starves flows.
func RunR1() (*Table, error) {
	t := &Table{
		ID:      "R1",
		Title:   "§7 R2: relative-max-min vs lex-max-min fairness (min per-flow network/macro ratio)",
		Columns: []string{"instance", "lex-max-min min ratio", "relative-max-min min ratio", "method"},
	}

	// Example 2.3: both objectives exhaustively optimal.
	ex, err := adversary.Example23()
	if err != nil {
		return nil, err
	}
	lexOpt, err := search.LexMaxMin(ex.Clos, ex.Flows, searchOpts())
	if err != nil {
		return nil, err
	}
	relOpt, err := search.RelativeMaxMin(ex.Clos, ex.Flows, ex.MacroRates, searchOpts())
	if err != nil {
		return nil, err
	}
	t.AddRow("example-2.3",
		rational.String(worstRatio(lexOpt.Allocation, ex.MacroRates)),
		rational.String(relOpt.MinRatio),
		"exhaustive")

	// Starvation family: the lex witness is known (ratio 1/n); relative
	// fairness is optimized by hill climbing from the witness.
	for _, n := range []int{3, 4} {
		in, err := adversary.Theorem43(n)
		if err != nil {
			return nil, err
		}
		wa, err := core.ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
		if err != nil {
			return nil, err
		}
		climbed, err := search.HillClimbRelative(in.Clos, in.Flows, in.MacroRates, in.Witness, 100)
		if err != nil {
			return nil, err
		}
		t.AddRow(in.Name,
			rational.String(worstRatio(wa, in.MacroRates)),
			rational.String(climbed.MinRatio),
			"hill climb from lex witness")
	}
	t.AddNote("relative-max-min fairness protects the worst-off flow strictly better than lex-max-min fairness on every instance above")
	t.AddNote("whether a constant-factor guarantee is always achievable is the paper's open question; these are instance-level data points")
	return t, nil
}

// worstRatio is minRatio over flows with nonzero target.
func worstRatio(a core.Allocation, target rational.Vec) *big.Rat {
	var worst *big.Rat
	for fi := range a {
		if target[fi].Sign() == 0 {
			continue
		}
		r := rational.Div(a[fi], target[fi])
		if worst == nil || r.Cmp(worst) < 0 {
			worst = r
		}
	}
	if worst == nil {
		return rational.One()
	}
	return worst
}

// RunM1 probes the multirate-rearrangeability question of §6 for
// concrete instances: the minimum number of middle switches needed to
// route the macro-switch max-min rates, versus the paper-square n and
// the classic conjecture bound 2·serversPerToR − 1.
func RunM1(ns []int, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "M1",
		Title:   "§6 rearrangeability: middle switches needed to route macro-switch max-min rates",
		Columns: []string{"instance", "square n", "min middles", "conjecture bound 2n-1"},
	}
	for _, n := range ns {
		in, err := adversary.Theorem42(n)
		if err != nil {
			return nil, err
		}
		bound := 2*in.Clos.ServersPerToR() - 1
		m, ok, err := search.MinMiddlesToRoute(context.Background(), in.Clos, in.Flows, in.MacroRates, bound, 0, searchOpts().Workers)
		if err != nil {
			return nil, err
		}
		cell := "> bound"
		if ok {
			cell = strconv.Itoa(m)
		}
		t.AddRow(in.Name, n, cell, bound)
	}

	// Random workloads with their macro max-min rates as demands.
	rng := rand.New(rand.NewSource(seed))
	n := 3
	c, err := topology.NewClos(n)
	if err != nil {
		return nil, err
	}
	ms, err := topology.NewMacroSwitch(n)
	if err != nil {
		return nil, err
	}
	worst := 0
	for trial := 0; trial < trials; trial++ {
		pair, err := workload.Uniform(rng, c, ms, 3*n*n)
		if err != nil {
			return nil, err
		}
		demands, err := core.MacroMaxMinFair(ms, pair.Macro)
		if err != nil {
			return nil, err
		}
		m, ok, err := search.MinMiddlesToRoute(context.Background(), c, pair.Clos, demands, 2*n-1, 0, searchOpts().Workers)
		if err != nil {
			return nil, err
		}
		if !ok {
			m = 2 * n // sentinel: above the conjecture bound
		}
		if m > worst {
			worst = m
		}
	}
	t.AddRow("uniform-random worst of "+strconv.Itoa(trials), n, strconv.Itoa(worst), 2*n-1)
	t.AddNote("the adversarial Theorem 4.2 demands need more than n middles (that is the theorem) but stay within the 2n-1 conjecture bound")
	return t, nil
}
