package experiments

import (
	"fmt"
	"math/big"
	"math/rand"

	"closnet/internal/core"
	"closnet/internal/doom"
	"closnet/internal/rational"
	"closnet/internal/search"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// RunA1 measures the approximation quality of the Doom-Switch algorithm
// (Algorithm 1): on instances small enough for exhaustive search, the
// throughput of the doom routing's max-min fair allocation is compared
// against the true throughput-max-min fair optimum (Definition 2.5).
// The paper presents the algorithm as an approximation without
// quantifying it; this experiment does.
func RunA1(sizes []int, flowsPer int, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "Doom-Switch approximation quality vs exhaustive throughput-max-min optimum",
		Columns: []string{
			"n", "flows", "trials", "mean doom/opt", "min doom/opt", "exact optima found",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range sizes {
		c, err := topology.NewClos(n)
		if err != nil {
			return nil, err
		}
		ms, err := topology.NewMacroSwitch(n)
		if err != nil {
			return nil, err
		}
		numFlows := flowsPer
		sum := rational.Zero()
		var worst *big.Rat
		exactHits := 0
		for trial := 0; trial < trials; trial++ {
			pair, err := workload.Uniform(rng, c, ms, numFlows)
			if err != nil {
				return nil, err
			}
			opt, err := search.ThroughputMaxMin(c, pair.Clos, searchOpts())
			if err != nil {
				return nil, err
			}
			res, err := doom.RouteWithObs(c, pair.Clos, doom.LeastLoaded(), obsSink())
			if err != nil {
				return nil, err
			}
			da, err := core.ClosMaxMinFair(c, pair.Clos, res.Assignment)
			if err != nil {
				return nil, err
			}
			optT := core.Throughput(opt.Allocation)
			doomT := core.Throughput(da)
			if optT.Sign() == 0 {
				continue
			}
			ratio := rational.Div(doomT, optT)
			sum = rational.Add(sum, ratio)
			if worst == nil || ratio.Cmp(worst) < 0 {
				worst = ratio
			}
			if ratio.Cmp(rational.One()) == 0 {
				exactHits++
			}
		}
		mean := rational.Div(sum, rational.Int(int64(trials)))
		t.AddRow(n, numFlows, trials,
			fmt.Sprintf("%.4f", rational.Float(mean)),
			fmt.Sprintf("%.4f", rational.Float(worst)),
			fmt.Sprintf("%d/%d", exactHits, trials),
		)
	}
	t.AddNote("doom/opt = throughput of Algorithm 1's routing divided by the exhaustive throughput-max-min optimum (both under exact max-min fair congestion control)")
	t.AddNote("Algorithm 1 maximizes the matched flows' throughput but sacrifices the doomed flows; on light instances it often hits the optimum exactly")
	return t, nil
}
