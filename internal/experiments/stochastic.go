package experiments

import (
	"fmt"
	"math/rand"

	"closnet/internal/core"
	"closnet/internal/doom"
	"closnet/internal/gen"
	"closnet/internal/rational"
	"closnet/internal/search"
	"closnet/internal/stats"
)

// s3Specs returns the small fixed shapes the S3 study runs on — one per
// topology family, each with a full routing space a few thousand states
// wide so the exhaustive optimum stays cheap per trial.
func s3Specs() []struct {
	name string
	spec func() (gen.Spec, error)
} {
	return []struct {
		name string
		spec func() (gen.Spec, error)
	}{
		{"clos", func() (gen.Spec, error) { return gen.ClosSpec(3) }},
		{"fattree", func() (gen.Spec, error) { return gen.FatTreeSpec(4) }},
		{"benes", func() (gen.Spec, error) { return gen.BenesSpec(8) }},
		{"oversub", func() (gen.Spec, error) { return gen.OversubscribedClosSpec(4, 4, 2, 1) }},
	}
}

// RunS3 runs the §6 stochastic-vs-worst-case study across topology
// families: for each family and traffic model, draw `trials` random
// traffic matrices, route each with the Doom-Switch heuristic and with
// a uniformly random assignment, and compare their throughput against
// the exhaustive unsplittable optimum of the same instance. Reported
// per (family, model): the mean approximation ratio with its 95%
// confidence half-width (stats.MeanCI95) and the worst ratio seen —
// the stochastic average against the worst case, across families that
// share every evaluation and search code path.
func RunS3(families []string, trials, flows int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "S3",
		Title: "Stochastic vs worst-case routing across topology families (§6)",
		Columns: []string{
			"family", "model", "trials", "flows",
			"doom/opt mean", "doom ±95%", "rand/opt mean", "rand ±95%", "worst ratio",
		},
	}
	want := make(map[string]bool)
	for _, f := range families {
		want[f] = true
	}
	for _, fam := range s3Specs() {
		if len(families) > 0 && !want[fam.name] {
			continue
		}
		sp, err := fam.spec()
		if err != nil {
			return nil, err
		}
		for _, model := range gen.Models() {
			var doomRatios, randRatios []float64
			worst := 1.0
			for trial := 0; trial < trials; trial++ {
				trialSeed := seed + int64(trial)
				s, err := gen.Scenario(sp, gen.TrafficConfig{
					Model:            model,
					Flows:            flows,
					ElephantFraction: 0.25,
					Seed:             trialSeed,
				})
				if err != nil {
					return nil, err
				}
				c, fs, _, _, err := s.Build()
				if err != nil {
					return nil, err
				}
				opt, err := search.ThroughputMaxMin(c, fs, searchOpts())
				if err != nil {
					return nil, err
				}
				tOpt := core.Throughput(opt.Allocation)

				res, err := doom.RouteWithObs(c, fs, doom.LeastLoaded(), obsSink())
				if err != nil {
					return nil, err
				}
				aDoom, err := core.ClosMaxMinFair(c, fs, res.Assignment)
				if err != nil {
					return nil, err
				}

				rng := rand.New(rand.NewSource(trialSeed))
				ma := make(core.MiddleAssignment, len(fs))
				for fi := range ma {
					ma[fi] = rng.Intn(c.Size()) + 1
				}
				aRand, err := core.ClosMaxMinFair(c, fs, ma)
				if err != nil {
					return nil, err
				}

				rDoom := rational.Float(rational.Div(core.Throughput(aDoom), tOpt))
				rRand := rational.Float(rational.Div(core.Throughput(aRand), tOpt))
				doomRatios = append(doomRatios, rDoom)
				randRatios = append(randRatios, rRand)
				if rDoom < worst {
					worst = rDoom
				}
				if rRand < worst {
					worst = rRand
				}
			}
			dMean, dCI := stats.MeanCI95(doomRatios)
			rMean, rCI := stats.MeanCI95(randRatios)
			t.AddRow(
				fam.name, model, trials, flows,
				fmt.Sprintf("%.4f", dMean), fmt.Sprintf("%.4f", dCI),
				fmt.Sprintf("%.4f", rMean), fmt.Sprintf("%.4f", rCI),
				fmt.Sprintf("%.4f", worst),
			)
		}
	}
	t.AddNote("ratios are throughput relative to the exhaustive unsplittable optimum of the same instance (1.0000 = optimal)")
	t.AddNote("every family runs the identical evaluator/search/doom code paths — no family-specific branches (ISSUE 9 acceptance)")
	return t, nil
}
