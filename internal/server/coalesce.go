package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent computations of the same cache key
// into one: the first request to arrive becomes the leader and
// computes; every request that arrives while the leader is in flight
// becomes a follower and receives the leader's exact result bytes.
// This is the classic singleflight pattern (stdlib-only — no
// golang.org/x dependency), specialized to immutable response bodies.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

// flightCall is one in-flight computation. done is closed exactly once,
// after body/status/err are set; followers only read them after <-done.
type flightCall struct {
	done   chan struct{}
	body   []byte
	status int
	err    error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// join registers interest in key. The first caller per key gets
// leader=true and must eventually call finish (even on error); later
// callers get leader=false and the call to wait on.
func (g *flightGroup) join(key cacheKey) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the leader's result and releases every follower.
// The key is removed before done is closed, so a request arriving after
// finish starts a fresh flight (it will normally hit the cache first).
func (g *flightGroup) finish(key cacheKey, call *flightCall, body []byte, status int, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	call.body, call.status, call.err = body, status, err
	close(call.done)
}

// wait blocks until the leader finishes or the follower's own context
// expires, whichever is first. A follower abandoning the wait does not
// disturb the leader: the computation keeps running for everyone else.
func (c *flightCall) wait(ctx context.Context) ([]byte, int, error) {
	select {
	case <-c.done:
		return c.body, c.status, c.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}
