package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"closnet/internal/obs"
)

// TestRequestIDHeader: every response out of the traced handler —
// success, client error, wrong method, non-/v1 path — carries a unique
// X-Closnet-Request-Id.
func TestRequestIDHeader(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	seen := map[string]bool{}
	check := func(resp *http.Response) {
		t.Helper()
		id := resp.Header.Get("X-Closnet-Request-Id")
		if len(id) != 8 {
			t.Errorf("%s %s: request ID %q, want 8 hex chars", resp.Request.Method, resp.Request.URL.Path, id)
		}
		if seen[id] {
			t.Errorf("request ID %q repeated", id)
		}
		seen[id] = true
	}

	resp, _ := post(t, ts.URL+"/v1/evaluate", scenarioBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d", resp.StatusCode)
	}
	check(resp)

	resp, _ = post(t, ts.URL+"/v1/evaluate", "{not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp.StatusCode)
	}
	check(resp)

	for _, path := range []string{"/v1/evaluate", "/healthz", "/v1/stats", "/metrics", "/v1/debug/requests"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		check(r)
	}
}

// TestMetricsEndpoint: GET /metrics serves a lintable Prometheus text
// exposition covering the serving metrics, after real traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	post(t, ts.URL+"/v1/evaluate", scenarioBody)
	post(t, ts.URL+"/v1/evaluate", scenarioBody) // raw-key cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"closnet_server_requests_total",
		"closnet_server_cache_hits_total 1",
		"# TYPE closnet_server_latency_seconds histogram",
		"closnet_server_latency_seconds_bucket{le=\"+Inf\"}",
		"closnet_engine_computes_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := obs.LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("/metrics fails lint: %v\n%s", err, out)
	}

	if resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", resp.StatusCode)
	}
}

// TestDebugRequests: the flight recorder surfaces the recent requests
// newest-first with trace IDs matching the response headers, cache
// state, and the span tree of a computed request reaching the engine.
func TestDebugRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	respMiss, _ := post(t, ts.URL+"/v1/evaluate", scenarioBody)
	respHit, _ := post(t, ts.URL+"/v1/evaluate", scenarioBody)

	resp, err := http.Get(ts.URL + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Requests []flightEntry `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Requests) != 2 {
		t.Fatalf("recorded %d requests, want 2", len(out.Requests))
	}
	hit, miss := out.Requests[0], out.Requests[1] // newest first
	if hit.ID != respHit.Header.Get("X-Closnet-Request-Id") || miss.ID != respMiss.Header.Get("X-Closnet-Request-Id") {
		t.Errorf("recorder IDs %q/%q do not match response headers", hit.ID, miss.ID)
	}
	if miss.Cache != "miss" || hit.Cache != "hit" {
		t.Errorf("cache states %q/%q, want miss/hit", miss.Cache, hit.Cache)
	}
	if miss.Op != "evaluate" || miss.Status != http.StatusOK || miss.DurNs <= 0 {
		t.Errorf("miss entry %+v", miss)
	}
	names := map[string]bool{}
	for _, sp := range miss.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"server.request", "server.decode", "engine.prepare", "server.cache", "server.admit", "engine.compute", "core.block_fill"} {
		if !names[want] {
			t.Errorf("cold request trace lacks a %s span (have %v)", want, names)
		}
	}
	if len(hit.Spans) >= len(miss.Spans) {
		t.Errorf("raw-replay hit recorded %d spans, cold miss %d — hit should be shallower", len(hit.Spans), len(miss.Spans))
	}

	// The debug endpoint itself must not record, or reading the ring
	// would pollute it.
	resp2, err := http.Get(ts.URL + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 struct {
		Requests []flightEntry `json:"requests"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if len(out2.Requests) != 2 {
		t.Errorf("reading the recorder added entries: %d", len(out2.Requests))
	}
}

// TestFlightRecorderRing: the ring retains exactly the last
// flightRingSize entries, newest first.
func TestFlightRecorderRing(t *testing.T) {
	f := newFlightRecorder()
	for i := 0; i < flightRingSize+10; i++ {
		f.record(flightEntry{ID: fmt.Sprintf("r%d", i)})
	}
	got := f.entries()
	if len(got) != flightRingSize {
		t.Fatalf("ring holds %d entries, want %d", len(got), flightRingSize)
	}
	if got[0].ID != fmt.Sprintf("r%d", flightRingSize+9) {
		t.Errorf("newest entry %q", got[0].ID)
	}
	if got[flightRingSize-1].ID != "r10" {
		t.Errorf("oldest retained entry %q, want r10", got[flightRingSize-1].ID)
	}
}
