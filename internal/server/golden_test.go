package server

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"closnet/internal/corpus"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden response bodies under testdata/golden")

// goldenCase is one (endpoint, scenario) pair whose response body is
// pinned byte-for-byte in testdata/golden. The suite replays the §4 C_4
// loadgen corpus through /v1/evaluate and /v1/doom, plus the C_3
// replication-impossibility instance through every /v1/search
// objective, plus the generated fat-tree/Benes/oversubscribed-Clos
// corpus instances, so any refactor of the compute path that changes a
// single response byte fails loudly.
type goldenCase struct {
	name    string // golden file stem
	path    string // endpoint path with query
	request []byte
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	var cases []goldenCase

	c4, names, err := corpus.Build(4, []string{"theorem34k2", "theorem34k8", "theorem42", "theorem43"})
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range c4 {
		cases = append(cases,
			goldenCase{fmt.Sprintf("evaluate_%s_n4", names[i]), "/v1/evaluate", body},
			goldenCase{fmt.Sprintf("doom_%s_n4", names[i]), "/v1/doom", body},
		)
	}

	// The search objectives enumerate the routing space exhaustively,
	// so they get the 3-flow Example 2.3 instance (which carries
	// demands, as objective=relative requires).
	ex, _, err := corpus.Build(0, []string{"example23"})
	if err != nil {
		t.Fatal(err)
	}
	for _, objective := range []string{"lex", "throughput", "relative"} {
		cases = append(cases, goldenCase{
			"search_" + objective + "_example23",
			"/v1/search?objective=" + objective,
			ex[0],
		})
	}

	// The generated non-Clos families (fixed-seed fat-tree, Benes and
	// oversubscribed-Clos instances, small enough for exhaustive
	// search) pin the general-network compute path end to end.
	gens, gnames, err := corpus.Build(0, []string{"genfattree", "genbenes", "genoversub"})
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range gens {
		cases = append(cases,
			goldenCase{"evaluate_" + gnames[i], "/v1/evaluate", body},
			goldenCase{"doom_" + gnames[i], "/v1/doom", body},
			goldenCase{"search_throughput_" + gnames[i], "/v1/search?objective=throughput", body},
		)
	}
	return cases
}

// TestGoldenResponses asserts every /v1/* compute response is
// byte-identical to its pinned golden body. Regenerate with
//
//	go test ./internal/server -run TestGoldenResponses -update-golden
//
// but treat a diff as an API break unless the change is deliberate.
func TestGoldenResponses(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	for _, gc := range goldenCases(t) {
		t.Run(gc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+gc.path, string(gc.request))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d, body %s", gc.path, resp.StatusCode, body)
			}
			golden := filepath.Join("testdata", "golden", gc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden body (run with -update-golden): %v", err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("response body drifted from golden %s:\ngot:  %s\nwant: %s", golden, body, want)
			}
		})
	}
}
