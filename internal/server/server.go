// Package server is the scenario-evaluation service behind the
// closnetd daemon: an HTTP JSON API (stdlib net/http only) that accepts
// codec.Scenario payloads and serves max-min fair allocations
// (POST /v1/evaluate), exhaustive routing search (POST /v1/search) and
// Doom-Switch routing (POST /v1/doom), plus /healthz, /readyz and
// /v1/stats.
//
// The serving core is three cooperating layers:
//
//   - a content-addressed result cache: scenarios are canonicalized and
//     hashed (codec.Canonical + codec.Hash) and finished response
//     bodies are stored in a size-bounded LRU, so a repeated instance
//     returns in microseconds with bytes identical to a cold run;
//   - singleflight coalescing: N concurrent requests for the same
//     content address trigger exactly one computation, whose bytes are
//     shared with every waiter;
//   - admission control: a bounded worker pool and a bounded wait
//     queue, with fast 429 + Retry-After rejection when both are full,
//     and a per-request deadline that propagates context.Context
//     cancellation into the search engine so abandoned requests stop
//     burning cores.
//
// Determinism: every computation runs on the canonical form of the
// scenario, so all semantically equal requests — any flow order, any
// rate-string spelling — produce one canonical response body, computed
// once and replayed byte-identically from the cache or the flight
// group. All rate arithmetic stays exact; no floats cross the API.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/doom"
	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/search"
)

// Defaults for Options fields left zero.
const (
	DefaultQueueDepth = 64
	DefaultCacheSize  = 1024
	DefaultTimeout    = 30 * time.Second
	DefaultMaxBody    = 1 << 20
)

// Options configures a Server.
type Options struct {
	// Workers bounds the number of concurrently computing requests
	// (0 = one per available core). This is the serving-layer pool the
	// admission controller guards.
	Workers int
	// QueueDepth bounds how many admitted-but-waiting requests may
	// block for a worker slot (0 = DefaultQueueDepth, negative = no
	// queue: reject the moment the pool is full).
	QueueDepth int
	// CacheSize bounds the result cache in entries (0 =
	// DefaultCacheSize, negative = caching disabled — the cold-path
	// configuration of the loadgen benchmark).
	CacheSize int
	// Timeout is the per-request compute deadline (0 = DefaultTimeout,
	// negative = none). It parents the request's own context, so client
	// disconnects cancel the computation too.
	Timeout time.Duration
	// SearchWorkers is the enumeration worker count each /v1/search
	// request uses (0 = 1, the serving default: parallelism comes from
	// serving many requests, and results are bit-identical for every
	// setting anyway).
	SearchWorkers int
	// MaxStates caps each /v1/search enumeration
	// (0 = search.DefaultMaxStates).
	MaxStates int
	// MaxBody bounds request bodies in bytes (0 = DefaultMaxBody).
	MaxBody int64
	// Obs attaches the observability layer: request/cache/coalesce/
	// reject counters, a request latency timer, and a journal event per
	// request. nil creates a private registry so /v1/stats always
	// reports.
	Obs *obs.Obs
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) queueDepth() int {
	switch {
	case o.QueueDepth == 0:
		return DefaultQueueDepth
	case o.QueueDepth < 0:
		return 0
	}
	return o.QueueDepth
}

func (o Options) cacheSize() int {
	switch {
	case o.CacheSize == 0:
		return DefaultCacheSize
	case o.CacheSize < 0:
		return 0
	}
	return o.CacheSize
}

func (o Options) timeout() time.Duration {
	switch {
	case o.Timeout == 0:
		return DefaultTimeout
	case o.Timeout < 0:
		return 0
	}
	return o.Timeout
}

func (o Options) searchWorkers() int {
	if o.SearchWorkers <= 0 {
		return 1
	}
	return o.SearchWorkers
}

func (o Options) maxBody() int64 {
	if o.MaxBody <= 0 {
		return DefaultMaxBody
	}
	return o.MaxBody
}

// Server is the scenario-evaluation service. Create with New, expose
// via Handler, stop with Drain.
type Server struct {
	opts   Options
	mux    *http.ServeMux
	cache  *resultCache
	flight *flightGroup
	admit  *admitter
	obs    *obs.Obs
	start  time.Time

	// mu guards the drain state. An RWMutex held across requests would
	// be simpler, but a waiting writer blocks new readers, which would
	// stall the fast 503 we owe post-drain arrivals — so the in-flight
	// barrier is an explicit counter plus a close-once channel.
	mu       sync.Mutex
	draining bool
	inflight int
	drained  chan struct{}

	mRequests  *obs.Counter
	mHits      *obs.Counter
	mMisses    *obs.Counter
	mCoalesced *obs.Counter
	mRejects   *obs.Counter
	mErrors    *obs.Counter
	mLatency   *obs.Timer

	// computeStarted, when non-nil, runs on the flight leader after
	// admission and before the computation — a test hook for making
	// coalescing and drain scenarios deterministic.
	computeStarted func(op string)
}

// New builds a Server from opts.
func New(opts Options) *Server {
	o := opts.Obs
	if o.Registry() == nil {
		// /v1/stats always reports, even when the daemon runs without
		// -metrics; a journal is only attached when the caller brings one.
		o = &obs.Obs{Reg: obs.NewRegistry(), J: o.Journal()}
	}
	reg := o.Registry()
	s := &Server{
		opts:       opts,
		mux:        http.NewServeMux(),
		drained:    make(chan struct{}),
		cache:      newResultCache(opts.cacheSize()),
		flight:     newFlightGroup(),
		admit:      newAdmitter(opts.workers(), opts.queueDepth()),
		obs:        o,
		start:      time.Now(),
		mRequests:  reg.Counter("server.requests"),
		mHits:      reg.Counter("server.cache.hits"),
		mMisses:    reg.Counter("server.cache.misses"),
		mCoalesced: reg.Counter("server.coalesced"),
		mRejects:   reg.Counter("server.rejects"),
		mErrors:    reg.Counter("server.errors"),
		mLatency:   reg.Timer("server.latency"),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/evaluate", s.handleCompute("evaluate"))
	s.mux.HandleFunc("/v1/search", s.handleCompute("search"))
	s.mux.HandleFunc("/v1/doom", s.handleCompute("doom"))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully stops the service: new compute requests are refused
// with 503 while every in-flight request runs to completion. It returns
// when the last in-flight request finished, or ctx.Err() if ctx expires
// first (in-flight requests then still complete in the background;
// their per-request deadlines bound how long that takes).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()
	s.obs.Journal().Emit("server.drain", nil)
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginRequest admits one compute request past the drain gate; a false
// return means the server is draining and the request gets a fast 503.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) endRequest() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// closeDrainedLocked closes the drain barrier exactly once; callers
// hold s.mu.
func (s *Server) closeDrainedLocked() {
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// statsResponse is the /v1/stats schema.
type statsResponse struct {
	UptimeMs int64 `json:"uptime_ms"`
	Draining bool  `json:"draining"`
	Cache    struct {
		Entries  int `json:"entries"`
		Capacity int `json:"capacity"`
	} `json:"cache"`
	Admission struct {
		Workers    int   `json:"workers"`
		QueueDepth int   `json:"queue_depth"`
		InFlight   int   `json:"in_flight"`
		Queued     int64 `json:"queued"`
	} `json:"admission"`
	Metrics obs.Snapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.UptimeMs = time.Since(s.start).Milliseconds()
	resp.Draining = s.isDraining()
	resp.Cache.Entries = s.cache.len()
	resp.Cache.Capacity = s.opts.cacheSize()
	resp.Admission.Workers = s.opts.workers()
	resp.Admission.QueueDepth = s.opts.queueDepth()
	resp.Admission.InFlight = s.admit.inFlight()
	resp.Admission.Queued = s.admit.queued()
	resp.Metrics = s.obs.Registry().Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// apiError is the JSON error body of every non-200 compute response.
type apiError struct {
	Error string `json:"error"`
}

func errorBody(msg string) []byte {
	b, _ := json.Marshal(apiError{Error: msg})
	return append(b, '\n')
}

// handleCompute wraps one compute endpoint with the full serving
// pipeline: drain gate → decode → canonicalize/hash → cache →
// singleflight → admission → deadline-bounded compute → cache fill.
func (s *Server) handleCompute(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.reply(w, endpoint, http.StatusMethodNotAllowed, errorBody("POST only"), "", start)
			return
		}
		if !s.beginRequest() {
			s.reply(w, endpoint, http.StatusServiceUnavailable, errorBody("draining"), "", start)
			return
		}
		defer s.endRequest()

		op, err := resolveOp(endpoint, r)
		if err != nil {
			s.reply(w, endpoint, http.StatusBadRequest, errorBody(err.Error()), "", start)
			return
		}
		body, releaseBody, err := readBody(w, r, s.opts.maxBody())
		if err != nil {
			s.reply(w, endpoint, http.StatusRequestEntityTooLarge, errorBody("request body too large"), "", start)
			return
		}
		defer releaseBody()
		// Request-identity fast path: a byte-identical replay of an
		// already-answered request needs no JSON decoding at all.
		rawKey := cacheKey{op: "raw:" + op, hash: sha256.Sum256(body)}
		if cached, ok := s.cache.get(rawKey); ok {
			s.mHits.Inc()
			s.reply(w, op, http.StatusOK, cached, "hit", start)
			return
		}

		scen, err := codec.Decode(body)
		if err != nil {
			s.reply(w, endpoint, http.StatusBadRequest, errorBody(err.Error()), "", start)
			return
		}
		canon, hash, err := codec.CanonicalHash(scen)
		if err != nil {
			s.reply(w, endpoint, http.StatusBadRequest, errorBody(err.Error()), "", start)
			return
		}
		key := cacheKey{op: op, hash: hash}

		if cached, ok := s.cache.get(key); ok {
			s.mHits.Inc()
			s.cache.put(rawKey, cached)
			s.reply(w, op, http.StatusOK, cached, "hit", start)
			return
		}
		s.mMisses.Inc()

		call, leader := s.flight.join(key)
		if !leader {
			s.mCoalesced.Inc()
			respBody, status, err := call.wait(r.Context())
			if err != nil {
				s.reply(w, op, http.StatusServiceUnavailable, errorBody(err.Error()), "", start)
				return
			}
			s.reply(w, op, status, respBody, "coalesced", start)
			return
		}

		status, respBody := s.lead(r.Context(), call, key, op, canon, hash)
		if status == http.StatusOK {
			s.cache.put(rawKey, respBody)
		}
		s.reply(w, op, status, respBody, "miss", start)
	}
}

// lead runs the leader's side of a flight: admission, deadline-bounded
// compute, cache fill, flight publication. It always finishes the
// flight — including on rejection and error — so followers never block
// past the leader's exit; a leader's 429 is shared with its followers,
// which is exactly the load-shedding semantics we want (the work they
// were waiting for is not going to happen).
func (s *Server) lead(reqCtx context.Context, call *flightCall, key cacheKey, op string, canon *codec.Scenario, hash [32]byte) (int, []byte) {
	if err := s.admit.acquire(reqCtx); err != nil {
		var status int
		var body []byte
		if errors.Is(err, errSaturated) {
			s.mRejects.Inc()
			status, body = http.StatusTooManyRequests, errorBody("server saturated; retry later")
		} else {
			status, body = http.StatusServiceUnavailable, errorBody(err.Error())
		}
		s.flight.finish(key, call, body, status, nil)
		return status, body
	}
	defer s.admit.release()
	if s.computeStarted != nil {
		s.computeStarted(op)
	}

	ctx := reqCtx
	if t := s.opts.timeout(); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(reqCtx, t)
		defer cancel()
	}
	body, err := s.compute(ctx, op, canon, hash)
	status := http.StatusOK
	if err != nil {
		status, body = mapComputeError(err)
	} else {
		s.cache.put(key, body)
	}
	s.flight.finish(key, call, body, status, nil)
	return status, body
}

// mapComputeError maps a computation failure to its HTTP shape:
// deadline → 504, client-gone → 503, resource caps and semantic
// scenario problems → 422 (the request was well-formed JSON — that was
// already settled at decode time — but this instance cannot be served).
func mapComputeError(err error) (int, []byte) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, errorBody("compute deadline exceeded")
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, errorBody("request cancelled")
	}
	return http.StatusUnprocessableEntity, errorBody(err.Error())
}

// bodyPool recycles request-body buffers: on the cache-hit fast path
// the body is only hashed and compared, never retained (json.Unmarshal
// copies every string it keeps), so per-request buffer allocation is
// pure overhead. Stored as *[]byte to keep the pool pointer-shaped.
var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 32<<10); return &b }}

// readBody reads the full request body into a pooled buffer. The
// returned slice is valid until release is called — callers must not
// retain it past the request.
func readBody(w http.ResponseWriter, r *http.Request, max int64) (body []byte, release func(), err error) {
	buf := bodyPool.Get().(*[]byte)
	release = func() { *buf = (*buf)[:0]; bodyPool.Put(buf) }
	lr := http.MaxBytesReader(w, r.Body, max)
	b := *buf
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, rerr := lr.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if rerr == io.EOF {
			*buf = b
			return b, release, nil
		}
		if rerr != nil {
			*buf = b
			release()
			return nil, func() {}, rerr
		}
	}
}

// resolveOp maps an endpoint plus its result-shaping query parameters
// to the cache-key operation string.
func resolveOp(endpoint string, r *http.Request) (string, error) {
	if endpoint != "search" {
		return endpoint, nil
	}
	objective := r.URL.Query().Get("objective")
	if objective == "" {
		objective = "lex"
	}
	switch objective {
	case "lex", "throughput", "relative":
		return "search:" + objective, nil
	}
	return "", fmt.Errorf("unknown objective %q (lex, throughput, relative)", r.URL.Query().Get("objective"))
}

// reply writes one response and records it: request counter, latency
// timer, journal event. cacheState is "hit", "miss", "coalesced" or ""
// (no cache interaction).
func (s *Server) reply(w http.ResponseWriter, op string, status int, body []byte, cacheState string, start time.Time) {
	s.mRequests.Inc()
	if status >= 500 || status == http.StatusBadRequest {
		s.mErrors.Inc()
	}
	elapsed := time.Since(start)
	s.mLatency.Observe(elapsed)
	w.Header().Set("Content-Type", "application/json")
	if cacheState != "" {
		w.Header().Set("X-Closnet-Cache", cacheState)
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	w.Write(body)
	s.obs.Journal().Emit("server.request", obs.F{
		"op": op, "status": status, "cache": cacheState, "elapsed_ns": elapsed.Nanoseconds(),
	})
}

// compute dispatches one admitted, deadline-bounded computation.
func (s *Server) compute(ctx context.Context, op string, canon *codec.Scenario, hash [32]byte) ([]byte, error) {
	switch op {
	case "evaluate":
		return s.computeEvaluate(canon, hash)
	case "search:lex", "search:throughput", "search:relative":
		return s.computeSearch(ctx, op, canon, hash)
	case "doom":
		return s.computeDoom(canon, hash)
	}
	return nil, fmt.Errorf("unknown op %q", op)
}

// evalResponse is the /v1/evaluate schema: the max-min fair allocation
// of the canonical scenario under its embedded routing (uniform middle
// 1 when absent), in canonical flow order.
type evalResponse struct {
	Hash       string   `json:"hash"`
	Flows      int      `json:"flows"`
	Assignment []int    `json:"assignment"`
	Rates      []string `json:"rates"`
	Throughput string   `json:"throughput"`
}

func (s *Server) computeEvaluate(canon *codec.Scenario, hash [32]byte) ([]byte, error) {
	c, fs, _, ma, err := canon.Build()
	if err != nil {
		return nil, err
	}
	if ma == nil {
		ma = core.UniformAssignment(len(fs), 1)
	}
	a, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		return nil, err
	}
	resp := evalResponse{
		Hash:       hex.EncodeToString(hash[:]),
		Flows:      len(fs),
		Assignment: []int(ma),
		Rates:      rateStrings(a),
		Throughput: rational.String(core.Throughput(a)),
	}
	return marshalBody(resp)
}

// searchResponse is the /v1/search schema: the optimal routing under
// the requested objective, in canonical flow order.
type searchResponse struct {
	Hash       string   `json:"hash"`
	Objective  string   `json:"objective"`
	Assignment []int    `json:"assignment"`
	Rates      []string `json:"rates"`
	Throughput string   `json:"throughput"`
	MinRatio   string   `json:"minRatio,omitempty"`
	States     int      `json:"states"`
}

func (s *Server) computeSearch(ctx context.Context, op string, canon *codec.Scenario, hash [32]byte) ([]byte, error) {
	c, fs, demands, _, err := canon.Build()
	if err != nil {
		return nil, err
	}
	opts := search.Options{
		MaxStates: s.opts.MaxStates,
		Workers:   s.opts.searchWorkers(),
		Obs:       s.obs,
		Ctx:       ctx,
	}
	resp := searchResponse{Hash: hex.EncodeToString(hash[:])}
	switch op {
	case "search:lex":
		res, err := search.LexMaxMin(c, fs, opts)
		if err != nil {
			return nil, err
		}
		resp.Objective = "lex"
		resp.Assignment, resp.Rates = []int(res.Assignment), rateStrings(res.Allocation)
		resp.Throughput = rational.String(core.Throughput(res.Allocation))
		resp.States = res.States
	case "search:throughput":
		res, err := search.ThroughputMaxMin(c, fs, opts)
		if err != nil {
			return nil, err
		}
		resp.Objective = "throughput"
		resp.Assignment, resp.Rates = []int(res.Assignment), rateStrings(res.Allocation)
		resp.Throughput = rational.String(core.Throughput(res.Allocation))
		resp.States = res.States
	case "search:relative":
		if demands == nil {
			return nil, errors.New("objective \"relative\" needs scenario demands as targets")
		}
		res, err := search.RelativeMaxMin(c, fs, demands, opts)
		if err != nil {
			return nil, err
		}
		resp.Objective = "relative"
		resp.Assignment, resp.Rates = []int(res.Assignment), rateStrings(res.Allocation)
		resp.Throughput = rational.String(core.Throughput(res.Allocation))
		resp.MinRatio = rational.String(res.MinRatio)
		resp.States = res.States
	}
	return marshalBody(resp)
}

// doomResponse is the /v1/doom schema: Algorithm 1's routing and its
// max-min fair allocation, in canonical flow order.
type doomResponse struct {
	Hash       string   `json:"hash"`
	Assignment []int    `json:"assignment"`
	DoomMiddle int      `json:"doomMiddle"`
	Matched    int      `json:"matched"`
	Rates      []string `json:"rates"`
	Throughput string   `json:"throughput"`
}

func (s *Server) computeDoom(canon *codec.Scenario, hash [32]byte) ([]byte, error) {
	c, fs, _, _, err := canon.Build()
	if err != nil {
		return nil, err
	}
	res, err := doom.RouteWithObs(c, fs, doom.LeastLoaded(), s.obs)
	if err != nil {
		return nil, err
	}
	a, err := core.ClosMaxMinFair(c, fs, res.Assignment)
	if err != nil {
		return nil, err
	}
	resp := doomResponse{
		Hash:       hex.EncodeToString(hash[:]),
		Assignment: []int(res.Assignment),
		DoomMiddle: res.DoomMiddle,
		Matched:    res.MatchedCount(),
		Rates:      rateStrings(a),
		Throughput: rational.String(core.Throughput(a)),
	}
	return marshalBody(resp)
}

func rateStrings(a core.Allocation) []string {
	out := make([]string, len(a))
	for i, r := range a {
		out[i] = rational.String(r)
	}
	return out
}

func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
