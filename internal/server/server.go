// Package server is the scenario-evaluation service behind the
// closnetd daemon: an HTTP JSON API (stdlib net/http only) that accepts
// codec.Scenario payloads and serves max-min fair allocations
// (POST /v1/evaluate), exhaustive routing search (POST /v1/search),
// Doom-Switch routing (POST /v1/doom) and batched sweeps over all of
// them (POST /v1/batch), plus /healthz, /readyz and /v1/stats.
//
// The handlers are thin transport adapters over internal/engine — they
// decode, consult the serving layers below, call the engine's op
// registry, and reply. What the server adds on top of the engine is
// the serving core, three cooperating layers every op shares:
//
//   - a content-addressed result cache: scenarios are canonicalized and
//     hashed (codec.Canonical + codec.Hash) and finished response
//     bodies are stored in a size-bounded LRU, so a repeated instance
//     returns in microseconds with bytes identical to a cold run;
//   - singleflight coalescing: N concurrent requests for the same
//     content address trigger exactly one computation, whose bytes are
//     shared with every waiter;
//   - admission control: a bounded worker pool and a bounded wait
//     queue, with fast 429 + Retry-After rejection when both are full,
//     and a per-request deadline that propagates context.Context
//     cancellation into every compute path (search enumeration, water
//     filling, Doom-Switch) so abandoned requests stop burning cores.
//
// Batch requests participate per item: each /v1/batch item runs
// through the same cache, flight group and admission gate as a single
// call, so a batch response is exactly the concatenation of the N
// single-call bodies, in request order.
//
// Determinism: every computation runs on the canonical form of the
// scenario, so all semantically equal requests — any flow order, any
// rate-string spelling — produce one canonical response body, computed
// once and replayed byte-identically from the cache or the flight
// group. All rate arithmetic stays exact; no floats cross the API.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"closnet/internal/codec"
	"closnet/internal/engine"
	"closnet/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultQueueDepth    = 64
	DefaultCacheSize     = 1024
	DefaultTimeout       = 30 * time.Second
	DefaultMaxBody       = 1 << 20
	DefaultMaxBatchItems = 256
)

// Options configures a Server.
type Options struct {
	// Workers bounds the number of concurrently computing requests
	// (0 = one per available core). This is the serving-layer pool the
	// admission controller guards; /v1/batch fan-out is bounded by it
	// too.
	Workers int
	// QueueDepth bounds how many admitted-but-waiting requests may
	// block for a worker slot (0 = DefaultQueueDepth, negative = no
	// queue: reject the moment the pool is full).
	QueueDepth int
	// CacheSize bounds the result cache in entries (0 =
	// DefaultCacheSize, negative = caching disabled — the cold-path
	// configuration of the loadgen benchmark).
	CacheSize int
	// Timeout is the per-request compute deadline (0 = DefaultTimeout,
	// negative = none). It parents the request's own context, so client
	// disconnects cancel the computation too. Batch items are bounded
	// individually, like the single calls they mirror.
	Timeout time.Duration
	// SearchWorkers is the enumeration worker count each search op uses
	// (0 = 1, the serving default: parallelism comes from serving many
	// requests, and results are bit-identical for every setting anyway).
	SearchWorkers int
	// MaxStates caps each search enumeration
	// (0 = search.DefaultMaxStates).
	MaxStates int
	// MaxBody bounds request bodies in bytes (0 = DefaultMaxBody).
	MaxBody int64
	// MaxBatchItems bounds how many items one /v1/batch request may
	// carry (0 = DefaultMaxBatchItems).
	MaxBatchItems int
	// MaxSessions bounds the /v1/session table
	// (0 = engine.DefaultMaxSessions).
	MaxSessions int
	// SessionTTL is the idle lifetime of a session before lazy eviction
	// (0 = engine.DefaultSessionTTL).
	SessionTTL time.Duration
	// Obs attaches the observability layer: request/cache/coalesce/
	// reject counters, a request latency timer, and a journal event per
	// request. nil creates a private registry so /v1/stats always
	// reports.
	Obs *obs.Obs
}

// withDefaults validates opts and resolves every zero field to its
// default and every negative "disable" sentinel to its resolved form.
// It is the one defaulting point of the package — after New, s.opts
// holds only resolved values, so no call site re-derives a default.
func (o Options) withDefaults() (Options, error) {
	if o.Workers < 0 {
		return o, fmt.Errorf("server: negative Workers %d", o.Workers)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = DefaultQueueDepth
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	switch {
	case o.CacheSize == 0:
		o.CacheSize = DefaultCacheSize
	case o.CacheSize < 0:
		o.CacheSize = 0
	}
	switch {
	case o.Timeout == 0:
		o.Timeout = DefaultTimeout
	case o.Timeout < 0:
		o.Timeout = 0
	}
	if o.SearchWorkers <= 0 {
		o.SearchWorkers = 1
	}
	if o.MaxStates < 0 {
		return o, fmt.Errorf("server: negative MaxStates %d", o.MaxStates)
	}
	if o.MaxBody <= 0 {
		o.MaxBody = DefaultMaxBody
	}
	if o.MaxSessions < 0 {
		return o, fmt.Errorf("server: negative MaxSessions %d", o.MaxSessions)
	}
	if o.SessionTTL < 0 {
		return o, fmt.Errorf("server: negative SessionTTL %v", o.SessionTTL)
	}
	switch {
	case o.MaxBatchItems == 0:
		o.MaxBatchItems = DefaultMaxBatchItems
	case o.MaxBatchItems < 0:
		return o, fmt.Errorf("server: negative MaxBatchItems %d", o.MaxBatchItems)
	}
	if o.Obs.Registry() == nil {
		// /v1/stats always reports, even when the daemon runs without
		// -metrics; a journal is only attached when the caller brings one.
		o.Obs = &obs.Obs{Reg: obs.NewRegistry(), J: o.Obs.Journal()}
	}
	return o, nil
}

// Server is the scenario-evaluation service. Create with New, expose
// via Handler, stop with Drain.
type Server struct {
	opts    Options // resolved: withDefaults already applied
	eng     *engine.Engine
	mux     *http.ServeMux
	cache   *resultCache
	flight  *flightGroup
	admit   *admitter
	obs     *obs.Obs
	flights *flightRecorder
	start   time.Time

	// mu guards the drain state. An RWMutex held across requests would
	// be simpler, but a waiting writer blocks new readers, which would
	// stall the fast 503 we owe post-drain arrivals — so the in-flight
	// barrier is an explicit counter plus a close-once channel.
	mu       sync.Mutex
	draining bool
	inflight int
	drained  chan struct{}

	mRequests   *obs.Counter
	mHits       *obs.Counter
	mMisses     *obs.Counter
	mCoalesced  *obs.Counter
	mRejects    *obs.Counter
	mErrors     *obs.Counter
	mBatchItems *obs.Counter
	mLatency    *obs.Timer

	// computeStarted, when non-nil, runs on the flight leader after
	// admission and before the computation — a test hook for making
	// coalescing and drain scenarios deterministic.
	computeStarted func(op string)
}

// New builds a Server from opts.
func New(opts Options) (*Server, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	reg := o.Obs.Registry()
	s := &Server{
		opts: o,
		eng: engine.New(engine.Options{
			SearchWorkers: o.SearchWorkers,
			MaxStates:     o.MaxStates,
			MaxSessions:   o.MaxSessions,
			SessionTTL:    o.SessionTTL,
			Obs:           o.Obs,
		}),
		mux:         http.NewServeMux(),
		drained:     make(chan struct{}),
		cache:       newResultCache(o.CacheSize),
		flight:      newFlightGroup(),
		admit:       newAdmitter(o.Workers, o.QueueDepth),
		obs:         o.Obs,
		flights:     newFlightRecorder(),
		start:       time.Now(),
		mRequests:   reg.Counter("server.requests"),
		mHits:       reg.Counter("server.cache.hits"),
		mMisses:     reg.Counter("server.cache.misses"),
		mCoalesced:  reg.Counter("server.coalesced"),
		mRejects:    reg.Counter("server.rejects"),
		mErrors:     reg.Counter("server.errors"),
		mBatchItems: reg.Counter("server.batch.items"),
		mLatency:    reg.Timer("server.latency"),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("/v1/evaluate", s.handleCompute("evaluate"))
	s.mux.HandleFunc("/v1/search", s.handleCompute("search"))
	s.mux.HandleFunc("/v1/doom", s.handleCompute("doom"))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/session", s.handleSessionOpen)
	s.mux.HandleFunc("/v1/session/", s.handleSession)
	return s, nil
}

// Handler returns the service's HTTP handler: the route mux wrapped in
// the per-request tracing middleware (traceRequests), so every response
// carries X-Closnet-Request-Id and every /v1/* request lands in the
// flight recorder.
func (s *Server) Handler() http.Handler { return s.traceRequests(s.mux) }

// statusWriter captures the response status for the middleware; the
// implicit 200 of a bare Write is the zero-config default.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// traceRequests is the request-scoped observability middleware: it
// opens one obs.Trace per request, echoes the trace ID as the
// X-Closnet-Request-Id response header (set before the handler runs, so
// even a panic-free early error reply carries it), roots a
// server.request span that the serving pipeline and the engine hang
// child spans from via the request context, and — for the /v1/* API
// surface — records the finished request into the flight recorder
// behind GET /v1/debug/requests. Span events reach the journal as they
// complete; with no journal attached the spans still feed the recorder.
func (s *Server) traceRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(s.obs.Journal())
		w.Header().Set("X-Closnet-Request-Id", tr.ID())
		root := tr.StartSpan("server.request")
		root.Attr("method", r.Method).Attr("path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.ContextWithSpan(r.Context(), root)))
		root.Attr("status", sw.status).End()
		if !strings.HasPrefix(r.URL.Path, "/v1/") || r.URL.Path == "/v1/debug/requests" {
			return
		}
		s.flights.record(flightEntry{
			ID:           tr.ID(),
			Time:         start.UTC().Format(time.RFC3339Nano),
			Method:       r.Method,
			Path:         r.URL.Path,
			Op:           flightOp(r),
			Status:       sw.status,
			Cache:        w.Header().Get("X-Closnet-Cache"),
			DurNs:        time.Since(start).Nanoseconds(),
			Spans:        tr.Spans(),
			SpansDropped: tr.Dropped(),
		})
	})
}

// flightOp names the engine operation a request addressed, for the
// flight recorder: the resolved op when the endpoint and its query
// parameters are well-formed, the bare endpoint otherwise (a malformed
// objective still deserves a legible recorder entry).
func flightOp(r *http.Request) string {
	endpoint := strings.TrimPrefix(r.URL.Path, "/v1/")
	if op, err := resolveOp(endpoint, r); err == nil {
		return op
	}
	return endpoint
}

// Engine returns the compute engine the handlers dispatch through.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Drain gracefully stops the service: new compute requests are refused
// with 503 while every in-flight request runs to completion. It returns
// when the last in-flight request finished, or ctx.Err() if ctx expires
// first (in-flight requests then still complete in the background;
// their per-request deadlines bound how long that takes).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()
	s.obs.Journal().Emit("server.drain", nil)
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginRequest admits one compute request past the drain gate; a false
// return means the server is draining and the request gets a fast 503.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) endRequest() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// closeDrainedLocked closes the drain barrier exactly once; callers
// hold s.mu.
func (s *Server) closeDrainedLocked() {
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves GET /metrics: the full registry in the
// Prometheus text exposition format (obs.WritePrometheus) — every
// counter, gauge, timer and histogram the process registered, no
// scrape-side configuration needed.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.obs.Registry())
}

// handleDebugRequests serves GET /v1/debug/requests: the flight
// recorder's last flightRingSize requests, newest first, each with its
// trace ID, outcome and completed span tree — the "what just happened"
// endpoint for debugging a live daemon.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Requests []flightEntry `json:"requests"`
	}{s.flights.entries()})
}

// statsResponse is the /v1/stats schema.
type statsResponse struct {
	UptimeMs int64    `json:"uptime_ms"`
	Draining bool     `json:"draining"`
	Ops      []string `json:"ops"`
	Cache    struct {
		Entries  int `json:"entries"`
		Aliases  int `json:"aliases"`
		Capacity int `json:"capacity"`
	} `json:"cache"`
	Admission struct {
		Workers    int   `json:"workers"`
		QueueDepth int   `json:"queue_depth"`
		InFlight   int   `json:"in_flight"`
		Queued     int64 `json:"queued"`
	} `json:"admission"`
	Sessions engine.SessionStats `json:"sessions"`
	Metrics  obs.Snapshot        `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.UptimeMs = time.Since(s.start).Milliseconds()
	resp.Draining = s.isDraining()
	resp.Ops = s.eng.Ops()
	resp.Cache.Entries = s.cache.len()
	resp.Cache.Aliases = s.cache.aliasLen()
	resp.Cache.Capacity = s.opts.CacheSize
	resp.Admission.Workers = s.opts.Workers
	resp.Admission.QueueDepth = s.opts.QueueDepth
	resp.Admission.InFlight = s.admit.inFlight()
	resp.Admission.Queued = s.admit.queued()
	resp.Sessions = s.eng.Sessions().Stats()
	resp.Metrics = s.obs.Registry().Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleCompute wraps one compute endpoint with the full serving
// pipeline: drain gate → decode → canonicalize/hash → cache →
// singleflight → admission → deadline-bounded engine compute → cache
// fill.
func (s *Server) handleCompute(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.reply(w, endpoint, http.StatusMethodNotAllowed, codec.ErrorBody("POST only"), "", start)
			return
		}
		if !s.beginRequest() {
			s.reply(w, endpoint, http.StatusServiceUnavailable, codec.ErrorBody("draining"), "", start)
			return
		}
		defer s.endRequest()

		op, err := resolveOp(endpoint, r)
		if err != nil {
			s.reply(w, endpoint, http.StatusBadRequest, codec.ErrorBody(err.Error()), "", start)
			return
		}
		body, releaseBody, err := readBody(w, r, s.opts.MaxBody)
		if err != nil {
			s.reply(w, endpoint, http.StatusRequestEntityTooLarge, codec.ErrorBody("request body too large"), "", start)
			return
		}
		defer releaseBody()
		// Request-identity fast path: a byte-identical replay of an
		// already-answered request needs no JSON decoding at all.
		rawKey := cacheKey{op: "raw:" + op, hash: sha256.Sum256(body)}
		if cached, ok := s.cache.get(rawKey); ok {
			s.mHits.Inc()
			s.reply(w, op, http.StatusOK, cached, "hit", start)
			return
		}

		dsp, _ := obs.StartSpan(r.Context(), "server.decode")
		scen, err := codec.Decode(body)
		dsp.Attr("ok", err == nil).End()
		if err != nil {
			s.reply(w, endpoint, http.StatusBadRequest, codec.ErrorBody(err.Error()), "", start)
			return
		}
		psp, _ := obs.StartSpan(r.Context(), "engine.prepare")
		p, err := s.eng.Prepare(engine.Request{Op: op, Scenario: scen})
		psp.Attr("ok", err == nil).End()
		if err != nil {
			s.reply(w, endpoint, http.StatusBadRequest, codec.ErrorBody(err.Error()), "", start)
			return
		}

		status, respBody, cacheState := s.serveOp(r.Context(), p)
		if status == http.StatusOK && cacheState != "coalesced" {
			// The raw key aliases the canonical entry serveOp installed:
			// it shares that entry's body and LRU slot instead of
			// consuming a second one (see resultCache.putAlias).
			s.cache.putAlias(rawKey, cacheKey{op: p.Op, hash: p.Hash}, respBody)
		}
		s.reply(w, op, status, respBody, cacheState, start)
	}
}

// serveOp runs one prepared operation through the serving core — result
// cache, singleflight, admission, deadline-bounded engine compute — and
// returns the HTTP-shaped outcome. It is the shared per-item path of
// the single-op handlers and /v1/batch, which is what makes a batch
// item behave exactly like the single call it mirrors. cacheState is
// "hit", "miss", "coalesced" or "" (follower whose wait was cut short).
func (s *Server) serveOp(ctx context.Context, p *engine.Prepared) (status int, body []byte, cacheState string) {
	key := cacheKey{op: p.Op, hash: p.Hash}
	csp, _ := obs.StartSpan(ctx, "server.cache")
	cached, ok := s.cache.get(key)
	if ok {
		csp.Attr("state", "hit").End()
		s.mHits.Inc()
		return http.StatusOK, cached, "hit"
	}
	csp.Attr("state", "miss").End()
	s.mMisses.Inc()

	call, leader := s.flight.join(key)
	if !leader {
		s.mCoalesced.Inc()
		wsp, _ := obs.StartSpan(ctx, "server.coalesce_wait")
		respBody, status, err := call.wait(ctx)
		wsp.Attr("ok", err == nil).End()
		if err != nil {
			return http.StatusServiceUnavailable, codec.ErrorBody(err.Error()), ""
		}
		return status, respBody, "coalesced"
	}
	status, body = s.lead(ctx, call, key, p)
	return status, body, "miss"
}

// lead runs the leader's side of a flight: admission, deadline-bounded
// compute, cache fill, flight publication. It always finishes the
// flight — including on rejection and error — so followers never block
// past the leader's exit; a leader's 429 is shared with its followers,
// which is exactly the load-shedding semantics we want (the work they
// were waiting for is not going to happen).
func (s *Server) lead(reqCtx context.Context, call *flightCall, key cacheKey, p *engine.Prepared) (int, []byte) {
	asp, _ := obs.StartSpan(reqCtx, "server.admit")
	err := s.admit.acquire(reqCtx)
	asp.Attr("ok", err == nil).End()
	if err != nil {
		var status int
		var body []byte
		if errors.Is(err, errSaturated) {
			s.mRejects.Inc()
			status, body = http.StatusTooManyRequests, codec.ErrorBody("server saturated; retry later")
		} else {
			status, body = http.StatusServiceUnavailable, codec.ErrorBody(err.Error())
		}
		s.flight.finish(key, call, body, status, nil)
		return status, body
	}
	defer s.admit.release()
	if s.computeStarted != nil {
		s.computeStarted(p.Op)
	}

	ctx := reqCtx
	if t := s.opts.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(reqCtx, t)
		defer cancel()
	}
	body, err := s.eng.Compute(ctx, p)
	status := http.StatusOK
	if err != nil {
		status, body = mapComputeError(err)
	} else {
		s.cache.put(key, body)
	}
	s.flight.finish(key, call, body, status, nil)
	return status, body
}

// mapComputeError maps a computation failure to its HTTP shape:
// deadline → 504, client-gone → 503, resource caps and semantic
// scenario problems → 422 (the request was well-formed JSON — that was
// already settled at decode time — but this instance cannot be served).
func mapComputeError(err error) (int, []byte) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codec.ErrorBody("compute deadline exceeded")
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, codec.ErrorBody("request cancelled")
	}
	return http.StatusUnprocessableEntity, codec.ErrorBody(err.Error())
}

// batchItem is one /v1/batch work item: an engine op name plus the
// scenario it runs on. An item without an op inherits the envelope
// default.
type batchItem struct {
	Op       string          `json:"op,omitempty"`
	Scenario json.RawMessage `json:"scenario"`
}

// batchRequest is the POST /v1/batch envelope: a default op plus the
// items to compute. The response body is the concatenation of the
// per-item response bodies (one JSON document per line), in request
// order — exactly the bytes N single calls would have returned.
type batchRequest struct {
	Op    string      `json:"op,omitempty"`
	Items []batchItem `json:"items"`
}

// statusError carries a per-item HTTP outcome through engine.RunBatch,
// whose error slots are how a batch item reports failure without
// stopping its siblings.
type statusError struct {
	status int
	body   []byte
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d", e.status) }

// handleBatch is the POST /v1/batch transport adapter: decode the
// envelope, fan the items out through engine.RunBatch with each item
// routed through the same cache → singleflight → admission pipeline as
// a single call, and concatenate the bodies in request order. All items
// succeeded → 200; otherwise 207 with the failing slots carrying the
// single-call error body they would have gotten alone, and the
// X-Closnet-Batch-Errors header counting them.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.reply(w, "batch", http.StatusMethodNotAllowed, codec.ErrorBody("POST only"), "", start)
		return
	}
	if !s.beginRequest() {
		s.reply(w, "batch", http.StatusServiceUnavailable, codec.ErrorBody("draining"), "", start)
		return
	}
	defer s.endRequest()

	body, releaseBody, err := readBody(w, r, s.opts.MaxBody)
	if err != nil {
		s.reply(w, "batch", http.StatusRequestEntityTooLarge, codec.ErrorBody("request body too large"), "", start)
		return
	}
	defer releaseBody()
	var breq batchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		s.reply(w, "batch", http.StatusBadRequest, codec.ErrorBody(err.Error()), "", start)
		return
	}
	if len(breq.Items) == 0 {
		s.reply(w, "batch", http.StatusBadRequest, codec.ErrorBody("empty batch: no items"), "", start)
		return
	}
	if len(breq.Items) > s.opts.MaxBatchItems {
		msg := fmt.Sprintf("batch of %d items exceeds the %d-item limit", len(breq.Items), s.opts.MaxBatchItems)
		s.reply(w, "batch", http.StatusRequestEntityTooLarge, codec.ErrorBody(msg), "", start)
		return
	}
	if breq.Op == "" {
		breq.Op = "evaluate"
	}

	// Decode up front so the fan-out only sees well-formed requests;
	// a malformed item fails its own slot, exactly as the single call
	// would have failed with 400.
	reqs := make([]engine.Request, len(breq.Items))
	itemErr := make([]*statusError, len(breq.Items))
	for i, it := range breq.Items {
		op := it.Op
		if op == "" {
			op = breq.Op
		}
		scen, err := codec.Decode(it.Scenario)
		if err != nil {
			itemErr[i] = &statusError{http.StatusBadRequest, codec.ErrorBody(err.Error())}
			continue
		}
		reqs[i] = engine.Request{Op: op, Scenario: scen}
	}

	run := func(ctx context.Context, i int, req engine.Request) (*engine.Response, error) {
		if itemErr[i] != nil {
			return nil, itemErr[i]
		}
		p, err := s.eng.Prepare(req)
		if err != nil {
			return nil, &statusError{http.StatusBadRequest, codec.ErrorBody(err.Error())}
		}
		status, respBody, _ := s.serveOp(ctx, p)
		if status != http.StatusOK {
			return nil, &statusError{status, respBody}
		}
		return &engine.Response{Op: p.Op, Hash: p.Hash, Body: respBody}, nil
	}
	results := s.eng.RunBatch(r.Context(), reqs, s.opts.Workers, run)
	s.mBatchItems.Add(int64(len(results)))

	var out bytes.Buffer
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
			var se *statusError
			if errors.As(res.Err, &se) {
				out.Write(se.body)
			} else {
				out.Write(codec.ErrorBody(res.Err.Error()))
			}
			continue
		}
		out.Write(res.Resp.Body)
	}
	status := http.StatusOK
	if failed > 0 {
		status = http.StatusMultiStatus
		w.Header().Set("X-Closnet-Batch-Errors", strconv.Itoa(failed))
	}
	w.Header().Set("X-Closnet-Batch-Items", strconv.Itoa(len(results)))
	s.reply(w, "batch", status, out.Bytes(), "", start)
}

// bodyPool recycles request-body buffers: on the cache-hit fast path
// the body is only hashed and compared, never retained (json.Unmarshal
// copies every string it keeps), so per-request buffer allocation is
// pure overhead. Stored as *[]byte to keep the pool pointer-shaped.
var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 32<<10); return &b }}

// readBody reads the full request body into a pooled buffer. The
// returned slice is valid until release is called — callers must not
// retain it past the request.
func readBody(w http.ResponseWriter, r *http.Request, max int64) (body []byte, release func(), err error) {
	buf := bodyPool.Get().(*[]byte)
	release = func() { *buf = (*buf)[:0]; bodyPool.Put(buf) }
	lr := http.MaxBytesReader(w, r.Body, max)
	b := *buf
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, rerr := lr.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if rerr == io.EOF {
			*buf = b
			return b, release, nil
		}
		if rerr != nil {
			*buf = b
			release()
			return nil, func() {}, rerr
		}
	}
}

// resolveOp maps an endpoint plus its result-shaping query parameters
// to the engine op name (which doubles as the cache-key operation
// string).
func resolveOp(endpoint string, r *http.Request) (string, error) {
	if endpoint != "search" {
		return endpoint, nil
	}
	objective := r.URL.Query().Get("objective")
	if objective == "" {
		objective = "lex"
	}
	switch objective {
	case "lex", "throughput", "relative":
	default:
		return "", fmt.Errorf("unknown objective %q (lex, throughput, relative)", r.URL.Query().Get("objective"))
	}
	op := "search:" + objective
	switch strategy := r.URL.Query().Get("strategy"); strategy {
	case "", "exhaustive":
	case "pruned":
		if objective == "relative" {
			return "", fmt.Errorf("objective %q has no pruned strategy", objective)
		}
		op += ":pruned"
	default:
		return "", fmt.Errorf("unknown strategy %q (exhaustive, pruned)", strategy)
	}
	return op, nil
}

// reply writes one response and records it: request counter, latency
// timer, journal event. cacheState is "hit", "miss", "coalesced" or ""
// (no cache interaction).
func (s *Server) reply(w http.ResponseWriter, op string, status int, body []byte, cacheState string, start time.Time) {
	s.mRequests.Inc()
	if status >= 500 || status == http.StatusBadRequest {
		s.mErrors.Inc()
	}
	elapsed := time.Since(start)
	s.mLatency.Observe(elapsed)
	w.Header().Set("Content-Type", "application/json")
	if cacheState != "" {
		w.Header().Set("X-Closnet-Cache", cacheState)
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	w.Write(body)
	s.obs.Journal().Emit("server.request", obs.F{
		"op": op, "status": status, "cache": cacheState, "elapsed_ns": elapsed.Nanoseconds(),
	})
}
