package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errSaturated is returned by the admitter when both the worker pool
// and the wait queue are full; the HTTP layer maps it to
// 429 Too Many Requests with a Retry-After hint.
var errSaturated = errors.New("server: worker pool and wait queue are full")

// admitter is the admission controller: a bounded worker pool (at most
// workers computations run concurrently) fronted by a bounded wait
// queue (at most queueDepth requests may block for a slot). Anything
// beyond that is rejected immediately — a saturated service answers
// fast with 429 rather than slowly with a timeout, and shedding at the
// door keeps the search engine's cores for requests that will still be
// wanted when they finish.
type admitter struct {
	slots      chan struct{}
	queueDepth int64
	waiting    atomic.Int64
	rejects    atomic.Int64
}

func newAdmitter(workers, queueDepth int) *admitter {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admitter{
		slots:      make(chan struct{}, workers),
		queueDepth: int64(queueDepth),
	}
}

// acquire claims a worker slot, waiting in the bounded queue when the
// pool is busy. It returns errSaturated when the queue is full, or
// ctx.Err() when the request's deadline expires while queued. On nil
// return the caller owns a slot and must release it.
func (a *admitter) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queueDepth {
		a.waiting.Add(-1)
		a.rejects.Add(1)
		return errSaturated
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot to the pool.
func (a *admitter) release() {
	<-a.slots
}

// queued returns the number of requests currently waiting for a slot.
func (a *admitter) queued() int64 { return a.waiting.Load() }

// inFlight returns the number of slots currently held.
func (a *admitter) inFlight() int { return len(a.slots) }
