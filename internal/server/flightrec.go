package server

import (
	"sync"

	"closnet/internal/obs"
)

// flightRingSize bounds the flight recorder: the last flightRingSize
// requests are retained, older entries are overwritten in place. 256
// spans the longest burst a debugging session replays (the CI smoke,
// one loadgen run segment) while keeping the recorder's footprint
// fixed — with maxTraceSpans capping each entry's span list, the whole
// ring is bounded memory no matter how long the daemon runs.
const flightRingSize = 256

// flightEntry is one recorded request: identity, outcome, and the
// completed trace — everything GET /v1/debug/requests needs to explain
// "what just happened" without log archaeology.
type flightEntry struct {
	ID           string           `json:"id"`
	Time         string           `json:"time"`
	Method       string           `json:"method"`
	Path         string           `json:"path"`
	Op           string           `json:"op"`
	Status       int              `json:"status"`
	Cache        string           `json:"cache,omitempty"`
	DurNs        int64            `json:"dur_ns"`
	Spans        []obs.SpanRecord `json:"spans,omitempty"`
	SpansDropped int              `json:"spans_dropped,omitempty"`
}

// flightRecorder is a fixed-size ring of the most recent requests.
// record is O(1) and never allocates past the first lap; entries
// snapshots newest-first, the order a debugger reads.
type flightRecorder struct {
	mu   sync.Mutex
	ring [flightRingSize]flightEntry
	next int // ring slot the next record lands in
	n    int // occupied slots, ≤ flightRingSize
}

func newFlightRecorder() *flightRecorder { return &flightRecorder{} }

func (f *flightRecorder) record(e flightEntry) {
	f.mu.Lock()
	f.ring[f.next] = e
	f.next = (f.next + 1) % flightRingSize
	if f.n < flightRingSize {
		f.n++
	}
	f.mu.Unlock()
}

// entries returns the recorded requests, newest first.
func (f *flightRecorder) entries() []flightEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]flightEntry, 0, f.n)
	for i := 1; i <= f.n; i++ {
		out = append(out, f.ring[(f.next-i+flightRingSize)%flightRingSize])
	}
	return out
}
