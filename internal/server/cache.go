package server

import (
	"container/list"
	"sync"
)

// cacheKey is the content address of one serving result: the SHA-256
// of the canonical scenario (codec.Canonical) plus the operation that
// was asked of it. Two requests with the same key are the same
// computation — byte-identical response bodies — regardless of flow
// order, rate-string spelling or scenario name.
type cacheKey struct {
	// op is the endpoint plus any result-shaping parameters, e.g.
	// "evaluate", "search:lex", "search:throughput", "doom". A "raw:"
	// prefix marks the request-identity fast path: the hash is then the
	// SHA-256 of the raw request bytes rather than of the canonical
	// form, letting byte-identical replays skip JSON decoding and
	// canonicalization entirely. Raw entries always alias a canonical
	// entry's body, so both paths return the same bytes.
	op   string
	hash [32]byte
}

// resultCache is a size-bounded LRU over computed response bodies.
// Entries are immutable byte slices; a hit returns the exact bytes a
// cold computation produced (the byte-identity guarantee of the
// serving layer rests on storing encoded bodies, not re-encoding on
// the way out). The zero-capacity cache stores nothing — the "cold
// path" configuration of the loadgen benchmark.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[cacheKey]*list.Element
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[cacheKey]*list.Element),
	}
}

// get returns the cached body for key and refreshes its recency.
func (c *resultCache) get(key cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put installs body under key, evicting the least recently used entry
// when the cache is full. Callers must not mutate body afterwards.
func (c *resultCache) put(key cacheKey, body []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same key means same canonical scenario means same body; just
		// refresh recency.
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
