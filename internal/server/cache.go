package server

import (
	"container/list"
	"sync"
)

// cacheKey is the content address of one serving result: the SHA-256
// of the canonical scenario (codec.Canonical) plus the operation that
// was asked of it. Two requests with the same key are the same
// computation — byte-identical response bodies — regardless of flow
// order, rate-string spelling or scenario name.
type cacheKey struct {
	// op is the endpoint plus any result-shaping parameters, e.g.
	// "evaluate", "search:lex", "search:throughput", "doom". A "raw:"
	// prefix marks the request-identity fast path: the hash is then the
	// SHA-256 of the raw request bytes rather than of the canonical
	// form, letting byte-identical replays skip JSON decoding and
	// canonicalization entirely. Raw entries always alias a canonical
	// entry's body, so both paths return the same bytes.
	op   string
	hash [32]byte
}

// resultCache is a size-bounded LRU over computed response bodies.
// Entries are immutable byte slices; a hit returns the exact bytes a
// cold computation produced (the byte-identity guarantee of the
// serving layer rests on storing encoded bodies, not re-encoding on
// the way out). The zero-capacity cache stores nothing — the "cold
// path" configuration of the loadgen benchmark.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[cacheKey]*list.Element
	// aliases maps raw-identity keys onto the canonical entry whose body
	// they share. An alias consumes no LRU slot of its own — only
	// canonical entries occupy order/entries — so the byte-identical
	// replay path (the loadgen warm path) no longer halves effective
	// capacity, and a canonical entry can never be evicted while a raw
	// alias to its body survives: eviction removes the pair.
	aliases map[cacheKey]*list.Element
}

// maxAliasesPerEntry bounds how many raw-identity keys one canonical
// entry may carry, so pathological clients re-spelling the same
// scenario (reordered flows, renamed scenario, equivalent rate strings)
// cannot grow the alias map without bound.
const maxAliasesPerEntry = 8

type cacheEntry struct {
	key     cacheKey
	body    []byte
	aliases []cacheKey // raw keys sharing this entry's slot
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[cacheKey]*list.Element),
		aliases:  make(map[cacheKey]*list.Element),
	}
}

// get returns the cached body for key — canonical or alias — and
// refreshes the backing entry's recency.
func (c *resultCache) get(key cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		el, ok = c.aliases[key]
	}
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put installs body under key, evicting the least recently used entry
// when the cache is full. Callers must not mutate body afterwards.
func (c *resultCache) put(key cacheKey, body []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, body)
}

func (c *resultCache) putLocked(key cacheKey, body []byte) {
	if el, ok := c.entries[key]; ok {
		// Same key means same canonical scenario means same body; just
		// refresh recency.
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, e.key)
		for _, a := range e.aliases {
			delete(c.aliases, a)
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// putAlias records alias as a capacity-free second name for the entry
// under primary, sharing its body and LRU slot. When the primary is no
// longer cached (evicted between compute and alias install) or its
// alias list is full, the body is installed under alias as an ordinary
// entry instead, so replays still hit.
func (c *resultCache) putAlias(alias, primary cacheKey, body []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.aliases[alias]; ok {
		c.order.MoveToFront(el)
		return
	}
	if _, ok := c.entries[alias]; ok {
		return // already a canonical entry in its own right
	}
	el, ok := c.entries[primary]
	if !ok {
		c.putLocked(alias, body)
		return
	}
	e := el.Value.(*cacheEntry)
	if len(e.aliases) >= maxAliasesPerEntry {
		c.putLocked(alias, body)
		return
	}
	e.aliases = append(e.aliases, alias)
	c.aliases[alias] = el
	c.order.MoveToFront(el)
}

// len returns the number of canonical cached entries (the count that
// consumes capacity; aliases are excluded).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// aliasLen returns the number of live alias keys.
func (c *resultCache) aliasLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.aliases)
}
