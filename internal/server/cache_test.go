package server

import (
	"bytes"
	"fmt"
	"testing"
)

func key(op string, b byte) cacheKey {
	return cacheKey{op: op, hash: [32]byte{b}}
}

// TestCacheAliasSharesSlot: a raw-identity alias shares its canonical
// entry's LRU slot instead of consuming one of its own — the regression
// where every computed result occupied two slots (halving effective
// capacity) — and is evicted together with the entry it names.
func TestCacheAliasSharesSlot(t *testing.T) {
	c := newResultCache(2)
	k1, r1 := key("search:lex", 1), key("raw:search:lex", 101)
	k2, r2 := key("search:lex", 2), key("raw:search:lex", 102)
	b1, b2 := []byte("body-1\n"), []byte("body-2\n")

	c.put(k1, b1)
	c.putAlias(r1, k1, b1)
	c.put(k2, b2)
	c.putAlias(r2, k2, b2)

	// Two computed results fit a capacity-2 cache even with their raw
	// aliases installed: aliases are capacity-free.
	if c.len() != 2 || c.aliasLen() != 2 {
		t.Fatalf("len = %d aliases = %d, want 2 and 2", c.len(), c.aliasLen())
	}
	for _, tc := range []struct {
		k    cacheKey
		want []byte
	}{{k1, b1}, {r1, b1}, {k2, b2}, {r2, b2}} {
		got, ok := c.get(tc.k)
		if !ok || !bytes.Equal(got, tc.want) {
			t.Errorf("get(%v) = %q, %v; want %q", tc.k.op, got, ok, tc.want)
		}
	}

	// k1 is the least recently used primary (the gets above refreshed it
	// last, so touch k2's pair after): evicting it must take its alias
	// down too — an alias must never outlive the body it points at.
	c.get(k2)
	c.put(key("search:lex", 3), []byte("body-3\n"))
	if _, ok := c.get(k1); ok {
		t.Error("evicted primary still served")
	}
	if _, ok := c.get(r1); ok {
		t.Error("alias survived its primary's eviction")
	}
	if c.aliasLen() != 1 {
		t.Errorf("aliasLen = %d after pair eviction, want 1", c.aliasLen())
	}
	for _, k := range []cacheKey{k2, r2, key("search:lex", 3)} {
		if _, ok := c.get(k); !ok {
			t.Errorf("get(%v) missed after unrelated eviction", k)
		}
	}
}

// TestCacheAliasFallbacks covers the degraded paths: an alias whose
// primary is already gone, a primary whose alias list is full, and the
// zero-capacity cache. Replays must still hit in the first two cases
// (the alias becomes an ordinary entry) and nothing is stored in the
// third.
func TestCacheAliasFallbacks(t *testing.T) {
	c := newResultCache(4)
	body := []byte("orphan\n")
	orphan := key("raw:evaluate", 50)
	c.putAlias(orphan, key("evaluate", 51), body)
	if got, ok := c.get(orphan); !ok || !bytes.Equal(got, body) {
		t.Errorf("orphan alias not installed as a regular entry: %q, %v", got, ok)
	}
	if c.len() != 1 || c.aliasLen() != 0 {
		t.Errorf("len = %d aliases = %d after orphan install, want 1 and 0", c.len(), c.aliasLen())
	}

	// Fill one entry's alias list past maxAliasesPerEntry: the overflow
	// alias falls back to a slot of its own, so it still hits.
	primary := key("doom", 60)
	c.put(primary, body)
	for i := 0; i <= maxAliasesPerEntry; i++ {
		c.putAlias(key("raw:doom", byte(70+i)), primary, body)
	}
	if c.aliasLen() != maxAliasesPerEntry {
		t.Errorf("aliasLen = %d, want the %d cap", c.aliasLen(), maxAliasesPerEntry)
	}
	overflow := key("raw:doom", byte(70+maxAliasesPerEntry))
	if _, ok := c.get(overflow); !ok {
		t.Error("overflow alias missed; the fallback slot was not installed")
	}

	// Re-aliasing an existing alias and aliasing a key that is already
	// canonical are both no-ops, not duplicates.
	c.putAlias(key("raw:doom", 70), primary, body)
	c.putAlias(primary, primary, body)
	if c.aliasLen() != maxAliasesPerEntry {
		t.Errorf("aliasLen = %d after no-op re-aliases, want %d", c.aliasLen(), maxAliasesPerEntry)
	}

	cold := newResultCache(0)
	cold.putAlias(key("raw:evaluate", 1), key("evaluate", 2), body)
	if cold.len() != 0 || cold.aliasLen() != 0 {
		t.Error("zero-capacity cache stored an alias")
	}
}

// TestCacheAliasCapacityPressure floods a small cache with alias pairs
// and checks the invariant the fix establishes: the number of
// capacity-consuming entries never exceeds the configured capacity, and
// the most recent pair always hits.
func TestCacheAliasCapacityPressure(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 20; i++ {
		k := key("search:throughput", byte(i))
		r := key("raw:search:throughput", byte(100+i))
		body := []byte(fmt.Sprintf("body-%d\n", i))
		c.put(k, body)
		c.putAlias(r, k, body)
		if c.len() > 3 {
			t.Fatalf("round %d: %d entries exceed capacity 3", i, c.len())
		}
		if _, ok := c.get(k); !ok {
			t.Fatalf("round %d: fresh primary missed", i)
		}
		if _, ok := c.get(r); !ok {
			t.Fatalf("round %d: fresh alias missed", i)
		}
	}
	if c.aliasLen() > 3 {
		t.Errorf("aliasLen = %d, exceeds the live primaries", c.aliasLen())
	}
}
