package server

// Session endpoints: the stateful transport over the engine's
// session:* op family.
//
//	POST   /v1/session             open a session from a scenario body
//	POST   /v1/session/{id}/delta  apply one codec.Delta
//	POST   /v1/session/{id}/close  close the session
//	DELETE /v1/session/{id}        alias for close
//
// Sessions are deliberately OUTSIDE the content-addressed serving core:
// a delta mutates server-side state, so its response depends on the
// session's history, not just the request bytes — caching or
// singleflight-coalescing it would be wrong by construction. What the
// session path does share with the compute path is the drain gate, the
// pooled body reader, admission control (open and delta water-fill, so
// they take a worker slot), the per-request deadline, and the tracing
// middleware's request IDs.

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	"closnet/internal/codec"
	"closnet/internal/engine"
)

// handleSessionOpen serves POST /v1/session.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.reply(w, engine.OpSessionOpen, http.StatusMethodNotAllowed, codec.ErrorBody("POST only"), "", start)
		return
	}
	if !s.beginRequest() {
		s.reply(w, engine.OpSessionOpen, http.StatusServiceUnavailable, codec.ErrorBody("draining"), "", start)
		return
	}
	defer s.endRequest()

	body, releaseBody, err := readBody(w, r, s.opts.MaxBody)
	if err != nil {
		s.reply(w, engine.OpSessionOpen, http.StatusRequestEntityTooLarge, codec.ErrorBody("request body too large"), "", start)
		return
	}
	defer releaseBody()
	scen, err := codec.Decode(body)
	if err != nil {
		s.reply(w, engine.OpSessionOpen, http.StatusBadRequest, codec.ErrorBody(err.Error()), "", start)
		return
	}

	s.runSession(w, r, engine.OpSessionOpen, start, func(ctx context.Context) (any, error) {
		return s.eng.Sessions().Open(ctx, scen)
	})
}

// handleSession serves the /v1/session/{id}... routes.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rest := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, action, _ := strings.Cut(rest, "/")
	if id == "" || strings.Contains(action, "/") {
		s.reply(w, "session", http.StatusNotFound, codec.ErrorBody("unknown session route"), "", start)
		return
	}

	switch {
	case action == "" && r.Method == http.MethodDelete,
		action == "close" && r.Method == http.MethodPost:
		if !s.beginRequest() {
			s.reply(w, engine.OpSessionClose, http.StatusServiceUnavailable, codec.ErrorBody("draining"), "", start)
			return
		}
		defer s.endRequest()
		// Close is a table delete — no admission slot needed.
		resp, err := s.eng.Sessions().Close(r.Context(), id)
		if err != nil {
			status, body := mapSessionError(err)
			s.reply(w, engine.OpSessionClose, status, body, "", start)
			return
		}
		s.replySession(w, engine.OpSessionClose, resp, start)

	case action == "delta" && r.Method == http.MethodPost:
		if !s.beginRequest() {
			s.reply(w, engine.OpSessionDelta, http.StatusServiceUnavailable, codec.ErrorBody("draining"), "", start)
			return
		}
		defer s.endRequest()
		body, releaseBody, err := readBody(w, r, s.opts.MaxBody)
		if err != nil {
			s.reply(w, engine.OpSessionDelta, http.StatusRequestEntityTooLarge, codec.ErrorBody("request body too large"), "", start)
			return
		}
		defer releaseBody()
		d, err := codec.DecodeDelta(body)
		if err != nil {
			s.reply(w, engine.OpSessionDelta, http.StatusBadRequest, codec.ErrorBody(err.Error()), "", start)
			return
		}
		s.runSession(w, r, engine.OpSessionDelta, start, func(ctx context.Context) (any, error) {
			return s.eng.Sessions().Delta(ctx, id, d)
		})

	case action == "" || action == "close" || action == "delta":
		allow := http.MethodPost
		if action == "" {
			allow = http.MethodDelete
		}
		w.Header().Set("Allow", allow)
		s.reply(w, "session", http.StatusMethodNotAllowed, codec.ErrorBody(allow+" only"), "", start)

	default:
		s.reply(w, "session", http.StatusNotFound, codec.ErrorBody("unknown session route"), "", start)
	}
}

// runSession runs one state-mutating session call under admission
// control and the per-request deadline, then replies with its JSON
// body. The call is NOT cached or coalesced — see the package comment
// above.
func (s *Server) runSession(w http.ResponseWriter, r *http.Request, op string, start time.Time, fn func(ctx context.Context) (any, error)) {
	if err := s.admit.acquire(r.Context()); err != nil {
		if errors.Is(err, errSaturated) {
			s.mRejects.Inc()
			s.reply(w, op, http.StatusTooManyRequests, codec.ErrorBody("server saturated; retry later"), "", start)
			return
		}
		s.reply(w, op, http.StatusServiceUnavailable, codec.ErrorBody(err.Error()), "", start)
		return
	}
	defer s.admit.release()

	ctx := r.Context()
	if t := s.opts.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	resp, err := fn(ctx)
	if err != nil {
		status, body := mapSessionError(err)
		s.reply(w, op, status, body, "", start)
		return
	}
	s.replySession(w, op, resp, start)
}

// replySession encodes one successful session response.
func (s *Server) replySession(w http.ResponseWriter, op string, resp any, start time.Time) {
	body, err := codec.MarshalBody(resp)
	if err != nil {
		s.reply(w, op, http.StatusInternalServerError, codec.ErrorBody(err.Error()), "", start)
		return
	}
	s.reply(w, op, http.StatusOK, body, "", start)
}

// mapSessionError maps a session-layer failure to its HTTP shape: a
// full table sheds load like a saturated pool (429), a missing session
// is addressable state that isn't there (404), a delta the live session
// cannot apply is 422, deadline and cancellation mirror the compute
// path.
func mapSessionError(err error) (int, []byte) {
	switch {
	case errors.Is(err, engine.ErrSessionTableFull):
		return http.StatusTooManyRequests, codec.ErrorBody(err.Error())
	case errors.Is(err, engine.ErrSessionNotFound):
		return http.StatusNotFound, codec.ErrorBody(err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codec.ErrorBody("session deadline exceeded")
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, codec.ErrorBody("request cancelled")
	}
	return http.StatusUnprocessableEntity, codec.ErrorBody(err.Error())
}
