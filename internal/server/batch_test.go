package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"closnet/internal/corpus"
)

// batchEnvelope renders a /v1/batch request over the given scenario
// payloads, one item per scenario, with the given per-item op.
func batchEnvelope(t *testing.T, op string, scenarios ...[]byte) string {
	t.Helper()
	var b bytes.Buffer
	b.WriteString(`{"items":[`)
	for i, s := range scenarios {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"op":%q,"scenario":%s}`, op, s)
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestBatchMatchesSingleCalls is the transport half of the batch
// contract: POST /v1/batch of N scenarios returns exactly the N
// single-call bodies, concatenated in request order.
func TestBatchMatchesSingleCalls(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	bodies, names, err := corpus.Build(3, []string{"theorem34k2", "theorem42", "theorem43"})
	if err != nil {
		t.Fatal(err)
	}

	var want bytes.Buffer
	for i, scen := range bodies {
		resp, single := post(t, ts.URL+"/v1/evaluate", string(scen))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single %s: status %d, body %s", names[i], resp.StatusCode, single)
		}
		want.Write(single)
	}

	resp, got := post(t, ts.URL+"/v1/batch", batchEnvelope(t, "evaluate", bodies...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Closnet-Batch-Items") != "3" {
		t.Errorf("X-Closnet-Batch-Items = %q, want 3", resp.Header.Get("X-Closnet-Batch-Items"))
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("batch body is not the concatenation of the single-call bodies:\ngot:  %s\nwant: %s", got, want.Bytes())
	}
}

// TestBatchEnvelopeDefaultOp checks the envelope-level op applies to
// items that carry none, defaulting to evaluate when both are absent.
func TestBatchEnvelopeDefaultOp(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	bodies, _, err := corpus.Build(3, []string{"theorem42"})
	if err != nil {
		t.Fatal(err)
	}

	_, single := post(t, ts.URL+"/v1/doom", string(bodies[0]))
	envelope := fmt.Sprintf(`{"op":"doom","items":[{"scenario":%s}]}`, bodies[0])
	resp, got := post(t, ts.URL+"/v1/batch", envelope)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, single) {
		t.Errorf("envelope-op batch body differs from /v1/doom body:\ngot:  %s\nwant: %s", got, single)
	}

	_, single = post(t, ts.URL+"/v1/evaluate", string(bodies[0]))
	resp, got = post(t, ts.URL+"/v1/batch", fmt.Sprintf(`{"items":[{"scenario":%s}]}`, bodies[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-op batch: status %d, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, single) {
		t.Errorf("default-op batch body differs from /v1/evaluate body")
	}
}

// TestBatchUnderConcurrentLoad races batches against overlapping single
// calls for the same content addresses; every response must stay
// byte-identical to the cold bodies. With -race on, this exercises the
// batch fan-out's cache and singleflight participation.
func TestBatchUnderConcurrentLoad(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 4})
	bodies, _, err := corpus.Build(3, []string{"theorem34k2", "theorem34k8", "theorem42"})
	if err != nil {
		t.Fatal(err)
	}

	var want bytes.Buffer
	singles := make([][]byte, len(bodies))
	for i, scen := range bodies {
		_, single := post(t, ts.URL+"/v1/evaluate", string(scen))
		singles[i] = single
		want.Write(single)
	}
	envelope := batchEnvelope(t, "evaluate", bodies...)

	const rounds = 6
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			resp, got := post(t, ts.URL+"/v1/batch", envelope)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch under load: status %d, body %s", resp.StatusCode, got)
				return
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("batch body drifted under concurrent load")
			}
		}()
		go func(i int) {
			defer wg.Done()
			resp, got := post(t, ts.URL+"/v1/evaluate", string(bodies[i]))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("single under load: status %d", resp.StatusCode)
				return
			}
			if !bytes.Equal(got, singles[i]) {
				t.Errorf("single body drifted under concurrent load")
			}
		}(r % len(bodies))
	}
	wg.Wait()
}

// TestBatchItemFailure checks per-item error isolation: a bad item
// yields its single-call error body in its slot, the siblings still
// succeed, and the envelope reports 207 with the error count.
func TestBatchItemFailure(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	bodies, _, err := corpus.Build(3, []string{"theorem42"})
	if err != nil {
		t.Fatal(err)
	}
	_, single := post(t, ts.URL+"/v1/evaluate", string(bodies[0]))

	envelope := fmt.Sprintf(
		`{"items":[{"scenario":%s},{"op":"fastest","scenario":%s},{"scenario":{"tors":0}}]}`,
		bodies[0], bodies[0])
	resp, got := post(t, ts.URL+"/v1/batch", envelope)
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("partial-failure batch: status %d, want 207; body %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Closnet-Batch-Errors") != "2" {
		t.Errorf("X-Closnet-Batch-Errors = %q, want 2", resp.Header.Get("X-Closnet-Batch-Errors"))
	}

	lines := bytes.SplitAfter(got, []byte("\n"))
	lines = lines[:len(lines)-1] // trailing empty split
	if len(lines) != 3 {
		t.Fatalf("batch body has %d lines, want 3: %s", len(lines), got)
	}
	if !bytes.Equal(lines[0], single) {
		t.Errorf("healthy item body differs from its single call:\ngot:  %s\nwant: %s", lines[0], single)
	}
	for i, line := range lines[1:] {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &e); err != nil || e.Error == "" {
			t.Errorf("failed item %d carries no error body: %s", i+1, line)
		}
	}
}

// TestBatchCacheParticipation verifies batch items share the result
// cache with single calls in both directions.
func TestBatchCacheParticipation(t *testing.T) {
	_, ts, reg := newTestServer(t, Options{Workers: 2})
	bodies, _, err := corpus.Build(3, []string{"theorem42", "theorem43"})
	if err != nil {
		t.Fatal(err)
	}

	// Batch computes both; the follow-up single calls must be hits.
	resp, got := post(t, ts.URL+"/v1/batch", batchEnvelope(t, "evaluate", bodies...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, got)
	}
	if misses := reg.Snapshot().Counters["server.cache.misses"]; misses != 2 {
		t.Errorf("cold batch caused %d misses, want 2", misses)
	}
	for _, scen := range bodies {
		resp, _ := post(t, ts.URL+"/v1/evaluate", string(scen))
		if state := resp.Header.Get("X-Closnet-Cache"); state != "hit" {
			t.Errorf("single call after batch: cache %q, want hit", state)
		}
	}
	// And the reverse: a second batch is all hits.
	before := reg.Snapshot().Counters["server.cache.misses"]
	post(t, ts.URL+"/v1/batch", batchEnvelope(t, "evaluate", bodies...))
	if after := reg.Snapshot().Counters["server.cache.misses"]; after != before {
		t.Errorf("warm batch caused %d new misses, want 0", after-before)
	}
}

// TestBatchRejectsBadEnvelopes covers the envelope-level error paths.
func TestBatchRejectsBadEnvelopes(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1, MaxBatchItems: 2})

	resp, _ := post(t, ts.URL+"/v1/batch", "{not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed envelope: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/batch", `{"items":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	bodies, _, err := corpus.Build(3, []string{"theorem42"})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = post(t, ts.URL+"/v1/batch", batchEnvelope(t, "evaluate", bodies[0], bodies[0], bodies[0]))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: status %d, want 405", getResp.StatusCode)
	}
}
