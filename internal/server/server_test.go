package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"closnet/internal/obs"
)

// scenarioBody is a small C_3-shaped instance with six flows; its
// permuted sibling below must hash to the same content address.
const scenarioBody = `{
  "name": "integration",
  "tors": 3, "servers": 2, "middles": 3,
  "flows": [
    {"srcSwitch": 1, "srcServer": 1, "dstSwitch": 1, "dstServer": 1},
    {"srcSwitch": 1, "srcServer": 2, "dstSwitch": 1, "dstServer": 1},
    {"srcSwitch": 2, "srcServer": 1, "dstSwitch": 1, "dstServer": 2},
    {"srcSwitch": 2, "srcServer": 2, "dstSwitch": 2, "dstServer": 1},
    {"srcSwitch": 3, "srcServer": 1, "dstSwitch": 2, "dstServer": 2},
    {"srcSwitch": 3, "srcServer": 2, "dstSwitch": 3, "dstServer": 1}
  ],
  "demands": ["1", "1/2", "2/4", "1", "1", "3/3"]
}`

// scenarioBodyPermuted is the same instance spelled differently: flows
// reordered, demands following them, rate strings unnormalized, another
// name. Canonicalization must erase all of it.
const scenarioBodyPermuted = `{
  "name": "same-instance-other-spelling",
  "tors": 3, "servers": 2, "middles": 3,
  "flows": [
    {"srcSwitch": 3, "srcServer": 2, "dstSwitch": 3, "dstServer": 1},
    {"srcSwitch": 1, "srcServer": 2, "dstSwitch": 1, "dstServer": 1},
    {"srcSwitch": 2, "srcServer": 2, "dstSwitch": 2, "dstServer": 1},
    {"srcSwitch": 1, "srcServer": 1, "dstSwitch": 1, "dstServer": 1},
    {"srcSwitch": 3, "srcServer": 1, "dstSwitch": 2, "dstServer": 2},
    {"srcSwitch": 2, "srcServer": 1, "dstSwitch": 1, "dstServer": 2}
  ],
  "demands": ["1", "2/4", "1", "2/2", "1", "1/2"]
}`

// otherScenarioBody is a distinct instance (different flow set), used
// where tests need a second cache key.
const otherScenarioBody = `{
  "tors": 2, "servers": 1, "middles": 2,
  "flows": [
    {"srcSwitch": 1, "srcServer": 1, "dstSwitch": 2, "dstServer": 1},
    {"srcSwitch": 2, "srcServer": 1, "dstSwitch": 1, "dstServer": 1}
  ]
}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	if opts.Obs == nil {
		opts.Obs = &obs.Obs{Reg: reg}
	} else {
		reg = opts.Obs.Registry()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func TestEvaluateColdThenCachedByteIdentical(t *testing.T) {
	_, ts, reg := newTestServer(t, Options{Workers: 2})
	url := ts.URL + "/v1/evaluate"

	resp1, cold := post(t, url, scenarioBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold evaluate: status %d, body %s", resp1.StatusCode, cold)
	}
	if got := resp1.Header.Get("X-Closnet-Cache"); got != "miss" {
		t.Errorf("cold request cache header = %q, want miss", got)
	}

	resp2, warm := post(t, url, scenarioBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm evaluate: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Closnet-Cache"); got != "hit" {
		t.Errorf("warm request cache header = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("cached body differs from cold body:\ncold: %s\nwarm: %s", cold, warm)
	}

	// A permuted spelling of the same instance is the same content
	// address: served from cache, byte-identical.
	resp3, permuted := post(t, url, scenarioBodyPermuted)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("permuted evaluate: status %d, body %s", resp3.StatusCode, permuted)
	}
	if got := resp3.Header.Get("X-Closnet-Cache"); got != "hit" {
		t.Errorf("permuted request cache header = %q, want hit", got)
	}
	if !bytes.Equal(cold, permuted) {
		t.Errorf("permuted-instance body differs from cold body:\ncold: %s\nperm: %s", cold, permuted)
	}

	snap := reg.Snapshot()
	if snap.Counters["server.cache.hits"] != 2 {
		t.Errorf("cache hits = %d, want 2", snap.Counters["server.cache.hits"])
	}
	if snap.Counters["server.cache.misses"] != 1 {
		t.Errorf("cache misses = %d, want 1", snap.Counters["server.cache.misses"])
	}

	var decoded struct {
		Hash       string   `json:"hash"`
		Flows      int      `json:"flows"`
		Rates      []string `json:"rates"`
		Throughput string   `json:"throughput"`
	}
	if err := json.Unmarshal(cold, &decoded); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	if decoded.Flows != 6 || len(decoded.Rates) != 6 || decoded.Hash == "" || decoded.Throughput == "" {
		t.Errorf("unexpected response shape: %+v", decoded)
	}
}

func TestSearchAndDoomEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})

	for _, objective := range []string{"lex", "throughput", "relative"} {
		resp, body := post(t, ts.URL+"/v1/search?objective="+objective, scenarioBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %s: status %d, body %s", objective, resp.StatusCode, body)
		}
		var decoded struct {
			Objective  string   `json:"objective"`
			Assignment []int    `json:"assignment"`
			Rates      []string `json:"rates"`
			States     int      `json:"states"`
			MinRatio   string   `json:"minRatio"`
		}
		if err := json.Unmarshal(body, &decoded); err != nil {
			t.Fatalf("search %s: bad JSON: %v", objective, err)
		}
		if decoded.Objective != objective || len(decoded.Assignment) != 6 || decoded.States == 0 {
			t.Errorf("search %s: unexpected response %s", objective, body)
		}
		if objective == "relative" && decoded.MinRatio == "" {
			t.Errorf("relative search lost its min ratio: %s", body)
		}
	}

	// Default objective is lex; the explicit spelling shares its cache key.
	resp, _ := post(t, ts.URL+"/v1/search", scenarioBody)
	if got := resp.Header.Get("X-Closnet-Cache"); got != "hit" {
		t.Errorf("default-objective search cache header = %q, want hit", got)
	}

	resp, body := post(t, ts.URL+"/v1/doom", scenarioBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("doom: status %d, body %s", resp.StatusCode, body)
	}
	var doomResp struct {
		Assignment []int `json:"assignment"`
		Matched    int   `json:"matched"`
	}
	if err := json.Unmarshal(body, &doomResp); err != nil {
		t.Fatalf("doom: bad JSON: %v", err)
	}
	if len(doomResp.Assignment) != 6 || doomResp.Matched == 0 {
		t.Errorf("doom: unexpected response %s", body)
	}

	// relative needs demands; without them the instance is unservable.
	resp, _ = post(t, ts.URL+"/v1/search?objective=relative", otherScenarioBody)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("relative without demands: status %d, want 422", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})

	resp, _ := post(t, ts.URL+"/v1/evaluate", "{not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	resp, _ = post(t, ts.URL+"/v1/evaluate", `{"tors": 0, "servers": 1, "middles": 1, "flows": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid shape: status %d, want 400", resp.StatusCode)
	}

	resp, _ = post(t, ts.URL+"/v1/search?objective=fastest", scenarioBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown objective: status %d, want 400", resp.StatusCode)
	}

	getResp, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on compute endpoint: status %d, want 405", getResp.StatusCode)
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}

	post(t, ts.URL+"/v1/evaluate", scenarioBody)
	resp, body := func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r, b
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", resp.StatusCode)
	}
	var stats struct {
		Cache struct {
			Entries  int `json:"entries"`
			Aliases  int `json:"aliases"`
			Capacity int `json:"capacity"`
		} `json:"cache"`
		Admission struct {
			Workers int `json:"workers"`
		} `json:"admission"`
		Metrics obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("/v1/stats: bad JSON: %v", err)
	}
	// One computed result = one capacity-consuming cache entry (the
	// canonical-hash entry) plus one capacity-free raw-bytes alias.
	if stats.Cache.Entries != 1 || stats.Cache.Aliases != 1 || stats.Admission.Workers != 1 {
		t.Errorf("unexpected stats: %s", body)
	}
	if stats.Metrics.Counters["server.requests"] == 0 {
		t.Errorf("stats carry no request counter: %s", body)
	}
	// Evaluate requests run through the shared block evaluator, so the
	// core block counters and the engine pool counters surface here.
	if stats.Metrics.Counters["core.block_fills"] == 0 {
		t.Errorf("stats carry no core.block_fills counter: %s", body)
	}
	if stats.Metrics.Counters["engine.evaluator_builds"] == 0 {
		t.Errorf("stats carry no engine.evaluator_builds counter: %s", body)
	}
}

// TestCoalescing holds the flight leader at the compute gate while
// followers pile onto the same content address, then releases it and
// checks one computation served everyone byte-identically.
func TestCoalescing(t *testing.T) {
	const followers = 3
	gate := make(chan struct{})
	started := make(chan string, 8)
	s, ts, reg := newTestServer(t, Options{Workers: 4})
	s.computeStarted = func(op string) {
		started <- op
		<-gate
	}

	type outcome struct {
		status int
		cache  string
		body   []byte
	}
	results := make(chan outcome, followers+1)
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
				bytes.NewReader([]byte(scenarioBody)))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			results <- outcome{resp.StatusCode, resp.Header.Get("X-Closnet-Cache"), body}
		}()
	}

	launch()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the compute gate")
	}
	for i := 0; i < followers; i++ {
		launch()
	}
	// Followers count themselves into server.coalesced before waiting on
	// the flight; once all have, exactly one computation is in progress.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["server.coalesced"] < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined the flight",
				reg.Snapshot().Counters["server.coalesced"])
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	var bodies [][]byte
	counts := map[string]int{}
	for out := range results {
		if out.status != http.StatusOK {
			t.Errorf("status %d, want 200", out.status)
		}
		counts[out.cache]++
		bodies = append(bodies, out.body)
	}
	if counts["miss"] != 1 || counts["coalesced"] != followers {
		t.Errorf("cache headers = %v, want 1 miss and %d coalesced", counts, followers)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("coalesced body %d differs from leader's", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["server.coalesced"] != followers {
		t.Errorf("server.coalesced = %d, want %d", snap.Counters["server.coalesced"], followers)
	}
}

// TestSaturation429 fills the single worker slot and asserts the next
// distinct request is shed immediately with 429 + Retry-After.
func TestSaturation429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 1)
	s, ts, reg := newTestServer(t, Options{Workers: 1, QueueDepth: -1})
	s.computeStarted = func(op string) {
		started <- op
		<-gate
	}

	first := make(chan outcomeStatus, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
			bytes.NewReader([]byte(scenarioBody)))
		if err != nil {
			first <- outcomeStatus{err: err}
			return
		}
		resp.Body.Close()
		first <- outcomeStatus{status: resp.StatusCode}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never started computing")
	}

	// A different instance (different cache key, so no coalescing) now
	// finds pool and queue full.
	resp, body := post(t, ts.URL+"/v1/evaluate", otherScenarioBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After")
	}

	close(gate)
	out := <-first
	if out.err != nil {
		t.Fatalf("first request failed: %v", out.err)
	}
	if out.status != http.StatusOK {
		t.Errorf("first request: status %d, want 200", out.status)
	}
	if got := reg.Snapshot().Counters["server.rejects"]; got != 1 {
		t.Errorf("server.rejects = %d, want 1", got)
	}
}

type outcomeStatus struct {
	status int
	err    error
}

// TestDrain verifies graceful shutdown: Drain waits for the in-flight
// request, new requests get fast 503s meanwhile, and readiness flips.
func TestDrain(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 1)
	s, ts, _ := newTestServer(t, Options{Workers: 2})
	s.computeStarted = func(op string) {
		started <- op
		<-gate
	}

	first := make(chan outcomeStatus, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
			bytes.NewReader([]byte(scenarioBody)))
		if err != nil {
			first <- outcomeStatus{err: err}
			return
		}
		resp.Body.Close()
		first <- outcomeStatus{status: resp.StatusCode}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("request never started computing")
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()

	// Drain must not return while the request is still computing.
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v with a request in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New work is refused fast, and readiness reflects the drain.
	deadline := time.Now().Add(5 * time.Second)
	for !s.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := post(t, ts.URL+"/v1/evaluate", otherScenarioBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", resp.StatusCode)
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: status %d, want 503", ready.StatusCode)
	}

	close(gate)
	out := <-first
	if out.err != nil || out.status != http.StatusOK {
		t.Errorf("in-flight request: status %d err %v, want 200 nil — drain must not kill it", out.status, out.err)
	}
	if err := <-drainErr; err != nil {
		t.Errorf("Drain: %v", err)
	}

	// Drain on an idle server returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestRequestTimeout gives a heavy search a tiny deadline and expects
// 504: the context must reach the enumeration loop and stop it.
func TestRequestTimeout(t *testing.T) {
	heavy := heavySearchScenario()
	_, ts, _ := newTestServer(t, Options{Workers: 1, Timeout: 5 * time.Millisecond, MaxStates: 1 << 30})
	resp, body := post(t, ts.URL+"/v1/search?objective=lex", heavy)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-bound search: status %d, body %s, want 504", resp.StatusCode, body)
	}
}

// heavySearchScenario builds a C_4 instance with enough flows that lex
// search cannot finish in single-digit milliseconds.
func heavySearchScenario() string {
	type flow struct {
		SrcSwitch int `json:"srcSwitch"`
		SrcServer int `json:"srcServer"`
		DstSwitch int `json:"dstSwitch"`
		DstServer int `json:"dstServer"`
	}
	var flows []flow
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 3; j++ {
			flows = append(flows, flow{i, j, i%4 + 1, j})
		}
	}
	scen := map[string]any{
		"tors": 4, "servers": 3, "middles": 4,
		"flows": flows,
	}
	data, err := json.Marshal(scen)
	if err != nil {
		panic(fmt.Sprintf("marshal heavy scenario: %v", err))
	}
	return string(data)
}
