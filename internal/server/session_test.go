package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"closnet/internal/engine"
)

// sessionOpenBody is a 4-ToR Clos with two flows.
const sessionOpenBody = `{
  "tors": 4, "servers": 2, "middles": 2,
  "flows": [
    {"srcSwitch": 1, "srcServer": 1, "dstSwitch": 2, "dstServer": 1},
    {"srcSwitch": 3, "srcServer": 1, "dstSwitch": 4, "dstServer": 1}
  ],
  "assignment": [1, 2]
}`

func openSession(t *testing.T, ts *httptest.Server, body string) engine.SessionResponse {
	t.Helper()
	resp, data := post(t, ts.URL+"/v1/session", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d, body %s", resp.StatusCode, data)
	}
	var sr engine.SessionResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("open response: %v", err)
	}
	return sr
}

// TestSessionLifecycleMatchesEvaluate drives a session over HTTP —
// open, eight deltas, close — and checks the final state against a
// one-shot /v1/evaluate of the end state: same hash, rates, assignment
// and throughput.
func TestSessionLifecycleMatchesEvaluate(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	sr := openSession(t, ts, sessionOpenBody)
	if sr.Op != engine.OpSessionOpen || len(sr.Flows) != 2 {
		t.Fatalf("open response %+v", sr)
	}

	deltas := []string{
		`{"op":"arrive","flow":{"srcSwitch":1,"srcServer":2,"dstSwitch":3,"dstServer":2},"middle":1}`,
		`{"op":"arrive","flow":{"srcSwitch":2,"srcServer":1,"dstSwitch":4,"dstServer":2},"middle":2}`,
		`{"op":"reroute","id":0,"middle":2}`,
		`{"op":"depart","id":1}`,
		`{"op":"arrive","flow":{"srcSwitch":4,"srcServer":1,"dstSwitch":1,"dstServer":1},"middle":1}`,
		`{"op":"reroute","id":2,"middle":2}`,
		`{"op":"depart","id":3}`,
		`{"op":"reroute","id":4,"middle":1}`,
	}
	var last engine.SessionResponse
	for i, d := range deltas {
		resp, data := post(t, ts.URL+"/v1/session/"+sr.Session+"/delta", d)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: status %d, body %s", i, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &last); err != nil {
			t.Fatal(err)
		}
		if last.Seq != i+1 {
			t.Fatalf("delta %d: seq %d", i, last.Seq)
		}
		if resp.Header.Get("X-Closnet-Request-Id") == "" {
			t.Error("delta response missing request id header")
		}
	}

	// Live flows: 0 (rerouted to 2), 2 (rerouted to 2), 4 (rerouted
	// to 1); flows 1 and 3 departed.
	endState := `{
	  "tors": 4, "servers": 2, "middles": 2,
	  "flows": [
	    {"srcSwitch": 1, "srcServer": 1, "dstSwitch": 2, "dstServer": 1},
	    {"srcSwitch": 1, "srcServer": 2, "dstSwitch": 3, "dstServer": 2},
	    {"srcSwitch": 4, "srcServer": 1, "dstSwitch": 1, "dstServer": 1}
	  ],
	  "assignment": [2, 2, 1]
	}`
	resp, data := post(t, ts.URL+"/v1/evaluate", endState)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-shot evaluate: status %d, body %s", resp.StatusCode, data)
	}
	var ev struct {
		Hash       string   `json:"hash"`
		Assignment []int    `json:"assignment"`
		Rates      []string `json:"rates"`
		Throughput string   `json:"throughput"`
	}
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if last.Hash != ev.Hash {
		t.Errorf("session hash %s != evaluate hash %s", last.Hash, ev.Hash)
	}
	if len(last.Rates) != len(ev.Rates) {
		t.Fatalf("session rates %v != evaluate rates %v", last.Rates, ev.Rates)
	}
	for i := range ev.Rates {
		if last.Rates[i] != ev.Rates[i] || last.Assignment[i] != ev.Assignment[i] {
			t.Errorf("position %d: session (%s, %d) != evaluate (%s, %d)",
				i, last.Rates[i], last.Assignment[i], ev.Rates[i], ev.Assignment[i])
		}
	}
	if last.Throughput != ev.Throughput {
		t.Errorf("session throughput %s != evaluate %s", last.Throughput, ev.Throughput)
	}

	resp, data = post(t, ts.URL+"/v1/session/"+sr.Session+"/close", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d, body %s", resp.StatusCode, data)
	}
	var cr engine.SessionCloseResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Closed || cr.Deltas != len(deltas) {
		t.Fatalf("close response %+v", cr)
	}
}

// TestSessionHTTPErrors pins the error mapping: 404 for unknown
// sessions and routes, 400 for malformed deltas, 422 for deltas the
// session cannot apply, 405 for wrong methods.
func TestSessionHTTPErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	sr := openSession(t, ts, sessionOpenBody)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"unknown session delta", "POST", "/v1/session/deadbeef/delta", `{"op":"depart","id":0}`, 404},
		{"unknown session close", "POST", "/v1/session/deadbeef/close", "", 404},
		{"unknown route", "POST", "/v1/session/" + sr.Session + "/frob", "", 404},
		{"deep route", "POST", "/v1/session/" + sr.Session + "/delta/extra", "", 404},
		{"malformed delta", "POST", "/v1/session/" + sr.Session + "/delta", `{"op":"warp"}`, 400},
		{"bad open body", "POST", "/v1/session", `{"tors": 0}`, 400},
		{"depart unknown id", "POST", "/v1/session/" + sr.Session + "/delta", `{"op":"depart","id":99}`, 422},
		{"arrive bad middle", "POST", "/v1/session/" + sr.Session + "/delta", `{"op":"arrive","flow":{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1},"middle":9}`, 422},
		{"get on open", "GET", "/v1/session", "", 405},
		{"get on delta", "GET", "/v1/session/" + sr.Session + "/delta", "", 405},
		{"post on session id", "POST", "/v1/session/" + sr.Session, "", 405},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.body != "" {
			req, err = http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestSessionDeleteAlias: DELETE /v1/session/{id} closes the session.
func TestSessionDeleteAlias(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	sr := openSession(t, ts, sessionOpenBody)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+sr.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE close: status %d", resp.StatusCode)
	}
	// Second close → 404.
	resp, err = http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionTableFull429: opens past MaxSessions shed load with 429.
func TestSessionTableFull429(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2, MaxSessions: 2})
	openSession(t, ts, sessionOpenBody)
	openSession(t, ts, sessionOpenBody)
	resp, data := post(t, ts.URL+"/v1/session", sessionOpenBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3rd open: status %d, body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestSessionStats: /v1/stats reports the session block.
func TestSessionStats(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2, MaxSessions: 8, SessionTTL: time.Minute})
	sr := openSession(t, ts, sessionOpenBody)
	post(t, ts.URL+"/v1/session/"+sr.Session+"/delta", `{"op":"reroute","id":0,"middle":2}`)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Sessions engine.SessionStats `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sessions.Open != 1 || st.Sessions.Opened != 1 || st.Sessions.Deltas != 1 {
		t.Errorf("session stats %+v", st.Sessions)
	}
	if st.Sessions.Capacity != 8 || st.Sessions.TTLMs != 60_000 {
		t.Errorf("session config in stats %+v", st.Sessions)
	}
}

// TestSessionDrainRefuses: a draining server turns session traffic away
// with 503.
func TestSessionDrainRefuses(t *testing.T) {
	s, ts, _ := newTestServer(t, Options{Workers: 2})
	sr := openSession(t, ts, sessionOpenBody)
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ path, body string }{
		{"/v1/session", sessionOpenBody},
		{"/v1/session/" + sr.Session + "/delta", `{"op":"depart","id":0}`},
		{"/v1/session/" + sr.Session + "/close", ""},
	} {
		resp, _ := post(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s during drain: status %d, want 503", c.path, resp.StatusCode)
		}
	}
}
