// Package gen is the scenario-generation subsystem: it turns a named
// topology family (Clos, oversubscribed Clos, fat-tree, Benes) plus a
// stochastic traffic-matrix model into self-contained codec.Scenario
// instances, so every layer that consumes scenarios — the evaluator and
// search engines, the LP certifiers, closnetd, the golden suites —
// exercises generated families through the exact same pipeline as the
// paper's adversarial constructions.
//
// The two halves:
//
//   - Spec names a fabric family and its shape in codec terms
//     (tors, servers, middles), derived from the family's natural
//     parameter: Clos size n, fat-tree pod count k, Benes port count N,
//     or an oversubscription ratio. topology.BuildFamily re-derives and
//     cross-checks the structure on every decode, so a generated
//     scenario can never silently disagree with its fabric.
//
//   - TrafficConfig draws a demand matrix over the server grid —
//     uniform, gravity or hotspot, with a sparsity knob and an
//     elephant/mice demand mix — and lowers it to an unsplittable flow
//     set: one flow per nonzero entry, in deterministic row-major
//     order, with exact rational demands. Generation is a pure function
//     of (Spec, TrafficConfig): the same seed always yields the
//     byte-identical canonical scenario.
package gen

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"closnet/internal/codec"
	"closnet/internal/topology"
)

// Spec names a generated scenario's topology family and shape, in the
// (tors, servers, middles) coordinates carried by codec.Scenario.
type Spec struct {
	// Family is one of topology.FamilyNames(); empty means Clos.
	Family string
	// Tors, Servers, Middles are the codec shape: ToRs per side,
	// servers per ToR, and path choices per server pair.
	Tors, Servers, Middles int
}

// Build materializes the spec's fabric, validating family/shape
// consistency.
func (sp Spec) Build() (topology.Fabric, error) {
	return topology.BuildFamily(sp.Family, sp.Tors, sp.Servers, sp.Middles)
}

// label renders the spec's family and natural parameter for scenario
// names.
func (sp Spec) label() string {
	switch sp.Family {
	case topology.FamilyFatTree:
		return fmt.Sprintf("fattree-k%d", 2*sp.Servers)
	case topology.FamilyBenes:
		return fmt.Sprintf("benes-n%d", 2*sp.Tors)
	default:
		return fmt.Sprintf("clos-t%d-s%d-m%d", sp.Tors, sp.Servers, sp.Middles)
	}
}

// ClosSpec is the paper's three-stage Clos C_n: 2n ToRs of n servers,
// n middles.
func ClosSpec(n int) (Spec, error) {
	c, err := topology.NewClos(n)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Family: topology.FamilyClos, Tors: c.NumToRs(), Servers: c.ServersPerToR(), Middles: c.Size()}, nil
}

// GeneralClosSpec is an arbitrary-shape Clos.
func GeneralClosSpec(tors, servers, middles int) (Spec, error) {
	c, err := topology.NewGeneralClos(tors, servers, middles)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Family: topology.FamilyClos, Tors: c.NumToRs(), Servers: c.ServersPerToR(), Middles: c.Size()}, nil
}

// OversubscribedClosSpec thins the middle stage by the sRatio:mRatio
// oversubscription ratio (see topology.NewOversubscribedClos).
func OversubscribedClosSpec(tors, servers, sRatio, mRatio int) (Spec, error) {
	c, err := topology.NewOversubscribedClos(tors, servers, sRatio, mRatio)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Family: topology.FamilyClos, Tors: c.NumToRs(), Servers: c.ServersPerToR(), Middles: c.Size()}, nil
}

// FatTreeSpec is the k-pod fat-tree.
func FatTreeSpec(k int) (Spec, error) {
	ft, err := topology.NewFatTree(k)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Family: topology.FamilyFatTree, Tors: ft.NumToRs(), Servers: ft.ServersPerToR(), Middles: ft.Size()}, nil
}

// BenesSpec is the N-port Benes network.
func BenesSpec(ports int) (Spec, error) {
	b, err := topology.NewBenes(ports)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Family: topology.FamilyBenes, Tors: b.NumToRs(), Servers: b.ServersPerToR(), Middles: b.Size()}, nil
}

// Traffic-matrix models.
const (
	ModelUniform = "uniform"
	ModelGravity = "gravity"
	ModelHotspot = "hotspot"
)

// Models returns the known traffic-model names.
func Models() []string { return []string{ModelUniform, ModelGravity, ModelHotspot} }

// TrafficConfig parameterizes the stochastic traffic-matrix generator.
// The zero value of every field has a sensible default (see
// normalized).
type TrafficConfig struct {
	// Model is one of Models(); empty means uniform.
	Model string
	// Flows is the number of nonzero matrix entries to draw (distinct
	// (source, destination) server pairs). Zero derives the count from
	// Sparsity; both zero defaults to one flow per destination server.
	Flows int
	// Sparsity ∈ [0, 1) is the fraction of server pairs left without
	// traffic when Flows is zero: count = round((1-Sparsity)·pairs).
	Sparsity float64
	// ElephantFraction ∈ [0, 1] is the fraction of drawn flows carrying
	// the elephant demand; the rest are mice. Hotspot aims its elephants
	// at the hot destination.
	ElephantFraction float64
	// Elephant and Mice are the two demand values as exact rationals.
	// Nil defaults: elephant 1, mouse 1/10.
	Elephant, Mice *big.Rat
	// Seed drives all randomness; equal configs generate byte-identical
	// scenarios.
	Seed int64
}

func (tc TrafficConfig) normalized(numServers int) (TrafficConfig, error) {
	if tc.Model == "" {
		tc.Model = ModelUniform
	}
	known := false
	for _, m := range Models() {
		if tc.Model == m {
			known = true
			break
		}
	}
	if !known {
		return tc, fmt.Errorf("gen: unknown traffic model %q (known: %v)", tc.Model, Models())
	}
	if tc.Sparsity < 0 || tc.Sparsity >= 1 {
		return tc, fmt.Errorf("gen: sparsity %v outside [0,1)", tc.Sparsity)
	}
	if tc.ElephantFraction < 0 || tc.ElephantFraction > 1 {
		return tc, fmt.Errorf("gen: elephant fraction %v outside [0,1]", tc.ElephantFraction)
	}
	pairs := numServers * numServers
	if tc.Flows == 0 {
		if tc.Sparsity > 0 {
			tc.Flows = int(math.Round((1 - tc.Sparsity) * float64(pairs)))
		} else {
			tc.Flows = numServers
		}
	}
	if tc.Flows < 0 {
		return tc, fmt.Errorf("gen: negative flow count %d", tc.Flows)
	}
	if tc.Flows > pairs {
		return tc, fmt.Errorf("gen: %d flows exceed the %d server pairs", tc.Flows, pairs)
	}
	if tc.Elephant == nil {
		tc.Elephant = big.NewRat(1, 1)
	}
	if tc.Mice == nil {
		tc.Mice = big.NewRat(1, 10)
	}
	if tc.Elephant.Sign() <= 0 || tc.Mice.Sign() <= 0 {
		return tc, fmt.Errorf("gen: demands must be positive")
	}
	return tc, nil
}

// Matrix is a sparse demand matrix over the dense server grid of a
// fabric side: Demands[p] is the exact offered demand of pair
// Pairs[p] = (src, dst), 0-based dense server indices, in row-major
// (src, dst) order.
type Matrix struct {
	Servers int // per side
	Pairs   [][2]int
	Demands []*big.Rat
}

// Traffic draws the demand matrix of tc over a side of numServers
// servers. The draw is deterministic in tc (including tc.Seed).
func Traffic(numServers int, tc TrafficConfig) (*Matrix, error) {
	if numServers < 1 {
		return nil, fmt.Errorf("gen: need at least one server, got %d", numServers)
	}
	tc, err := tc.normalized(numServers)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	m := &Matrix{Servers: numServers}

	// Pair selection: the first tc.Flows entries of a uniform
	// permutation of all pairs — distinct pairs, deterministic count.
	// The hotspot model first reserves its hot column.
	pairs := numServers * numServers
	selected := make([][2]int, 0, tc.Flows)
	used := make(map[int]bool, tc.Flows)
	add := func(pair int) {
		if !used[pair] {
			used[pair] = true
			selected = append(selected, [2]int{pair / numServers, pair % numServers})
		}
	}
	numHot := 0
	if tc.Model == ModelHotspot {
		// The hot destination absorbs the elephant share of the flows,
		// one per distinct source.
		hotDst := rng.Intn(numServers)
		numHot = int(math.Round(tc.ElephantFraction * float64(tc.Flows)))
		if numHot > numServers {
			numHot = numServers
		}
		for _, src := range rng.Perm(numServers)[:numHot] {
			add(src*numServers + hotDst)
		}
	}
	for _, pair := range rng.Perm(pairs) {
		if len(selected) == tc.Flows {
			break
		}
		add(pair)
	}

	// Demand assignment, per model:
	//   uniform/hotspot — elephants (hotspot: the hot flows; uniform: an
	//     ElephantFraction coin per flow) at the elephant demand, the
	//     rest at the mouse demand;
	//   gravity — demand(s, d) ∝ mass(s)·mass(d), scaled so the largest
	//     selected product carries the elephant demand exactly.
	demands := make([]*big.Rat, len(selected))
	switch tc.Model {
	case ModelGravity:
		mass := make([]int64, numServers)
		for s := range mass {
			mass[s] = int64(rng.Intn(9) + 1)
		}
		var maxProd int64 = 1
		for _, p := range selected {
			if prod := mass[p[0]] * mass[p[1]]; prod > maxProd {
				maxProd = prod
			}
		}
		for i, p := range selected {
			d := new(big.Rat).SetFrac64(mass[p[0]]*mass[p[1]], maxProd)
			demands[i] = d.Mul(d, tc.Elephant)
		}
	case ModelHotspot:
		for i := range selected {
			if i < numHot {
				demands[i] = new(big.Rat).Set(tc.Elephant)
			} else {
				demands[i] = new(big.Rat).Set(tc.Mice)
			}
		}
	default: // ModelUniform
		for i := range selected {
			if rng.Float64() < tc.ElephantFraction {
				demands[i] = new(big.Rat).Set(tc.Elephant)
			} else {
				demands[i] = new(big.Rat).Set(tc.Mice)
			}
		}
	}

	// Lower to row-major order so the matrix (and everything derived
	// from it) has one canonical form independent of draw order.
	order := make([]int, len(selected))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := selected[order[j]], selected[order[j-1]]
			if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
				break
			}
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, i := range order {
		m.Pairs = append(m.Pairs, selected[i])
		m.Demands = append(m.Demands, demands[i])
	}
	return m, nil
}

// Scenario generates the codec scenario of spec under tc: the traffic
// matrix lowered to one unsplittable flow per nonzero entry, with exact
// rational demands and no assignment (routing is the consumer's job).
// The scenario name encodes the family, model and seed.
func Scenario(sp Spec, tc TrafficConfig) (*codec.Scenario, error) {
	if _, err := sp.Build(); err != nil {
		return nil, err
	}
	numServers := sp.Tors * sp.Servers
	m, err := Traffic(numServers, tc)
	if err != nil {
		return nil, err
	}
	model := tc.Model
	if model == "" {
		model = ModelUniform
	}
	s := &codec.Scenario{
		Name:     fmt.Sprintf("gen-%s-%s-f%d-seed%d", sp.label(), model, len(m.Pairs), tc.Seed),
		Topology: sp.Family,
		Tors:     sp.Tors,
		Servers:  sp.Servers,
		Middles:  sp.Middles,
	}
	for p, pair := range m.Pairs {
		src, dst := pair[0], pair[1]
		s.Flows = append(s.Flows, codec.FlowJSON{
			SrcSwitch: src/sp.Servers + 1,
			SrcServer: src%sp.Servers + 1,
			DstSwitch: dst/sp.Servers + 1,
			DstServer: dst%sp.Servers + 1,
		})
		s.Demands = append(s.Demands, m.Demands[p].RatString())
	}
	return s, nil
}
