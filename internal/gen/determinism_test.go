package gen_test

// Seed-determinism regression suite (ISSUE 9 satellite): a generated
// scenario is a pure function of (spec, traffic config) — same seed,
// byte-identical canonical encoding, across runs and across releases.
// The golden files under testdata/ pin the exact bytes; regenerate with
//
//	go test ./internal/gen -run TestSeedDeterminismGolden -update-golden
//
// after an intentional generator change (and say so in the change).

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"closnet/internal/codec"
	"closnet/internal/gen"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the seed-determinism golden files")

// goldenCases is the pinned generator surface: every traffic model over
// every topology family, at fixed shapes and seeds.
func goldenCases(t *testing.T) map[string]func() (*codec.Scenario, error) {
	t.Helper()
	cases := make(map[string]func() (*codec.Scenario, error))
	specs := map[string]func() (gen.Spec, error){
		"clos":    func() (gen.Spec, error) { return gen.ClosSpec(3) },
		"fattree": func() (gen.Spec, error) { return gen.FatTreeSpec(4) },
		"benes":   func() (gen.Spec, error) { return gen.BenesSpec(8) },
		"oversub": func() (gen.Spec, error) { return gen.OversubscribedClosSpec(4, 4, 2, 1) },
	}
	for sname, mkSpec := range specs {
		for _, model := range gen.Models() {
			sname, mkSpec, model := sname, mkSpec, model
			cases[sname+"-"+model] = func() (*codec.Scenario, error) {
				sp, err := mkSpec()
				if err != nil {
					return nil, err
				}
				return gen.Scenario(sp, gen.TrafficConfig{
					Model:            model,
					Flows:            5,
					ElephantFraction: 0.4,
					Seed:             42,
				})
			}
		}
	}
	return cases
}

// canonicalBytes encodes the canonical form of a scenario — the exact
// representation the golden files pin.
func canonicalBytes(t *testing.T, s *codec.Scenario) []byte {
	t.Helper()
	c, err := codec.Canonical(s)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	data, err := codec.Encode(c)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return append(data, '\n')
}

func TestSeedDeterminismGolden(t *testing.T) {
	for name, build := range goldenCases(t) {
		first, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		second, err := build()
		if err != nil {
			t.Fatalf("%s rebuild: %v", name, err)
		}
		got := canonicalBytes(t, first)
		if again := canonicalBytes(t, second); !bytes.Equal(got, again) {
			t.Errorf("%s: two same-seed builds differ", name)
			continue
		}
		path := filepath.Join("testdata", name+".golden.json")
		if *updateGolden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatalf("%s: write golden: %v", name, err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-golden): %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: canonical bytes drifted from golden %s\ngot:\n%s", name, path, got)
		}
	}
}

// TestSeedSensitivity: different seeds must produce different instances
// (content addresses differ) — the generator actually consumes its seed.
func TestSeedSensitivity(t *testing.T) {
	sp, err := gen.FatTreeSpec(4)
	if err != nil {
		t.Fatal(err)
	}
	hashes := make(map[[32]byte]int64)
	for seed := int64(1); seed <= 8; seed++ {
		s, err := gen.Scenario(sp, gen.TrafficConfig{Model: gen.ModelUniform, Flows: 6, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("seed %d hash: %v", seed, err)
		}
		if prev, dup := hashes[h]; dup {
			t.Errorf("seeds %d and %d collide on the same instance", prev, seed)
		}
		hashes[h] = seed
	}
}

// TestWorkloadGeneratorDeterminism: every registered workload generator
// is a pure function of its rng seed — two same-seed draws emit the
// identical flow sequence, and the Clos and macro-switch collections
// stay index-parallel.
func TestWorkloadGeneratorDeterminism(t *testing.T) {
	c, err := topology.NewClos(3)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := topology.NewMacroSwitch(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range workload.Generators() {
		a, err := g.Draw(rand.New(rand.NewSource(7)), c, ms, 12)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		b, err := g.Draw(rand.New(rand.NewSource(7)), c, ms, 12)
		if err != nil {
			t.Fatalf("%s rerun: %v", g.Name, err)
		}
		if len(a.Clos) != len(b.Clos) || len(a.Clos) != len(a.Macro) {
			t.Fatalf("%s: draw sizes differ (%d, %d, %d)", g.Name, len(a.Clos), len(b.Clos), len(a.Macro))
		}
		for fi := range a.Clos {
			if a.Clos[fi] != b.Clos[fi] || a.Macro[fi] != b.Macro[fi] {
				t.Errorf("%s: flow %d differs across same-seed draws", g.Name, fi)
				break
			}
		}
		other, err := g.Draw(rand.New(rand.NewSource(8)), c, ms, 12)
		if err != nil {
			t.Fatalf("%s seed 8: %v", g.Name, err)
		}
		same := len(other.Clos) == len(a.Clos)
		if same {
			for fi := range a.Clos {
				if a.Clos[fi] != other.Clos[fi] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 7 and 8 drew identical collections", g.Name)
		}
	}
}
