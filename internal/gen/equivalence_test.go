package gen_test

// Cross-family equivalence suite: the ISSUE's acceptance proof that
// every topology family — Clos, fat-tree, Benes, oversubscribed Clos —
// flows through the evaluator, the search strategies and the LP bound
// with no family-specific branches. For one small instance per family
// (the fixed-seed corpus scenarios, all with full spaces of at most a
// few thousand states) a hand-rolled full-space oracle establishes the
// true optimum, and every production strategy must reproduce it
// bit-identically.

import (
	"math/big"
	"testing"

	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/corpus"
	"closnet/internal/lp"
	"closnet/internal/search"
	"closnet/internal/topology"
)

// familyInstances builds one small corpus instance per topology family.
func familyInstances(t *testing.T) map[string]struct {
	c  topology.Fabric
	fs core.Collection
} {
	t.Helper()
	out := make(map[string]struct {
		c  topology.Fabric
		fs core.Collection
	})
	for _, name := range []string{"example23", "genfattree", "genbenes", "genoversub"} {
		scens, _, err := corpus.Scenarios(2, []string{name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, fs, _, _, err := scens[0].Build()
		if err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		out[name] = struct {
			c  topology.Fabric
			fs core.Collection
		}{c, fs}
	}
	return out
}

// oracle scans all n^|F| assignments with a plain base-n counter and
// an independent evaluation path (ClosRouting + MaxMinFair, not the
// incremental evaluator), returning the lex-max-min and max-throughput
// optima. It deliberately shares no enumeration or evaluation code
// with package search.
func oracle(t *testing.T, c topology.Fabric, fs core.Collection) (lexBest, tpBest core.Allocation, lexMA core.MiddleAssignment) {
	t.Helper()
	n := c.Size()
	ma := core.UniformAssignment(len(fs), 1)
	var tpVal *big.Rat
	for {
		r, err := core.ClosRouting(c, fs, ma)
		if err != nil {
			t.Fatalf("oracle routing %v: %v", ma, err)
		}
		a, err := core.MaxMinFair(c.Network(), fs, r)
		if err != nil {
			t.Fatalf("oracle waterfill %v: %v", ma, err)
		}
		if lexBest == nil || core.LexLess(lexBest, a) {
			lexBest = a
			lexMA = append(core.MiddleAssignment(nil), ma...)
		}
		if tp := core.Throughput(a); tpVal == nil || tpVal.Cmp(tp) < 0 {
			tpBest, tpVal = a, tp
		}
		// Advance the base-n odometer; done when it wraps.
		i := 0
		for ; i < len(ma); i++ {
			if ma[i] < n {
				ma[i]++
				break
			}
			ma[i] = 1
		}
		if i == len(ma) {
			return lexBest, tpBest, lexMA
		}
	}
}

// TestCrossFamilyOracle: every search strategy, on every family, finds
// an optimum matching the independent full-space oracle — sorted
// allocations identical as exact rationals for the lex objective,
// total throughput identical for the throughput objective.
func TestCrossFamilyOracle(t *testing.T) {
	for name, in := range familyInstances(t) {
		lexBest, tpBest, _ := oracle(t, in.c, in.fs)
		strategies := map[string]search.Options{
			"serial":     {Workers: 1, BlockSize: -1},
			"workers2":   {Workers: 2},
			"workers4":   {Workers: 4, BlockSize: 3},
			"pruned":     {Pruned: true},
			"full-space": {FullSpace: true, Workers: 2, BlockSize: 5},
		}
		for sname, opts := range strategies {
			lex, err := search.LexMaxMin(in.c, in.fs, opts)
			if err != nil {
				t.Fatalf("%s/%s lex: %v", name, sname, err)
			}
			if core.LexLess(lex.Allocation, lexBest) || core.LexLess(lexBest, lex.Allocation) {
				t.Errorf("%s/%s lex optimum %v != oracle %v",
					name, sname, lex.Allocation.SortedCopy(), lexBest.SortedCopy())
			}
			tp, err := search.ThroughputMaxMin(in.c, in.fs, opts)
			if err != nil {
				t.Fatalf("%s/%s throughput: %v", name, sname, err)
			}
			got, want := core.Throughput(tp.Allocation), core.Throughput(tpBest)
			if got.Cmp(want) != 0 {
				t.Errorf("%s/%s throughput %s != oracle %s", name, sname, got, want)
			}
		}
	}
}

// TestCrossFamilyEvaluatorAgreement: for each family, the incremental
// evaluator, the block evaluator and the reference routing+waterfill
// path produce identical allocations on every assignment of a sample.
func TestCrossFamilyEvaluatorAgreement(t *testing.T) {
	for name, in := range familyInstances(t) {
		ev, err := core.NewEvaluator(in.c, in.fs)
		if err != nil {
			t.Fatalf("%s evaluator: %v", name, err)
		}
		be, err := core.NewBlockEvaluator(in.c, in.fs)
		if err != nil {
			t.Fatalf("%s block evaluator: %v", name, err)
		}
		n, nf := in.c.Size(), len(in.fs)
		// A deterministic sample: uniform assignments plus a rolling one.
		var sample []core.MiddleAssignment
		for m := 1; m <= n; m++ {
			sample = append(sample, core.UniformAssignment(nf, m))
		}
		roll := make(core.MiddleAssignment, nf)
		for fi := range roll {
			roll[fi] = fi%n + 1
		}
		sample = append(sample, roll)
		for _, ma := range sample {
			ref, err := core.ClosMaxMinFair(in.c, in.fs, ma)
			if err != nil {
				t.Fatalf("%s reference %v: %v", name, ma, err)
			}
			got, err := ev.Eval(ma)
			if err != nil {
				t.Fatalf("%s eval %v: %v", name, ma, err)
			}
			if !ref.Equal(got) {
				t.Errorf("%s: evaluator %v != reference %v on %v", name, got, ref, ma)
			}
			flat := make([]int, nf)
			for fi, m := range ma {
				flat[fi] = m
			}
			br, err := be.EvalBlock(flat, 1)
			if err != nil {
				t.Fatalf("%s block eval %v: %v", name, ma, err)
			}
			if ba := br.Alloc(0); !ref.Equal(ba) {
				t.Errorf("%s: block evaluator %v != reference %v on %v", name, ba, ref, ma)
			}
		}
	}
}

// TestCrossFamilyLPBound: the splittable LP relaxation upper-bounds the
// best unsplittable throughput on every family, certified by the
// simplex dual.
func TestCrossFamilyLPBound(t *testing.T) {
	for name, in := range familyInstances(t) {
		_, tpBest, _ := oracle(t, in.c, in.fs)
		paths, err := lp.ClosAllPaths(in.c, in.fs)
		if err != nil {
			t.Fatalf("%s paths: %v", name, err)
		}
		bound, err := lp.SplittableThroughputBound(in.c.Network(), in.fs, paths)
		if err != nil {
			t.Fatalf("%s LP bound: %v", name, err)
		}
		if best := core.Throughput(tpBest); bound.Cmp(best) < 0 {
			t.Errorf("%s: splittable bound %s below unsplittable optimum %s", name, bound, best)
		}
	}
}

// TestCrossFamilyScenarioRoundTrip: each generated corpus scenario
// canonicalizes, hashes and rebuilds to the same instance — and the
// topology field survives the round trip.
func TestCrossFamilyScenarioRoundTrip(t *testing.T) {
	scens, names, err := corpus.Scenarios(2, []string{"genfattree", "genbenes", "genoversub"})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scens {
		data, err := codec.Encode(s)
		if err != nil {
			t.Fatalf("%s encode: %v", names[i], err)
		}
		back, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("%s decode: %v", names[i], err)
		}
		if back.Topology != s.Topology {
			t.Errorf("%s: topology %q round-tripped to %q", names[i], s.Topology, back.Topology)
		}
		h1, err := s.Hash()
		if err != nil {
			t.Fatalf("%s hash: %v", names[i], err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatalf("%s rehash: %v", names[i], err)
		}
		if h1 != h2 {
			t.Errorf("%s: hash changed across encode/decode", names[i])
		}
	}
}
