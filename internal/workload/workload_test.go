package workload

import (
	"math/rand"
	"testing"

	"closnet/internal/core"
	"closnet/internal/topology"
)

func pairTopologies(n int) (*topology.Clos, *topology.MacroSwitch) {
	return topology.MustClos(n), topology.MustMacroSwitch(n)
}

// checkPair validates both collections and their parallel structure.
func checkPair(t *testing.T, c *topology.Clos, ms *topology.MacroSwitch, p Pair) {
	t.Helper()
	if len(p.Clos) != len(p.Macro) {
		t.Fatalf("collection lengths differ: %d vs %d", len(p.Clos), len(p.Macro))
	}
	if err := p.Clos.Validate(c.Network()); err != nil {
		t.Fatalf("clos collection: %v", err)
	}
	if err := p.Macro.Validate(ms.Network()); err != nil {
		t.Fatalf("macro collection: %v", err)
	}
	for fi := range p.Clos {
		ci, cj, ok := c.SourceIndexOf(p.Clos[fi].Src)
		if !ok {
			t.Fatalf("flow %d: bad clos source", fi)
		}
		if ms.Source(ci, cj) != p.Macro[fi].Src {
			t.Fatalf("flow %d: source mismatch between topologies", fi)
		}
		di, dj, ok := c.DestIndexOf(p.Clos[fi].Dst)
		if !ok {
			t.Fatalf("flow %d: bad clos destination", fi)
		}
		if ms.Dest(di, dj) != p.Macro[fi].Dst {
			t.Fatalf("flow %d: destination mismatch between topologies", fi)
		}
	}
}

func TestUniform(t *testing.T) {
	c, ms := pairTopologies(3)
	p, err := Uniform(rand.New(rand.NewSource(1)), c, ms, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clos) != 50 {
		t.Fatalf("flows = %d, want 50", len(p.Clos))
	}
	checkPair(t, c, ms, p)
}

func TestUniformDeterministic(t *testing.T) {
	c, ms := pairTopologies(2)
	p1, err := Uniform(rand.New(rand.NewSource(7)), c, ms, 20)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Uniform(rand.New(rand.NewSource(7)), c, ms, 20)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range p1.Clos {
		if p1.Clos[fi] != p2.Clos[fi] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestPermutation(t *testing.T) {
	c, ms := pairTopologies(3)
	p, err := Permutation(rand.New(rand.NewSource(2)), c, ms)
	if err != nil {
		t.Fatal(err)
	}
	num := 2 * 3 * 3
	if len(p.Clos) != num {
		t.Fatalf("flows = %d, want %d", len(p.Clos), num)
	}
	checkPair(t, c, ms, p)
	// Bijection: every source and destination appears exactly once.
	for src, count := range p.Clos.PerSource() {
		if count != 1 {
			t.Errorf("source %d has %d flows", src, count)
		}
	}
	for dst, count := range p.Clos.PerDestination() {
		if count != 1 {
			t.Errorf("destination %d has %d flows", dst, count)
		}
	}
	if len(p.Clos.PerSource()) != num || len(p.Clos.PerDestination()) != num {
		t.Error("permutation does not cover all servers")
	}
}

func TestHotspot(t *testing.T) {
	c, ms := pairTopologies(2)
	p, err := Hotspot(rand.New(rand.NewSource(3)), c, ms, 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkPair(t, c, ms, p)
	// Some destination receives at least the hot fraction of flows.
	max := 0
	for _, count := range p.Clos.PerDestination() {
		if count > max {
			max = count
		}
	}
	if max < 20 {
		t.Errorf("hottest destination has %d flows, want >= 20", max)
	}
	if _, err := Hotspot(rand.New(rand.NewSource(3)), c, ms, 10, 1.5); err == nil {
		t.Error("hot fraction > 1 accepted")
	}
}

func TestSkewed(t *testing.T) {
	c, ms := pairTopologies(3)
	p, err := Skewed(rand.New(rand.NewSource(4)), c, ms, 200, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	checkPair(t, c, ms, p)
	if len(p.Clos) != 200 {
		t.Fatalf("flows = %d", len(p.Clos))
	}
	// Skew: the most popular source should clearly exceed the uniform
	// share (200/18 ≈ 11).
	max := 0
	for _, count := range p.Clos.PerSource() {
		if count > max {
			max = count
		}
	}
	if max < 20 {
		t.Errorf("most popular source has %d flows; distribution looks uniform", max)
	}
	if _, err := Skewed(rand.New(rand.NewSource(4)), c, ms, 10, 0); err == nil {
		t.Error("non-positive exponent accepted")
	}
}

func TestMismatchedTopologies(t *testing.T) {
	c := topology.MustClos(2)
	ms := topology.MustMacroSwitch(3)
	if _, err := Uniform(rand.New(rand.NewSource(1)), c, ms, 5); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

// TestWorkloadsAreAllocatable smoke-tests that generated workloads flow
// through the allocation engine.
func TestWorkloadsAreAllocatable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, ms := pairTopologies(2)
	p, err := Uniform(rng, c, ms, 12)
	if err != nil {
		t.Fatal(err)
	}
	macro, err := core.MacroMaxMinFair(ms, p.Macro)
	if err != nil {
		t.Fatal(err)
	}
	if len(macro) != 12 {
		t.Fatalf("macro rates = %v", macro)
	}
	closRates, err := core.ClosMaxMinFair(c, p.Clos, core.UniformAssignment(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(closRates) != 12 {
		t.Fatalf("clos rates = %v", closRates)
	}
}
