package workload

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"closnet/internal/core"
	"closnet/internal/topology"
)

func pairTopologies(n int) (*topology.Clos, *topology.MacroSwitch) {
	return topology.MustClos(n), topology.MustMacroSwitch(n)
}

// checkPair validates both collections and their parallel structure.
func checkPair(t *testing.T, c *topology.Clos, ms *topology.MacroSwitch, p Pair) {
	t.Helper()
	if len(p.Clos) != len(p.Macro) {
		t.Fatalf("collection lengths differ: %d vs %d", len(p.Clos), len(p.Macro))
	}
	if err := p.Clos.Validate(c.Network()); err != nil {
		t.Fatalf("clos collection: %v", err)
	}
	if err := p.Macro.Validate(ms.Network()); err != nil {
		t.Fatalf("macro collection: %v", err)
	}
	for fi := range p.Clos {
		ci, cj, ok := c.SourceIndexOf(p.Clos[fi].Src)
		if !ok {
			t.Fatalf("flow %d: bad clos source", fi)
		}
		if ms.Source(ci, cj) != p.Macro[fi].Src {
			t.Fatalf("flow %d: source mismatch between topologies", fi)
		}
		di, dj, ok := c.DestIndexOf(p.Clos[fi].Dst)
		if !ok {
			t.Fatalf("flow %d: bad clos destination", fi)
		}
		if ms.Dest(di, dj) != p.Macro[fi].Dst {
			t.Fatalf("flow %d: destination mismatch between topologies", fi)
		}
	}
}

func TestUniform(t *testing.T) {
	c, ms := pairTopologies(3)
	p, err := Uniform(rand.New(rand.NewSource(1)), c, ms, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clos) != 50 {
		t.Fatalf("flows = %d, want 50", len(p.Clos))
	}
	checkPair(t, c, ms, p)
}

func TestUniformDeterministic(t *testing.T) {
	c, ms := pairTopologies(2)
	p1, err := Uniform(rand.New(rand.NewSource(7)), c, ms, 20)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Uniform(rand.New(rand.NewSource(7)), c, ms, 20)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range p1.Clos {
		if p1.Clos[fi] != p2.Clos[fi] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestPermutation(t *testing.T) {
	c, ms := pairTopologies(3)
	p, err := Permutation(rand.New(rand.NewSource(2)), c, ms)
	if err != nil {
		t.Fatal(err)
	}
	num := 2 * 3 * 3
	if len(p.Clos) != num {
		t.Fatalf("flows = %d, want %d", len(p.Clos), num)
	}
	checkPair(t, c, ms, p)
	// Bijection: every source and destination appears exactly once.
	for src, count := range p.Clos.PerSource() {
		if count != 1 {
			t.Errorf("source %d has %d flows", src, count)
		}
	}
	for dst, count := range p.Clos.PerDestination() {
		if count != 1 {
			t.Errorf("destination %d has %d flows", dst, count)
		}
	}
	if len(p.Clos.PerSource()) != num || len(p.Clos.PerDestination()) != num {
		t.Error("permutation does not cover all servers")
	}
}

func TestHotspot(t *testing.T) {
	c, ms := pairTopologies(2)
	p, err := Hotspot(rand.New(rand.NewSource(3)), c, ms, 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkPair(t, c, ms, p)
	// Some destination receives at least the hot fraction of flows.
	max := 0
	for _, count := range p.Clos.PerDestination() {
		if count > max {
			max = count
		}
	}
	if max < 20 {
		t.Errorf("hottest destination has %d flows, want >= 20", max)
	}
	if _, err := Hotspot(rand.New(rand.NewSource(3)), c, ms, 10, 1.5); err == nil {
		t.Error("hot fraction > 1 accepted")
	}
}

func TestSkewed(t *testing.T) {
	c, ms := pairTopologies(3)
	p, err := Skewed(rand.New(rand.NewSource(4)), c, ms, 200, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	checkPair(t, c, ms, p)
	if len(p.Clos) != 200 {
		t.Fatalf("flows = %d", len(p.Clos))
	}
	// Skew: the most popular source should clearly exceed the uniform
	// share (200/18 ≈ 11).
	max := 0
	for _, count := range p.Clos.PerSource() {
		if count > max {
			max = count
		}
	}
	if max < 20 {
		t.Errorf("most popular source has %d flows; distribution looks uniform", max)
	}
	if _, err := Skewed(rand.New(rand.NewSource(4)), c, ms, 10, 0); err == nil {
		t.Error("non-positive exponent accepted")
	}
}

func TestMismatchedTopologies(t *testing.T) {
	c := topology.MustClos(2)
	ms := topology.MustMacroSwitch(3)
	if _, err := Uniform(rand.New(rand.NewSource(1)), c, ms, 5); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

// TestWorkloadsAreAllocatable smoke-tests that generated workloads flow
// through the allocation engine.
func TestWorkloadsAreAllocatable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, ms := pairTopologies(2)
	p, err := Uniform(rng, c, ms, 12)
	if err != nil {
		t.Fatal(err)
	}
	macro, err := core.MacroMaxMinFair(ms, p.Macro)
	if err != nil {
		t.Fatal(err)
	}
	if len(macro) != 12 {
		t.Fatalf("macro rates = %v", macro)
	}
	closRates, err := core.ClosMaxMinFair(c, p.Clos, core.UniformAssignment(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(closRates) != 12 {
		t.Fatalf("clos rates = %v", closRates)
	}
}

// TestHotspotRoundsHotCount pins the ISSUE 9 satellite fix: the hot
// flow count is hotFraction·numFlows rounded to the NEAREST integer,
// not truncated. With 7 flows at 0.5 the old truncation produced 3 hot
// flows; rounding produces 4, so the hottest destination must see at
// least 4 flows under every seed.
func TestHotspotRoundsHotCount(t *testing.T) {
	c, ms := pairTopologies(2)
	for seed := int64(1); seed <= 10; seed++ {
		p, err := Hotspot(rand.New(rand.NewSource(seed)), c, ms, 7, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, count := range p.Clos.PerDestination() {
			if count > max {
				max = count
			}
		}
		if max < 4 {
			t.Errorf("seed %d: hottest destination has %d flows, want >= 4 (round, not truncate)", seed, max)
		}
	}
}

// TestNegativeFlowCountRejected: every generator that takes a flow
// count validates it uniformly — a negative count is an error, never a
// silent empty draw or a panic.
func TestNegativeFlowCountRejected(t *testing.T) {
	c, ms := pairTopologies(2)
	rng := rand.New(rand.NewSource(1))
	if _, err := Uniform(rng, c, ms, -1); err == nil {
		t.Error("Uniform accepted a negative flow count")
	}
	if _, err := Hotspot(rng, c, ms, -3, 0.5); err == nil {
		t.Error("Hotspot accepted a negative flow count")
	}
	if _, err := Skewed(rng, c, ms, -7, 1.1); err == nil {
		t.Error("Skewed accepted a negative flow count")
	}
	for _, g := range Generators() {
		if g.Name == "permutation" {
			continue // ignores numFlows by contract
		}
		if _, err := g.Draw(rng, c, ms, -2); err == nil {
			t.Errorf("generator %s accepted a negative flow count", g.Name)
		}
	}
}

// TestGeneratorRegistry: the registry exposes all four models, Names is
// sorted, ByName round-trips, and unknown names error with the known
// list.
func TestGeneratorRegistry(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	want := []string{"hotspot", "permutation", "skewed", "uniform"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	c, ms := pairTopologies(2)
	for _, name := range names {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if g.Name != name {
			t.Errorf("ByName(%s).Name = %s", name, g.Name)
		}
		p, err := g.Draw(rand.New(rand.NewSource(5)), c, ms, 6)
		if err != nil {
			t.Fatalf("%s draw: %v", name, err)
		}
		checkPair(t, c, ms, p)
	}
	if _, err := ByName("zipfian"); err == nil || !strings.Contains(err.Error(), "hotspot") {
		t.Errorf("ByName(zipfian) = %v, want error listing known names", err)
	}
}
