// Package workload generates stochastic flow collections over Clos
// networks for the simulation-based evaluation (experiment S1, mirroring
// the extended version of the paper referenced in §6):
//
//   - Uniform: independent uniformly random (source, destination) pairs
//   - Permutation: a random one-to-one server permutation (every server
//     sends and receives exactly one flow — the admission-control regime)
//   - Hotspot: a fraction of flows converge on one destination (incast)
//   - Skewed: source popularity follows a Zipf-like law
//
// Generators are deterministic given the caller's *rand.Rand, and every
// generator also emits the parallel macro-switch collection so that
// network rates can be compared against macro-switch rates flow by flow.
// ByName exposes the generators as a named registry with canonical
// parameters, so CLIs and scenario builders select models by flag.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"closnet/internal/core"
	"closnet/internal/topology"
)

// Pair is a flow collection over a Clos network together with the same
// flows over its macro-switch (identical indexing).
type Pair struct {
	Clos  core.Collection
	Macro core.Collection
}

// gen emits one flow given (i, j) server indices on both topologies.
type gen struct {
	c    *topology.Clos
	ms   *topology.MacroSwitch
	pair Pair
}

func newGen(c *topology.Clos, ms *topology.MacroSwitch) (*gen, error) {
	if c.NumToRs() != ms.NumToRs() || c.ServersPerToR() != ms.ServersPerToR() {
		return nil, fmt.Errorf("workload: Clos shape (%d ToRs, %d servers) does not match macro-switch shape (%d, %d)",
			c.NumToRs(), c.ServersPerToR(), ms.NumToRs(), ms.ServersPerToR())
	}
	return &gen{c: c, ms: ms}, nil
}

func (g *gen) add(si, sj, di, dj int) {
	g.pair.Clos = append(g.pair.Clos, core.Flow{Src: g.c.Source(si, sj), Dst: g.c.Dest(di, dj)})
	g.pair.Macro = append(g.pair.Macro, core.Flow{Src: g.ms.Source(si, sj), Dst: g.ms.Dest(di, dj)})
}

// draw is the shared driver of every generator: it validates the flow
// count and the Clos/macro-switch shape agreement once, then hands the
// emitter to the model body.
func draw(c *topology.Clos, ms *topology.MacroSwitch, numFlows int, body func(g *gen)) (Pair, error) {
	if numFlows < 0 {
		return Pair{}, fmt.Errorf("workload: negative flow count %d", numFlows)
	}
	g, err := newGen(c, ms)
	if err != nil {
		return Pair{}, err
	}
	body(g)
	return g.pair, nil
}

// Uniform draws numFlows independent flows with uniformly random sources
// and destinations.
func Uniform(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch, numFlows int) (Pair, error) {
	return draw(c, ms, numFlows, func(g *gen) {
		tors, spt := c.NumToRs(), c.ServersPerToR()
		for f := 0; f < numFlows; f++ {
			g.add(rng.Intn(tors)+1, rng.Intn(spt)+1, rng.Intn(tors)+1, rng.Intn(spt)+1)
		}
	})
}

// Permutation draws a uniformly random bijection from sources to
// destinations: one flow per server on each side.
func Permutation(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch) (Pair, error) {
	return draw(c, ms, 0, func(g *gen) {
		spt := c.ServersPerToR()
		num := c.NumToRs() * spt
		perm := rng.Perm(num)
		for s := 0; s < num; s++ {
			d := perm[s]
			g.add(s/spt+1, s%spt+1, d/spt+1, d%spt+1)
		}
	})
}

// Hotspot draws numFlows flows of which a hotFraction (rounded to the
// nearest count) target a single random destination server (incast);
// the rest are uniform. hotFraction must lie in [0, 1].
func Hotspot(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch, numFlows int, hotFraction float64) (Pair, error) {
	if hotFraction < 0 || hotFraction > 1 {
		return Pair{}, fmt.Errorf("workload: hot fraction %v outside [0,1]", hotFraction)
	}
	return draw(c, ms, numFlows, func(g *gen) {
		tors, spt := c.NumToRs(), c.ServersPerToR()
		hotI, hotJ := rng.Intn(tors)+1, rng.Intn(spt)+1
		hot := int(math.Round(float64(numFlows) * hotFraction))
		for f := 0; f < numFlows; f++ {
			si, sj := rng.Intn(tors)+1, rng.Intn(spt)+1
			if f < hot {
				g.add(si, sj, hotI, hotJ)
			} else {
				g.add(si, sj, rng.Intn(tors)+1, rng.Intn(spt)+1)
			}
		}
	})
}

// Skewed draws numFlows flows whose source servers follow a Zipf-like
// popularity distribution with exponent s > 0 (larger = more skewed);
// destinations are uniform.
func Skewed(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch, numFlows int, s float64) (Pair, error) {
	if s <= 0 {
		return Pair{}, fmt.Errorf("workload: skew exponent %v must be positive", s)
	}
	return draw(c, ms, numFlows, func(g *gen) {
		tors, spt := c.NumToRs(), c.ServersPerToR()
		num := tors * spt
		// Cumulative Zipf weights over a random server ordering.
		order := rng.Perm(num)
		weights := make([]float64, num)
		total := 0.0
		for rank := range weights {
			w := 1.0 / math.Pow(float64(rank+1), s)
			weights[rank] = w
			total += w
		}
		pick := func() int {
			x := rng.Float64() * total
			for rank, w := range weights {
				x -= w
				if x <= 0 {
					return order[rank]
				}
			}
			return order[num-1]
		}
		for f := 0; f < numFlows; f++ {
			src := pick()
			g.add(src/spt+1, src%spt+1, rng.Intn(tors)+1, rng.Intn(spt)+1)
		}
	})
}

// Generator is a named workload model with a uniform drawing signature.
// Models with extra parameters are registered with their canonical
// values (hotspot: 25% hot flows; skewed: Zipf exponent 1.1), the ones
// the §6 simulation uses. Permutation ignores numFlows (its flow count
// is the server count).
type Generator struct {
	Name string
	Draw func(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch, numFlows int) (Pair, error)
}

// Generators returns the registry of named workload models in
// presentation order.
func Generators() []Generator {
	return []Generator{
		{"uniform", Uniform},
		{"permutation", func(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch, _ int) (Pair, error) {
			return Permutation(rng, c, ms)
		}},
		{"hotspot", func(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch, numFlows int) (Pair, error) {
			return Hotspot(rng, c, ms, numFlows, 0.25)
		}},
		{"skewed", func(rng *rand.Rand, c *topology.Clos, ms *topology.MacroSwitch, numFlows int) (Pair, error) {
			return Skewed(rng, c, ms, numFlows, 1.1)
		}},
	}
}

// Names returns the registered generator names in sorted order.
func Names() []string {
	gens := Generators()
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	sort.Strings(names)
	return names
}

// ByName returns the named generator, or an error listing the known
// names.
func ByName(name string) (Generator, error) {
	for _, g := range Generators() {
		if g.Name == name {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("workload: unknown generator %q (known: %v)", name, Names())
}
