package doom

import (
	"math/big"
	"math/rand"
	"testing"

	"closnet/internal/adversary"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

func TestRouteExample53(t *testing.T) {
	in, err := adversary.Example53()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(in.Clos, in.Flows)
	if err != nil {
		t.Fatal(err)
	}
	// The maximum matching of G^MS consists of all n-1 type-1 flows
	// (Example 5.3); its size determines T^MT.
	if got, want := res.MatchedCount(), in.N-1; got != want {
		t.Errorf("matched = %d, want %d", got, want)
	}
	// The resulting max-min fair allocation must reach the theorem's
	// throughput n-2 = 5 (the witness routing achieves exactly that, and
	// the algorithm's output is equivalent up to middle-switch
	// relabeling).
	a, err := core.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Throughput(a); got.Cmp(rational.Int(5)) != 0 {
		t.Errorf("doom throughput = %s, want 5", rational.String(got))
	}
	// Matched (type-1) flows rise to 2/3; doomed (type-2) flows drop to
	// 1/3 (Figure 4).
	for fi := range in.Flows {
		want := rational.R(1, 3)
		if res.Matched[fi] {
			want = rational.R(2, 3)
		}
		if a[fi].Cmp(want) != 0 {
			t.Errorf("flow %d rate = %s, want %s", fi, rational.String(a[fi]), rational.String(want))
		}
	}
}

// TestRouteMatchedFlowsAreLinkDisjoint checks the König correspondence of
// step 2: giving every matched flow rate 1 is feasible, i.e. the matched
// flows are routed link-disjointly.
func TestRouteMatchedFlowsAreLinkDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(4) + 1
		c := topology.MustClos(n)
		fs := core.Collection{}
		for f := 0; f < rng.Intn(4*n)+1; f++ {
			fs = fs.Add(
				c.Source(rng.Intn(2*n)+1, rng.Intn(n)+1),
				c.Dest(rng.Intn(2*n)+1, rng.Intn(n)+1), 1)
		}
		res, err := Route(c, fs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var matchedFlows core.Collection
		var matchedMiddles core.MiddleAssignment
		for fi := range fs {
			if res.Matched[fi] {
				matchedFlows = append(matchedFlows, fs[fi])
				matchedMiddles = append(matchedMiddles, res.Assignment[fi])
			}
		}
		r, err := core.ClosRouting(c, matchedFlows, matchedMiddles)
		if err != nil {
			t.Fatal(err)
		}
		ones := make(rational.Vec, len(matchedFlows))
		for i := range ones {
			ones[i] = rational.One()
		}
		if err := core.IsFeasible(c.Network(), matchedFlows, r, ones); err != nil {
			t.Fatalf("trial %d: matched flows not link-disjoint: %v", trial, err)
		}
	}
}

// TestRouteThroughputBound checks Theorem 5.4's upper bound on random
// instances: the doom routing's max-min throughput is at most twice the
// macro-switch max-min throughput.
func TestRouteThroughputBound(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3) + 2
		c := topology.MustClos(n)
		ms := topology.MustMacroSwitch(n)
		var fs, mfs core.Collection
		for f := 0; f < rng.Intn(3*n)+2; f++ {
			si, sj := rng.Intn(2*n)+1, rng.Intn(n)+1
			di, dj := rng.Intn(2*n)+1, rng.Intn(n)+1
			fs = fs.Add(c.Source(si, sj), c.Dest(di, dj), 1)
			mfs = mfs.Add(ms.Source(si, sj), ms.Dest(di, dj), 1)
		}
		res, err := Route(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.ClosMaxMinFair(c, fs, res.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		macro, err := core.MacroMaxMinFair(ms, mfs)
		if err != nil {
			t.Fatal(err)
		}
		bound := rational.Mul(rational.Int(2), core.Throughput(macro))
		if core.Throughput(a).Cmp(bound) > 0 {
			t.Fatalf("trial %d: doom throughput %s > 2x macro %s",
				trial, rational.String(core.Throughput(a)), rational.String(core.Throughput(macro)))
		}
	}
}

func TestRouteEmptyAndErrors(t *testing.T) {
	c := topology.MustClos(2)
	res, err := Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 0 || res.DoomMiddle != 0 {
		t.Errorf("unexpected result %+v", res)
	}
	bad := core.Collection{{Src: c.Input(1), Dst: c.Dest(1, 1)}}
	if _, err := Route(c, bad); err == nil {
		t.Error("invalid flow accepted")
	}
}

func TestRouteAllMatched(t *testing.T) {
	// A permutation workload: every flow is matched; DoomMiddle is 0.
	c := topology.MustClos(2)
	fs := core.Collection{}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 2; j++ {
			fs = fs.Add(c.Source(i, j), c.Dest(i, j), 1)
		}
	}
	res, err := Route(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MatchedCount(); got != len(fs) {
		t.Fatalf("matched = %d, want %d", got, len(fs))
	}
	if res.DoomMiddle != 0 {
		t.Errorf("DoomMiddle = %d, want 0", res.DoomMiddle)
	}
	// All flows at rate 1.
	a, err := core.ClosMaxMinFair(c, fs, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	for fi, rate := range a {
		if rate.Cmp(rational.One()) != 0 {
			t.Errorf("flow %d rate = %s, want 1", fi, rational.String(rate))
		}
	}
}

func TestRouteDoomsToSmallestClass(t *testing.T) {
	// One matched flow on some middle; unmatched flows must go to a
	// different (empty) class when n > 1.
	c := topology.MustClos(2)
	fs := core.Collection{}.
		Add(c.Source(1, 1), c.Dest(1, 1), 1).
		Add(c.Source(1, 1), c.Dest(1, 1), 2) // two parallel copies, unmatched
	res, err := Route(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedCount() != 1 {
		t.Fatalf("matched = %d, want 1", res.MatchedCount())
	}
	var matchedMiddle int
	for fi := range fs {
		if res.Matched[fi] {
			matchedMiddle = res.Assignment[fi]
		}
	}
	if res.DoomMiddle == matchedMiddle {
		t.Error("doomed flows placed on the occupied middle despite an empty class")
	}
}

// TestVictimPolicies compares the paper's least-loaded policy against
// the ablation baselines on the Example 5.3 instance, where the color
// classes are maximally unbalanced (six singleton classes, one empty).
func TestVictimPolicies(t *testing.T) {
	in, err := adversary.Example53()
	if err != nil {
		t.Fatal(err)
	}
	throughput := func(policy VictimPolicy) *big.Rat {
		t.Helper()
		res, err := RouteWithPolicy(in.Clos, in.Flows, policy)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		return core.Throughput(a)
	}
	least := throughput(LeastLoaded())
	most := throughput(MostLoaded())
	fixed := throughput(FixedMiddle(0))
	if least.Cmp(rational.Int(5)) != 0 {
		t.Errorf("least-loaded throughput = %s, want 5", rational.String(least))
	}
	// Dooming onto an occupied class forces the type-2 flows to share a
	// fabric link with a matched type-1 flow, losing throughput.
	if most.Cmp(least) >= 0 {
		t.Errorf("most-loaded throughput %s not below least-loaded %s",
			rational.String(most), rational.String(least))
	}
	if fixed.Cmp(least) >= 0 {
		t.Errorf("fixed-middle throughput %s not below least-loaded %s",
			rational.String(fixed), rational.String(least))
	}
}

func TestVictimPolicyOutOfRangeClamped(t *testing.T) {
	in, err := adversary.Example53()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RouteWithPolicy(in.Clos, in.Flows, FixedMiddle(99)); err != nil {
		t.Errorf("clamped fixed policy failed: %v", err)
	}
	bad := func([]int) int { return -1 }
	if _, err := RouteWithPolicy(in.Clos, in.Flows, bad); err == nil {
		t.Error("out-of-range victim accepted")
	}
}
