// Package doom implements the Doom-Switch algorithm (Algorithm 1 of §5),
// which routes a flow collection in a Clos network so that the max-min
// fair allocation approximates a throughput-max-min fair allocation:
//
//  1. Compute a maximum matching F' of the bipartite multigraph G^MS
//     (sources × destinations, one edge per flow).
//  2. Compute an n-edge-coloring of the bipartite multigraph G^C
//     restricted to F' (input × output ToR switches) — possible because
//     every ToR has degree at most n under a matching — and assign the
//     flows of color m to middle switch M_m, yielding a link-disjoint
//     routing of F'.
//  3. Assign all remaining flows to the middle switch whose color class
//     is smallest: the eponymous doomed switch.
//
// The matched flows then rise toward rate 1 while the doomed flows are
// crushed onto one middle switch, trading fairness for throughput
// (Theorem 5.4).
package doom

import (
	"context"
	"fmt"

	"closnet/internal/coloring"
	"closnet/internal/core"
	"closnet/internal/matching"
	"closnet/internal/obs"
	"closnet/internal/topology"
)

// Result is the routing produced by the Doom-Switch algorithm.
type Result struct {
	// Assignment maps each flow to its middle switch (1-based).
	Assignment core.MiddleAssignment
	// Matched marks the flows of the maximum matching F'.
	Matched []bool
	// DoomMiddle is the middle switch (1-based) that received F \ F'.
	// It is 0 when every flow was matched.
	DoomMiddle int
}

// MatchedCount returns |F'|, which by Lemma 3.2 equals the maximum
// throughput across the macro-switch.
func (r *Result) MatchedCount() int {
	count := 0
	for _, m := range r.Matched {
		if m {
			count++
		}
	}
	return count
}

// VictimPolicy selects the doomed middle switch (0-based color) given
// the sizes of the matching's color classes. The paper's Algorithm 1
// picks a smallest class; alternatives are provided as ablations.
type VictimPolicy func(classSizes []int) int

// LeastLoaded returns the paper's policy: the smallest color class,
// lowest index on ties.
func LeastLoaded() VictimPolicy {
	return func(sizes []int) int {
		victim := 0
		for m := 1; m < len(sizes); m++ {
			if sizes[m] < sizes[victim] {
				victim = m
			}
		}
		return victim
	}
}

// FixedMiddle always dooms onto color m (0-based), clamped to range.
// It is the ablation baseline: ignoring class sizes wastes throughput
// whenever the fixed class is not minimal.
func FixedMiddle(m int) VictimPolicy {
	return func(sizes []int) int {
		if m < 0 || m >= len(sizes) {
			return 0
		}
		return m
	}
}

// MostLoaded picks the largest class — the deliberately worst choice,
// used to bound the policy's impact in the ablation benchmarks.
func MostLoaded() VictimPolicy {
	return func(sizes []int) int {
		victim := 0
		for m := 1; m < len(sizes); m++ {
			if sizes[m] > sizes[victim] {
				victim = m
			}
		}
		return victim
	}
}

// Route runs the Doom-Switch algorithm on fs over c with the paper's
// least-loaded victim policy.
func Route(c topology.Fabric, fs core.Collection) (*Result, error) {
	return RouteWithPolicy(c, fs, LeastLoaded())
}

// RouteWithPolicy runs the Doom-Switch algorithm with a custom victim
// policy for step 3.
func RouteWithPolicy(c topology.Fabric, fs core.Collection, victim VictimPolicy) (*Result, error) {
	return RouteWithObs(c, fs, victim, nil)
}

// RouteWithObs runs the Doom-Switch algorithm with a custom victim
// policy and the observability layer attached: route/matched/doomed
// counters in o's registry and a doom.route journal event carrying the
// matching size, the victim middle and the color-class sizes. A nil o
// disables instrumentation.
func RouteWithObs(c topology.Fabric, fs core.Collection, victim VictimPolicy, o *obs.Obs) (*Result, error) {
	return RouteCtx(context.Background(), c, fs, victim, o)
}

// RouteCtx is RouteWithObs bounded by a context: the algorithm polls
// ctx between its three phases (matching, coloring, dooming), so an
// abandoned request stops before starting the next super-linear step.
// A cancelled run returns ctx.Err() and no partial result.
func RouteCtx(ctx context.Context, c topology.Fabric, fs core.Collection, victim VictimPolicy, o *obs.Obs) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := fs.Validate(c.Network()); err != nil {
		return nil, fmt.Errorf("doom: %w", err)
	}
	n := c.Size()
	res := &Result{
		Assignment: make(core.MiddleAssignment, len(fs)),
		Matched:    make([]bool, len(fs)),
	}
	if len(fs) == 0 {
		return res, nil
	}

	// Step 1: maximum matching of G^MS (server-level multigraph).
	gms, err := serverGraph(c, fs)
	if err != nil {
		return nil, err
	}
	matched, err := matching.MaxMatching(gms)
	if err != nil {
		return nil, fmt.Errorf("doom: matching: %w", err)
	}
	for _, fi := range matched {
		res.Matched[fi] = true
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Step 2: edge-coloring of G^C restricted to F'. Edges of G^C are
	// the matched flows, identified by their (input, output) ToR pair;
	// each ToR's servers are each used by at most one matched flow, so
	// the degree is at most ServersPerToR() and König guarantees a
	// maxDegree-coloring. On a full-bisection Clos that is at most n
	// colors and the color classes are link-disjoint; an oversubscribed
	// fabric (servers per ToR > path choices) may need more colors, which
	// are folded onto the n choices modulo n — classes then share fabric
	// links, trading the disjointness guarantee for a defined routing.
	gc := matching.Graph{NumLeft: c.NumToRs(), NumRight: c.NumToRs()}
	for _, fi := range matched {
		in, ok := c.InputOf(fs[fi].Src)
		if !ok {
			return nil, fmt.Errorf("doom: flow %d source is not a server", fi)
		}
		out, ok := c.OutputOf(fs[fi].Dst)
		if !ok {
			return nil, fmt.Errorf("doom: flow %d destination is not a server", fi)
		}
		gc.Edges = append(gc.Edges, matching.Edge{Left: in - 1, Right: out - 1})
	}
	degree := make([]int, 2*c.NumToRs())
	numColors := n
	for _, e := range gc.Edges {
		degree[e.Left]++
		degree[c.NumToRs()+e.Right]++
	}
	for _, d := range degree {
		if d > numColors {
			numColors = d
		}
	}
	colors, err := coloring.EdgeColor(gc, numColors)
	if err != nil {
		return nil, fmt.Errorf("doom: coloring: %w", err)
	}
	for ei, fi := range matched {
		res.Assignment[fi] = colors[ei]%n + 1
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Step 3: doom the remaining flows onto the middle switch chosen by
	// the victim policy (the paper: smallest color class). Class sizes
	// count the folded classes, one per path choice.
	sizes := make([]int, n)
	for _, x := range colors {
		sizes[x%n]++
	}
	doomed := victim(sizes)
	if doomed < 0 || doomed >= n {
		return nil, fmt.Errorf("doom: victim policy returned color %d outside [0,%d)", doomed, n)
	}
	res.DoomMiddle = doomed + 1
	allMatched := true
	for fi := range fs {
		if !res.Matched[fi] {
			res.Assignment[fi] = res.DoomMiddle
			allMatched = false
		}
	}
	if allMatched {
		res.DoomMiddle = 0
	}
	reg := o.Registry()
	reg.Counter("doom.routes").Inc()
	reg.Counter("doom.matched_flows").Add(int64(len(matched)))
	reg.Counter("doom.doomed_flows").Add(int64(len(fs) - len(matched)))
	o.Journal().Emit("doom.route", obs.F{
		"flows":       len(fs),
		"matched":     len(matched),
		"doom_middle": res.DoomMiddle,
		"class_sizes": sizes,
	})
	return res, nil
}

// serverGraph builds G^MS: the bipartite multigraph whose left and right
// node sets are the source and destination servers of c and whose edges
// are the flows, with edge index = flow index.
func serverGraph(c topology.Fabric, fs core.Collection) (matching.Graph, error) {
	numServers := c.NumToRs() * c.ServersPerToR()
	g := matching.Graph{NumLeft: numServers, NumRight: numServers}
	for fi, f := range fs {
		in, ok := c.InputOf(f.Src)
		if !ok {
			return g, fmt.Errorf("doom: flow %d source is not a server", fi)
		}
		out, ok := c.OutputOf(f.Dst)
		if !ok {
			return g, fmt.Errorf("doom: flow %d destination is not a server", fi)
		}
		// Dense server index: (switch-1)*serversPerToR + offset in switch.
		_, sj, _ := c.SourceIndexOf(f.Src)
		_, dj, _ := c.DestIndexOf(f.Dst)
		srcIdx := (in-1)*c.ServersPerToR() + sj - 1
		dstIdx := (out-1)*c.ServersPerToR() + dj - 1
		g.Edges = append(g.Edges, matching.Edge{Left: srcIdx, Right: dstIdx})
	}
	return g, nil
}
