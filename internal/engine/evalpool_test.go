package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"closnet/internal/codec"
	"closnet/internal/engine"
	"closnet/internal/obs"
)

// poolScenario is a 2-ToR, 2-middle topology with two cross-rack flows;
// the assignment parameterizes the instance without changing its
// topology hash.
func poolScenario(assignment []int) *codec.Scenario {
	return &codec.Scenario{
		Tors: 2, Servers: 2, Middles: 2,
		Flows: []codec.FlowJSON{
			{SrcSwitch: 1, SrcServer: 1, DstSwitch: 2, DstServer: 1},
			{SrcSwitch: 1, SrcServer: 2, DstSwitch: 2, DstServer: 2},
		},
		Assignment: assignment,
	}
}

// TestEvaluatePoolSharesTopology: evaluate requests whose scenarios
// share a topology hash share one prepared block evaluator — the second
// request is a pool reuse, not a rebuild — while a different topology
// builds its own.
func TestEvaluatePoolSharesTopology(t *testing.T) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Options{Obs: &obs.Obs{Reg: reg}})
	ctx := context.Background()

	run := func(s *codec.Scenario) []byte {
		t.Helper()
		resp, err := eng.Run(ctx, engine.Request{Op: engine.OpEvaluate, Scenario: s})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Body
	}
	b1 := run(poolScenario([]int{1, 1}))
	b2 := run(poolScenario([]int{1, 2}))
	if bytes.Equal(b1, b2) {
		t.Fatal("different assignments produced identical evaluate bodies")
	}

	snap := reg.Snapshot()
	if got := snap.Counters["engine.evaluator_builds"]; got != 1 {
		t.Errorf("evaluator_builds = %d after two same-topology evaluates, want 1", got)
	}
	if got := snap.Counters["engine.evaluator_reuses"]; got != 1 {
		t.Errorf("evaluator_reuses = %d after two same-topology evaluates, want 1", got)
	}
	if got := snap.Counters["core.block_fills"]; got < 2 {
		t.Errorf("core.block_fills = %d, want >= 2 (evaluate runs through the block path)", got)
	}

	// A different topology (extra middle) must not reuse the pooled
	// evaluator.
	other := poolScenario([]int{1, 2})
	other.Middles = 3
	run(other)
	if got := reg.Snapshot().Counters["engine.evaluator_builds"]; got != 2 {
		t.Errorf("evaluator_builds = %d after a second topology, want 2", got)
	}
}

// TestEvaluatePoolMatchesDirectPath: the pooled block path returns the
// byte-identical evaluate body whether the evaluator was fresh or
// reused, and whether or not a demands vector rides along (demands are
// not part of the topology key).
func TestEvaluatePoolMatchesDirectPath(t *testing.T) {
	eng := engine.New(engine.Options{})
	ctx := context.Background()

	s := poolScenario([]int{2, 1})
	first, err := eng.Run(ctx, engine.Request{Op: engine.OpEvaluate, Scenario: s})
	if err != nil {
		t.Fatal(err)
	}
	withDemands := poolScenario([]int{2, 1})
	withDemands.Demands = []string{"1/2", "3"}
	again, err := eng.Run(ctx, engine.Request{Op: engine.OpEvaluate, Scenario: withDemands})
	if err != nil {
		t.Fatal(err)
	}
	// The evaluate op ignores demands, but the canonical hash differs —
	// only the bodies' rates and assignment must agree.
	if !bytes.Contains(again.Body, []byte(`"rates":`)) {
		t.Fatalf("unexpected body: %s", again.Body)
	}
	var a, b struct {
		Assignment []int    `json:"assignment"`
		Rates      []string `json:"rates"`
	}
	decode := func(body []byte, into any) {
		t.Helper()
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("decode %s: %v", body, err)
		}
	}
	decode(first.Body, &a)
	decode(again.Body, &b)
	if len(a.Rates) != len(b.Rates) {
		t.Fatalf("rate counts differ: %v vs %v", a.Rates, b.Rates)
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Errorf("rate %d: %s (fresh) != %s (reused)", i, a.Rates[i], b.Rates[i])
		}
	}
}
