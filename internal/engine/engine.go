// Package engine is the one compute entry point of closnet: a typed
// operation registry mapping op names (evaluate, search:lex,
// search:throughput, search:relative, doom) to compute functions over
// canonical scenarios. Every transport — the closnetd HTTP handlers,
// the CLI tools, the batch sweeps — builds a Request and calls Run (or
// RunBatch); the engine owns the three things that must never be
// duplicated per transport:
//
//   - canonicalization: every computation runs on the canonical form of
//     its scenario (codec.CanonicalHash), so semantically equal requests
//     share one content address and one response body;
//   - deterministic encoding: each op produces a single-line compact
//     JSON body (codec.MarshalBody) that is byte-identical across
//     transports, cacheable, and concatenable into batch responses;
//   - observability: per-op counters and one engine.compute journal
//     event per computation, whatever the caller.
//
// Adding an objective is registering one op — no new endpoint, flag
// set, or encoder. Transports stay ~50-line adapters: decode → Run →
// reply.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"closnet/internal/codec"
	"closnet/internal/obs"
	"closnet/internal/search"
)

// The registered operation names. The :pruned search variants run the
// bound-guided branch-and-bound (search.Options.Pruned); they are
// distinct ops — not a request flag — because their response bodies
// differ from the exhaustive ones in the states field, and op names
// double as content-addressed cache keys, which must never map two
// different bodies to one address.
const (
	OpEvaluate               = "evaluate"
	OpSearchLex              = "search:lex"
	OpSearchThroughput       = "search:throughput"
	OpSearchRelative         = "search:relative"
	OpSearchLexPruned        = "search:lex:pruned"
	OpSearchThroughputPruned = "search:throughput:pruned"
	OpDoom                   = "doom"
)

// Options configures an Engine.
type Options struct {
	// SearchWorkers is the enumeration worker count of every search:*
	// op, following the search.Options.Workers policy (0 = one worker
	// per core, 1 = serial; results are bit-identical either way).
	// Callers serving many concurrent requests want 1; CLIs sweeping
	// one instance want 0.
	SearchWorkers int
	// MaxStates caps each search:* enumeration
	// (0 = search.DefaultMaxStates).
	MaxStates int
	// Obs attaches the observability layer: per-op compute counters, a
	// compute latency timer, and one engine.compute journal event per
	// computation. nil disables instrumentation.
	Obs *obs.Obs
	// MaxSessions bounds the session table (0 = DefaultMaxSessions).
	MaxSessions int
	// SessionTTL is the idle lifetime of a session before lazy eviction
	// (0 = DefaultSessionTTL).
	SessionTTL time.Duration
}

// Request names one compute operation over one scenario, the transport-
// independent unit of work.
type Request struct {
	Op       string
	Scenario *codec.Scenario
}

// Prepared is a canonicalized, content-addressed request: the validated
// op, the canonical scenario, and its SHA-256 content hash. Transports
// that cache or coalesce key on (Op, Hash) before computing.
type Prepared struct {
	Op    string
	Canon *codec.Scenario
	Hash  [32]byte
}

// Response is one computed result: the op, the content address of the
// canonical scenario, and the deterministic single-line JSON body.
type Response struct {
	Op   string
	Hash [32]byte
	Body []byte
}

// computeFunc is one registered operation: it computes over the
// canonical scenario and returns the encoded response body. It must
// honor ctx and must be deterministic — same canonical scenario, same
// bytes.
type computeFunc func(ctx context.Context, e *Engine, canon *codec.Scenario, hash [32]byte) ([]byte, error)

// Engine dispatches requests through the op registry. Create with New;
// an Engine is immutable and safe for concurrent use.
type Engine struct {
	opts Options
	ops  map[string]computeFunc
	// evals shares prepared block evaluators across requests with equal
	// codec.TopologyHash — batch items sweeping assignments over one
	// topology build the SoA evaluator once (evalpool.go).
	evals *evalPool
	// sessions is the stateful session table behind the session:* op
	// family; it lives outside the Prepare/Compute registry (session.go).
	sessions *Sessions

	mComputes *obs.Counter
	mErrors   *obs.Counter
	mLatency  *obs.Timer
}

// New builds an Engine with the standard op registry.
func New(opts Options) *Engine {
	reg := opts.Obs.Registry()
	return &Engine{
		opts: opts,
		ops: map[string]computeFunc{
			OpEvaluate:               computeEvaluate,
			OpSearchLex:              searchOp("lex", false),
			OpSearchThroughput:       searchOp("throughput", false),
			OpSearchRelative:         searchOp("relative", false),
			OpSearchLexPruned:        searchOp("lex", true),
			OpSearchThroughputPruned: searchOp("throughput", true),
			OpDoom:                   computeDoom,
		},
		evals:     newEvalPool(opts.Obs),
		sessions:  newSessions(opts),
		mComputes: reg.Counter("engine.computes"),
		mErrors:   reg.Counter("engine.errors"),
		mLatency:  reg.Timer("engine.compute_latency"),
	}
}

// Ops returns every operation name the engine serves, sorted. The
// session:* family is included even though it is served through the
// typed Sessions API rather than Prepare/Compute — Ops is the surface
// transports enumerate.
func (e *Engine) Ops() []string {
	ops := make([]string, 0, len(e.ops)+3)
	for op := range e.ops {
		ops = append(ops, op)
	}
	ops = append(ops, OpSessionOpen, OpSessionDelta, OpSessionClose)
	sort.Strings(ops)
	return ops
}

// Sessions returns the engine's session table, the entry point of the
// stateful session:* op family.
func (e *Engine) Sessions() *Sessions { return e.sessions }

// Obs returns the engine's observability bundle (never nil as a
// handle; a zero bundle disables instrumentation).
func (e *Engine) Obs() *obs.Obs { return e.opts.Obs }

// SearchOptions returns the search.Options every search:* op runs
// with, bounded by ctx. Non-engine search call sites (experiments,
// benchmarks) use it too, so one flag spelling configures them all.
func (e *Engine) SearchOptions(ctx context.Context) search.Options {
	return search.Options{
		MaxStates: e.opts.MaxStates,
		Workers:   e.opts.SearchWorkers,
		Obs:       e.opts.Obs,
		Ctx:       ctx,
	}
}

// Prepare validates the op against the registry and canonicalizes the
// scenario, returning the content-addressed request. It does no
// computation.
func (e *Engine) Prepare(req Request) (*Prepared, error) {
	if _, ok := e.ops[req.Op]; !ok {
		switch req.Op {
		case OpSessionOpen, OpSessionDelta, OpSessionClose:
			return nil, fmt.Errorf("engine: op %q is stateful and served through the session API, not Prepare/Compute", req.Op)
		}
		return nil, fmt.Errorf("engine: unknown op %q (known: %v)", req.Op, e.Ops())
	}
	if req.Scenario == nil {
		return nil, fmt.Errorf("engine: op %q without a scenario", req.Op)
	}
	canon, hash, err := codec.CanonicalHash(req.Scenario)
	if err != nil {
		return nil, err
	}
	return &Prepared{Op: req.Op, Canon: canon, Hash: hash}, nil
}

// Compute runs one prepared request through the op registry and
// returns the deterministic response body. ctx bounds the computation:
// every op propagates cancellation into its compute path and returns
// ctx.Err() with no partial body.
func (e *Engine) Compute(ctx context.Context, p *Prepared) ([]byte, error) {
	fn, ok := e.ops[p.Op]
	if !ok {
		return nil, fmt.Errorf("engine: unknown op %q (known: %v)", p.Op, e.Ops())
	}
	sp, ctx := obs.StartSpan(ctx, "engine.compute")
	sp.Attr("op", p.Op)
	start := time.Now()
	body, err := fn(ctx, e, p.Canon, p.Hash)
	elapsed := time.Since(start)
	sp.Attr("ok", err == nil).End()
	e.mComputes.Inc()
	e.mLatency.Observe(elapsed)
	ok = err == nil
	if !ok {
		e.mErrors.Inc()
	}
	e.opts.Obs.Journal().Emit("engine.compute", obs.F{
		"op": p.Op, "ok": ok, "elapsed_ns": elapsed.Nanoseconds(),
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}

// Run is the single-call entry point: Prepare then Compute.
func (e *Engine) Run(ctx context.Context, req Request) (*Response, error) {
	p, err := e.Prepare(req)
	if err != nil {
		return nil, err
	}
	body, err := e.Compute(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Response{Op: p.Op, Hash: p.Hash, Body: body}, nil
}
