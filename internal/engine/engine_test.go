package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"closnet/internal/codec"
	"closnet/internal/corpus"
	"closnet/internal/engine"
	"closnet/internal/obs"
)

// batchRequests builds a mixed-op request list over the paper corpus:
// evaluate and doom across the §3–§4 C_4 families, every search
// objective on the exhaustively-searchable Example 2.3 instance.
func batchRequests(t *testing.T) []engine.Request {
	t.Helper()
	scens, _, err := corpus.Scenarios(4, []string{"theorem34k2", "theorem34k8", "theorem42", "theorem43"})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []engine.Request
	for _, s := range scens {
		reqs = append(reqs,
			engine.Request{Op: engine.OpEvaluate, Scenario: s},
			engine.Request{Op: engine.OpDoom, Scenario: s},
		)
	}
	ex, _, err := corpus.Scenarios(0, []string{"example23"})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{engine.OpSearchLex, engine.OpSearchThroughput, engine.OpSearchRelative} {
		reqs = append(reqs, engine.Request{Op: op, Scenario: ex[0]})
	}
	return reqs
}

func TestRunDeterministic(t *testing.T) {
	eng := engine.New(engine.Options{SearchWorkers: 1})
	for _, req := range batchRequests(t) {
		first, err := eng.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		if len(first.Body) == 0 || first.Body[len(first.Body)-1] != '\n' {
			t.Errorf("%s: body is not a newline-terminated document: %q", req.Op, first.Body)
		}
		again, err := eng.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s again: %v", req.Op, err)
		}
		if !bytes.Equal(first.Body, again.Body) {
			t.Errorf("%s: two runs of one request differ:\n%s\n%s", req.Op, first.Body, again.Body)
		}
		if first.Hash != again.Hash {
			t.Errorf("%s: content hash is not stable", req.Op)
		}
	}
}

// TestRunBatchMatchesSingleCalls is the batch determinism contract: for
// every worker count, RunBatch returns exactly the bodies N individual
// Run calls produce, in request order. Run under -race in CI, it also
// proves the fan-out is data-race free.
func TestRunBatchMatchesSingleCalls(t *testing.T) {
	eng := engine.New(engine.Options{SearchWorkers: 1})
	reqs := batchRequests(t)

	want := make([][]byte, len(reqs))
	for i, req := range reqs {
		resp, err := eng.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("single %s: %v", req.Op, err)
		}
		want[i] = resp.Body
	}

	for _, workers := range []int{1, 3, 0} {
		results := eng.RunBatch(context.Background(), reqs, workers, nil)
		if len(results) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(results), len(reqs))
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("workers=%d item %d (%s): %v", workers, i, reqs[i].Op, res.Err)
			}
			if !bytes.Equal(res.Resp.Body, want[i]) {
				t.Errorf("workers=%d item %d (%s): batch body differs from single call:\nbatch:  %s\nsingle: %s",
					workers, i, reqs[i].Op, res.Resp.Body, want[i])
			}
		}
	}
}

// TestRunBatchConcurrent hammers one engine with overlapping batches —
// with -race on, this is the shared-state safety check of the batch
// fan-out and the op registry.
func TestRunBatchConcurrent(t *testing.T) {
	eng := engine.New(engine.Options{SearchWorkers: 1})
	scens, _, err := corpus.Scenarios(3, []string{"theorem34k2", "theorem42"})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]engine.Request, 0, 2*len(scens))
	for _, s := range scens {
		reqs = append(reqs,
			engine.Request{Op: engine.OpEvaluate, Scenario: s},
			engine.Request{Op: engine.OpDoom, Scenario: s},
		)
	}
	want := eng.RunBatch(context.Background(), reqs, 1, nil)

	const batches = 8
	var wg sync.WaitGroup
	errs := make(chan error, batches)
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			results := eng.RunBatch(context.Background(), reqs, workers, nil)
			for i, res := range results {
				if res.Err != nil {
					errs <- res.Err
					return
				}
				if !bytes.Equal(res.Resp.Body, want[i].Resp.Body) {
					errs <- &mismatchError{i}
					return
				}
			}
		}(b%4 + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ i int }

func (e *mismatchError) Error() string {
	return fmt.Sprintf("concurrent batch body mismatch at item %d", e.i)
}

func TestRunBatchCancelled(t *testing.T) {
	eng := engine.New(engine.Options{SearchWorkers: 1})
	scens, _, err := corpus.Scenarios(3, []string{"theorem42"})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []engine.Request{
		{Op: engine.OpEvaluate, Scenario: scens[0]},
		{Op: engine.OpDoom, Scenario: scens[0]},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := eng.RunBatch(ctx, reqs, 1, nil)
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("item %d computed under a cancelled context", i)
		}
	}
}

func TestPrepareRejectsBadRequests(t *testing.T) {
	eng := engine.New(engine.Options{})
	scens, _, err := corpus.Scenarios(3, []string{"theorem42"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Prepare(engine.Request{Op: "fastest", Scenario: scens[0]}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := eng.Prepare(engine.Request{Op: engine.OpEvaluate}); err == nil {
		t.Error("nil scenario accepted")
	}
}

// TestOpsRegistry pins the registered op names — transports route on
// these strings, so a rename is an API break.
func TestOpsRegistry(t *testing.T) {
	eng := engine.New(engine.Options{})
	got := eng.Ops()
	want := []string{"doom", "evaluate", "search:lex", "search:lex:pruned",
		"search:relative", "search:throughput", "search:throughput:pruned",
		"session:close", "session:delta", "session:open"}
	if len(got) != len(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v, want %v", got, want)
		}
	}
}

// TestSearchRelativeNeedsDemands mirrors the single-call 422 contract:
// the relative objective without scenario demands is a compute error,
// not a panic or an empty body.
func TestSearchRelativeNeedsDemands(t *testing.T) {
	eng := engine.New(engine.Options{})
	s := &codec.Scenario{
		Tors: 2, Servers: 1, Middles: 2,
		Flows: []codec.FlowJSON{
			{SrcSwitch: 1, SrcServer: 1, DstSwitch: 2, DstServer: 1},
		},
	}
	if _, err := eng.Run(context.Background(), engine.Request{Op: engine.OpSearchRelative, Scenario: s}); err == nil {
		t.Error("relative search without demands succeeded")
	}
}

// TestComputeSpans: a traced search request produces the nested span
// chain engine.compute → search.run → search.shard → core.block_fill,
// and an untraced context leaves the engine span-free with identical
// bodies — tracing must never perturb results.
func TestComputeSpans(t *testing.T) {
	ex, _, err := corpus.Scenarios(0, []string{"example23"})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{SearchWorkers: 1})
	req := engine.Request{Op: engine.OpSearchLex, Scenario: ex[0]}

	plain, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace(nil)
	root := tr.StartSpan("server.request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	traced, err := eng.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if !bytes.Equal(plain.Body, traced.Body) {
		t.Errorf("tracing changed the response body:\n%s\n%s", plain.Body, traced.Body)
	}

	spans := tr.Spans()
	byName := map[string]obs.SpanRecord{}
	byID := map[int64]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
		byID[s.ID] = s
	}
	for _, chain := range [][2]string{
		{"engine.compute", "server.request"},
		{"search.run", "engine.compute"},
		{"search.shard", "search.run"},
		{"core.block_fill", "search.shard"},
	} {
		child, ok := byName[chain[0]]
		if !ok {
			t.Fatalf("no %s span in %d spans", chain[0], len(spans))
		}
		if parent := byID[child.Parent]; parent.Name != chain[1] {
			t.Errorf("%s parent is %q, want %q", chain[0], parent.Name, chain[1])
		}
	}
	if got := byName["engine.compute"].Attrs["op"]; got != engine.OpSearchLex {
		t.Errorf("engine.compute op attr %v", got)
	}
}
