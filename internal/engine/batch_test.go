package engine_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"closnet/internal/corpus"
	"closnet/internal/engine"
)

// TestRunBatchPanicRecovery: a Runner that panics on one item must land
// the panic in that item's error slot while every other item completes.
// Before the recovery fix a panic killed the worker goroutine, which
// then never signalled done, and RunBatch blocked forever — hence the
// run under an explicit watchdog instead of relying on the test
// timeout.
func TestRunBatchPanicRecovery(t *testing.T) {
	eng := engine.New(engine.Options{SearchWorkers: 1})
	scens, _, err := corpus.Scenarios(3, []string{"theorem42"})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]engine.Request, 6)
	for i := range reqs {
		reqs[i] = engine.Request{Op: engine.OpEvaluate, Scenario: scens[0]}
	}
	const boom = 2
	run := func(ctx context.Context, i int, req engine.Request) (*engine.Response, error) {
		if i == boom {
			panic("runner exploded")
		}
		return eng.Run(ctx, req)
	}

	out := make(chan []engine.BatchResult, 1)
	go func() { out <- eng.RunBatch(context.Background(), reqs, 2, run) }()
	var results []engine.BatchResult
	select {
	case results = <-out:
	case <-time.After(30 * time.Second):
		t.Fatal("RunBatch deadlocked after a runner panic")
	}

	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if i == boom {
			if res.Err == nil {
				t.Fatalf("item %d: panic did not surface as an error", i)
			}
			if !strings.Contains(res.Err.Error(), "panicked") || !strings.Contains(res.Err.Error(), "runner exploded") {
				t.Errorf("item %d error %q does not identify the panic", i, res.Err)
			}
			if res.Resp != nil {
				t.Errorf("item %d carries both a response and an error", i)
			}
			continue
		}
		if res.Err != nil {
			t.Errorf("item %d failed alongside the panicking item: %v", i, res.Err)
			continue
		}
		if res.Resp == nil || len(res.Resp.Body) == 0 {
			t.Errorf("item %d completed without a body", i)
		}
	}
}
