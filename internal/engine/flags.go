package engine

import (
	"flag"

	"closnet/internal/obs"
)

// Flags holds the engine flag values shared by every cmd tool that
// launches computations: -workers and -max-states, the knobs each CLI
// used to re-spell by hand.
type Flags struct {
	Workers   int
	MaxStates int
}

// AddFlags registers the shared engine flags on fl and returns the
// struct their values land in. Call (*Flags).Engine after parsing.
func AddFlags(fl *flag.FlagSet) *Flags {
	f := &Flags{}
	fl.IntVar(&f.Workers, "workers", 0, "routing-space search workers (0 = all cores, 1 = serial)")
	fl.IntVar(&f.MaxStates, "max-states", 0, "per-search state cap (0 = engine default)")
	return f
}

// Engine builds the tool's Engine from the parsed flags and the
// observability bundle of the run (nil disables instrumentation).
func (f *Flags) Engine(o *obs.Obs) *Engine {
	return New(Options{SearchWorkers: f.Workers, MaxStates: f.MaxStates, Obs: o})
}
