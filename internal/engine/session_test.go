package engine_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"closnet/internal/codec"
	"closnet/internal/engine"
	"closnet/internal/obs"
)

func sessionEngine(opts engine.Options) *engine.Engine {
	if opts.Obs == nil {
		opts.Obs = &obs.Obs{Reg: obs.NewRegistry()}
	}
	return engine.New(opts)
}

// sessionScenario is a 4-ToR, 2-server, 2-middle Clos with two flows
// deliberately listed in non-canonical order.
func sessionScenario() *codec.Scenario {
	return &codec.Scenario{
		Tors: 4, Servers: 2, Middles: 2,
		Flows: []codec.FlowJSON{
			{SrcSwitch: 3, SrcServer: 1, DstSwitch: 4, DstServer: 1},
			{SrcSwitch: 1, SrcServer: 1, DstSwitch: 2, DstServer: 1},
		},
		Assignment: []int{2, 1},
	}
}

// TestSessionMatchesOneShotEvaluate is the session contract: after any
// delta sequence, the session response's hash, assignment, rates, and
// throughput equal what a one-shot evaluate of the end state reports.
func TestSessionMatchesOneShotEvaluate(t *testing.T) {
	eng := sessionEngine(engine.Options{})
	ctx := context.Background()

	resp, err := eng.Sessions().Open(ctx, sessionScenario())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != engine.OpSessionOpen || resp.Seq != 0 {
		t.Fatalf("open response op=%q seq=%d", resp.Op, resp.Seq)
	}
	// Session flow IDs are assigned in canonical order: id 0 is the
	// (1,1)->(2,1) flow, id 1 the (3,1)->(4,1) flow.
	if len(resp.Flows) != 2 || resp.Flows[0] != 0 || resp.Flows[1] != 1 {
		t.Fatalf("open flow ids %v", resp.Flows)
	}

	deltas := []string{
		`{"op":"arrive","flow":{"srcSwitch":1,"srcServer":2,"dstSwitch":3,"dstServer":2},"middle":1}`,
		`{"op":"arrive","flow":{"srcSwitch":2,"srcServer":1,"dstSwitch":1,"dstServer":1},"middle":2}`,
		`{"op":"reroute","id":0,"middle":2}`,
		`{"op":"depart","id":1}`,
		`{"op":"arrive","flow":{"srcSwitch":4,"srcServer":2,"dstSwitch":2,"dstServer":2},"middle":1}`,
		`{"op":"reroute","id":3,"middle":1}`,
	}
	var last *engine.SessionResponse
	for i, raw := range deltas {
		d, err := codec.DecodeDelta([]byte(raw))
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		last, err = eng.Sessions().Delta(ctx, resp.Session, d)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if last.Seq != i+1 {
			t.Fatalf("delta %d: seq %d", i, last.Seq)
		}
	}
	// Arrivals got ids 2, 3, 4; id 1 departed. Live: 0, 2, 3, 4.
	// End state: flow 0 on middle 2 (rerouted), flow 2 on middle 1,
	// flow 3 on middle 1 (rerouted from 2), flow 4 on middle 1.
	end := &codec.Scenario{
		Tors: 4, Servers: 2, Middles: 2,
		Flows: []codec.FlowJSON{
			{SrcSwitch: 1, SrcServer: 1, DstSwitch: 2, DstServer: 1}, // id 0
			{SrcSwitch: 1, SrcServer: 2, DstSwitch: 3, DstServer: 2}, // id 2
			{SrcSwitch: 2, SrcServer: 1, DstSwitch: 1, DstServer: 1}, // id 3
			{SrcSwitch: 4, SrcServer: 2, DstSwitch: 2, DstServer: 2}, // id 4
		},
		Assignment: []int{2, 1, 1, 1},
	}
	oneShot, err := eng.Run(ctx, engine.Request{Op: engine.OpEvaluate, Scenario: end})
	if err != nil {
		t.Fatal(err)
	}
	var ev struct {
		Hash       string   `json:"hash"`
		Assignment []int    `json:"assignment"`
		Rates      []string `json:"rates"`
		Throughput string   `json:"throughput"`
	}
	if err := json.Unmarshal(oneShot.Body, &ev); err != nil {
		t.Fatal(err)
	}
	if last.Hash != ev.Hash {
		t.Fatalf("session hash %s != one-shot %s", last.Hash, ev.Hash)
	}
	if fmt.Sprint(last.Assignment) != fmt.Sprint(ev.Assignment) {
		t.Fatalf("session assignment %v != one-shot %v", last.Assignment, ev.Assignment)
	}
	if fmt.Sprint(last.Rates) != fmt.Sprint(ev.Rates) {
		t.Fatalf("session rates %v != one-shot %v", last.Rates, ev.Rates)
	}
	if last.Throughput != ev.Throughput {
		t.Fatalf("session throughput %s != one-shot %s", last.Throughput, ev.Throughput)
	}

	closed, err := eng.Sessions().Close(ctx, resp.Session)
	if err != nil {
		t.Fatal(err)
	}
	if !closed.Closed || closed.Deltas != len(deltas) {
		t.Fatalf("close response %+v", closed)
	}
}

// TestSessionArrivedIDAndEmptyOpen: an empty session admits flows one
// at a time, reporting each new ID; draining it back to empty is legal.
func TestSessionArrivedIDAndEmptyOpen(t *testing.T) {
	eng := sessionEngine(engine.Options{})
	ctx := context.Background()
	resp, err := eng.Sessions().Open(ctx, &codec.Scenario{Tors: 4, Servers: 2, Middles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Flows) != 0 || resp.Throughput != "0" {
		t.Fatalf("empty open response %+v", resp)
	}
	d, _ := codec.DecodeDelta([]byte(`{"op":"arrive","flow":{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1},"middle":1}`))
	r, err := eng.Sessions().Delta(ctx, resp.Session, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrived == nil || *r.Arrived != 0 {
		t.Fatalf("arrive response did not report id 0: %+v", r)
	}
	if len(r.Rates) != 1 || r.Rates[0] != "1" {
		t.Fatalf("lone flow rates %v", r.Rates)
	}
	d, _ = codec.DecodeDelta([]byte(`{"op":"depart","id":0}`))
	r, err = eng.Sessions().Delta(ctx, resp.Session, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Flows) != 0 || r.Arrived != nil {
		t.Fatalf("drained session response %+v", r)
	}
}

// TestSessionDeltaErrorsLeaveStateIntact: structural and semantic delta
// failures return errors without mutating the session.
func TestSessionDeltaErrorsLeaveStateIntact(t *testing.T) {
	eng := sessionEngine(engine.Options{})
	ctx := context.Background()
	resp, err := eng.Sessions().Open(ctx, sessionScenario())
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`{"op":"arrive","flow":{"srcSwitch":9,"srcServer":1,"dstSwitch":1,"dstServer":1},"middle":1}`,
		`{"op":"arrive","flow":{"srcSwitch":1,"srcServer":1,"dstSwitch":2,"dstServer":1},"middle":7}`,
		`{"op":"reroute","id":0,"middle":9}`,
		`{"op":"reroute","id":42,"middle":1}`,
		`{"op":"depart","id":42}`,
	}
	for i, raw := range bad {
		var d codec.Delta
		if err := json.Unmarshal([]byte(raw), &d); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Sessions().Delta(ctx, resp.Session, &d); err == nil {
			t.Fatalf("bad delta %d accepted", i)
		}
	}
	// Session still live and unchanged.
	d, _ := codec.DecodeDelta([]byte(`{"op":"reroute","id":0,"middle":1}`))
	r, err := eng.Sessions().Delta(ctx, resp.Session, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 1 {
		t.Fatalf("failed deltas advanced seq: %d", r.Seq)
	}
}

// TestSessionTTLExpiry: a session idle past the TTL is evicted lazily
// and a touched one survives. Uses the injected clock.
func TestSessionTTLExpiry(t *testing.T) {
	eng := sessionEngine(engine.Options{SessionTTL: time.Minute})
	ctx := context.Background()
	now := time.Unix(1000, 0)
	eng.Sessions().SetClock(func() time.Time { return now })

	idle, err := eng.Sessions().Open(ctx, sessionScenario())
	if err != nil {
		t.Fatal(err)
	}
	live, err := eng.Sessions().Open(ctx, sessionScenario())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(40 * time.Second)
	d, _ := codec.DecodeDelta([]byte(`{"op":"reroute","id":0,"middle":1}`))
	if _, err := eng.Sessions().Delta(ctx, live.Session, d); err != nil {
		t.Fatal(err)
	}
	now = now.Add(40 * time.Second) // idle is 80s old, live 40s
	if _, err := eng.Sessions().Delta(ctx, live.Session, d); err != nil {
		t.Fatalf("touched session expired: %v", err)
	}
	if _, err := eng.Sessions().Delta(ctx, idle.Session, d); !errors.Is(err, engine.ErrSessionNotFound) {
		t.Fatalf("idle session: got %v, want ErrSessionNotFound", err)
	}
	st := eng.Sessions().Stats()
	if st.Open != 1 || st.Expired != 1 || st.Opened != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSessionTableBound: the table refuses opens past MaxSessions and
// admits again after a close.
func TestSessionTableBound(t *testing.T) {
	eng := sessionEngine(engine.Options{MaxSessions: 3})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 3; i++ {
		r, err := eng.Sessions().Open(ctx, sessionScenario())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.Session)
	}
	if _, err := eng.Sessions().Open(ctx, sessionScenario()); !errors.Is(err, engine.ErrSessionTableFull) {
		t.Fatalf("4th open: got %v, want ErrSessionTableFull", err)
	}
	if _, err := eng.Sessions().Close(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sessions().Open(ctx, sessionScenario()); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	st := eng.Sessions().Stats()
	if st.Open != 3 || st.Capacity != 3 || st.Closed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSessionCloseIdempotency: closing twice or touching a closed
// session reports ErrSessionNotFound, as does a bogus ID.
func TestSessionCloseIdempotency(t *testing.T) {
	eng := sessionEngine(engine.Options{})
	ctx := context.Background()
	r, err := eng.Sessions().Open(ctx, sessionScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sessions().Close(ctx, r.Session); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sessions().Close(ctx, r.Session); !errors.Is(err, engine.ErrSessionNotFound) {
		t.Fatalf("double close: %v", err)
	}
	d, _ := codec.DecodeDelta([]byte(`{"op":"depart","id":0}`))
	if _, err := eng.Sessions().Delta(ctx, r.Session, d); !errors.Is(err, engine.ErrSessionNotFound) {
		t.Fatalf("delta on closed session: %v", err)
	}
	if _, err := eng.Sessions().Close(ctx, "no-such-session"); !errors.Is(err, engine.ErrSessionNotFound) {
		t.Fatalf("bogus close: %v", err)
	}
}

// TestSessionOpsListedButNotComputable: the session op family appears
// in Ops() yet Prepare routes callers to the session API.
func TestSessionOpsListedButNotComputable(t *testing.T) {
	eng := sessionEngine(engine.Options{})
	listed := map[string]bool{}
	for _, op := range eng.Ops() {
		listed[op] = true
	}
	for _, op := range []string{engine.OpSessionOpen, engine.OpSessionDelta, engine.OpSessionClose} {
		if !listed[op] {
			t.Errorf("%s missing from Ops()", op)
		}
		if _, err := eng.Prepare(engine.Request{Op: op, Scenario: sessionScenario()}); err == nil {
			t.Errorf("Prepare accepted stateful op %s", op)
		}
	}
}

// TestSessionConcurrentIsolation: concurrent sessions mutate
// independently; run under -race this also proves the table locking.
func TestSessionConcurrentIsolation(t *testing.T) {
	eng := sessionEngine(engine.Options{})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := eng.Sessions().Open(ctx, sessionScenario())
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 10; i++ {
				m := 1 + (g+i)%2
				d := &codec.Delta{Op: codec.DeltaReroute, ID: 0, Middle: m}
				if _, err := eng.Sessions().Delta(ctx, r.Session, d); err != nil {
					errs <- err
					return
				}
			}
			if _, err := eng.Sessions().Close(ctx, r.Session); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.Sessions().Stats()
	if st.Open != 0 || st.Opened != 8 || st.Closed != 8 || st.Deltas != 80 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSessionCounters: the session table instruments opens, deltas,
// closes, expiries, and the open gauge.
func TestSessionCounters(t *testing.T) {
	o := &obs.Obs{Reg: obs.NewRegistry()}
	eng := sessionEngine(engine.Options{Obs: o, SessionTTL: time.Minute})
	ctx := context.Background()
	now := time.Unix(0, 0)
	eng.Sessions().SetClock(func() time.Time { return now })

	r, err := eng.Sessions().Open(ctx, sessionScenario())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := codec.DecodeDelta([]byte(`{"op":"reroute","id":0,"middle":1}`))
	if _, err := eng.Sessions().Delta(ctx, r.Session, d); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour)
	eng.Sessions().Stats() // prunes

	snap := o.Reg.Snapshot()
	for name, want := range map[string]int64{
		"engine.sessions.opened":  1,
		"engine.sessions.deltas":  1,
		"engine.sessions.expired": 1,
		"engine.sessions.closed":  0,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["engine.sessions.open"]; got != 0 {
		t.Errorf("open gauge = %d after expiry", got)
	}
	// The session's incremental evaluator is instrumented through the
	// same registry.
	if snap.Counters["core.delta_fills"] == 0 {
		t.Error("session deltas did not drive core.delta_fills")
	}
}
